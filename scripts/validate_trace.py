#!/usr/bin/env python3
"""Validate a structured-trace or crash-journal JSONL file.

Usage: validate_trace.py TRACE.jsonl
       validate_trace.py --server TRACE.jsonl
       validate_trace.py --soak TRACE.jsonl
       validate_trace.py --journal JOURNAL.jsonl

Trace mode (support/trace.h schema) checks, line by line:
  - each line is a standalone JSON object;
  - "type" is one of begin/end/counter;
  - the fixed key set is present ("name", "tid", "seq", "ts_ns", plus
    "arg" for spans and "value" for counters) with the right types;
  - "seq" values are unique and strictly increasing down the file
    (Snapshot() emits the global merge order);
  - per thread, begin/end events obey stack discipline: every end
    matches the innermost open begin of the same name, and nothing is
    left open at EOF;
  - every "fuzz_fallback" span (the --fuzz-fallback rung, DESIGN.md
    §16) opens inside a "verify" span on its own thread — the rung is
    part of a pipeline run, never free-floating — and every
    "fuzz.execs" counter lands inside an open "fuzz_fallback" span
    with a non-negative value.

Server mode (--server, a trace written by `octopocs serve`) runs every
trace-mode check plus:
  - at least one "request" span exists;
  - every "queue_depth" counter value is non-negative (the admission
    queue can never go negative);
  - every "request" span contains, on its own thread, either a nested
    "verify" span (the pipeline ran), an "artifact_disk_hit" counter
    (served from the persistent tier), or a "request_failed" counter
    (rejected) — a request that produced none of these fell through the
    daemon without being handled.

Soak mode (--soak, a trace written by `octopocs soak --trace-out`) runs
every trace-mode check plus:
  - at least one "gen" span exists (the corpus really was generated);
  - at least one "soak_leg" span exists, every one carries a positive
    leg number in "arg", and no leg number repeats (each leg runs once);
  - every "soak.pairs_verified" counter is non-negative and
    non-decreasing (it is cumulative across legs);
  - the final "soak.violations" counter exists and is exactly 0 — the
    run upheld every invariant.

Journal mode (core/journal.h schema) checks:
  - line 1 is a header with version 1, a non-empty options_hash, and a
    positive pair_count; no other header appears;
  - every other record is "started" {pair, attempt} or "finished"
    {pair, report}, with positive integer pair indices;
  - every finished report carries the full serialized
    VerificationReport key set (core/report_io.h);
  - no pair finishes twice (resume must replay, never re-run);
  - matching core::LoadJournal, a torn *final* record (the writer died
    mid-write) is reported but tolerated; a malformed record anywhere
    else fails.

Exits 0 and prints a summary on success, 1 with the first offending
line otherwise.
"""
import json
import sys


def fail(lineno, msg):
    print(f"FAIL line {lineno}: {msg}")
    sys.exit(1)


# Every key SerializeReport (src/core/report_io.cpp) writes; extras are
# allowed for forward compatibility, absences are not.
REPORT_KEYS = {
    "verdict", "type", "detail", "ep_name", "ep_in_s", "ep_in_t",
    "ep_encounters_in_s", "bunch_count", "crash_primitive_bytes",
    "symex_status", "poc_generated", "reformed_poc", "bunch_offsets",
    "observed_trap", "failed_phase", "deadline_expired",
    "exception_contained", "cfg_static_fallback", "solver_budget_retried",
    "preprocess_seconds", "p1_seconds", "p23_seconds", "p4_seconds",
    "total_seconds",
}

# The fuzz-fallback stats record is sparse *and* all-or-nothing: a
# report from a run whose campaign never fired carries none of these
# keys (byte-compatible with pre-rung peers), a campaign report carries
# all five. Any strict subset means a torn or tampered frame — the same
# rule ParseReport enforces.
FUZZ_REPORT_KEYS = {
    "fuzz_attempted", "fuzz_execs", "fuzz_execs_to_crash",
    "fuzz_best_distance", "fuzz_seed",
}


def validate_journal(path):
    started = {}   # pair -> attempts seen
    finished = set()
    header = None
    torn = False

    with open(path, "rb") as f:
        data = f.read()
    lines = data.split(b"\n")
    # A file ending in \n splits into [.., b""]; anything else means the
    # writer died mid-record.
    complete, tail = lines[:-1], lines[-1]

    for lineno, raw in enumerate(complete, 1):
        is_last = lineno == len(complete) and not tail
        try:
            rec = json.loads(raw.decode("utf-8"))
            if not isinstance(rec, dict):
                raise ValueError("record is not a JSON object")
        except (ValueError, UnicodeDecodeError) as e:
            # Same tolerance as core::LoadJournal: garbage is only
            # acceptable as the very last record (a torn write).
            if is_last:
                torn = True
                break
            fail(lineno, f"malformed journal record: {e}")

        kind = rec.get("type")
        if lineno == 1:
            if kind != "header":
                fail(lineno, f"first record must be the header, got {kind!r}")
            if rec.get("version") != 1:
                fail(lineno, f"unsupported journal version {rec.get('version')!r}")
            if not isinstance(rec.get("options_hash"), str) or not rec["options_hash"]:
                fail(lineno, "header options_hash must be a non-empty string")
            if not isinstance(rec.get("pair_count"), int) or rec["pair_count"] <= 0:
                fail(lineno, "header pair_count must be a positive integer")
            header = rec
            continue
        if kind == "header":
            fail(lineno, "duplicate header record")
        if kind == "started":
            pair = rec.get("pair")
            if not isinstance(pair, int) or pair < 1:
                fail(lineno, f"started record with bad pair {pair!r}")
            if not isinstance(rec.get("attempt"), int) or rec["attempt"] < 1:
                fail(lineno, "started record with bad attempt")
            started[pair] = started.get(pair, 0) + 1
        elif kind == "finished":
            pair = rec.get("pair")
            if not isinstance(pair, int) or pair < 1:
                fail(lineno, f"finished record with bad pair {pair!r}")
            if pair in finished:
                fail(lineno, f"pair {pair} finished twice")
            report = rec.get("report")
            if not isinstance(report, dict):
                fail(lineno, f"finished record for pair {pair} without a report")
            missing = REPORT_KEYS - set(report)
            if missing:
                fail(lineno, f"pair {pair} report missing keys {sorted(missing)}")
            fuzz_present = FUZZ_REPORT_KEYS & set(report)
            if fuzz_present and fuzz_present != FUZZ_REPORT_KEYS:
                fail(lineno, f"pair {pair} report has truncated fuzz stats "
                             f"{sorted(fuzz_present)}")
            finished.add(pair)
        else:
            fail(lineno, f"unknown journal record type {kind!r}")

    if header is None:
        fail(1, "journal has no header record")
    if tail:
        torn = True

    in_flight = sorted(set(started) - finished)
    print(f"OK: journal for {header['pair_count']} pair(s), options "
          f"{header['options_hash']} — {len(finished)} finished, "
          f"{len(in_flight)} in flight{' ' + str(in_flight) if in_flight else ''}"
          f"{', torn tail (healed on resume)' if torn else ''}")


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--journal":
        validate_journal(sys.argv[2])
        return
    server_mode = False
    soak_mode = False
    args = sys.argv[1:]
    if args and args[0] == "--server":
        server_mode = True
        args = args[1:]
    elif args and args[0] == "--soak":
        soak_mode = True
        args = args[1:]
    if len(args) != 1:
        print(__doc__)
        sys.exit(2)

    span_keys = {"type", "name", "tid", "seq", "ts_ns", "arg"}
    counter_keys = {"type", "name", "tid", "seq", "ts_ns", "value"}

    events = 0
    last_seq = -1
    stacks = {}  # tid -> [open span names]
    counts = {"begin": 0, "end": 0, "counter": 0}
    # Server mode: per-tid stack of [request_satisfied] flags mirroring
    # the open "request" spans, so nesting is handled like the span
    # stack itself.
    request_spans = 0
    fuzz_spans = 0
    open_requests = {}  # tid -> [bool: saw verify/disk-hit/failed]
    HANDLED_COUNTERS = {"artifact_disk_hit", "request_failed"}
    # Soak mode state.
    gen_spans = 0
    soak_legs = set()
    last_pairs_verified = 0
    soak_violations = None  # last "soak.violations" value seen

    with open(args[0], encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                fail(lineno, "blank line")
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(lineno, f"not valid JSON: {e}")
            if not isinstance(ev, dict):
                fail(lineno, "line is not a JSON object")

            kind = ev.get("type")
            if kind not in counts:
                fail(lineno, f"unknown type {kind!r}")
            counts[kind] += 1

            want = counter_keys if kind == "counter" else span_keys
            if set(ev) != want:
                fail(lineno, f"keys {sorted(ev)} != expected {sorted(want)}")
            if not isinstance(ev["name"], str) or not ev["name"]:
                fail(lineno, "name must be a non-empty string")
            for num_key in want - {"type", "name"}:
                if not isinstance(ev[num_key], int):
                    fail(lineno, f"{num_key} must be an integer")
            if ev["tid"] < 0 or ev["ts_ns"] < 0:
                fail(lineno, "tid/ts_ns must be non-negative")

            if ev["seq"] <= last_seq:
                fail(lineno, f"seq {ev['seq']} not strictly increasing "
                             f"(previous {last_seq})")
            last_seq = ev["seq"]

            stack = stacks.setdefault(ev["tid"], [])
            if kind == "begin":
                if ev["name"] == "fuzz_fallback":
                    if "verify" not in stack:
                        fail(lineno, "fuzz_fallback span without an "
                                     "enclosing verify span")
                    fuzz_spans += 1
                stack.append(ev["name"])
            elif kind == "counter" and ev["name"] == "fuzz.execs":
                if "fuzz_fallback" not in stack:
                    fail(lineno, "fuzz.execs counter outside a "
                                 "fuzz_fallback span")
                if ev["value"] < 0:
                    fail(lineno, f"fuzz.execs went negative ({ev['value']})")
            elif kind == "end":
                if not stack:
                    fail(lineno, f"end {ev['name']!r} with no open span "
                                 f"on tid {ev['tid']}")
                if stack[-1] != ev["name"]:
                    fail(lineno, f"end {ev['name']!r} does not match "
                                 f"innermost open span {stack[-1]!r}")
                stack.pop()

            if soak_mode:
                if kind == "begin" and ev["name"] == "gen":
                    gen_spans += 1
                elif kind == "begin" and ev["name"] == "soak_leg":
                    if ev["arg"] < 1:
                        fail(lineno, f"soak_leg span with bad leg number "
                                     f"{ev['arg']}")
                    if ev["arg"] in soak_legs:
                        fail(lineno, f"soak leg {ev['arg']} ran twice")
                    soak_legs.add(ev["arg"])
                elif kind == "counter" and ev["name"] == "soak.pairs_verified":
                    if ev["value"] < last_pairs_verified:
                        fail(lineno, f"soak.pairs_verified went backwards "
                                     f"({last_pairs_verified} -> "
                                     f"{ev['value']})")
                    last_pairs_verified = ev["value"]
                elif kind == "counter" and ev["name"] == "soak.violations":
                    soak_violations = ev["value"]

            if server_mode:
                reqs = open_requests.setdefault(ev["tid"], [])
                if kind == "counter" and ev["name"] == "queue_depth" \
                        and ev["value"] < 0:
                    fail(lineno, f"queue_depth went negative "
                                 f"({ev['value']})")
                if kind == "begin" and ev["name"] == "request":
                    reqs.append(False)
                    request_spans += 1
                elif reqs and (
                        (kind == "begin" and ev["name"] == "verify") or
                        (kind == "counter"
                         and ev["name"] in HANDLED_COUNTERS)):
                    reqs[-1] = True
                elif kind == "end" and ev["name"] == "request":
                    if not reqs:
                        fail(lineno, "request end without a request begin")
                    if not reqs.pop():
                        fail(lineno, "request span ended without a verify "
                                     "span, a disk hit, or a recorded "
                                     "failure")
            events += 1

    for tid, stack in stacks.items():
        if stack:
            fail("EOF", f"tid {tid} left spans open: {stack}")
    if events == 0:
        fail("EOF", "trace contains no events")
    if server_mode and request_spans == 0:
        fail("EOF", "server trace contains no request spans")
    if soak_mode:
        if gen_spans == 0:
            fail("EOF", "soak trace contains no gen span")
        if not soak_legs:
            fail("EOF", "soak trace contains no soak_leg spans")
        if soak_violations is None:
            fail("EOF", "soak trace has no final soak.violations counter")
        if soak_violations != 0:
            fail("EOF", f"soak run recorded {soak_violations} violation(s)")

    suffix = f", {request_spans} request span(s)" if server_mode else ""
    if soak_mode:
        suffix += (f", {len(soak_legs)} soak leg(s), "
                   f"{last_pairs_verified} pair(s) verified, 0 violations")
    if fuzz_spans:
        suffix += f", {fuzz_spans} fuzz_fallback span(s)"
    print(f"OK: {events} event(s) — {counts['begin']} begin / "
          f"{counts['end']} end / {counts['counter']} counter, "
          f"{len(stacks)} thread(s), balanced spans{suffix}")


if __name__ == "__main__":
    main()
