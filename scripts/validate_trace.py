#!/usr/bin/env python3
"""Validate a structured-trace JSONL file (support/trace.h schema).

Usage: validate_trace.py TRACE.jsonl

Checks, line by line:
  - each line is a standalone JSON object;
  - "type" is one of begin/end/counter;
  - the fixed key set is present ("name", "tid", "seq", "ts_ns", plus
    "arg" for spans and "value" for counters) with the right types;
  - "seq" values are unique and strictly increasing down the file
    (Snapshot() emits the global merge order);
  - per thread, begin/end events obey stack discipline: every end
    matches the innermost open begin of the same name, and nothing is
    left open at EOF.

Exits 0 and prints a summary on success, 1 with the first offending
line otherwise.
"""
import json
import sys


def fail(lineno, msg):
    print(f"FAIL line {lineno}: {msg}")
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)

    span_keys = {"type", "name", "tid", "seq", "ts_ns", "arg"}
    counter_keys = {"type", "name", "tid", "seq", "ts_ns", "value"}

    events = 0
    last_seq = -1
    stacks = {}  # tid -> [open span names]
    counts = {"begin": 0, "end": 0, "counter": 0}

    with open(sys.argv[1], encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                fail(lineno, "blank line")
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(lineno, f"not valid JSON: {e}")
            if not isinstance(ev, dict):
                fail(lineno, "line is not a JSON object")

            kind = ev.get("type")
            if kind not in counts:
                fail(lineno, f"unknown type {kind!r}")
            counts[kind] += 1

            want = counter_keys if kind == "counter" else span_keys
            if set(ev) != want:
                fail(lineno, f"keys {sorted(ev)} != expected {sorted(want)}")
            if not isinstance(ev["name"], str) or not ev["name"]:
                fail(lineno, "name must be a non-empty string")
            for num_key in want - {"type", "name"}:
                if not isinstance(ev[num_key], int):
                    fail(lineno, f"{num_key} must be an integer")
            if ev["tid"] < 0 or ev["ts_ns"] < 0:
                fail(lineno, "tid/ts_ns must be non-negative")

            if ev["seq"] <= last_seq:
                fail(lineno, f"seq {ev['seq']} not strictly increasing "
                             f"(previous {last_seq})")
            last_seq = ev["seq"]

            stack = stacks.setdefault(ev["tid"], [])
            if kind == "begin":
                stack.append(ev["name"])
            elif kind == "end":
                if not stack:
                    fail(lineno, f"end {ev['name']!r} with no open span "
                                 f"on tid {ev['tid']}")
                if stack[-1] != ev["name"]:
                    fail(lineno, f"end {ev['name']!r} does not match "
                                 f"innermost open span {stack[-1]!r}")
                stack.pop()
            events += 1

    for tid, stack in stacks.items():
        if stack:
            fail("EOF", f"tid {tid} left spans open: {stack}")
    if events == 0:
        fail("EOF", "trace contains no events")

    print(f"OK: {events} event(s) — {counts['begin']} begin / "
          f"{counts['end']} end / {counts['counter']} counter, "
          f"{len(stacks)} thread(s), balanced spans")


if __name__ == "__main__":
    main()
