// The paper's motivating example (§II-C, Figure 2): opj_dump → MuPDF.
//
// A null-pointer dereference in the OpenJPEG codebase is triggered by a
// malformed JPEG2000 file. MuPDF clones that decoder but only accepts
// PDF input — the original J2K PoC never reaches the vulnerable code.
// OCTOPOCS extracts the crash primitive from the J2K PoC and generates
// guiding inputs that wrap it into a PDF, producing a working poc'.
//
//   ./build/examples/mupdf_reforming
#include <cstdio>

#include "core/octopocs.h"
#include "support/hex.h"

using namespace octopocs;

int main() {
  const corpus::Pair pair = corpus::BuildPair(8);  // opj_dump → MuPDF

  std::printf("S = %s (accepts bare MJ2K codestreams)\n",
              pair.s_name.c_str());
  std::printf("T = %s (accepts only MPDF containers)\n\n",
              pair.t_name.c_str());

  std::printf("Original PoC (a malformed J2K stream, ncomp = 0):\n%s\n",
              HexDump(pair.poc).c_str());

  const auto s_run = vm::RunProgram(pair.s, pair.poc);
  std::printf("S(poc)  -> %s (%s)\n", vm::TrapName(s_run.trap).data(),
              s_run.trap_message.c_str());
  const auto t_run = vm::RunProgram(pair.t, pair.poc);
  std::printf("T(poc)  -> %s (the PDF parser rejects a J2K file)\n\n",
              vm::TrapName(t_run.trap).data());

  core::Octopocs pipeline(pair.s, pair.t, pair.shared_functions, pair.poc);
  const core::VerificationReport report = pipeline.Verify();

  std::printf("--- OCTOPOCS ---\n");
  std::printf("P1: ep = %s, %zu bunch(es), %zu crash-primitive bytes "
              "(%.3f ms)\n",
              report.ep_name.c_str(), report.bunch_count,
              report.crash_primitive_bytes,
              report.timings.p1_seconds * 1e3);
  std::printf("P2/P3: %s — %llu states, %llu instructions (%.3f ms)\n",
              symex::SymexStatusName(report.symex_status).data(),
              static_cast<unsigned long long>(
                  report.symex_stats.states_created),
              static_cast<unsigned long long>(
                  report.symex_stats.instructions),
              report.timings.p23_seconds * 1e3);
  std::printf("P4: %s\n\n", report.detail.c_str());

  std::printf("Reformed PoC (the J2K primitive wrapped in a PDF):\n%s\n",
              HexDump(report.reformed_poc).c_str());
  std::printf("verdict: %s (%s)\n",
              core::VerdictName(report.verdict).data(),
              core::ResultTypeName(report.type).data());

  // Cross-check concretely.
  const auto verify = vm::RunProgram(pair.t, report.reformed_poc);
  std::printf("T(poc') -> %s (%s)\n", vm::TrapName(verify.trap).data(),
              verify.trap_message.c_str());
  return report.verdict == core::Verdict::kTriggered ? 0 : 1;
}
