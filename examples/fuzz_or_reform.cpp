// Fuzzing vs PoC reforming on the same verification task (§V-D).
//
// Gives AFLFast, AFLGo, and OCTOPOCS the same job — confirm that the
// MuPDF-analog still contains the cloned OpenJPEG null dereference —
// and shows why search-based tools struggle where reforming succeeds:
// the crash primitive must be *relocated into a different container*,
// which mutation has to rediscover byte by byte while reforming simply
// re-derives the container prefix with directed symbolic execution.
//
//   ./build/examples/fuzz_or_reform [exec_budget]
#include <cstdio>
#include <cstdlib>

#include "core/octopocs.h"
#include "fuzz/fuzzer.h"

using namespace octopocs;

int main(int argc, char** argv) {
  const std::uint64_t budget =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;

  const corpus::Pair pair = corpus::BuildPair(8);  // opj_dump → MuPDF
  const vm::FuncId target = pair.t.FindFunction("mj2k_decode");

  std::printf("Task: prove the cloned decoder in %s is still exploitable\n",
              pair.t_name.c_str());
  std::printf("Budget: %llu executions per fuzzer\n\n",
              static_cast<unsigned long long>(budget));

  fuzz::FuzzOptions fopts;
  fopts.max_execs = budget;

  fuzz::AflFastFuzzer aflfast(pair.t, target, {pair.poc}, fopts);
  const fuzz::FuzzResult fast = aflfast.Run();
  std::printf("AFLFast : %s (%llu execs, %zu edges, corpus %zu)\n",
              fast.verified ? "VERIFIED" : "gave up",
              static_cast<unsigned long long>(fast.execs),
              fast.edges_covered, fast.corpus_size);

  const cfg::Cfg graph = cfg::Cfg::Build(pair.t);
  fuzz::AflGoFuzzer aflgo(pair.t, target, graph, {pair.poc}, fopts);
  const fuzz::FuzzResult go = aflgo.Run();
  std::printf("AFLGo   : %s (%llu execs, %zu edges, corpus %zu)\n",
              go.verified ? "VERIFIED" : "gave up",
              static_cast<unsigned long long>(go.execs),
              go.edges_covered, go.corpus_size);

  const core::VerificationReport octo = core::VerifyPair(pair);
  std::printf("OCTOPOCS: %s (%llu symbolic instructions, %llu states, "
              "%.2f ms)\n\n",
              octo.verdict == core::Verdict::kTriggered ? "VERIFIED"
                                                        : "failed",
              static_cast<unsigned long long>(
                  octo.symex_stats.instructions),
              static_cast<unsigned long long>(
                  octo.symex_stats.states_created),
              octo.timings.total_seconds * 1e3);

  std::printf("Why the gap: the fuzzers must synthesize a %zu-byte PDF\n"
              "container around the crash primitive by random mutation;\n"
              "reforming derives it from T's own branch conditions.\n",
              octo.reformed_poc.size());
  return octo.verdict == core::Verdict::kTriggered ? 0 : 1;
}
