// Quickstart: verify a propagated vulnerability end-to-end.
//
// Builds a miniature S/T pair in MiniVM assembly — S parses an "SS"
// container, T parses a "TT!" container, both share the vulnerable
// record decoder `dec` — then asks OCTOPOCS whether S's crashing input
// still threatens T. Run it:
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/octopocs.h"
#include "support/hex.h"
#include "vm/asm.h"

using namespace octopocs;

// The shared vulnerable area ℓ: a record decoder that indexes a 16-byte
// table with the unchecked sum of two record bytes.
constexpr const char* kSharedDecoder = R"(
  func dec(mode)
    movi %two, 2
    alloc %rec, %two
    read %got, %rec, %two
    load.1 %a, %rec, 0
    load.1 %b, %rec, 1
    add %idx, %a, %b
    movi %lim, 16
    alloc %tbl, %lim
    add %p, %tbl, %idx
    movi %one, 1
    store.1 %one, %p, 0       ; out-of-bounds when a + b >= 16
    ret %idx
)";

// S: "SS" magic, record count, then records.
constexpr const char* kOriginalS = R"(
  func main()
    movi %n, 4
    alloc %hdr, %n
    movi %three, 3
    read %got, %hdr, %three
    load.1 %m, %hdr, 0
    movi %cs, 'S'
    cmpeq %ok, %m, %cs
    assert %ok
    load.1 %cnt, %hdr, 2
    movi %i, 0
    movi %zero, 0
  loop:
    cmpltu %more, %i, %cnt
    br %more, body, done
  body:
    call %v, dec(%zero)
    addi %i, %i, 1
    jmp loop
  done:
    ret %i
)";

// T: different container ("TT!" magic, count at offset 3) around the
// cloned decoder — S's PoC means nothing to T's parser.
constexpr const char* kPropagatedT = R"(
  func main()
    movi %n, 8
    alloc %hdr, %n
    movi %four, 4
    read %got, %hdr, %four
    load.1 %m0, %hdr, 0
    movi %ct, 'T'
    cmpeq %ok0, %m0, %ct
    assert %ok0
    load.1 %m1, %hdr, 1
    cmpeq %ok1, %m1, %ct
    assert %ok1
    load.1 %m2, %hdr, 2
    movi %bang, '!'
    cmpeq %ok2, %m2, %bang
    assert %ok2
    load.1 %cnt, %hdr, 3
    movi %i, 0
    movi %zero, 0
  loop:
    cmpltu %more, %i, %cnt
    br %more, body, done
  body:
    call %v, dec(%zero)
    addi %i, %i, 1
    jmp loop
  done:
    ret %i
)";

int main() {
  const vm::Program s = vm::AssembleParts({kSharedDecoder, kOriginalS});
  const vm::Program t = vm::AssembleParts({kSharedDecoder, kPropagatedT});

  // The original PoC: "SS", two records, the second overflows.
  const Bytes poc{'S', 'S', 2, 1, 2, 0x80, 0x90};

  std::printf("S crashes on poc:  %s\n",
              vm::TrapName(vm::RunProgram(s, poc).trap).data());
  std::printf("T on the same poc: %s (wrong container, PoC rejected)\n\n",
              vm::TrapName(vm::RunProgram(t, poc).trap).data());

  // Ask OCTOPOCS: is the clone still triggerable in T?
  core::Octopocs pipeline(s, t, {"dec"}, poc);
  const core::VerificationReport report = pipeline.Verify();

  std::printf("verdict:  %s (%s)\n",
              core::VerdictName(report.verdict).data(),
              core::ResultTypeName(report.type).data());
  std::printf("ep:       %s | encounters in S: %u | bunches: %zu\n",
              report.ep_name.c_str(), report.ep_encounters_in_s,
              report.bunch_count);
  std::printf("poc:      %s\n", ToHex(poc).c_str());
  std::printf("poc':     %s\n", ToHex(report.reformed_poc).c_str());
  std::printf("P4 trap:  %s\n\n",
              vm::TrapName(report.observed_trap).data());

  // Seeing is believing: run T on the reformed PoC directly.
  const auto verify = vm::RunProgram(t, report.reformed_poc);
  std::printf("T(poc') => %s at address 0x%llx\n",
              vm::TrapName(verify.trap).data(),
              static_cast<unsigned long long>(verify.fault_addr));
  return report.verdict == core::Verdict::kTriggered ? 0 : 1;
}
