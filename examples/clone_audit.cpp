// Fully automatic clone audit: no hand-supplied ℓ.
//
// The paper assumes the shared function set ℓ arrives from a clone
// detector like VUDDY. This example closes the loop: for each corpus
// pair it (1) fingerprints both programs and detects the cloned
// functions — including one T renamed — then (2) verifies triggerability
// with the detected ℓ, exactly how a real audit would run.
//
//   ./build/examples/clone_audit
#include <cstdio>

#include "clone/detector.h"
#include "core/octopocs.h"
#include "corpus/extended.h"

using namespace octopocs;

int main() {
  int audited = 0, agreed = 0;
  std::vector<corpus::Pair> pairs = corpus::BuildCorpus();
  for (auto& extra : corpus::BuildExtendedCorpus()) {
    pairs.push_back(std::move(extra));
  }

  for (const corpus::Pair& pair : pairs) {
    // Step 1: detect ℓ from the binaries alone.
    const auto matches = clone::DetectClones(pair.s, pair.t);
    std::vector<std::string> shared;
    std::map<std::string, std::string> name_map;
    for (const auto& m : matches) {
      shared.push_back(m.name_in_s);
      if (m.name_in_s != m.name_in_t) name_map[m.name_in_s] = m.name_in_t;
    }
    if (shared.empty()) {
      std::printf("%-2d %-24s no clones detected, skipping\n", pair.idx,
                  pair.t_name.c_str());
      continue;
    }

    // Step 2: verify with the detected ℓ.
    core::PipelineOptions opts;
    opts.verify_exec.fuel = 2'000'000;
    core::Octopocs pipeline(pair.s, pair.t, shared, pair.poc, opts,
                            name_map);
    const auto report = pipeline.Verify();
    ++audited;

    // Compare with the curated ground truth.
    core::VerificationReport curated = core::VerifyPair(pair, opts);
    const bool same = report.verdict == curated.verdict;
    if (same) ++agreed;

    std::printf("%-2d %-24s clones=%zu%s  verdict=%-15s %s\n", pair.idx,
                pair.t_name.c_str(), matches.size(),
                name_map.empty() ? " " : "*",
                core::VerdictName(report.verdict).data(),
                same ? "" : "(differs from curated ℓ!)");
  }

  std::printf(
      "\n%d pairs audited with detector-derived ℓ; %d verdicts agree "
      "with the curated shared-function lists.\n(* = a clone was "
      "matched under a different name in T)\n",
      audited, agreed);
  return audited == agreed ? 0 : 1;
}
