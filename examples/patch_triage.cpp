// Patch-priority triage (the paper's "Practical usage", §VII).
//
// A developer's clone detector reported 15 propagated vulnerable code
// clones. Which ones must be patched *now*? Running OCTOPOCS over every
// pair splits the list into (a) clones that are live threats — a
// reformed PoC demonstrably crashes the binary — and (b) clones that
// cannot currently be triggered and can wait for routine maintenance.
//
//   ./build/examples/patch_triage
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/octopocs.h"

using namespace octopocs;

int main() {
  struct Finding {
    const corpus::Pair* pair;
    core::VerificationReport report;
  };

  const std::vector<corpus::Pair> corpus_pairs = corpus::BuildCorpus();
  std::vector<Finding> findings;
  for (const corpus::Pair& pair : corpus_pairs) {
    core::PipelineOptions opts;
    opts.verify_exec.fuel = 2'000'000;
    findings.push_back({&pair, core::VerifyPair(pair, opts)});
  }

  // Urgent first, then unverifiable (needs a human), then safe-for-now.
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return static_cast<int>(a.report.verdict) <
                            static_cast<int>(b.report.verdict);
                   });

  std::printf("PATCH PRIORITY REPORT — %zu propagated clones analysed\n",
              findings.size());
  std::printf("======================================================\n");

  const char* bucket = "";
  for (const Finding& f : findings) {
    const char* heading = "";
    switch (f.report.verdict) {
      case core::Verdict::kTriggered:
        heading = "PATCH IMMEDIATELY — exploit input generated";
        break;
      case core::Verdict::kNotTriggerable:
        heading = "SAFE FOR NOW — clone present but not triggerable";
        break;
      case core::Verdict::kFailure:
        heading = "NEEDS MANUAL ANALYSIS — tooling could not decide";
        break;
    }
    if (std::string(bucket) != heading) {
      bucket = heading;
      std::printf("\n[%s]\n", heading);
    }
    std::printf("  %-22s %-14s in %-26s", f.pair->vuln_id.c_str(),
                f.pair->cwe.c_str(), f.pair->t_name.c_str());
    if (f.report.verdict == core::Verdict::kTriggered) {
      std::printf(" | PoC: %zu bytes, crash: %s",
                  f.report.reformed_poc.size(),
                  vm::TrapName(f.report.observed_trap).data());
    } else if (f.report.verdict == core::Verdict::kNotTriggerable) {
      std::printf(" | why: %s",
                  f.report.symex_status == symex::SymexStatus::kUnsat
                      ? "vulnerable context cannot be delivered"
                      : "shared code unreachable");
    } else {
      std::printf(" | %s", f.report.detail.substr(0, 48).c_str());
    }
    std::printf("\n");
  }

  const int urgent = static_cast<int>(std::count_if(
      findings.begin(), findings.end(), [](const Finding& f) {
        return f.report.verdict == core::Verdict::kTriggered;
      }));
  std::printf("\n%d of %zu clones are live threats.\n", urgent,
              findings.size());
  return 0;
}
