#include "cfg/cfg.h"

#include <algorithm>
#include <deque>

#include "support/fault.h"

namespace octopocs::cfg {

namespace {
constexpr std::uint32_t kInf = ~0u;
}  // namespace

std::optional<std::uint32_t> DistanceMap::Distance(vm::FuncId fn,
                                                   vm::BlockId block) const {
  if (fn >= dist_.size() || block >= dist_[fn].size()) return std::nullopt;
  const std::uint32_t d = dist_[fn][block];
  if (d == kInf) return std::nullopt;
  return d;
}

bool DistanceMap::Reaches(vm::FuncId fn, vm::BlockId block) const {
  return Distance(fn, block).has_value();
}

bool DistanceMap::FuncReaches(vm::FuncId fn) const { return Reaches(fn, 0); }

Cfg Cfg::Build(const vm::Program& program, const CfgOptions& options) {
  // The angr-crash analogue: CFG recovery itself dies. Thrown as
  // FaultError (not CfgError) so containment tests exercise the generic
  // exception path, not the modelled-defect fallback.
  support::fault::MaybeThrow(support::FaultSite::kCfgBuild);
  if (auto err = Validate(program)) {
    throw CfgError("invalid program: " + *err);
  }
  Cfg cfg(program);
  cfg.BuildStaticEdges();
  if (options.use_dynamic) {
    cfg.CheckObfuscatedICalls(options);
    cfg.BuildDynamicEdges(options);
  }
  if (options.resolve_obfuscated_icalls) {
    cfg.ResolveIndirectTargetsByConstProp();
  }
  cfg.ComputeBackEdges();
  return cfg;
}

Cfg Cfg::FromEdges(const vm::Program& program, Edges edges) {
  Cfg cfg(program);
  cfg.succs_ = std::move(edges.succs);
  cfg.dynamic_edge_count_ = edges.dynamic_edge_count;
  cfg.ComputeBackEdges();
  return cfg;
}

void Cfg::BuildStaticEdges() {
  const vm::Program& p = *program_;
  succs_.resize(p.functions.size());
  for (vm::FuncId f = 0; f < p.functions.size(); ++f) {
    const vm::Function& fn = p.functions[f];
    succs_[f].resize(fn.blocks.size());
    for (vm::BlockId b = 0; b < fn.blocks.size(); ++b) {
      auto& out = succs_[f][b];
      // Direct call edges (indirect sites contribute nothing statically).
      for (const vm::Instr& ins : fn.blocks[b].instrs) {
        if (ins.op == vm::Op::kCall) {
          out.push_back({static_cast<vm::FuncId>(ins.imm), 0});
        }
      }
      // Terminator edges.
      const vm::Terminator& t = fn.blocks[b].term;
      switch (t.kind) {
        case vm::TermKind::kJump:
          out.push_back({f, t.target});
          break;
        case vm::TermKind::kBranch:
          out.push_back({f, t.target});
          if (t.fallthrough != t.target) out.push_back({f, t.fallthrough});
          break;
        case vm::TermKind::kReturn:
          break;
      }
    }
  }
}

void Cfg::CheckObfuscatedICalls(const CfgOptions& options) const {
  if (options.resolve_obfuscated_icalls) return;
  const vm::Program& p = *program_;
  for (const vm::Function& fn : p.functions) {
    for (const vm::Block& block : fn.blocks) {
      for (std::size_t i = 0; i < block.instrs.size(); ++i) {
        const vm::Instr& ins = block.instrs[i];
        if (ins.op != vm::Op::kICall) continue;
        // Walk backwards in the block for the defining instruction of the
        // target register; an XOR definition is the obfuscation pattern
        // the simulated angr defect chokes on.
        for (std::size_t j = i; j-- > 0;) {
          const vm::Instr& def = block.instrs[j];
          const bool defines_target =
              def.a == ins.b && def.op != vm::Op::kStore &&
              def.op != vm::Op::kAssert && def.op != vm::Op::kFree &&
              def.op != vm::Op::kSeek;
          if (!defines_target) continue;
          if (def.op == vm::Op::kXor) {
            throw CfgError(
                "dynamic CFG recovery failed in function '" + fn.name +
                "': indirect-call target flows through an XOR-obfuscated "
                "pointer (simulated angr defect; enable "
                "resolve_obfuscated_icalls to apply the upstream fix)");
          }
          break;  // nearest definition decides
        }
      }
    }
  }
}

namespace {

/// Observer collecting resolved indirect-call targets per call site.
class ICallRecorder : public vm::ExecutionObserver {
 public:
  void OnIndirectCall(vm::FuncId caller, vm::BlockId block, std::size_t,
                      vm::FuncId target) override {
    edges.insert({{caller, block}, target});
  }
  /// The edge set is the recorder's whole state; serializing it lets the
  /// interpreter fast-forward exact loop cycles in seed runs that hang.
  bool SnapshotState(std::vector<std::uint8_t>* out) const override {
    AppendLe(*out, edges.size(), 8);
    for (const auto& [site, target] : edges) {
      AppendLe(*out, site.first, 4);
      AppendLe(*out, site.second, 4);
      AppendLe(*out, target, 4);
    }
    return true;
  }
  std::set<std::pair<std::pair<vm::FuncId, vm::BlockId>, vm::FuncId>> edges;
};

}  // namespace

void Cfg::BuildDynamicEdges(const CfgOptions& options) {
  ICallRecorder recorder;
  std::vector<Bytes> seeds = options.seed_inputs;
  seeds.emplace_back();  // always try the empty input too
  for (const Bytes& seed : seeds) {
    vm::Interpreter interp(*program_, seed, options.exec);
    interp.AddObserver(&recorder);
    const vm::ExecResult run = interp.Run();  // crashes are fine...
    if (run.trap == vm::TrapKind::kDeadline) {
      // ...but a tripped deadline means the whole phase is out of time.
      throw CfgError(
          "dynamic CFG construction cancelled: wall-clock deadline "
          "expired");
    }
  }
  for (const auto& [site, target] : recorder.edges) {
    auto& out = succs_[site.first][site.second];
    const Node node{target, 0};
    if (std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
      ++dynamic_edge_count_;
    }
  }
}

namespace {

/// Abstract register state for the const-prop resolver: nullopt = not a
/// compile-time constant.
using RegConsts = std::vector<std::optional<std::uint64_t>>;

std::optional<std::uint64_t> LoadRodataConst(const vm::Program& p,
                                             std::uint64_t addr,
                                             unsigned width) {
  if (addr < vm::kRodataBase ||
      addr + width > vm::kRodataBase + p.rodata.size()) {
    return std::nullopt;
  }
  std::uint64_t v = 0;
  for (unsigned i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(p.rodata[addr - vm::kRodataBase + i])
         << (8 * i);
  }
  return v;
}

/// Applies one instruction to the abstract state; appends resolved
/// indirect-call targets.
void TransferConstProp(const vm::Program& p, const vm::Instr& ins,
                       RegConsts* regs,
                       std::vector<std::uint64_t>* icall_targets) {
  auto& r = *regs;
  auto known = [&](vm::Reg reg) { return r[reg].has_value(); };
  switch (ins.op) {
    case vm::Op::kMovImm:
    case vm::Op::kFnAddr:
      r[ins.a] = ins.imm;
      break;
    case vm::Op::kMMap:
      r[ins.a] = vm::kMmapBase;  // the mapping base is a constant
      break;
    case vm::Op::kMov:
      r[ins.a] = r[ins.b];
      break;
    case vm::Op::kNot:
      r[ins.a] = known(ins.b) ? std::optional(~*r[ins.b]) : std::nullopt;
      break;
    case vm::Op::kAddImm:
      r[ins.a] = known(ins.b) ? std::optional(*r[ins.b] + ins.imm)
                              : std::nullopt;
      break;
    case vm::Op::kLoad:
      r[ins.a] = known(ins.b)
                     ? LoadRodataConst(p, *r[ins.b] + ins.imm, ins.width)
                     : std::nullopt;
      break;
    case vm::Op::kICall:
      if (known(ins.b) && *r[ins.b] < p.functions.size()) {
        icall_targets->push_back(*r[ins.b]);
      }
      r[ins.a] = std::nullopt;
      break;
    default:
      if (vm::IsBinaryAlu(ins.op)) {
        if (known(ins.b) && known(ins.c)) {
          const std::uint64_t a = *r[ins.b], b = *r[ins.c];
          std::optional<std::uint64_t> out;
          switch (ins.op) {
            case vm::Op::kAdd: out = a + b; break;
            case vm::Op::kSub: out = a - b; break;
            case vm::Op::kMul: out = a * b; break;
            case vm::Op::kAnd: out = a & b; break;
            case vm::Op::kOr: out = a | b; break;
            case vm::Op::kXor: out = a ^ b; break;
            case vm::Op::kShl: out = a << (b & 63); break;
            case vm::Op::kShr: out = a >> (b & 63); break;
            case vm::Op::kCmpEq: out = a == b ? 1 : 0; break;
            case vm::Op::kCmpNe: out = a != b ? 1 : 0; break;
            case vm::Op::kCmpLtU: out = a < b ? 1 : 0; break;
            case vm::Op::kCmpLeU: out = a <= b ? 1 : 0; break;
            case vm::Op::kCmpGtU: out = a > b ? 1 : 0; break;
            case vm::Op::kCmpGeU: out = a >= b ? 1 : 0; break;
            default: break;
          }
          r[ins.a] = out;
        } else {
          r[ins.a] = std::nullopt;
        }
      } else if (ins.op == vm::Op::kDivU || ins.op == vm::Op::kRemU) {
        r[ins.a] = std::nullopt;
      } else {
        // Everything else that writes `a` produces a runtime value.
        switch (ins.op) {
          case vm::Op::kAlloc:
          case vm::Op::kRead:
          case vm::Op::kTell:
          case vm::Op::kFileSize:
          case vm::Op::kCall:
            r[ins.a] = std::nullopt;
            break;
          default:
            break;
        }
      }
      break;
  }
}

/// Meet of two abstract states: values agree → keep, else unknown.
bool MeetInto(RegConsts* into, const RegConsts& other) {
  bool changed = false;
  for (std::size_t i = 0; i < into->size(); ++i) {
    if ((*into)[i].has_value() &&
        (!other[i].has_value() || *other[i] != *(*into)[i])) {
      (*into)[i] = std::nullopt;
      changed = true;
    }
  }
  return changed;
}

}  // namespace

void Cfg::ResolveIndirectTargetsByConstProp() {
  const vm::Program& p = *program_;
  for (vm::FuncId f = 0; f < p.functions.size(); ++f) {
    const vm::Function& fn = p.functions[f];
    bool has_icall = false;
    for (const vm::Block& b : fn.blocks) {
      for (const vm::Instr& ins : b.instrs) {
        if (ins.op == vm::Op::kICall) has_icall = true;
      }
    }
    if (!has_icall) continue;

    // Forward dataflow to fixpoint over block-entry states.
    std::vector<std::optional<RegConsts>> entry(fn.blocks.size());
    entry[0] = RegConsts(fn.num_regs);  // params/regs unknown
    bool changed = true;
    int rounds = 0;
    while (changed && rounds++ < 64) {
      changed = false;
      for (vm::BlockId b = 0; b < fn.blocks.size(); ++b) {
        if (!entry[b]) continue;
        RegConsts state = *entry[b];
        std::vector<std::uint64_t> ignored;
        for (const vm::Instr& ins : fn.blocks[b].instrs) {
          TransferConstProp(p, ins, &state, &ignored);
        }
        auto propagate = [&](vm::BlockId succ) {
          if (!entry[succ]) {
            entry[succ] = state;
            changed = true;
          } else if (MeetInto(&*entry[succ], state)) {
            changed = true;
          }
        };
        const vm::Terminator& t = fn.blocks[b].term;
        if (t.kind == vm::TermKind::kJump) propagate(t.target);
        if (t.kind == vm::TermKind::kBranch) {
          propagate(t.target);
          propagate(t.fallthrough);
        }
      }
    }

    // Final pass: harvest resolved targets.
    for (vm::BlockId b = 0; b < fn.blocks.size(); ++b) {
      if (!entry[b]) continue;
      RegConsts state = *entry[b];
      std::vector<std::uint64_t> targets;
      for (const vm::Instr& ins : fn.blocks[b].instrs) {
        TransferConstProp(p, ins, &state, &targets);
      }
      for (const std::uint64_t target : targets) {
        auto& out = succs_[f][b];
        const Node node{static_cast<vm::FuncId>(target), 0};
        if (std::find(out.begin(), out.end(), node) == out.end()) {
          out.push_back(node);
        }
      }
    }
  }
}

const std::vector<Cfg::Node>& Cfg::Successors(vm::FuncId fn,
                                              vm::BlockId block) const {
  return succs_[fn][block];
}

DistanceMap Cfg::BackwardReachability(vm::FuncId ep) const {
  const vm::Program& p = *program_;
  DistanceMap map;
  map.dist_.resize(p.functions.size());
  for (vm::FuncId f = 0; f < p.functions.size(); ++f) {
    map.dist_[f].assign(p.functions[f].blocks.size(), kInf);
  }

  // Build the reversed adjacency on the fly: predecessors of each node.
  // The graph is small (corpus programs are a few hundred blocks), so a
  // full reverse pass is cheap.
  std::map<Node, std::vector<Node>> preds;
  for (vm::FuncId f = 0; f < p.functions.size(); ++f) {
    for (vm::BlockId b = 0; b < succs_[f].size(); ++b) {
      for (const Node& s : succs_[f][b]) {
        preds[s].push_back({f, b});
      }
    }
  }

  std::deque<Node> queue;
  map.dist_[ep][0] = 0;
  queue.push_back({ep, 0});
  while (!queue.empty()) {
    const Node n = queue.front();
    queue.pop_front();
    const std::uint32_t d = map.dist_[n.fn][n.block];
    auto it = preds.find(n);
    if (it == preds.end()) continue;
    for (const Node& pred : it->second) {
      if (map.dist_[pred.fn][pred.block] == kInf) {
        map.dist_[pred.fn][pred.block] = d + 1;
        queue.push_back(pred);
      }
    }
  }
  map.entry_reaches_ = map.dist_[p.entry][0] != kInf;
  return map;
}

void Cfg::ComputeBackEdges() {
  const vm::Program& p = *program_;
  back_edges_.resize(p.functions.size());
  for (vm::FuncId f = 0; f < p.functions.size(); ++f) {
    const vm::Function& fn = p.functions[f];
    // Iterative DFS from the entry block, intra-procedural edges only.
    enum class Color : std::uint8_t { kWhite, kGray, kBlack };
    std::vector<Color> color(fn.blocks.size(), Color::kWhite);
    struct StackItem {
      vm::BlockId block;
      std::size_t next_succ = 0;
    };
    auto intra_succs = [&](vm::BlockId b) {
      std::vector<vm::BlockId> out;
      const vm::Terminator& t = fn.blocks[b].term;
      if (t.kind == vm::TermKind::kJump) out.push_back(t.target);
      if (t.kind == vm::TermKind::kBranch) {
        out.push_back(t.target);
        if (t.fallthrough != t.target) out.push_back(t.fallthrough);
      }
      return out;
    };
    std::vector<StackItem> stack;
    stack.push_back({0, 0});
    color[0] = Color::kGray;
    while (!stack.empty()) {
      StackItem& top = stack.back();
      const auto succs = intra_succs(top.block);
      if (top.next_succ >= succs.size()) {
        color[top.block] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const vm::BlockId next = succs[top.next_succ++];
      if (color[next] == Color::kGray) {
        back_edges_[f].insert({top.block, next});
      } else if (color[next] == Color::kWhite) {
        color[next] = Color::kGray;
        stack.push_back({next, 0});
      }
    }
  }
}

bool Cfg::IsBackEdge(vm::FuncId fn, vm::BlockId from, vm::BlockId to) const {
  return back_edges_[fn].count({from, to}) != 0;
}

}  // namespace octopocs::cfg
