// Control-flow graph construction and backward path finding (paper §III-B).
//
// OCTOPOCS steers its symbolic execution of T by first finding, on the
// CFG, which blocks can still lead to the shared-area entry point ep.
// The paper builds this with angr and prefers the *dynamic* CFG because a
// static CFG misses indirect-call edges that only appear at run time.
// This module reproduces both:
//
//  - the static CFG derives intra-block edges and direct-call edges from
//    the IR; indirect call sites are recorded but target-less;
//  - the dynamic CFG additionally executes the program on seed inputs and
//    records every resolved indirect-call target (OnIndirectCall events);
//  - BackwardReachability() runs the reverse-BFS "backward path finding"
//    from ep's entry block and yields a block-level distance map that the
//    directed executor consults at every branch.
//
// Simulated angr defect (paper Table II Idx-15): the paper's one Failure
// row is caused by an angr bug that prevented CFG recovery for pdfinfo.
// We model that bug deterministically: if a program performs an indirect
// call whose target register was produced by an XOR (pointer
// obfuscation), the dynamic builder refuses to construct the CFG unless
// CfgOptions::resolve_obfuscated_icalls is set (the "bug fixed" switch
// used by the ablation bench).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/bytes.h"
#include "vm/interp.h"

namespace octopocs::cfg {

/// CFG recovery failure — the verdict for such targets is `Failure`
/// (tooling limit), matching the paper's Idx-15 row.
class CfgError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CfgOptions {
  /// Build dynamic indirect-call edges by running the program on seeds.
  bool use_dynamic = true;
  /// "Fix the angr bug": allow XOR-obfuscated indirect-call targets.
  bool resolve_obfuscated_icalls = false;
  /// Concrete inputs used to discover dynamic edges. An empty input is
  /// always tried in addition.
  std::vector<Bytes> seed_inputs;
  vm::ExecOptions exec;
};

/// Block-level distances to ep (backward path finding result).
class DistanceMap {
 public:
  /// Edge distance from the start of `block` in `fn` to ep's entry, or
  /// nullopt when ep is unreachable from there.
  std::optional<std::uint32_t> Distance(vm::FuncId fn,
                                        vm::BlockId block) const;
  /// True iff ep is reachable from the start of that block.
  bool Reaches(vm::FuncId fn, vm::BlockId block) const;
  /// True iff ep is reachable from the function's entry block.
  bool FuncReaches(vm::FuncId fn) const;
  /// True iff ep is reachable from the program entry — the paper's
  /// verification case (ii): "ep is not called in T".
  bool EntryReaches() const { return entry_reaches_; }

 private:
  friend class Cfg;
  std::vector<std::vector<std::uint32_t>> dist_;  // [fn][block], ~0u = inf
  bool entry_reaches_ = false;
};

class Cfg {
 public:
  /// Builds the CFG. Throws CfgError when dynamic construction hits the
  /// simulated angr defect (see file comment).
  static Cfg Build(const vm::Program& program, const CfgOptions& options = {});

  /// Successor (fn, block) pairs: intra-procedural terminator targets
  /// plus the entry blocks of every (resolved) callee in the block.
  struct Node {
    vm::FuncId fn;
    vm::BlockId block;
    auto operator<=>(const Node&) const = default;
  };
  const std::vector<Node>& Successors(vm::FuncId fn, vm::BlockId block) const;

  /// Backward path finding from ep's entry block (paper §III-B): a
  /// reverse BFS over the interprocedural graph.
  DistanceMap BackwardReachability(vm::FuncId ep) const;

  /// True iff (from → to) is a loop back edge inside `fn` (DFS-based).
  /// The directed executor uses this to recognise loop states.
  bool IsBackEdge(vm::FuncId fn, vm::BlockId from, vm::BlockId to) const;

  /// Indirect-call edges discovered dynamically, per call site.
  std::size_t dynamic_edge_count() const { return dynamic_edge_count_; }

  const vm::Program& program() const { return *program_; }

  /// Portable edge data for content-addressed caching (DESIGN.md §11):
  /// everything construction discovered, with no pointer back into the
  /// Program object it was built from. A cached Cfg itself would dangle
  /// once the originating corpus pair is destroyed; the edge set plus a
  /// structurally identical program rebuilds an equivalent Cfg.
  struct Edges {
    std::vector<std::vector<std::vector<Node>>> succs;
    std::size_t dynamic_edge_count = 0;
  };
  Edges ExportEdges() const { return {succs_, dynamic_edge_count_}; }

  /// Rebinds exported edges to `program`, which must be structurally
  /// identical to the program the edges were built from (the artifact
  /// key guarantees this). Back edges are recomputed — they derive
  /// deterministically from the program's terminators.
  static Cfg FromEdges(const vm::Program& program, Edges edges);

 private:
  explicit Cfg(const vm::Program& program) : program_(&program) {}

  void BuildStaticEdges();
  void BuildDynamicEdges(const CfgOptions& options);
  void CheckObfuscatedICalls(const CfgOptions& options) const;
  /// The "upstream fix" for the simulated angr defect: resolves indirect
  /// call targets by intra-procedural constant propagation (kFnAddr /
  /// kMovImm / rodata loads / ALU over known values), which covers the
  /// XOR-obfuscated pointer pattern. Only runs when
  /// CfgOptions::resolve_obfuscated_icalls is set.
  void ResolveIndirectTargetsByConstProp();
  void ComputeBackEdges();

  const vm::Program* program_;
  // succs_[fn][block] — interprocedural successor list.
  std::vector<std::vector<std::vector<Node>>> succs_;
  std::vector<std::set<std::pair<vm::BlockId, vm::BlockId>>> back_edges_;
  std::size_t dynamic_edge_count_ = 0;
};

}  // namespace octopocs::cfg
