// Miniature file formats used by the corpus pairs.
//
// The paper's 15 CVE pairs parse real JPEG / JPEG2000 / GIF / TIFF / PDF
// files. The corpus substitutes five miniature formats that preserve the
// structural properties the experiments depend on — magic headers,
// length-prefixed segments/boxes, tag-directory entries, and nested
// containers (a PDF-like wrapper embedding an image stream, which is the
// motivating MuPDF example). Each format has a writer for well-formed
// files and one or more malformed-PoC constructors that trigger the
// corresponding corpus vulnerability.
//
// All multi-byte fields are little-endian (matching the MiniVM's loads).
//
//   MJPG  "MJPG"  [type:1][len:2][payload]*            segments
//   MJ2K  "MJ2K"  [type:1][len:2][payload]*            boxes
//   MGIF  "GIF87a" [w:2][h:2] [blocktype:1]...         blocks
//   MTIF  "II*\0" [n:2] ([tag:2][count:2][value:4])*   IFD entries
//   MPDF  "%PDF"  [nobj:1] objects                     container
#pragma once

#include <cstdint>
#include <vector>

#include "support/bytes.h"

namespace octopocs::formats {

// ---------------------------------------------------------------------------
// MJPG — mini JPEG. Segment types.
// ---------------------------------------------------------------------------
inline constexpr std::uint8_t kMjpgQuantTable = 0xD8;  // [index:1][data...]
inline constexpr std::uint8_t kMjpgScan = 0xDA;        // [qidx:1][w:1][h:1][pix]
inline constexpr std::uint8_t kMjpgStreamChunk = 0xC0; // [data...] (pair 4)
inline constexpr std::uint8_t kMjpgDims = 0xC4;        // [w:2][h:2]  (pair 5)
inline constexpr std::uint8_t kMjpgEnd = 0xD9;         // len 0

struct MjpgSegment {
  std::uint8_t type = kMjpgEnd;
  Bytes payload;
};

Bytes WriteMjpg(const std::vector<MjpgSegment>& segments);

/// Well-formed image: one quant table (index 0) + one scan using it.
Bytes MjpgValidFile();

/// Quant-table-index OOB (pairs 1-2): the scan references table index 9
/// while the decoder only has 4 slots.
Bytes MjpgQuantIndexPoc();

/// Oversized stream chunk (pair 4): a chunk longer than the decoder's
/// 32-byte staging buffer.
Bytes MjpgStreamChunkPoc();

/// Dimension integer overflow (pair 5): w*h truncates to 16 bits, the
/// allocation wraps small and the pixel fill overflows.
Bytes MjpgDimsOverflowPoc();

// ---------------------------------------------------------------------------
// MJ2K — mini JPEG2000. Box types.
// ---------------------------------------------------------------------------
inline constexpr std::uint8_t kMj2kHeader = 0x01;  // [ncomp:1][w:2][h:2]
inline constexpr std::uint8_t kMj2kData = 0x02;    // [bytes...]
inline constexpr std::uint8_t kMj2kEnd = 0x7F;     // len 0

struct Mj2kBox {
  std::uint8_t type = kMj2kEnd;
  Bytes payload;
};

Bytes WriteMj2k(const std::vector<Mj2kBox>& boxes);

Bytes Mj2kValidFile();

/// Zero-component null dereference (pairs 7-8, 13): ncomp == 0 makes the
/// decoder dereference a never-initialized component pointer (0).
Bytes Mj2kZeroComponentPoc();

// ---------------------------------------------------------------------------
// MGIF — mini GIF.
// ---------------------------------------------------------------------------
inline constexpr std::uint8_t kMgifImage = 0x2C;    // [code_size:1][n:2][pix]
inline constexpr std::uint8_t kMgifTrailer = 0x3B;

struct GifImage {
  std::uint8_t code_size = 4;
  Bytes pixels;
};

/// `version` is the 3 bytes after "GIF" ("87a" for a conforming file).
/// Layout: "GIF"+version, [w:2][h:2], a 16-byte global colour table,
/// then per image [0x2C][code_size:1][npix:2][pixels], then [0x3B].
Bytes WriteMgif(ByteView version, std::uint16_t w, std::uint16_t h,
                const std::vector<GifImage>& images);

Bytes MgifValidFile();

/// ReadImage heap overflow (pair 9): code_size >= 9 indexes past the
/// 256-entry prefix table. The PoC carries a benign image before the
/// crashing one (two ep encounters — the context-aware taint ablation
/// hinges on this) and the *invalid* version "87x" from the disclosed
/// PoC — exactly the paper's artificial gif2png scenario.
Bytes MgifCodeSizePoc();

// ---------------------------------------------------------------------------
// MTIF — mini TIFF.
// ---------------------------------------------------------------------------
inline constexpr std::uint16_t kTifTagImageWidth = 0x0100;
inline constexpr std::uint16_t kTifTagImageLength = 0x0101;
inline constexpr std::uint16_t kTifTagBitsPerSample = 0x0102;
inline constexpr std::uint16_t kTifTagCompression = 0x0103;
inline constexpr std::uint16_t kTifTagPhotometric = 0x0106;
inline constexpr std::uint16_t kTifTagStripOffsets = 0x0111;
inline constexpr std::uint16_t kTifTagSamplesPerPixel = 0x0115;
/// The vulnerable tag from CVE-2016-10095 (_TIFFVGetField).
inline constexpr std::uint16_t kTifTagPageName = 0x013D;

struct TifEntry {
  std::uint16_t tag = 0;
  std::uint16_t count = 1;
  std::uint32_t value = 0;
};

Bytes WriteMtif(const std::vector<TifEntry>& entries);

Bytes MtifValidFile();

/// PageName buffer overflow (pairs 10-12): tag 0x13D with count > 8
/// overruns the shared getter's 8-byte staging buffer.
Bytes MtifPageNamePoc();

// ---------------------------------------------------------------------------
// MPDF — mini PDF container.
// ---------------------------------------------------------------------------
inline constexpr std::uint8_t kPdfObjEnd = 0x00;
inline constexpr std::uint8_t kPdfObjMeta = 0x01;    // [string bytes]
inline constexpr std::uint8_t kPdfObjImage = 0x02;   // [embedded file]
inline constexpr std::uint8_t kPdfObjPage = 0x03;    // fixed form (see below)

struct PdfObject {
  std::uint8_t id = 0;
  std::uint8_t type = kPdfObjEnd;
  Bytes payload;
};

/// Variable-size container: "%PDF" [nobj:1] then per object
/// [id:1][type:1][len:2][payload].
Bytes WriteMpdf(const std::vector<PdfObject>& objects);

/// Fixed-size page-table variant used by the page-walk pair: "%PDF"
/// [npages:1] [render_flag:1] then `npages` 4-byte records
/// [type:1][next:1][a:1][b:1] starting at offset 6. The render flag is
/// read between the two walk passes (after the first ep encounter),
/// which is what defeats context-free taint on this pair.
struct PdfPageRec {
  std::uint8_t type = kPdfObjEnd;
  std::uint8_t next = 0;
  std::uint8_t a = 0;
  std::uint8_t b = 0;
};
Bytes WriteMpdfPages(const std::vector<PdfPageRec>& pages,
                     std::uint8_t render_flag = 1);

Bytes MpdfValidFile();

/// Cyclic page references (pair 3, CWE-835): page 0 → page 1 → page 0.
Bytes MpdfCyclePoc();

/// Oversized metadata (pairs 6, 14): a metadata object whose declared
/// length exceeds the shared copier's 64-byte buffer.
Bytes MpdfMetaOverflowPoc();

/// Metadata length-doubling overflow (pair 15): length whose doubling
/// wraps the 16-bit staging arithmetic in the shared copier.
Bytes MpdfMetaWrapPoc();

/// A PDF embedding the MJ2K zero-component stream (pairs 7-8, 13).
Bytes MpdfEmbeddedJ2kPoc();

}  // namespace octopocs::formats
