#include "formats/formats.h"

namespace octopocs::formats {

// ---------------------------------------------------------------------------
// MJPG
// ---------------------------------------------------------------------------

Bytes WriteMjpg(const std::vector<MjpgSegment>& segments) {
  Bytes out;
  AppendStr(out, "MJPG");
  for (const MjpgSegment& seg : segments) {
    out.push_back(seg.type);
    AppendLe(out, seg.payload.size(), 2);
    AppendBytes(out, seg.payload);
  }
  return out;
}

Bytes MjpgValidFile() {
  Bytes quant{0 /*index*/, 1, 2, 3, 4};
  Bytes scan{0 /*qidx*/, 2 /*w*/, 2 /*h*/, 9, 9, 9, 9};
  return WriteMjpg({{kMjpgQuantTable, quant},
                    {kMjpgScan, scan},
                    {kMjpgEnd, {}}});
}

Bytes MjpgQuantIndexPoc() {
  Bytes quant{0, 1, 2, 3, 4};
  // Scan references quant slot 9 of a 4-slot table.
  Bytes scan{9 /*qidx*/, 1, 1, 7};
  return WriteMjpg({{kMjpgQuantTable, quant},
                    {kMjpgScan, scan},
                    {kMjpgEnd, {}}});
}

Bytes MjpgStreamChunkPoc() {
  // A benign 8-byte chunk followed by the 48-byte overflow (48 > the
  // 32-byte staging buffer). Two chunks → two ep encounters, which is
  // what the context-aware taint ablation (Table III) exercises.
  Bytes benign(8, 0x11);
  Bytes crash(48, 0xCC);
  return WriteMjpg({{kMjpgStreamChunk, benign},
                    {kMjpgStreamChunk, crash},
                    {kMjpgEnd, {}}});
}

Bytes MjpgDimsOverflowPoc() {
  Bytes dims;
  AppendLe(dims, 0x0100, 2);  // w = 256
  AppendLe(dims, 0x0100, 2);  // h = 256 → w*h = 0x10000, truncates to 0
  return WriteMjpg({{kMjpgDims, dims}, {kMjpgEnd, {}}});
}

// ---------------------------------------------------------------------------
// MJ2K
// ---------------------------------------------------------------------------

Bytes WriteMj2k(const std::vector<Mj2kBox>& boxes) {
  Bytes out;
  AppendStr(out, "MJ2K");
  for (const Mj2kBox& box : boxes) {
    out.push_back(box.type);
    AppendLe(out, box.payload.size(), 2);
    AppendBytes(out, box.payload);
  }
  return out;
}

Bytes Mj2kValidFile() {
  Bytes header{2 /*ncomp*/};
  AppendLe(header, 4, 2);  // w
  AppendLe(header, 4, 2);  // h
  return WriteMj2k({{kMj2kHeader, header},
                    {kMj2kData, {1, 2, 3, 4}},
                    {kMj2kEnd, {}}});
}

Bytes Mj2kZeroComponentPoc() {
  Bytes header{0 /*ncomp == 0: the null-deref trigger*/};
  AppendLe(header, 4, 2);
  AppendLe(header, 4, 2);
  return WriteMj2k({{kMj2kHeader, header}, {kMj2kEnd, {}}});
}

// ---------------------------------------------------------------------------
// MGIF
// ---------------------------------------------------------------------------

Bytes WriteMgif(ByteView version, std::uint16_t w, std::uint16_t h,
                const std::vector<GifImage>& images) {
  Bytes out;
  AppendStr(out, "GIF");
  AppendBytes(out, version);
  AppendLe(out, w, 2);
  AppendLe(out, h, 2);
  for (int i = 0; i < 16; ++i) {  // global colour table (palette)
    out.push_back(static_cast<std::uint8_t>(0x10 + i));
  }
  for (const GifImage& img : images) {
    out.push_back(kMgifImage);
    out.push_back(img.code_size);
    AppendLe(out, img.pixels.size(), 2);
    AppendBytes(out, img.pixels);
  }
  out.push_back(kMgifTrailer);
  return out;
}

Bytes MgifValidFile() {
  const Bytes version{'8', '7', 'a'};
  return WriteMgif(version, 2, 2, {{4, {1, 2, 3, 4}}});
}

Bytes MgifCodeSizePoc() {
  // Invalid version "87x" (the disclosed-PoC quirk from the paper's
  // artificial case); a benign image precedes the code_size-12 overflow.
  const Bytes version{'8', '7', 'x'};
  return WriteMgif(version, 1, 1, {{4, {1, 2}}, {12, {1}}});
}

// ---------------------------------------------------------------------------
// MTIF
// ---------------------------------------------------------------------------

Bytes WriteMtif(const std::vector<TifEntry>& entries) {
  Bytes out;
  out.push_back('I');
  out.push_back('I');
  out.push_back('*');
  out.push_back(0);
  AppendLe(out, entries.size(), 2);
  for (const TifEntry& e : entries) {
    AppendLe(out, e.tag, 2);
    AppendLe(out, e.count, 2);
    AppendLe(out, e.value, 4);
  }
  return out;
}

Bytes MtifValidFile() {
  return WriteMtif({{kTifTagImageWidth, 1, 64},
                    {kTifTagImageLength, 1, 64},
                    {kTifTagBitsPerSample, 1, 8}});
}

Bytes MtifPageNamePoc() {
  // The benign leading entry uses count 4 — the same count the Type-III
  // targets hardcode, so their parameter mismatch trips on the *tag* of
  // the second encounter, mirroring the paper's 0x13D analysis.
  return WriteMtif({{kTifTagImageWidth, 4, 64},
                    {kTifTagPageName, 24 /*count > 8*/, 0xAAAAAAAA}});
}

// ---------------------------------------------------------------------------
// MPDF
// ---------------------------------------------------------------------------

Bytes WriteMpdf(const std::vector<PdfObject>& objects) {
  Bytes out;
  AppendStr(out, "%PDF");
  out.push_back(static_cast<std::uint8_t>(objects.size()));
  for (const PdfObject& obj : objects) {
    out.push_back(obj.id);
    out.push_back(obj.type);
    AppendLe(out, obj.payload.size(), 2);
    AppendBytes(out, obj.payload);
  }
  return out;
}

Bytes WriteMpdfPages(const std::vector<PdfPageRec>& pages,
                     std::uint8_t render_flag) {
  Bytes out;
  AppendStr(out, "%PDF");
  out.push_back(static_cast<std::uint8_t>(pages.size()));
  out.push_back(render_flag);
  for (const PdfPageRec& p : pages) {
    out.push_back(p.type);
    out.push_back(p.next);
    out.push_back(p.a);
    out.push_back(p.b);
  }
  return out;
}

Bytes MpdfValidFile() {
  Bytes meta;
  AppendStr(meta, "title");
  return WriteMpdf({{1, kPdfObjMeta, meta}, {2, kPdfObjEnd, {}}});
}

Bytes MpdfCyclePoc() {
  // Page 0 → page 1 → page 0: the walk never terminates.
  return WriteMpdfPages({{kPdfObjPage, 1, 0, 0},
                         {kPdfObjPage, 0, 0, 0}});
}

Bytes MpdfMetaOverflowPoc() {
  Bytes meta(0x100, 'A');  // 256 > the copier's 64-byte buffer
  return WriteMpdf({{1, kPdfObjMeta, meta}, {2, kPdfObjEnd, {}}});
}

Bytes MpdfMetaWrapPoc() {
  // Length 0x8001: doubling in 16-bit arithmetic wraps to 2, the copier
  // allocates 2 bytes and streams 0x8001 → heap overflow via CWE-190.
  Bytes meta(0x8001, 'B');
  return WriteMpdf({{1, kPdfObjMeta, meta}, {2, kPdfObjEnd, {}}});
}

Bytes MpdfEmbeddedJ2kPoc() {
  const Bytes j2k = Mj2kZeroComponentPoc();
  return WriteMpdf({{1, kPdfObjImage, j2k}, {2, kPdfObjEnd, {}}});
}

}  // namespace octopocs::formats
