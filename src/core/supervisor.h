// Supervised per-pair worker processes: spawn, classify, retry,
// quarantine.
//
// With isolation on, each corpus pair runs as `octopocs pair-worker
// <idx>` in its own sandboxed child (support/subprocess.h) and the
// supervisor turns whatever happens to that child into exactly one
// well-formed VerificationReport:
//
//   child exits 0 with a framed report  -> the pair's verdict, verbatim
//   child killed at the wall-clock cap  -> kFailure, deadline_expired
//   child killed by RLIMIT_CPU          -> kFailure, deadline_expired
//     (SIGXCPU at the soft cap, SIGKILL at the hard cap — both are the
//     budget firing deterministically, so retrying is pointless)
//   child crashed (SIGSEGV/SIGABRT/…),
//   exited nonzero, or tore its report
//   mid-write (pipe EOF)                -> transient infrastructure
//     failure: retried with capped exponential backoff + deterministic
//     jitter; after max_retries the pair is QUARANTINED — reported as a
//     contained failure — so one poisoned input can never wedge the
//     fleet by crashing its worker forever.
//
// The whole classification is a pure function (ClassifyChild) so tests
// can drive every exit path without spawning anything.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/octopocs.h"
#include "corpus/pairs.h"
#include "support/subprocess.h"

namespace octopocs::core {

struct IsolationOptions {
  /// Path of the octopocs CLI to exec as the worker (normally
  /// /proc/self/exe).
  std::string worker_binary;
  /// Extra argv appended after `pair-worker <idx>` — pipeline flags the
  /// worker needs to reproduce the in-process verdict, plus test hooks.
  std::vector<std::string> worker_args;
  /// Transient-failure retries per pair before quarantine.
  unsigned max_retries = 2;
  /// RLIMIT_AS cap per worker, MiB (0 = unlimited).
  std::uint64_t rlimit_mb = 0;
  /// Hard wall-clock kill per attempt, ms (0 = unlimited). The worker's
  /// own cooperative deadline should be tighter: this is the backstop
  /// for a worker too wedged to honor it.
  std::uint64_t deadline_ms = 0;
  /// RLIMIT_CPU soft cap per worker, seconds (0 = unlimited).
  std::uint64_t cpu_seconds = 0;
};

enum class ChildOutcome : std::uint8_t {
  kCleanReport,      // exit 0 + well-formed framed report
  kMalformedReport,  // exit 0 but the report is missing/torn (retryable)
  kNonzeroExit,      // worker exited with an error code (retryable)
  kCrashSignal,      // SIGSEGV/SIGABRT/SIGBUS/… (retryable)
  kResourceKill,     // SIGXCPU / SIGKILL — a resource cap fired (final)
  kTimeout,          // supervisor killed it at the wall-clock cap (final)
  kInterrupted,      // supervisor is draining on SIGINT/SIGTERM (final)
  kSpawnError,       // fork/exec failed (retryable: transient EAGAIN)
};

std::string_view ChildOutcomeName(ChildOutcome outcome);

/// True for outcomes the supervisor retries before quarantining.
bool IsRetryableOutcome(ChildOutcome outcome);

/// Pure classification of one finished child. On kCleanReport, `*report`
/// holds the parsed worker report; otherwise it is untouched.
ChildOutcome ClassifyChild(const support::SubprocessResult& result,
                           VerificationReport* report);

/// Backoff before retry `attempt` (0-based): 20ms · 2^attempt, capped at
/// 250ms, with ±50% deterministic jitter keyed on (pair_idx, attempt) so
/// a fleet of retrying supervisors never thunders in lockstep yet every
/// run of the same corpus sleeps identically.
std::uint64_t RetryBackoffMs(int pair_idx, unsigned attempt);

struct SupervisedResult {
  VerificationReport report;
  unsigned attempts = 0;  // child spawns, including the successful one
  ChildOutcome last_outcome = ChildOutcome::kSpawnError;
  bool quarantined = false;
  bool interrupted = false;
};

/// Runs `pair` to a report through supervised worker processes.
/// `interrupt`, when non-null and nonzero, drains promptly: the running
/// child is SIGKILLed and the result is marked interrupted (callers
/// must not journal it as finished).
SupervisedResult RunSupervisedPair(const corpus::Pair& pair,
                                   const IsolationOptions& isolation,
                                   const std::atomic<int>* interrupt);

/// A fleet of persistent `pool-worker` processes (the AFL forkserver
/// idea applied to pair verification): each worker is forked and warmed
/// once, then fed pair indices over its stdin — `OCTO-PAIR <idx>` per
/// request — and answers each with the same OCTO-REPORT/OCTO-DONE frame
/// a one-shot pair-worker writes. Spawn + exec + warmup is paid per
/// *worker* instead of per *pair*, which is what makes --isolate cheap
/// enough to leave on.
///
/// Crash containment matches RunSupervisedPair exactly: a worker that
/// crashes, wedges past the deadline backstop, tears a frame, or hits a
/// resource cap yields the same ChildOutcome classification, the same
/// capped-backoff retries (on a freshly respawned worker), the same
/// quarantine after max_retries, and the same infrastructure-failure
/// reports. Verdicts are byte-identical to one-shot isolation and to
/// in-process runs.
///
/// Thread-safe: RunPair may be called from many corpus threads at once;
/// each call checks out one worker from the free list (blocking when
/// all `size` workers are busy) and returns it when done.
class WorkerPool {
 public:
  struct Stats {
    std::uint64_t spawns = 0;      // worker processes forked, total
    std::uint64_t respawns = 0;    // spawns that replaced a dead worker
    std::uint64_t dispatches = 0;  // pair requests written to a worker
  };

  /// `size` workers, lazily spawned on first use. The options are
  /// copied; worker_binary/worker_args must describe the `pool-worker`
  /// subcommand's flags (the pool inserts the subcommand itself).
  WorkerPool(const IsolationOptions& isolation, unsigned size);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Verifies `pair` on a pooled worker, with RunSupervisedPair's
  /// retry/quarantine/interrupt semantics.
  SupervisedResult RunPair(const corpus::Pair& pair,
                           const std::atomic<int>* interrupt);

  Stats stats() const;

 private:
  struct Slot {
    support::PersistentProcess proc;
    bool ever_spawned = false;
  };

  Slot* Acquire();
  void Release(Slot* slot);

  IsolationOptions isolation_;
  std::vector<std::unique_ptr<Slot>> slots_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot*> free_;
  Stats stats_;
};

}  // namespace octopocs::core
