#include "core/parallel_verify.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "support/thread_pool.h"
#include "support/trace.h"

namespace octopocs::core {

std::vector<VerificationReport> VerifyCorpus(
    const std::vector<corpus::Pair>& pairs, const PipelineOptions& options,
    unsigned jobs, std::uint64_t pair_deadline_ms,
    const std::vector<double>* cost_hints) {
  std::vector<VerificationReport> reports(pairs.size());
  if (pairs.empty()) return reports;

  // Longest-expected-first start order (LPT). Identity order without
  // usable hints; a stable sort keeps equal-cost pairs in input order.
  std::vector<std::size_t> order(pairs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (cost_hints != nullptr && cost_hints->size() == pairs.size()) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return (*cost_hints)[a] > (*cost_hints)[b];
                     });
  }

  using Clock = std::chrono::steady_clock;
  const bool watched = pair_deadline_ms > 0;

  // Per-pair reaping state. The kill switches outlive every worker (the
  // pool is joined inside ParallelFor before this scope unwinds), and
  // the watchdog only ever reads/writes atomics, so no locking is
  // needed anywhere on this path.
  std::vector<std::atomic<bool>> kill(pairs.size());
  // 0 = not started, >0 = steady-clock start tick, -1 = finished.
  std::vector<std::atomic<std::int64_t>> started_at(pairs.size());

  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog;
  if (watched) {
    const std::int64_t budget_ticks =
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::milliseconds(pair_deadline_ms))
            .count();
    watchdog = std::thread([&, budget_ticks] {
      while (!watchdog_stop.load(std::memory_order_relaxed)) {
        const std::int64_t now = Clock::now().time_since_epoch().count();
        for (std::size_t i = 0; i < started_at.size(); ++i) {
          const std::int64_t t =
              started_at[i].load(std::memory_order_relaxed);
          if (t > 0 && now - t >= budget_ticks) {
            kill[i].store(true, std::memory_order_relaxed);
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  support::ParallelFor(pairs.size(), jobs, [&](std::size_t slot) {
    const std::size_t i = order[slot];
    PipelineOptions per_pair = options;
    if (watched) {
      per_pair.cancel_flag = &kill[i];
      // The in-pipeline deadline is the primary mechanism (fine-grained
      // polls at every hot loop); the watchdog flag above is the
      // backstop that reaps a pair stuck somewhere the deadline isn't
      // threaded through.
      if (per_pair.deadline_ms == 0 ||
          per_pair.deadline_ms > pair_deadline_ms) {
        per_pair.deadline_ms = pair_deadline_ms;
      }
      started_at[i].store(Clock::now().time_since_epoch().count(),
                          std::memory_order_relaxed);
    }
    // One span per pair, tagged with the input-order index, so a trace
    // of a corpus run shows which pair each nested phase span belongs
    // to and how the pool interleaved them.
    support::TraceSpan pair_span(options.tracer, "pair",
                                 static_cast<std::int64_t>(i));
    reports[i] = VerifyPair(pairs[i], per_pair);
    if (watched) started_at[i].store(-1, std::memory_order_relaxed);
  });

  if (watched) {
    watchdog_stop.store(true, std::memory_order_relaxed);
    watchdog.join();
  }
  return reports;
}

}  // namespace octopocs::core
