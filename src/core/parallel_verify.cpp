#include "core/parallel_verify.h"

#include "support/thread_pool.h"

namespace octopocs::core {

std::vector<VerificationReport> VerifyCorpus(
    const std::vector<corpus::Pair>& pairs, const PipelineOptions& options,
    unsigned jobs) {
  std::vector<VerificationReport> reports(pairs.size());
  support::ParallelFor(pairs.size(), jobs, [&](std::size_t i) {
    reports[i] = VerifyPair(pairs[i], options);
  });
  return reports;
}

}  // namespace octopocs::core
