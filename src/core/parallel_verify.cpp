#include "core/parallel_verify.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/journal.h"
#include "core/supervisor.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace octopocs::core {

namespace {

bool Tripped(const std::atomic<int>* interrupt) {
  return interrupt != nullptr &&
         interrupt->load(std::memory_order_relaxed) != 0;
}

VerificationReport InterruptedReport() {
  VerificationReport report;
  report.verdict = Verdict::kFailure;
  report.type = ResultType::kFailure;
  report.detail = "interrupted before start";
  report.failed_phase = "worker";
  report.deadline_expired = true;
  return report;
}

}  // namespace

std::vector<VerificationReport> VerifyCorpus(
    const std::vector<corpus::Pair>& pairs, const PipelineOptions& options,
    const CorpusRunConfig& config) {
  std::vector<VerificationReport> reports(pairs.size());
  if (pairs.empty()) return reports;

  // Longest-expected-first start order (LPT). Identity order without
  // usable hints; a stable sort keeps equal-cost pairs in input order.
  std::vector<std::size_t> order(pairs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (config.cost_hints != nullptr &&
      config.cost_hints->size() == pairs.size()) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return (*config.cost_hints)[a] >
                              (*config.cost_hints)[b];
                     });
  }

  using Clock = std::chrono::steady_clock;
  const bool isolated = config.isolation != nullptr;
  // The in-process watchdog: reaps over-budget pairs, and doubles as
  // the interrupt fan-out (one external flag -> every pair's kill
  // switch). Isolated pairs need neither — their supervisor owns both.
  const bool watched = !isolated && config.pair_deadline_ms > 0;
  const bool interruptible = !isolated && config.interrupt != nullptr;
  const bool reaping = watched || interruptible;

  // Per-pair reaping state. The kill switches outlive every worker (the
  // pool is joined inside ParallelFor before this scope unwinds), and
  // the watchdog only ever reads/writes atomics — the mutex below exists
  // solely for the condition variable's sleep/wake protocol.
  std::vector<std::atomic<bool>> kill(pairs.size());
  // 0 = not started, >0 = steady-clock start tick, -1 = finished.
  std::vector<std::atomic<std::int64_t>> started_at(pairs.size());

  std::mutex reaper_mu;
  std::condition_variable reaper_cv;
  bool reaper_stop = false;
  std::thread watchdog;
  if (reaping) {
    const std::int64_t budget_ticks =
        watched ? std::chrono::duration_cast<Clock::duration>(
                      std::chrono::milliseconds(config.pair_deadline_ms))
                      .count()
                : 0;
    watchdog = std::thread([&, budget_ticks] {
      std::unique_lock<std::mutex> lock(reaper_mu);
      bool drained = false;
      while (!reaper_stop) {
        // Interrupt fan-out: raise every kill switch once, then keep
        // sleeping until the run unwinds (workers observe the switches
        // through their in-pipeline cancel tokens).
        if (interruptible && !drained && Tripped(config.interrupt)) {
          for (auto& k : kill) k.store(true, std::memory_order_relaxed);
          drained = true;
        }
        // Nearest deadline among running pairs; reap the overdue.
        std::int64_t next_tick = 0;
        if (watched) {
          const std::int64_t now = Clock::now().time_since_epoch().count();
          for (std::size_t i = 0; i < started_at.size(); ++i) {
            const std::int64_t t =
                started_at[i].load(std::memory_order_relaxed);
            if (t <= 0) continue;
            const std::int64_t due = t + budget_ticks;
            if (due <= now) {
              kill[i].store(true, std::memory_order_relaxed);
            } else if (next_tick == 0 || due < next_tick) {
              next_tick = due;
            }
          }
        }
        // Sleep until the nearest deadline, a new pair starting (the
        // workers notify), or stop. With an interrupt flag to poll —
        // raised from an async signal handler, which cannot touch a
        // condition variable — cap the nap at 50ms; still a condition
        // wait bounded by a deadline, never a fixed-period spin.
        Clock::time_point until = Clock::time_point::max();
        if (next_tick != 0) {
          until = Clock::time_point(Clock::duration(next_tick));
        }
        if (interruptible && !drained) {
          const Clock::time_point poll =
              Clock::now() + std::chrono::milliseconds(50);
          if (poll < until) until = poll;
        }
        if (until == Clock::time_point::max()) {
          reaper_cv.wait(lock);
        } else {
          reaper_cv.wait_until(lock, until);
        }
      }
    });
  }
  const auto stop_watchdog = [&] {
    if (!reaping) return;
    {
      std::lock_guard<std::mutex> lock(reaper_mu);
      reaper_stop = true;
    }
    reaper_cv.notify_all();
    watchdog.join();
  };

  support::ParallelFor(pairs.size(), config.jobs, [&](std::size_t slot) {
    const std::size_t i = order[slot];
    const corpus::Pair& pair = pairs[i];

    // Resumed pairs replay their journaled report: no execution, no
    // journal records, no span — the pair never ran in this process.
    if (config.resume_finished != nullptr) {
      const auto it = config.resume_finished->find(pair.idx);
      if (it != config.resume_finished->end()) {
        reports[i] = it->second;
        return;
      }
    }

    // Draining: pairs not yet started stay unstarted (and unjournaled,
    // so a resume re-runs them).
    if (Tripped(config.interrupt)) {
      reports[i] = InterruptedReport();
      return;
    }

    if (config.journal != nullptr) config.journal->Started(pair.idx, 1);

    // One span per pair, tagged with the input-order index, so a trace
    // of a corpus run shows which pair each nested phase span belongs
    // to and how the pool interleaved them.
    support::TraceSpan pair_span(options.tracer, "pair",
                                 static_cast<std::int64_t>(i));

    bool cancelled = false;
    if (isolated) {
      const SupervisedResult supervised =
          config.worker_pool != nullptr
              ? config.worker_pool->RunPair(pair, config.interrupt)
              : RunSupervisedPair(pair, *config.isolation, config.interrupt);
      reports[i] = supervised.report;
      cancelled = supervised.interrupted;
    } else {
      PipelineOptions per_pair = options;
      if (reaping) {
        per_pair.cancel_flag = &kill[i];
        // The in-pipeline deadline is the primary mechanism
        // (fine-grained polls at every hot loop); the watchdog flag
        // above is the backstop that reaps a pair stuck somewhere the
        // deadline isn't threaded through.
        if (watched && (per_pair.deadline_ms == 0 ||
                        per_pair.deadline_ms > config.pair_deadline_ms)) {
          per_pair.deadline_ms = config.pair_deadline_ms;
        }
        started_at[i].store(Clock::now().time_since_epoch().count(),
                            std::memory_order_relaxed);
        reaper_cv.notify_one();  // the nearest deadline may have moved
      }
      reports[i] = VerifyPair(pair, per_pair);
      if (reaping) started_at[i].store(-1, std::memory_order_relaxed);
      // A deadline report produced while draining is an artifact of the
      // interrupt, not a statement about the pair — never journal it.
      cancelled = Tripped(config.interrupt) && reports[i].deadline_expired;
    }

    if (config.journal != nullptr && !cancelled) {
      config.journal->Finished(pair.idx, reports[i]);
    }
  });

  stop_watchdog();
  return reports;
}

std::vector<VerificationReport> VerifyCorpus(
    const std::vector<corpus::Pair>& pairs, const PipelineOptions& options,
    unsigned jobs, std::uint64_t pair_deadline_ms,
    const std::vector<double>* cost_hints) {
  CorpusRunConfig config;
  config.jobs = jobs;
  config.pair_deadline_ms = pair_deadline_ms;
  config.cost_hints = cost_hints;
  return VerifyCorpus(pairs, options, config);
}

}  // namespace octopocs::core
