// The verification daemon behind `octopocs serve` (DESIGN.md §14).
//
// Batch `corpus` pays pipeline warmup (ep discovery, crash primitives,
// CFG edges) once per process and then dies with its caches. The server
// keeps a process alive: it accepts verification requests over a
// unix-domain socket, runs them through the same phase graph, and keeps
// both artifact tiers warm — the in-memory ArtifactStore across
// requests, and the on-disk DiskArtifactStore across restarts and
// crashes.
//
// Request protocol (one request per connection; framing constants in
// core/report_io.h):
//
//   client -> server   OCTO-REQ {"pair":8,"priority":1,...}\n
//   server -> client   OCTO-REPORT {...}\nOCTO-DONE\n        (success)
//                      OCTO-ERR {"code":"RETRY_AFTER",...}\nOCTO-DONE\n
//
// Success responses reuse the worker wire framing verbatim, so clients
// parse them with UnmarshalWorkerReport.
//
// Admission control: a bounded queue of queue_depth requests. When the
// queue is full, a new request either displaces the lowest-priority
// queued request (strictly lower priority than the newcomer; that
// victim is answered RETRY_AFTER) or — when nothing queued is lower
// priority — is itself answered RETRY_AFTER. retry_after_ms is derived
// from the observed service rate, so clients back off proportionally to
// real load instead of hammering a saturated daemon.
//
// Deadlines: every request runs under
// Deadline::Sooner(server request_deadline_ms, client deadline_ms),
// realized by giving the pipeline the smaller of the two budgets. A
// first attempt that trips its deadline is retried once with the
// graceful-degradation rungs (cfg_fallback_to_static,
// solver_budget_retry) enabled when the request opted in with
// degrade_on_timeout; a contained tooling exception is retried once
// after a RetryBackoffMs nap (the supervisor's capped-exponential
// policy). Reports that completed cleanly — no tripped deadline, no
// contained exception — are persisted to the disk tier keyed by
// content (programs, PoC, semantics-affecting options), which is what
// makes cold-vs-warm verdicts byte-identical by construction.
//
// Shutdown: Drain() (the SIGINT/SIGTERM path) stops accepting, lets
// queued and in-flight requests finish and respond, flushes the disk
// store, and joins every thread. A SIGKILL instead loses nothing
// durable: the disk tier heals its torn tail on the next Open, exactly
// like the crash journal.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact_disk.h"
#include "core/artifact_store.h"
#include "core/octopocs.h"
#include "support/socket.h"

namespace octopocs::support {
class Tracer;
}

namespace octopocs::core {

// -- Request / response payloads ----------------------------------------------

/// One parsed OCTO-REQ line. Unknown JSON keys are ignored (forward
/// compatibility), missing keys keep these defaults.
struct ServeRequest {
  int pair = 0;               // corpus pair index (1-based, Table II)
  std::string id;             // client-chosen correlation id (trace arg)
  int priority = 0;           // higher = sheds lower-priority work
  std::uint64_t deadline_ms = 0;  // client budget (0 = server cap only)
  bool cfg_fallback = false;      // enable the static-CFG rung outright
  bool solver_retry = false;      // enable the solver-budget rung outright
  /// Enable the fuzz-fallback rung for this request (DESIGN.md §16).
  /// Verdict-bearing: folds into the served-report cache key, unlike
  /// the deadline knobs.
  bool fuzz_fallback = false;
  std::uint64_t fuzz_seed = 0;    // 0 = the daemon's configured seed
  std::uint64_t fuzz_execs = 0;   // 0 = the daemon's configured budget
  /// Retry once with both degradation rungs enabled when the first
  /// attempt trips its deadline.
  bool degrade_on_timeout = false;
  /// Optional PoC override (raw bytes; wire format is hex). Empty means
  /// the pair's own corpus PoC.
  Bytes poc_override;
  /// Non-zero routes pair indices beyond the built-in corpora (hog pair
  /// 999, generated pairs >= 1000) to the registered generated-pair
  /// loader with this generator seed. Content-addressed caching needs no
  /// special casing: the generated programs themselves key the report.
  std::uint64_t gen_seed = 0;
};

/// Loader for generated pair indices (src/gen). The daemon cannot link
/// the generator directly (gen links core), so the CLI and the soak
/// harness register gen::LoadGeneratedPair at startup. Unset, requests
/// carrying gen_seed are rejected as BAD_REQUEST.
using GenPairLoader = corpus::Pair (*)(std::uint64_t seed, int idx);
void SetGenPairLoader(GenPairLoader loader);
GenPairLoader GetGenPairLoader();

/// Parses the JSON payload of an OCTO-REQ line. False (with *error set)
/// on malformed JSON, an out-of-range pair index, or bad hex.
bool ParseServeRequest(std::string_view json, ServeRequest* out,
                       std::string* error);
std::string SerializeServeRequest(const ServeRequest& request);

/// Structured rejection carried by an OCTO-ERR line.
struct ServeError {
  std::string code;   // "RETRY_AFTER" | "BAD_REQUEST" | "INTERNAL"
  std::uint64_t retry_after_ms = 0;  // meaningful for RETRY_AFTER
  std::string detail;
};

std::string SerializeServeError(const ServeError& error);
bool ParseServeError(std::string_view json, ServeError* out,
                     std::string* error);

/// Sooner-wins deadline composition: 0 means unbounded on either side,
/// otherwise the smaller budget applies. Used to merge the server's
/// request_deadline_ms cap with the client's own deadline.
std::uint64_t ComposeDeadlineMs(std::uint64_t server_cap_ms,
                                std::uint64_t client_ms);

// -- Server -------------------------------------------------------------------

struct ServeOptions {
  std::string socket_path;
  /// Worker threads running the pipeline (admission runs on its own
  /// accept thread).
  unsigned workers = 2;
  /// Bounded admission queue depth; beyond it requests shed.
  std::size_t queue_depth = 16;
  /// Server-side per-request wall-clock cap, ms (0 = none). Composed
  /// with the client's own deadline via the sooner-wins rule.
  std::uint64_t request_deadline_ms = 0;
  /// Directory for the persistent artifact tier (empty = disk tier off).
  std::string cache_dir;
  /// Pipeline configuration applied to every request (per-request knobs
  /// layer on top).
  PipelineOptions pipeline;
  /// External stop flag (the CLI's signal count); polled by the accept
  /// loop and between requests. Not owned, may be null.
  const std::atomic<int>* interrupt = nullptr;
  support::Tracer* tracer = nullptr;
};

struct ServeStats {
  std::uint64_t accepted = 0;        // connections whose request was read
  std::uint64_t served = 0;          // OCTO-REPORT responses written
  std::uint64_t shed = 0;            // RETRY_AFTER (queue full / displaced)
  std::uint64_t rejected = 0;        // BAD_REQUEST / INTERNAL
  std::uint64_t disk_hits = 0;       // served straight from the disk tier
  std::uint64_t disk_stores = 0;     // reports persisted
  std::uint64_t degraded_retries = 0;  // second attempts with rungs on
  std::uint64_t contained_retries = 0; // second attempts after contained
  std::uint64_t response_drops = 0;  // response write failed (peer gone)
};

/// The daemon. Start() spawns the accept thread and worker pool and
/// returns; Wait() blocks until Drain() completes (normally driven by
/// the interrupt flag). Tests and benches run it in-process.
class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket, opens the disk tier (when configured), spawns
  /// threads. False with *error set when the socket or cache dir cannot
  /// be set up.
  bool Start(std::string* error);

  /// Blocks until the server has drained (interrupt flag, or Drain()
  /// from another thread).
  void Wait();

  /// Stops accepting, finishes queued + in-flight requests, responds to
  /// all of them, flushes the disk store, joins threads. Idempotent.
  void Drain();

  ServeStats stats() const;
  const DiskArtifactStore* disk_store() const { return disk_.get(); }
  std::size_t queue_size() const;

 private:
  struct Queued {
    ServeRequest request;
    int fd = -1;
    std::uint64_t enqueued_at_ms = 0;
    std::uint64_t seq = 0;  // admission order, for FIFO among equals
  };

  void AcceptLoop();
  void WorkerLoop();
  /// Reads, parses and admits (or sheds) one connection's request.
  void HandleConnection(int fd);
  /// Runs one admitted request to a response. Never throws.
  void ServeOne(Queued item);
  VerificationReport RunRequest(const corpus::Pair& pair,
                                const ServeRequest& request);
  ArtifactKey ReportKey(const corpus::Pair& pair,
                        const ServeRequest& request) const;
  std::uint64_t EstimateRetryAfterMs();
  void RespondError(int fd, const ServeError& error);
  bool RespondReport(int fd, const VerificationReport& report);

  ServeOptions options_;
  support::UnixListener listener_;
  std::unique_ptr<DiskArtifactStore> disk_;
  std::unique_ptr<ArtifactStore> memory_tier_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Queued> queue_;
  bool draining_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t service_ms_ewma_ = 0;  // observed per-request service time
  ServeStats stats_;

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::atomic<bool> started_{false};
  std::atomic<bool> drained_{false};
};

// -- Client helper ------------------------------------------------------------

/// Outcome of one client round-trip.
struct ClientResult {
  bool ok = false;            // an OCTO-REPORT frame arrived and parsed
  VerificationReport report;  // valid when ok
  ServeError error;           // valid when !ok and the server answered
  std::string transport_error;  // connect/read/frame failure detail
};

/// Connects to `socket_path`, sends `request`, awaits the framed
/// response. `timeout_ms` bounds the whole round trip (0 = a generous
/// default).
ClientResult SendRequest(const std::string& socket_path,
                         const ServeRequest& request,
                         std::uint64_t timeout_ms = 0);

/// Client-side retry policy for SendRequestWithRetry. A structured
/// RETRY_AFTER sleeps the server-suggested retry_after_ms floored by a
/// capped-exponential backoff (base_backoff_ms << attempt, capped at
/// max_backoff_ms) so repeated sheds back off even when the server keeps
/// suggesting tiny naps. Transport failures (daemon restarting, socket
/// gone) retry on the same schedule only when retry_transport is set —
/// the soak harness uses that to ride through a SIGKILL'd daemon.
struct RetryPolicy {
  int max_retries = 0;  // additional attempts after the first
  std::uint64_t base_backoff_ms = 50;
  std::uint64_t max_backoff_ms = 2000;
  bool retry_transport = false;
};

/// SendRequest plus the retry loop. Returns the final attempt's result;
/// `attempts` (optional) reports how many round trips were made.
ClientResult SendRequestWithRetry(const std::string& socket_path,
                                  const ServeRequest& request,
                                  std::uint64_t timeout_ms,
                                  const RetryPolicy& policy,
                                  int* attempts = nullptr);

}  // namespace octopocs::core
