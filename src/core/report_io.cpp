#include "core/report_io.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "support/hex.h"

namespace octopocs::core {

namespace minijson {

const Value* Value::Find(std::string_view key) const {
  for (const auto& [name, value] : fields) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::int64_t Value::AsInt() const {
  if (kind == Kind::kInt) return integer;
  if (kind == Kind::kDouble) return static_cast<std::int64_t>(number);
  return 0;
}

double Value::AsDouble() const {
  if (kind == Kind::kDouble) return number;
  if (kind == Kind::kInt) return static_cast<double>(integer);
  return 0;
}

std::string Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x",
                        static_cast<unsigned char>(c));
          out += hex;
        } else {
          out += c;  // non-ASCII bytes pass through as UTF-8
        }
    }
  }
  return out;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t depth = 0;
  std::string error;

  bool Fail(const std::string& msg) {
    if (error.empty()) {
      error = msg + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  bool ParseString(std::string* out) {
    SkipSpace();
    if (pos >= text.size() || text[pos] != '"') return Fail("expected '\"'");
    ++pos;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos >= text.size()) return Fail("dangling escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos + 4 > text.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // The writers only escape control bytes; decode the BMP ASCII
          // range and reject anything wider.
          if (code > 0x7F) return Fail("unsupported \\u code point");
          out->push_back(static_cast<char>(code));
          break;
        }
        default: return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(Value* out) {
    SkipSpace();
    if (pos >= text.size()) return Fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      if (++depth > kMaxNestingDepth) return Fail("nesting too deep");
      ++pos;
      out->kind = Value::Kind::kObject;
      SkipSpace();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        --depth;
        return true;
      }
      for (;;) {
        std::string key;
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        Value value;
        if (!ParseValue(&value)) return false;
        out->fields.emplace_back(std::move(key), std::move(value));
        SkipSpace();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        if (!Consume('}')) return false;
        --depth;
        return true;
      }
    }
    if (c == '[') {
      if (++depth > kMaxNestingDepth) return Fail("nesting too deep");
      ++pos;
      out->kind = Value::Kind::kArray;
      SkipSpace();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        --depth;
        return true;
      }
      for (;;) {
        Value item;
        if (!ParseValue(&item)) return false;
        out->items.push_back(std::move(item));
        SkipSpace();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        if (!Consume(']')) return false;
        --depth;
        return true;
      }
    }
    if (c == '"') {
      out->kind = Value::Kind::kString;
      return ParseString(&out->text);
    }
    if (text.compare(pos, 4, "true") == 0) {
      out->kind = Value::Kind::kBool;
      out->boolean = true;
      pos += 4;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      out->kind = Value::Kind::kBool;
      out->boolean = false;
      pos += 5;
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      out->kind = Value::Kind::kNull;
      pos += 4;
      return true;
    }
    // Number.
    const std::size_t begin = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool is_double = false;
    while (pos < text.size()) {
      const char d = text[pos];
      if (std::isdigit(static_cast<unsigned char>(d))) {
        ++pos;
      } else if (d == '.' || d == 'e' || d == 'E' || d == '-' || d == '+') {
        is_double = true;
        ++pos;
      } else {
        break;
      }
    }
    if (pos == begin) return Fail("expected a value");
    const std::string token(text.substr(begin, pos - begin));
    if (is_double) {
      out->kind = Value::Kind::kDouble;
      out->number = std::strtod(token.c_str(), nullptr);
    } else {
      out->kind = Value::Kind::kInt;
      out->integer = std::strtoll(token.c_str(), nullptr, 10);
    }
    return true;
  }
};

}  // namespace

bool Parse(std::string_view text, Value* out, std::string* error) {
  if (text.size() > kMaxDocumentBytes) {
    if (error != nullptr) {
      *error = "document too large (" + std::to_string(text.size()) +
               " bytes, cap " + std::to_string(kMaxDocumentBytes) + ")";
    }
    return false;
  }
  Parser p{text};
  *out = Value{};
  if (!p.ParseValue(out)) {
    if (error != nullptr) *error = p.error;
    return false;
  }
  p.SkipSpace();
  if (p.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at offset " + std::to_string(p.pos);
    }
    return false;
  }
  return true;
}

}  // namespace minijson

namespace {

void AppendField(std::string* out, const char* key, std::int64_t value) {
  *out += '"';
  *out += key;
  *out += "\":";
  *out += std::to_string(value);
  *out += ',';
}

void AppendField(std::string* out, const char* key, bool value) {
  *out += '"';
  *out += key;
  *out += "\":";
  *out += value ? "true" : "false";
  *out += ',';
}

void AppendField(std::string* out, const char* key, std::string_view value) {
  *out += '"';
  *out += key;
  *out += "\":\"";
  *out += minijson::Escape(value);
  *out += "\",";
}

void AppendField(std::string* out, const char* key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  *out += '"';
  *out += key;
  *out += "\":";
  // %.17g may print "1e+09" — valid JSON — or an integer-looking token;
  // both round-trip through the parser above.
  *out += buf;
  *out += ',';
}

}  // namespace

std::string SerializeReport(const VerificationReport& r) {
  std::string out = "{";
  AppendField(&out, "verdict", static_cast<std::int64_t>(r.verdict));
  AppendField(&out, "type", static_cast<std::int64_t>(r.type));
  AppendField(&out, "detail", r.detail);
  AppendField(&out, "ep_name", r.ep_name);
  AppendField(&out, "ep_in_s", static_cast<std::int64_t>(r.ep_in_s));
  AppendField(&out, "ep_in_t", static_cast<std::int64_t>(r.ep_in_t));
  AppendField(&out, "ep_encounters_in_s",
              static_cast<std::int64_t>(r.ep_encounters_in_s));
  AppendField(&out, "bunch_count", static_cast<std::int64_t>(r.bunch_count));
  AppendField(&out, "crash_primitive_bytes",
              static_cast<std::int64_t>(r.crash_primitive_bytes));
  AppendField(&out, "symex_status",
              static_cast<std::int64_t>(r.symex_status));
  AppendField(&out, "poc_generated", r.poc_generated);
  AppendField(&out, "reformed_poc",
              std::string_view(ToHex(r.reformed_poc)));
  out += "\"bunch_offsets\":[";
  for (std::size_t i = 0; i < r.bunch_offsets.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(r.bunch_offsets[i]);
  }
  out += "],";
  AppendField(&out, "observed_trap",
              static_cast<std::int64_t>(r.observed_trap));
  AppendField(&out, "failed_phase", r.failed_phase);
  AppendField(&out, "deadline_expired", r.deadline_expired);
  AppendField(&out, "exception_contained", r.exception_contained);
  AppendField(&out, "cfg_static_fallback", r.cfg_static_fallback);
  AppendField(&out, "solver_budget_retried", r.solver_budget_retried);
  // The fuzz-fallback record is sparse: a report from a run without the
  // rung serializes byte-identically to one from a pipeline that never
  // had the rung at all. When any fuzz key is present, all of them are
  // (the parser enforces the same all-or-nothing shape).
  if (r.fuzz_attempted) {
    AppendField(&out, "fuzz_attempted", r.fuzz_attempted);
    AppendField(&out, "fuzz_execs", static_cast<std::int64_t>(r.fuzz_execs));
    AppendField(&out, "fuzz_execs_to_crash",
                static_cast<std::int64_t>(r.fuzz_execs_to_crash));
    AppendField(&out, "fuzz_best_distance", r.fuzz_best_distance);
    AppendField(&out, "fuzz_seed", static_cast<std::int64_t>(r.fuzz_seed));
  }
  AppendField(&out, "preprocess_seconds", r.timings.preprocess_seconds);
  AppendField(&out, "p1_seconds", r.timings.p1_seconds);
  AppendField(&out, "p23_seconds", r.timings.p23_seconds);
  AppendField(&out, "p4_seconds", r.timings.p4_seconds);
  AppendField(&out, "total_seconds", r.timings.total_seconds);
  out.back() = '}';  // replace the trailing comma
  return out;
}

bool ParseReport(const minijson::Value& json, VerificationReport* out,
                 std::string* error) {
  if (json.kind != minijson::Value::Kind::kObject) {
    if (error != nullptr) *error = "report is not a JSON object";
    return false;
  }
  *out = VerificationReport{};
  const auto get = [&](const char* key) { return json.Find(key); };
  // Enum-carrying integers are range-checked before the cast: a frame
  // from a newer (or corrupted) peer must be rejected, never misparsed
  // into an aliased enumerator.
  if (const auto* v = get("verdict")) {
    const std::int64_t raw = v->AsInt();
    if (raw < 0 ||
        raw > static_cast<std::int64_t>(Verdict::kTriggeredByFuzzing)) {
      if (error != nullptr) *error = "unknown verdict";
      return false;
    }
    out->verdict = static_cast<Verdict>(raw);
  }
  if (const auto* v = get("type")) {
    const std::int64_t raw = v->AsInt();
    if (raw < 0 || raw > static_cast<std::int64_t>(ResultType::kFuzzed)) {
      if (error != nullptr) *error = "unknown result type";
      return false;
    }
    out->type = static_cast<ResultType>(raw);
  }
  if (const auto* v = get("detail")) out->detail = v->text;
  if (const auto* v = get("ep_name")) out->ep_name = v->text;
  if (const auto* v = get("ep_in_s")) {
    out->ep_in_s = static_cast<vm::FuncId>(v->AsInt());
  }
  if (const auto* v = get("ep_in_t")) {
    out->ep_in_t = static_cast<vm::FuncId>(v->AsInt());
  }
  if (const auto* v = get("ep_encounters_in_s")) {
    out->ep_encounters_in_s = static_cast<std::uint32_t>(v->AsInt());
  }
  if (const auto* v = get("bunch_count")) {
    out->bunch_count = static_cast<std::size_t>(v->AsInt());
  }
  if (const auto* v = get("crash_primitive_bytes")) {
    out->crash_primitive_bytes = static_cast<std::size_t>(v->AsInt());
  }
  if (const auto* v = get("symex_status")) {
    const std::int64_t raw = v->AsInt();
    if (raw < 0 ||
        raw > static_cast<std::int64_t>(symex::SymexStatus::kDeadline)) {
      if (error != nullptr) *error = "unknown symex status";
      return false;
    }
    out->symex_status = static_cast<symex::SymexStatus>(raw);
  }
  if (const auto* v = get("poc_generated")) out->poc_generated = v->boolean;
  if (const auto* v = get("reformed_poc")) {
    if (v->text.size() > 2 * kMaxReformedPocBytes) {
      if (error != nullptr) *error = "reformed_poc exceeds size cap";
      return false;
    }
    try {
      out->reformed_poc = FromHex(v->text);
    } catch (const std::exception&) {
      if (error != nullptr) *error = "malformed reformed_poc hex";
      return false;
    }
  }
  if (const auto* v = get("bunch_offsets")) {
    for (const auto& item : v->items) {
      out->bunch_offsets.push_back(static_cast<std::uint32_t>(item.AsInt()));
    }
  }
  if (const auto* v = get("observed_trap")) {
    const std::int64_t raw = v->AsInt();
    if (raw < 0 || raw > static_cast<std::int64_t>(vm::TrapKind::kDeadline)) {
      if (error != nullptr) *error = "unknown trap kind";
      return false;
    }
    out->observed_trap = static_cast<vm::TrapKind>(raw);
  }
  if (const auto* v = get("failed_phase")) out->failed_phase = v->text;
  if (const auto* v = get("deadline_expired")) {
    out->deadline_expired = v->boolean;
  }
  if (const auto* v = get("exception_contained")) {
    out->exception_contained = v->boolean;
  }
  if (const auto* v = get("cfg_static_fallback")) {
    out->cfg_static_fallback = v->boolean;
  }
  if (const auto* v = get("solver_budget_retried")) {
    out->solver_budget_retried = v->boolean;
  }
  // Fuzz-fallback stats are all-or-nothing: a frame carrying only a
  // subset was truncated or tampered with — reject it rather than
  // decode a half-told campaign.
  {
    const minijson::Value* attempted = get("fuzz_attempted");
    const minijson::Value* execs = get("fuzz_execs");
    const minijson::Value* to_crash = get("fuzz_execs_to_crash");
    const minijson::Value* best = get("fuzz_best_distance");
    const minijson::Value* seed = get("fuzz_seed");
    const bool any = attempted != nullptr || execs != nullptr ||
                     to_crash != nullptr || best != nullptr ||
                     seed != nullptr;
    const bool all = attempted != nullptr && execs != nullptr &&
                     to_crash != nullptr && best != nullptr &&
                     seed != nullptr;
    if (any && !all) {
      if (error != nullptr) *error = "truncated fuzz stats";
      return false;
    }
    if (all) {
      out->fuzz_attempted = attempted->boolean;
      out->fuzz_execs = static_cast<std::uint64_t>(execs->AsInt());
      out->fuzz_execs_to_crash =
          static_cast<std::uint64_t>(to_crash->AsInt());
      out->fuzz_best_distance = best->AsDouble();
      out->fuzz_seed = static_cast<std::uint64_t>(seed->AsInt());
    }
  }
  if (const auto* v = get("preprocess_seconds")) {
    out->timings.preprocess_seconds = v->AsDouble();
  }
  if (const auto* v = get("p1_seconds")) out->timings.p1_seconds = v->AsDouble();
  if (const auto* v = get("p23_seconds")) {
    out->timings.p23_seconds = v->AsDouble();
  }
  if (const auto* v = get("p4_seconds")) out->timings.p4_seconds = v->AsDouble();
  if (const auto* v = get("total_seconds")) {
    out->timings.total_seconds = v->AsDouble();
  }
  return true;
}

bool ParseReport(std::string_view json, VerificationReport* out,
                 std::string* error) {
  minijson::Value value;
  if (!minijson::Parse(json, &value, error)) return false;
  return ParseReport(value, out, error);
}

std::string MarshalWorkerReport(const VerificationReport& report) {
  std::string out(kWorkerReportPrefix);
  out += SerializeReport(report);
  out += '\n';
  out += kWorkerDoneSentinel;
  out += '\n';
  return out;
}

bool UnmarshalWorkerReport(std::string_view worker_stdout,
                           VerificationReport* out, std::string* error) {
  const std::size_t at = worker_stdout.rfind(kWorkerReportPrefix);
  if (at == std::string_view::npos) {
    if (error != nullptr) *error = "no OCTO-REPORT line in worker output";
    return false;
  }
  std::string_view rest = worker_stdout.substr(at + kWorkerReportPrefix.size());
  const std::size_t eol = rest.find('\n');
  if (eol == std::string_view::npos) {
    if (error != nullptr) *error = "report line torn mid-write";
    return false;
  }
  const std::string_view json = rest.substr(0, eol);
  std::string_view tail = rest.substr(eol + 1);
  if (tail.substr(0, kWorkerDoneSentinel.size()) != kWorkerDoneSentinel) {
    if (error != nullptr) *error = "missing OCTO-DONE sentinel";
    return false;
  }
  return ParseReport(json, out, error);
}

}  // namespace octopocs::core
