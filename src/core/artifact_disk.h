// Persistent on-disk tier for the content-addressed artifact store
// (DESIGN.md §14).
//
// The in-memory ArtifactStore dies with the process, so the 98% warm
// reuse rate BENCH_perf.json measures is only ever reached inside one
// run. This tier persists artifacts under a cache directory so a
// restarted (or crashed and restarted) daemon comes back warm:
//
//   <dir>/segments.dat   append-only payload log: raw artifact bytes,
//                        written before the index ever points at them
//   <dir>/index.dat      fixed-size binary records mapping an
//                        ArtifactKey to (offset, length, checksum) in
//                        the segment file, fsync'd per record
//
// Crash safety mirrors core/journal.h: every Put appends the payload,
// fsyncs the segment, then appends + fsyncs one index record — so after
// a crash the index tail is at worst one torn record pointing at fully
// durable bytes. Open() tolerates exactly that: a partial trailing
// index record, or a trailing record whose payload extends past the
// segment's end or fails its checksum, is truncated away (healed); a
// malformed record anywhere else is refused. Get() re-verifies the
// payload checksum on every read, so a corrupt artifact is reported as
// a miss, never served.
//
// The store is single-owner (one daemon per cache dir) and thread-safe
// within that owner. Values are opaque byte blobs: callers serialize
// (core/report_io.h for verification reports) and own the key scheme
// (ArtifactHasher with a kind tag, exactly like the in-memory tier).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/artifact_store.h"
#include "support/bytes.h"

namespace octopocs::core {

class DiskArtifactStore {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t store_errors = 0;    // I/O failure / injected fault
    std::uint64_t corrupt_drops = 0;   // checksum mismatch at Get
    std::uint64_t healed_records = 0;  // index tail records dropped at Open
    std::uint64_t loaded_records = 0;  // entries recovered at Open
  };

  /// Opens (creating if needed) the store under `dir`, replaying the
  /// index and healing a torn tail. Returns nullptr with `*error` set
  /// when the directory or files cannot be created/read, or when the
  /// index is malformed beyond its tail.
  static std::unique_ptr<DiskArtifactStore> Open(const std::string& dir,
                                                 std::string* error);

  ~DiskArtifactStore();
  DiskArtifactStore(const DiskArtifactStore&) = delete;
  DiskArtifactStore& operator=(const DiskArtifactStore&) = delete;

  /// Durably stores `payload` under `key`. Idempotent: a key already
  /// present is left untouched (values for one key are byte-identical
  /// by construction). Returns false on an I/O failure — the caller
  /// degrades to cache-less operation, never crashes.
  bool Put(const ArtifactKey& key, ByteView payload);

  /// Returns the stored bytes, checksum-verified, or nullopt on miss
  /// (including a payload that no longer verifies).
  std::optional<Bytes> Get(const ArtifactKey& key);

  bool Contains(const ArtifactKey& key) const;

  /// fsyncs both files (Put already syncs per record; this is the
  /// drain-time belt and braces).
  void Flush();

  Stats stats() const;
  std::size_t size() const;

 private:
  struct IndexEntry {
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
    std::uint64_t checksum = 0;
  };

  DiskArtifactStore() = default;

  int segment_fd_ = -1;
  int index_fd_ = -1;
  std::uint64_t segment_bytes_ = 0;  // append offset
  mutable std::mutex mu_;
  std::map<ArtifactKey, IndexEntry> entries_;
  Stats stats_;
};

}  // namespace octopocs::core
