// Parallel corpus verification.
//
// One corpus pair's verification is completely independent of every
// other pair's — separate programs, separate PoCs, no shared mutable
// state (expression interning is thread-local, solver caches are
// per-run). VerifyCorpus exploits that: it drives core::VerifyPair over
// a pair list on a worker pool and returns reports in input order.
//
// Determinism guarantee: for a given pair list and options, every field
// of every report except the wall-clock timings is byte-identical
// whether jobs == 1 or jobs == N. The serial path literally runs the
// same closures in index order, and workers only ever write their own
// result slot, so there is no ordering-dependent state to diverge. A
// corpus-wide test asserts this equality. (Configuring deadlines makes
// verdicts clock-dependent by design; the guarantee then holds whenever
// the budgets are either comfortably met or comfortably blown in both
// runs.)
//
// Watchdog: with pair_deadline_ms > 0 each pair runs under that
// wall-clock budget twice over — the pipeline's own deadline machinery
// polls it cooperatively, and a reaper thread additionally raises the
// pair's kill switch once the budget passes, so one hung pair degrades
// to a kFailure report while every other pair finishes normally. The
// reaper sleeps on a condition variable bounded by the nearest running
// pair's deadline (woken when a pair starts), not on a fixed-period
// spin.
//
// Beyond the classic path, CorpusRunConfig layers on the production
// robustness machinery (DESIGN.md §12):
//   - isolation: each pair runs in a supervised, sandboxed worker
//     process (core/supervisor.h) instead of in-process;
//   - journal: a write-ahead crash journal records started/finished
//     pairs (core/journal.h);
//   - resume: pairs already finished in a previous journal are replayed
//     without re-running;
//   - interrupt: a SIGINT/SIGTERM flag drains the run — in-flight pairs
//     are cancelled (kill switch) or their workers killed, pending
//     pairs never start, and nothing cancelled is journaled as
//     finished.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "core/octopocs.h"
#include "corpus/pairs.h"

namespace octopocs::core {

struct IsolationOptions;
class Journal;
class WorkerPool;

struct CorpusRunConfig {
  /// Pipeline runs in flight at once; <= 1 runs serially.
  unsigned jobs = 1;
  /// Per-pair wall-clock budget, ms (0 = none). In-process pairs get
  /// the watchdog + in-pipeline deadline; isolated pairs communicate it
  /// to the worker via flags and rely on IsolationOptions::deadline_ms
  /// as the hard backstop.
  std::uint64_t pair_deadline_ms = 0;
  /// Expected per-pair cost for LPT start ordering (see VerifyCorpus).
  const std::vector<double>* cost_hints = nullptr;
  /// Non-null runs every pair in a supervised worker process.
  const IsolationOptions* isolation = nullptr;
  /// Non-null (with `isolation` set) routes isolated pairs through a
  /// persistent pre-forked worker pool instead of one fork/exec per
  /// pair. Same containment semantics, byte-identical verdicts; the
  /// caller owns the pool (and can read its stats afterwards).
  WorkerPool* worker_pool = nullptr;
  /// Non-null journals started/finished records per pair.
  Journal* journal = nullptr;
  /// Pairs (by pair.idx) already finished in a resumed journal: their
  /// reports are copied into the result without re-running.
  const std::map<int, VerificationReport>* resume_finished = nullptr;
  /// External drain switch (the CLI's signal flag): nonzero stops new
  /// pairs from starting and cancels running ones. Not owned.
  const std::atomic<int>* interrupt = nullptr;
};

/// Verifies `pairs[i]` into slot i of the result under `config` (see
/// CorpusRunConfig). An empty pair list returns an empty vector without
/// touching any worker machinery.
///
/// `cost_hints`, when non-null and the same length as `pairs`, gives an
/// expected per-pair cost (e.g. a recorded wall time from a previous
/// run); pairs are then *started* in descending-cost order, which is
/// the classic LPT mitigation for the straggler problem — a long pair
/// picked up last otherwise leaves every other worker idle behind it.
/// Scheduling order never affects report content (each pair writes only
/// its own input-order slot), so hints may be stale, partial garbage,
/// or from a different machine without harming determinism.
std::vector<VerificationReport> VerifyCorpus(
    const std::vector<corpus::Pair>& pairs, const PipelineOptions& options,
    const CorpusRunConfig& config);

/// Classic form: jobs + optional watchdog budget + optional LPT hints.
std::vector<VerificationReport> VerifyCorpus(
    const std::vector<corpus::Pair>& pairs, const PipelineOptions& options,
    unsigned jobs, std::uint64_t pair_deadline_ms = 0,
    const std::vector<double>* cost_hints = nullptr);

}  // namespace octopocs::core
