// Parallel corpus verification.
//
// One corpus pair's verification is completely independent of every
// other pair's — separate programs, separate PoCs, no shared mutable
// state (expression interning is thread-local, solver caches are
// per-run). VerifyCorpus exploits that: it drives core::VerifyPair over
// a pair list on a worker pool and returns reports in input order.
//
// Determinism guarantee: for a given pair list and options, every field
// of every report except the wall-clock timings is byte-identical
// whether jobs == 1 or jobs == N. The serial path literally runs the
// same closures in index order, and workers only ever write their own
// result slot, so there is no ordering-dependent state to diverge. A
// corpus-wide test asserts this equality. (Configuring deadlines makes
// verdicts clock-dependent by design; the guarantee then holds whenever
// the budgets are either comfortably met or comfortably blown in both
// runs.)
//
// Watchdog: with pair_deadline_ms > 0 each pair runs under that
// wall-clock budget twice over — the pipeline's own deadline machinery
// polls it cooperatively, and a reaper thread additionally raises the
// pair's kill switch once the budget passes, so one hung pair degrades
// to a kFailure report while every other pair finishes normally.
#pragma once

#include <cstdint>
#include <vector>

#include "core/octopocs.h"
#include "corpus/pairs.h"

namespace octopocs::core {

/// Verifies `pairs[i]` into slot i of the result, `jobs` at a time.
/// jobs <= 1 (including 0) runs serially on the calling thread; jobs >
/// the pair count is clamped. An empty pair list returns an empty
/// vector without touching any worker machinery. `pair_deadline_ms`,
/// when nonzero, bounds each pair's wall-clock time (see file comment).
///
/// `cost_hints`, when non-null and the same length as `pairs`, gives an
/// expected per-pair cost (e.g. a recorded wall time from a previous
/// run); pairs are then *started* in descending-cost order, which is
/// the classic LPT mitigation for the straggler problem — a long pair
/// picked up last otherwise leaves every other worker idle behind it.
/// Scheduling order never affects report content (each pair writes only
/// its own input-order slot), so hints may be stale, partial garbage,
/// or from a different machine without harming determinism.
std::vector<VerificationReport> VerifyCorpus(
    const std::vector<corpus::Pair>& pairs, const PipelineOptions& options,
    unsigned jobs, std::uint64_t pair_deadline_ms = 0,
    const std::vector<double>* cost_hints = nullptr);

}  // namespace octopocs::core
