#include "core/artifact_disk.h"

#include <cerrno>
#include <cstring>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "support/fault.h"

namespace octopocs::core {

namespace {

// Index file: 12-byte header, then fixed 40-byte records.
//   header: "OCTODISK" (8) + version u32
//   record: magic u32 | key.hi u64 | key.lo u64 | offset u64 |
//           length u32 | checksum u64
constexpr char kIndexMagic[8] = {'O', 'C', 'T', 'O', 'D', 'I', 'S', 'K'};
constexpr std::uint32_t kIndexVersion = 1;
constexpr std::uint32_t kRecordMagic = 0x4F435849;  // "OCXI"
constexpr std::size_t kHeaderBytes = 12;
constexpr std::size_t kRecordBytes = 40;

std::uint64_t Fnv1a(ByteView data) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

void PutU32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void PutU64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

#ifndef _WIN32

namespace {

bool WriteAllFd(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n <= 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::uint64_t FileSize(int fd) {
  struct stat st;
  return ::fstat(fd, &st) == 0 ? static_cast<std::uint64_t>(st.st_size) : 0;
}

// Makes a heal durable: the truncation/rewrite reaches stable storage,
// and so does the containing directory entry. Best effort — failure
// here degrades durability, never correctness, so heals proceed anyway.
void FsyncFileAndDir(int fd, const std::string& dir) {
  ::fsync(fd);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

}  // namespace

std::unique_ptr<DiskArtifactStore> DiskArtifactStore::Open(
    const std::string& dir, std::string* error) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    if (error != nullptr) {
      *error = "cannot create cache dir " + dir + ": " + std::strerror(errno);
    }
    return nullptr;
  }
  const std::string segment_path = dir + "/segments.dat";
  const std::string index_path = dir + "/index.dat";
  const int seg_fd = ::open(segment_path.c_str(), O_RDWR | O_CREAT, 0644);
  if (seg_fd < 0) {
    if (error != nullptr) {
      *error = "cannot open " + segment_path + ": " + std::strerror(errno);
    }
    return nullptr;
  }
  const int idx_fd = ::open(index_path.c_str(), O_RDWR | O_CREAT, 0644);
  if (idx_fd < 0) {
    if (error != nullptr) {
      *error = "cannot open " + index_path + ": " + std::strerror(errno);
    }
    ::close(seg_fd);
    return nullptr;
  }

  std::unique_ptr<DiskArtifactStore> store(new DiskArtifactStore());
  store->segment_fd_ = seg_fd;
  store->index_fd_ = idx_fd;
  store->segment_bytes_ = FileSize(seg_fd);
  // Appends below go through write(), so the segment fd must sit at its
  // end even on the fresh-index paths — a non-empty segment under an
  // empty index (crash between payload and index write) would otherwise
  // be silently overwritten from offset zero.
  if (::lseek(seg_fd, 0, SEEK_END) < 0) {
    if (error != nullptr) *error = "cannot seek artifact segment file";
    return nullptr;
  }

  const std::uint64_t index_bytes = FileSize(idx_fd);
  if (index_bytes == 0) {
    // Fresh store: write the header.
    std::uint8_t header[kHeaderBytes];
    std::memcpy(header, kIndexMagic, sizeof kIndexMagic);
    PutU32(header + 8, kIndexVersion);
    if (!WriteAllFd(idx_fd, header, sizeof header)) {
      if (error != nullptr) *error = "cannot write index header";
      return nullptr;
    }
    ::fsync(idx_fd);
    return store;
  }

  // Replay an existing index. A header shorter than kHeaderBytes is a
  // torn creation — treat the whole file as the torn tail and rewrite.
  std::uint8_t header[kHeaderBytes];
  if (index_bytes < kHeaderBytes ||
      ::pread(idx_fd, header, sizeof header, 0) !=
          static_cast<ssize_t>(sizeof header)) {
    if (::ftruncate(idx_fd, 0) != 0 ||
        ::lseek(idx_fd, 0, SEEK_SET) < 0) {
      if (error != nullptr) *error = "cannot heal torn index header";
      return nullptr;
    }
    std::memcpy(header, kIndexMagic, sizeof kIndexMagic);
    PutU32(header + 8, kIndexVersion);
    if (!WriteAllFd(idx_fd, header, sizeof header)) {
      if (error != nullptr) *error = "cannot rewrite index header";
      return nullptr;
    }
    FsyncFileAndDir(idx_fd, dir);
    ++store->stats_.healed_records;
    return store;
  }
  if (std::memcmp(header, kIndexMagic, sizeof kIndexMagic) != 0 ||
      GetU32(header + 8) != kIndexVersion) {
    if (error != nullptr) {
      *error = "unrecognized artifact index header in " + index_path;
    }
    return nullptr;
  }

  std::uint64_t valid_bytes = kHeaderBytes;
  std::uint8_t rec[kRecordBytes];
  for (std::uint64_t at = kHeaderBytes; at + kRecordBytes <= index_bytes;
       at += kRecordBytes) {
    if (::pread(idx_fd, rec, sizeof rec, static_cast<off_t>(at)) !=
        static_cast<ssize_t>(sizeof rec)) {
      break;  // unreadable tail — healed below
    }
    if (GetU32(rec) != kRecordMagic) {
      // A non-record where a record should be. Tolerable only as the
      // tail (a torn write); garbage followed by more records means the
      // file was corrupted in place — refuse it like the journal does.
      if (at + kRecordBytes < index_bytes) {
        if (error != nullptr) {
          *error = "malformed artifact index record at offset " +
                   std::to_string(at);
        }
        return nullptr;
      }
      break;
    }
    IndexEntry entry;
    const ArtifactKey key{GetU64(rec + 4), GetU64(rec + 12)};
    entry.offset = GetU64(rec + 20);
    entry.length = GetU32(rec + 28);
    entry.checksum = GetU64(rec + 32);
    // A record pointing past the segment's end means the index record
    // survived but its payload write did not (or the segment was
    // truncated): drop it and everything after.
    if (entry.offset + entry.length > store->segment_bytes_) break;
    store->entries_[key] = entry;
    valid_bytes = at + kRecordBytes;
  }

  const std::uint64_t tail = index_bytes - valid_bytes;
  if (tail != 0) {
    if (::ftruncate(idx_fd, static_cast<off_t>(valid_bytes)) != 0) {
      if (error != nullptr) {
        *error = "cannot heal torn index tail: " +
                 std::string(std::strerror(errno));
      }
      return nullptr;
    }
    // Without this, a power cut after the heal could resurrect the torn
    // bytes underneath records appended since — the same write-ahead
    // discipline the journal's Resume follows.
    FsyncFileAndDir(idx_fd, dir);
    store->stats_.healed_records +=
        (tail + kRecordBytes - 1) / kRecordBytes;
  }
  if (::lseek(idx_fd, 0, SEEK_END) < 0 ||
      ::lseek(seg_fd, 0, SEEK_END) < 0) {
    if (error != nullptr) *error = "cannot seek artifact store files";
    return nullptr;
  }
  store->stats_.loaded_records = store->entries_.size();
  return store;
}

DiskArtifactStore::~DiskArtifactStore() {
  Flush();
  if (segment_fd_ >= 0) ::close(segment_fd_);
  if (index_fd_ >= 0) ::close(index_fd_);
}

bool DiskArtifactStore::Put(const ArtifactKey& key, ByteView payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(key) != 0) return true;  // idempotent
  if (support::fault::Poll(support::FaultSite::kDiskStoreWrite)) {
    ++stats_.store_errors;
    return false;
  }
  // Write-ahead ordering: the payload is durable before the index ever
  // points at it, so a crash between the two leaves an orphaned blob,
  // never a dangling pointer.
  if (!WriteAllFd(segment_fd_, payload.data(), payload.size())) {
    ++stats_.store_errors;
    return false;
  }
  ::fsync(segment_fd_);

  IndexEntry entry;
  entry.offset = segment_bytes_;
  entry.length = static_cast<std::uint32_t>(payload.size());
  entry.checksum = Fnv1a(payload);
  segment_bytes_ += payload.size();

  std::uint8_t rec[kRecordBytes];
  PutU32(rec, kRecordMagic);
  PutU64(rec + 4, key.hi);
  PutU64(rec + 12, key.lo);
  PutU64(rec + 20, entry.offset);
  PutU32(rec + 28, entry.length);
  PutU64(rec + 32, entry.checksum);
  if (!WriteAllFd(index_fd_, rec, sizeof rec)) {
    ++stats_.store_errors;
    return false;  // orphaned payload; harmless, reclaimed never
  }
  ::fsync(index_fd_);
  entries_[key] = entry;
  ++stats_.stores;
  return true;
}

std::optional<Bytes> DiskArtifactStore::Get(const ArtifactKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  Bytes payload(it->second.length);
  const ssize_t n =
      ::pread(segment_fd_, payload.data(), payload.size(),
              static_cast<off_t>(it->second.offset));
  if (n != static_cast<ssize_t>(payload.size()) ||
      Fnv1a(payload) != it->second.checksum) {
    // Bit rot / a hand-truncated segment: never serve it, and forget
    // the entry so later lookups miss cheaply.
    entries_.erase(it);
    ++stats_.corrupt_drops;
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return payload;
}

bool DiskArtifactStore::Contains(const ArtifactKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(key) != 0;
}

void DiskArtifactStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (segment_fd_ >= 0) ::fsync(segment_fd_);
  if (index_fd_ >= 0) ::fsync(index_fd_);
}

#else  // _WIN32

std::unique_ptr<DiskArtifactStore> DiskArtifactStore::Open(
    const std::string&, std::string* error) {
  if (error != nullptr) *error = "the disk artifact store requires POSIX";
  return nullptr;
}
DiskArtifactStore::~DiskArtifactStore() = default;
bool DiskArtifactStore::Put(const ArtifactKey&, ByteView) { return false; }
std::optional<Bytes> DiskArtifactStore::Get(const ArtifactKey&) {
  return std::nullopt;
}
bool DiskArtifactStore::Contains(const ArtifactKey&) const { return false; }
void DiskArtifactStore::Flush() {}

#endif

DiskArtifactStore::Stats DiskArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t DiskArtifactStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace octopocs::core
