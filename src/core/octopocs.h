// OCTOPOCS — the public pipeline API.
//
// Verifies whether a vulnerability that propagated from S into T can
// still be triggered, by reforming S's proof-of-concept (paper §III):
//
//   Preprocessing  discover ep — the bottom-most ℓ function on the
//                  crash callstack of S(poc) (backtrace(3) substitute).
//   P1             context-aware taint analysis over S(poc) extracts
//                  crash primitives, grouped into per-encounter bunches.
//   P2             directed symbolic execution of T, steered by
//                  backward path finding on T's CFG, collects guiding
//                  constraints from the entry to ep.
//   P3             at each ep encounter the matching bunch is pinned at
//                  T's file-position indicator; after the last bunch the
//                  combined system is solved into poc'.
//   P4             T runs concretely on poc'; a trap of the expected
//                  class verifies the propagated vulnerability.
//
// Verdicts follow §III-D: Triggered (case i), NotTriggerable (case ii —
// ep unreachable, case iii — program-dead, or an unsatisfiable combined
// system), and Failure for tooling limits (the simulated angr CFG
// defect, solver budget), which is exactly the paper's Failure row.
//
// Typical use:
//
//   corpus::Pair pair = corpus::BuildPair(8);   // opj_dump → MuPDF
//   core::Octopocs pipeline(pair.s, pair.t, pair.shared_functions,
//                           pair.poc);
//   core::VerificationReport report = pipeline.Verify();
//   if (report.verdict == core::Verdict::kTriggered) {
//     // report.reformed_poc crashes pair.t
//   }
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cfg/cfg.h"
#include "corpus/pairs.h"
#include "support/bytes.h"
#include "support/deadline.h"
#include "symex/executor.h"
#include "taint/crash_primitive.h"
#include "vm/interp.h"

namespace octopocs::support {
class Tracer;
}

namespace octopocs::core {

class ArtifactStore;

enum class Verdict : std::uint8_t {
  kTriggered,       // poc' reproduces the crash in T (patch urgently)
  kNotTriggerable,  // verified: the clone cannot fire in T
  kFailure,         // tooling could not decide (CFG/solver/budget)
  /// The fuzz-fallback rung (DESIGN.md §16) crashed T at ep after
  /// symex went program-dead or ran out of budget. Reported apart from
  /// kTriggered so Table II fidelity is untouched: a fuzzed crash is a
  /// real trigger but not a paper-pipeline reformation.
  kTriggeredByFuzzing,
};

std::string_view VerdictName(Verdict verdict);

/// Table II result classification. kFuzzed is the fallback rung's
/// distinct row — never counted among Type-I/II/III.
enum class ResultType : std::uint8_t {
  kTypeI,
  kTypeII,
  kTypeIII,
  kFailure,
  kFuzzed,
};

std::string_view ResultTypeName(ResultType type);

struct PhaseTimings {
  double preprocess_seconds = 0;
  double p1_seconds = 0;
  double p23_seconds = 0;  // guiding + combining run as one phase
  double p4_seconds = 0;
  double total_seconds = 0;
};

struct VerificationReport {
  Verdict verdict = Verdict::kFailure;
  ResultType type = ResultType::kFailure;
  /// Why the pipeline reached this verdict (CFG error text, unsat
  /// detail, trap message, ...).
  std::string detail;

  /// Discovered shared-area entry point.
  std::string ep_name;
  vm::FuncId ep_in_s = vm::kInvalidFunc;
  vm::FuncId ep_in_t = vm::kInvalidFunc;

  /// P1 outcome.
  std::uint32_t ep_encounters_in_s = 0;
  std::size_t bunch_count = 0;
  std::size_t crash_primitive_bytes = 0;

  /// P2/P3 outcome.
  symex::SymexStatus symex_status = symex::SymexStatus::kProgramDead;
  symex::SymexStats symex_stats;
  bool poc_generated = false;
  Bytes reformed_poc;
  std::vector<std::uint32_t> bunch_offsets;  // where bunches landed

  /// P4 outcome (only meaningful when poc_generated).
  vm::TrapKind observed_trap = vm::TrapKind::kNone;

  // -- Degradation record (DESIGN.md §9) ------------------------------------

  /// Phase that produced a kFailure verdict: "preprocessing", "P1",
  /// "cfg", "P2/P3" or "P4". Empty for success verdicts.
  std::string failed_phase;
  /// The failure is a wall-clock timeout (deadline or kill switch), not
  /// a statement about the pair.
  bool deadline_expired = false;
  /// A phase threw and the exception was contained into this report
  /// instead of escaping (tooling crash / injected fault).
  bool exception_contained = false;
  /// Dynamic CFG construction failed and the pipeline retried with a
  /// static-only CFG; the rest of the report describes the retry.
  bool cfg_static_fallback = false;
  /// The final constraint solve ran out of steps and was retried once
  /// with a doubled step budget.
  bool solver_budget_retried = false;

  // -- Fuzz-fallback record (DESIGN.md §16) ---------------------------------
  // Serialized sparsely: these keys only appear in a report when the
  // rung actually ran, so rung-off serializations stay byte-identical
  // to pipelines without the rung.

  /// The fallback campaign ran (regardless of outcome).
  bool fuzz_attempted = false;
  /// Executions spent (equals the crash index when one was found).
  std::uint64_t fuzz_execs = 0;
  std::uint64_t fuzz_execs_to_crash = 0;
  /// Closest mean distance-to-ep any execution achieved (-1: none).
  double fuzz_best_distance = -1;
  /// The rng seed the campaign ran with (reproduction handle).
  std::uint64_t fuzz_seed = 0;

  PhaseTimings timings;
};

struct PipelineOptions {
  taint::ExtractionOptions taint;  // context_aware is the Table III knob
  symex::ExecutorOptions symex;    // theta / budgets (Tables IV & V)
  cfg::CfgOptions cfg;             // dynamic CFG / simulated angr defect
  /// P4 execution limits; the fuel bound doubles as the hang detector
  /// for infinite-loop (CWE-835) vulnerabilities.
  vm::ExecOptions verify_exec;
  /// Feed the original PoC to the dynamic CFG builder as a seed (angr's
  /// dynamic CFG equally observes concrete executions).
  bool poc_as_cfg_seed = true;
  /// Adaptive loop cap — the improvement the paper leaves as future
  /// work (§III-D "improving OCTOPOCS so that it can efficiently handle
  /// loops"): when P2/P3 ends program-dead *and* some state was killed
  /// by θ, retry with θ doubled, up to adaptive_theta_max. A
  /// NotTriggerable verdict is only trusted once no state died at the
  /// cap (or the ceiling is hit, which degrades the verdict to Failure
  /// instead of a potentially wrong NotTriggerable).
  bool adaptive_theta = false;
  std::uint32_t adaptive_theta_max = 1'920;

  // -- Deadlines and cancellation (DESIGN.md §9) ----------------------------

  /// Wall-clock budget over the whole pipeline, milliseconds (0 = none).
  /// Tripping yields kFailure with deadline_expired set and failed_phase
  /// naming the phase that was running.
  std::uint64_t deadline_ms = 0;
  /// Per-phase budgets (milliseconds, 0 = none). Each phase runs under
  /// Deadline::Sooner(whole-pipeline budget, its own budget).
  std::uint64_t preprocess_deadline_ms = 0;
  std::uint64_t p1_deadline_ms = 0;
  std::uint64_t p23_deadline_ms = 0;
  std::uint64_t p4_deadline_ms = 0;
  /// External kill switch (the corpus watchdog's reaping mechanism),
  /// polled alongside every deadline. Not owned; may be null; must
  /// outlive Verify().
  const std::atomic<bool>* cancel_flag = nullptr;

  // -- Graceful degradation --------------------------------------------------

  /// Retry a failed dynamic-CFG build once with static edges only
  /// (recorded as cfg_static_fallback). Off by default: the static CFG
  /// lacks indirect-call edges, so the fallback trades the paper's
  /// faithful Idx-15 Failure row for a best-effort (possibly weaker)
  /// verdict — callers opt in.
  bool cfg_fallback_to_static = false;
  /// Retry a solver-budget (kUnknown) symex failure once with
  /// solver.max_steps doubled (recorded as solver_budget_retried). Off
  /// by default so budget-sensitivity experiments see the configured
  /// budget exactly.
  bool solver_budget_retry = false;
  /// Trace-guided fuzzing fallback (DESIGN.md §16): when P2/P3 ends
  /// program-dead or exhausts its budgets, run a directed fuzz campaign
  /// seeded from the original PoC — bunch bytes pinned, candidates
  /// scored by distance-to-ep — and, on a confirmed crash at ep, report
  /// kTriggeredByFuzzing. Off by default like the other rungs; the rung
  /// can upgrade a dead-end verdict but never touches a pair the
  /// pipeline already decided (Triggered or a proven NotTriggerable).
  bool fuzz_fallback = false;
  /// Fallback campaign rng seed — with the execution budget below this
  /// makes the rung's verdict byte-reproducible (the determinism
  /// contract CI gates). Verdict-bearing: enters journal fingerprints
  /// and serve cache keys, unlike the answer-identical backend knobs.
  std::uint64_t fuzz_seed = 1;
  /// Fallback execution budget (count, not wall clock).
  std::uint64_t fuzz_execs = 200'000;
  /// Wall-clock budget for the fuzz deadline group (0 = none). Only
  /// ever abandons a campaign early; never changes its search order.
  std::uint64_t fuzz_deadline_ms = 0;

  // -- Observability and artifact reuse (DESIGN.md §11) ---------------------

  /// Structured-tracing sink threaded through every layer (phase spans,
  /// executor counters). Not owned, may be null, must outlive Verify().
  /// Pure observability: never affects verdicts or determinism.
  support::Tracer* tracer = nullptr;
  /// Content-addressed artifact store. When set, phases consult it
  /// before recomputing origin-side artifacts (ep discovery, crash
  /// primitives, T's CFG edges) and publish completed results, so
  /// corpus pairs sharing an origin S (or a target T) reuse work.
  /// Results are byte-identical with and without the store (enforced by
  /// tests and the perf gate). Not owned, may be null, may be shared
  /// across threads, must outlive Verify(). Never enters artifact keys.
  ArtifactStore* artifacts = nullptr;
};

/// Applies one interpreter dispatch backend to every concrete execution
/// the pipeline performs (P1 taint run, dynamic-CFG seeding, P4 verify).
/// Verdicts are byte-identical across backends — the CLI's
/// --vm-dispatch flag exists for A/B measurement and as the portable
/// fallback, so the mode never enters artifact keys or journal
/// fingerprints.
void SetVmDispatch(PipelineOptions& options, vm::DispatchMode mode);

/// Selects the CSP search core for every solver query P2/P3 issues
/// (including retry rungs, which reuse the same options). Backends are
/// answer-identical — the CLI's --solver-backend flag exists for A/B
/// verification and perf measurement, so like the dispatch mode the
/// choice never enters artifact keys or journal fingerprints.
void SetSolverBackend(PipelineOptions& options, symex::SolverBackendKind kind);

/// Enables or disables the interpreter's exact-cycle fast-forward in
/// every concrete execution the pipeline performs. The skip is
/// state-identity based and byte-identical by construction (see
/// vm::ExecOptions::cycle_skip), so it too stays out of artifact keys;
/// the off position exists for the benchmark's honest baseline leg and
/// for debugging.
void SetCycleSkip(PipelineOptions& options, bool enabled);

class Octopocs {
 public:
  /// `shared_functions` is ℓ by name (the clone detector's output; both
  /// programs must contain these functions). When T renamed the cloned
  /// functions, `t_names` maps S-side names to T-side names — exactly
  /// what clone::DetectClones reports for renamed matches.
  Octopocs(const vm::Program& s, const vm::Program& t,
           std::vector<std::string> shared_functions, Bytes poc,
           PipelineOptions options = {},
           std::map<std::string, std::string> t_names = {});

  /// Runs the full pipeline by executing the phase graph (core/phase.h):
  /// CrashPrimitivePhase → GuidingInputPhase → CombinePhase →
  /// FuzzFallbackPhase → ConcreteVerifyPhase, under one
  /// deadline/containment policy. The fuzz phase is inert unless
  /// options.fuzz_fallback is set *and* P2/P3 dead-ended.
  VerificationReport Verify();

  // -- Individual phases, exposed for the ablation benches ------------------

  /// Preprocessing: runs S(poc) and locates ep (§III "Preprocessing").
  /// Returns nullopt when the PoC does not crash S or no ℓ function is
  /// involved in the crash. A tripped `cancel` also yields nullopt (the
  /// run ends in kDeadline, which is not a crash).
  std::optional<vm::FuncId> DiscoverEp(support::CancelToken cancel = {});

  /// P1 with the configured taint options.
  taint::ExtractionResult ExtractPrimitives(vm::FuncId ep_in_s,
                                            support::CancelToken cancel = {});

 private:
  const vm::Program& s_;
  const vm::Program& t_;
  std::vector<std::string> shared_;
  Bytes poc_;
  PipelineOptions options_;
  std::map<std::string, std::string> t_names_;
};

/// Convenience wrapper for corpus pairs.
VerificationReport VerifyPair(const corpus::Pair& pair,
                              PipelineOptions options = {});

}  // namespace octopocs::core
