#include "core/minimize.h"

#include <optional>
#include <stdexcept>

namespace octopocs::core {

namespace {

/// The signature minimization must preserve: trap class + innermost
/// crashing function.
struct CrashSignature {
  vm::TrapKind trap = vm::TrapKind::kNone;
  vm::FuncId fn = vm::kInvalidFunc;

  bool operator==(const CrashSignature&) const = default;
};

std::optional<CrashSignature> Signature(const vm::Program& program,
                                        ByteView input,
                                        const vm::ExecOptions& exec) {
  const vm::ExecResult run = vm::RunProgram(program, input, exec);
  if (!vm::IsVulnerabilityCrash(run.trap)) return std::nullopt;
  CrashSignature sig;
  sig.trap = run.trap;
  sig.fn = run.backtrace.empty() ? vm::kInvalidFunc : run.backtrace.back().fn;
  return sig;
}

}  // namespace

MinimizeResult MinimizePoc(const vm::Program& program, const Bytes& poc,
                           const MinimizeOptions& options) {
  MinimizeResult result;
  result.original_size = poc.size();

  const auto want = Signature(program, poc, options.exec);
  ++result.runs;
  if (!want) {
    throw std::invalid_argument(
        "MinimizePoc: input does not crash the program");
  }

  auto still_crashes = [&](const Bytes& candidate) {
    if (result.runs >= options.max_runs) return false;
    ++result.runs;
    return Signature(program, candidate, options.exec) == want;
  };

  // Step 1: shortest crashing prefix via binary search. Crash behaviour
  // is not monotone in the prefix length in general, so the bounds are
  // validated: `hi` always crashes; shrink while some shorter prefix
  // still does.
  Bytes current = poc;
  {
    std::size_t lo = 0, hi = current.size();
    while (lo + 1 < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      Bytes prefix(current.begin(), current.begin() + mid);
      if (still_crashes(prefix)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    current.resize(hi);
  }

  // Step 2: greedy zeroing of the surviving bytes.
  for (std::size_t i = 0; i < current.size(); ++i) {
    if (current[i] == 0) continue;
    const std::uint8_t saved = current[i];
    current[i] = 0;
    if (still_crashes(current)) {
      ++result.zeroed_bytes;
    } else {
      current[i] = saved;
    }
  }

  result.poc = std::move(current);
  return result;
}

}  // namespace octopocs::core
