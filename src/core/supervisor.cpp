#include "core/supervisor.h"

#include <chrono>
#include <thread>

#ifndef _WIN32
#include <signal.h>
#endif

#include "core/report_io.h"
#include "support/rng.h"

namespace octopocs::core {

namespace {

#ifndef _WIN32
constexpr int kSigXcpu = SIGXCPU;
constexpr int kSigKill = SIGKILL;
#else
constexpr int kSigXcpu = 24;
constexpr int kSigKill = 9;
#endif

VerificationReport InfraFailureReport(std::string detail,
                                      bool deadline_expired,
                                      bool exception_contained) {
  VerificationReport report;
  report.verdict = Verdict::kFailure;
  report.type = ResultType::kFailure;
  report.detail = std::move(detail);
  report.failed_phase = "worker";
  report.deadline_expired = deadline_expired;
  report.exception_contained = exception_contained;
  return report;
}

/// Capped exponential backoff with deterministic jitter, sliced into
/// 10ms naps so an interrupt drains promptly even mid-backoff.
void BackoffNap(int pair_idx, unsigned attempt,
                const std::atomic<int>* interrupt) {
  std::uint64_t nap_ms = RetryBackoffMs(pair_idx, attempt);
  while (nap_ms > 0) {
    if (interrupt != nullptr &&
        interrupt->load(std::memory_order_relaxed) != 0) {
      break;
    }
    const std::uint64_t slice = nap_ms < 10 ? nap_ms : 10;
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    nap_ms -= slice;
  }
}

/// Quarantine detail string shared by both isolation backends.
std::string QuarantineDetail(unsigned attempts, ChildOutcome outcome,
                             const support::SubprocessResult& child) {
  std::string why(ChildOutcomeName(outcome));
  if (outcome == ChildOutcome::kCrashSignal) {
    why += " " + std::to_string(child.term_signal);
  } else if (outcome == ChildOutcome::kNonzeroExit) {
    why += " " + std::to_string(child.exit_code);
  } else if (outcome == ChildOutcome::kSpawnError) {
    why += ": " + child.error;
  }
  return "quarantined after " + std::to_string(attempts) +
         " worker attempt(s): " + why;
}

}  // namespace

std::string_view ChildOutcomeName(ChildOutcome outcome) {
  switch (outcome) {
    case ChildOutcome::kCleanReport: return "clean-report";
    case ChildOutcome::kMalformedReport: return "malformed-report";
    case ChildOutcome::kNonzeroExit: return "nonzero-exit";
    case ChildOutcome::kCrashSignal: return "crash-signal";
    case ChildOutcome::kResourceKill: return "resource-kill";
    case ChildOutcome::kTimeout: return "timeout";
    case ChildOutcome::kInterrupted: return "interrupted";
    case ChildOutcome::kSpawnError: return "spawn-error";
  }
  return "?";
}

bool IsRetryableOutcome(ChildOutcome outcome) {
  switch (outcome) {
    case ChildOutcome::kMalformedReport:
    case ChildOutcome::kNonzeroExit:
    case ChildOutcome::kCrashSignal:
    case ChildOutcome::kSpawnError:
      return true;
    case ChildOutcome::kCleanReport:
    case ChildOutcome::kResourceKill:
    case ChildOutcome::kTimeout:
    case ChildOutcome::kInterrupted:
      return false;
  }
  return false;
}

ChildOutcome ClassifyChild(const support::SubprocessResult& result,
                           VerificationReport* report) {
  switch (result.status) {
    case support::SubprocessStatus::kInterrupted:
      return ChildOutcome::kInterrupted;
    case support::SubprocessStatus::kKilledByDeadline:
      return ChildOutcome::kTimeout;
    case support::SubprocessStatus::kSpawnError:
      return ChildOutcome::kSpawnError;
    case support::SubprocessStatus::kSignaled:
      // SIGXCPU is the CPU rlimit's soft cap; SIGKILL is its hard cap
      // (or the kernel OOM killer) — a cap firing is deterministic, so
      // these are final, not transient. Every other signal is a worker
      // crash worth retrying.
      return (result.term_signal == kSigXcpu ||
              result.term_signal == kSigKill)
                 ? ChildOutcome::kResourceKill
                 : ChildOutcome::kCrashSignal;
    case support::SubprocessStatus::kExited: {
      if (result.exit_code != 0) return ChildOutcome::kNonzeroExit;
      std::string error;
      VerificationReport parsed;
      if (!UnmarshalWorkerReport(result.output, &parsed, &error)) {
        return ChildOutcome::kMalformedReport;
      }
      if (report != nullptr) *report = std::move(parsed);
      return ChildOutcome::kCleanReport;
    }
  }
  return ChildOutcome::kSpawnError;
}

std::uint64_t RetryBackoffMs(int pair_idx, unsigned attempt) {
  constexpr std::uint64_t kBaseMs = 20;
  constexpr std::uint64_t kCapMs = 250;
  std::uint64_t base = kBaseMs << (attempt < 8 ? attempt : 8);
  if (base > kCapMs) base = kCapMs;
  // ±50% jitter, deterministic per (pair, attempt).
  Rng rng((static_cast<std::uint64_t>(static_cast<std::uint32_t>(pair_idx))
           << 32) ^
          (attempt + 0x9E3779B97F4A7C15ULL));
  const std::uint64_t half = base / 2;
  return half + rng.Below(base + 1);  // [base/2, 3*base/2]
}

SupervisedResult RunSupervisedPair(const corpus::Pair& pair,
                                   const IsolationOptions& isolation,
                                   const std::atomic<int>* interrupt) {
  std::vector<std::string> argv;
  argv.reserve(3 + isolation.worker_args.size());
  argv.push_back(isolation.worker_binary);
  argv.push_back("pair-worker");
  argv.push_back(std::to_string(pair.idx));
  for (const std::string& arg : isolation.worker_args) argv.push_back(arg);

  support::SubprocessLimits limits;
  limits.rlimit_mb = isolation.rlimit_mb;
  limits.cpu_seconds = isolation.cpu_seconds;
  limits.deadline_ms = isolation.deadline_ms;

  SupervisedResult result;
  for (unsigned attempt = 0;; ++attempt) {
    if (interrupt != nullptr &&
        interrupt->load(std::memory_order_relaxed) != 0) {
      result.report = InfraFailureReport(
          "interrupted before the worker could start", true, false);
      result.last_outcome = ChildOutcome::kInterrupted;
      result.interrupted = true;
      return result;
    }

    const support::SubprocessResult child =
        support::RunProcess(argv, limits, interrupt);
    ++result.attempts;
    const ChildOutcome outcome = ClassifyChild(child, &result.report);
    result.last_outcome = outcome;

    switch (outcome) {
      case ChildOutcome::kCleanReport:
        return result;
      case ChildOutcome::kTimeout:
        result.report = InfraFailureReport(
            "worker killed at the " + std::to_string(isolation.deadline_ms) +
                "ms wall-clock cap",
            true, false);
        return result;
      case ChildOutcome::kResourceKill:
        result.report = InfraFailureReport(
            std::string("worker killed by a resource cap (signal ") +
                std::to_string(child.term_signal) + ")",
            true, false);
        return result;
      case ChildOutcome::kInterrupted:
        result.report =
            InfraFailureReport("interrupted mid-pair; worker killed",
                               true, false);
        result.interrupted = true;
        return result;
      default:
        break;  // retryable
    }

    if (attempt >= isolation.max_retries) {
      result.report = InfraFailureReport(
          QuarantineDetail(result.attempts, outcome, child), false, true);
      result.quarantined = true;
      return result;
    }

    BackoffNap(pair.idx, attempt, interrupt);
  }
}

// -- WorkerPool ---------------------------------------------------------------

WorkerPool::WorkerPool(const IsolationOptions& isolation, unsigned size)
    : isolation_(isolation) {
  if (size == 0) size = 1;
  slots_.reserve(size);
  for (unsigned i = 0; i < size; ++i) {
    slots_.push_back(std::make_unique<Slot>());
    free_.push_back(slots_.back().get());
  }
}

WorkerPool::~WorkerPool() {
  // A clean shutdown request first (covers workers mid-write), then the
  // unconditional kill — the pool must never leave orphans behind.
  for (auto& slot : slots_) {
    if (slot->proc.alive()) {
      slot->proc.WriteLine(std::string(kPoolExitLine));
      slot->proc.Kill();
    }
  }
}

WorkerPool::Stats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

WorkerPool::Slot* WorkerPool::Acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !free_.empty(); });
  Slot* slot = free_.back();
  free_.pop_back();
  return slot;
}

void WorkerPool::Release(Slot* slot) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(slot);
  }
  cv_.notify_one();
}

SupervisedResult WorkerPool::RunPair(const corpus::Pair& pair,
                                     const std::atomic<int>* interrupt) {
  Slot* slot = Acquire();
  SupervisedResult result;

  for (unsigned attempt = 0;; ++attempt) {
    if (interrupt != nullptr &&
        interrupt->load(std::memory_order_relaxed) != 0) {
      result.report = InfraFailureReport(
          "interrupted before the worker could start", true, false);
      result.last_outcome = ChildOutcome::kInterrupted;
      result.interrupted = true;
      break;
    }

    // (Re)spawn lazily: the first pair a slot serves pays the fork +
    // warmup; every later pair on a surviving worker rides for free.
    if (!slot->proc.alive()) {
      std::vector<std::string> argv;
      argv.reserve(2 + isolation_.worker_args.size());
      argv.push_back(isolation_.worker_binary);
      argv.push_back("pool-worker");
      for (const std::string& arg : isolation_.worker_args) {
        argv.push_back(arg);
      }
      support::SubprocessLimits limits;
      limits.rlimit_mb = isolation_.rlimit_mb;
      limits.cpu_seconds = isolation_.cpu_seconds;
      std::string error;
      if (!slot->proc.Spawn(argv, limits, &error)) {
        ++result.attempts;
        result.last_outcome = ChildOutcome::kSpawnError;
        if (attempt >= isolation_.max_retries) {
          support::SubprocessResult child;
          child.error = error;
          result.report = InfraFailureReport(
              QuarantineDetail(result.attempts, ChildOutcome::kSpawnError,
                               child),
              false, true);
          result.quarantined = true;
          break;
        }
        BackoffNap(pair.idx, attempt, interrupt);
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.spawns;
        if (slot->ever_spawned) ++stats_.respawns;
      }
      slot->ever_spawned = true;
    }

    ++result.attempts;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.dispatches;
    }

    if (!slot->proc.WriteLine(std::string(kPoolPairPrefix) +
                              std::to_string(pair.idx))) {
      // The worker died between pairs: a crashed worker, retryable.
      // Kill() on the zombie preserves its real wait status for the
      // diagnostics without changing the classification.
      slot->proc.Kill();
      result.last_outcome = ChildOutcome::kCrashSignal;
      if (attempt >= isolation_.max_retries) {
        support::SubprocessResult child;
        result.report = InfraFailureReport(
            QuarantineDetail(result.attempts, ChildOutcome::kCrashSignal,
                             child),
            false, true);
        result.quarantined = true;
        break;
      }
      BackoffNap(pair.idx, attempt, interrupt);
      continue;
    }

    std::string frame;
    const support::PersistentProcess::ReadStatus rs = slot->proc.ReadFrame(
        kWorkerDoneSentinel, isolation_.deadline_ms, interrupt, &frame);

    support::SubprocessResult child;
    ChildOutcome outcome;
    switch (rs) {
      case support::PersistentProcess::ReadStatus::kOk:
        // Same classification path as a one-shot worker that exited 0
        // with this stdout.
        child.status = support::SubprocessStatus::kExited;
        child.exit_code = 0;
        child.output = std::move(frame);
        outcome = ClassifyChild(child, &result.report);
        break;
      case support::PersistentProcess::ReadStatus::kEof:
        // The worker died mid-pair; its wait status drives the same
        // crash/resource-kill/nonzero-exit classification as one-shot
        // isolation. (An exit-0 child with a torn frame classifies as
        // kMalformedReport.)
        child = slot->proc.Reap();
        outcome = ClassifyChild(child, &result.report);
        break;
      case support::PersistentProcess::ReadStatus::kTimeout:
        slot->proc.Kill();
        outcome = ChildOutcome::kTimeout;
        break;
      case support::PersistentProcess::ReadStatus::kInterrupted:
        slot->proc.Kill();
        outcome = ChildOutcome::kInterrupted;
        break;
      case support::PersistentProcess::ReadStatus::kError:
      default:
        slot->proc.Kill();
        outcome = ChildOutcome::kSpawnError;
        break;
    }
    result.last_outcome = outcome;

    switch (outcome) {
      case ChildOutcome::kCleanReport:
        Release(slot);
        return result;
      case ChildOutcome::kTimeout:
        result.report = InfraFailureReport(
            "worker killed at the " + std::to_string(isolation_.deadline_ms) +
                "ms wall-clock cap",
            true, false);
        Release(slot);
        return result;
      case ChildOutcome::kResourceKill:
        result.report = InfraFailureReport(
            std::string("worker killed by a resource cap (signal ") +
                std::to_string(child.term_signal) + ")",
            true, false);
        Release(slot);
        return result;
      case ChildOutcome::kInterrupted:
        result.report = InfraFailureReport(
            "interrupted mid-pair; worker killed", true, false);
        result.interrupted = true;
        Release(slot);
        return result;
      default:
        break;  // retryable
    }

    // A worker that produced a retryable outcome is poisoned (dead, or
    // alive with a desynced frame stream) — never reuse it.
    if (slot->proc.alive()) slot->proc.Kill();

    if (attempt >= isolation_.max_retries) {
      result.report = InfraFailureReport(
          QuarantineDetail(result.attempts, outcome, child), false, true);
      result.quarantined = true;
      break;
    }
    BackoffNap(pair.idx, attempt, interrupt);
  }

  Release(slot);
  return result;
}

}  // namespace octopocs::core
