#include "core/supervisor.h"

#include <chrono>
#include <thread>

#ifndef _WIN32
#include <signal.h>
#endif

#include "core/report_io.h"
#include "support/rng.h"

namespace octopocs::core {

namespace {

#ifndef _WIN32
constexpr int kSigXcpu = SIGXCPU;
constexpr int kSigKill = SIGKILL;
#else
constexpr int kSigXcpu = 24;
constexpr int kSigKill = 9;
#endif

VerificationReport InfraFailureReport(std::string detail,
                                      bool deadline_expired,
                                      bool exception_contained) {
  VerificationReport report;
  report.verdict = Verdict::kFailure;
  report.type = ResultType::kFailure;
  report.detail = std::move(detail);
  report.failed_phase = "worker";
  report.deadline_expired = deadline_expired;
  report.exception_contained = exception_contained;
  return report;
}

}  // namespace

std::string_view ChildOutcomeName(ChildOutcome outcome) {
  switch (outcome) {
    case ChildOutcome::kCleanReport: return "clean-report";
    case ChildOutcome::kMalformedReport: return "malformed-report";
    case ChildOutcome::kNonzeroExit: return "nonzero-exit";
    case ChildOutcome::kCrashSignal: return "crash-signal";
    case ChildOutcome::kResourceKill: return "resource-kill";
    case ChildOutcome::kTimeout: return "timeout";
    case ChildOutcome::kInterrupted: return "interrupted";
    case ChildOutcome::kSpawnError: return "spawn-error";
  }
  return "?";
}

bool IsRetryableOutcome(ChildOutcome outcome) {
  switch (outcome) {
    case ChildOutcome::kMalformedReport:
    case ChildOutcome::kNonzeroExit:
    case ChildOutcome::kCrashSignal:
    case ChildOutcome::kSpawnError:
      return true;
    case ChildOutcome::kCleanReport:
    case ChildOutcome::kResourceKill:
    case ChildOutcome::kTimeout:
    case ChildOutcome::kInterrupted:
      return false;
  }
  return false;
}

ChildOutcome ClassifyChild(const support::SubprocessResult& result,
                           VerificationReport* report) {
  switch (result.status) {
    case support::SubprocessStatus::kInterrupted:
      return ChildOutcome::kInterrupted;
    case support::SubprocessStatus::kKilledByDeadline:
      return ChildOutcome::kTimeout;
    case support::SubprocessStatus::kSpawnError:
      return ChildOutcome::kSpawnError;
    case support::SubprocessStatus::kSignaled:
      // SIGXCPU is the CPU rlimit's soft cap; SIGKILL is its hard cap
      // (or the kernel OOM killer) — a cap firing is deterministic, so
      // these are final, not transient. Every other signal is a worker
      // crash worth retrying.
      return (result.term_signal == kSigXcpu ||
              result.term_signal == kSigKill)
                 ? ChildOutcome::kResourceKill
                 : ChildOutcome::kCrashSignal;
    case support::SubprocessStatus::kExited: {
      if (result.exit_code != 0) return ChildOutcome::kNonzeroExit;
      std::string error;
      VerificationReport parsed;
      if (!UnmarshalWorkerReport(result.output, &parsed, &error)) {
        return ChildOutcome::kMalformedReport;
      }
      if (report != nullptr) *report = std::move(parsed);
      return ChildOutcome::kCleanReport;
    }
  }
  return ChildOutcome::kSpawnError;
}

std::uint64_t RetryBackoffMs(int pair_idx, unsigned attempt) {
  constexpr std::uint64_t kBaseMs = 20;
  constexpr std::uint64_t kCapMs = 250;
  std::uint64_t base = kBaseMs << (attempt < 8 ? attempt : 8);
  if (base > kCapMs) base = kCapMs;
  // ±50% jitter, deterministic per (pair, attempt).
  Rng rng((static_cast<std::uint64_t>(static_cast<std::uint32_t>(pair_idx))
           << 32) ^
          (attempt + 0x9E3779B97F4A7C15ULL));
  const std::uint64_t half = base / 2;
  return half + rng.Below(base + 1);  // [base/2, 3*base/2]
}

SupervisedResult RunSupervisedPair(const corpus::Pair& pair,
                                   const IsolationOptions& isolation,
                                   const std::atomic<int>* interrupt) {
  std::vector<std::string> argv;
  argv.reserve(3 + isolation.worker_args.size());
  argv.push_back(isolation.worker_binary);
  argv.push_back("pair-worker");
  argv.push_back(std::to_string(pair.idx));
  for (const std::string& arg : isolation.worker_args) argv.push_back(arg);

  support::SubprocessLimits limits;
  limits.rlimit_mb = isolation.rlimit_mb;
  limits.cpu_seconds = isolation.cpu_seconds;
  limits.deadline_ms = isolation.deadline_ms;

  SupervisedResult result;
  for (unsigned attempt = 0;; ++attempt) {
    if (interrupt != nullptr &&
        interrupt->load(std::memory_order_relaxed) != 0) {
      result.report = InfraFailureReport(
          "interrupted before the worker could start", true, false);
      result.last_outcome = ChildOutcome::kInterrupted;
      result.interrupted = true;
      return result;
    }

    const support::SubprocessResult child =
        support::RunProcess(argv, limits, interrupt);
    ++result.attempts;
    const ChildOutcome outcome = ClassifyChild(child, &result.report);
    result.last_outcome = outcome;

    switch (outcome) {
      case ChildOutcome::kCleanReport:
        return result;
      case ChildOutcome::kTimeout:
        result.report = InfraFailureReport(
            "worker killed at the " + std::to_string(isolation.deadline_ms) +
                "ms wall-clock cap",
            true, false);
        return result;
      case ChildOutcome::kResourceKill:
        result.report = InfraFailureReport(
            std::string("worker killed by a resource cap (signal ") +
                std::to_string(child.term_signal) + ")",
            true, false);
        return result;
      case ChildOutcome::kInterrupted:
        result.report =
            InfraFailureReport("interrupted mid-pair; worker killed",
                               true, false);
        result.interrupted = true;
        return result;
      default:
        break;  // retryable
    }

    if (attempt >= isolation.max_retries) {
      std::string why(ChildOutcomeName(outcome));
      if (outcome == ChildOutcome::kCrashSignal) {
        why += " " + std::to_string(child.term_signal);
      } else if (outcome == ChildOutcome::kNonzeroExit) {
        why += " " + std::to_string(child.exit_code);
      } else if (outcome == ChildOutcome::kSpawnError) {
        why += ": " + child.error;
      }
      result.report = InfraFailureReport(
          "quarantined after " + std::to_string(result.attempts) +
              " worker attempt(s): " + why,
          false, true);
      result.quarantined = true;
      return result;
    }

    // Capped exponential backoff with deterministic jitter, sliced into
    // 10ms naps so an interrupt drains promptly even mid-backoff.
    std::uint64_t nap_ms = RetryBackoffMs(pair.idx, attempt);
    while (nap_ms > 0) {
      if (interrupt != nullptr &&
          interrupt->load(std::memory_order_relaxed) != 0) {
        break;
      }
      const std::uint64_t slice = nap_ms < 10 ? nap_ms : 10;
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      nap_ms -= slice;
    }
  }
}

}  // namespace octopocs::core
