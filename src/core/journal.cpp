#include "core/journal.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "core/report_io.h"

namespace octopocs::core {

namespace {

constexpr int kJournalVersion = 1;

/// FNV-1a over the canonical option string; 16 hex digits.
std::string Fingerprint64(const std::string& canonical) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

std::string CorpusOptionsFingerprint(const PipelineOptions& o, bool extended,
                                     std::size_t pair_count,
                                     std::uint64_t pair_deadline_ms,
                                     bool isolate, std::uint64_t rlimit_mb) {
  std::ostringstream ss;
  // v2: the fuzz-fallback rung entered the verdict-bearing option set.
  // Unlike the answer-identical backend knobs (dispatch, solver
  // backend, cycle skip), the rung and its seed/budget can change a
  // pair's verdict, so they fingerprint — a journal written under a
  // different fuzz configuration must not be resumed.
  ss << "v2"
     << "|extended=" << extended << "|pairs=" << pair_count
     << "|ctx=" << o.taint.context_aware << "|theta=" << o.symex.theta
     << "|adaptive=" << o.adaptive_theta << ':' << o.adaptive_theta_max
     << "|live=" << o.symex.max_live_states
     << "|mem=" << o.symex.max_memory_bytes
     << "|instr=" << o.symex.max_instructions << ':'
     << o.symex.max_state_instructions
     << "|depth=" << o.symex.max_call_depth
     << "|input=" << o.symex.max_input_size
     << "|epargs=" << o.symex.check_ep_args
     << "|steps=" << o.symex.solver.max_steps
     << "|dyncfg=" << o.cfg.use_dynamic
     << "|fixangr=" << o.cfg.resolve_obfuscated_icalls
     << "|seed=" << o.poc_as_cfg_seed << "|dl=" << o.deadline_ms << ':'
     << o.preprocess_deadline_ms << ':' << o.p1_deadline_ms << ':'
     << o.p23_deadline_ms << ':' << o.p4_deadline_ms
     << "|pairdl=" << pair_deadline_ms
     << "|cfgfb=" << o.cfg_fallback_to_static
     << "|solretry=" << o.solver_budget_retry
     << "|fuzz=" << o.fuzz_fallback << ':' << o.fuzz_seed << ':'
     << o.fuzz_execs << ':' << o.fuzz_deadline_ms << "|iso=" << isolate
     << "|rlimit=" << rlimit_mb;
  return Fingerprint64(ss.str());
}

std::optional<JournalState> LoadJournal(const std::string& path,
                                        std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open journal " + path;
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string data = ss.str();

  JournalState state;
  bool saw_header = false;
  std::size_t line_start = 0;
  std::size_t lineno = 0;
  while (line_start < data.size()) {
    const std::size_t nl = data.find('\n', line_start);
    if (nl == std::string::npos) {
      // No terminating newline: the process died mid-write. Tolerated
      // only as the very last record.
      state.torn_tail = true;
      break;
    }
    const std::string_view line(data.data() + line_start, nl - line_start);
    ++lineno;

    minijson::Value record;
    std::string parse_error;
    if (!minijson::Parse(line, &record, &parse_error) ||
        record.kind != minijson::Value::Kind::kObject) {
      // A complete-but-malformed line is only acceptable at the tail:
      // an fsync'd earlier record can't be garbage unless the file was
      // hand-edited or corrupted — refuse those outright.
      if (nl + 1 >= data.size()) {
        state.torn_tail = true;
        break;
      }
      if (error != nullptr) {
        *error = "malformed journal record at line " +
                 std::to_string(lineno) + ": " + parse_error;
      }
      return std::nullopt;
    }

    const minijson::Value* type = record.Find("type");
    if (type == nullptr || type->kind != minijson::Value::Kind::kString) {
      if (error != nullptr) {
        *error = "journal record without a type at line " +
                 std::to_string(lineno);
      }
      return std::nullopt;
    }

    if (type->text == "header") {
      if (saw_header) {
        if (error != nullptr) *error = "duplicate journal header";
        return std::nullopt;
      }
      const minijson::Value* version = record.Find("version");
      const minijson::Value* hash = record.Find("options_hash");
      const minijson::Value* pairs = record.Find("pair_count");
      if (version == nullptr || version->AsInt() != kJournalVersion ||
          hash == nullptr || hash->kind != minijson::Value::Kind::kString ||
          pairs == nullptr) {
        if (error != nullptr) *error = "malformed journal header";
        return std::nullopt;
      }
      state.options_hash = hash->text;
      state.pair_count = static_cast<std::size_t>(pairs->AsInt());
      saw_header = true;
    } else if (type->text == "started") {
      if (!saw_header) {
        if (error != nullptr) *error = "journal record before the header";
        return std::nullopt;
      }
      const minijson::Value* pair = record.Find("pair");
      if (pair == nullptr) {
        if (error != nullptr) *error = "started record without a pair";
        return std::nullopt;
      }
      const int idx = static_cast<int>(pair->AsInt());
      const minijson::Value* attempt = record.Find("attempt");
      state.started_unfinished[idx] =
          attempt != nullptr ? static_cast<unsigned>(attempt->AsInt()) : 1;
    } else if (type->text == "finished") {
      if (!saw_header) {
        if (error != nullptr) *error = "journal record before the header";
        return std::nullopt;
      }
      const minijson::Value* pair = record.Find("pair");
      const minijson::Value* report = record.Find("report");
      if (pair == nullptr || report == nullptr) {
        if (error != nullptr) *error = "malformed finished record";
        return std::nullopt;
      }
      const int idx = static_cast<int>(pair->AsInt());
      VerificationReport parsed;
      std::string report_error;
      if (!ParseReport(*report, &parsed, &report_error)) {
        if (error != nullptr) {
          *error = "unparseable report for pair " + std::to_string(idx) +
                   ": " + report_error;
        }
        return std::nullopt;
      }
      if (state.finished.count(idx) != 0) {
        if (error != nullptr) {
          *error = "pair " + std::to_string(idx) + " finished twice";
        }
        return std::nullopt;
      }
      state.finished.emplace(idx, std::move(parsed));
      state.started_unfinished.erase(idx);
    } else {
      if (error != nullptr) {
        *error = "unknown journal record type '" + type->text + "'";
      }
      return std::nullopt;
    }

    line_start = nl + 1;
    state.valid_bytes = line_start;
  }

  if (!saw_header) {
    if (error != nullptr) *error = "journal has no header record";
    return std::nullopt;
  }
  return state;
}

#ifndef _WIN32

namespace {

// Durability for a heal: the truncation itself must reach the platter,
// and so must the directory entry in case the journal was freshly
// renamed/created. Best effort — a failed fsync here cannot make the
// heal less correct, only less durable, so it never fails the resume.
void FsyncFileAndParentDir(int fd, const std::string& path) {
  ::fsync(fd);
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

}  // namespace

std::unique_ptr<Journal> Journal::Create(const std::string& path,
                                         const std::string& options_hash,
                                         std::size_t pair_count,
                                         std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot create journal " + path + ": " + std::strerror(errno);
    }
    return nullptr;
  }
  std::unique_ptr<Journal> journal(new Journal(fd));
  journal->WriteRecord(
      "{\"type\":\"header\",\"version\":1,\"options_hash\":\"" +
      minijson::Escape(options_hash) +
      "\",\"pair_count\":" + std::to_string(pair_count) + "}");
  return journal;
}

std::unique_ptr<Journal> Journal::Resume(const std::string& path,
                                         const JournalState& state,
                                         std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot reopen journal " + path + ": " + std::strerror(errno);
    }
    return nullptr;
  }
  // Heal a torn tail: drop the partial record so the resumed journal
  // stays one well-formed record per line. The heal itself must be
  // durable — without the fsyncs a power cut after resume could bring
  // the torn bytes back underneath records appended since.
  if (::ftruncate(fd, static_cast<off_t>(state.valid_bytes)) != 0) {
    if (error != nullptr) {
      *error = "cannot truncate torn journal tail: " +
               std::string(std::strerror(errno));
    }
    ::close(fd);
    return nullptr;
  }
  FsyncFileAndParentDir(fd, path);
  if (::lseek(fd, 0, SEEK_END) < 0) {
    if (error != nullptr) *error = "cannot seek journal";
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<Journal>(new Journal(fd));
}

Journal::~Journal() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

void Journal::WriteRecord(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string buf = line;
  buf += '\n';
  // One write(2) per record keeps records contiguous even with
  // concurrent finishers; fsync makes the record durable before the
  // run proceeds past it (the write-ahead property resume relies on).
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
    if (n <= 0) {
      if (errno == EINTR) continue;
      return;  // journal I/O failure must never take down the corpus run
    }
    off += static_cast<std::size_t>(n);
  }
  ::fsync(fd_);
}

#else  // _WIN32

std::unique_ptr<Journal> Journal::Create(const std::string&,
                                         const std::string&, std::size_t,
                                         std::string* error) {
  if (error != nullptr) *error = "journaling requires a POSIX host";
  return nullptr;
}

std::unique_ptr<Journal> Journal::Resume(const std::string&,
                                         const JournalState&,
                                         std::string* error) {
  if (error != nullptr) *error = "journaling requires a POSIX host";
  return nullptr;
}

Journal::~Journal() = default;
void Journal::WriteRecord(const std::string&) {}

#endif

void Journal::Started(int pair_idx, unsigned attempt) {
  WriteRecord("{\"type\":\"started\",\"pair\":" + std::to_string(pair_idx) +
              ",\"attempt\":" + std::to_string(attempt) + "}");
}

void Journal::Finished(int pair_idx, const VerificationReport& report) {
  WriteRecord("{\"type\":\"finished\",\"pair\":" + std::to_string(pair_idx) +
              ",\"report\":" + SerializeReport(report) + "}");
}

}  // namespace octopocs::core
