#include "core/server.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "core/journal.h"
#include "core/report_io.h"
#include "core/supervisor.h"
#include "corpus/extended.h"
#include "support/fault.h"
#include "support/hex.h"
#include "support/trace.h"

namespace octopocs::core {

namespace {

std::uint64_t NowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

GenPairLoader g_gen_loader = nullptr;

corpus::Pair BuildAnyPair(int idx, std::uint64_t gen_seed) {
  if (gen_seed != 0) {
    if (g_gen_loader == nullptr) {
      throw std::out_of_range("generated pair requested but no loader set");
    }
    return g_gen_loader(gen_seed, idx);
  }
  return idx <= 15 ? corpus::BuildPair(idx) : corpus::BuildExtendedPair(idx);
}

}  // namespace

void SetGenPairLoader(GenPairLoader loader) { g_gen_loader = loader; }
GenPairLoader GetGenPairLoader() { return g_gen_loader; }

// Smaller of two budgets where 0 means "unbounded" — the Deadline::
// Sooner rule applied to millisecond knobs.
std::uint64_t ComposeDeadlineMs(std::uint64_t server_cap_ms,
                                std::uint64_t client_ms) {
  if (server_cap_ms == 0) return client_ms;
  if (client_ms == 0) return server_cap_ms;
  return std::min(server_cap_ms, client_ms);
}

// -- Request / response payloads ----------------------------------------------

bool ParseServeRequest(std::string_view json, ServeRequest* out,
                       std::string* error) {
  minijson::Value value;
  if (!minijson::Parse(json, &value, error)) return false;
  if (value.kind != minijson::Value::Kind::kObject) {
    if (error != nullptr) *error = "request is not a JSON object";
    return false;
  }
  *out = ServeRequest{};
  if (const auto* v = value.Find("pair")) out->pair = static_cast<int>(v->AsInt());
  if (const auto* v = value.Find("id")) out->id = v->text;
  if (const auto* v = value.Find("priority")) {
    out->priority = static_cast<int>(v->AsInt());
  }
  if (const auto* v = value.Find("deadline_ms")) {
    out->deadline_ms = static_cast<std::uint64_t>(v->AsInt());
  }
  if (const auto* v = value.Find("cfg_fallback")) out->cfg_fallback = v->boolean;
  if (const auto* v = value.Find("solver_retry")) out->solver_retry = v->boolean;
  if (const auto* v = value.Find("fuzz_fallback")) {
    out->fuzz_fallback = v->boolean;
  }
  if (const auto* v = value.Find("fuzz_seed")) {
    out->fuzz_seed = static_cast<std::uint64_t>(v->AsInt());
  }
  if (const auto* v = value.Find("fuzz_execs")) {
    out->fuzz_execs = static_cast<std::uint64_t>(v->AsInt());
  }
  if (const auto* v = value.Find("degrade_on_timeout")) {
    out->degrade_on_timeout = v->boolean;
  }
  if (const auto* v = value.Find("poc")) {
    if (v->text.size() > 2 * kMaxReformedPocBytes) {
      if (error != nullptr) *error = "poc override exceeds size cap";
      return false;
    }
    try {
      out->poc_override = FromHex(v->text);
    } catch (const std::exception&) {
      if (error != nullptr) *error = "malformed poc hex";
      return false;
    }
  }
  if (const auto* v = value.Find("gen_seed")) {
    out->gen_seed = static_cast<std::uint64_t>(v->AsInt());
  }
  if (out->pair < 1) {
    if (error != nullptr) *error = "missing or invalid pair index";
    return false;
  }
  return true;
}

std::string SerializeServeRequest(const ServeRequest& r) {
  std::string out = "{\"pair\":" + std::to_string(r.pair);
  if (!r.id.empty()) out += ",\"id\":\"" + minijson::Escape(r.id) + '"';
  if (r.priority != 0) out += ",\"priority\":" + std::to_string(r.priority);
  if (r.deadline_ms != 0) {
    out += ",\"deadline_ms\":" + std::to_string(r.deadline_ms);
  }
  if (r.cfg_fallback) out += ",\"cfg_fallback\":true";
  if (r.solver_retry) out += ",\"solver_retry\":true";
  if (r.fuzz_fallback) out += ",\"fuzz_fallback\":true";
  if (r.fuzz_seed != 0) out += ",\"fuzz_seed\":" + std::to_string(r.fuzz_seed);
  if (r.fuzz_execs != 0) {
    out += ",\"fuzz_execs\":" + std::to_string(r.fuzz_execs);
  }
  if (r.degrade_on_timeout) out += ",\"degrade_on_timeout\":true";
  if (!r.poc_override.empty()) {
    out += ",\"poc\":\"" + ToHex(r.poc_override) + '"';
  }
  if (r.gen_seed != 0) out += ",\"gen_seed\":" + std::to_string(r.gen_seed);
  out += '}';
  return out;
}

std::string SerializeServeError(const ServeError& e) {
  std::string out = "{\"code\":\"" + minijson::Escape(e.code) + '"';
  out += ",\"retry_after_ms\":" + std::to_string(e.retry_after_ms);
  out += ",\"detail\":\"" + minijson::Escape(e.detail) + "\"}";
  return out;
}

bool ParseServeError(std::string_view json, ServeError* out,
                     std::string* error) {
  minijson::Value value;
  if (!minijson::Parse(json, &value, error)) return false;
  if (value.kind != minijson::Value::Kind::kObject) {
    if (error != nullptr) *error = "error payload is not a JSON object";
    return false;
  }
  *out = ServeError{};
  if (const auto* v = value.Find("code")) out->code = v->text;
  if (const auto* v = value.Find("retry_after_ms")) {
    out->retry_after_ms = static_cast<std::uint64_t>(v->AsInt());
  }
  if (const auto* v = value.Find("detail")) out->detail = v->text;
  return true;
}

// -- Server -------------------------------------------------------------------

Server::Server(ServeOptions options) : options_(std::move(options)) {}

Server::~Server() {
  if (started_.load(std::memory_order_relaxed)) Drain();
}

bool Server::Start(std::string* error) {
  if (!options_.cache_dir.empty()) {
    disk_ = DiskArtifactStore::Open(options_.cache_dir, error);
    if (disk_ == nullptr) return false;
  }
  // The memory tier is what keeps origin-side artifacts warm across
  // requests; honor a caller-provided store, otherwise own one.
  if (options_.pipeline.artifacts == nullptr) {
    memory_tier_ = std::make_unique<ArtifactStore>();
    options_.pipeline.artifacts = memory_tier_.get();
  }
  if (!listener_.Listen(options_.socket_path, error)) return false;
  if (options_.workers == 0) options_.workers = 1;
  started_.store(true, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  worker_threads_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i) {
    worker_threads_.emplace_back([this] { WorkerLoop(); });
  }
  return true;
}

void Server::Wait() {
  for (;;) {
    if (drained_.load(std::memory_order_acquire)) return;
    if (options_.interrupt != nullptr &&
        options_.interrupt->load(std::memory_order_relaxed) != 0) {
      Drain();
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
}

void Server::Drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      // Another drainer owns the teardown; its joins make `drained_`
      // true, which is what callers observe through Wait().
      return;
    }
    draining_ = true;
  }
  cv_.notify_all();
  listener_.Close();  // Accept() returns -2, the accept loop exits
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  if (disk_ != nullptr) disk_->Flush();
  drained_.store(true, std::memory_order_release);
}

ServeStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t Server::queue_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = listener_.Accept(100, options_.interrupt);
    if (fd == -2) return;  // interrupt tripped or listener closed
    if (fd == -1) continue;
    HandleConnection(fd);
  }
}

std::uint64_t Server::EstimateRetryAfterMs() {
  // mu_ held by the caller. Pessimistic first estimate (no sample yet):
  // assume a one-second service time so early clients back off gently.
  const std::uint64_t per_request =
      service_ms_ewma_ != 0 ? service_ms_ewma_ : 1000;
  const std::uint64_t backlog = (queue_.size() + 1) * per_request;
  return std::max<std::uint64_t>(50, backlog / options_.workers);
}

void Server::HandleConnection(int fd) {
  support::FdReader reader(fd);
  std::string line;
  // A request line is tiny; 5s covers any honest client while bounding
  // how long a stalled peer can hold the accept thread.
  const auto status = reader.ReadLine(5000, options_.interrupt, &line);
  if (status != support::FdReader::Status::kOk) {
    support::CloseFd(fd);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return;
  }
  if (line.rfind(kServeRequestPrefix, 0) != 0) {
    RespondError(fd, {"BAD_REQUEST", 0, "missing OCTO-REQ prefix"});
    support::CloseFd(fd);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return;
  }
  ServeRequest request;
  std::string parse_error;
  if (!ParseServeRequest(line.substr(kServeRequestPrefix.size()), &request,
                         &parse_error)) {
    RespondError(fd, {"BAD_REQUEST", 0, parse_error});
    support::CloseFd(fd);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return;
  }

  // Admission. Decisions happen under the lock; the resulting socket
  // writes happen after it, so a slow client never blocks admission.
  std::optional<Queued> victim;
  std::uint64_t retry_after = 0;
  bool admitted = false;
  bool admission_fault =
      support::fault::Poll(support::FaultSite::kAdmission);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.accepted;
    if (admission_fault || draining_) {
      retry_after = EstimateRetryAfterMs();
      ++stats_.shed;
    } else if (queue_.size() >= options_.queue_depth) {
      // Full. Shed by priority: displace the lowest-priority queued
      // request (oldest among equals) when the newcomer outranks it,
      // else shed the newcomer.
      auto lowest = std::min_element(
          queue_.begin(), queue_.end(), [](const Queued& a, const Queued& b) {
            return a.request.priority != b.request.priority
                       ? a.request.priority < b.request.priority
                       : a.seq < b.seq;
          });
      retry_after = EstimateRetryAfterMs();
      if (lowest != queue_.end() &&
          lowest->request.priority < request.priority) {
        victim = std::move(*lowest);
        queue_.erase(lowest);
        queue_.push_back(Queued{std::move(request), fd, NowMs(), next_seq_++});
        admitted = true;
      }
      ++stats_.shed;
    } else {
      queue_.push_back(Queued{std::move(request), fd, NowMs(), next_seq_++});
      admitted = true;
    }
    if (options_.tracer != nullptr) {
      options_.tracer->Counter("queue_depth",
                               static_cast<std::int64_t>(queue_.size()));
      if (admitted) options_.tracer->Counter("serve_admitted", 1);
      if (!admitted || victim.has_value()) {
        options_.tracer->Counter("serve_shed", 1);
      }
    }
  }
  if (victim.has_value()) {
    RespondError(victim->fd,
                 {"RETRY_AFTER", retry_after, "displaced by higher priority"});
    support::CloseFd(victim->fd);
  }
  if (!admitted) {
    RespondError(fd, {"RETRY_AFTER", retry_after,
                      admission_fault ? "admission failed (transient)"
                                      : "queue full"});
    support::CloseFd(fd);
    return;
  }
  cv_.notify_one();
}

void Server::WorkerLoop() {
  for (;;) {
    Queued item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining and nothing left to serve
      // Highest priority first, FIFO among equals.
      auto best = std::max_element(
          queue_.begin(), queue_.end(), [](const Queued& a, const Queued& b) {
            return a.request.priority != b.request.priority
                       ? a.request.priority < b.request.priority
                       : a.seq > b.seq;
          });
      item = std::move(*best);
      queue_.erase(best);
    }
    ServeOne(std::move(item));
  }
}

ArtifactKey Server::ReportKey(const corpus::Pair& pair,
                              const ServeRequest& request) const {
  // Content only: programs, PoC, shared-function wiring, and the
  // semantics-affecting option knobs — never deadlines. Deadlines stay
  // out because only clean completions are stored (below), and a clean
  // completion under any budget is byte-identical to the unbudgeted
  // run, which is exactly the cold-vs-warm identity CI enforces.
  PipelineOptions semantic = options_.pipeline;
  semantic.cfg_fallback_to_static |= request.cfg_fallback;
  semantic.solver_budget_retry |= request.solver_retry;
  // The fuzz rung and its seed/budget are verdict-bearing, so they key
  // the cache; its wall-clock budget is a deadline like any other.
  semantic.fuzz_fallback |= request.fuzz_fallback;
  if (request.fuzz_seed != 0) semantic.fuzz_seed = request.fuzz_seed;
  if (request.fuzz_execs != 0) semantic.fuzz_execs = request.fuzz_execs;
  semantic.deadline_ms = 0;
  semantic.preprocess_deadline_ms = 0;
  semantic.p1_deadline_ms = 0;
  semantic.p23_deadline_ms = 0;
  semantic.p4_deadline_ms = 0;
  semantic.fuzz_deadline_ms = 0;
  ArtifactHasher hasher;
  hasher.Program(pair.s).Program(pair.t);
  for (const auto& name : pair.shared_functions) hasher.Str(name);
  for (const auto& [s_name, t_name] : pair.t_names) {
    hasher.Str(s_name).Str(t_name);
  }
  hasher.Bytes(pair.poc.data(), pair.poc.size());
  hasher.Str(CorpusOptionsFingerprint(semantic, /*extended=*/false,
                                      /*pair_count=*/0,
                                      /*pair_deadline_ms=*/0,
                                      /*isolate=*/false, /*rlimit_mb=*/0));
  return hasher.Finish("served-report");
}

VerificationReport Server::RunRequest(const corpus::Pair& pair,
                                      const ServeRequest& request) {
  PipelineOptions opts = options_.pipeline;
  opts.tracer = options_.tracer;
  opts.cfg_fallback_to_static |= request.cfg_fallback;
  opts.solver_budget_retry |= request.solver_retry;
  opts.fuzz_fallback |= request.fuzz_fallback;
  if (request.fuzz_seed != 0) opts.fuzz_seed = request.fuzz_seed;
  if (request.fuzz_execs != 0) opts.fuzz_execs = request.fuzz_execs;
  opts.deadline_ms = ComposeDeadlineMs(options_.request_deadline_ms,
                                       request.deadline_ms);

  if (options_.tracer != nullptr) options_.tracer->Begin("verify", pair.idx);
  VerificationReport report = VerifyPair(pair, opts);
  if (options_.tracer != nullptr) options_.tracer->End("verify", pair.idx);

  if (report.deadline_expired && request.degrade_on_timeout &&
      !(opts.cfg_fallback_to_static && opts.solver_budget_retry)) {
    // Second attempt with every degradation rung enabled — the
    // "degraded answer beats no answer" contract, opted into per
    // request.
    opts.cfg_fallback_to_static = true;
    opts.solver_budget_retry = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.degraded_retries;
    }
    if (options_.tracer != nullptr) {
      options_.tracer->Counter("serve_degraded_retry", 1);
      options_.tracer->Begin("verify", pair.idx);
    }
    report = VerifyPair(pair, opts);
    if (options_.tracer != nullptr) options_.tracer->End("verify", pair.idx);
  } else if (report.exception_contained) {
    // Contained tooling faults are transient by classification — retry
    // once after the supervisor's capped-exponential backoff.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(RetryBackoffMs(pair.idx, 0)));
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.contained_retries;
    }
    if (options_.tracer != nullptr) {
      options_.tracer->Counter("serve_contained_retry", 1);
      options_.tracer->Begin("verify", pair.idx);
    }
    report = VerifyPair(pair, opts);
    if (options_.tracer != nullptr) options_.tracer->End("verify", pair.idx);
  }
  return report;
}

void Server::ServeOne(Queued item) {
  const std::uint64_t started = NowMs();
  support::Tracer* tracer = options_.tracer;
  if (tracer != nullptr) {
    tracer->Begin("request", static_cast<std::int64_t>(item.seq));
    tracer->Counter("queue_wait_ms",
                    static_cast<std::int64_t>(started - item.enqueued_at_ms));
  }

  bool responded = false;
  bool from_disk = false;
  try {
    const corpus::Pair base =
        BuildAnyPair(item.request.pair, item.request.gen_seed);
    corpus::Pair pair = base;
    if (!item.request.poc_override.empty()) {
      pair.poc = item.request.poc_override;
    }
    const ArtifactKey key = ReportKey(pair, item.request);

    VerificationReport report;
    bool have_report = false;
    if (disk_ != nullptr) {
      if (auto cached = disk_->Get(key)) {
        std::string parse_error;
        const std::string_view json(
            reinterpret_cast<const char*>(cached->data()), cached->size());
        if (ParseReport(json, &report, &parse_error)) {
          have_report = true;
          from_disk = true;
          if (tracer != nullptr) tracer->Counter("artifact_disk_hit", 1);
        }
      }
    }
    if (!have_report) {
      report = RunRequest(pair, item.request);
      // Persist only clean completions: a tripped deadline or a
      // contained fault is a statement about this run's budget/luck,
      // not about the pair, and must never be replayed as the answer.
      if (disk_ != nullptr && !report.deadline_expired &&
          !report.exception_contained) {
        const std::string json = SerializeReport(report);
        const auto* bytes = reinterpret_cast<const std::uint8_t*>(json.data());
        if (disk_->Put(key, ByteView(bytes, json.size()))) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.disk_stores;
        }
      }
    }
    responded = RespondReport(item.fd, report);
  } catch (const std::out_of_range&) {
    RespondError(item.fd, {"BAD_REQUEST", 0,
                           "unknown pair index " +
                               std::to_string(item.request.pair)});
    support::CloseFd(item.fd);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    if (tracer != nullptr) {
      tracer->Counter("request_failed", 1);
      tracer->End("request", static_cast<std::int64_t>(item.seq));
    }
    return;
  } catch (const std::exception&) {
    RespondError(item.fd, {"INTERNAL", 0, "verification failed internally"});
    support::CloseFd(item.fd);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    if (tracer != nullptr) {
      tracer->Counter("request_failed", 1);
      tracer->End("request", static_cast<std::int64_t>(item.seq));
    }
    return;
  }
  support::CloseFd(item.fd);

  const std::uint64_t service_ms = NowMs() - started;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (responded) {
      ++stats_.served;
    } else {
      ++stats_.response_drops;
    }
    if (from_disk) ++stats_.disk_hits;
    // EWMA (3:1 old:new) of service time feeds RETRY_AFTER estimates.
    service_ms_ewma_ = service_ms_ewma_ == 0
                           ? service_ms
                           : (3 * service_ms_ewma_ + service_ms) / 4;
  }
  if (tracer != nullptr) {
    if (!responded) tracer->Counter("request_failed", 1);
    tracer->End("request", static_cast<std::int64_t>(item.seq));
  }
}

void Server::RespondError(int fd, const ServeError& error) {
  if (support::fault::Poll(support::FaultSite::kResponseWrite)) return;
  std::string payload(kServeErrPrefix);
  payload += SerializeServeError(error);
  payload += '\n';
  payload += kWorkerDoneSentinel;
  payload += '\n';
  support::WriteAll(fd, payload);
}

bool Server::RespondReport(int fd, const VerificationReport& report) {
  if (support::fault::Poll(support::FaultSite::kResponseWrite)) return false;
  return support::WriteAll(fd, MarshalWorkerReport(report));
}

// -- Client helper ------------------------------------------------------------

ClientResult SendRequest(const std::string& socket_path,
                         const ServeRequest& request,
                         std::uint64_t timeout_ms) {
  if (timeout_ms == 0) timeout_ms = 600'000;
  ClientResult result;
  int fd = support::ConnectUnix(socket_path, &result.transport_error);
  if (fd < 0) return result;
  std::string line(kServeRequestPrefix);
  line += SerializeServeRequest(request);
  line += '\n';
  if (!support::WriteAll(fd, line)) {
    result.transport_error = "request write failed";
    support::CloseFd(fd);
    return result;
  }
  support::FdReader reader(fd);
  std::string frame;
  const auto status =
      reader.ReadFrame(kWorkerDoneSentinel, timeout_ms, nullptr, &frame);
  support::CloseFd(fd);
  if (status != support::FdReader::Status::kOk) {
    switch (status) {
      case support::FdReader::Status::kEof:
        result.transport_error = "server closed before responding";
        break;
      case support::FdReader::Status::kTimeout:
        result.transport_error = "response timed out";
        break;
      default:
        result.transport_error = "response read failed";
    }
    return result;
  }
  if (frame.rfind(kServeErrPrefix, 0) == 0) {
    const std::size_t eol = frame.find('\n');
    const std::string_view json =
        std::string_view(frame).substr(kServeErrPrefix.size(),
                                       eol - kServeErrPrefix.size());
    std::string parse_error;
    if (!ParseServeError(json, &result.error, &parse_error)) {
      result.transport_error = "malformed OCTO-ERR payload: " + parse_error;
    }
    return result;
  }
  std::string parse_error;
  if (!UnmarshalWorkerReport(frame, &result.report, &parse_error)) {
    result.transport_error = "malformed response frame: " + parse_error;
    return result;
  }
  result.ok = true;
  return result;
}

ClientResult SendRequestWithRetry(const std::string& socket_path,
                                  const ServeRequest& request,
                                  std::uint64_t timeout_ms,
                                  const RetryPolicy& policy, int* attempts) {
  ClientResult result;
  int made = 0;
  for (int attempt = 0;; ++attempt) {
    result = SendRequest(socket_path, request, timeout_ms);
    ++made;
    if (result.ok || attempt >= policy.max_retries) break;
    std::uint64_t nap =
        std::min(policy.max_backoff_ms,
                 policy.base_backoff_ms << std::min(attempt, 20));
    if (!result.transport_error.empty()) {
      // Transport failure: socket missing, connection refused, peer died
      // mid-frame. Only retryable when the caller expects the daemon to
      // come back (the soak harness riding through a SIGKILL restart).
      if (!policy.retry_transport) break;
    } else if (result.error.code == "RETRY_AFTER") {
      // Honor the server's own estimate, but never back off less than
      // the capped-exponential floor — a saturated daemon keeps
      // suggesting small naps and the floor is what spreads retries out.
      nap = std::min(policy.max_backoff_ms,
                     std::max(nap, result.error.retry_after_ms));
    } else {
      break;  // BAD_REQUEST / INTERNAL: retrying cannot help
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(nap));
  }
  if (attempts != nullptr) *attempts = made;
  return result;
}

}  // namespace octopocs::core
