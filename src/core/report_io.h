// VerificationReport marshaling for process isolation and journaling.
//
// An isolated worker (CLI `pair-worker` mode) runs one pair and must
// hand its VerificationReport back to the supervisor over a pipe; the
// crash journal must persist finished reports so `corpus --resume` can
// reprint them without re-running the pair. Both speak the same format:
// one JSON object per report, covering every verdict-bearing field
// (verdict, type, detail, ep, P1/P2/P3/P4 outcomes, the degradation
// record, timings). Executor cache counters (SymexStats) are
// deliberately not marshaled — they are per-process observability, and
// the corpus-level outputs the isolation layer must reproduce
// byte-identically never include them.
//
// The JSON emitted here is strict (validate_trace.py re-parses it with
// Python's json module); the parser accepts exactly the subset the
// writers produce: objects, arrays, strings with \-escapes, integers,
// doubles, and booleans.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/octopocs.h"

namespace octopocs::core {

// -- Minimal JSON subset ------------------------------------------------------

namespace minijson {

struct Value {
  enum class Kind : std::uint8_t {
    kNull, kBool, kInt, kDouble, kString, kArray, kObject
  };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::int64_t integer = 0;
  double number = 0;
  std::string text;
  std::vector<Value> items;                            // kArray
  std::vector<std::pair<std::string, Value>> fields;   // kObject

  const Value* Find(std::string_view key) const;
  /// Integer value of either numeric kind (doubles truncate).
  std::int64_t AsInt() const;
  double AsDouble() const;
};

/// Hostile-input bounds (the parser is network-facing via `octopocs
/// serve`): a document larger than kMaxDocumentBytes, or nested deeper
/// than kMaxNestingDepth, is rejected with a clean parse error before
/// any proportional allocation or unbounded recursion can happen.
inline constexpr std::size_t kMaxDocumentBytes = 8u << 20;
inline constexpr std::size_t kMaxNestingDepth = 64;

/// Parses one complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
bool Parse(std::string_view text, Value* out, std::string* error);

/// JSON string escaping (quotes not included).
std::string Escape(std::string_view raw);

}  // namespace minijson

// -- Report (de)serialization -------------------------------------------------

/// Largest reformed PoC ParseReport accepts (hex length is twice this).
/// Real reformed PoCs are tens of bytes; the cap exists so a hostile
/// frame cannot turn one field into a giant allocation.
inline constexpr std::size_t kMaxReformedPocBytes = 1u << 20;

/// One-line JSON object holding every verdict-bearing report field.
std::string SerializeReport(const VerificationReport& report);

/// Inverse of SerializeReport. Unknown keys are ignored (forward
/// compatibility); missing keys keep their default-constructed value.
bool ParseReport(const minijson::Value& json, VerificationReport* out,
                 std::string* error);
bool ParseReport(std::string_view json, VerificationReport* out,
                 std::string* error);

// -- Worker wire framing ------------------------------------------------------

/// A worker's stdout ends with:
///   OCTO-REPORT {...}\n
///   OCTO-DONE\n
/// The trailing sentinel distinguishes a complete report from a pipe
/// torn mid-write by a dying worker.
inline constexpr std::string_view kWorkerReportPrefix = "OCTO-REPORT ";
inline constexpr std::string_view kWorkerDoneSentinel = "OCTO-DONE";

/// Pool-worker request framing (supervisor -> worker, one line per
/// request): `OCTO-PAIR <idx>` verifies one pair, `OCTO-EXIT` (or
/// stdin EOF) shuts the worker down cleanly.
inline constexpr std::string_view kPoolPairPrefix = "OCTO-PAIR ";
inline constexpr std::string_view kPoolExitLine = "OCTO-EXIT";

/// `octopocs serve` request/response framing (one request per
/// connection). The client sends `OCTO-REQ {json}\n`; the server
/// answers either with the worker framing above (OCTO-REPORT +
/// OCTO-DONE, so clients reuse UnmarshalWorkerReport verbatim) or with
/// `OCTO-ERR {json}\nOCTO-DONE\n` carrying a structured rejection
/// (code RETRY_AFTER / BAD_REQUEST / INTERNAL, plus retry_after_ms).
inline constexpr std::string_view kServeRequestPrefix = "OCTO-REQ ";
inline constexpr std::string_view kServeErrPrefix = "OCTO-ERR ";

std::string MarshalWorkerReport(const VerificationReport& report);

/// Extracts and parses the report from a worker's captured stdout.
/// Fails when the prefix or the DONE sentinel is missing (worker died
/// before finishing its write) or the JSON is malformed.
bool UnmarshalWorkerReport(std::string_view worker_stdout,
                           VerificationReport* out, std::string* error);

}  // namespace octopocs::core
