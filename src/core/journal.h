// Write-ahead crash journal for resumable corpus runs.
//
// A corpus run at deployment scale must survive the death of the host
// process itself (OOM killer, SIGKILL, power loss): the journal is a
// JSONL file recording, per pair, a `started` record before the pair
// runs and a `finished` record — carrying the full serialized
// VerificationReport — after it completes. Every record is written with
// one write(2) call and fsync'd before the pair proceeds, so after a
// crash the journal tail is at worst one torn record, never a
// reordered or interleaved one.
//
// Resume contract (`corpus --resume JOURNAL`):
//   - the header's options fingerprint must match the resuming
//     invocation's, otherwise resuming is refused — a journal written
//     under different pipeline options would splice incomparable
//     verdicts into one result set;
//   - pairs with a `finished` record are not re-run; their reports are
//     replayed from the journal byte-identically;
//   - pairs with only a `started` record were in flight when the host
//     died and are re-run from scratch;
//   - a torn trailing record (torn write) is detected, ignored, and
//     truncated away before appending, so the healed journal stays
//     well-formed JSONL.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/octopocs.h"

namespace octopocs::core {

/// Canonical fingerprint of everything that affects corpus verdicts:
/// the verdict-bearing PipelineOptions knobs, the pair set (extended or
/// paper corpus, pair count), the per-pair deadline, and the isolation
/// memory cap. Deliberately excludes jobs / frontier_jobs / tracing /
/// the artifact cache — all proven byte-identical elsewhere.
std::string CorpusOptionsFingerprint(const PipelineOptions& options,
                                     bool extended, std::size_t pair_count,
                                     std::uint64_t pair_deadline_ms,
                                     bool isolate, std::uint64_t rlimit_mb);

/// Parsed journal contents, as far as the first torn record.
struct JournalState {
  std::string options_hash;
  std::size_t pair_count = 0;
  /// pair.idx -> replayed report for every `finished` pair.
  std::map<int, VerificationReport> finished;
  /// Pairs with a `started` but no `finished` record (in flight at the
  /// crash); informational — resume re-runs them like never-started
  /// pairs.
  std::map<int, unsigned> started_unfinished;
  /// Byte offset of the end of the last complete record; appending must
  /// truncate the file here first when `torn_tail` is set.
  std::uint64_t valid_bytes = 0;
  bool torn_tail = false;
};

/// Reads and validates `path`. A torn *trailing* record is tolerated
/// (see JournalState::torn_tail); a malformed record anywhere else, a
/// missing or malformed header, or an unreadable file is an error.
std::optional<JournalState> LoadJournal(const std::string& path,
                                        std::string* error);

/// Append-only, fsync-per-record journal writer. Thread-safe: corpus
/// workers finish pairs concurrently.
class Journal {
 public:
  /// Creates/truncates `path` and writes the header record.
  static std::unique_ptr<Journal> Create(const std::string& path,
                                         const std::string& options_hash,
                                         std::size_t pair_count,
                                         std::string* error);

  /// Opens `path` for appending after a LoadJournal pass, truncating a
  /// torn tail back to `state.valid_bytes` so the journal stays
  /// well-formed.
  static std::unique_ptr<Journal> Resume(const std::string& path,
                                         const JournalState& state,
                                         std::string* error);

  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Write-ahead record: `pair_idx` is about to run (attempt is 1-based
  /// across resumes).
  void Started(int pair_idx, unsigned attempt);

  /// Completion record carrying the serialized report.
  void Finished(int pair_idx, const VerificationReport& report);

 private:
  explicit Journal(int fd) : fd_(fd) {}
  void WriteRecord(const std::string& line);

  int fd_ = -1;
  std::mutex mu_;
};

}  // namespace octopocs::core
