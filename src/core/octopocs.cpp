#include "core/octopocs.h"

#include <algorithm>
#include <chrono>
#include <set>

namespace octopocs::core {

namespace {

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Observes the first entry into any ℓ function — the fallback ep
/// discovery when the crash backtrace has no ℓ frame (e.g. a CWE-835
/// hang caught while execution happens to sit outside ℓ).
class FirstSharedEntry : public vm::ExecutionObserver {
 public:
  explicit FirstSharedEntry(std::set<vm::FuncId> shared)
      : shared_(std::move(shared)) {}

  void OnCallEnter(vm::FuncId callee, std::span<const std::uint64_t>,
                   const vm::Instr*) override {
    if (!first_ && shared_.count(callee) != 0) first_ = callee;
  }

  std::optional<vm::FuncId> first() const { return first_; }

 private:
  std::set<vm::FuncId> shared_;
  std::optional<vm::FuncId> first_;
};

}  // namespace

std::string_view VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kTriggered: return "Triggered";
    case Verdict::kNotTriggerable: return "NotTriggerable";
    case Verdict::kFailure: return "Failure";
  }
  return "?";
}

std::string_view ResultTypeName(ResultType type) {
  switch (type) {
    case ResultType::kTypeI: return "Type-I";
    case ResultType::kTypeII: return "Type-II";
    case ResultType::kTypeIII: return "Type-III";
    case ResultType::kFailure: return "Failure";
  }
  return "?";
}

Octopocs::Octopocs(const vm::Program& s, const vm::Program& t,
                   std::vector<std::string> shared_functions, Bytes poc,
                   PipelineOptions options,
                   std::map<std::string, std::string> t_names)
    : s_(s),
      t_(t),
      shared_(std::move(shared_functions)),
      poc_(std::move(poc)),
      options_(std::move(options)),
      t_names_(std::move(t_names)) {}

std::optional<vm::FuncId> Octopocs::DiscoverEp(support::CancelToken cancel) {
  std::set<vm::FuncId> shared_ids;
  for (const std::string& name : shared_) {
    const vm::FuncId id = s_.FindFunction(name);
    if (id != vm::kInvalidFunc) shared_ids.insert(id);
  }
  if (shared_ids.empty()) return std::nullopt;

  FirstSharedEntry fallback(shared_ids);
  vm::ExecOptions exec = options_.verify_exec;
  exec.cancel = cancel;
  vm::Interpreter interp(s_, poc_, exec);
  interp.AddObserver(&fallback);
  const vm::ExecResult run = interp.Run();
  if (!vm::IsCrash(run.trap)) return std::nullopt;

  // ep: the bottom-most (outermost) ℓ function on the crash callstack —
  // "the first function to be called in ℓ".
  for (const vm::BacktraceEntry& frame : run.backtrace) {
    if (shared_ids.count(frame.fn) != 0) return frame.fn;
  }
  return fallback.first();
}

taint::ExtractionResult Octopocs::ExtractPrimitives(vm::FuncId ep_in_s,
                                                    support::CancelToken cancel) {
  taint::ExtractionOptions opts = options_.taint;
  // The taint run must be allowed at least as much fuel as the verify
  // run, or a CWE-835 hang would never reach its "crash".
  if (opts.exec.fuel < options_.verify_exec.fuel) {
    opts.exec.fuel = options_.verify_exec.fuel;
  }
  opts.exec.cancel = cancel;
  return taint::ExtractCrashPrimitives(s_, poc_, ep_in_s, opts);
}

ResultType Octopocs::ClassifyTriggered(
    const symex::SymexResult& result,
    const std::vector<taint::Bunch>& bunches) const {
  // Type-I: every crash-primitive byte stayed at its original offset
  // (the relocation was the identity) and the guiding region of poc'
  // byte-matches the original PoC. Anything else means the PoC was
  // genuinely reformed — Type-II. Note poc' may legitimately be shorter
  // than poc (the paper observed reformed PoCs dropping unnecessary
  // trailing bytes); only bytes poc' actually contains are compared.
  std::set<std::uint32_t> sources;
  for (const taint::Bunch& bunch : bunches) {
    for (const auto& [off, val] : bunch.bytes) {
      // Pre-ep bytes travel through ep's parameters, not placement;
      // only relocatable bytes participate in the identity check.
      if (off >= bunch.file_pos_at_ep) sources.insert(off);
    }
  }
  const std::set<std::uint32_t> targets(result.bunch_offsets.begin(),
                                        result.bunch_offsets.end());
  if (sources != targets) return ResultType::kTypeII;
  for (std::uint32_t off = 0; off < result.poc.size(); ++off) {
    if (targets.count(off) != 0) continue;  // crash primitive
    if (off >= poc_.size() || result.poc[off] != poc_[off]) {
      return ResultType::kTypeII;
    }
  }
  return ResultType::kTypeI;
}

VerificationReport Octopocs::Verify() {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  VerificationReport report;
  std::string phase = "preprocessing";
  try {
    VerifyImpl(report, phase);
  } catch (const std::exception& e) {
    // Containment boundary: any phase exception — a tooling crash, an
    // injected FaultError — degrades to a well-formed kFailure report
    // that keeps whatever stats the completed phases already recorded.
    report.verdict = Verdict::kFailure;
    report.type = ResultType::kFailure;
    report.failed_phase = phase;
    report.exception_contained = true;
    report.detail = "contained exception during " + phase + ": " + e.what();
  } catch (...) {
    report.verdict = Verdict::kFailure;
    report.type = ResultType::kFailure;
    report.failed_phase = phase;
    report.exception_contained = true;
    report.detail = "contained non-standard exception during " + phase;
  }
  report.timings.total_seconds = Seconds(t0, Clock::now());
  return report;
}

void Octopocs::VerifyImpl(VerificationReport& report, std::string& phase) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();

  const support::Deadline whole =
      options_.deadline_ms == 0
          ? support::Deadline::Never()
          : support::Deadline::AfterMillis(options_.deadline_ms);
  const auto phase_token = [&](std::uint64_t phase_ms) {
    const support::Deadline own =
        phase_ms == 0 ? support::Deadline::Never()
                      : support::Deadline::AfterMillis(phase_ms);
    return support::CancelToken(support::Deadline::Sooner(whole, own),
                                options_.cancel_flag);
  };
  const auto deadline_failure = [&](const std::string& which) {
    report.verdict = Verdict::kFailure;
    report.type = ResultType::kFailure;
    report.failed_phase = which;
    report.deadline_expired = true;
    report.detail = "wall-clock deadline expired during " + which;
  };
  const auto tool_failure = [&](const std::string& which,
                                std::string detail) {
    report.verdict = Verdict::kFailure;
    report.type = ResultType::kFailure;
    report.failed_phase = which;
    report.detail = std::move(detail);
  };

  // -- Preprocessing: locate ep --------------------------------------------
  support::CancelToken pre_tok = phase_token(options_.preprocess_deadline_ms);
  const std::optional<vm::FuncId> ep_s = DiscoverEp(pre_tok);
  const auto t1 = Clock::now();
  report.timings.preprocess_seconds = Seconds(t0, t1);
  if (!ep_s) {
    // A cancelled run ends in kDeadline, which is not a crash, so ep
    // discovery comes back empty — attribute that to the clock, not to
    // the PoC.
    if (pre_tok.Check()) {
      deadline_failure("preprocessing");
      return;
    }
    tool_failure("preprocessing",
                 "preprocessing failed: the PoC does not crash S inside ℓ");
    return;
  }
  report.ep_in_s = *ep_s;
  report.ep_name = s_.Fn(*ep_s).name;
  const auto renamed = t_names_.find(report.ep_name);
  report.ep_in_t = t_.FindFunction(
      renamed != t_names_.end() ? renamed->second : report.ep_name);
  if (report.ep_in_t == vm::kInvalidFunc) {
    // The clone is not even present — trivially not triggerable.
    report.verdict = Verdict::kNotTriggerable;
    report.type = ResultType::kTypeIII;
    report.detail = "ep '" + report.ep_name + "' does not exist in T";
    return;
  }

  // -- P1: crash primitives --------------------------------------------------
  phase = "P1";
  support::CancelToken p1_tok = phase_token(options_.p1_deadline_ms);
  const taint::ExtractionResult p1 = ExtractPrimitives(*ep_s, p1_tok);
  const auto t2 = Clock::now();
  report.timings.p1_seconds = Seconds(t1, t2);
  report.ep_encounters_in_s = p1.ep_encounters;
  report.bunch_count = p1.bunches.size();
  for (const taint::Bunch& b : p1.bunches) {
    report.crash_primitive_bytes += b.size();
  }
  if (!p1.Crashed() || p1.bunches.empty()) {
    if (p1_tok.Check()) {
      deadline_failure("P1");
      return;
    }
    tool_failure("P1", "P1 failed: no crash primitives extracted");
    return;
  }

  // -- CFG of T (P2 precondition) --------------------------------------------
  phase = "cfg";
  support::CancelToken p23_tok = phase_token(options_.p23_deadline_ms);
  cfg::CfgOptions cfg_opts = options_.cfg;
  if (options_.poc_as_cfg_seed) cfg_opts.seed_inputs.push_back(poc_);
  cfg_opts.exec.cancel = p23_tok;
  std::optional<cfg::Cfg> graph;
  try {
    graph.emplace(cfg::Cfg::Build(t_, cfg_opts));
  } catch (const cfg::CfgError& e) {
    if (p23_tok.Check()) {
      deadline_failure("cfg");
      return;
    }
    if (!options_.cfg_fallback_to_static || !cfg_opts.use_dynamic) {
      // The paper's Idx-15 outcome: CFG recovery failed, verification is
      // impossible (a tooling failure, not a verdict about T).
      tool_failure("cfg", e.what());
      return;
    }
    // Degradation ladder, rung 1: retry with static edges only. The
    // static CFG misses dynamically-discovered indirect-call edges, so
    // the verdict may weaken — the report records the substitution.
    report.cfg_static_fallback = true;
    cfg::CfgOptions static_opts = cfg_opts;
    static_opts.use_dynamic = false;
    try {
      graph.emplace(cfg::Cfg::Build(t_, static_opts));
    } catch (const cfg::CfgError& e2) {
      tool_failure("cfg", std::string(e.what()) +
                              "; static fallback also failed: " + e2.what());
      return;
    }
  }

  // -- P2 + P3: guiding inputs and combining ----------------------------------
  phase = "P2/P3";
  symex::ExecutorOptions sym_opts = options_.symex;
  // Hint the solver with the original PoC so reformed PoCs stay as
  // close to the original as the constraints allow.
  for (std::uint32_t off = 0; off < poc_.size(); ++off) {
    sym_opts.solver.hints.emplace(off, poc_[off]);
  }
  sym_opts.cancel = p23_tok;
  sym_opts.solver.cancel = p23_tok;
  symex::SymexResult sym;
  bool theta_ceiling_hit = false;
  bool solver_retried = false;
  for (;;) {
    symex::SymExecutor executor(t_, *graph, report.ep_in_t, sym_opts);
    sym = executor.GeneratePoc(p1.bunches);
    // Out of wall-clock: no retry of any kind can run to completion.
    if (sym.status == symex::SymexStatus::kDeadline) break;
    // Adaptive θ: a program-dead verdict caused (possibly) by the loop
    // cap is retried with a doubled cap until the verdict stabilises.
    if (options_.adaptive_theta &&
        sym.status == symex::SymexStatus::kProgramDead &&
        sym.loop_dead_observed) {
      if (sym_opts.theta >= options_.adaptive_theta_max) {
        theta_ceiling_hit = true;
        break;
      }
      sym_opts.theta *= 2;
      continue;
    }
    // Degradation ladder, rung 2: a solver step-budget failure gets one
    // retry with the budget doubled before the pipeline gives up.
    if (options_.solver_budget_retry && !solver_retried &&
        sym.status == symex::SymexStatus::kSolverFailure) {
      solver_retried = true;
      report.solver_budget_retried = true;
      sym_opts.solver.max_steps *= 2;
      continue;
    }
    break;
  }
  const auto t3 = Clock::now();
  report.timings.p23_seconds = Seconds(t2, t3);
  report.symex_status = sym.status;
  report.symex_stats = sym.stats;
  report.detail = sym.detail;

  switch (sym.status) {
    case symex::SymexStatus::kPocGenerated:
      break;  // proceed to P4
    case symex::SymexStatus::kCfgUnreachable:
      report.verdict = Verdict::kNotTriggerable;  // case (ii)
      report.type = ResultType::kTypeIII;
      return;
    case symex::SymexStatus::kProgramDead:  // case (iii)
      if (theta_ceiling_hit) {
        // The search was cut by the loop cap even at the adaptive
        // ceiling: refusing to call this NotTriggerable avoids the
        // wrong-verdict failure mode §VII warns about.
        tool_failure("P2/P3", "loop cap ceiling reached without a verdict");
        return;
      }
      [[fallthrough]];
    case symex::SymexStatus::kUnsat:        // P3.3 / parameter mismatch
      report.verdict = Verdict::kNotTriggerable;
      report.type = ResultType::kTypeIII;
      return;
    case symex::SymexStatus::kBudget:
    case symex::SymexStatus::kSolverFailure:
    case symex::SymexStatus::kReachedEp:
      report.verdict = Verdict::kFailure;
      report.type = ResultType::kFailure;
      report.failed_phase = "P2/P3";
      return;
    case symex::SymexStatus::kDeadline:
      deadline_failure("P2/P3");
      if (!sym.detail.empty()) report.detail += " (" + sym.detail + ")";
      return;
  }

  report.poc_generated = true;
  report.reformed_poc = sym.poc;
  report.bunch_offsets = sym.bunch_offsets;

  // -- P4: verification --------------------------------------------------------
  phase = "P4";
  support::CancelToken p4_tok = phase_token(options_.p4_deadline_ms);
  vm::ExecOptions verify_exec = options_.verify_exec;
  verify_exec.cancel = p4_tok;
  const vm::ExecResult verify =
      vm::RunProgram(t_, report.reformed_poc, verify_exec);
  report.timings.p4_seconds = Seconds(t3, Clock::now());
  report.observed_trap = verify.trap;
  if (verify.trap == vm::TrapKind::kDeadline) {
    deadline_failure("P4");
    return;
  }
  if (vm::IsVulnerabilityCrash(verify.trap)) {
    report.verdict = Verdict::kTriggered;  // case (i)
    report.type = ClassifyTriggered(sym, p1.bunches);
    report.detail = "poc' crashed T: " + std::string(vm::TrapName(verify.trap)) +
                    " (" + verify.trap_message + ")";
  } else {
    report.verdict = Verdict::kFailure;
    report.type = ResultType::kFailure;
    report.failed_phase = "P4";
    report.detail = "generated poc' did not reproduce the crash in T";
  }
}

VerificationReport VerifyPair(const corpus::Pair& pair,
                              PipelineOptions options) {
  Octopocs pipeline(pair.s, pair.t, pair.shared_functions, pair.poc,
                    std::move(options), pair.t_names);
  return pipeline.Verify();
}

}  // namespace octopocs::core
