#include "core/octopocs.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <type_traits>

#include "core/artifact_store.h"
#include "core/phase.h"
#include "fuzz/directed.h"
#include "support/trace.h"

namespace octopocs::core {

// Reports cross thread and container boundaries constantly (corpus
// workers, bench legs); they must move without deep-copying the
// reformed PoC or the stats payloads.
static_assert(std::is_nothrow_move_constructible_v<VerificationReport>);
static_assert(std::is_nothrow_move_assignable_v<VerificationReport>);

namespace {

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Observes the first entry into any ℓ function — the fallback ep
/// discovery when the crash backtrace has no ℓ frame (e.g. a CWE-835
/// hang caught while execution happens to sit outside ℓ).
class FirstSharedEntry : public vm::ExecutionObserver {
 public:
  explicit FirstSharedEntry(std::set<vm::FuncId> shared)
      : shared_(std::move(shared)) {}

  void OnCallEnter(vm::FuncId callee, std::span<const std::uint64_t>,
                   const vm::Instr*) override {
    if (!first_ && shared_.count(callee) != 0) first_ = callee;
  }

  std::optional<vm::FuncId> first() const { return first_; }

  /// `shared_` is fixed at construction; `first_` is the only mutable
  /// state, so this suffices for the interpreter's cycle fast-forward.
  bool SnapshotState(std::vector<std::uint8_t>* out) const override {
    AppendLe(*out, first_.has_value() ? 1 : 0, 1);
    AppendLe(*out, first_.value_or(0), 4);
    return true;
  }

 private:
  std::set<vm::FuncId> shared_;
  std::optional<vm::FuncId> first_;
};

// -- Artifact keys (DESIGN.md §11) -------------------------------------------
//
// Every input that can change the artifact's value goes into its key;
// observability state (tracer, store pointers) never does. Cancellation
// state never does either — instead, results are only *published* when
// their token did not trip, so a stored artifact is always the value of
// the completed, deterministic computation.

/// Preprocessing output: whether ep exists and which function it is.
/// FuncIds index Program::functions, so they are stable across
/// structurally identical programs — exactly the equivalence the key
/// hashes.
struct EpArtifact {
  bool found = false;
  vm::FuncId ep = vm::kInvalidFunc;
};

void HashExec(ArtifactHasher& h, const vm::ExecOptions& exec) {
  // dispatch/fuse/cycle_skip are deliberately excluded: the backends
  // produce byte-identical results, so cached artifacts stay valid
  // across --vm-dispatch modes and with the cycle fast-forward on or
  // off (the identity tests depend on it). The same policy covers
  // SolverOptions::backend — no artifact key hashes SolverOptions, so
  // --solver-backend can never split otherwise identical keys.
  h.U64(exec.fuel).U64(exec.max_call_depth).U64(exec.heap_limit);
}

void HashBytes(ArtifactHasher& h, const Bytes& bytes) {
  h.U64(bytes.size()).Bytes(bytes.data(), bytes.size());
}

ArtifactKey EpKey(const PhaseContext& ctx) {
  ArtifactHasher h;
  h.Program(ctx.s);
  HashBytes(h, ctx.poc);
  // ep discovery treats ℓ as a set; sort so the caller's ordering
  // cannot split otherwise identical keys.
  std::vector<std::string> names(ctx.shared);
  std::sort(names.begin(), names.end());
  h.U64(names.size());
  for (const std::string& name : names) h.Str(name);
  HashExec(h, ctx.options.verify_exec);
  return h.Finish("ep");
}

ArtifactKey P1Key(const PhaseContext& ctx, vm::FuncId ep_in_s) {
  ArtifactHasher h;
  h.Program(ctx.s);
  HashBytes(h, ctx.poc);
  h.U32(ep_in_s);
  h.Bool(ctx.options.taint.context_aware);
  // Mirror ExtractPrimitives' fuel clamp so the key matches the options
  // the extraction actually ran with.
  vm::ExecOptions exec = ctx.options.taint.exec;
  if (exec.fuel < ctx.options.verify_exec.fuel) {
    exec.fuel = ctx.options.verify_exec.fuel;
  }
  HashExec(h, exec);
  return h.Finish("p1");
}

ArtifactKey CfgKey(const PhaseContext& ctx, const cfg::CfgOptions& opts) {
  ArtifactHasher h;
  h.Program(ctx.t);
  h.Bool(opts.use_dynamic);
  h.Bool(opts.resolve_obfuscated_icalls);
  h.U64(opts.seed_inputs.size());
  for (const Bytes& seed : opts.seed_inputs) HashBytes(h, seed);
  HashExec(h, opts.exec);
  return h.Finish("cfg");
}

void CountArtifact(PhaseContext& ctx, const char* name) {
  if (ctx.tracer != nullptr) ctx.tracer->Counter(name, 1);
}

/// Type-I/II classification of a Triggered verdict (paper Table II).
ResultType ClassifyReformed(const Bytes& original, const Bytes& reformed,
                            const std::vector<std::uint32_t>& bunch_offsets,
                            const std::vector<taint::Bunch>& bunches) {
  // Type-I: every crash-primitive byte stayed at its original offset
  // (the relocation was the identity) and the guiding region of poc'
  // byte-matches the original PoC. Anything else means the PoC was
  // genuinely reformed — Type-II. Note poc' may legitimately be shorter
  // than poc (the paper observed reformed PoCs dropping unnecessary
  // trailing bytes); only bytes poc' actually contains are compared.
  std::set<std::uint32_t> sources;
  for (const taint::Bunch& bunch : bunches) {
    for (const auto& [off, val] : bunch.bytes) {
      // Pre-ep bytes travel through ep's parameters, not placement;
      // only relocatable bytes participate in the identity check.
      if (off >= bunch.file_pos_at_ep) sources.insert(off);
    }
  }
  const std::set<std::uint32_t> targets(bunch_offsets.begin(),
                                        bunch_offsets.end());
  if (sources != targets) return ResultType::kTypeII;
  for (std::uint32_t off = 0; off < reformed.size(); ++off) {
    if (targets.count(off) != 0) continue;  // crash primitive
    if (off >= original.size() || reformed[off] != original[off]) {
      return ResultType::kTypeII;
    }
  }
  return ResultType::kTypeI;
}

}  // namespace

std::string_view VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kTriggered: return "Triggered";
    case Verdict::kNotTriggerable: return "NotTriggerable";
    case Verdict::kFailure: return "Failure";
    case Verdict::kTriggeredByFuzzing: return "TriggeredByFuzzing";
  }
  return "?";
}

std::string_view ResultTypeName(ResultType type) {
  switch (type) {
    case ResultType::kTypeI: return "Type-I";
    case ResultType::kTypeII: return "Type-II";
    case ResultType::kTypeIII: return "Type-III";
    case ResultType::kFailure: return "Failure";
    case ResultType::kFuzzed: return "Fuzzed";
  }
  return "?";
}

Octopocs::Octopocs(const vm::Program& s, const vm::Program& t,
                   std::vector<std::string> shared_functions, Bytes poc,
                   PipelineOptions options,
                   std::map<std::string, std::string> t_names)
    : s_(s),
      t_(t),
      shared_(std::move(shared_functions)),
      poc_(std::move(poc)),
      options_(std::move(options)),
      t_names_(std::move(t_names)) {}

std::optional<vm::FuncId> Octopocs::DiscoverEp(support::CancelToken cancel) {
  std::set<vm::FuncId> shared_ids;
  for (const std::string& name : shared_) {
    const vm::FuncId id = s_.FindFunction(name);
    if (id != vm::kInvalidFunc) shared_ids.insert(id);
  }
  if (shared_ids.empty()) return std::nullopt;

  FirstSharedEntry fallback(shared_ids);
  vm::ExecOptions exec = options_.verify_exec;
  exec.cancel = cancel;
  vm::Interpreter interp(s_, poc_, exec);
  interp.AddObserver(&fallback);
  const vm::ExecResult run = interp.Run();
  if (!vm::IsCrash(run.trap)) return std::nullopt;

  // ep: the bottom-most (outermost) ℓ function on the crash callstack —
  // "the first function to be called in ℓ".
  for (const vm::BacktraceEntry& frame : run.backtrace) {
    if (shared_ids.count(frame.fn) != 0) return frame.fn;
  }
  return fallback.first();
}

taint::ExtractionResult Octopocs::ExtractPrimitives(vm::FuncId ep_in_s,
                                                    support::CancelToken cancel) {
  taint::ExtractionOptions opts = options_.taint;
  // The taint run must be allowed at least as much fuel as the verify
  // run, or a CWE-835 hang would never reach its "crash".
  if (opts.exec.fuel < options_.verify_exec.fuel) {
    opts.exec.fuel = options_.verify_exec.fuel;
  }
  opts.exec.cancel = cancel;
  return taint::ExtractCrashPrimitives(s_, poc_, ep_in_s, opts);
}

// -- CrashPrimitivePhase: Preprocessing + P1 ---------------------------------

PhaseStatus CrashPrimitivePhase::Run(PhaseContext& ctx) {
  using Clock = std::chrono::steady_clock;
  VerificationReport& report = ctx.report;

  // -- Preprocessing: locate ep --------------------------------------------
  ctx.attribution = "preprocessing";
  const auto t0 = Clock::now();
  support::CancelToken pre_tok = ctx.deadlines.Token(DeadlineGroup::kPreprocess);

  std::optional<vm::FuncId> ep_s;
  ArtifactKey ep_key{};
  bool resolved = false;
  if (ctx.artifacts != nullptr) {
    ep_key = EpKey(ctx);
    if (auto hit = ctx.artifacts->Get<EpArtifact>(ep_key)) {
      if (hit->found) ep_s = hit->ep;
      resolved = true;
      CountArtifact(ctx, "artifact.ep.hit");
    } else {
      CountArtifact(ctx, "artifact.ep.miss");
    }
  }
  if (!resolved) {
    ep_s = ctx.pipeline.DiscoverEp(pre_tok);
    // "Not found" is a deterministic statement about (S, poc) and is
    // cached too — but only when the clock did not cut the run short.
    if (ctx.artifacts != nullptr && !pre_tok.Check()) {
      ctx.artifacts->Put(ep_key,
                         EpArtifact{ep_s.has_value(),
                                    ep_s.value_or(vm::kInvalidFunc)});
    }
  }
  report.timings.preprocess_seconds = Seconds(t0, Clock::now());
  if (!ep_s) {
    // A cancelled run ends in kDeadline, which is not a crash, so ep
    // discovery comes back empty — attribute that to the clock, not to
    // the PoC.
    if (pre_tok.Check()) {
      ctx.FailDeadline("preprocessing");
      return PhaseStatus::kDone;
    }
    ctx.FailTool("preprocessing",
                 "preprocessing failed: the PoC does not crash S inside ℓ");
    return PhaseStatus::kDone;
  }
  report.ep_in_s = *ep_s;
  report.ep_name = ctx.s.Fn(*ep_s).name;
  const auto renamed = ctx.t_names.find(report.ep_name);
  report.ep_in_t = ctx.t.FindFunction(
      renamed != ctx.t_names.end() ? renamed->second : report.ep_name);
  if (report.ep_in_t == vm::kInvalidFunc) {
    // The clone is not even present — trivially not triggerable.
    report.verdict = Verdict::kNotTriggerable;
    report.type = ResultType::kTypeIII;
    report.detail = "ep '" + report.ep_name + "' does not exist in T";
    return PhaseStatus::kDone;
  }

  // -- P1: crash primitives --------------------------------------------------
  ctx.attribution = "P1";
  const auto t1 = Clock::now();
  support::CancelToken p1_tok = ctx.deadlines.Token(DeadlineGroup::kP1);

  ArtifactKey p1_key{};
  if (ctx.artifacts != nullptr) {
    p1_key = P1Key(ctx, *ep_s);
    if (auto hit = ctx.artifacts->Get<taint::ExtractionResult>(p1_key)) {
      ctx.primitives = std::move(hit);
      CountArtifact(ctx, "artifact.p1.hit");
    } else {
      CountArtifact(ctx, "artifact.p1.miss");
    }
  }
  if (ctx.primitives == nullptr) {
    taint::ExtractionResult extracted =
        ctx.pipeline.ExtractPrimitives(*ep_s, p1_tok);
    if (ctx.artifacts != nullptr && !p1_tok.Check()) {
      ctx.primitives = ctx.artifacts->Put(p1_key, std::move(extracted));
    } else {
      ctx.primitives = std::make_shared<const taint::ExtractionResult>(
          std::move(extracted));
    }
  }
  const taint::ExtractionResult& p1 = *ctx.primitives;
  report.timings.p1_seconds = Seconds(t1, Clock::now());
  report.ep_encounters_in_s = p1.ep_encounters;
  report.bunch_count = p1.bunches.size();
  for (const taint::Bunch& b : p1.bunches) {
    report.crash_primitive_bytes += b.size();
  }
  if (!p1.Crashed() || p1.bunches.empty()) {
    if (p1_tok.Check()) {
      ctx.FailDeadline("P1");
      return PhaseStatus::kDone;
    }
    ctx.FailTool("P1", "P1 failed: no crash primitives extracted");
    return PhaseStatus::kDone;
  }
  return PhaseStatus::kContinue;
}

// -- GuidingInputPhase: CFG of T (P2 precondition) ---------------------------

PhaseStatus GuidingInputPhase::Run(PhaseContext& ctx) {
  using Clock = std::chrono::steady_clock;
  VerificationReport& report = ctx.report;

  ctx.attribution = "cfg";
  const auto t0 = Clock::now();
  support::CancelToken p23_tok = ctx.deadlines.Token(DeadlineGroup::kP23);
  cfg::CfgOptions cfg_opts = ctx.options.cfg;
  if (ctx.options.poc_as_cfg_seed) cfg_opts.seed_inputs.push_back(ctx.poc);
  cfg_opts.exec.cancel = p23_tok;

  ArtifactKey cfg_key{};
  bool rehydrated = false;
  if (ctx.artifacts != nullptr) {
    cfg_key = CfgKey(ctx, cfg_opts);
    if (auto hit = ctx.artifacts->Get<cfg::Cfg::Edges>(cfg_key)) {
      ctx.graph.emplace(cfg::Cfg::FromEdges(ctx.t, *hit));
      rehydrated = true;
      CountArtifact(ctx, "artifact.cfg.hit");
    } else {
      CountArtifact(ctx, "artifact.cfg.miss");
    }
  }
  if (!rehydrated) {
    try {
      ctx.graph.emplace(cfg::Cfg::Build(ctx.t, cfg_opts));
      if (ctx.artifacts != nullptr && !p23_tok.Check()) {
        ctx.artifacts->Put(cfg_key, ctx.graph->ExportEdges());
      }
    } catch (const cfg::CfgError& e) {
      if (p23_tok.Check()) {
        ctx.FailDeadline("cfg");
        return PhaseStatus::kDone;
      }
      if (!ctx.options.cfg_fallback_to_static || !cfg_opts.use_dynamic) {
        // The paper's Idx-15 outcome: CFG recovery failed, verification
        // is impossible (a tooling failure, not a verdict about T).
        ctx.FailTool("cfg", e.what());
        return PhaseStatus::kDone;
      }
      // Degradation ladder, rung 1: retry with static edges only. The
      // static CFG misses dynamically-discovered indirect-call edges, so
      // the verdict may weaken — the report records the substitution.
      // Fallback builds are never published to the artifact store.
      report.cfg_static_fallback = true;
      cfg::CfgOptions static_opts = cfg_opts;
      static_opts.use_dynamic = false;
      try {
        ctx.graph.emplace(cfg::Cfg::Build(ctx.t, static_opts));
      } catch (const cfg::CfgError& e2) {
        ctx.FailTool("cfg", std::string(e.what()) +
                                "; static fallback also failed: " + e2.what());
        return PhaseStatus::kDone;
      }
    }
  }
  report.timings.p23_seconds += Seconds(t0, Clock::now());
  return PhaseStatus::kContinue;
}

// -- CombinePhase: P2 + P3 ---------------------------------------------------

PhaseStatus CombinePhase::Run(PhaseContext& ctx) {
  using Clock = std::chrono::steady_clock;
  VerificationReport& report = ctx.report;

  ctx.attribution = "P2/P3";
  const auto t0 = Clock::now();
  support::CancelToken p23_tok = ctx.deadlines.Token(DeadlineGroup::kP23);
  if (!sym_opts_) {
    sym_opts_ = ctx.options.symex;
    // Hint the solver with the original PoC so reformed PoCs stay as
    // close to the original as the constraints allow.
    for (std::uint32_t off = 0; off < ctx.poc.size(); ++off) {
      sym_opts_->solver.hints.emplace(off, ctx.poc[off]);
    }
    sym_opts_->tracer = ctx.tracer;
  }
  // Tokens are sticky value types: retries must re-request one so a
  // fresh attempt polls the live group deadline, not a spent copy.
  sym_opts_->cancel = p23_tok;
  sym_opts_->solver.cancel = p23_tok;

  symex::SymExecutor executor(ctx.t, *ctx.graph, report.ep_in_t, *sym_opts_);
  symex::SymexResult sym = executor.GeneratePoc(ctx.primitives->bunches);
  report.timings.p23_seconds += Seconds(t0, Clock::now());

  bool theta_ceiling_hit = false;
  // Out of wall-clock: no retry of any kind can run to completion.
  if (sym.status != symex::SymexStatus::kDeadline) {
    // Adaptive θ: a program-dead verdict caused (possibly) by the loop
    // cap is retried with a doubled cap until the verdict stabilises.
    if (ctx.options.adaptive_theta &&
        sym.status == symex::SymexStatus::kProgramDead &&
        sym.loop_dead_observed) {
      if (sym_opts_->theta >= ctx.options.adaptive_theta_max) {
        theta_ceiling_hit = true;
      } else {
        sym_opts_->theta *= 2;
        return PhaseStatus::kRetry;
      }
    } else if (ctx.options.solver_budget_retry && !solver_retried_ &&
               sym.status == symex::SymexStatus::kSolverFailure) {
      // Degradation ladder, rung 2: a solver step-budget failure gets
      // one retry with the budget doubled before the pipeline gives up.
      solver_retried_ = true;
      report.solver_budget_retried = true;
      sym_opts_->solver.max_steps *= 2;
      return PhaseStatus::kRetry;
    }
  }

  report.symex_status = sym.status;
  report.symex_stats = sym.stats;
  report.detail = sym.detail;

  // Dead ends — program-dead and budget exhaustion — may hand control
  // to the fuzz-fallback rung (DESIGN.md §16): the usual verdict is
  // *staged* in the report exactly as it would have been final, and the
  // answer becomes kContinue so FuzzFallbackPhase can try to upgrade
  // it. Proof verdicts (ep unreachable, unsat) and wall-clock failures
  // stay kDone: the rung must never second-guess a proof, and a spent
  // clock cannot fund a campaign.
  const auto stage_or_done = [&ctx]() {
    return ctx.options.fuzz_fallback ? PhaseStatus::kContinue
                                     : PhaseStatus::kDone;
  };

  switch (sym.status) {
    case symex::SymexStatus::kPocGenerated:
      break;  // proceed to P4
    case symex::SymexStatus::kCfgUnreachable:
      report.verdict = Verdict::kNotTriggerable;  // case (ii)
      report.type = ResultType::kTypeIII;
      return PhaseStatus::kDone;
    case symex::SymexStatus::kProgramDead:  // case (iii)
      if (theta_ceiling_hit) {
        // The search was cut by the loop cap even at the adaptive
        // ceiling: refusing to call this NotTriggerable avoids the
        // wrong-verdict failure mode §VII warns about.
        ctx.FailTool("P2/P3", "loop cap ceiling reached without a verdict");
        return stage_or_done();
      }
      // Program-dead is a dead end, not an unsat proof: every state
      // died, but a θ cut (without adaptive mode) or incomplete forking
      // may have hidden a live path — a concrete witness can still
      // overrule it.
      report.verdict = Verdict::kNotTriggerable;
      report.type = ResultType::kTypeIII;
      return stage_or_done();
    case symex::SymexStatus::kUnsat:        // P3.3 / parameter mismatch
      report.verdict = Verdict::kNotTriggerable;
      report.type = ResultType::kTypeIII;
      return PhaseStatus::kDone;
    case symex::SymexStatus::kBudget:
    case symex::SymexStatus::kSolverFailure:
      report.verdict = Verdict::kFailure;
      report.type = ResultType::kFailure;
      report.failed_phase = "P2/P3";
      return stage_or_done();
    case symex::SymexStatus::kReachedEp:
      report.verdict = Verdict::kFailure;
      report.type = ResultType::kFailure;
      report.failed_phase = "P2/P3";
      return PhaseStatus::kDone;
    case symex::SymexStatus::kDeadline:
      ctx.FailDeadline("P2/P3");
      if (!sym.detail.empty()) report.detail += " (" + sym.detail + ")";
      return PhaseStatus::kDone;
  }

  report.poc_generated = true;
  report.reformed_poc = std::move(sym.poc);
  report.bunch_offsets = std::move(sym.bunch_offsets);
  return PhaseStatus::kContinue;
}

// -- FuzzFallbackPhase: the trace-guided fuzzing rung (DESIGN.md §16) --------

PhaseStatus FuzzFallbackPhase::Run(PhaseContext& ctx) {
  VerificationReport& report = ctx.report;
  // P2/P3 produced a poc' — the paper pipeline proceeds untouched.
  if (report.poc_generated) return PhaseStatus::kContinue;

  // Only reachable when CombinePhase staged a dead-end verdict with the
  // rung enabled. That staged verdict survives verbatim unless a
  // campaign crash at ep is confirmed by a P4 re-run below.
  ctx.attribution = "fuzz";
  support::CancelToken fuzz_tok = ctx.deadlines.Token(DeadlineGroup::kFuzz);

  report.fuzz_attempted = true;
  report.fuzz_seed = ctx.options.fuzz_seed;

  fuzz::DirectedFuzzOptions fuzz_opts;
  fuzz_opts.max_execs = ctx.options.fuzz_execs;
  fuzz_opts.rng_seed = ctx.options.fuzz_seed;
  fuzz_opts.cancel = fuzz_tok;
  // Pin every P1 bunch byte: the crash primitives are the part of the
  // historical trace worth carrying over verbatim — mutation effort
  // goes into the container around them.
  for (const taint::Bunch& bunch : ctx.primitives->bunches) {
    for (const auto& [offset, value] : bunch.bytes) {
      fuzz_opts.pinned_offsets.push_back(offset);
    }
  }

  // Score candidates with the backward distance map of the CFG the
  // guiding phase already built (exported, not rebuilt).
  const cfg::DistanceMap distances =
      ctx.graph->BackwardReachability(report.ep_in_t);
  const fuzz::DirectedFuzzResult run =
      fuzz::RunDirectedFuzz(ctx.t, report.ep_in_t, distances, ctx.poc,
                            fuzz_opts);

  report.fuzz_execs = run.execs;
  report.fuzz_execs_to_crash = run.execs_to_crash;
  report.fuzz_best_distance = run.best_distance;
  if (ctx.tracer != nullptr) {
    ctx.tracer->Counter("fuzz.execs", static_cast<std::int64_t>(run.execs));
  }

  if (run.crash_found) {
    // Re-run P4 concrete verification under the pipeline's own P4
    // options — the campaign's exec fuel differs from verify_exec's,
    // and only the pipeline's executor decides verdicts.
    ctx.attribution = "P4";
    support::CancelToken p4_tok = ctx.deadlines.Token(DeadlineGroup::kP4);
    vm::ExecOptions verify_exec = ctx.options.verify_exec;
    verify_exec.cancel = p4_tok;
    const vm::ExecResult verify =
        vm::RunProgram(ctx.t, run.crashing_input, verify_exec);
    bool ep_on_stack = false;
    for (const vm::BacktraceEntry& frame : verify.backtrace) {
      if (frame.fn == report.ep_in_t) {
        ep_on_stack = true;
        break;
      }
    }
    if (vm::IsVulnerabilityCrash(verify.trap) && ep_on_stack) {
      report.verdict = Verdict::kTriggeredByFuzzing;
      report.type = ResultType::kFuzzed;
      report.failed_phase.clear();
      report.observed_trap = verify.trap;
      report.reformed_poc = run.crashing_input;
      report.detail = "fuzz fallback crashed T at ep: " +
                      std::string(vm::TrapName(verify.trap)) + " (" +
                      verify.trap_message + ")";
    }
  }
  // The rung is terminal either way: an unconfirmed campaign keeps the
  // staged dead-end verdict, and ConcreteVerifyPhase must never run on
  // a fuzzed candidate.
  return PhaseStatus::kDone;
}

// -- ConcreteVerifyPhase: P4 -------------------------------------------------

PhaseStatus ConcreteVerifyPhase::Run(PhaseContext& ctx) {
  using Clock = std::chrono::steady_clock;
  VerificationReport& report = ctx.report;

  ctx.attribution = "P4";
  const auto t0 = Clock::now();
  support::CancelToken p4_tok = ctx.deadlines.Token(DeadlineGroup::kP4);
  vm::ExecOptions verify_exec = ctx.options.verify_exec;
  verify_exec.cancel = p4_tok;
  const vm::ExecResult verify =
      vm::RunProgram(ctx.t, report.reformed_poc, verify_exec);
  report.timings.p4_seconds = Seconds(t0, Clock::now());
  report.observed_trap = verify.trap;
  if (verify.trap == vm::TrapKind::kDeadline) {
    ctx.FailDeadline("P4");
    return PhaseStatus::kDone;
  }
  if (vm::IsVulnerabilityCrash(verify.trap)) {
    report.verdict = Verdict::kTriggered;  // case (i)
    report.type = ClassifyReformed(ctx.poc, report.reformed_poc,
                                   report.bunch_offsets,
                                   ctx.primitives->bunches);
    report.detail = "poc' crashed T: " + std::string(vm::TrapName(verify.trap)) +
                    " (" + verify.trap_message + ")";
  } else {
    report.verdict = Verdict::kFailure;
    report.type = ResultType::kFailure;
    report.failed_phase = "P4";
    report.detail = "generated poc' did not reproduce the crash in T";
  }
  return PhaseStatus::kDone;
}

// -- Driver ------------------------------------------------------------------

void RunPhaseGraph(PhaseContext& ctx, std::span<Phase* const> phases) {
  for (Phase* phase : phases) {
    for (std::int64_t attempt = 0;; ++attempt) {
      PhaseStatus status;
      {
        support::TraceSpan span(ctx.tracer, phase->name(), attempt);
        status = phase->Run(ctx);
      }
      if (status == PhaseStatus::kRetry) {
        if (ctx.tracer != nullptr) ctx.tracer->Counter("phase.retry", 1);
        continue;
      }
      if (status == PhaseStatus::kDone) return;
      break;  // kContinue → next phase
    }
  }
}

VerificationReport Octopocs::Verify() {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  VerificationReport report;
  DeadlinePolicy deadlines(options_);
  PhaseContext ctx{*this,
                   s_,
                   t_,
                   shared_,
                   poc_,
                   t_names_,
                   options_,
                   report,
                   deadlines,
                   options_.tracer,
                   options_.artifacts,
                   /*primitives=*/nullptr,
                   /*graph=*/std::nullopt,
                   /*attribution=*/"preprocessing"};

  CrashPrimitivePhase crash_primitive;
  GuidingInputPhase guiding_input;
  CombinePhase combine;
  FuzzFallbackPhase fuzz_fallback;
  ConcreteVerifyPhase concrete_verify;
  Phase* const phases[] = {&crash_primitive, &guiding_input, &combine,
                           &fuzz_fallback, &concrete_verify};

  support::TraceSpan verify_span(options_.tracer, "verify");
  try {
    RunPhaseGraph(ctx, phases);
  } catch (const std::exception& e) {
    // Containment boundary: any phase exception — a tooling crash, an
    // injected FaultError — degrades to a well-formed kFailure report
    // that keeps whatever stats the completed phases already recorded.
    report.verdict = Verdict::kFailure;
    report.type = ResultType::kFailure;
    report.failed_phase = ctx.attribution;
    report.exception_contained = true;
    report.detail =
        "contained exception during " + ctx.attribution + ": " + e.what();
  } catch (...) {
    report.verdict = Verdict::kFailure;
    report.type = ResultType::kFailure;
    report.failed_phase = ctx.attribution;
    report.exception_contained = true;
    report.detail = "contained non-standard exception during " + ctx.attribution;
  }
  report.timings.total_seconds = Seconds(t0, Clock::now());
  return report;
}

void SetVmDispatch(PipelineOptions& options, vm::DispatchMode mode) {
  options.taint.exec.dispatch = mode;
  options.cfg.exec.dispatch = mode;
  options.verify_exec.dispatch = mode;
}

void SetSolverBackend(PipelineOptions& options,
                      symex::SolverBackendKind kind) {
  options.symex.solver.backend = kind;
}

void SetCycleSkip(PipelineOptions& options, bool enabled) {
  options.taint.exec.cycle_skip = enabled;
  options.cfg.exec.cycle_skip = enabled;
  options.verify_exec.cycle_skip = enabled;
}

VerificationReport VerifyPair(const corpus::Pair& pair,
                              PipelineOptions options) {
  Octopocs pipeline(pair.s, pair.t, pair.shared_functions, pair.poc,
                    std::move(options), pair.t_names);
  return pipeline.Verify();
}

}  // namespace octopocs::core
