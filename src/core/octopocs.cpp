#include "core/octopocs.h"

#include <algorithm>
#include <chrono>
#include <set>

namespace octopocs::core {

namespace {

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Observes the first entry into any ℓ function — the fallback ep
/// discovery when the crash backtrace has no ℓ frame (e.g. a CWE-835
/// hang caught while execution happens to sit outside ℓ).
class FirstSharedEntry : public vm::ExecutionObserver {
 public:
  explicit FirstSharedEntry(std::set<vm::FuncId> shared)
      : shared_(std::move(shared)) {}

  void OnCallEnter(vm::FuncId callee, std::span<const std::uint64_t>,
                   const vm::Instr*) override {
    if (!first_ && shared_.count(callee) != 0) first_ = callee;
  }

  std::optional<vm::FuncId> first() const { return first_; }

 private:
  std::set<vm::FuncId> shared_;
  std::optional<vm::FuncId> first_;
};

}  // namespace

std::string_view VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kTriggered: return "Triggered";
    case Verdict::kNotTriggerable: return "NotTriggerable";
    case Verdict::kFailure: return "Failure";
  }
  return "?";
}

std::string_view ResultTypeName(ResultType type) {
  switch (type) {
    case ResultType::kTypeI: return "Type-I";
    case ResultType::kTypeII: return "Type-II";
    case ResultType::kTypeIII: return "Type-III";
    case ResultType::kFailure: return "Failure";
  }
  return "?";
}

Octopocs::Octopocs(const vm::Program& s, const vm::Program& t,
                   std::vector<std::string> shared_functions, Bytes poc,
                   PipelineOptions options,
                   std::map<std::string, std::string> t_names)
    : s_(s),
      t_(t),
      shared_(std::move(shared_functions)),
      poc_(std::move(poc)),
      options_(std::move(options)),
      t_names_(std::move(t_names)) {}

std::optional<vm::FuncId> Octopocs::DiscoverEp() {
  std::set<vm::FuncId> shared_ids;
  for (const std::string& name : shared_) {
    const vm::FuncId id = s_.FindFunction(name);
    if (id != vm::kInvalidFunc) shared_ids.insert(id);
  }
  if (shared_ids.empty()) return std::nullopt;

  FirstSharedEntry fallback(shared_ids);
  vm::Interpreter interp(s_, poc_, options_.verify_exec);
  interp.AddObserver(&fallback);
  const vm::ExecResult run = interp.Run();
  if (!vm::IsCrash(run.trap)) return std::nullopt;

  // ep: the bottom-most (outermost) ℓ function on the crash callstack —
  // "the first function to be called in ℓ".
  for (const vm::BacktraceEntry& frame : run.backtrace) {
    if (shared_ids.count(frame.fn) != 0) return frame.fn;
  }
  return fallback.first();
}

taint::ExtractionResult Octopocs::ExtractPrimitives(vm::FuncId ep_in_s) {
  taint::ExtractionOptions opts = options_.taint;
  // The taint run must be allowed at least as much fuel as the verify
  // run, or a CWE-835 hang would never reach its "crash".
  if (opts.exec.fuel < options_.verify_exec.fuel) {
    opts.exec.fuel = options_.verify_exec.fuel;
  }
  return taint::ExtractCrashPrimitives(s_, poc_, ep_in_s, opts);
}

ResultType Octopocs::ClassifyTriggered(
    const symex::SymexResult& result,
    const std::vector<taint::Bunch>& bunches) const {
  // Type-I: every crash-primitive byte stayed at its original offset
  // (the relocation was the identity) and the guiding region of poc'
  // byte-matches the original PoC. Anything else means the PoC was
  // genuinely reformed — Type-II. Note poc' may legitimately be shorter
  // than poc (the paper observed reformed PoCs dropping unnecessary
  // trailing bytes); only bytes poc' actually contains are compared.
  std::set<std::uint32_t> sources;
  for (const taint::Bunch& bunch : bunches) {
    for (const auto& [off, val] : bunch.bytes) {
      // Pre-ep bytes travel through ep's parameters, not placement;
      // only relocatable bytes participate in the identity check.
      if (off >= bunch.file_pos_at_ep) sources.insert(off);
    }
  }
  const std::set<std::uint32_t> targets(result.bunch_offsets.begin(),
                                        result.bunch_offsets.end());
  if (sources != targets) return ResultType::kTypeII;
  for (std::uint32_t off = 0; off < result.poc.size(); ++off) {
    if (targets.count(off) != 0) continue;  // crash primitive
    if (off >= poc_.size() || result.poc[off] != poc_[off]) {
      return ResultType::kTypeII;
    }
  }
  return ResultType::kTypeI;
}

VerificationReport Octopocs::Verify() {
  using Clock = std::chrono::steady_clock;
  VerificationReport report;
  const auto t0 = Clock::now();

  // -- Preprocessing: locate ep --------------------------------------------
  const std::optional<vm::FuncId> ep_s = DiscoverEp();
  const auto t1 = Clock::now();
  report.timings.preprocess_seconds = Seconds(t0, t1);
  if (!ep_s) {
    report.verdict = Verdict::kFailure;
    report.type = ResultType::kFailure;
    report.detail =
        "preprocessing failed: the PoC does not crash S inside ℓ";
    report.timings.total_seconds = Seconds(t0, Clock::now());
    return report;
  }
  report.ep_in_s = *ep_s;
  report.ep_name = s_.Fn(*ep_s).name;
  const auto renamed = t_names_.find(report.ep_name);
  report.ep_in_t = t_.FindFunction(
      renamed != t_names_.end() ? renamed->second : report.ep_name);
  if (report.ep_in_t == vm::kInvalidFunc) {
    // The clone is not even present — trivially not triggerable.
    report.verdict = Verdict::kNotTriggerable;
    report.type = ResultType::kTypeIII;
    report.detail = "ep '" + report.ep_name + "' does not exist in T";
    report.timings.total_seconds = Seconds(t0, Clock::now());
    return report;
  }

  // -- P1: crash primitives --------------------------------------------------
  const taint::ExtractionResult p1 = ExtractPrimitives(*ep_s);
  const auto t2 = Clock::now();
  report.timings.p1_seconds = Seconds(t1, t2);
  report.ep_encounters_in_s = p1.ep_encounters;
  report.bunch_count = p1.bunches.size();
  for (const taint::Bunch& b : p1.bunches) {
    report.crash_primitive_bytes += b.size();
  }
  if (!p1.Crashed() || p1.bunches.empty()) {
    report.verdict = Verdict::kFailure;
    report.type = ResultType::kFailure;
    report.detail = "P1 failed: no crash primitives extracted";
    report.timings.total_seconds = Seconds(t0, Clock::now());
    return report;
  }

  // -- CFG of T (P2 precondition) --------------------------------------------
  cfg::CfgOptions cfg_opts = options_.cfg;
  if (options_.poc_as_cfg_seed) cfg_opts.seed_inputs.push_back(poc_);
  std::optional<cfg::Cfg> graph;
  try {
    graph.emplace(cfg::Cfg::Build(t_, cfg_opts));
  } catch (const cfg::CfgError& e) {
    // The paper's Idx-15 outcome: CFG recovery failed, verification is
    // impossible (a tooling failure, not a verdict about T).
    report.verdict = Verdict::kFailure;
    report.type = ResultType::kFailure;
    report.detail = e.what();
    report.timings.total_seconds = Seconds(t0, Clock::now());
    return report;
  }

  // -- P2 + P3: guiding inputs and combining ----------------------------------
  symex::ExecutorOptions sym_opts = options_.symex;
  // Hint the solver with the original PoC so reformed PoCs stay as
  // close to the original as the constraints allow.
  for (std::uint32_t off = 0; off < poc_.size(); ++off) {
    sym_opts.solver.hints.emplace(off, poc_[off]);
  }
  symex::SymexResult sym;
  bool theta_ceiling_hit = false;
  for (;;) {
    symex::SymExecutor executor(t_, *graph, report.ep_in_t, sym_opts);
    sym = executor.GeneratePoc(p1.bunches);
    // Adaptive θ: a program-dead verdict caused (possibly) by the loop
    // cap is retried with a doubled cap until the verdict stabilises.
    if (options_.adaptive_theta &&
        sym.status == symex::SymexStatus::kProgramDead &&
        sym.loop_dead_observed) {
      if (sym_opts.theta >= options_.adaptive_theta_max) {
        theta_ceiling_hit = true;
        break;
      }
      sym_opts.theta *= 2;
      continue;
    }
    break;
  }
  const auto t3 = Clock::now();
  report.timings.p23_seconds = Seconds(t2, t3);
  report.symex_status = sym.status;
  report.symex_stats = sym.stats;
  report.detail = sym.detail;

  switch (sym.status) {
    case symex::SymexStatus::kPocGenerated:
      break;  // proceed to P4
    case symex::SymexStatus::kCfgUnreachable:
      report.verdict = Verdict::kNotTriggerable;  // case (ii)
      report.type = ResultType::kTypeIII;
      report.timings.total_seconds = Seconds(t0, Clock::now());
      return report;
    case symex::SymexStatus::kProgramDead:  // case (iii)
      if (theta_ceiling_hit) {
        // The search was cut by the loop cap even at the adaptive
        // ceiling: refusing to call this NotTriggerable avoids the
        // wrong-verdict failure mode §VII warns about.
        report.verdict = Verdict::kFailure;
        report.type = ResultType::kFailure;
        report.detail = "loop cap ceiling reached without a verdict";
        report.timings.total_seconds = Seconds(t0, Clock::now());
        return report;
      }
      [[fallthrough]];
    case symex::SymexStatus::kUnsat:        // P3.3 / parameter mismatch
      report.verdict = Verdict::kNotTriggerable;
      report.type = ResultType::kTypeIII;
      report.timings.total_seconds = Seconds(t0, Clock::now());
      return report;
    case symex::SymexStatus::kBudget:
    case symex::SymexStatus::kSolverFailure:
    case symex::SymexStatus::kReachedEp:
      report.verdict = Verdict::kFailure;
      report.type = ResultType::kFailure;
      report.timings.total_seconds = Seconds(t0, Clock::now());
      return report;
  }

  report.poc_generated = true;
  report.reformed_poc = sym.poc;
  report.bunch_offsets = sym.bunch_offsets;

  // -- P4: verification --------------------------------------------------------
  const vm::ExecResult verify =
      vm::RunProgram(t_, report.reformed_poc, options_.verify_exec);
  report.timings.p4_seconds = Seconds(t3, Clock::now());
  report.observed_trap = verify.trap;
  if (vm::IsVulnerabilityCrash(verify.trap)) {
    report.verdict = Verdict::kTriggered;  // case (i)
    report.type = ClassifyTriggered(sym, p1.bunches);
    report.detail = "poc' crashed T: " + std::string(vm::TrapName(verify.trap)) +
                    " (" + verify.trap_message + ")";
  } else {
    report.verdict = Verdict::kFailure;
    report.type = ResultType::kFailure;
    report.detail = "generated poc' did not reproduce the crash in T";
  }
  report.timings.total_seconds = Seconds(t0, Clock::now());
  return report;
}

VerificationReport VerifyPair(const corpus::Pair& pair,
                              PipelineOptions options) {
  Octopocs pipeline(pair.s, pair.t, pair.shared_functions, pair.poc,
                    std::move(options), pair.t_names);
  return pipeline.Verify();
}

}  // namespace octopocs::core
