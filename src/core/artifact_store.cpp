#include "core/artifact_store.h"

#include "vm/ir.h"

namespace octopocs::core {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}

ArtifactHasher& ArtifactHasher::Bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h1_ = (h1_ ^ p[i]) * kFnvPrime;
    // The second lane sees the byte mixed with the running position so
    // the lanes stay independent under any input.
    h2_ = (h2_ ^ (p[i] + 0x9eULL + (h2_ << 6) + (h2_ >> 2))) * kFnvPrime;
  }
  return *this;
}

ArtifactHasher& ArtifactHasher::U64(std::uint64_t v) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return Bytes(buf, sizeof buf);
}

ArtifactHasher& ArtifactHasher::Str(std::string_view s) {
  U64(s.size());
  return Bytes(s.data(), s.size());
}

ArtifactHasher& ArtifactHasher::Program(const vm::Program& program) {
  Str(program.name);
  U32(program.entry);
  U64(program.functions.size());
  for (const vm::Function& fn : program.functions) {
    Str(fn.name);
    U8(fn.num_params);
    U8(fn.num_regs);
    U64(fn.blocks.size());
    for (const vm::Block& block : fn.blocks) {
      U64(block.instrs.size());
      for (const vm::Instr& ins : block.instrs) {
        U8(static_cast<std::uint8_t>(ins.op));
        U8(ins.a);
        U8(ins.b);
        U8(ins.c);
        U8(ins.width);
        U64(ins.imm);
        U64(ins.args.size());
        for (const vm::Reg r : ins.args) U8(r);
      }
      const vm::Terminator& t = block.term;
      U8(static_cast<std::uint8_t>(t.kind));
      U8(t.cond);
      Bool(t.returns_value);
      U32(t.target);
      U32(t.fallthrough);
    }
  }
  U64(program.rodata.size());
  Bytes(program.rodata.data(), program.rodata.size());
  U64(program.rodata_symbols.size());
  for (const vm::RodataSymbol& sym : program.rodata_symbols) {
    Str(sym.name);
    U64(sym.offset);
    U64(sym.size);
  }
  return *this;
}

ArtifactKey ArtifactHasher::Finish(std::string_view kind) const {
  ArtifactHasher tagged = *this;
  tagged.Str(kind);
  return ArtifactKey{tagged.h1_, tagged.h2_};
}

ArtifactStore::ArtifactStore(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const void> ArtifactStore::GetErased(const ArtifactKey& key,
                                                     std::type_index type) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.type != type) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.value;
}

void ArtifactStore::PutErased(const ArtifactKey& key,
                              std::shared_ptr<const void> value,
                              std::type_index type) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh: last writer wins (values for one key are byte-identical
    // by construction; this only updates recency).
    it->second.value = std::move(value);
    it->second.type = type;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(value), type, lru_.begin()});
  ++stats_.insertions;
}

ArtifactStore::Stats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t ArtifactStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace octopocs::core
