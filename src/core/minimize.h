// PoC minimization (delta debugging over the MiniVM).
//
// The paper observes that reformed PoCs are "often more optimized than
// poc because [they] did not contain unnecessary bytes". This utility
// pushes that further: given any crashing input, it produces a smaller
// input that still triggers the *same* trap class in the *same*
// function — useful both for reporting (smaller repro) and for testing
// (a minimized PoC isolates the crash-relevant bytes).
//
// Strategy: (1) binary-search the shortest crashing prefix (trailing
// bytes are the cheapest cut), then (2) greedy byte zeroing — each
// nonzero byte is set to 0 and kept that way if the crash survives.
// Both steps preserve the (trap kind, crashing function) signature.
#pragma once

#include <cstdint>

#include "support/bytes.h"
#include "vm/interp.h"

namespace octopocs::core {

struct MinimizeOptions {
  vm::ExecOptions exec;
  /// Upper bound on executions spent minimizing.
  std::uint64_t max_runs = 4'096;
};

struct MinimizeResult {
  Bytes poc;                 // the minimized input (still crashes)
  std::uint64_t runs = 0;    // executions spent
  std::size_t original_size = 0;
  std::size_t zeroed_bytes = 0;  // bytes proven irrelevant in place
};

/// Minimizes `poc` against `program`. The input must crash with a
/// vulnerability-class trap; throws std::invalid_argument otherwise.
MinimizeResult MinimizePoc(const vm::Program& program, const Bytes& poc,
                           const MinimizeOptions& options = {});

}  // namespace octopocs::core
