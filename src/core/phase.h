// The phase graph (DESIGN.md §11): the pipeline's control flow as data.
//
// Verify() used to be one monolithic function that interleaved four
// concerns — the paper's phase sequence, wall-clock budgeting, failure
// attribution, and graceful degradation. This header factors the phase
// sequence into first-class Phase objects executed by a small driver
// (RunPhaseGraph), so the cross-cutting policy lives in exactly one
// place each:
//
//   DeadlinePolicy   owns every deadline: the whole-pipeline budget is
//                    anchored once at construction; each phase *group*
//                    anchors its own budget lazily on first use, so the
//                    CFG build and the symbolic run share one P2/P3
//                    budget exactly as the monolith did.
//   PhaseContext     the blackboard between phases: the pair under
//                    verification, the report being filled, the slots
//                    one phase produces and the next consumes, and the
//                    attribution string the exception-containment
//                    boundary in Verify() reads when a phase throws.
//   RunPhaseGraph    runs phases in order; a phase answers kContinue
//                    (next phase), kDone (verdict reached — stop), or
//                    kRetry (re-run me: adaptive θ, solver-budget
//                    retry). Every attempt gets a trace span.
//
// The four phases map onto the paper (§III) as:
//
//   CrashPrimitivePhase   Preprocessing + P1: discover ep on S(poc)'s
//                         crash callstack, then extract crash
//                         primitives by context-aware taint. Failure
//                         attribution transitions "preprocessing" →
//                         "P1" internally (the report's failed_phase
//                         vocabulary is unchanged).
//   GuidingInputPhase     builds T's CFG — the precondition for
//                         backward path finding ("cfg" attribution,
//                         P2/P3 deadline group).
//   CombinePhase          P2+P3: directed symbolic execution with
//                         inline bunch pinning, then the final solve.
//                         Adaptive-θ and solver-budget retries surface
//                         as kRetry.
//   FuzzFallbackPhase     the trace-guided fuzzing rung (DESIGN.md
//                         §16): inert unless fuzz_fallback is on and
//                         CombinePhase dead-ended ("fuzz" attribution,
//                         its own kFuzz deadline group).
//   ConcreteVerifyPhase   P4: run T concretely on poc' and classify.
//
// Phases read and publish origin-side artifacts through an optional
// content-addressed ArtifactStore (core/artifact_store.h); a null store
// means every pair computes everything, byte-identically.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cfg/cfg.h"
#include "core/artifact_store.h"
#include "core/octopocs.h"
#include "support/deadline.h"
#include "symex/executor.h"
#include "taint/crash_primitive.h"

namespace octopocs::core {

enum class PhaseStatus : std::uint8_t {
  kContinue,  // phase succeeded; run the next phase
  kDone,      // the report holds a final verdict; stop the graph
  kRetry,     // re-run this phase (it adjusted its own knobs)
};

/// Deadline groups. cfg and P2/P3 deliberately share kP23: the CFG
/// build is P2's precondition and the paper budgets them together.
/// kFuzz is the fallback rung's own budget — wall clock there only
/// abandons the campaign, it never alters the (execution-counted)
/// search, so the rung's verdict stays reproducible.
enum class DeadlineGroup : std::uint8_t { kPreprocess, kP1, kP23, kP4, kFuzz };

/// Owns every wall-clock budget of one Verify() run. The whole-pipeline
/// deadline starts ticking at construction; a group's own budget starts
/// ticking the first time any phase asks for that group's token, and
/// later requests for the same group see the same anchor (retries and
/// group-mates spend from one budget, they do not refresh it).
class DeadlinePolicy {
 public:
  explicit DeadlinePolicy(const PipelineOptions& options)
      : whole_(options.deadline_ms == 0
                   ? support::Deadline::Never()
                   : support::Deadline::AfterMillis(options.deadline_ms)),
        cancel_flag_(options.cancel_flag),
        budgets_ms_{options.preprocess_deadline_ms, options.p1_deadline_ms,
                    options.p23_deadline_ms, options.p4_deadline_ms,
                    options.fuzz_deadline_ms} {}

  support::CancelToken Token(DeadlineGroup group) {
    const auto i = static_cast<std::size_t>(group);
    if (!anchored_[i]) {
      group_[i] = budgets_ms_[i] == 0
                      ? support::Deadline::Never()
                      : support::Deadline::AfterMillis(budgets_ms_[i]);
      anchored_[i] = true;
    }
    return support::CancelToken(support::Deadline::Sooner(whole_, group_[i]),
                                cancel_flag_);
  }

 private:
  const support::Deadline whole_;
  const std::atomic<bool>* cancel_flag_;
  std::uint64_t budgets_ms_[5];
  support::Deadline group_[5];
  bool anchored_[5] = {false, false, false, false, false};
};

/// The blackboard shared by the phases of one Verify() run.
struct PhaseContext {
  // The pair under verification (borrowed from the Octopocs instance).
  Octopocs& pipeline;
  const vm::Program& s;
  const vm::Program& t;
  const std::vector<std::string>& shared;
  const Bytes& poc;
  const std::map<std::string, std::string>& t_names;
  const PipelineOptions& options;

  VerificationReport& report;
  DeadlinePolicy& deadlines;
  support::Tracer* tracer = nullptr;
  ArtifactStore* artifacts = nullptr;

  // -- Slots: produced by one phase, consumed by later ones -----------------
  /// P1 output (shared with the artifact store on a cache hit).
  std::shared_ptr<const taint::ExtractionResult> primitives;
  /// T's CFG (rehydrated from cached edges on a hit).
  std::optional<cfg::Cfg> graph;

  /// Failure attribution for Verify()'s exception-containment boundary:
  /// always names the phase currently running, in the report's
  /// failed_phase vocabulary ("preprocessing", "P1", "cfg", "P2/P3",
  /// "fuzz", "P4").
  std::string attribution = "preprocessing";

  /// Wall-clock failure: the named phase's deadline (or the kill
  /// switch) tripped before a verdict.
  void FailDeadline(const std::string& which) {
    report.verdict = Verdict::kFailure;
    report.type = ResultType::kFailure;
    report.failed_phase = which;
    report.deadline_expired = true;
    report.detail = "wall-clock deadline expired during " + which;
  }

  /// Tooling failure: the named phase could not decide the pair.
  void FailTool(const std::string& which, std::string detail) {
    report.verdict = Verdict::kFailure;
    report.type = ResultType::kFailure;
    report.failed_phase = which;
    report.detail = std::move(detail);
  }
};

class Phase {
 public:
  virtual ~Phase() = default;
  /// Static-lifetime phase label (also the trace span name).
  virtual const char* name() const = 0;
  virtual PhaseStatus Run(PhaseContext& ctx) = 0;
};

/// Preprocessing + P1: locate ep, extract crash primitives.
class CrashPrimitivePhase : public Phase {
 public:
  const char* name() const override { return "crash_primitive"; }
  PhaseStatus Run(PhaseContext& ctx) override;
};

/// CFG of T — the precondition for backward path finding.
class GuidingInputPhase : public Phase {
 public:
  const char* name() const override { return "guiding_input"; }
  PhaseStatus Run(PhaseContext& ctx) override;
};

/// P2+P3: directed symex, inline combining, final solve. Holds the
/// retry state (doubled θ, doubled solver budget) across kRetry
/// re-entries.
class CombinePhase : public Phase {
 public:
  const char* name() const override { return "combine"; }
  PhaseStatus Run(PhaseContext& ctx) override;

 private:
  std::optional<symex::ExecutorOptions> sym_opts_;
  bool solver_retried_ = false;
};

/// The trace-guided fuzzing fallback rung (DESIGN.md §16). Inert — an
/// immediate kContinue — whenever P2/P3 produced a poc'. It only sees
/// control at all when CombinePhase dead-ended (program-dead or budget
/// exhaustion) with options.fuzz_fallback set: CombinePhase stages its
/// usual dead-end verdict in the report and answers kContinue instead
/// of kDone, and this phase either *upgrades* that staged verdict to
/// kTriggeredByFuzzing (a directed campaign crashed T at ep and a P4
/// re-run confirmed it) or leaves it exactly as staged. Always answers
/// kDone on the fallback path, so ConcreteVerifyPhase never runs on a
/// fuzzed candidate — classification stays the rung's own kFuzzed row.
///
/// By construction the rung can never flip a decided pair: kTriggered
/// ends the graph in P4, and the *proof* verdicts (ep-unreachable,
/// unsat) make CombinePhase answer kDone before this phase exists in
/// the control flow.
class FuzzFallbackPhase : public Phase {
 public:
  const char* name() const override { return "fuzz_fallback"; }
  PhaseStatus Run(PhaseContext& ctx) override;
};

/// P4: concrete verification of poc' and Type-I/II classification.
class ConcreteVerifyPhase : public Phase {
 public:
  const char* name() const override { return "concrete_verify"; }
  PhaseStatus Run(PhaseContext& ctx) override;
};

/// Runs `phases` in order, re-invoking a phase while it answers kRetry
/// and stopping at the first kDone. Emits one trace span per attempt.
void RunPhaseGraph(PhaseContext& ctx, std::span<Phase* const> phases);

}  // namespace octopocs::core
