// Content-addressed artifact store (DESIGN.md §11).
//
// Corpus pairs frequently share their origin program S and PoC — the
// paper's setting is one vulnerable origin fanning out to many targets —
// so every origin-side artifact the pipeline computes (ep discovery,
// crash primitives, a target's CFG edge set) is redundant work when
// recomputed per pair. The store maps a 128-bit content key to an
// immutable artifact; phases consult it before computing and publish
// after.
//
// Keys are content hashes: the full IR structure of the program(s) the
// artifact was derived from, the PoC bytes, and every option that can
// affect the artifact's value (and nothing else — observability knobs
// like the tracer pointer never enter a key). Two Program objects with
// identical structure hash identically, which is what makes cross-run
// and cross-pair reuse work: BuildCorpus() constructs fresh objects on
// every call, but the content — and therefore the key — is stable.
//
// Soundness: an artifact is only stored when it was produced by a
// deterministic, completed computation — never after a tripped deadline/
// cancellation or an injected fault — so a hit returns exactly the bytes
// a recomputation would produce and cached results are byte-identical to
// uncached ones (the invariant the corpus identity test enforces).
//
// The store is thread-safe (VerifyCorpus workers share one instance) and
// bounds memory with LRU eviction.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <typeindex>
#include <vector>

namespace octopocs::vm {
struct Program;
}

namespace octopocs::core {

/// 128-bit content key. Collisions are possible in principle; with a
/// 128-bit state over full program structure they are negligible against
/// every other failure mode of the pipeline.
struct ArtifactKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const ArtifactKey&, const ArtifactKey&) = default;
  friend auto operator<=>(const ArtifactKey&, const ArtifactKey&) = default;
};

/// Incremental FNV-1a-style hasher over two independent 64-bit lanes.
/// Feed every input that can affect the artifact, then Finish() with a
/// kind tag so different artifact types derived from the same inputs
/// can never alias.
class ArtifactHasher {
 public:
  ArtifactHasher& Bytes(const void* data, std::size_t size);
  ArtifactHasher& U64(std::uint64_t v);
  ArtifactHasher& U32(std::uint32_t v) { return U64(v); }
  ArtifactHasher& U8(std::uint8_t v) { return U64(v); }
  ArtifactHasher& Bool(bool v) { return U64(v ? 1 : 0); }
  /// Length-prefixed, so ("ab","c") and ("a","bc") hash differently.
  ArtifactHasher& Str(std::string_view s);
  /// Full structural walk of a MiniVM program: name, entry, every
  /// function/block/instruction/terminator, rodata and its symbols.
  ArtifactHasher& Program(const vm::Program& program);

  ArtifactKey Finish(std::string_view kind) const;

 private:
  std::uint64_t h1_ = 0xcbf29ce484222325ULL;   // FNV-1a offset basis
  std::uint64_t h2_ = 0x84222325cbf29ce4ULL;   // independent lane
};

/// Typed, thread-safe, LRU-bounded map from ArtifactKey to immutable
/// artifacts. Values are shared_ptr<const T>: a hit aliases the stored
/// object, so artifacts must be immutable plain data (no pointers into
/// caller-owned state — see Cfg::ExportEdges for how the CFG qualifies).
class ArtifactStore {
 public:
  /// `capacity` bounds the number of stored artifacts (LRU eviction).
  explicit ArtifactStore(std::size_t capacity = 256);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  /// Returns the stored artifact, or nullptr on miss. A stored value of
  /// a different type counts as a miss (kind tags in keys make this
  /// practically unreachable, but the store never lies about types).
  template <typename T>
  std::shared_ptr<const T> Get(const ArtifactKey& key) {
    return std::static_pointer_cast<const T>(
        GetErased(key, std::type_index(typeid(T))));
  }

  /// Stores (or refreshes) the artifact and returns the shared handle.
  template <typename T>
  std::shared_ptr<const T> Put(const ArtifactKey& key, T value) {
    auto ptr = std::make_shared<const T>(std::move(value));
    PutErased(key, ptr, std::type_index(typeid(T)));
    return ptr;
  }

  Stats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    std::type_index type;
    std::list<ArtifactKey>::iterator lru_pos;
  };

  std::shared_ptr<const void> GetErased(const ArtifactKey& key,
                                        std::type_index type);
  void PutErased(const ArtifactKey& key, std::shared_ptr<const void> value,
                 std::type_index type);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::map<ArtifactKey, Entry> entries_;
  std::list<ArtifactKey> lru_;  // front = most recently used
  Stats stats_;
};

}  // namespace octopocs::core
