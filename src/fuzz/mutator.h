// AFL-style mutation engine.
//
// Implements the deterministic stages (bit flips, byte flips, arithmetic
// ±, interesting values) and a havoc stage of stacked random operators.
// Length-preserving operators only: AFL's block insert/delete stages are
// intentionally omitted because the corpus formats are offset-rigid —
// the same reason the paper's fuzzers struggled to re-form PoCs across
// containers (see DESIGN.md §2 and EXPERIMENTS.md Table V notes).
#pragma once

#include <cstdint>
#include <vector>

#include "support/bytes.h"
#include "support/rng.h"

namespace octopocs::fuzz {

class Mutator {
 public:
  explicit Mutator(std::uint64_t seed) : rng_(seed) {}

  /// Pins byte offsets: every candidate this mutator emits afterwards
  /// preserves the input's value at each pinned offset verbatim.
  /// Deterministic-stage mutations that would touch a pinned byte are
  /// skipped; havoc operators re-draw their offset a bounded number of
  /// times and drop the operator if they keep landing on pins. The
  /// directed fallback pins P1's bunch bytes this way so mutation
  /// effort goes into the container around the crash primitives, never
  /// into the primitives themselves. An empty pin set leaves the
  /// mutator byte-identical to the unpinned baseline.
  void PinOffsets(const std::vector<std::uint32_t>& offsets);

  bool Pinned(std::size_t offset) const {
    return offset < pinned_.size() && pinned_[offset];
  }

  /// The deterministic stage for one seed: every queued mutation of the
  /// classic bitflip/arith/interesting sequence, bounded by `budget`
  /// outputs. Deterministic given the input.
  std::vector<Bytes> DeterministicStage(const Bytes& input,
                                        std::size_t budget);

  /// One havoc output: 1-8 stacked random byte-local operators (bit
  /// flip, byte set, arith, interesting value). `other` is accepted for
  /// interface stability but unused — see the implementation note on
  /// why chunk operators are omitted.
  Bytes Havoc(const Bytes& input, const Bytes& other);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
  std::vector<bool> pinned_;  // empty = nothing pinned
};

}  // namespace octopocs::fuzz
