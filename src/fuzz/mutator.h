// AFL-style mutation engine.
//
// Implements the deterministic stages (bit flips, byte flips, arithmetic
// ±, interesting values) and a havoc stage of stacked random operators.
// Length-preserving operators only: AFL's block insert/delete stages are
// intentionally omitted because the corpus formats are offset-rigid —
// the same reason the paper's fuzzers struggled to re-form PoCs across
// containers (see DESIGN.md §2 and EXPERIMENTS.md Table V notes).
#pragma once

#include <cstdint>
#include <vector>

#include "support/bytes.h"
#include "support/rng.h"

namespace octopocs::fuzz {

class Mutator {
 public:
  explicit Mutator(std::uint64_t seed) : rng_(seed) {}

  /// The deterministic stage for one seed: every queued mutation of the
  /// classic bitflip/arith/interesting sequence, bounded by `budget`
  /// outputs. Deterministic given the input.
  std::vector<Bytes> DeterministicStage(const Bytes& input,
                                        std::size_t budget);

  /// One havoc output: 1-8 stacked random byte-local operators (bit
  /// flip, byte set, arith, interesting value). `other` is accepted for
  /// interface stability but unused — see the implementation note on
  /// why chunk operators are omitted.
  Bytes Havoc(const Bytes& input, const Bytes& other);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

}  // namespace octopocs::fuzz
