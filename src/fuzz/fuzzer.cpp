#include "fuzz/fuzzer.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace octopocs::fuzz {

GreyboxFuzzer::GreyboxFuzzer(const vm::Program& target, vm::FuncId target_fn,
                             std::vector<Bytes> seeds, FuzzOptions options)
    : target_(target),
      target_fn_(target_fn),
      options_(options),
      decoded_target_(vm::DecodeProgram(target, /*fuse=*/true)),
      initial_seeds_(std::move(seeds)),
      mutator_(options.rng_seed) {
  mutator_.PinOffsets(options.pinned_offsets);
}

double GreyboxFuzzer::Progress() const {
  return options_.max_execs == 0
             ? 1.0
             : static_cast<double>(execs_) / options_.max_execs;
}

GreyboxFuzzer::ExecOutcome GreyboxFuzzer::Execute(const Bytes& input) {
  ExecOutcome outcome;
  CoverageObserver cov;
  vm::ExecOptions exec;
  exec.fuel = options_.exec_fuel;
  exec.predecoded = &decoded_target_;
  vm::Interpreter interp(target_, input, exec);
  interp.AddObserver(&cov);
  const vm::ExecResult run = interp.Run();
  ++execs_;

  outcome.trap = run.trap;
  outcome.path_hash = CoverageMap::PathHash(cov.edges());
  outcome.interesting = coverage_.Merge(cov.edges()) > 0;
  ++path_frequency_[outcome.path_hash];

  if (distance_map_) {
    // Mean finite block-entry distance over the functions entered: the
    // closer the trace came to the target, the smaller the value.
    double sum = 0;
    std::size_t n = 0;
    for (const vm::FuncId fn : cov.call_trace()) {
      if (const auto d = distance_map_->Distance(fn, 0)) {
        sum += *d;
        ++n;
      }
    }
    outcome.distance = n == 0 ? -1 : sum / static_cast<double>(n);
    if (outcome.distance >= 0 && (result_.best_distance < 0 ||
                                  outcome.distance < result_.best_distance)) {
      result_.best_distance = outcome.distance;
    }
  }

  if (vm::IsVulnerabilityCrash(run.trap)) {
    for (const vm::BacktraceEntry& frame : run.backtrace) {
      if (frame.fn == target_fn_) {
        outcome.verified = true;
        if (!result_.verified) {
          result_.verified = true;
          result_.execs_to_crash = execs_;
          result_.crashing_input = input;
          result_.trap = run.trap;
        }
        break;
      }
    }
  }
  return outcome;
}

FuzzResult GreyboxFuzzer::Run() {
  const auto start = std::chrono::steady_clock::now();

  // Queue the initial seeds.
  for (const Bytes& seed : initial_seeds_) {
    const ExecOutcome outcome = Execute(seed);
    Seed s;
    s.data = seed;
    s.path_hash = outcome.path_hash;
    s.distance = outcome.distance;
    queue_.push_back(std::move(s));
    if (result_.verified) break;
  }

  std::size_t cursor = 0;
  while (!result_.verified && execs_ < options_.max_execs &&
         !queue_.empty() && !(result_.cancelled = options_.cancel.Check())) {
    Seed& seed = queue_[cursor % queue_.size()];
    ++cursor;
    ++seed.times_chosen;

    std::vector<Bytes> batch;
    if (!seed.deterministic_done && !options_.skip_deterministic) {
      batch = mutator_.DeterministicStage(seed.data, options_.det_budget);
    }
    seed.deterministic_done = true;
    const std::uint64_t energy = Energy(seed);
    for (std::uint64_t i = 0; i < energy; ++i) {
      const Bytes& other =
          queue_[mutator_.rng().Below(queue_.size())].data;
      batch.push_back(mutator_.Havoc(seed.data, other));
    }

    for (const Bytes& input : batch) {
      if (result_.verified || execs_ >= options_.max_execs ||
          (result_.cancelled = options_.cancel.ShouldStop())) {
        break;
      }
      const ExecOutcome outcome = Execute(input);
      if (outcome.interesting) {
        Seed s;
        s.data = input;
        s.path_hash = outcome.path_hash;
        s.distance = outcome.distance;
        queue_.push_back(std::move(s));
      }
    }
  }

  result_.execs = execs_;
  result_.corpus_size = queue_.size();
  result_.edges_covered = coverage_.count();
  result_.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result_;
}

// ---------------------------------------------------------------------------
// AFLFast
// ---------------------------------------------------------------------------

AflFastFuzzer::AflFastFuzzer(const vm::Program& target, vm::FuncId target_fn,
                             std::vector<Bytes> seeds, FuzzOptions options)
    : GreyboxFuzzer(target, target_fn, std::move(seeds), options),
      base_energy_(options.base_energy) {}

std::uint64_t AflFastFuzzer::Energy(const Seed& seed) {
  // FAST schedule: p(i) = min(α · 2^s(i) / f(i), M). α is the base
  // energy, s the times this seed was picked, f its path frequency.
  const std::uint64_t f =
      std::max<std::uint64_t>(1, path_frequency_[seed.path_hash]);
  const std::uint64_t s = std::min<std::uint64_t>(seed.times_chosen, 16);
  const double raw =
      static_cast<double>(base_energy_) * std::pow(2.0, double(s)) /
      static_cast<double>(f);
  return static_cast<std::uint64_t>(
      std::min<double>(raw, 16.0 * base_energy_));
}

// ---------------------------------------------------------------------------
// AFLGo
// ---------------------------------------------------------------------------

AflGoFuzzer::AflGoFuzzer(const vm::Program& target, vm::FuncId target_fn,
                         const cfg::Cfg& graph, std::vector<Bytes> seeds,
                         FuzzOptions options)
    : AflGoFuzzer(target, target_fn, graph.BackwardReachability(target_fn),
                  std::move(seeds), [](FuzzOptions o) {
                    // AFLGo evaluations run with -d (havoc only).
                    o.skip_deterministic = true;
                    return o;
                  }(options)) {}

AflGoFuzzer::AflGoFuzzer(const vm::Program& target, vm::FuncId target_fn,
                         cfg::DistanceMap distances, std::vector<Bytes> seeds,
                         FuzzOptions options)
    : GreyboxFuzzer(target, target_fn, std::move(seeds), options),
      base_energy_(options.base_energy) {
  distance_map_ = std::move(distances);
}

std::uint64_t AflGoFuzzer::Energy(const Seed& seed) {
  // Simulated-annealing schedule (APFL in the AFLGo paper): with
  // progress t and normalized seed distance d̄ ∈ [0,1],
  //   energy = base · 2^( (1 - d̄)·(1 - T) · k - T·k/2 ),  T = 1 - t.
  // Early on (T≈1) everything gets throttled equally (exploration);
  // late (T≈0) close seeds get exponentially more energy. Seeds with no
  // finite distance (never approached the target) are maximally far.
  if (seed.distance >= 0) {
    max_seen_distance_ = std::max(max_seen_distance_, seed.distance);
  }
  const double d_norm =
      seed.distance < 0 ? 1.0 : seed.distance / max_seen_distance_;
  const double t = Progress();
  const double temperature = 1.0 - t;
  constexpr double k = 10.0;
  const double exponent =
      (1.0 - d_norm) * (1.0 - temperature) * k - temperature * k / 2.0;
  const double raw =
      static_cast<double>(base_energy_) * std::pow(2.0, exponent);
  return static_cast<std::uint64_t>(
      std::clamp<double>(raw, 1.0, 16.0 * static_cast<double>(base_energy_)));
}

}  // namespace octopocs::fuzz
