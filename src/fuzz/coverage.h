// Edge-coverage instrumentation for greybox fuzzing (the AFL shared
// bitmap, rebuilt over MiniVM observer events).
//
// Block transfers and call entries hash into a 64 KiB bucket map; a
// fuzzing run is "interesting" when it hits a bucket no previous run
// hit (AFL's new-edge rule, without the hit-count bucketing refinement,
// which none of the Table V experiments depend on).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "vm/interp.h"

namespace octopocs::fuzz {

inline constexpr std::size_t kMapSize = 1 << 16;

/// Per-execution trace recorder.
class CoverageObserver : public vm::ExecutionObserver {
 public:
  void OnBlockTransfer(vm::FuncId fn, vm::BlockId from,
                       vm::BlockId to) override {
    Record((static_cast<std::uint64_t>(fn) << 40) ^
           (static_cast<std::uint64_t>(from) << 20) ^ to);
  }
  void OnCallEnter(vm::FuncId callee, std::span<const std::uint64_t>,
                   const vm::Instr*) override {
    Record(0x9E3779B97F4A7C15ULL ^ callee);
    call_trace_.push_back(callee);
  }

  const std::vector<std::uint16_t>& edges() const { return edges_; }
  /// Functions entered, in order — AFLGo's distance metric samples this.
  const std::vector<vm::FuncId>& call_trace() const { return call_trace_; }

 private:
  void Record(std::uint64_t key) {
    key = (key ^ (key >> 33)) * 0xFF51AFD7ED558CCDULL;
    key = (key ^ (key >> 33)) * 0xC4CEB9FE1A85EC53ULL;
    edges_.push_back(static_cast<std::uint16_t>(key & (kMapSize - 1)));
  }

  std::vector<std::uint16_t> edges_;
  std::vector<vm::FuncId> call_trace_;
};

/// Global coverage state across a campaign.
class CoverageMap {
 public:
  CoverageMap() { hit_.fill(false); }

  /// Merges an execution trace; returns the number of new buckets.
  std::size_t Merge(const std::vector<std::uint16_t>& edges) {
    std::size_t fresh = 0;
    for (const std::uint16_t e : edges) {
      if (!hit_[e]) {
        hit_[e] = true;
        ++fresh;
        ++count_;
      }
    }
    return fresh;
  }

  std::size_t count() const { return count_; }

  /// Stable 64-bit hash of an execution's edge multiset — AFLFast keys
  /// its path-frequency table on this.
  static std::uint64_t PathHash(const std::vector<std::uint16_t>& edges) {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const std::uint16_t e : edges) {
      h = (h ^ e) * 0x100000001B3ULL;
    }
    return h;
  }

 private:
  std::array<bool, kMapSize> hit_;
  std::size_t count_ = 0;
};

}  // namespace octopocs::fuzz
