#include "fuzz/directed.h"

namespace octopocs::fuzz {

DirectedFuzzResult RunDirectedFuzz(const vm::Program& target,
                                   vm::FuncId target_fn,
                                   const cfg::DistanceMap& distances,
                                   const Bytes& seed,
                                   const DirectedFuzzOptions& options) {
  FuzzOptions fuzz;
  fuzz.max_execs = options.max_execs;
  fuzz.exec_fuel = options.exec_fuel;
  fuzz.rng_seed = options.rng_seed;
  fuzz.det_budget = options.det_budget;
  fuzz.skip_deterministic = false;
  fuzz.base_energy = options.base_energy;
  fuzz.pinned_offsets = options.pinned_offsets;
  fuzz.cancel = options.cancel;

  AflGoFuzzer fuzzer(target, target_fn, distances, {seed}, fuzz);
  const FuzzResult run = fuzzer.Run();

  DirectedFuzzResult out;
  out.crash_found = run.verified;
  out.crashing_input = run.crashing_input;
  out.trap = run.trap;
  out.execs = run.execs;
  out.execs_to_crash = run.execs_to_crash;
  out.best_distance = run.best_distance;
  out.corpus_size = run.corpus_size;
  out.edges_covered = run.edges_covered;
  out.cancelled = run.cancelled;
  return out;
}

}  // namespace octopocs::fuzz
