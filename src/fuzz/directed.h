// DirectedFuzz: the trace-guided fuzzing library the pipeline's fallback
// rung drives (DESIGN.md §16).
//
// The Table V fuzzers in fuzzer.h reproduce published baselines and stay
// untouched; this front door composes the same machinery for a different
// job — recovering a verdict when directed symbolic execution went
// program-dead or exhausted its budgets. Three inputs make it "directed
// by the historical trace" in the TransferFuzz sense:
//
//   seed        the original PoC (it crashed S, so its container
//               structure is known-good),
//   pins        P1's bunch byte offsets — the crash primitives are
//               *preserved* and mutation effort goes into the container
//               around them,
//   distances   the backward distance-to-ep map the pipeline's CFG
//               phase already built — candidates that trace closer to
//               ep earn exponentially more energy (AFLGo annealing).
//
// Determinism contract: with a fixed rng seed and an execution budget
// the campaign is a pure function of (target, seed, pins, distances) —
// wall clock only ever *abandons* it via the cancel token, never alters
// which candidate crashes first. That is what lets the fallback verdict
// be byte-reproducible and CI-gated like the backend-identity legs.
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/cfg.h"
#include "fuzz/fuzzer.h"
#include "support/bytes.h"
#include "support/deadline.h"
#include "vm/interp.h"

namespace octopocs::fuzz {

struct DirectedFuzzOptions {
  /// Execution budget — the determinism-bearing bound.
  std::uint64_t max_execs = 200'000;
  /// Per-execution instruction fuel. Higher than the Table V baselines:
  /// fallback targets often spend a long concrete loop before reaching
  /// ep (that is usually why symex died there).
  std::uint64_t exec_fuel = 1'000'000;
  std::uint64_t rng_seed = 1;
  /// Deterministic-stage output cap per seed. The fallback keeps the
  /// deterministic stage on (unlike the -d baselines): walking
  /// interesting-value writes over the unpinned header bytes are what
  /// crack length/count fields reproducibly.
  std::size_t det_budget = 4'096;
  std::uint64_t base_energy = 64;
  /// P1 bunch byte offsets (poc coordinates) the mutator must preserve.
  std::vector<std::uint32_t> pinned_offsets;
  /// Wall-clock abandon switch (deadline group kFuzz + the corpus kill
  /// switch). Tripping never changes the search order — the campaign is
  /// simply cut short and reports cancelled.
  support::CancelToken cancel;
};

struct DirectedFuzzResult {
  bool crash_found = false;  // vulnerability crash with ep on the stack
  Bytes crashing_input;
  vm::TrapKind trap = vm::TrapKind::kNone;
  std::uint64_t execs = 0;
  std::uint64_t execs_to_crash = 0;
  /// Closest mean distance-to-ep any execution achieved (-1: none).
  double best_distance = -1;
  std::size_t corpus_size = 0;
  std::size_t edges_covered = 0;
  bool cancelled = false;
};

/// Runs one directed campaign against `target`, seeking a vulnerability
/// crash with `target_fn` (ep) on the callstack. `distances` is borrowed
/// for the duration of the call.
DirectedFuzzResult RunDirectedFuzz(const vm::Program& target,
                                   vm::FuncId target_fn,
                                   const cfg::DistanceMap& distances,
                                   const Bytes& seed,
                                   const DirectedFuzzOptions& options);

}  // namespace octopocs::fuzz
