#include "fuzz/mutator.h"

namespace octopocs::fuzz {

namespace {

constexpr std::uint8_t kInteresting8[] = {0,    1,    16,   32,  64,
                                          100,  127,  128,  255, 0x2C,
                                          0x3B, 0xD8, 0xD9};
constexpr std::uint16_t kInteresting16[] = {0,      1,     256,   512,
                                            0x1000, 0x7FFF, 0x8000, 0xFFFF};

}  // namespace

void Mutator::PinOffsets(const std::vector<std::uint32_t>& offsets) {
  for (const std::uint32_t off : offsets) {
    if (off >= pinned_.size()) pinned_.resize(off + 1, false);
    pinned_[off] = true;
  }
}

std::vector<Bytes> Mutator::DeterministicStage(const Bytes& input,
                                               std::size_t budget) {
  std::vector<Bytes> out;
  if (input.empty()) return out;
  auto emit = [&](Bytes b) {
    if (out.size() < budget) out.push_back(std::move(b));
  };

  // Walking bit flips.
  for (std::size_t bit = 0; bit < input.size() * 8 && out.size() < budget;
       ++bit) {
    if (Pinned(bit / 8)) continue;
    Bytes b = input;
    b[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    emit(std::move(b));
  }
  // Byte flips.
  for (std::size_t i = 0; i < input.size() && out.size() < budget; ++i) {
    if (Pinned(i)) continue;
    Bytes b = input;
    b[i] ^= 0xFF;
    emit(std::move(b));
  }
  // Arithmetic ±1..35 on bytes.
  for (std::size_t i = 0; i < input.size() && out.size() < budget; ++i) {
    if (Pinned(i)) continue;
    for (int delta = 1; delta <= 35 && out.size() < budget; ++delta) {
      Bytes plus = input;
      plus[i] = static_cast<std::uint8_t>(plus[i] + delta);
      emit(std::move(plus));
      Bytes minus = input;
      minus[i] = static_cast<std::uint8_t>(minus[i] - delta);
      emit(std::move(minus));
    }
  }
  // Interesting byte values.
  for (std::size_t i = 0; i < input.size() && out.size() < budget; ++i) {
    if (Pinned(i)) continue;
    for (const std::uint8_t v : kInteresting8) {
      if (out.size() >= budget) break;
      Bytes b = input;
      b[i] = v;
      emit(std::move(b));
    }
  }
  // Interesting 16-bit values (little-endian).
  for (std::size_t i = 0; i + 1 < input.size() && out.size() < budget; ++i) {
    if (Pinned(i) || Pinned(i + 1)) continue;
    for (const std::uint16_t v : kInteresting16) {
      if (out.size() >= budget) break;
      Bytes b = input;
      b[i] = static_cast<std::uint8_t>(v);
      b[i + 1] = static_cast<std::uint8_t>(v >> 8);
      emit(std::move(b));
    }
  }
  return out;
}

Bytes Mutator::Havoc(const Bytes& input, const Bytes& other) {
  // Byte-local operators only. AFL's chunk copy/splice/insert/delete
  // operators are omitted deliberately: MiniVM containers embed their
  // streams *verbatim* (real PDF/JPEG containers compress them), so a
  // single chunk-copy could strip a container in one step — a shortcut
  // the paper's fuzzers demonstrably did not have. See EXPERIMENTS.md,
  // Table V notes.
  (void)other;
  Bytes b = input;
  if (b.empty()) return b;
  const std::uint64_t ops = 1 + rng_.Below(8);
  for (std::uint64_t op = 0; op < ops; ++op) {
    std::size_t i = rng_.Below(b.size());
    if (!pinned_.empty()) {
      // Bounded re-draw keeps the operator off pinned bytes without
      // biasing which unpinned byte it lands on; a fully-pinned input
      // degrades to emitting the seed unchanged.
      for (int tries = 0; Pinned(i) && tries < 32; ++tries) {
        i = rng_.Below(b.size());
      }
      if (Pinned(i)) continue;
    }
    switch (rng_.Below(4)) {
      case 0:  // bit flip
        b[i] ^= static_cast<std::uint8_t>(1u << rng_.Below(8));
        break;
      case 1:  // random byte
        b[i] = static_cast<std::uint8_t>(rng_.Next());
        break;
      case 2:  // interesting byte
        b[i] = kInteresting8[rng_.Below(std::size(kInteresting8))];
        break;
      case 3: {  // arithmetic
        const int delta = static_cast<int>(rng_.Range(1, 35));
        b[i] = static_cast<std::uint8_t>(
            rng_.Chance(1, 2) ? b[i] + delta : b[i] - delta);
        break;
      }
    }
  }
  return b;
}

}  // namespace octopocs::fuzz
