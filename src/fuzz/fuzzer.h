// Greybox fuzzing baselines for Table V.
//
// AflFastFuzzer reproduces AFLFast's search strategy: coverage-guided
// queue culling with the FAST power schedule — energy grows
// exponentially with how often a seed was fuzzed (2^s) and shrinks with
// how often its path was exercised (1/f), which focuses effort on
// rarely-hit paths (Böhme et al., "Coverage-based Greybox Fuzzing as
// Markov Chain").
//
// AflGoFuzzer reproduces AFLGo's directed strategy: each seed gets a
// distance to the target function (mean block-level distance over its
// call trace, from the same backward-reachability map OCTOPOCS uses)
// and a simulated-annealing schedule shifts energy toward close seeds
// as the time budget burns down (Böhme et al., "Directed Greybox
// Fuzzing").
//
// Success criterion (matching the paper's "verify the propagated
// vulnerability"): a vulnerability-class crash whose callstack includes
// the target shared function.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cfg/cfg.h"
#include "fuzz/coverage.h"
#include "fuzz/mutator.h"
#include "support/bytes.h"
#include "support/deadline.h"
#include "vm/fusion.h"
#include "vm/interp.h"

namespace octopocs::fuzz {

struct FuzzOptions {
  /// Execution budget — the scaled-down analog of the paper's 20 hours.
  std::uint64_t max_execs = 200'000;
  std::uint64_t exec_fuel = 100'000;
  std::uint64_t rng_seed = 1;
  /// Deterministic-stage output cap per seed.
  std::size_t det_budget = 4'096;
  /// Skip the deterministic stages (AFL's -d). Directed-fuzzing
  /// evaluations conventionally run with -d; AflGoFuzzer's CFG-taking
  /// constructor sets this to match the Table V baselines.
  bool skip_deterministic = false;
  /// Base havoc energy per queue cycle.
  std::uint64_t base_energy = 64;
  /// Byte offsets the mutator must never change (P1 bunch pins). Empty
  /// leaves the campaign byte-identical to the unpinned baseline.
  std::vector<std::uint32_t> pinned_offsets;
  /// Cooperative stop: polled between executions. The default token
  /// never trips, so the budget alone bounds the campaign — which is
  /// what keeps a seeded campaign reproducible (the deadline merely
  /// abandons it, it never changes which input crashes).
  support::CancelToken cancel;
};

struct FuzzResult {
  bool verified = false;      // target-function crash found
  std::uint64_t execs = 0;    // executions performed
  std::uint64_t execs_to_crash = 0;
  double elapsed_seconds = 0;
  Bytes crashing_input;
  vm::TrapKind trap = vm::TrapKind::kNone;
  std::size_t corpus_size = 0;
  std::size_t edges_covered = 0;
  /// Closest mean distance-to-target observed (directed runs; -1 when
  /// no trace ever had a finite distance or no distance map was set).
  double best_distance = -1;
  /// The cancel token tripped before the execution budget ran out.
  bool cancelled = false;
};

/// Shared campaign machinery; the power schedule is the strategy point.
class GreyboxFuzzer {
 public:
  GreyboxFuzzer(const vm::Program& target, vm::FuncId target_fn,
                std::vector<Bytes> seeds, FuzzOptions options);
  virtual ~GreyboxFuzzer() = default;

  FuzzResult Run();

 protected:
  struct Seed {
    Bytes data;
    std::uint64_t path_hash = 0;
    std::uint64_t times_chosen = 0;  // s(i)
    double distance = -1;            // AFLGo only; -1 = unknown/infinite
    bool deterministic_done = false;
  };

  /// Number of havoc mutations to spend on `seed` this cycle.
  virtual std::uint64_t Energy(const Seed& seed) = 0;

  /// Campaign progress in [0, 1] — drives AFLGo's annealing.
  double Progress() const;

  const std::vector<Seed>& queue() const { return queue_; }

  std::map<std::uint64_t, std::uint64_t> path_frequency_;  // f(path)

  /// Optional distance map (AFLGo).
  std::optional<cfg::DistanceMap> distance_map_;
  const vm::Program& target_;
  vm::FuncId target_fn_;

 private:
  struct ExecOutcome {
    bool interesting = false;
    bool verified = false;
    std::uint64_t path_hash = 0;
    double distance = -1;
    vm::TrapKind trap = vm::TrapKind::kNone;
  };

  ExecOutcome Execute(const Bytes& input);

  FuzzOptions options_;
  /// Decoded once per campaign; every Execute() reuses it instead of
  /// re-running the decode/fusion pass per input.
  vm::DecodedProgram decoded_target_;
  std::vector<Seed> queue_;
  std::vector<Bytes> initial_seeds_;
  CoverageMap coverage_;
  Mutator mutator_;
  std::uint64_t execs_ = 0;
  FuzzResult result_;
};

/// AFLFast: FAST power schedule, no direction.
class AflFastFuzzer : public GreyboxFuzzer {
 public:
  AflFastFuzzer(const vm::Program& target, vm::FuncId target_fn,
                std::vector<Bytes> seeds, FuzzOptions options = {});

 protected:
  std::uint64_t Energy(const Seed& seed) override;

 private:
  std::uint64_t base_energy_;
};

/// AFLGo: distance-annealed power schedule over the same machinery.
/// The distance map comes from the target program's CFG — built the
/// same way OCTOPOCS builds it.
class AflGoFuzzer : public GreyboxFuzzer {
 public:
  /// Table V baseline shape: derives the distance map from `graph` and
  /// runs with -d (havoc only), matching AFLGo's evaluation setup.
  AflGoFuzzer(const vm::Program& target, vm::FuncId target_fn,
              const cfg::Cfg& graph, std::vector<Bytes> seeds,
              FuzzOptions options = {});

  /// Directed-library shape: the caller supplies an already-computed
  /// backward distance map (the pipeline exports the one its CFG phase
  /// built rather than rebuilding it) and decides the stage mix via
  /// `options` — the fallback rung keeps the deterministic stage on so
  /// a fixed seed cracks structured headers reproducibly.
  AflGoFuzzer(const vm::Program& target, vm::FuncId target_fn,
              cfg::DistanceMap distances, std::vector<Bytes> seeds,
              FuzzOptions options = {});

 protected:
  std::uint64_t Energy(const Seed& seed) override;

 private:
  std::uint64_t base_energy_;
  double max_seen_distance_ = 1;
};

}  // namespace octopocs::fuzz
