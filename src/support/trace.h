// Structured tracing: span begin/end and counter events with a JSONL sink.
//
// The pipeline (DESIGN.md §11) threads one Tracer through every layer —
// the phase driver opens a span per phase attempt, the symbolic executor
// emits solver/steal counters, VerifyCorpus wraps each pair in a span —
// and the CLI serialises the merged event stream to a JSONL file
// (--trace-out). The tracer replaces ad-hoc printf plumbing as the
// transport for per-phase wall time, solver hit-kind counters, frontier
// steal counts and artifact-cache hits.
//
// Concurrency model: each thread appends to its own chunked buffer, so
// the hot path (Begin/End/Counter) takes no lock — appends write into a
// fixed-size chunk slot and publish it with a release store. A mutex is
// taken only when a thread registers its buffer (once per thread per
// tracer) or allocates a fresh chunk (once per kChunkEvents events).
// Snapshot() merges every buffer into one stream ordered by a global
// sequence number, so cross-thread ordering is stable and reproducible
// within one process run.
//
// Event names must have static storage duration (string literals): the
// tracer stores the pointer, not a copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace octopocs::support {

enum class TraceEventKind : std::uint8_t { kBegin, kEnd, kCounter };

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kCounter;
  const char* name = "";     // static lifetime; never owned
  std::uint32_t tid = 0;     // dense per-tracer thread index
  std::uint64_t seq = 0;     // global order across threads
  std::uint64_t ts_ns = 0;   // nanoseconds since the tracer's epoch
  std::int64_t value = 0;    // counter value / optional span argument
};

class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span. `arg` is an optional argument rendered into the
  /// event (e.g. a retry attempt number or a pair index).
  void Begin(const char* name, std::int64_t arg = 0);
  /// Closes the innermost span opened under `name` on this thread.
  void End(const char* name, std::int64_t arg = 0);
  /// Records a point-in-time counter sample.
  void Counter(const char* name, std::int64_t value);

  /// Merged view of every thread's events, sorted by sequence number.
  /// Safe to call while other threads trace: events published before the
  /// call are included, racing appends may or may not be.
  std::vector<TraceEvent> Snapshot() const;

  /// Serialises Snapshot() as one JSON object per line:
  ///   {"type":"begin","name":"P1","tid":0,"seq":3,"ts_ns":124,"arg":0}
  ///   {"type":"counter","name":"x","tid":1,"seq":4,"ts_ns":130,"value":7}
  void WriteJsonl(std::ostream& os) const;
  /// WriteJsonl into `path`; returns false if the file cannot be opened.
  bool WriteJsonlFile(const std::string& path) const;

  /// Total events captured so far (approximate while tracing is live).
  std::size_t event_count() const;

 private:
  static constexpr std::size_t kChunkEvents = 1024;

  struct Chunk {
    TraceEvent events[kChunkEvents];
    std::atomic<std::size_t> used{0};  // published with release stores
  };

  /// Single-producer buffer: only the owning thread appends.
  struct ThreadBuffer {
    std::uint32_t tid = 0;
    mutable std::mutex chunks_mu;  // guards the chunk *list*, not slots
    std::vector<std::unique_ptr<Chunk>> chunks;

    void Append(const TraceEvent& event);
  };

  void Record(TraceEventKind kind, const char* name, std::int64_t value);
  ThreadBuffer& LocalBuffer();

  const std::uint64_t tracer_id_;  // process-unique; keys thread caches
  std::uint64_t epoch_ns_ = 0;     // steady_clock at construction
  std::atomic<std::uint64_t> seq_{0};
  mutable std::mutex buffers_mu_;  // guards registration + enumeration
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span guard; tolerates a null tracer so call sites stay branch-free.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name, std::int64_t arg = 0)
      : tracer_(tracer), name_(name) {
    if (tracer_ != nullptr) tracer_->Begin(name_, arg);
  }
  ~TraceSpan() {
    if (tracer_ != nullptr) tracer_->End(name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
};

}  // namespace octopocs::support
