// Wall-clock deadlines and cheap cooperative cancellation.
//
// The pipeline's phases all contain open-ended loops — the concrete
// interpreter, the symbolic step loop, the CSP search — and at corpus
// scale one pathological pair must not be able to stall the whole run.
// Cancellation here is cooperative: every hot loop polls a CancelToken,
// which trips either when its monotonic-clock Deadline passes or when an
// external flag (the corpus watchdog's kill switch) is raised.
//
// The poll is engineered to cost ~nothing on the hot path: ShouldStop()
// increments a local counter and only consults the clock / the atomic
// flag once every kStride calls, so a tight interpreter loop pays one
// increment-and-mask per instruction. Once tripped a token stays
// tripped (sticky), so callers may poll freely after reporting.
//
// Deadlines compose: a per-phase budget is Deadline::Sooner(pipeline
// deadline, phase deadline), which is how PipelineOptions turns one
// whole-pipeline wall-clock budget into per-phase budgets.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace octopocs::support {

/// A point in monotonic time after which work should stop. The default
/// instance never expires.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  // never expires

  static Deadline Never() { return Deadline(); }

  static Deadline AfterMillis(std::uint64_t ms) {
    Deadline d;
    d.unlimited_ = false;
    d.at_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  static Deadline At(Clock::time_point tp) {
    Deadline d;
    d.unlimited_ = false;
    d.at_ = tp;
    return d;
  }

  /// The tighter of the two deadlines.
  static Deadline Sooner(const Deadline& a, const Deadline& b) {
    if (a.unlimited_) return b;
    if (b.unlimited_) return a;
    return At(a.at_ < b.at_ ? a.at_ : b.at_);
  }

  bool unlimited() const { return unlimited_; }

  bool Expired() const { return !unlimited_ && Clock::now() >= at_; }

  /// Seconds until expiry; negative once expired, +inf never expires.
  double RemainingSeconds() const {
    if (unlimited_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ - Clock::now()).count();
  }

 private:
  Clock::time_point at_{};
  bool unlimited_ = true;
};

/// Pollable stop condition: a Deadline plus an optional shared kill
/// switch. Value type — each loop owns its copy (the poll counter is
/// per-copy; the flag is shared). The referenced flag must outlive
/// every token copy that points at it.
class CancelToken {
 public:
  CancelToken() = default;

  explicit CancelToken(Deadline deadline,
                       const std::atomic<bool>* flag = nullptr)
      : deadline_(deadline), flag_(flag) {}

  /// True when this token can ever trip — lets callers skip bookkeeping
  /// entirely for the common "no deadline configured" case.
  bool CanExpire() const {
    return !deadline_.unlimited() || flag_ != nullptr;
  }

  /// Hot-loop poll: a counter increment on most calls; the clock and the
  /// flag are consulted once every kStride calls. Sticky once tripped.
  bool ShouldStop() {
    if (stopped_) return true;
    if (!CanExpire()) return false;
    if ((++polls_ & (kStride - 1)) != 0) return false;
    return Check();
  }

  /// Immediate check (phase boundaries, failure attribution). Sticky.
  bool Check() {
    if (stopped_) return true;
    if (flag_ != nullptr && flag_->load(std::memory_order_relaxed)) {
      stopped_ = true;
    } else if (deadline_.Expired()) {
      stopped_ = true;
    }
    return stopped_;
  }

  const Deadline& deadline() const { return deadline_; }

 private:
  static constexpr std::uint32_t kStride = 512;

  Deadline deadline_;
  const std::atomic<bool>* flag_ = nullptr;
  std::uint32_t polls_ = 0;
  bool stopped_ = false;
};

}  // namespace octopocs::support
