// Sandboxed child processes with resource caps and kill-on-deadline.
//
// The isolation layer (DESIGN.md §12) runs each corpus pair in its own
// forked worker so that a misbehaving subject — an OOMing symbolic
// state, a wild store in the VM, an injected tooling abort — takes down
// one process instead of the whole corpus run. This header is the
// primitive underneath the supervisor: fork/exec an argv, cap the child
// with RLIMIT_AS / RLIMIT_CPU (and always RLIMIT_CORE=0 so crashing
// workers never litter core files), capture its stdout over a pipe, and
// SIGKILL it when a wall-clock deadline or an external interrupt flag
// says so. The parent drains the pipe while the child runs, so a worker
// that writes more than one pipe buffer cannot deadlock against its
// supervisor.
//
// POSIX-only by nature (fork/exec/waitpid); on non-POSIX builds
// RunProcess reports kSpawnError so callers degrade to in-process
// execution instead of failing to compile.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace octopocs::support {

struct SubprocessLimits {
  /// RLIMIT_AS cap in MiB (0 = unlimited). Allocations past the cap
  /// fail inside the child (malloc returns NULL / bad_alloc), which is
  /// exactly the memory-pressure failure mode the pipeline's
  /// containment layer is built for.
  std::uint64_t rlimit_mb = 0;
  /// RLIMIT_CPU soft cap in seconds (0 = unlimited). The kernel sends
  /// SIGXCPU at the soft limit and SIGKILL at soft+2s.
  std::uint64_t cpu_seconds = 0;
  /// Wall-clock budget in milliseconds (0 = unlimited). On expiry the
  /// parent SIGKILLs the child and reports kKilledByDeadline.
  std::uint64_t deadline_ms = 0;
};

enum class SubprocessStatus : std::uint8_t {
  kExited,            // child called exit(); exit_code is valid
  kSignaled,          // child died from a signal; signal is valid
  kKilledByDeadline,  // parent SIGKILLed it at the wall-clock budget
  kInterrupted,       // parent SIGKILLed it because `interrupt` tripped
  kSpawnError,        // fork/exec never produced a child; error is set
};

std::string_view SubprocessStatusName(SubprocessStatus status);

struct SubprocessResult {
  SubprocessStatus status = SubprocessStatus::kSpawnError;
  int exit_code = -1;   // valid for kExited
  int term_signal = 0;  // valid for kSignaled
  /// Everything the child wrote to stdout before exiting (possibly a
  /// truncated prefix when the child died mid-write).
  std::string output;
  std::string error;  // human-readable spawn failure, kSpawnError only
  double wall_seconds = 0;
};

/// Runs `argv` (argv[0] is the executable path, resolved via PATH) to
/// completion under `limits`. `interrupt`, when non-null, is polled
/// while the child runs; a nonzero value SIGKILLs the child and yields
/// kInterrupted — this is how a Ctrl-C on the supervisor drains its
/// worker fleet promptly. Never throws; every failure mode is a status.
SubprocessResult RunProcess(const std::vector<std::string>& argv,
                            const SubprocessLimits& limits,
                            const std::atomic<int>* interrupt = nullptr);

}  // namespace octopocs::support
