// Sandboxed child processes with resource caps and kill-on-deadline.
//
// The isolation layer (DESIGN.md §12) runs each corpus pair in its own
// forked worker so that a misbehaving subject — an OOMing symbolic
// state, a wild store in the VM, an injected tooling abort — takes down
// one process instead of the whole corpus run. This header is the
// primitive underneath the supervisor: fork/exec an argv, cap the child
// with RLIMIT_AS / RLIMIT_CPU (and always RLIMIT_CORE=0 so crashing
// workers never litter core files), capture its stdout over a pipe, and
// SIGKILL it when a wall-clock deadline or an external interrupt flag
// says so. The parent drains the pipe while the child runs, so a worker
// that writes more than one pipe buffer cannot deadlock against its
// supervisor.
//
// POSIX-only by nature (fork/exec/waitpid); on non-POSIX builds
// RunProcess reports kSpawnError so callers degrade to in-process
// execution instead of failing to compile.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace octopocs::support {

struct SubprocessLimits {
  /// RLIMIT_AS cap in MiB (0 = unlimited). Allocations past the cap
  /// fail inside the child (malloc returns NULL / bad_alloc), which is
  /// exactly the memory-pressure failure mode the pipeline's
  /// containment layer is built for.
  std::uint64_t rlimit_mb = 0;
  /// RLIMIT_CPU soft cap in seconds (0 = unlimited). The kernel sends
  /// SIGXCPU at the soft limit and SIGKILL at soft+2s.
  std::uint64_t cpu_seconds = 0;
  /// Wall-clock budget in milliseconds (0 = unlimited). On expiry the
  /// parent SIGKILLs the child and reports kKilledByDeadline.
  std::uint64_t deadline_ms = 0;
};

enum class SubprocessStatus : std::uint8_t {
  kExited,            // child called exit(); exit_code is valid
  kSignaled,          // child died from a signal; signal is valid
  kKilledByDeadline,  // parent SIGKILLed it at the wall-clock budget
  kInterrupted,       // parent SIGKILLed it because `interrupt` tripped
  kSpawnError,        // fork/exec never produced a child; error is set
};

std::string_view SubprocessStatusName(SubprocessStatus status);

struct SubprocessResult {
  SubprocessStatus status = SubprocessStatus::kSpawnError;
  int exit_code = -1;   // valid for kExited
  int term_signal = 0;  // valid for kSignaled
  /// Everything the child wrote to stdout before exiting (possibly a
  /// truncated prefix when the child died mid-write).
  std::string output;
  std::string error;  // human-readable spawn failure, kSpawnError only
  double wall_seconds = 0;
};

/// Runs `argv` (argv[0] is the executable path, resolved via PATH) to
/// completion under `limits`. `interrupt`, when non-null, is polled
/// while the child runs; a nonzero value SIGKILLs the child and yields
/// kInterrupted — this is how a Ctrl-C on the supervisor drains its
/// worker fleet promptly. Never throws; every failure mode is a status.
SubprocessResult RunProcess(const std::vector<std::string>& argv,
                            const SubprocessLimits& limits,
                            const std::atomic<int>* interrupt = nullptr);

/// A long-lived worker child with both its stdin and stdout piped to
/// the parent (the AFL forkserver idea): spawn once, then exchange
/// line-framed requests and sentinel-framed responses for many work
/// items, amortizing fork/exec and per-process warmup over a whole run
/// instead of paying it per item.
///
/// The parent is always the active side: it writes one request line,
/// then reads until the response sentinel (or EOF / deadline /
/// interrupt). Response bytes past the sentinel stay buffered for the
/// next ReadFrame, so a fast worker can never outrun its supervisor's
/// framing. A dead child is reported as a SubprocessResult through
/// Reap()/Kill() so callers classify it with the same machinery as
/// one-shot workers.
///
/// POSIX-only like RunProcess; Spawn fails cleanly elsewhere.
class PersistentProcess {
 public:
  PersistentProcess() = default;
  ~PersistentProcess();
  PersistentProcess(const PersistentProcess&) = delete;
  PersistentProcess& operator=(const PersistentProcess&) = delete;

  enum class ReadStatus : std::uint8_t {
    kOk,           // a complete frame was extracted
    kEof,          // child closed stdout (died); Reap() for the status
    kTimeout,      // deadline passed without a complete frame
    kInterrupted,  // `interrupt` tripped mid-read
    kError,        // pipe read error
  };

  /// Forks and execs `argv` under `limits` (rlimit_mb / cpu_seconds;
  /// deadline_ms is ignored here — deadlines are per-ReadFrame). Any
  /// previous child is killed first. Returns false with `*error` set
  /// when no child was produced.
  bool Spawn(const std::vector<std::string>& argv,
             const SubprocessLimits& limits, std::string* error);

  bool alive() const { return pid_ > 0; }

  /// Writes `line` plus a newline to the child's stdin. False when the
  /// child is gone (EPIPE) — the caller should Kill() and classify.
  bool WriteLine(const std::string& line);

  /// Reads the child's stdout until a line equal to `sentinel` arrives;
  /// `*frame` then holds everything up to and including that line. A
  /// frame already buffered from a previous read is returned without
  /// touching the pipe. `deadline_ms` bounds the wait (0 = unbounded);
  /// `interrupt`, when non-null and nonzero, aborts it.
  ReadStatus ReadFrame(std::string_view sentinel, std::uint64_t deadline_ms,
                       const std::atomic<int>* interrupt, std::string* frame);

  /// SIGKILLs the child (harmless if already dead) and reaps it. The
  /// result's `output` holds the un-framed bytes buffered since the
  /// last complete frame.
  SubprocessResult Kill();

  /// Reaps a child that already exited (after kEof) without signaling.
  SubprocessResult Reap();

 private:
  SubprocessResult Finish(bool force_kill);

  long pid_ = -1;  // pid_t, widened so the header stays platform-clean
  int in_fd_ = -1;   // parent's write end of the child's stdin
  int out_fd_ = -1;  // parent's read end of the child's stdout
  std::string buffer_;  // stdout bytes past the last returned frame
};

}  // namespace octopocs::support
