#include "support/hex.h"

#include <cctype>
#include <stdexcept>

namespace octopocs {

namespace {
constexpr char kDigits[] = "0123456789abcdef";
}  // namespace

std::string ToHex(ByteView data) {
  std::string out;
  out.reserve(data.size() * 3);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xF]);
  }
  return out;
}

std::string HexDump(ByteView data) {
  std::string out;
  for (std::size_t row = 0; row < data.size(); row += 16) {
    // offset column
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(row >> shift) & 0xF]);
    }
    out += "  ";
    for (std::size_t i = 0; i < 16; ++i) {
      if (row + i < data.size()) {
        out.push_back(kDigits[data[row + i] >> 4]);
        out.push_back(kDigits[data[row + i] & 0xF]);
        out.push_back(' ');
      } else {
        out += "   ";
      }
    }
    out += " |";
    for (std::size_t i = 0; i < 16 && row + i < data.size(); ++i) {
      const char c = static_cast<char>(data[row + i]);
      out.push_back(std::isprint(static_cast<unsigned char>(c)) ? c : '.');
    }
    out += "|\n";
  }
  return out;
}

Bytes FromHex(std::string_view text) {
  Bytes out;
  int nibble = -1;
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (nibble >= 0) throw std::invalid_argument("odd hex digit count");
      continue;
    }
    int v;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      v = c - 'A' + 10;
    } else {
      throw std::invalid_argument("invalid hex character");
    }
    if (nibble < 0) {
      nibble = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((nibble << 4) | v));
      nibble = -1;
    }
  }
  if (nibble >= 0) throw std::invalid_argument("odd hex digit count");
  return out;
}

}  // namespace octopocs
