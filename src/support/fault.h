// Deterministic, site-keyed fault injection for robustness tests.
//
// Real OCTOPOCS deployments die in tooling, not in logic: angr throws
// mid-CFG, the SMT solver OOMs, a fork fails under memory pressure. The
// pipeline promises that every such failure lands as a well-formed
// kFailure VerificationReport — this registry exists to prove it. Each
// failure class is a FaultSite; production code calls MaybeThrow(site)
// (or Poll for non-throwing sites) at the exact spot the real fault
// would strike, and tests arm one site at a time and assert the pipeline
// degrades instead of crashing, hanging, or tearing stats.
//
// Disarmed cost: one relaxed atomic load per poll — nothing branches on
// the hot path beyond the site comparison. Armed semantics are
// deterministic and one-shot: Arm(site, skip) makes the (skip+1)-th poll
// of that site fire exactly once (an atomic countdown, so exactly one
// firing even under a parallel corpus run), after which the registry
// disarms itself. ArmSeeded derives (site, skip) from a seed for
// randomized-but-reproducible sweeps.
//
// The registry is process-global and meant for tests and benches only;
// nothing in the production pipeline arms it.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string_view>

namespace octopocs::support {

enum class FaultSite : std::uint8_t {
  kCfgBuild = 0,    // CFG recovery dies (the angr-crash analogue)
  kSolverStep,      // the CSP search dies mid-query (SMT solver crash)
  kTaintStep,       // the taint engine dies mid-instruction (PIN crash)
  kStateFork,       // forking a symbolic state fails (memory pressure)
  kAllocation,      // a VM heap allocation fails (malloc returns NULL)
  // Server-side sites (DESIGN.md §14). Non-throwing (Poll, not
  // MaybeThrow): each models an infrastructure failure the daemon must
  // absorb per-request without touching other in-flight requests.
  kAdmission,       // admitting a request fails (queue bookkeeping dies)
  kDiskStoreWrite,  // persisting an artifact fails (disk full / EIO)
  kResponseWrite,   // writing a response fails (client socket torn)
};

inline constexpr std::size_t kFaultSiteCount = 8;

std::string_view FaultSiteName(FaultSite site);

/// Inverse of FaultSiteName; also accepts the enumerator spelling
/// ("kAllocation") so CLI test hooks can name sites either way.
bool FaultSiteFromName(std::string_view name, FaultSite* out);

/// What injected faults throw. Deliberately a plain std::runtime_error
/// subtype: containment must work for *any* exception type, so tests
/// injecting FaultError exercise the same catch paths real tooling
/// exceptions would take.
class FaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace fault {

/// Arms `site`: its (skip+1)-th poll fires, once. Replaces any armed
/// fault.
void Arm(FaultSite site, std::uint64_t skip = 0);

/// Derives (site, skip) deterministically from `seed` and arms it.
/// Returns the chosen site so tests can log / assert against it.
FaultSite ArmSeeded(std::uint64_t seed);

void Disarm();

/// When enabled, a firing poll writes a one-line note to stderr and
/// calls std::abort() instead of reporting the fault to its caller —
/// the process-death analogue (heap corruption, the OOM killer) of the
/// catchable tooling faults above. Used by the CLI worker mode to prove
/// the supervisor's retry path end to end; reset by Disarm().
void AbortOnFire(bool enabled);

bool armed();

/// Times any armed fault has fired since the last Arm/Disarm.
std::uint64_t fired_count();

/// True when the armed fault fires at this poll (one-shot). Sites whose
/// real-world failure is a status rather than an exception use this
/// directly.
bool Poll(FaultSite site);

/// Poll-and-throw sugar for sites whose real-world failure is an
/// exception escaping the tool.
void MaybeThrow(FaultSite site);

}  // namespace fault

}  // namespace octopocs::support
