// Byte-buffer primitives shared by every module.
//
// A PoC in this system is nothing more than a flat sequence of bytes (the
// paper targets malformed *file type* PoCs); `Bytes` is that sequence, plus
// a few helpers for assembling little-endian fields the mini file formats
// and the MiniVM both use.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace octopocs {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Appends `value`'s low `width` bytes to `out`, little-endian.
inline void AppendLe(Bytes& out, std::uint64_t value, unsigned width) {
  for (unsigned i = 0; i < width; ++i) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

/// Appends the raw characters of `s` (no terminator).
inline void AppendStr(Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

/// Appends every byte of `view`.
inline void AppendBytes(Bytes& out, ByteView view) {
  out.insert(out.end(), view.begin(), view.end());
}

/// Reads a little-endian field of `width` bytes at `off`; returns 0 on
/// short data (mirrors the MiniVM's zero-fill at EOF).
inline std::uint64_t ReadLe(ByteView data, std::size_t off, unsigned width) {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < width; ++i) {
    if (off + i < data.size()) {
      v |= static_cast<std::uint64_t>(data[off + i]) << (8 * i);
    }
  }
  return v;
}

}  // namespace octopocs
