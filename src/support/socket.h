// Unix-domain stream sockets for the verification daemon.
//
// `octopocs serve` (DESIGN.md §14) accepts verification requests over a
// unix-domain socket: one connection carries one line-framed request and
// receives one sentinel-framed response. This header is the transport
// primitive underneath — bind/listen/accept with an interrupt-aware
// poll, connect, and a buffered line/frame reader with a wall-clock
// deadline so a stalled peer can never wedge an acceptor or a worker.
//
// POSIX-only by nature (AF_UNIX); on non-POSIX builds every operation
// fails cleanly with an error string so callers degrade instead of
// failing to compile, mirroring support/subprocess.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace octopocs::support {

/// A bound, listening unix-domain socket. Unlinks a stale socket file at
/// Listen() and its own at destruction.
class UnixListener {
 public:
  UnixListener() = default;
  ~UnixListener();
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Binds and listens on `path` (an existing socket file is replaced).
  bool Listen(const std::string& path, std::string* error);

  bool listening() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Waits up to `poll_ms` for a connection. Returns the accepted fd,
  /// -1 on timeout (poll again), or -2 when `interrupt` is tripped or
  /// the listener is closed. The poll bound is what makes the accept
  /// loop drain promptly on SIGINT/SIGTERM.
  int Accept(std::uint64_t poll_ms, const std::atomic<int>* interrupt);

  void Close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Connects to a listening unix socket. Returns the fd, or -1 with
/// `*error` set.
int ConnectUnix(const std::string& path, std::string* error);

/// Writes all of `data` to `fd`, retrying short writes. False on any
/// write error (EPIPE when the peer hung up).
bool WriteAll(int fd, std::string_view data);

void CloseFd(int fd);

/// Buffered reader over a stream fd with a per-call wall-clock deadline.
/// Bytes past the returned line/frame stay buffered for the next call,
/// so pipelined peers can never outrun the framing.
class FdReader {
 public:
  explicit FdReader(int fd) : fd_(fd) {}

  enum class Status : std::uint8_t {
    kOk,           // a complete line/frame was extracted
    kEof,          // peer closed the stream before completing one
    kTimeout,      // deadline passed first
    kInterrupted,  // `interrupt` tripped mid-read
    kError,        // read error
    kOverflow,     // peer sent more than `max_bytes` without completing
  };

  /// Reads one '\n'-terminated line (newline stripped). `max_bytes`
  /// bounds the buffered amount — a peer streaming garbage without a
  /// newline is cut off instead of growing the buffer unboundedly.
  Status ReadLine(std::uint64_t deadline_ms, const std::atomic<int>* interrupt,
                  std::string* line, std::size_t max_bytes = 1 << 22);

  /// Reads until a line equal to `sentinel` arrives; `*frame` holds
  /// everything up to and including that line.
  Status ReadFrame(std::string_view sentinel, std::uint64_t deadline_ms,
                   const std::atomic<int>* interrupt, std::string* frame,
                   std::size_t max_bytes = 1 << 22);

 private:
  int fd_;
  std::string buffer_;
};

}  // namespace octopocs::support
