#include "support/rng.h"

namespace octopocs {

std::uint64_t Rng::Next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::Below(std::uint64_t bound) {
  // Modulo bias is irrelevant at fuzzing scale; keep it branch-free.
  return Next() % bound;
}

std::uint64_t Rng::Range(std::uint64_t lo, std::uint64_t hi) {
  return lo + Below(hi - lo + 1);
}

bool Rng::Chance(std::uint32_t num, std::uint32_t den) {
  return Below(den) < num;
}

Bytes Rng::RandomBytes(std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(Next());
  return out;
}

}  // namespace octopocs
