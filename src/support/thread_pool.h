// Fixed-size worker pool and a deterministic parallel-for.
//
// Built for corpus-scale fan-out: each unit of work is one independent
// pipeline run (seconds of CPU), so a mutex-guarded queue is far below
// the noise floor — no lock-free machinery needed. ParallelFor is the
// only entry point most callers want: indices are claimed atomically,
// results are whatever fn(i) writes at slot i, and the first exception
// thrown by any worker is rethrown on the calling thread after every
// worker has drained, so partial failures cannot be silently dropped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace octopocs::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. A job that throws does not take the process down:
  /// the worker captures the exception (first one wins) and keeps
  /// serving the queue; Wait() rethrows it on the caller.
  void Submit(std::function<void()> job);

  /// Blocks until the queue is empty and every worker is idle, then
  /// rethrows the first exception any job threw since the last Wait().
  void Wait();

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::exception_ptr first_error_;  // guarded by mutex_
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Runs fn(0..count-1) across min(jobs, count) workers. jobs <= 1 (or a
/// single item) degrades to a plain serial loop on the calling thread —
/// the serial and parallel paths execute the *same* per-index closures,
/// which is what makes "parallel output identical to serial" a
/// structural guarantee rather than a test hope. Every index is
/// attempted even when some throw; exceptions are captured and the
/// first one (lowest index wins is NOT guaranteed in parallel) is
/// rethrown after all indices finish — identically for jobs == 1.
void ParallelFor(std::size_t count, unsigned jobs,
                 const std::function<void(std::size_t)>& fn);

}  // namespace octopocs::support
