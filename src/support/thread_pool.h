// Fixed-size worker pool and a deterministic parallel-for.
//
// Built for corpus-scale fan-out: each unit of work is one independent
// pipeline run (seconds of CPU), so a mutex-guarded queue is far below
// the noise floor — no lock-free machinery needed. ParallelFor is the
// only entry point most callers want: indices are claimed atomically,
// results are whatever fn(i) writes at slot i, and the first exception
// thrown by any worker is rethrown on the calling thread after every
// worker has drained, so partial failures cannot be silently dropped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace octopocs::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. A job that throws does not take the process down:
  /// the worker captures the exception (first one wins) and keeps
  /// serving the queue; Wait() rethrows it on the caller.
  void Submit(std::function<void()> job);

  /// Blocks until the queue is empty and every worker is idle, then
  /// rethrows the first exception any job threw since the last Wait().
  void Wait();

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::exception_ptr first_error_;  // guarded by mutex_
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Runs fn(0..count-1) across min(jobs, count, hardware threads)
/// workers. jobs <= 1 (or a single item) degrades to a plain serial
/// loop on the calling thread — the serial and parallel paths execute
/// the *same* per-index closures, which is what makes "parallel output
/// identical to serial" a structural guarantee rather than a test hope.
/// The hardware clamp matters for compute-bound work: asking for more
/// workers than cores only adds scheduling overhead (measured as the
/// 0.93× "speedup" --jobs 4 used to produce on a single-core host).
/// Every index is attempted even when some throw; exceptions are
/// captured and the first one (lowest index wins is NOT guaranteed in
/// parallel) is rethrown after all indices finish — identically for
/// jobs == 1.
void ParallelFor(std::size_t count, unsigned jobs,
                 const std::function<void(std::size_t)>& fn);

// ---------------------------------------------------------------------------
// Work stealing. Finer-grained than ThreadPool's single queue: each
// worker owns a deque, pushes and pops at the bottom (LIFO, preserving
// depth-first locality), and idle workers steal from the *top* of a
// victim's deque (FIFO — the oldest, typically largest-subtree item).
// Work items here are symbolic states (milliseconds each), so a
// per-deque mutex is still far below the noise floor; what matters is
// that an idle worker parks on a condition variable instead of spinning
// over empty deques.
// ---------------------------------------------------------------------------

/// One worker's double-ended queue.
template <typename T>
class WorkStealingDeque {
 public:
  void PushBottom(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    items_.push_back(std::move(item));
  }

  /// Owner end: newest item (LIFO).
  bool PopBottom(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.back());
    items_.pop_back();
    return true;
  }

  /// Thief end: oldest item (FIFO).
  bool StealTop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<T> items_;
};

/// Shared coordination for a work-stealing pool: an in-flight item
/// count for drain detection, a version counter closing the
/// missed-wakeup race, and a condition variable idle workers block on.
///
/// Protocol per worker:
///   for (;;) {
///     const std::uint64_t seen = coord.Version();
///     if (pop-or-steal succeeded) { run item; coord.NoteDone(); }
///     else if (!coord.WaitForWork(seen)) break;  // drained or aborted
///   }
/// Producers call NoteEnqueued() *before* making the item stealable is
/// not required — only before the producing worker's own NoteDone() —
/// because an item is only unreachable-but-pending while its producer
/// still counts as in flight.
class StealCoordinator {
 public:
  void NoteEnqueued() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++pending_;
      ++version_;
    }
    cv_.notify_one();
  }

  void NoteDone() {
    std::lock_guard<std::mutex> lock(mu_);
    ++version_;
    if (--pending_ == 0) cv_.notify_all();
  }

  /// Aborts the pool: wakes every parked worker; WaitForWork returns
  /// false from now on.
  void Abort() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      aborted_ = true;
      ++version_;
    }
    cv_.notify_all();
  }

  bool aborted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return aborted_;
  }

  std::uint64_t Version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }

  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_;
  }

  /// Parks until the pool's state moves past `seen_version` (new work
  /// or a drain step), then reports whether it is worth looking for
  /// work again: false means drained or aborted — exit the loop.
  bool WaitForWork(std::uint64_t seen_version) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return aborted_ || pending_ == 0 || version_ != seen_version;
    });
    return !aborted_ && pending_ > 0;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
  std::uint64_t version_ = 0;
  bool aborted_ = false;
};

}  // namespace octopocs::support
