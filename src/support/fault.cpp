#include "support/fault.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace octopocs::support {

std::string_view FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kCfgBuild: return "cfg-build";
    case FaultSite::kSolverStep: return "solver-step";
    case FaultSite::kTaintStep: return "taint-step";
    case FaultSite::kStateFork: return "state-fork";
    case FaultSite::kAllocation: return "allocation";
    case FaultSite::kAdmission: return "admission";
    case FaultSite::kDiskStoreWrite: return "disk-store-write";
    case FaultSite::kResponseWrite: return "response-write";
  }
  return "?";
}

bool FaultSiteFromName(std::string_view name, FaultSite* out) {
  static constexpr FaultSite kSites[] = {
      FaultSite::kCfgBuild,       FaultSite::kSolverStep,
      FaultSite::kTaintStep,      FaultSite::kStateFork,
      FaultSite::kAllocation,     FaultSite::kAdmission,
      FaultSite::kDiskStoreWrite, FaultSite::kResponseWrite};
  static constexpr std::string_view kEnumNames[] = {
      "kCfgBuild",   "kSolverStep",    "kTaintStep",     "kStateFork",
      "kAllocation", "kAdmission",     "kDiskStoreWrite", "kResponseWrite"};
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    if (name == FaultSiteName(kSites[i]) || name == kEnumNames[i]) {
      *out = kSites[i];
      return true;
    }
  }
  return false;
}

namespace fault {

namespace {

// -1 = disarmed. The countdown counts polls of the armed site; the poll
// that decrements it from 0 fires. All relaxed: pollers only need to
// agree that exactly one of them observes the 0 -> -1 transition, which
// fetch_sub guarantees regardless of ordering.
std::atomic<int> g_site{-1};
std::atomic<std::int64_t> g_countdown{0};
std::atomic<std::uint64_t> g_fired{0};
std::atomic<bool> g_abort_on_fire{false};

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

void Arm(FaultSite site, std::uint64_t skip) {
  g_fired.store(0, std::memory_order_relaxed);
  g_countdown.store(static_cast<std::int64_t>(skip),
                    std::memory_order_relaxed);
  g_site.store(static_cast<int>(site), std::memory_order_release);
}

FaultSite ArmSeeded(std::uint64_t seed) {
  const std::uint64_t x = SplitMix64(seed);
  const auto site = static_cast<FaultSite>(x % kFaultSiteCount);
  Arm(site, (x >> 8) % 16);
  return site;
}

void Disarm() {
  g_site.store(-1, std::memory_order_relaxed);
  g_countdown.store(0, std::memory_order_relaxed);
  g_fired.store(0, std::memory_order_relaxed);
  g_abort_on_fire.store(false, std::memory_order_relaxed);
}

void AbortOnFire(bool enabled) {
  g_abort_on_fire.store(enabled, std::memory_order_relaxed);
}

bool armed() { return g_site.load(std::memory_order_relaxed) >= 0; }

std::uint64_t fired_count() {
  return g_fired.load(std::memory_order_relaxed);
}

bool Poll(FaultSite site) {
  if (g_site.load(std::memory_order_relaxed) != static_cast<int>(site)) {
    return false;
  }
  if (g_countdown.fetch_sub(1, std::memory_order_relaxed) != 0) {
    return false;
  }
  // This poll owns the firing; disarm so later polls are free again.
  g_site.store(-1, std::memory_order_relaxed);
  g_fired.fetch_add(1, std::memory_order_relaxed);
  if (g_abort_on_fire.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "injected hard fault at site %.*s: aborting\n",
                 static_cast<int>(FaultSiteName(site).size()),
                 FaultSiteName(site).data());
    std::abort();
  }
  return true;
}

void MaybeThrow(FaultSite site) {
  if (Poll(site)) {
    throw FaultError("injected fault at site " +
                     std::string(FaultSiteName(site)));
  }
}

}  // namespace fault

}  // namespace octopocs::support
