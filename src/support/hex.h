// Hex formatting/parsing helpers, mainly for PoC dumps in examples,
// benches, and test failure messages.
#pragma once

#include <string>

#include "support/bytes.h"

namespace octopocs {

/// "de ad be ef" — single line, lowercase, space separated.
std::string ToHex(ByteView data);

/// Classic 16-bytes-per-row hex dump with offsets and an ASCII gutter.
std::string HexDump(ByteView data);

/// Parses "de ad be ef" (whitespace-separated or contiguous hex pairs).
/// Throws std::invalid_argument on malformed input.
Bytes FromHex(std::string_view text);

}  // namespace octopocs
