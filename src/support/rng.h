// Deterministic pseudo-random source.
//
// Everything stochastic in this repository (fuzzers, property-test input
// generation, workload synthesis) draws from this generator so that runs
// are reproducible from a seed. The core pipeline itself is deterministic
// and never uses randomness.
#pragma once

#include <cstdint>

#include "support/bytes.h"

namespace octopocs {

/// SplitMix64: tiny, fast, and statistically solid for fuzzing purposes.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform in [0, bound). `bound` must be nonzero.
  std::uint64_t Below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi);

  /// True with probability num/den.
  bool Chance(std::uint32_t num, std::uint32_t den);

  /// `n` uniformly random bytes.
  Bytes RandomBytes(std::size_t n);

 private:
  std::uint64_t state_;
};

}  // namespace octopocs
