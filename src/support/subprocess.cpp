#include "support/subprocess.h"

#include <chrono>
#include <cstring>

#ifndef _WIN32
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace octopocs::support {

std::string_view SubprocessStatusName(SubprocessStatus status) {
  switch (status) {
    case SubprocessStatus::kExited: return "exited";
    case SubprocessStatus::kSignaled: return "signaled";
    case SubprocessStatus::kKilledByDeadline: return "killed-by-deadline";
    case SubprocessStatus::kInterrupted: return "interrupted";
    case SubprocessStatus::kSpawnError: return "spawn-error";
  }
  return "?";
}

#ifndef _WIN32

namespace {

void ApplyLimit(int resource, std::uint64_t value) {
  struct rlimit lim;
  lim.rlim_cur = value;
  lim.rlim_max = value;
  // Failure to tighten a limit is not fatal for the child: the
  // supervisor's wall-clock kill still bounds it.
  setrlimit(resource, &lim);
}

}  // namespace

SubprocessResult RunProcess(const std::vector<std::string>& argv,
                            const SubprocessLimits& limits,
                            const std::atomic<int>* interrupt) {
  SubprocessResult result;
  if (argv.empty()) {
    result.error = "empty argv";
    return result;
  }
  const auto start = std::chrono::steady_clock::now();

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    result.error = std::string("pipe: ") + std::strerror(errno);
    return result;
  }

  const pid_t pid = fork();
  if (pid < 0) {
    result.error = std::string("fork: ") + std::strerror(errno);
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    return result;
  }

  if (pid == 0) {
    // Child. stdout -> pipe; stderr stays inherited so worker
    // diagnostics land in the supervisor's log.
    dup2(pipe_fds[1], STDOUT_FILENO);
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    // Crashing workers are an expected, supervised event — never dump
    // core for them.
    ApplyLimit(RLIMIT_CORE, 0);
    if (limits.rlimit_mb > 0) {
      ApplyLimit(RLIMIT_AS, limits.rlimit_mb * (1ULL << 20));
    }
    if (limits.cpu_seconds > 0) {
      // Soft = cap (SIGXCPU), hard = cap + 2 (SIGKILL backstop).
      struct rlimit lim;
      lim.rlim_cur = limits.cpu_seconds;
      lim.rlim_max = limits.cpu_seconds + 2;
      setrlimit(RLIMIT_CPU, &lim);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);
    execvp(cargv[0], cargv.data());
    _exit(127);  // exec failed; 127 is the shell's convention
  }

  // Parent: drain the pipe while watching the clock and the interrupt
  // flag, so a chatty child cannot fill the pipe and stall, and a hung
  // child cannot outlive its budget.
  close(pipe_fds[1]);
  const int read_fd = pipe_fds[0];

  using Clock = std::chrono::steady_clock;
  const bool bounded = limits.deadline_ms > 0;
  const Clock::time_point kill_at =
      start + std::chrono::milliseconds(limits.deadline_ms);
  bool killed_deadline = false;
  bool killed_interrupt = false;

  char buf[4096];
  int status = 0;
  bool child_reaped = false;
  for (;;) {
    if (!killed_deadline && !killed_interrupt) {
      if (interrupt != nullptr &&
          interrupt->load(std::memory_order_relaxed) != 0) {
        kill(pid, SIGKILL);
        killed_interrupt = true;
      } else if (bounded && Clock::now() >= kill_at) {
        kill(pid, SIGKILL);
        killed_deadline = true;
      }
    }
    if (!child_reaped) {
      const pid_t r = waitpid(pid, &status, WNOHANG);
      if (r == pid) child_reaped = true;
    }
    struct pollfd pfd;
    pfd.fd = read_fd;
    pfd.events = POLLIN;
    const int rc = poll(&pfd, 1, /*timeout_ms=*/20);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // poll failure: stop draining, reap below
    }
    if (rc == 0) {
      // No data in this slice. If the child itself is already gone,
      // stop: a grandchild it spawned may still hold the pipe's write
      // end open (so EOF would never come), and anything such an
      // orphan writes after its parent died is not the child's report.
      if (child_reaped) break;
      continue;  // re-check deadline/interrupt
    }
    const ssize_t n = read(read_fd, buf, sizeof buf);
    if (n > 0) {
      result.output.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF (child closed stdout, normally by exiting) or error
  }
  close(read_fd);

  pid_t reaped = child_reaped ? pid : -1;
  while (!child_reaped) {
    reaped = waitpid(pid, &status, 0);
    if (reaped == pid || errno != EINTR) break;
  }

  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (killed_interrupt) {
    result.status = SubprocessStatus::kInterrupted;
  } else if (killed_deadline) {
    result.status = SubprocessStatus::kKilledByDeadline;
  } else if (reaped == pid && WIFEXITED(status)) {
    result.status = SubprocessStatus::kExited;
    result.exit_code = WEXITSTATUS(status);
  } else if (reaped == pid && WIFSIGNALED(status)) {
    result.status = SubprocessStatus::kSignaled;
    result.term_signal = WTERMSIG(status);
  } else {
    result.status = SubprocessStatus::kSpawnError;
    result.error = "waitpid lost the child";
  }
  return result;
}

// -- PersistentProcess --------------------------------------------------------

namespace {

/// True when `buffer` holds a complete frame: a line equal to
/// `sentinel` (at the buffer start or right after a newline). On a
/// match, moves everything through the sentinel line into `*frame` and
/// leaves the rest buffered.
bool ExtractFrame(std::string& buffer, std::string_view sentinel,
                  std::string* frame) {
  std::size_t pos = 0;
  while ((pos = buffer.find(sentinel.data(), pos, sentinel.size())) !=
         std::string::npos) {
    const bool at_line_start = pos == 0 || buffer[pos - 1] == '\n';
    const std::size_t end = pos + sentinel.size();
    const bool at_line_end = end < buffer.size() && buffer[end] == '\n';
    if (at_line_start && at_line_end) {
      frame->assign(buffer, 0, end + 1);
      buffer.erase(0, end + 1);
      return true;
    }
    pos += 1;
  }
  return false;
}

}  // namespace

PersistentProcess::~PersistentProcess() {
  if (alive()) Kill();
}

bool PersistentProcess::Spawn(const std::vector<std::string>& argv,
                              const SubprocessLimits& limits,
                              std::string* error) {
  if (alive()) Kill();
  buffer_.clear();
  if (argv.empty()) {
    if (error != nullptr) *error = "empty argv";
    return false;
  }
  // A worker dying between frames must surface as an EPIPE write
  // failure the supervisor classifies, not a fatal SIGPIPE in the
  // supervisor itself.
  signal(SIGPIPE, SIG_IGN);

  int in_pipe[2];   // parent -> child stdin
  int out_pipe[2];  // child stdout -> parent
  if (pipe(in_pipe) != 0) {
    if (error != nullptr) *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  if (pipe(out_pipe) != 0) {
    if (error != nullptr) *error = std::string("pipe: ") + std::strerror(errno);
    close(in_pipe[0]);
    close(in_pipe[1]);
    return false;
  }

  const pid_t pid = fork();
  if (pid < 0) {
    if (error != nullptr) *error = std::string("fork: ") + std::strerror(errno);
    close(in_pipe[0]);
    close(in_pipe[1]);
    close(out_pipe[0]);
    close(out_pipe[1]);
    return false;
  }

  if (pid == 0) {
    // Child: stdin/stdout to the pipes, stderr inherited for
    // diagnostics, same caps as a one-shot worker.
    dup2(in_pipe[0], STDIN_FILENO);
    dup2(out_pipe[1], STDOUT_FILENO);
    close(in_pipe[0]);
    close(in_pipe[1]);
    close(out_pipe[0]);
    close(out_pipe[1]);
    ApplyLimit(RLIMIT_CORE, 0);
    if (limits.rlimit_mb > 0) {
      ApplyLimit(RLIMIT_AS, limits.rlimit_mb * (1ULL << 20));
    }
    if (limits.cpu_seconds > 0) {
      struct rlimit lim;
      lim.rlim_cur = limits.cpu_seconds;
      lim.rlim_max = limits.cpu_seconds + 2;
      setrlimit(RLIMIT_CPU, &lim);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);
    execvp(cargv[0], cargv.data());
    _exit(127);
  }

  close(in_pipe[0]);
  close(out_pipe[1]);
  pid_ = pid;
  in_fd_ = in_pipe[1];
  out_fd_ = out_pipe[0];
  return true;
}

bool PersistentProcess::WriteLine(const std::string& line) {
  if (!alive()) return false;
  std::string data = line;
  data += '\n';
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = write(in_fd_, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE: the child is gone
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

PersistentProcess::ReadStatus PersistentProcess::ReadFrame(
    std::string_view sentinel, std::uint64_t deadline_ms,
    const std::atomic<int>* interrupt, std::string* frame) {
  if (!alive()) return ReadStatus::kEof;
  using Clock = std::chrono::steady_clock;
  const bool bounded = deadline_ms > 0;
  const Clock::time_point give_up =
      Clock::now() + std::chrono::milliseconds(deadline_ms);
  char buf[4096];
  for (;;) {
    // A complete response wins over a simultaneous deadline/interrupt.
    if (ExtractFrame(buffer_, sentinel, frame)) return ReadStatus::kOk;
    if (interrupt != nullptr &&
        interrupt->load(std::memory_order_relaxed) != 0) {
      return ReadStatus::kInterrupted;
    }
    if (bounded && Clock::now() >= give_up) return ReadStatus::kTimeout;
    struct pollfd pfd;
    pfd.fd = out_fd_;
    pfd.events = POLLIN;
    const int rc = poll(&pfd, 1, /*timeout_ms=*/20);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kError;
    }
    if (rc == 0) continue;  // re-check frame/deadline/interrupt
    const ssize_t n = read(out_fd_, buf, sizeof buf);
    if (n > 0) {
      buffer_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return ReadStatus::kEof;
  }
}

SubprocessResult PersistentProcess::Kill() { return Finish(true); }

SubprocessResult PersistentProcess::Reap() { return Finish(false); }

SubprocessResult PersistentProcess::Finish(bool force_kill) {
  SubprocessResult result;
  result.output = buffer_;
  buffer_.clear();
  if (!alive()) {
    result.error = "no child to reap";
    return result;
  }
  const pid_t pid = static_cast<pid_t>(pid_);
  // Signaling an already-exited (zombie) child is a harmless no-op and
  // preserves its real wait status.
  if (force_kill) kill(pid, SIGKILL);
  close(in_fd_);
  close(out_fd_);
  in_fd_ = out_fd_ = -1;
  pid_ = -1;
  int status = 0;
  pid_t reaped;
  do {
    reaped = waitpid(pid, &status, 0);
  } while (reaped < 0 && errno == EINTR);
  if (reaped == pid && WIFEXITED(status)) {
    result.status = SubprocessStatus::kExited;
    result.exit_code = WEXITSTATUS(status);
  } else if (reaped == pid && WIFSIGNALED(status)) {
    result.status = SubprocessStatus::kSignaled;
    result.term_signal = WTERMSIG(status);
  } else {
    result.status = SubprocessStatus::kSpawnError;
    result.error = "waitpid lost the child";
  }
  return result;
}

#else  // _WIN32

SubprocessResult RunProcess(const std::vector<std::string>&,
                            const SubprocessLimits&,
                            const std::atomic<int>*) {
  SubprocessResult result;
  result.error = "process isolation requires a POSIX host";
  return result;
}

PersistentProcess::~PersistentProcess() = default;

bool PersistentProcess::Spawn(const std::vector<std::string>&,
                              const SubprocessLimits&, std::string* error) {
  if (error != nullptr) *error = "process isolation requires a POSIX host";
  return false;
}

bool PersistentProcess::WriteLine(const std::string&) { return false; }

PersistentProcess::ReadStatus PersistentProcess::ReadFrame(
    std::string_view, std::uint64_t, const std::atomic<int>*, std::string*) {
  return ReadStatus::kError;
}

SubprocessResult PersistentProcess::Kill() { return SubprocessResult{}; }

SubprocessResult PersistentProcess::Reap() { return SubprocessResult{}; }

SubprocessResult PersistentProcess::Finish(bool) {
  return SubprocessResult{};
}

#endif

}  // namespace octopocs::support
