#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace octopocs::support {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(job));
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      job = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    // A throwing job must not std::terminate the worker (the old
    // behaviour) nor skip the active_ decrement below (which would hang
    // Wait() forever). Capture the first exception for Wait to rethrow.
    std::exception_ptr error;
    try {
      job();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = std::move(error);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

void ParallelFor(std::size_t count, unsigned jobs,
                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // Pipeline runs are compute-bound: more workers than hardware threads
  // cannot help, and the extra context switching measurably hurts (a
  // --jobs 4 corpus run on a one-core host clocked 0.93× serial before
  // this clamp). hardware_concurrency may report 0 ("unknown") — treat
  // that as no information, not as one core.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) jobs = std::min(jobs, hw);
  if (jobs <= 1 || count == 1) {
    // Same contract as the parallel path: every index is attempted and
    // the first exception is rethrown after the loop, so a throwing
    // index cannot silently skip the indices behind it.
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs, count));
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  {
    ThreadPool pool(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.Submit([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= count) return;
          try {
            fn(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
        }
      });
    }
    pool.Wait();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace octopocs::support
