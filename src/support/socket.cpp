#include "support/socket.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace octopocs::support {

#ifndef _WIN32

namespace {

using Clock = std::chrono::steady_clock;

bool Tripped(const std::atomic<int>* interrupt) {
  return interrupt != nullptr &&
         interrupt->load(std::memory_order_relaxed) != 0;
}

/// Fills a sockaddr_un; unix socket paths are length-capped by the ABI.
bool FillAddr(const std::string& path, sockaddr_un* addr, std::string* error) {
  if (path.size() >= sizeof addr->sun_path) {
    if (error != nullptr) {
      *error = "socket path too long (" + std::to_string(path.size()) +
               " bytes): " + path;
    }
    return false;
  }
  std::memset(addr, 0, sizeof *addr);
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

UnixListener::~UnixListener() { Close(); }

bool UnixListener::Listen(const std::string& path, std::string* error) {
  Close();
  sockaddr_un addr;
  if (!FillAddr(path, &addr, error)) return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  ::unlink(path.c_str());  // a stale socket file from a dead daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr) {
      *error = "bind " + path + ": " + std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) != 0) {
    if (error != nullptr) {
      *error = "listen " + path + ": " + std::strerror(errno);
    }
    ::close(fd);
    ::unlink(path.c_str());
    return false;
  }
  fd_ = fd;
  path_ = path;
  return true;
}

int UnixListener::Accept(std::uint64_t poll_ms,
                         const std::atomic<int>* interrupt) {
  if (fd_ < 0 || Tripped(interrupt)) return -2;
  pollfd pfd{fd_, POLLIN, 0};
  const int rv = ::poll(&pfd, 1, static_cast<int>(poll_ms));
  if (Tripped(interrupt)) return -2;
  if (rv <= 0) return -1;  // timeout or EINTR — poll again
  const int conn = ::accept(fd_, nullptr, nullptr);
  return conn >= 0 ? conn : -1;
}

void UnixListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

int ConnectUnix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!FillAddr(path, &addr, error)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr) {
      *error = "connect " + path + ": " + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

bool WriteAll(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
// A peer that hung up raises SIGPIPE on write by default; ask for the
// EPIPE errno instead so the daemon survives a vanished client.
#ifdef MSG_NOSIGNAL
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
#endif
    if (n <= 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

namespace {

/// Shared pump for ReadLine/ReadFrame: appends from the fd into `buffer`
/// until `done(buffer)` extracts a result or a stop condition fires.
template <typename TryExtract>
FdReader::Status Pump(int fd, std::string& buffer, std::uint64_t deadline_ms,
                      const std::atomic<int>* interrupt,
                      std::size_t max_bytes, TryExtract&& try_extract) {
  const bool bounded = deadline_ms > 0;
  const Clock::time_point until =
      Clock::now() + std::chrono::milliseconds(deadline_ms);
  for (;;) {
    if (try_extract(buffer)) return FdReader::Status::kOk;
    if (buffer.size() > max_bytes) return FdReader::Status::kOverflow;
    if (Tripped(interrupt)) return FdReader::Status::kInterrupted;

    int wait_ms = 100;  // interrupt poll bound
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            until - Clock::now())
                            .count();
      if (left <= 0) return FdReader::Status::kTimeout;
      if (left < wait_ms) wait_ms = static_cast<int>(left);
    }
    pollfd pfd{fd, POLLIN, 0};
    const int rv = ::poll(&pfd, 1, wait_ms);
    if (rv < 0) {
      if (errno == EINTR) continue;
      return FdReader::Status::kError;
    }
    if (rv == 0) continue;  // re-check deadline/interrupt

    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n == 0) {
      // EOF: one last extraction attempt (the result may already be
      // fully buffered), then report the closed stream.
      return try_extract(buffer) ? FdReader::Status::kOk
                                 : FdReader::Status::kEof;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return FdReader::Status::kError;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

FdReader::Status FdReader::ReadLine(std::uint64_t deadline_ms,
                                    const std::atomic<int>* interrupt,
                                    std::string* line,
                                    std::size_t max_bytes) {
  return Pump(fd_, buffer_, deadline_ms, interrupt, max_bytes,
              [line](std::string& buffer) {
                const std::size_t nl = buffer.find('\n');
                if (nl == std::string::npos) return false;
                line->assign(buffer, 0, nl);
                buffer.erase(0, nl + 1);
                return true;
              });
}

FdReader::Status FdReader::ReadFrame(std::string_view sentinel,
                                     std::uint64_t deadline_ms,
                                     const std::atomic<int>* interrupt,
                                     std::string* frame,
                                     std::size_t max_bytes) {
  const std::string needle = std::string(sentinel) + "\n";
  return Pump(fd_, buffer_, deadline_ms, interrupt, max_bytes,
              [frame, &needle](std::string& buffer) {
                // The sentinel must sit at a line start: offset 0 or
                // right after a newline.
                std::size_t at = 0;
                for (;;) {
                  at = buffer.find(needle, at);
                  if (at == std::string::npos) return false;
                  if (at == 0 || buffer[at - 1] == '\n') break;
                  ++at;
                }
                const std::size_t end = at + needle.size();
                frame->assign(buffer, 0, end);
                buffer.erase(0, end);
                return true;
              });
}

#else  // _WIN32

UnixListener::~UnixListener() = default;
bool UnixListener::Listen(const std::string&, std::string* error) {
  if (error != nullptr) *error = "unix sockets require a POSIX host";
  return false;
}
int UnixListener::Accept(std::uint64_t, const std::atomic<int>*) { return -2; }
void UnixListener::Close() {}

int ConnectUnix(const std::string&, std::string* error) {
  if (error != nullptr) *error = "unix sockets require a POSIX host";
  return -1;
}
bool WriteAll(int, std::string_view) { return false; }
void CloseFd(int) {}

FdReader::Status FdReader::ReadLine(std::uint64_t, const std::atomic<int>*,
                                    std::string*, std::size_t) {
  return Status::kError;
}
FdReader::Status FdReader::ReadFrame(std::string_view, std::uint64_t,
                                     const std::atomic<int>*, std::string*,
                                     std::size_t) {
  return Status::kError;
}

#endif

}  // namespace octopocs::support
