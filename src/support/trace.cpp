#include "support/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <unordered_map>

namespace octopocs::support {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t NextTracerId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

const char* KindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kBegin: return "begin";
    case TraceEventKind::kEnd: return "end";
    case TraceEventKind::kCounter: return "counter";
  }
  return "?";
}

/// JSON string escaping for event names. Names are static literals and
/// almost always plain identifiers; the escape path exists so an odd
/// character can never produce malformed JSONL.
void WriteJsonString(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[c >> 4] << hex[c & 0xF];
        } else {
          os << static_cast<char>(c);
        }
    }
  }
  os << '"';
}

}  // namespace

void Tracer::ThreadBuffer::Append(const TraceEvent& event) {
  Chunk* chunk = nullptr;
  {
    // The list mutation is rare (once per kChunkEvents appends) but the
    // *read* of the current tail must also be consistent with Snapshot's
    // enumeration, so both go under the chunk-list mutex. Only the
    // owning thread appends, so the slot write below needs no lock.
    std::lock_guard<std::mutex> lock(chunks_mu);
    if (chunks.empty() ||
        chunks.back()->used.load(std::memory_order_relaxed) >= kChunkEvents) {
      chunks.push_back(std::make_unique<Chunk>());
    }
    chunk = chunks.back().get();
  }
  const std::size_t slot = chunk->used.load(std::memory_order_relaxed);
  chunk->events[slot] = event;
  // Publish: a reader that acquires `used` sees the slot contents.
  chunk->used.store(slot + 1, std::memory_order_release);
}

Tracer::Tracer() : tracer_id_(NextTracerId()), epoch_ns_(NowNs()) {}

Tracer::~Tracer() = default;

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  // Cache the (tracer id → buffer) association per thread. Keying on the
  // process-unique id — never the Tracer address — means a stale entry
  // for a destroyed tracer can never be confused with a new tracer that
  // reuses the same address.
  thread_local std::unordered_map<std::uint64_t, ThreadBuffer*> cache;
  auto it = cache.find(tracer_id_);
  if (it != cache.end()) return *it->second;

  std::lock_guard<std::mutex> lock(buffers_mu_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<std::uint32_t>(buffers_.size());
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  cache.emplace(tracer_id_, raw);
  return *raw;
}

void Tracer::Record(TraceEventKind kind, const char* name,
                    std::int64_t value) {
  ThreadBuffer& buffer = LocalBuffer();
  TraceEvent event;
  event.kind = kind;
  event.name = name;
  event.tid = buffer.tid;
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  event.ts_ns = NowNs() - epoch_ns_;
  event.value = value;
  buffer.Append(event);
}

void Tracer::Begin(const char* name, std::int64_t arg) {
  Record(TraceEventKind::kBegin, name, arg);
}

void Tracer::End(const char* name, std::int64_t arg) {
  Record(TraceEventKind::kEnd, name, arg);
}

void Tracer::Counter(const char* name, std::int64_t value) {
  Record(TraceEventKind::kCounter, name, value);
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(buffers_mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> chunk_lock(buffer->chunks_mu);
    for (const auto& chunk : buffer->chunks) {
      const std::size_t used = chunk->used.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < used; ++i) out.push_back(chunk->events[i]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

void Tracer::WriteJsonl(std::ostream& os) const {
  for (const TraceEvent& e : Snapshot()) {
    os << "{\"type\":\"" << KindName(e.kind) << "\",\"name\":";
    WriteJsonString(os, e.name);
    os << ",\"tid\":" << e.tid << ",\"seq\":" << e.seq
       << ",\"ts_ns\":" << e.ts_ns;
    if (e.kind == TraceEventKind::kCounter) {
      os << ",\"value\":" << e.value;
    } else {
      os << ",\"arg\":" << e.value;
    }
    os << "}\n";
  }
}

bool Tracer::WriteJsonlFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  WriteJsonl(os);
  return static_cast<bool>(os);
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  std::lock_guard<std::mutex> lock(buffers_mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> chunk_lock(buffer->chunks_mu);
    for (const auto& chunk : buffer->chunks) {
      n += chunk->used.load(std::memory_order_acquire);
    }
  }
  return n;
}

}  // namespace octopocs::support
