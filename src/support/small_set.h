// SortedSmallSet — the representation behind taint labels.
//
// A taint label is the set of input-file offsets that influenced a byte of
// program state. Almost every live set is tiny (a field is 1-4 file bytes),
// so a sorted vector beats node-based sets by a wide margin and gives us
// O(n+m) unions, which dominate taint propagation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace octopocs {

template <typename T>
class SortedSmallSet {
 public:
  SortedSmallSet() = default;
  SortedSmallSet(std::initializer_list<T> init) {
    items_.assign(init.begin(), init.end());
    Normalize();
  }

  static SortedSmallSet Single(T v) {
    SortedSmallSet s;
    s.items_.push_back(v);
    return s;
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  bool Contains(T v) const {
    return std::binary_search(items_.begin(), items_.end(), v);
  }

  void Insert(T v) {
    auto it = std::lower_bound(items_.begin(), items_.end(), v);
    if (it == items_.end() || *it != v) items_.insert(it, v);
  }

  /// this ∪= other, linear merge.
  void UnionWith(const SortedSmallSet& other) {
    if (other.items_.empty()) return;
    if (items_.empty()) {
      items_ = other.items_;
      return;
    }
    std::vector<T> merged;
    merged.reserve(items_.size() + other.items_.size());
    std::set_union(items_.begin(), items_.end(), other.items_.begin(),
                   other.items_.end(), std::back_inserter(merged));
    items_ = std::move(merged);
  }

  void Clear() { items_.clear(); }

  const std::vector<T>& items() const { return items_; }

  bool operator==(const SortedSmallSet&) const = default;

 private:
  void Normalize() {
    std::sort(items_.begin(), items_.end());
    items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
  }

  std::vector<T> items_;
};

}  // namespace octopocs
