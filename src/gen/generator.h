// Seeded synthetic propagated-vulnerability pair generator (ROADMAP item 1).
//
// Manufactures (S, T, ℓ, poc, expected_verdict) pairs by the hundreds.
// Each pair picks one of five miniature parser skeletons (mirroring the
// src/formats containers: MJPG / MGIF / MTIF / MPDF / MJ2K), injects one
// vulnerability class into a self-contained shared area `gen_area` (the
// ℓ of the pair), then derives T from S by a clone-and-mutate transform:
//
//   rename-locals    textual register renames (IR-identical clone)
//   reorder-blocks   permuted basic-block emission order
//   outline-helper   T moves header validation into a helper function
//   inline-helper    S carries the outlined helper, T inlines it
//   guard-insert     T validates the crashing field up front — the pair
//                    is genuinely NotTriggerable (the guard predicate is
//                    sound: it rules out every crashing input, so even
//                    the fuzz rung cannot upgrade the verdict)
//   symex-hostile    T short-circuits unless an untainted header byte is
//                    large, then runs a symbolic-bound warm-up loop past
//                    the θ ceiling — program-dead for symex, crashable by
//                    the --fuzz-fallback rung (TriggeredByFuzzing)
//   rename-clone     ℓ itself is renamed in T (exercises t_names)
//
// Every T additionally gets a per-pair padding preamble in main (distinct
// immediates) so clone detection never matches the harnesses — only ℓ.
// src/clone/detector recovers ℓ from the generated programs and the
// generator asserts the recovery (closing the loop); generation also
// concretely executes S(poc) / T(poc) and checks the observed traps match
// the label, so a generated label is a checked promise, not a guess.
//
// Propagation chains: every 16th ordinal pair (o % 16 == 14) is the S→T
// hop of a chain and the next ordinal (o % 16 == 15) is the T→U hop —
// its S *is* the previous pair's T, enabling transitive verification
// (reform S→T, feed poc' into T→U).
//
// Determinism: everything derives from (seed, ordinal) through
// support::Rng. The same seed produces byte-identical programs, pocs and
// manifests on every run — the soak harness and CI diff rely on it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/octopocs.h"
#include "corpus/pairs.h"

namespace octopocs::gen {

/// Generated pairs use idx = kGenBase + ordinal so they can never collide
/// with the paper corpus (1..15) or the extended corpus (16..22).
inline constexpr int kGenBase = 1000;

/// Reserved index for the resource-hog pair (BuildHogPair): its T is both
/// guard-protected and symex-hostile, so a fuzz campaign with a huge
/// budget burns CPU forever without ever crashing — the deterministic way
/// to exercise rlimit kills and quarantine in the soak harness.
inline constexpr int kHogIdx = 999;

struct GeneratedPair {
  corpus::Pair pair;
  /// The label the verifier must reproduce (with the fuzz rung enabled).
  core::Verdict expected_verdict = core::Verdict::kTriggered;
  /// True when the label needs --fuzz-fallback; without the rung the
  /// pair verifies as kNotTriggerable (program-dead).
  bool needs_fuzz = false;
  std::string skeleton;    // "mjpg" | "mgif" | "mtif" | "mpdf" | "mj2k"
  std::string vuln_class;  // "oob-write" | "oob-read" | "null-deref" |
                           // "div0" | "fuel-loop" | "uaf"
  std::string mutation;    // transform that derived T (see header comment)
  int chain_hop = 0;       // 0 plain, 1 = S→T hop, 2 = T→U hop
};

/// Builds generated pair `ordinal` (0-based) of corpus `seed`.
/// pair.idx == kGenBase + ordinal. Throws std::logic_error if any
/// generation-time self-check fails (clone recovery, concrete traps).
GeneratedPair BuildGeneratedPair(std::uint64_t seed, int ordinal);

/// Ordinals [0, count). Deterministic in `seed`.
std::vector<GeneratedPair> GenerateCorpus(std::uint64_t seed, int count);

/// The rlimit-kill pair (idx == kHogIdx). `fuzz_execs` should be set huge
/// by the caller; the campaign can never crash T.
GeneratedPair BuildHogPair(std::uint64_t seed);

/// Worker-side loader: resolves a generated index back to its pair.
/// idx == kHogIdx → hog pair; idx >= kGenBase → ordinal idx - kGenBase.
/// Throws std::out_of_range for other indices.
corpus::Pair LoadGeneratedPair(std::uint64_t seed, int idx);

/// One deterministic manifest line: ordinal, taxonomy, label and FNV-1a
/// content hashes of S, T (disassembly) and the poc. `octopocs gen`
/// emits these; CI diffs two same-seed manifests byte-for-byte.
std::string DescribeGeneratedPair(const GeneratedPair& g);

}  // namespace octopocs::gen
