#include "gen/soak.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "core/journal.h"
#include "core/octopocs.h"
#include "core/parallel_verify.h"
#include "core/server.h"
#include "core/supervisor.h"
#include "gen/generator.h"
#include "support/fault.h"
#include "support/rng.h"
#include "support/subprocess.h"
#include "support/trace.h"

namespace octopocs::gen {
namespace {

void Violate(SoakReport* report, std::string message) {
  report->violations.push_back(std::move(message));
}

void SkipLeg(SoakReport* report, const char* leg, const char* why) {
  report->skipped_legs.push_back(std::string(leg) + ": " + why);
}

/// The timing-free shape of one verdict: everything two same-seed runs
/// (or a cold and a warm daemon) must agree on byte-for-byte.
std::string CanonicalLine(const GeneratedPair& g,
                          const core::VerificationReport& r) {
  return "pair " + std::to_string(g.pair.idx) + " " + g.skeleton + "/" +
         g.vuln_class + "/" + g.mutation +
         " expect=" + std::string(core::VerdictName(g.expected_verdict)) +
         " got=" + std::string(core::VerdictName(r.verdict)) + "/" +
         std::string(core::ResultTypeName(r.type));
}

/// Every leg verifies under the same rung configuration the generator's
/// labels were certified against: fuzz fallback on, pinned seed 1, the
/// soak's exec budget.
core::PipelineOptions BasePipeline(const SoakOptions& o) {
  core::PipelineOptions opts;
  opts.fuzz_fallback = true;
  opts.fuzz_seed = 1;
  opts.fuzz_execs = o.fuzz_execs;
  return opts;
}

/// Worker-side flags reproducing BasePipeline inside a pair-worker /
/// pool-worker process.
std::vector<std::string> WorkerArgs(const SoakOptions& o) {
  return {"--gen-seed",   std::to_string(o.seed),
          "--fuzz-fallback",
          "--fuzz-seed",  "1",
          "--fuzz-execs", std::to_string(o.fuzz_execs)};
}

struct LegSpan {
  LegSpan(support::Tracer* tracer, int leg) : tracer_(tracer), leg_(leg) {
    if (tracer_ != nullptr) tracer_->Begin("soak_leg", leg_);
  }
  ~LegSpan() {
    if (tracer_ != nullptr) tracer_->End("soak_leg", leg_);
  }
  support::Tracer* tracer_;
  int leg_;
};

void CountVerified(const SoakOptions& o, int total) {
  if (o.tracer != nullptr) o.tracer->Counter("soak.pairs_verified", total);
}

// -- Leg A: in-process parallel batch -----------------------------------------

void RunBatchLeg(const SoakOptions& o, const std::vector<GeneratedPair>& gen,
                 std::vector<core::VerificationReport>* reports,
                 SoakReport* report, int* verified) {
  LegSpan span(o.tracer, 1);
  std::vector<corpus::Pair> pairs;
  pairs.reserve(gen.size());
  for (const GeneratedPair& g : gen) pairs.push_back(g.pair);
  core::CorpusRunConfig config;
  config.jobs = o.jobs;
  *reports = core::VerifyCorpus(pairs, BasePipeline(o), config);
  ++report->legs_run;
  if (reports->size() != pairs.size()) {
    Violate(report, "batch: " + std::to_string(reports->size()) +
                        " verdicts for " + std::to_string(pairs.size()) +
                        " pairs (exactly-once violated)");
    return;
  }
  for (std::size_t i = 0; i < gen.size(); ++i) {
    const std::string line = CanonicalLine(gen[i], (*reports)[i]);
    report->canonical.push_back(line);
    if ((*reports)[i].verdict == gen[i].expected_verdict) {
      ++report->label_matches;
    } else {
      Violate(report, "batch: label mismatch: " + line +
                          " detail: " + (*reports)[i].detail);
    }
  }
  *verified += static_cast<int>(gen.size());
  CountVerified(o, *verified);
}

// -- Leg B: transitive S→T→U chains -------------------------------------------

void RunChainLeg(const SoakOptions& o, const std::vector<GeneratedPair>& gen,
                 const std::vector<core::VerificationReport>& batch,
                 SoakReport* report, int* verified) {
  LegSpan span(o.tracer, 2);
  ++report->legs_run;
  int failures = 0;
  for (std::size_t i = 0; i + 1 < gen.size(); ++i) {
    if (gen[i].chain_hop != 1 || gen[i + 1].chain_hop != 2) continue;
    core::VerificationReport hop1;
    if (i < batch.size()) {
      hop1 = batch[i];
    } else {
      hop1 = core::VerifyPair(gen[i].pair, BasePipeline(o));
      ++*verified;
    }
    if (hop1.verdict != core::Verdict::kTriggered ||
        hop1.reformed_poc.empty()) {
      ++failures;
      Violate(report, "chain: hop 1 (pair " + std::to_string(gen[i].pair.idx) +
                          ") produced no reformed poc");
      continue;
    }
    // The reformed poc' proven against T is the evidence for the T→U
    // hop — the transitive propagation claim from the paper.
    corpus::Pair second = gen[i + 1].pair;
    second.poc = hop1.reformed_poc;
    const core::VerificationReport hop2 =
        core::VerifyPair(second, BasePipeline(o));
    ++*verified;
    if (hop2.verdict != core::Verdict::kTriggered) {
      ++failures;
      Violate(report, "chain: hop 2 (pair " + std::to_string(second.idx) +
                          ") verdict " +
                          std::string(core::VerdictName(hop2.verdict)) +
                          " on the reformed poc: " + hop2.detail);
    } else {
      ++report->chains_verified;
    }
  }
  if (static_cast<int>(gen.size()) >= 16 && report->chains_verified == 0 &&
      failures == 0) {
    Violate(report, "chain: no chain found in a corpus of " +
                        std::to_string(gen.size()));
  }
  CountVerified(o, *verified);
}

// -- Legs C/D: supervised workers, journal exactly-once, resume ---------------

std::string JournalFingerprint(const SoakOptions& o, std::size_t pair_count) {
  // The generator seed is verdict-bearing for a generated corpus exactly
  // like the fuzz knobs are for the stock one, so it rides the journal
  // fingerprint: a journal written under seed A must never resume under
  // seed B.
  return core::CorpusOptionsFingerprint(BasePipeline(o), /*extended=*/false,
                                        pair_count, /*pair_deadline_ms=*/0,
                                        /*isolate=*/true, /*rlimit_mb=*/0) +
         "-g" + std::to_string(o.seed);
}

void RunIsolatedLeg(const SoakOptions& o, const std::vector<GeneratedPair>& gen,
                    const std::string& journal_path, SoakReport* report,
                    int* verified) {
  LegSpan span(o.tracer, 3);
  std::vector<corpus::Pair> pairs;
  pairs.reserve(gen.size());
  for (const GeneratedPair& g : gen) pairs.push_back(g.pair);

  core::IsolationOptions iso;
  iso.worker_binary = o.worker_binary;
  iso.worker_args = WorkerArgs(o);
  iso.max_retries = 3;
  iso.deadline_ms = 120000;
  if (o.chaos) {
    // One worker process SIGABRTs mid-pair at a pipeline fault site
    // chosen by the seed; the stamp file makes it happen exactly once,
    // and the supervisor's respawn-and-retry must absorb it without
    // losing or duplicating the pair.
    const auto site = static_cast<support::FaultSite>(o.seed % 5);
    iso.worker_args.push_back("--abort-fault");
    iso.worker_args.push_back(std::string(support::FaultSiteName(site)) +
                              ":0:" + o.workdir + "/abort.stamp");
    ++report->chaos_faults_armed;
  }

  std::string err;
  auto journal = core::Journal::Create(
      journal_path, JournalFingerprint(o, pairs.size()), pairs.size(), &err);
  if (journal == nullptr) {
    Violate(report, "isolated: cannot create journal: " + err);
    return;
  }
  core::CorpusRunConfig config;
  config.jobs = o.jobs;
  config.isolation = &iso;
  config.journal = journal.get();
  const auto reports = core::VerifyCorpus(pairs, BasePipeline(o), config);
  journal.reset();  // close + final fsync before replaying it
  ++report->legs_run;

  if (reports.size() != pairs.size()) {
    Violate(report, "isolated: verdict count mismatch");
    return;
  }
  for (std::size_t i = 0; i < gen.size(); ++i) {
    if (reports[i].verdict != gen[i].expected_verdict) {
      Violate(report, "isolated: " + CanonicalLine(gen[i], reports[i]) +
                          " detail: " + reports[i].detail);
    }
  }
  *verified += static_cast<int>(gen.size());
  CountVerified(o, *verified);

  // Exactly-once, proven from the durable record: every pair finished
  // in the journal exactly once (LoadJournal rejects duplicates), none
  // lost, no torn tail after a clean close.
  auto state = core::LoadJournal(journal_path, &err);
  if (!state) {
    Violate(report, "isolated: journal unreadable after the run: " + err);
    return;
  }
  if (state->torn_tail) {
    Violate(report, "isolated: torn journal tail after a clean close");
  }
  if (state->finished.size() != pairs.size()) {
    Violate(report, "isolated: journal finished " +
                        std::to_string(state->finished.size()) + "/" +
                        std::to_string(pairs.size()) + " pairs");
  }
  for (const corpus::Pair& p : pairs) {
    if (state->finished.count(p.idx) == 0) {
      Violate(report, "isolated: pair " + std::to_string(p.idx) +
                          " lost from the journal");
    }
  }
}

void RunResumeLeg(const SoakOptions& o, const std::vector<GeneratedPair>& gen,
                  const std::string& journal_path, SoakReport* report) {
  LegSpan span(o.tracer, 4);
  std::vector<corpus::Pair> pairs;
  pairs.reserve(gen.size());
  for (const GeneratedPair& g : gen) pairs.push_back(g.pair);
  std::string err;
  auto state = core::LoadJournal(journal_path, &err);
  if (!state) {
    Violate(report, "resume: cannot load journal: " + err);
    return;
  }
  if (state->options_hash != JournalFingerprint(o, pairs.size())) {
    Violate(report, "resume: journal fingerprint drifted");
    return;
  }
  auto journal = core::Journal::Resume(journal_path, *state, &err);
  if (journal == nullptr) {
    Violate(report, "resume: cannot reopen journal: " + err);
    return;
  }

  core::IsolationOptions iso;
  iso.worker_binary = o.worker_binary;
  iso.worker_args = WorkerArgs(o);
  iso.deadline_ms = 120000;
  core::WorkerPool pool(iso, o.jobs);
  core::CorpusRunConfig config;
  config.jobs = o.jobs;
  config.isolation = &iso;
  config.worker_pool = &pool;
  config.journal = journal.get();
  config.resume_finished = &state->finished;
  const auto reports = core::VerifyCorpus(pairs, BasePipeline(o), config);
  ++report->legs_run;

  // A warm restart replays, it does not re-run: with every pair already
  // finished, the pool must never have been handed work.
  report->resume_dispatches = pool.stats().dispatches;
  if (report->resume_dispatches != 0) {
    Violate(report, "resume: " + std::to_string(report->resume_dispatches) +
                        " pair(s) re-dispatched on a fully finished journal");
  }
  for (std::size_t i = 0; i < gen.size() && i < reports.size(); ++i) {
    if (reports[i].verdict != gen[i].expected_verdict) {
      Violate(report, "resume: replayed verdict drifted: " +
                          CanonicalLine(gen[i], reports[i]));
    }
  }
}

// -- Leg E: the resource hog vs RLIMIT_CPU ------------------------------------

void RunRlimitLeg(const SoakOptions& o, SoakReport* report) {
  LegSpan span(o.tracer, 5);
  const GeneratedPair hog = BuildHogPair(o.seed);
  core::IsolationOptions iso;
  iso.worker_binary = o.worker_binary;
  // A fuzz budget no campaign against a guarded+hostile T can spend:
  // the worker burns its whole CPU allowance mutating rejected inputs.
  iso.worker_args = {"--gen-seed", std::to_string(o.seed), "--fuzz-fallback",
                     "--fuzz-execs", "2000000000"};
  iso.max_retries = 1;
  iso.cpu_seconds = 1;
  iso.deadline_ms = 30000;
  const core::SupervisedResult sr =
      core::RunSupervisedPair(hog.pair, iso, nullptr);
  ++report->legs_run;
  if (sr.quarantined) ++report->quarantines;
  const bool killed = sr.last_outcome == core::ChildOutcome::kResourceKill ||
                      sr.last_outcome == core::ChildOutcome::kTimeout;
  if (!killed) {
    Violate(report,
            "rlimit: hog pair ended as " +
                std::string(core::ChildOutcomeName(sr.last_outcome)) +
                " instead of a resource kill");
  }
  // The one verdict a killed worker may produce is the contained
  // infrastructure failure — anything decisive would be a lie.
  if (sr.report.verdict != core::Verdict::kFailure) {
    Violate(report, "rlimit: hog pair got decisive verdict " +
                        std::string(core::VerdictName(sr.report.verdict)));
  }
  if (report->quarantines > 1) {
    Violate(report, "rlimit: quarantines not bounded: " +
                        std::to_string(report->quarantines));
  }
}

// -- Legs F/G: the daemon under chaos and under SIGKILL -----------------------

struct ServedSlot {
  int count = 0;
  core::Verdict verdict = core::Verdict::kFailure;
  std::string line;
};

/// One client's unit of work: keep asking until a clean report arrives.
/// RETRY_AFTER sheds and transport failures (a daemon mid-restart) retry
/// inside SendRequestWithRetry; a contained/deadline report is transient
/// by definition (the server never caches one), so it is re-asked
/// outright.
bool ServeOnePair(const std::string& socket_path, const SoakOptions& o,
                  const GeneratedPair& g, core::VerificationReport* out,
                  std::atomic<int>* retries) {
  core::ServeRequest request;
  request.pair = g.pair.idx;
  request.gen_seed = o.seed;
  request.fuzz_fallback = true;
  request.fuzz_seed = 1;
  request.fuzz_execs = o.fuzz_execs;
  request.id = "soak";
  core::RetryPolicy policy;
  policy.max_retries = 40;
  policy.base_backoff_ms = 5;
  policy.max_backoff_ms = 400;
  policy.retry_transport = true;
  for (int resend = 0; resend < 8; ++resend) {
    int attempts = 0;
    const core::ClientResult result = core::SendRequestWithRetry(
        socket_path, request, 60000, policy, &attempts);
    retries->fetch_add(attempts - 1 + (resend != 0 ? 1 : 0),
                       std::memory_order_relaxed);
    if (result.ok && !result.report.exception_contained &&
        !result.report.deadline_expired) {
      *out = result.report;
      return true;
    }
  }
  return false;
}

void RunServeLeg(const SoakOptions& o, const std::vector<GeneratedPair>& gen,
                 SoakReport* report, int* verified) {
  LegSpan span(o.tracer, 6);
  core::SetGenPairLoader(&LoadGeneratedPair);
  core::ServeOptions so;
  so.socket_path = o.workdir + "/soak.sock";
  so.cache_dir = o.workdir + "/serve-cache";
  so.workers = o.jobs;
  so.queue_depth = 4;  // small on purpose: shedding is part of the soak
  const std::string socket_path = so.socket_path;
  core::Server server(std::move(so));
  std::string err;
  if (!server.Start(&err)) {
    Violate(report, "serve: daemon would not start: " + err);
    return;
  }

  std::atomic<bool> done{false};
  std::atomic<int> retries{0};
  std::atomic<int> armed{0};
  std::thread chaos;
  if (o.chaos) {
    chaos = std::thread([&] {
      // Cycle through every fault site — admission, disk-store and
      // response writes included — on a seeded schedule. Each Arm is
      // one-shot, so this is a stream of isolated infrastructure
      // failures the daemon must absorb per-request.
      Rng rng(o.seed ^ 0x9e3779b97f4a7c15ULL);
      int i = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const auto site = static_cast<support::FaultSite>(
            static_cast<std::size_t>(i) % support::kFaultSiteCount);
        support::fault::Arm(site, rng.Below(3));
        armed.fetch_add(1, std::memory_order_relaxed);
        ++i;
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
      support::fault::Disarm();
    });
  }

  std::vector<ServedSlot> slots(gen.size());
  std::mutex mu;
  std::vector<std::thread> clients;
  std::atomic<std::size_t> next{0};
  const unsigned nclients = std::max(1u, o.jobs);
  for (unsigned c = 0; c < nclients; ++c) {
    clients.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= gen.size()) return;
        core::VerificationReport r;
        if (ServeOnePair(socket_path, o, gen[i], &r, &retries)) {
          std::lock_guard<std::mutex> lock(mu);
          ++slots[i].count;
          slots[i].verdict = r.verdict;
          slots[i].line = CanonicalLine(gen[i], r);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  done.store(true, std::memory_order_relaxed);
  if (chaos.joinable()) chaos.join();
  support::fault::Disarm();
  report->server_sheds += server.stats().shed;
  server.Drain();
  ++report->legs_run;
  report->chaos_faults_armed += armed.load(std::memory_order_relaxed);
  report->client_retries += retries.load(std::memory_order_relaxed);

  for (std::size_t i = 0; i < gen.size(); ++i) {
    if (slots[i].count != 1) {
      Violate(report, "serve: pair " + std::to_string(gen[i].pair.idx) +
                          " got " + std::to_string(slots[i].count) +
                          " verdicts under chaos");
    } else if (slots[i].verdict != gen[i].expected_verdict) {
      Violate(report, "serve: label mismatch: " + slots[i].line);
    }
  }
  *verified += static_cast<int>(gen.size());
  CountVerified(o, *verified);
}

void RunDaemonLeg(const SoakOptions& o, const std::vector<GeneratedPair>& gen,
                  SoakReport* report, int* verified) {
  LegSpan span(o.tracer, 7);
#ifdef _WIN32
  (void)gen;
  (void)verified;
  SkipLeg(report, "daemon", "requires POSIX");
  return;
#else
  const std::string sock = o.workdir + "/daemon.sock";
  const std::string cache = o.workdir + "/daemon-cache";
  support::PersistentProcess daemon;
  const auto spawn = [&]() -> bool {
    // A SIGKILL leaves the old socket file behind; unlink it so
    // readiness below really means the new daemon is listening.
    ::unlink(sock.c_str());
    std::string err;
    if (!daemon.Spawn({o.worker_binary, "serve", "--socket", sock,
                       "--cache-dir", cache, "--workers",
                       std::to_string(std::max(1u, o.jobs))},
                      support::SubprocessLimits{}, &err)) {
      return false;
    }
    for (int i = 0; i < 400; ++i) {
      if (::access(sock.c_str(), F_OK) == 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return false;
  };
  if (!spawn()) {
    Violate(report, "daemon: never became ready on " + sock);
    return;
  }

  std::atomic<int> retries{0};
  std::atomic<std::size_t> next{0};
  std::vector<ServedSlot> slots(gen.size());
  std::mutex mu;
  std::vector<std::thread> clients;
  for (unsigned c = 0; c < std::max(1u, o.jobs); ++c) {
    clients.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= gen.size()) return;
        core::VerificationReport r;
        if (ServeOnePair(sock, o, gen[i], &r, &retries)) {
          std::lock_guard<std::mutex> lock(mu);
          ++slots[i].count;
          slots[i].verdict = r.verdict;
          slots[i].line = CanonicalLine(gen[i], r);
        }
      }
    });
  }
  // The kill happens mid-load: once the clients are past a checkpoint,
  // SIGKILL the daemon under them and bring a fresh one up on the same
  // cache dir. In-flight requests die with it; the clients' transport
  // retries ride through the dead window, and the restarted daemon's
  // disk tier must hand back the pre-kill verdicts unchanged.
  for (int kill = 0; kill < o.daemon_kills; ++kill) {
    const std::size_t checkpoint =
        (gen.size() * static_cast<std::size_t>(kill + 1)) /
        static_cast<std::size_t>(o.daemon_kills + 1);
    while (next.load(std::memory_order_relaxed) < checkpoint) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    daemon.Kill();
    ++report->daemon_restarts;
    if (!spawn()) {
      Violate(report, "daemon: restart " + std::to_string(kill + 1) +
                          " never became ready");
      break;
    }
  }
  for (std::thread& t : clients) t.join();
  ++report->legs_run;
  report->client_retries += retries.load(std::memory_order_relaxed);

  bool streamed_ok = true;
  for (std::size_t i = 0; i < gen.size(); ++i) {
    if (slots[i].count != 1) {
      streamed_ok = false;
      Violate(report, "daemon: pair " + std::to_string(gen[i].pair.idx) +
                          " got " + std::to_string(slots[i].count) +
                          " verdicts across the restart");
    } else if (slots[i].verdict != gen[i].expected_verdict) {
      Violate(report, "daemon: label mismatch: " + slots[i].line);
    }
  }
  *verified += static_cast<int>(gen.size());

  // Warm identity: re-ask the restarted daemon for every pair. Each
  // answer must be canonically byte-identical to the one streamed
  // around the kill — nothing lost, nothing duplicated, nothing
  // re-decided differently.
  if (streamed_ok) {
    for (std::size_t i = 0; i < gen.size(); ++i) {
      core::VerificationReport r;
      if (!ServeOnePair(sock, o, gen[i], &r, &retries)) {
        Violate(report, "daemon: warm re-request for pair " +
                            std::to_string(gen[i].pair.idx) + " failed");
        continue;
      }
      const std::string warm = CanonicalLine(gen[i], r);
      if (warm != slots[i].line) {
        Violate(report, "daemon: warm verdict drifted: streamed '" +
                            slots[i].line + "' vs warm '" + warm + "'");
      }
    }
    *verified += static_cast<int>(gen.size());
  }
  CountVerified(o, *verified);
  daemon.Kill();
#endif
}

}  // namespace

SoakReport RunSoak(const SoakOptions& options) {
  SoakReport report;
  report.pairs = options.pairs;
  int verified = 0;
  const bool have_workdir = !options.workdir.empty();
  const bool have_binary = !options.worker_binary.empty();
  try {
    std::vector<GeneratedPair> gen;
    if (options.tracer != nullptr) options.tracer->Begin("gen", options.pairs);
    gen = GenerateCorpus(options.seed, options.pairs);
    if (options.tracer != nullptr) options.tracer->End("gen", options.pairs);

    std::vector<core::VerificationReport> batch;
    if (options.run_batch) {
      RunBatchLeg(options, gen, &batch, &report, &verified);
    } else {
      SkipLeg(&report, "batch", "disabled");
    }
    if (options.run_chain) {
      RunChainLeg(options, gen, batch, &report, &verified);
    } else {
      SkipLeg(&report, "chain", "disabled");
    }

    const std::string journal_path = options.workdir + "/soak.journal";
    if (!options.run_isolated) {
      SkipLeg(&report, "isolated", "disabled");
    } else if (!have_workdir || !have_binary) {
      SkipLeg(&report, "isolated", "needs workdir + worker binary");
    } else {
      RunIsolatedLeg(options, gen, journal_path, &report, &verified);
    }
    if (!options.run_resume) {
      SkipLeg(&report, "resume", "disabled");
    } else if (!have_workdir || !have_binary || !options.run_isolated) {
      SkipLeg(&report, "resume", "needs the isolated leg's journal");
    } else {
      RunResumeLeg(options, gen, journal_path, &report);
    }
    if (!options.run_rlimit) {
      SkipLeg(&report, "rlimit", "disabled");
    } else if (!have_binary) {
      SkipLeg(&report, "rlimit", "needs worker binary");
    } else {
      RunRlimitLeg(options, &report);
    }
    if (!options.run_serve) {
      SkipLeg(&report, "serve", "disabled");
    } else if (!have_workdir) {
      SkipLeg(&report, "serve", "needs workdir");
    } else {
      RunServeLeg(options, gen, &report, &verified);
    }
    if (!options.run_daemon) {
      SkipLeg(&report, "daemon", "disabled");
    } else if (!have_workdir || !have_binary) {
      SkipLeg(&report, "daemon", "needs workdir + worker binary");
    } else {
      RunDaemonLeg(options, gen, &report, &verified);
    }
  } catch (const std::exception& e) {
    Violate(&report, std::string("soak: uncontained exception: ") + e.what());
  }
  std::sort(report.canonical.begin(), report.canonical.end());
  if (options.tracer != nullptr) {
    options.tracer->Counter(
        "soak.violations", static_cast<std::int64_t>(report.violations.size()));
  }
  return report;
}

std::string SerializeSoakReport(const SoakReport& report) {
  // Deterministic fields only: everything here must be byte-identical
  // across two same-seed soaks (CI diffs this text). Retry, shed and
  // chaos counts are timing-dependent and deliberately absent.
  std::string out = "soak-report v1\n";
  out += "pairs " + std::to_string(report.pairs) + "\n";
  out += "legs " + std::to_string(report.legs_run) + " skipped " +
         std::to_string(report.skipped_legs.size()) + "\n";
  out += "label-matches " + std::to_string(report.label_matches) + "\n";
  out += "chains-verified " + std::to_string(report.chains_verified) + "\n";
  for (const std::string& s : report.skipped_legs) out += "skip " + s + "\n";
  for (const std::string& line : report.canonical) out += line + "\n";
  out += "violations " + std::to_string(report.violations.size()) + "\n";
  for (const std::string& v : report.violations) out += "violation " + v + "\n";
  out += report.ok() ? "ok\n" : "FAILED\n";
  return out;
}

}  // namespace octopocs::gen
