// Chaos soak harness: streams a generated corpus (gen/generator.h)
// through every execution surface the project has — in-process parallel
// batch, supervised one-shot workers, the persistent worker pool,
// journal resume, the serve daemon (in-process and as a SIGKILLed-and-
// restarted subprocess) — under a seeded chaos schedule that arms every
// support::FaultSite, and mechanically checks the crash-tolerance
// invariants the design documents promise:
//
//   - every generated pair ends with exactly one verdict per leg;
//   - every verdict matches the generator's label (including
//     NotTriggerable guard pairs, TriggeredByFuzzing hostile pairs and
//     a transitive S→T→U chain);
//   - the same seed yields byte-identical corpora and byte-identical
//     canonical reports across runs (SerializeSoakReport is the
//     diffable artifact);
//   - a journal written under worker chaos replays every pair exactly
//     once, and a resume re-dispatches nothing;
//   - a SIGKILLed daemon restarted on the same cache dir loses no
//     verdict and answers every repeat request identically;
//   - the resource-hog pair dies to its rlimit, classified as a
//     resource kill, without wedging or mislabeling anything.
//
// Any violated invariant lands in SoakReport::violations; ok() is the
// single gate CI checks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace octopocs::support {
class Tracer;
}

namespace octopocs::gen {

struct SoakOptions {
  /// Seeds the generator, the chaos schedule and the fuzz rung.
  std::uint64_t seed = 1;
  /// Generated corpus size (ordinals 0..pairs-1).
  int pairs = 64;
  /// Parallelism: in-process verification jobs, serve worker threads,
  /// client threads, pool size.
  unsigned jobs = 2;
  /// Arm fault sites / abort workers during the legs. Off = a plain
  /// correctness soak (still checks every label).
  bool chaos = true;
  /// Scratch directory for journals, caches, sockets and stamp files.
  /// Required by every leg except the pure in-process ones.
  std::string workdir;
  /// Path of the octopocs CLI for worker/daemon legs; empty skips them.
  std::string worker_binary;
  /// SIGKILL-and-restart cycles in the daemon leg.
  int daemon_kills = 1;
  /// Fuzz-rung budget per pair. Small by default: generated hostile
  /// pairs crash within a few thousand execs.
  std::uint64_t fuzz_execs = 20000;
  support::Tracer* tracer = nullptr;
  // Leg switches (CI's smoke preset runs all of them).
  bool run_batch = true;     // A: in-process VerifyCorpus
  bool run_chain = true;     // B: transitive S→T→U chains
  bool run_isolated = true;  // C: supervised workers + journal, chaos
  bool run_resume = true;    // D: journal replay through a worker pool
  bool run_rlimit = true;    // E: hog pair vs RLIMIT_CPU
  bool run_serve = true;     // F: in-process daemon + retrying clients
  bool run_daemon = true;    // G: subprocess daemon, SIGKILL mid-load
};

struct SoakReport {
  int pairs = 0;
  int legs_run = 0;
  // Deterministic body (serialized; CI byte-diffs two same-seed runs).
  int label_matches = 0;  // out of `pairs`, from the batch leg
  int chains_verified = 0;
  std::vector<std::string> canonical;   // sorted timing-free verdict lines
  std::vector<std::string> violations;  // empty == every invariant held
  std::vector<std::string> skipped_legs;
  // Run-dependent stats (printed, never serialized: retry/shed counts
  // depend on scheduling and chaos timing).
  int chaos_faults_armed = 0;
  int client_retries = 0;
  std::uint64_t server_sheds = 0;
  int daemon_restarts = 0;
  int quarantines = 0;
  std::uint64_t resume_dispatches = 0;  // must stay 0 (leg D)

  bool ok() const { return violations.empty(); }
};

/// Runs every enabled leg. Never throws; infrastructure problems (a
/// missing workdir, a daemon that would not start) become violations.
SoakReport RunSoak(const SoakOptions& options);

/// The deterministic half of the report as text: pair count, canonical
/// verdict lines, chain count, violations. Two same-seed soaks must
/// serialize byte-identically — that equality is itself a soak invariant
/// CI enforces by diffing.
std::string SerializeSoakReport(const SoakReport& report);

}  // namespace octopocs::gen
