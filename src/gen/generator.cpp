#include "gen/generator.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "clone/detector.h"
#include "formats/formats.h"
#include "support/rng.h"
#include "vm/asm.h"
#include "vm/disasm.h"
#include "vm/interp.h"

namespace octopocs::gen {
namespace {

// ---------------------------------------------------------------------------
// Parser skeletons. Each mirrors one of the miniature src/formats
// containers: a little-endian u32 magic, a reserved header byte (read but
// never loaded by S — the symex-hostile variants hinge on it being
// untainted), an optional element count, then a dispatch loop over
// length-prefixed elements, one type of which calls the shared area.
// ---------------------------------------------------------------------------

enum class Dispatch {
  kSeg2,    // [type:1][len:2] segments, explicit end marker      (MJPG)
  kBlock1,  // [type:1] blocks, non-vuln blocks carry [len:1]     (MGIF)
  kRec1,    // counted [type:1] records with [len:1] skip         (MTIF)
  kObj2,    // counted [type:1][len:2] objects                    (MPDF)
  kDirect,  // header then a single direct call                   (MJ2K)
};

struct Skeleton {
  const char* key;
  std::uint32_t magic;
  int header_len;   // bytes of the fixed header (includes count byte)
  bool counted;     // count byte lives at header offset 5
  Dispatch dispatch;
  int elem_header_len;  // vuln element's own header before the payload
  std::uint8_t vuln_type;
  std::uint8_t end_type;   // kSeg2/kBlock1 only
  std::uint8_t lead_type;  // benign element type for the skip path
};

constexpr Skeleton kSkeletons[] = {
    // MJPG reuses the real stream-chunk / end segment types.
    {"mjpg", 0x47504a4du, 5, false, Dispatch::kSeg2, 3,
     formats::kMjpgStreamChunk, formats::kMjpgEnd, 0x10},
    {"mgif", 0x4649474du, 5, false, Dispatch::kBlock1, 1, 0x2c, 0x3b, 0x21},
    {"mtif", 0x4649544du, 6, true, Dispatch::kRec1, 1, 0x07, 0x00, 0x09},
    {"mpdf", 0x4644504du, 6, true, Dispatch::kObj2, 3, 0x02, 0x00, 0x01},
    {"mj2k", 0x4b324a4du, 5, false, Dispatch::kDirect, 0, 0x00, 0x00, 0x00},
};
constexpr int kSkeletonCount = 5;

int FirstPayloadOff(const Skeleton& sk) {
  return sk.header_len + sk.elem_header_len;
}

// ---------------------------------------------------------------------------
// Vulnerability classes. Each is a self-contained ℓ (`func gen_area`)
// that reads its own payload from the current file position. Loops live
// inside ℓ, where symex never traverses (P2/P3 pins bunches at the ep
// boundary), so symbolic-bound loops here are safe by construction.
// ---------------------------------------------------------------------------

enum class GuardKind { kNone, kLen16Le32, kByteLt4, kByteNe0 };

struct VulnClass {
  const char* key;
  const char* cwe;
  vm::TrapKind trap;
  bool guardable;    // guard-insert produces a *sound* patch
  bool hostile_ok;   // cheap enough per-exec for the fuzz rung
  GuardKind guard;
  int guard_off;     // payload offset of the guarded field
  int guard_width;
  const char* body;  // "  func gen_area(mode)\n..."
};

// OOB write: 16-bit length field trusted into a 32-byte staging read.
const char* kVulnOobWrite = R"(
  func gen_area(mode)
    movi %two, 2
    alloc %lenbuf, %two
    read %got, %lenbuf, %two
    load.2 %len, %lenbuf, 0
    movi %cap, 32
    alloc %staging, %cap
    read %gdata, %staging, %len
    ret %len
)";

// OOB read: 8-byte-slot table indexed by an unchecked byte. The table is
// the most recent allocation, so any slot >= 4 lands outside every live
// region.
const char* kVulnOobRead = R"(
  func gen_area(mode)
    movi %one, 1
    alloc %idxbuf, %one
    read %got, %idxbuf, %one
    load.1 %idx, %idxbuf, 0
    movi %tabsz, 32
    alloc %tab, %tabsz
    movi %eight, 8
    mul %off, %idx, %eight
    add %slot, %tab, %off
    load.8 %val, %slot, 0
    ret %val
)";

// Null deref: a zero-initialized pointer table is populated for ncomp
// components; component 0 is dereferenced unconditionally. The table has
// 256 slots so *only* ncomp == 0 can crash — that soundness is what makes
// the guard-insert variant genuinely NotTriggerable.
const char* kVulnNullDeref = R"(
  func gen_area(mode)
    movi %one, 1
    alloc %cntbuf, %one
    read %got, %cntbuf, %one
    load.1 %ncomp, %cntbuf, 0
    movi %tabsz, 2048
    alloc %ptrs, %tabsz
    movi %i, 0
  mkloop:
    cmpltu %more, %i, %ncomp
    br %more, mkone, use
  mkone:
    movi %csz, 16
    alloc %comp, %csz
    movi %eight, 8
    mul %slotoff, %i, %eight
    add %slot, %ptrs, %slotoff
    store.8 %comp, %slot, 0
    addi %i, %i, 1
    jmp mkloop
  use:
    load.8 %first, %ptrs, 0
    load.4 %px, %first, 0
    ret %px
)";

// Division by zero: [w:2][den:1], den trusted.
const char* kVulnDiv0 = R"(
  func gen_area(mode)
    movi %three, 3
    alloc %hdr, %three
    read %got, %hdr, %three
    load.2 %w, %hdr, 0
    load.1 %den, %hdr, 2
    divu %scaled, %w, %den
    ret %scaled
)";

// Fuel loop (CWE-835): a stride walk over a 256-residue ring that only
// terminates when the walk hits 255. Odd strides generate the full ring
// (terminate); even strides never reach 255 — an exact-state cycle the
// interpreter fast-forwards to kFuelExhausted.
const char* kVulnFuelLoop = R"(
  func gen_area(mode)
    movi %one, 1
    alloc %sbuf, %one
    read %got, %sbuf, %one
    load.1 %stride, %sbuf, 0
    movi %mask, 255
    movi %target, 255
    movi %i, 0
  walk:
    cmpeq %done, %i, %target
    br %done, fin, step
  step:
    add %i, %i, %stride
    and %i, %i, %mask
    jmp walk
  fin:
    ret %i
)";

// Use after free: [nrec:1] then [kind:1][val:1] records; kind 0xFE frees
// the scratch buffer, data records store through it.
const char* kVulnUaf = R"(
  func gen_area(mode)
    movi %ssz, 8
    alloc %scratch, %ssz
    movi %one, 1
    alloc %cbuf, %one
    read %got, %cbuf, %one
    load.1 %nrec, %cbuf, 0
    movi %two, 2
    alloc %rec, %two
    movi %i, 0
  recloop:
    cmpltu %more, %i, %nrec
    br %more, recbody, recdone
  recbody:
    read %grec, %rec, %two
    load.1 %kind, %rec, 0
    movi %freemark, 254
    cmpeq %isfree, %kind, %freemark
    br %isfree, dofree, dodata
  dofree:
    free %scratch
    addi %i, %i, 1
    jmp recloop
  dodata:
    load.1 %val, %rec, 1
    store.1 %val, %scratch, 0
    addi %i, %i, 1
    jmp recloop
  recdone:
    ret %i
)";

const VulnClass kVulnClasses[] = {
    {"oob-write", "CWE-787", vm::TrapKind::kOutOfBounds, true, true,
     GuardKind::kLen16Le32, 0, 2, kVulnOobWrite},
    {"oob-read", "CWE-125", vm::TrapKind::kOutOfBounds, true, true,
     GuardKind::kByteLt4, 0, 1, kVulnOobRead},
    {"null-deref", "CWE-476", vm::TrapKind::kNullDeref, true, false,
     GuardKind::kByteNe0, 0, 1, kVulnNullDeref},
    {"div0", "CWE-369", vm::TrapKind::kDivByZero, true, true,
     GuardKind::kByteNe0, 2, 1, kVulnDiv0},
    // A single-byte guard is not sound for these two (any even stride
    // hangs; any record stream with a free before a store crashes), so
    // guard-insert and the fuzz rung skip them.
    {"fuel-loop", "CWE-835", vm::TrapKind::kFuelExhausted, false, false,
     GuardKind::kNone, 0, 1, kVulnFuelLoop},
    {"uaf", "CWE-416", vm::TrapKind::kUseAfterFree, false, false,
     GuardKind::kNone, 0, 1, kVulnUaf},
};
constexpr int kVulnClassCount = 6;

Bytes TriggerPayload(const VulnClass& vc, Rng& rng) {
  Bytes p;
  std::string key = vc.key;
  if (key == "oob-write") {
    AppendLe(p, 48, 2);  // staging is 32 bytes
    for (int i = 0; i < 48; ++i) p.push_back(static_cast<std::uint8_t>(rng.Below(256)));
  } else if (key == "oob-read") {
    p.push_back(9);  // 4 valid slots
  } else if (key == "null-deref") {
    p.push_back(0);
  } else if (key == "div0") {
    AppendLe(p, 0x40, 2);
    p.push_back(0);
  } else if (key == "fuel-loop") {
    p.push_back(2);  // even stride: never reaches 255
  } else {           // uaf: data, free, data-through-freed
    p.push_back(3);
    p.push_back(0x01); p.push_back(static_cast<std::uint8_t>(rng.Below(256)));
    p.push_back(0xfe); p.push_back(0x00);
    p.push_back(0x01); p.push_back(static_cast<std::uint8_t>(rng.Below(256)));
  }
  return p;
}

Bytes BenignPayload(const VulnClass& vc, Rng& rng) {
  Bytes p;
  std::string key = vc.key;
  if (key == "oob-write") {
    AppendLe(p, 16, 2);
    for (int i = 0; i < 16; ++i) p.push_back(static_cast<std::uint8_t>(rng.Below(256)));
  } else if (key == "oob-read") {
    p.push_back(static_cast<std::uint8_t>(rng.Below(4)));
  } else if (key == "null-deref") {
    p.push_back(static_cast<std::uint8_t>(1 + rng.Below(6)));
  } else if (key == "div0") {
    AppendLe(p, 0x40, 2);
    p.push_back(static_cast<std::uint8_t>(1 + rng.Below(250)));
  } else if (key == "fuel-loop") {
    p.push_back(static_cast<std::uint8_t>(1 + 2 * rng.Below(120)));  // odd
  } else {  // uaf: two data records, no free
    p.push_back(2);
    p.push_back(0x01); p.push_back(static_cast<std::uint8_t>(rng.Below(256)));
    p.push_back(0x01); p.push_back(static_cast<std::uint8_t>(rng.Below(256)));
  }
  return p;
}

// ---------------------------------------------------------------------------
// Container construction.
// ---------------------------------------------------------------------------

Bytes BuildContainer(const Skeleton& sk, const std::vector<Bytes>& leads,
                     ByteView payload) {
  Bytes out;
  AppendLe(out, sk.magic, 4);
  out.push_back(0);  // reserved byte (offset 4) — untainted in S
  if (sk.counted)
    out.push_back(static_cast<std::uint8_t>(leads.size() + 1));
  for (const Bytes& filler : leads) {
    switch (sk.dispatch) {
      case Dispatch::kSeg2:
        out.push_back(sk.lead_type);
        AppendLe(out, filler.size(), 2);
        break;
      case Dispatch::kBlock1:
        out.push_back(sk.lead_type);
        out.push_back(static_cast<std::uint8_t>(filler.size()));
        break;
      case Dispatch::kRec1:
        out.push_back(sk.lead_type);
        out.push_back(static_cast<std::uint8_t>(filler.size()));
        break;
      case Dispatch::kObj2:
        out.push_back(sk.lead_type);
        AppendLe(out, filler.size(), 2);
        break;
      case Dispatch::kDirect:
        break;  // no elements
    }
    AppendBytes(out, filler);
  }
  switch (sk.dispatch) {
    case Dispatch::kSeg2:
      out.push_back(sk.vuln_type);
      AppendLe(out, payload.size(), 2);
      break;
    case Dispatch::kBlock1:
    case Dispatch::kRec1:
      out.push_back(sk.vuln_type);
      break;
    case Dispatch::kObj2:
      out.push_back(sk.vuln_type);
      AppendLe(out, payload.size(), 2);
      break;
    case Dispatch::kDirect:
      break;
  }
  AppendBytes(out, payload);
  if (sk.dispatch == Dispatch::kSeg2) {
    out.push_back(sk.end_type);
    AppendLe(out, 0, 2);
  } else if (sk.dispatch == Dispatch::kBlock1) {
    out.push_back(sk.end_type);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Harness construction. main() is emitted as an unlabeled entry that
// jumps to the first of an ordered list of labeled sections, each ending
// in an explicit terminator — so the reorder-blocks transform is a pure
// permutation of emission order with identical control flow.
// ---------------------------------------------------------------------------

struct HarnessCfg {
  const Skeleton* sk = nullptr;
  std::string program_name;
  std::string callee = "gen_area";
  // Padding preamble (every T): a tiny data-driven accumulate loop whose
  // immediates (pad_n, pad_mix) are unique per program, so main never
  // fingerprint-matches another harness.
  bool pad = false;
  int pad_n = 3;
  std::uint32_t pad_mix = 0;
  std::vector<std::uint8_t> pad_data;
  bool outline = false;               // header validation in check_hdr()
  bool hostile = false;               // symex-hostile gate + warm loop
  const VulnClass* guard = nullptr;   // non-null: guard-insert peek
  bool reorder = false;
  Rng* reorder_rng = nullptr;
};

struct Section {
  std::string label;
  std::string body;  // instruction lines, ends with a terminator
};

void EmitGuardAsserts(const VulnClass& vc, int payload_base, std::string* out) {
  char buf[512];
  int off = payload_base + vc.guard_off;
  switch (vc.guard) {
    case GuardKind::kLen16Le32:
      std::snprintf(buf, sizeof buf,
                    "    load.1 %%glo, %%peek, %d\n"
                    "    movi %%glim, 32\n"
                    "    cmpleu %%gok, %%glo, %%glim\n"
                    "    assert %%gok\n"
                    "    load.1 %%ghi, %%peek, %d\n"
                    "    movi %%gzero, 0\n"
                    "    cmpeq %%gok2, %%ghi, %%gzero\n"
                    "    assert %%gok2\n",
                    off, off + 1);
      break;
    case GuardKind::kByteLt4:
      std::snprintf(buf, sizeof buf,
                    "    load.1 %%gidx, %%peek, %d\n"
                    "    movi %%glim, 4\n"
                    "    cmpltu %%gok, %%gidx, %%glim\n"
                    "    assert %%gok\n",
                    off);
      break;
    case GuardKind::kByteNe0:
      std::snprintf(buf, sizeof buf,
                    "    load.1 %%gval, %%peek, %d\n"
                    "    movi %%gzero, 0\n"
                    "    cmpne %%gok, %%gval, %%gzero\n"
                    "    assert %%gok\n",
                    off);
      break;
    case GuardKind::kNone:
      throw std::logic_error("guard-insert on an unguardable vuln class");
  }
  *out += buf;
}

std::string BuildHarness(const HarnessCfg& cfg) {
  const Skeleton& sk = *cfg.sk;
  std::vector<Section> sections;
  std::ostringstream entry;
  auto imm = [](std::uint64_t v) { return std::to_string(v); };

  // --- padding preamble -----------------------------------------------------
  if (cfg.pad) {
    Section pad;
    pad.label = "padstart";
    pad.body = "    movi %padp, @gen_pad\n"
               "    movi %padn, " + imm(cfg.pad_n) + "\n"
               "    movi %padi, 0\n"
               "    movi %padacc, " + imm(cfg.pad_mix) + "\n"
               "    jmp padloop\n";
    Section padloop;
    padloop.label = "padloop";
    padloop.body = "    cmpltu %padmore, %padi, %padn\n"
                   "    br %padmore, padbody, hstart\n";
    Section padbody;
    padbody.label = "padbody";
    padbody.body = "    add %padq, %padp, %padi\n"
                   "    load.1 %padc, %padq, 0\n"
                   "    add %padacc, %padacc, %padc\n"
                   "    addi %padi, %padi, 1\n"
                   "    jmp padloop\n";
    sections.push_back(pad);
    sections.push_back(padloop);
    sections.push_back(padbody);
    entry << "    jmp padstart\n";
  } else {
    entry << "    jmp hstart\n";
  }

  const std::string after_header = cfg.hostile ? "gate" : "dstart";

  // --- header section -------------------------------------------------------
  Section hdr;
  hdr.label = "hstart";
  if (cfg.guard != nullptr) {
    // Guard-insert: one peek read covers the header, the vuln element
    // header and the guarded payload field; after validation the file
    // position rewinds to the end of the fixed header so the normal
    // dispatch path runs unchanged.
    const VulnClass& vc = *cfg.guard;
    int payload_base = FirstPayloadOff(sk);
    int peek_len = payload_base + vc.guard_off + vc.guard_width;
    hdr.body += "    movi %peekn, " + imm(peek_len) + "\n";
    hdr.body += "    alloc %peek, %peekn\n";
    hdr.body += "    read %got, %peek, %peekn\n";
    hdr.body += "    load.4 %magic, %peek, 0\n";
    hdr.body += "    movi %want, " + imm(sk.magic) + "\n";
    hdr.body += "    cmpeq %mok, %magic, %want\n";
    hdr.body += "    assert %mok\n";
    if (sk.counted) hdr.body += "    load.1 %nelem, %peek, 5\n";
    EmitGuardAsserts(vc, payload_base, &hdr.body);
    hdr.body += "    movi %hend, " + imm(sk.header_len) + "\n";
    hdr.body += "    seek %hend\n";
  } else if (cfg.outline) {
    hdr.body += "    call %hret, check_hdr()\n";
    if (sk.counted) hdr.body += "    addi %nelem, %hret, 0\n";
  } else {
    hdr.body += "    movi %hlen, " + imm(sk.header_len) + "\n";
    hdr.body += "    alloc %hbuf, %hlen\n";
    hdr.body += "    read %got, %hbuf, %hlen\n";
    hdr.body += "    load.4 %magic, %hbuf, 0\n";
    hdr.body += "    movi %want, " + imm(sk.magic) + "\n";
    hdr.body += "    cmpeq %mok, %magic, %want\n";
    hdr.body += "    assert %mok\n";
    if (sk.counted) hdr.body += "    load.1 %nelem, %hbuf, 5\n";
  }
  // Element-header scratch shared by the dispatch loop.
  if (sk.dispatch != Dispatch::kDirect) {
    hdr.body += "    movi %esz, " + imm(std::max(sk.elem_header_len, 2)) + "\n";
    hdr.body += "    alloc %ebuf, %esz\n";
  }
  if (sk.counted) hdr.body += "    movi %ei, 0\n";
  hdr.body += "    jmp " + after_header + "\n";
  sections.push_back(hdr);

  // --- symex-hostile gate ---------------------------------------------------
  if (cfg.hostile) {
    // The reserved header byte (never loaded by S, hence untainted and
    // free for the fuzzer) gates a warm-up loop whose symbolic bound
    // 16*b ∈ [2048, 4080] exceeds the θ ceiling: every ep-ward state is
    // θ-cut, the drain classifies program-dead, and only the fuzz rung
    // can flip the byte and reach the crash.
    std::string hdrreg = cfg.guard != nullptr ? "%peek" : "%hbuf";
    if (cfg.outline || cfg.guard != nullptr) {
      // outline keeps no header buffer in main; re-read the byte.
      if (cfg.outline && cfg.guard == nullptr) {
        Section gate;
        gate.label = "gate";
        gate.body = "    movi %gpos, 4\n"
                    "    seek %gpos\n"
                    "    movi %gone, 1\n"
                    "    alloc %gbuf, %gone\n"
                    "    read %gg, %gbuf, %gone\n"
                    "    load.1 %hot, %gbuf, 0\n"
                    "    movi %hback, " + imm(sk.header_len) + "\n"
                    "    seek %hback\n"
                    "    movi %hlim, 128\n"
                    "    cmpltu %hsmall, %hot, %hlim\n"
                    "    br %hsmall, coldpath, warm\n";
        sections.push_back(gate);
      } else {
        Section gate;
        gate.label = "gate";
        gate.body = "    load.1 %hot, " + hdrreg + ", 4\n"
                    "    movi %hlim, 128\n"
                    "    cmpltu %hsmall, %hot, %hlim\n"
                    "    br %hsmall, coldpath, warm\n";
        sections.push_back(gate);
      }
    } else {
      Section gate;
      gate.label = "gate";
      gate.body = "    load.1 %hot, %hbuf, 4\n"
                  "    movi %hlim, 128\n"
                  "    cmpltu %hsmall, %hot, %hlim\n"
                  "    br %hsmall, coldpath, warm\n";
      sections.push_back(gate);
    }
    Section cold;
    cold.label = "coldpath";
    cold.body = "    movi %cret, 0\n"
                "    ret %cret\n";
    Section warm;
    warm.label = "warm";
    warm.body = "    movi %wsh, 4\n"
                "    shl %wbound, %hot, %wsh\n"
                "    movi %wi, 0\n"
                "    jmp warmloop\n";
    Section warmloop;
    warmloop.label = "warmloop";
    warmloop.body = "    cmpltu %wmore, %wi, %wbound\n"
                    "    br %wmore, warmstep, dstart\n";
    Section warmstep;
    warmstep.label = "warmstep";
    warmstep.body = "    addi %wi, %wi, 1\n"
                    "    jmp warmloop\n";
    sections.push_back(cold);
    sections.push_back(warm);
    sections.push_back(warmloop);
    sections.push_back(warmstep);
  }

  // --- dispatch sections ----------------------------------------------------
  char vt[16], et[16];
  std::snprintf(vt, sizeof vt, "%u", sk.vuln_type);
  std::snprintf(et, sizeof et, "%u", sk.end_type);
  switch (sk.dispatch) {
    case Dispatch::kSeg2: {
      sections.push_back({"dstart",
                          "    movi %ehl, 3\n"
                          "    read %ge, %ebuf, %ehl\n"
                          "    cmpltu %eshort, %ge, %ehl\n"
                          "    br %eshort, fin, have\n"});
      sections.push_back({"have",
                          "    load.1 %etype, %ebuf, 0\n"
                          "    load.2 %elen, %ebuf, 1\n"
                          "    movi %tvuln, " + std::string(vt) + "\n"
                          "    cmpeq %isv, %etype, %tvuln\n"
                          "    br %isv, vuln, notv\n"});
      sections.push_back({"vuln",
                          "    movi %varg, 0\n"
                          "    call %vres, " + cfg.callee + "(%varg)\n"
                          "    jmp dstart\n"});
      sections.push_back({"notv",
                          "    movi %tend, " + std::string(et) + "\n"
                          "    cmpeq %ise, %etype, %tend\n"
                          "    br %ise, fin, skip\n"});
      sections.push_back({"skip",
                          "    tell %fpos\n"
                          "    add %fpos, %fpos, %elen\n"
                          "    seek %fpos\n"
                          "    jmp dstart\n"});
      sections.push_back({"fin", "    ret %ge\n"});
      break;
    }
    case Dispatch::kBlock1: {
      sections.push_back({"dstart",
                          "    movi %eone, 1\n"
                          "    read %ge, %ebuf, %eone\n"
                          "    cmpltu %eshort, %ge, %eone\n"
                          "    br %eshort, fin, have\n"});
      sections.push_back({"have",
                          "    load.1 %etype, %ebuf, 0\n"
                          "    movi %tvuln, " + std::string(vt) + "\n"
                          "    cmpeq %isv, %etype, %tvuln\n"
                          "    br %isv, vuln, notv\n"});
      sections.push_back({"vuln",
                          "    movi %varg, 0\n"
                          "    call %vres, " + cfg.callee + "(%varg)\n"
                          "    jmp dstart\n"});
      sections.push_back({"notv",
                          "    movi %tend, " + std::string(et) + "\n"
                          "    cmpeq %ise, %etype, %tend\n"
                          "    br %ise, fin, skip\n"});
      sections.push_back({"skip",
                          "    read %gl, %ebuf, %eone\n"
                          "    load.1 %elen, %ebuf, 0\n"
                          "    tell %fpos\n"
                          "    add %fpos, %fpos, %elen\n"
                          "    seek %fpos\n"
                          "    jmp dstart\n"});
      sections.push_back({"fin", "    ret %ge\n"});
      break;
    }
    case Dispatch::kRec1: {
      sections.push_back({"dstart",
                          "    cmpltu %emore, %ei, %nelem\n"
                          "    br %emore, elem, fin\n"});
      sections.push_back({"elem",
                          "    movi %eone, 1\n"
                          "    read %ge, %ebuf, %eone\n"
                          "    load.1 %etype, %ebuf, 0\n"
                          "    movi %tvuln, " + std::string(vt) + "\n"
                          "    cmpeq %isv, %etype, %tvuln\n"
                          "    br %isv, vuln, skip\n"});
      sections.push_back({"vuln",
                          "    movi %varg, 0\n"
                          "    call %vres, " + cfg.callee + "(%varg)\n"
                          "    addi %ei, %ei, 1\n"
                          "    jmp dstart\n"});
      sections.push_back({"skip",
                          "    read %gl, %ebuf, %eone\n"
                          "    load.1 %elen, %ebuf, 0\n"
                          "    tell %fpos\n"
                          "    add %fpos, %fpos, %elen\n"
                          "    seek %fpos\n"
                          "    addi %ei, %ei, 1\n"
                          "    jmp dstart\n"});
      sections.push_back({"fin", "    ret %ei\n"});
      break;
    }
    case Dispatch::kObj2: {
      sections.push_back({"dstart",
                          "    cmpltu %emore, %ei, %nelem\n"
                          "    br %emore, elem, fin\n"});
      sections.push_back({"elem",
                          "    movi %ehl, 3\n"
                          "    read %ge, %ebuf, %ehl\n"
                          "    load.1 %etype, %ebuf, 0\n"
                          "    load.2 %elen, %ebuf, 1\n"
                          "    movi %tvuln, " + std::string(vt) + "\n"
                          "    cmpeq %isv, %etype, %tvuln\n"
                          "    br %isv, vuln, skip\n"});
      sections.push_back({"vuln",
                          "    movi %varg, 0\n"
                          "    call %vres, " + cfg.callee + "(%varg)\n"
                          "    addi %ei, %ei, 1\n"
                          "    jmp dstart\n"});
      sections.push_back({"skip",
                          "    tell %fpos\n"
                          "    add %fpos, %fpos, %elen\n"
                          "    seek %fpos\n"
                          "    addi %ei, %ei, 1\n"
                          "    jmp dstart\n"});
      sections.push_back({"fin", "    ret %ei\n"});
      break;
    }
    case Dispatch::kDirect: {
      sections.push_back({"dstart",
                          "    movi %varg, 0\n"
                          "    call %vres, " + cfg.callee + "(%varg)\n"
                          "    jmp fin\n"});
      sections.push_back({"fin", "    ret %vres\n"});
      break;
    }
  }

  // --- reorder-blocks -------------------------------------------------------
  // Control flow is fully explicit, so any permutation that keeps the
  // entry target first-reachable is legal; a seeded Fisher–Yates over
  // every section after the first suffices.
  if (cfg.reorder && cfg.reorder_rng != nullptr && sections.size() > 2) {
    for (std::size_t i = sections.size() - 1; i > 1; --i) {
      std::size_t j = 1 + static_cast<std::size_t>(
                              cfg.reorder_rng->Below(static_cast<std::uint64_t>(i)));
      std::swap(sections[i], sections[j]);
    }
  }

  // --- assemble text --------------------------------------------------------
  std::ostringstream out;
  out << "  program \"" << cfg.program_name << "\"\n";
  if (cfg.pad) {
    out << "  data gen_pad:\n    .u8";
    for (std::uint8_t b : cfg.pad_data) out << ' ' << static_cast<unsigned>(b);
    out << "\n";
  }
  if (cfg.outline) {
    out << "  func check_hdr()\n";
    out << "    movi %hlen, " << sk.header_len << "\n";
    out << "    alloc %hbuf, %hlen\n";
    out << "    read %got, %hbuf, %hlen\n";
    out << "    load.4 %magic, %hbuf, 0\n";
    out << "    movi %want, " << sk.magic << "\n";
    out << "    cmpeq %mok, %magic, %want\n";
    out << "    assert %mok\n";
    if (sk.counted) {
      out << "    load.1 %cnt, %hbuf, 5\n";
      out << "    ret %cnt\n";
    } else {
      out << "    ret %got\n";
    }
    out << "\n";
  }
  out << "  func main()\n";
  out << entry.str();
  for (const Section& s : sections) {
    out << "  " << s.label << ":\n" << s.body;
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// rename-locals: token-aware register renaming. Renames every %register
// identifier in `text` to a fresh name (old name + '_' + hex nibble) —
// whole-token replacement, so prefix-sharing names can never collide.
// The IR is unchanged (registers allocate by first use), which is
// exactly what makes the result a fingerprint-identical clone.
// ---------------------------------------------------------------------------

bool IdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

std::string RenameRegisters(const std::string& text, Rng& rng) {
  // Collect identifiers in order of first appearance (deterministic).
  std::vector<std::string> order;
  std::set<std::string> seen;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '%') continue;
    std::size_t j = i + 1;
    while (j < text.size() && IdentChar(text[j])) ++j;
    if (j == i + 1) continue;
    std::string ident = text.substr(i + 1, j - i - 1);
    if (seen.insert(ident).second) order.push_back(ident);
    i = j - 1;
  }
  std::map<std::string, std::string> renames;
  const char* hex = "0123456789abcdef";
  for (const std::string& ident : order)
    renames[ident] = ident + "_" + hex[rng.Below(16)];
  std::string out;
  out.reserve(text.size() + order.size() * 2);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '%') {
      out.push_back(text[i]);
      continue;
    }
    std::size_t j = i + 1;
    while (j < text.size() && IdentChar(text[j])) ++j;
    std::string ident = text.substr(i + 1, j - i - 1);
    out.push_back('%');
    auto it = renames.find(ident);
    out += it != renames.end() ? it->second : ident;
    i = j - 1;
  }
  return out;
}

std::string ReplaceAll(std::string text, const std::string& from,
                       const std::string& to) {
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

// ---------------------------------------------------------------------------
// Generation-time self-checks.
// ---------------------------------------------------------------------------

[[noreturn]] void GenFail(int ordinal, const std::string& what) {
  throw std::logic_error("gen self-check failed (ordinal " +
                         std::to_string(ordinal) + "): " + what);
}

vm::ExecResult RunOn(const vm::Program& p, const Bytes& input) {
  vm::ExecOptions opts;
  return vm::RunProgram(p, input, opts);
}

void CheckCrashInArea(const vm::Program& p, const Bytes& input,
                      vm::TrapKind want, const std::string& area_name,
                      int ordinal, const char* which) {
  vm::ExecResult r = RunOn(p, input);
  if (r.trap != want)
    GenFail(ordinal, std::string(which) + " trapped " +
                         std::string(vm::TrapName(r.trap)) + ", wanted " +
                         std::string(vm::TrapName(want)));
  if (r.backtrace.empty()) GenFail(ordinal, std::string(which) + ": empty backtrace");
  vm::FuncId area = p.FindFunction(area_name);
  bool on_stack = false;
  for (const vm::BacktraceEntry& f : r.backtrace)
    if (f.fn == area) on_stack = true;
  if (!on_stack)
    GenFail(ordinal, std::string(which) + ": " + area_name + " not on backtrace");
}

// Clone recovery must find exactly the shared area (possibly renamed) and
// never the harness functions — this is the loop-closing check.
void CheckCloneRecovery(const vm::Program& s, const vm::Program& t,
                        const std::string& t_callee, int ordinal) {
  std::vector<clone::CloneMatch> matches = clone::DetectClones(s, t);
  bool found = false;
  for (const clone::CloneMatch& m : matches) {
    if (m.name_in_s == "gen_area" && m.name_in_t == t_callee) {
      found = true;
      continue;
    }
    GenFail(ordinal, "clone detector matched a harness function: " +
                         m.name_in_s + " -> " + m.name_in_t);
  }
  if (!found)
    GenFail(ordinal, "clone detector failed to recover gen_area -> " + t_callee);
}

// ---------------------------------------------------------------------------
// Pair assembly.
// ---------------------------------------------------------------------------

const char* kMutationNames[] = {
    "rename-locals", "reorder-blocks", "outline-helper", "inline-helper",
    "guard-insert",  "symex-hostile",  "rename-clone",
};

const char* kCloneNames[] = {"decode_area", "parse_region", "scan_payload",
                             "read_chunk"};

std::uint64_t Mix(std::uint64_t seed, std::uint64_t ordinal) {
  // SplitMix-style avalanche over (seed, ordinal).
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (ordinal + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct PairPlan {
  const Skeleton* sk;
  const VulnClass* vc;
  int mutation;  // index into kMutationNames
  int lead_count;
};

// Deterministically plans ordinal's taxonomy. Chains (hops at
// o%16==14/15) restrict the mutation to the always-triggering transforms.
PairPlan PlanPair(std::uint64_t seed, int ordinal, Rng& rng,
                  int* chain_hop) {
  PairPlan plan{};
  *chain_hop = 0;
  int slot = ordinal % 16;
  if (slot == 14) *chain_hop = 1;
  if (slot == 15) *chain_hop = 2;
  if (*chain_hop != 0) {
    // Triggering transforms only; hop 1 and hop 2 must differ so the two
    // harnesses can never fingerprint-match (see BuildChainHop).
    static const int kChainMut[] = {0, 1, 2};  // rename/reorder/outline
    plan.mutation = kChainMut[rng.Below(3)];
  } else {
    plan.mutation = ordinal % 7;
  }
  plan.sk = &kSkeletons[rng.Below(kSkeletonCount)];
  // reorder-blocks needs a multi-section dispatch; kDirect has none.
  if (plan.mutation == 1 && plan.sk->dispatch == Dispatch::kDirect)
    plan.sk = &kSkeletons[0];
  // guard-insert is only sound on the direct skeleton: a dispatch loop
  // leaves the solver free to restructure the container (lead element
  // first) so the payload lands past the guarded offset — symex finds
  // that bypass and reforms a crashing poc'. kDirect pins the payload at
  // the guarded position, making NotTriggerable a true statement.
  if (plan.mutation == 4) plan.sk = &kSkeletons[kSkeletonCount - 1];
  // Restrict vuln class to what the mutation supports.
  std::vector<const VulnClass*> eligible;
  for (const VulnClass& vc : kVulnClasses) {
    if (plan.mutation == 4 && !vc.guardable) continue;
    if (plan.mutation == 5 && !vc.hostile_ok) continue;
    eligible.push_back(&vc);
  }
  plan.vc = eligible[rng.Below(eligible.size())];
  // Benign lead elements only where the payload position is free to
  // float (plain triggering transforms).
  bool leads_ok = plan.mutation != 4 && plan.mutation != 5 &&
                  plan.sk->dispatch != Dispatch::kDirect;
  plan.lead_count = leads_ok ? static_cast<int>(rng.Below(3)) : 0;
  return plan;
}

std::string VersionTag(std::uint64_t seed, int ordinal, const char* stage) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%d-%08llx", stage, ordinal,
                static_cast<unsigned long long>(seed & 0xffffffffULL));
  return buf;
}

GeneratedPair BuildOnePair(std::uint64_t seed, int ordinal);

// The T→U hop: re-derives the previous ordinal's pair and grows U from
// its T with a second (different) triggering transform.
GeneratedPair BuildChainHop2(std::uint64_t seed, int ordinal) {
  GeneratedPair hop1 = BuildOnePair(seed, ordinal - 1);
  Rng rng(Mix(seed, static_cast<std::uint64_t>(ordinal)));
  Rng hop1_rng(Mix(seed, static_cast<std::uint64_t>(ordinal - 1)));
  int hop1_chain = 0;
  PairPlan hop1_plan = PlanPair(seed, ordinal - 1, hop1_rng, &hop1_chain);
  if (hop1_chain != 1)
    throw std::logic_error("chain hop 2 must follow a hop-1 ordinal");

  const Skeleton& sk = *hop1_plan.sk;
  const VulnClass& vc = *hop1_plan.vc;

  // Pick a triggering transform different from hop 1's (two identical
  // transforms could make T's and U's harness helpers fingerprint-match).
  std::vector<int> eligible;
  for (int m : {0, 1, 2}) {
    if (m == hop1_plan.mutation) continue;
    if (m == 1 && sk.dispatch == Dispatch::kDirect) continue;
    eligible.push_back(m);
  }
  int mutation = eligible[rng.Below(eligible.size())];

  HarnessCfg ucfg;
  ucfg.sk = &sk;
  ucfg.program_name = "gen" + std::to_string(ordinal) + "u";
  ucfg.pad = true;
  ucfg.pad_n = 2 + static_cast<int>(rng.Below(4));
  ucfg.pad_mix = 0x20000u + static_cast<std::uint32_t>(ordinal) * 2u + 1u;
  for (int i = 0; i < ucfg.pad_n; ++i)
    ucfg.pad_data.push_back(static_cast<std::uint8_t>(rng.Below(256)));
  Rng reorder_rng(Mix(seed, static_cast<std::uint64_t>(ordinal)) ^ 0x5aa5);
  ucfg.outline = mutation == 2;
  ucfg.reorder = mutation == 1;
  ucfg.reorder_rng = &reorder_rng;

  std::string u_text = std::string(vc.body) + "\n" + BuildHarness(ucfg);
  if (mutation == 0) u_text = RenameRegisters(u_text, rng);
  vm::Program u = vm::Assemble(u_text);

  GeneratedPair g;
  g.pair.idx = kGenBase + ordinal;
  g.pair.s_name = hop1.pair.t_name;
  g.pair.s_version = hop1.pair.t_version;
  g.pair.t_name = hop1.pair.t_name + "+" + kMutationNames[mutation];
  g.pair.t_version = VersionTag(seed, ordinal, "u");
  g.pair.vuln_id = hop1.pair.vuln_id;
  g.pair.cwe = vc.cwe;
  g.pair.expected = corpus::ExpectedResult::kTypeI;
  g.pair.expected_trap = vc.trap;
  g.pair.s = hop1.pair.t;
  g.pair.t = std::move(u);
  g.pair.poc = hop1.pair.poc;
  g.pair.shared_functions = {"gen_area"};
  g.expected_verdict = core::Verdict::kTriggered;
  g.skeleton = sk.key;
  g.vuln_class = vc.key;
  g.mutation = kMutationNames[mutation];
  g.chain_hop = 2;

  CheckCrashInArea(g.pair.s, g.pair.poc, vc.trap, "gen_area", ordinal,
                   "chain S(=T1)(poc)");
  CheckCrashInArea(g.pair.t, g.pair.poc, vc.trap, "gen_area", ordinal,
                   "chain U(poc)");
  CheckCloneRecovery(g.pair.s, g.pair.t, "gen_area", ordinal);
  return g;
}

GeneratedPair BuildOnePair(std::uint64_t seed, int ordinal) {
  if (ordinal % 16 == 15) return BuildChainHop2(seed, ordinal);
  Rng rng(Mix(seed, static_cast<std::uint64_t>(ordinal)));
  int chain_hop = 0;
  PairPlan plan = PlanPair(seed, ordinal, rng, &chain_hop);
  const Skeleton& sk = *plan.sk;
  const VulnClass& vc = *plan.vc;
  int mutation = plan.mutation;

  Bytes trigger = TriggerPayload(vc, rng);
  Bytes benign = BenignPayload(vc, rng);
  std::vector<Bytes> leads;
  for (int i = 0; i < plan.lead_count; ++i) {
    Bytes filler;
    std::uint64_t n = 1 + rng.Below(12);
    for (std::uint64_t j = 0; j < n; ++j)
      filler.push_back(static_cast<std::uint8_t>(rng.Below(256)));
    leads.push_back(std::move(filler));
  }
  Bytes poc = BuildContainer(sk, leads, trigger);
  Bytes benign_poc = BuildContainer(sk, leads, benign);

  // --- S --------------------------------------------------------------------
  HarnessCfg scfg;
  scfg.sk = &sk;
  scfg.program_name = "gen" + std::to_string(ordinal) + "s";
  scfg.outline = mutation == 3;  // inline-helper: S carries the helper
  std::string s_text = std::string(vc.body) + "\n" + BuildHarness(scfg);
  vm::Program s = vm::Assemble(s_text);

  // --- T --------------------------------------------------------------------
  std::string t_callee = "gen_area";
  HarnessCfg tcfg;
  tcfg.sk = &sk;
  tcfg.program_name = "gen" + std::to_string(ordinal) + "t";
  tcfg.pad = true;
  tcfg.pad_n = 2 + static_cast<int>(rng.Below(4));
  tcfg.pad_mix = 0x10000u + static_cast<std::uint32_t>(ordinal) * 2u;
  for (int i = 0; i < tcfg.pad_n; ++i)
    tcfg.pad_data.push_back(static_cast<std::uint8_t>(rng.Below(256)));
  Rng reorder_rng(Mix(seed, static_cast<std::uint64_t>(ordinal)) ^ 0xa55a);
  tcfg.outline = mutation == 2;
  tcfg.reorder = mutation == 1;
  tcfg.reorder_rng = &reorder_rng;
  tcfg.hostile = mutation == 5;
  tcfg.guard = mutation == 4 ? &vc : nullptr;
  if (mutation == 6) {
    t_callee = kCloneNames[rng.Below(4)];
    tcfg.callee = t_callee;
  }
  std::string t_vuln_body = std::string(vc.body);
  if (mutation == 6) t_vuln_body = ReplaceAll(t_vuln_body, "gen_area", t_callee);
  std::string t_text = t_vuln_body + "\n" + BuildHarness(tcfg);
  if (mutation == 0) t_text = RenameRegisters(t_text, rng);
  vm::Program t = vm::Assemble(t_text);

  // --- pair -----------------------------------------------------------------
  GeneratedPair g;
  g.pair.idx = kGenBase + ordinal;
  g.pair.s_name = std::string("gen/") + sk.key + "-" + vc.key;
  g.pair.s_version = VersionTag(seed, ordinal, "s");
  g.pair.t_name = g.pair.s_name + "+" + kMutationNames[mutation];
  g.pair.t_version = VersionTag(seed, ordinal, "t");
  g.pair.vuln_id = "GEN-" + std::to_string(seed & 0xffffffffULL) + "-" +
                   std::to_string(ordinal);
  g.pair.cwe = vc.cwe;
  g.pair.expected_trap = vc.trap;
  g.pair.s = std::move(s);
  g.pair.t = std::move(t);
  g.pair.poc = std::move(poc);
  g.pair.shared_functions = {"gen_area"};
  if (mutation == 6) g.pair.t_names = {{"gen_area", t_callee}};
  g.skeleton = sk.key;
  g.vuln_class = vc.key;
  g.mutation = kMutationNames[mutation];
  g.chain_hop = chain_hop;
  if (mutation == 4) {
    g.expected_verdict = core::Verdict::kNotTriggerable;
    g.pair.expected = corpus::ExpectedResult::kTypeIII;
  } else if (mutation == 5) {
    g.expected_verdict = core::Verdict::kTriggeredByFuzzing;
    g.needs_fuzz = true;
    g.pair.expected = corpus::ExpectedResult::kTypeI;
  } else {
    g.expected_verdict = core::Verdict::kTriggered;
    g.pair.expected = corpus::ExpectedResult::kTypeI;
  }

  // --- self-checks ----------------------------------------------------------
  CheckCrashInArea(g.pair.s, g.pair.poc, vc.trap, "gen_area", ordinal, "S(poc)");
  {
    vm::ExecResult rb = RunOn(g.pair.s, benign_poc);
    if (rb.trap != vm::TrapKind::kNone)
      GenFail(ordinal, "S(benign) trapped " + std::string(vm::TrapName(rb.trap)));
  }
  if (mutation == 4) {
    vm::ExecResult rt = RunOn(g.pair.t, g.pair.poc);
    if (rt.trap != vm::TrapKind::kAbort)
      GenFail(ordinal, "guard T(poc) trapped " +
                           std::string(vm::TrapName(rt.trap)) + ", wanted abort");
    vm::ExecResult rtb = RunOn(g.pair.t, benign_poc);
    if (rtb.trap != vm::TrapKind::kNone)
      GenFail(ordinal, "guard T(benign) trapped " +
                           std::string(vm::TrapName(rtb.trap)));
  } else if (mutation == 5) {
    vm::ExecResult rt = RunOn(g.pair.t, g.pair.poc);
    if (rt.trap != vm::TrapKind::kNone)
      GenFail(ordinal, "hostile T(poc) should exit cleanly, trapped " +
                           std::string(vm::TrapName(rt.trap)));
    Bytes hot = g.pair.poc;
    hot[4] = 0x80;  // the untainted reserved byte the fuzzer must find
    CheckCrashInArea(g.pair.t, hot, vc.trap, t_callee, ordinal, "hostile T(hot)");
  } else {
    CheckCrashInArea(g.pair.t, g.pair.poc, vc.trap, t_callee, ordinal, "T(poc)");
  }
  CheckCloneRecovery(g.pair.s, g.pair.t, t_callee, ordinal);
  return g;
}

std::uint64_t Fnv1a64(ByteView data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t HashString(const std::string& s) {
  return Fnv1a64(ByteView(reinterpret_cast<const std::uint8_t*>(s.data()),
                          s.size()));
}

const char* VerdictLabel(core::Verdict v) {
  switch (v) {
    case core::Verdict::kTriggered: return "Triggered";
    case core::Verdict::kNotTriggerable: return "NotTriggerable";
    case core::Verdict::kTriggeredByFuzzing: return "TriggeredByFuzzing";
    case core::Verdict::kFailure: return "Failure";
  }
  return "?";
}

}  // namespace

GeneratedPair BuildGeneratedPair(std::uint64_t seed, int ordinal) {
  if (ordinal < 0) throw std::out_of_range("generator ordinal must be >= 0");
  return BuildOnePair(seed, ordinal);
}

std::vector<GeneratedPair> GenerateCorpus(std::uint64_t seed, int count) {
  std::vector<GeneratedPair> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(BuildOnePair(seed, i));
  return out;
}

GeneratedPair BuildHogPair(std::uint64_t seed) {
  Rng rng(Mix(seed, 0x686f67ULL));                  // "hog"
  const Skeleton& sk = kSkeletons[kSkeletonCount - 1];  // mj2k (sound guard)
  const VulnClass& vc = kVulnClasses[0];              // oob-write
  Bytes trigger = TriggerPayload(vc, rng);
  Bytes poc = BuildContainer(sk, {}, trigger);

  HarnessCfg scfg;
  scfg.sk = &sk;
  scfg.program_name = "genhogs";
  vm::Program s = vm::Assemble(std::string(vc.body) + "\n" + BuildHarness(scfg));

  // T is guard-protected AND symex-hostile: symex goes program-dead at
  // the warm loop, the fuzz rung stages, and the sound guard means no
  // candidate ever crashes — the campaign runs its full (huge) budget.
  HarnessCfg tcfg;
  tcfg.sk = &sk;
  tcfg.program_name = "genhogt";
  tcfg.pad = true;
  tcfg.pad_n = 3;
  tcfg.pad_mix = 0x30000u;
  for (int i = 0; i < tcfg.pad_n; ++i)
    tcfg.pad_data.push_back(static_cast<std::uint8_t>(rng.Below(256)));
  tcfg.hostile = true;
  tcfg.guard = &vc;
  vm::Program t = vm::Assemble(std::string(vc.body) + "\n" + BuildHarness(tcfg));

  GeneratedPair g;
  g.pair.idx = kHogIdx;
  g.pair.s_name = "gen/hog";
  g.pair.s_version = VersionTag(seed, 0, "s");
  g.pair.t_name = "gen/hog+guard+hostile";
  g.pair.t_version = VersionTag(seed, 0, "t");
  g.pair.vuln_id = "GEN-HOG";
  g.pair.cwe = vc.cwe;
  g.pair.expected = corpus::ExpectedResult::kTypeIII;
  g.pair.expected_trap = vc.trap;
  g.pair.s = std::move(s);
  g.pair.t = std::move(t);
  g.pair.poc = std::move(poc);
  g.pair.shared_functions = {"gen_area"};
  g.expected_verdict = core::Verdict::kNotTriggerable;
  g.needs_fuzz = false;
  g.skeleton = sk.key;
  g.vuln_class = vc.key;
  g.mutation = "guard+hostile";

  CheckCrashInArea(g.pair.s, g.pair.poc, vc.trap, "gen_area", kHogIdx, "S(poc)");
  vm::ExecResult rt = RunOn(g.pair.t, g.pair.poc);
  if (rt.trap != vm::TrapKind::kAbort)
    GenFail(kHogIdx, "hog T(poc) trapped " + std::string(vm::TrapName(rt.trap)));
  CheckCloneRecovery(g.pair.s, g.pair.t, "gen_area", kHogIdx);
  return g;
}

corpus::Pair LoadGeneratedPair(std::uint64_t seed, int idx) {
  if (idx == kHogIdx) return BuildHogPair(seed).pair;
  if (idx >= kGenBase) return BuildGeneratedPair(seed, idx - kGenBase).pair;
  throw std::out_of_range("not a generated pair index: " + std::to_string(idx));
}

std::string DescribeGeneratedPair(const GeneratedPair& g) {
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "pair %d %s %s %s hop=%d expect=%s%s s=%016llx t=%016llx poc=%016llx "
      "len=%zu",
      g.pair.idx, g.skeleton.c_str(), g.vuln_class.c_str(), g.mutation.c_str(),
      g.chain_hop, VerdictLabel(g.expected_verdict), g.needs_fuzz ? "(fuzz)" : "",
      static_cast<unsigned long long>(HashString(vm::Disassemble(g.pair.s))),
      static_cast<unsigned long long>(HashString(vm::Disassemble(g.pair.t))),
      static_cast<unsigned long long>(Fnv1a64(g.pair.poc)), g.pair.poc.size());
  return buf;
}

}  // namespace octopocs::gen
