// Extended corpus (pairs 16-22): scenarios beyond the paper's dataset.
//
// The paper's 15 pairs cover its evaluation; these seven probe corners
// the paper discusses but does not measure:
//
//   16  double wrapping        the crash primitive sits two container
//                              levels deep (archive → PDF → J2K); the
//                              reform must derive both wrappers
//   17  renamed clone          T renamed the cloned function; ℓ-name
//                              mapping comes from the clone detector
//                              (VUDDY matches bodies, not names)
//   18  three ep encounters    context-aware taint with three bunches
//   19  use-after-free         CWE-416: a stateful ℓ whose crash needs
//                              an exact record *sequence* (data, reset,
//                              data), not just field values
//   20  divide-by-zero + patch CWE-369 clone behind a divisor check in
//                              T — Unsat must prove NotTriggerable
//   21  mmap input channel     the PoC reaches ℓ through the read-only
//                              file mapping, not read(2) — the second
//                              input path the paper hooks (§III-A)
//   22  symex-dead, fuzzable   ℓ sits behind a symbolic-bound warm-up
//                              loop the loop cap cannot cross; only the
//                              fuzz-fallback rung (DESIGN.md §16) can
//                              verify propagation — TriggeredByFuzzing
//
// Pairs reuse corpus::Pair; indices continue Table II's numbering.
#pragma once

#include "corpus/pairs.h"

namespace octopocs::corpus {

/// Builds extended pair `idx` ∈ [16, 22]. Throws std::out_of_range.
Pair BuildExtendedPair(int idx);

/// All seven extended pairs, in index order.
std::vector<Pair> BuildExtendedCorpus();

}  // namespace octopocs::corpus
