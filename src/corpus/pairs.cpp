#include "corpus/pairs.h"

#include <stdexcept>

#include "corpus/shared.h"
#include "formats/formats.h"
#include "vm/asm.h"

namespace octopocs::corpus {

std::string_view ExpectedResultName(ExpectedResult r) {
  switch (r) {
    case ExpectedResult::kTypeI: return "Type-I";
    case ExpectedResult::kTypeII: return "Type-II";
    case ExpectedResult::kTypeIII: return "Type-III";
    case ExpectedResult::kFailure: return "Failure";
  }
  return "?";
}

namespace {

using formats::MgifCodeSizePoc;
using formats::MjpgDimsOverflowPoc;
using formats::MjpgQuantIndexPoc;
using formats::MjpgStreamChunkPoc;
using formats::MpdfCyclePoc;
using formats::MpdfEmbeddedJ2kPoc;
using formats::MpdfMetaOverflowPoc;
using formats::MpdfMetaWrapPoc;
using formats::MtifPageNamePoc;
using formats::Mj2kZeroComponentPoc;

// ---------------------------------------------------------------------------
// Harness sources. Each is linked (textually) with the matching shared-ℓ
// snippet from corpus/shared.h, so ℓ is byte-identical in S and T.
// ---------------------------------------------------------------------------

// -- Pairs 1-2: MJPG quant-index OOB ---------------------------------------

// S: jpeg-compressor — check the magic, hand the stream to the decoder.
const char* kJpegCompressorMain = R"(
  program "jpeg-compressor"
  func main()
    movi %n, 4
    alloc %magic, %n
    read %got, %magic, %n
    load.4 %m, %magic, 0
    movi %want, 0x47504a4d        ; "MJPG"
    cmpeq %ok, %m, %want
    assert %ok
    movi %zero, 0
    call %v, mjpg_decode(%zero)
    ret %v
)";

// T(1): libgdx — framework initialisation over a config table, then the
// same decode path (Type-I: identical file layout).
const char* kLibgdxMain = R"(
  program "libgdx"
  data gdx_config:
    .u8 3 1 4 1 5
  func main()
    movi %p, @gdx_config
    movi %i, 0
    movi %ncfg, 5
    movi %acc, 0
  init:
    cmpltu %more, %i, %ncfg
    br %more, loadcfg, ready
  loadcfg:
    add %q, %p, %i
    load.1 %c, %q, 0
    add %acc, %acc, %c
    addi %i, %i, 1
    jmp init
  ready:
    movi %n, 4
    alloc %magic, %n
    read %got, %magic, %n
    load.4 %m, %magic, 0
    movi %want, 0x47504a4d
    cmpeq %ok, %m, %want
    assert %ok
    movi %zero, 0
    call %v, mjpg_decode(%zero)
    ret %v
)";

// T(2): zxing — sniffs the first segment marker before decoding.
const char* kZxingMain = R"(
  program "zxing"
  func main()
    movi %n, 4
    alloc %magic, %n
    read %got, %magic, %n
    load.4 %m, %magic, 0
    movi %want, 0x47504a4d
    cmpeq %ok, %m, %want
    assert %ok
    movi %one, 1
    alloc %probe, %one
    read %g2, %probe, %one
    load.1 %t, %probe, 0
    movi %tq, 0xd8
    cmpeq %isq, %t, %tq
    movi %ts, 0xda
    cmpeq %iss, %t, %ts
    movi %te, 0xd9
    cmpeq %ise, %t, %te
    or %known, %isq, %iss
    or %known, %known, %ise
    assert %known                 ; marker must be recognisable
    movi %four, 4
    seek %four                    ; rewind to the segment stream
    movi %zero, 0
    call %v, mjpg_decode(%zero)
    ret %v
)";

// -- Pair 3: MPDF page-walk cycle (CWE-835) ---------------------------------

// S: pdftops (Poppler) — count pass, render-flag check, full walk.
const char* kPopplerPdftopsMain = R"(
  program "pdftops-poppler"
  func main()
    movi %n, 5
    alloc %hdr, %n
    read %got, %hdr, %n           ; "%PDF" + npages
    load.4 %m, %hdr, 0
    movi %want, 0x46445025        ; "%PDF"
    cmpeq %ok, %m, %want
    assert %ok
    movi %zero, 0
    call %c1, pdf_walk_pages(%zero)  ; pass 1: count pages
    movi %five, 5
    seek %five
    movi %one, 1
    alloc %flag, %one
    read %g2, %flag, %one
    load.1 %f, %flag, 0
    cmpeq %okf, %f, %one
    assert %okf                   ; render flag must be set
    call %c2, pdf_walk_pages(%one)   ; pass 2: full walk (hangs on cycle)
    ret %c2
)";

// T: pdftops (Xpdf) — identical layout plus page-count validation.
const char* kXpdfPdftopsMain = R"(
  program "pdftops-xpdf"
  func main()
    movi %n, 5
    alloc %hdr, %n
    read %got, %hdr, %n
    load.4 %m, %hdr, 0
    movi %want, 0x46445025
    cmpeq %ok, %m, %want
    assert %ok
    load.1 %npages, %hdr, 4
    movi %cap, 9
    cmpltu %fits, %npages, %cap
    assert %fits                  ; Xpdf validates the page count
    movi %zero, 0
    call %c1, pdf_walk_pages(%zero)
    movi %five, 5
    seek %five
    movi %one, 1
    alloc %flag, %one
    read %g2, %flag, %one
    load.1 %f, %flag, 0
    cmpeq %okf, %f, %one
    assert %okf
    call %c2, pdf_walk_pages(%one)
    ret %c2
)";

// -- Pair 4: MJPG stream-chunk overflow (CWE-119) ---------------------------

// S: avconv — per chunk the harness reads the marker, ℓ reads the rest.
const char* kAvconvMain = R"(
  program "avconv"
  func main()
    movi %n, 4
    alloc %magic, %n
    read %got, %magic, %n
    load.4 %m, %magic, 0
    movi %want, 0x47504a4d
    cmpeq %ok, %m, %want
    assert %ok
    movi %one, 1
    alloc %tbuf, %one
  chunkloop:
    read %g2, %tbuf, %one
    cmpltu %short, %g2, %one
    br %short, done, have
  have:
    load.1 %t, %tbuf, 0
    movi %tc, 0xc0
    cmpeq %isc, %t, %tc
    br %isc, chunk, notc
  chunk:
    movi %zero, 0
    call %v, stream_copy(%zero)
    jmp chunkloop
  notc:
    movi %te, 0xd9
    cmpeq %ise, %t, %te
    br %ise, done, bad
  bad:
    trap
  done:
    ret %g2
)";

// T: ffmpeg — option-table prologue, then the identical chunk loop.
const char* kFfmpegMain = R"(
  program "ffmpeg"
  data ff_options:
    .u8 1 0 2 0 1 1
  func main()
    movi %p, @ff_options
    movi %i, 0
    movi %nopt, 6
    movi %acc, 0
  opts:
    cmpltu %more, %i, %nopt
    br %more, loadopt, ready
  loadopt:
    add %q, %p, %i
    load.1 %c, %q, 0
    add %acc, %acc, %c
    addi %i, %i, 1
    jmp opts
  ready:
    movi %n, 4
    alloc %magic, %n
    read %got, %magic, %n
    load.4 %m, %magic, 0
    movi %want, 0x47504a4d
    cmpeq %ok, %m, %want
    assert %ok
    movi %one, 1
    alloc %tbuf, %one
  chunkloop:
    read %g2, %tbuf, %one
    cmpltu %short, %g2, %one
    br %short, done, have
  have:
    load.1 %t, %tbuf, 0
    movi %tc, 0xc0
    cmpeq %isc, %t, %tc
    br %isc, chunk, notc
  chunk:
    movi %zero, 0
    call %v, stream_copy(%zero)
    jmp chunkloop
  notc:
    movi %te, 0xd9
    cmpeq %ise, %t, %te
    br %ise, done, bad
  bad:
    trap
  done:
    ret %g2
)";

// -- Pair 5: dimension integer overflow (CWE-190) ---------------------------

// S: tjbench (libjpeg-turbo) — segment loop dispatching to ℓ on 0xC4.
const char* kTjbenchMain = R"(
  program "tjbench-libjpeg-turbo"
  func main()
    movi %n, 4
    alloc %magic, %n
    read %got, %magic, %n
    load.4 %m, %magic, 0
    movi %want, 0x47504a4d
    cmpeq %ok, %m, %want
    assert %ok
    movi %three, 3
    alloc %hdr, %three
  segloop:
    read %g2, %hdr, %three        ; [type:1][len:2]
    cmpltu %short, %g2, %three
    br %short, done, have
  have:
    load.1 %t, %hdr, 0
    load.2 %len, %hdr, 1
    movi %td, 0xc4
    cmpeq %isd, %t, %td
    br %isd, dims, notd
  dims:
    movi %zero, 0
    call %v, tj_decompress(%zero)
    jmp segloop
  notd:
    movi %te, 0xd9
    cmpeq %ise, %t, %te
    br %ise, done, skip
  skip:
    tell %pos
    add %pos, %pos, %len
    seek %pos
    jmp segloop
  done:
    ret %g2
)";

// T: tjbench (mozjpeg) — benchmark warm-up loop, then the same path.
const char* kMozjpegMain = R"(
  program "tjbench-mozjpeg"
  data moz_bench:
    .u8 8 8 4
  func main()
    movi %p, @moz_bench
    movi %i, 0
    movi %rounds, 3
    movi %acc, 0
  warmup:
    cmpltu %more, %i, %rounds
    br %more, w, ready
  w:
    add %q, %p, %i
    load.1 %c, %q, 0
    add %acc, %acc, %c
    addi %i, %i, 1
    jmp warmup
  ready:
    movi %n, 4
    alloc %magic, %n
    read %got, %magic, %n
    load.4 %m, %magic, 0
    movi %want, 0x47504a4d
    cmpeq %ok, %m, %want
    assert %ok
    movi %three, 3
    alloc %hdr, %three
  segloop:
    read %g2, %hdr, %three
    cmpltu %short, %g2, %three
    br %short, done, have
  have:
    load.1 %t, %hdr, 0
    load.2 %len, %hdr, 1
    movi %td, 0xc4
    cmpeq %isd, %t, %td
    br %isd, dims, notd
  dims:
    movi %zero, 0
    call %v, tj_decompress(%zero)
    jmp segloop
  notd:
    movi %te, 0xd9
    cmpeq %ise, %t, %te
    br %ise, done, skip
  skip:
    tell %pos
    add %pos, %pos, %len
    seek %pos
    jmp segloop
  done:
    ret %g2
)";

// -- Pairs 6 / 14: MPDF metadata overflow (CWE-119) -------------------------

// Object loop shared by the PDF harnesses: [id:1][type:1][len:2].
// type 1 = metadata (→ ℓ), type 0 = end, anything else is skipped.
const char* kPdfaltoMain = R"(
  program "pdfalto"
  func main()
    movi %n, 5
    alloc %hdr, %n
    read %got, %hdr, %n
    load.4 %m, %hdr, 0
    movi %want, 0x46445025
    cmpeq %ok, %m, %want
    assert %ok
    load.1 %nobj, %hdr, 4
    movi %osz, 4
    alloc %obuf, %osz
    movi %i, 0
  objloop:
    cmpltu %more, %i, %nobj
    br %more, obj, done
  obj:
    read %g2, %obuf, %osz         ; [id][type][len:2]
    load.1 %type, %obuf, 1
    load.2 %len, %obuf, 2
    movi %tm, 1
    cmpeq %ism, %type, %tm
    br %ism, meta, notm
  meta:
    call %v, pdf_meta_copy(%len)
    addi %i, %i, 1
    jmp objloop
  notm:
    movi %tz, 0
    cmpeq %isz, %type, %tz
    br %isz, done, skip
  skip:
    tell %pos
    add %pos, %pos, %len
    seek %pos
    addi %i, %i, 1
    jmp objloop
  done:
    ret %i
)";

// T(6): pdfinfo (Xpdf) — same container, object ids validated first.
const char* kXpdfPdfinfoMain = R"(
  program "pdfinfo-xpdf"
  func main()
    movi %n, 5
    alloc %hdr, %n
    read %got, %hdr, %n
    load.4 %m, %hdr, 0
    movi %want, 0x46445025
    cmpeq %ok, %m, %want
    assert %ok
    load.1 %nobj, %hdr, 4
    movi %osz, 4
    alloc %obuf, %osz
    movi %i, 0
  objloop:
    cmpltu %more, %i, %nobj
    br %more, obj, done
  obj:
    read %g2, %obuf, %osz
    load.1 %id, %obuf, 0
    movi %zero, 0
    cmpne %idok, %id, %zero
    assert %idok                  ; Xpdf rejects object id 0
    load.1 %type, %obuf, 1
    load.2 %len, %obuf, 2
    movi %tm, 1
    cmpeq %ism, %type, %tm
    br %ism, meta, notm
  meta:
    call %v, pdf_meta_copy(%len)
    addi %i, %i, 1
    jmp objloop
  notm:
    movi %tz, 0
    cmpeq %isz, %type, %tz
    br %isz, done, skip
  skip:
    tell %pos
    add %pos, %pos, %len
    seek %pos
    addi %i, %i, 1
    jmp objloop
  done:
    ret %i
)";

// T(14): pdftops (Xpdf 4.1.1) — the *patched* metadata path: declared
// lengths above 64 are rejected before ℓ ever runs.
const char* kXpdfPdftopsPatchedMain = R"(
  program "pdftops-xpdf-4.1.1"
  func main()
    movi %n, 5
    alloc %hdr, %n
    read %got, %hdr, %n
    load.4 %m, %hdr, 0
    movi %want, 0x46445025
    cmpeq %ok, %m, %want
    assert %ok
    load.1 %nobj, %hdr, 4
    movi %osz, 4
    alloc %obuf, %osz
    movi %i, 0
  objloop:
    cmpltu %more, %i, %nobj
    br %more, obj, done
  obj:
    read %g2, %obuf, %osz
    load.1 %type, %obuf, 1
    load.2 %len, %obuf, 2
    movi %tm, 1
    cmpeq %ism, %type, %tm
    br %ism, meta, notm
  meta:
    movi %cap, 65
    cmpltu %fits, %len, %cap
    assert %fits                  ; the patch (bounds the declared length)
    call %v, pdf_meta_copy(%len)
    addi %i, %i, 1
    jmp objloop
  notm:
    movi %tz, 0
    cmpeq %isz, %type, %tz
    br %isz, done, skip
  skip:
    tell %pos
    add %pos, %pos, %len
    seek %pos
    addi %i, %i, 1
    jmp objloop
  done:
    ret %i
)";

// -- Pairs 7 / 8 / 13: MJ2K zero-component null deref -----------------------

// ghostscript: walks the MPDF container and decodes the embedded image
// stream in place (ℓ reads from the current file position).
const char* kGhostscriptMain = R"(
  program "ghostscript"
  func main()
    movi %n, 5
    alloc %hdr, %n
    read %got, %hdr, %n
    load.4 %m, %hdr, 0
    movi %want, 0x46445025
    cmpeq %ok, %m, %want
    assert %ok
    load.1 %nobj, %hdr, 4
    movi %osz, 4
    alloc %obuf, %osz
    movi %i, 0
  objloop:
    cmpltu %more, %i, %nobj
    br %more, obj, done
  obj:
    read %g2, %obuf, %osz
    load.1 %type, %obuf, 1
    load.2 %len, %obuf, 2
    movi %ti, 2
    cmpeq %isi, %type, %ti
    br %isi, image, noti
  image:
    movi %zero, 0
    call %v, mj2k_decode(%zero)   ; ℓ consumes the embedded stream
    addi %i, %i, 1
    jmp objloop
  noti:
    movi %tz, 0
    cmpeq %isz, %type, %tz
    br %isz, done, skip
  skip:
    tell %pos
    add %pos, %pos, %len
    seek %pos
    addi %i, %i, 1
    jmp objloop
  done:
    ret %i
)";

// opj_dump: takes the bare codestream — ℓ is entered immediately.
const char* kOpjDumpMain = R"(
  program "opj_dump"
  func main()
    movi %zero, 0
    call %v, mj2k_decode(%zero)
    ret %v
)";

// T(8): MuPDF — container walk behind feature probes and an xref
// prescan where every entry branches on its payload (both directions
// continue). The pre-ep breadth is what blows up naive symbolic
// execution in Table IV — the stand-in for MuPDF's real parser depth.
const char* kMupdfMain = R"(
  program "mupdf"
  func main()
    movi %n, 6
    alloc %hdr, %n
    read %got, %hdr, %n           ; "%PDF" + nobj + feature flags
    load.4 %m, %hdr, 0
    movi %want, 0x46445025
    cmpeq %ok, %m, %want
    assert %ok
    load.1 %nobj, %hdr, 4
    load.1 %flags, %hdr, 5
    movi %acc, 0
    movi %b, 1
    and %f0, %flags, %b
    br %f0, f0y, f0n
  f0y:
    addi %acc, %acc, 1
    jmp f1
  f0n:
    jmp f1
  f1:
    movi %b1, 2
    and %fv1, %flags, %b1
    br %fv1, f1y, f1n
  f1y:
    addi %acc, %acc, 2
    jmp f2
  f1n:
    jmp f2
  f2:
    movi %b2, 4
    and %fv2, %flags, %b2
    br %fv2, f2y, f2n
  f2y:
    addi %acc, %acc, 4
    jmp f3
  f2n:
    jmp f3
  f3:
    movi %b3, 8
    and %fv3, %flags, %b3
    br %fv3, f3y, f3n
  f3y:
    addi %acc, %acc, 8
    jmp xref
  f3n:
    jmp xref
  xref:
    movi %xn, 8
    alloc %xbuf, %xn
    read %gx, %xbuf, %xn          ; xref: 8 entries, 1 byte each
    movi %xi, 0
    movi %one, 1
  xrefloop:
    cmpltu %xmore, %xi, %xn
    br %xmore, xbody, objstart
  xbody:
    add %xp, %xbuf, %xi
    load.1 %xe, %xp, 0
    and %xbit, %xe, %one
    br %xbit, xfree, xused
  xfree:
    addi %acc, %acc, 1
    jmp xnext
  xused:
    addi %acc, %acc, 2
    jmp xnext
  xnext:
    addi %xi, %xi, 1
    jmp xrefloop
  objstart:
    movi %osz, 4
    alloc %obuf, %osz
    movi %i, 0
  objloop:
    cmpltu %more, %i, %nobj
    br %more, obj, done
  obj:
    read %g2, %obuf, %osz         ; [id][type][len:2]
    load.1 %type, %obuf, 1
    load.2 %len, %obuf, 2
    movi %ti, 2
    cmpeq %isi, %type, %ti
    br %isi, image, noti
  image:
    movi %zero, 0
    call %v, mj2k_decode(%zero)
    addi %i, %i, 1
    jmp objloop
  noti:
    movi %tm, 1
    cmpeq %ism, %type, %tm
    br %ism, skip, notm
  notm:
    movi %tp, 3
    cmpeq %isp, %type, %tp
    br %isp, skip, notp
  notp:
    movi %tz, 0
    cmpeq %isz, %type, %tz
    br %isz, done, bad
  bad:
    trap
  skip:
    tell %pos
    add %pos, %pos, %len
    seek %pos
    addi %i, %i, 1
    jmp objloop
  done:
    ret %i
)";

// T(13): opj_dump 2.2.0 — the patched build: a preflight peek rejects
// zero-component streams before the cloned decoder runs.
const char* kOpjDumpPatchedMain = R"(
  program "opj_dump-2.2.0"
  func main()
    movi %n, 8
    alloc %peek, %n
    read %got, %peek, %n          ; magic(4) + box hdr(3) + ncomp(1)
    load.1 %nc, %peek, 7
    movi %zero, 0
    cmpne %ok, %nc, %zero
    assert %ok                    ; the patch
    seek %zero
    call %v, mj2k_decode(%zero)
    ret %v
)";

// -- Pair 9: MGIF code-size overflow (artificial strict gif2png) ------------

const char* kGif2pngMain = R"(
  program "gif2png"
  func main()
    movi %six, 6
    alloc %hdr, %six
    read %got, %hdr, %six         ; "GIF" + version (unchecked prefix only)
    load.1 %g, %hdr, 0
    movi %cg, 'G'
    cmpeq %okg, %g, %cg
    assert %okg
    load.1 %i1, %hdr, 1
    movi %ci, 'I'
    cmpeq %oki, %i1, %ci
    assert %oki
    load.1 %f, %hdr, 2
    movi %cf, 'F'
    cmpeq %okf, %f, %cf
    assert %okf
    movi %four, 4
    alloc %dims, %four
    read %g2, %dims, %four        ; [w:2][h:2]
    movi %pacc, 0
    movi %pn, 16
    alloc %pal, %pn
    read %gp, %pal, %pn           ; 16-byte palette prescan
    movi %pi, 0
    movi %pone, 1
  palloop:
    cmpltu %pmore, %pi, %pn
    br %pmore, pbody, blocks
  pbody:
    add %pp, %pal, %pi
    load.1 %pc, %pp, 0
    and %pbit, %pc, %pone
    br %pbit, podd, peven
  podd:
    addi %pacc, %pacc, 1
    jmp pnext
  peven:
    addi %pacc, %pacc, 2
    jmp pnext
  pnext:
    addi %pi, %pi, 1
    jmp palloop
  blocks:
    movi %one, 1
    alloc %tbuf, %one
  blockloop:
    read %g3, %tbuf, %one
    cmpltu %short, %g3, %one
    br %short, done, have
  have:
    load.1 %t, %tbuf, 0
    movi %ti, 0x2c
    cmpeq %isi, %t, %ti
    br %isi, image, noti
  image:
    movi %zero, 0
    call %v, gif_read_image(%zero)
    jmp blockloop
  noti:
    movi %tt, 0x3b
    cmpeq %ist, %t, %tt
    br %ist, done, bad
  bad:
    trap
  done:
    ret %g3
)";

// T: the paper's artificial strict build — invalid GIF versions are
// rejected up front ("GIF87a" / "GIF89a" only).
const char* kGif2pngStrictMain = R"(
  program "gif2png-strict"
  func main()
    movi %six, 6
    alloc %hdr, %six
    read %got, %hdr, %six
    load.1 %g, %hdr, 0
    movi %cg, 'G'
    cmpeq %okg, %g, %cg
    assert %okg
    load.1 %i1, %hdr, 1
    movi %ci, 'I'
    cmpeq %oki, %i1, %ci
    assert %oki
    load.1 %f, %hdr, 2
    movi %cf, 'F'
    cmpeq %okf, %f, %cf
    assert %okf
    load.1 %v0, %hdr, 3
    movi %c8, '8'
    cmpeq %ok0, %v0, %c8
    assert %ok0                   ; strict version check, part 1
    load.1 %v1, %hdr, 4
    movi %c7, '7'
    cmpeq %is7, %v1, %c7
    movi %c9, '9'
    cmpeq %is9, %v1, %c9
    or %ok1, %is7, %is9
    assert %ok1                   ; "87" or "89"
    load.1 %v2, %hdr, 5
    movi %ca, 'a'
    cmpeq %ok2, %v2, %ca
    assert %ok2                   ; ...and the trailing 'a'
    movi %four, 4
    alloc %dims, %four
    read %g2, %dims, %four
    movi %pacc, 0
    movi %pn, 16
    alloc %pal, %pn
    read %gp, %pal, %pn           ; 16-byte palette prescan
    movi %pi, 0
    movi %pone, 1
  palloop:
    cmpltu %pmore, %pi, %pn
    br %pmore, pbody, blocks
  pbody:
    add %pp, %pal, %pi
    load.1 %pc, %pp, 0
    and %pbit, %pc, %pone
    br %pbit, podd, peven
  podd:
    addi %pacc, %pacc, 1
    jmp pnext
  peven:
    addi %pacc, %pacc, 2
    jmp pnext
  pnext:
    addi %pi, %pi, 1
    jmp palloop
  blocks:
    movi %one, 1
    alloc %tbuf, %one
  blockloop:
    read %g3, %tbuf, %one
    cmpltu %short, %g3, %one
    br %short, done, have
  have:
    load.1 %t, %tbuf, 0
    movi %ti, 0x2c
    cmpeq %isi, %t, %ti
    br %isi, image, noti
  image:
    movi %zero, 0
    call %v, gif_read_image(%zero)
    jmp blockloop
  noti:
    movi %tt, 0x3b
    cmpeq %ist, %t, %tt
    br %ist, done, bad
  bad:
    trap
  done:
    ret %g3
)";

// -- Pairs 10-12: MTIF hardcoded-tag reuse (Type-III) ------------------------

// S: tiffsplit — parses IFD entries from the file and forwards each to
// the shared getter (tag and count are attacker-controlled).
const char* kTiffsplitMain = R"(
  program "tiffsplit"
  func main()
    movi %four, 4
    alloc %magic, %four
    read %got, %magic, %four
    load.4 %m, %magic, 0
    movi %want, 0x002a4949        ; "II*\0"
    cmpeq %ok, %m, %want
    assert %ok
    movi %two, 2
    alloc %cntbuf, %two
    read %g2, %cntbuf, %two
    load.2 %nent, %cntbuf, 0
    movi %esz, 32
    alloc %ebuf, %esz
    movi %eight, 8
    movi %i, 0
  entloop:
    cmpltu %more, %i, %nent
    br %more, ent, done
  ent:
    read %g3, %ebuf, %eight       ; [tag:2][count:2][value:4]
    load.2 %tag, %ebuf, 0
    load.2 %cnt, %ebuf, 2
    addi %src, %ebuf, 4
    call %v, tif_vget(%tag, %cnt, %src)
    addi %i, %i, 1
    jmp entloop
  done:
    ret %i
)";

// The Type-III targets: same getter clone, but every query uses a
// hardcoded tag table — the 0x13D context can never be delivered.
const char* kOpjCompressMain = R"(
  program "opj_compress"
  data opj_tags:
    .u16 0x100 0x101 0x102 0x103 0x106 0x111 0x115
  func main()
    movi %four, 4
    alloc %magic, %four
    read %got, %magic, %four
    load.4 %m, %magic, 0
    movi %want, 0x002a4949
    cmpeq %ok, %m, %want
    assert %ok
    alloc %val, %four
    movi %p, @opj_tags
    movi %i, 0
    movi %ntags, 7
    movi %two, 2
  tagloop:
    cmpltu %more, %i, %ntags
    br %more, q, done
  q:
    mul %off, %i, %two
    add %tp, %p, %off
    load.2 %tag, %tp, 0
    call %v, tif_vget(%tag, %four, %val)
    addi %i, %i, 1
    jmp tagloop
  done:
    ret %i
)";

const char* kLibsdl2Main = R"(
  program "libsdl2"
  data sdl_tags:
    .u16 0x102 0x106 0x115
  func main()
    movi %four, 4
    alloc %magic, %four
    read %got, %magic, %four
    load.4 %m, %magic, 0
    movi %want, 0x002a4949
    cmpeq %ok, %m, %want
    assert %ok
    alloc %val, %four
    movi %p, @sdl_tags
    movi %i, 0
    movi %ntags, 3
    movi %two, 2
  tagloop:
    cmpltu %more, %i, %ntags
    br %more, q, done
  q:
    mul %off, %i, %two
    add %tp, %p, %off
    load.2 %tag, %tp, 0
    call %v, tif_vget(%tag, %four, %val)
    addi %i, %i, 1
    jmp tagloop
  done:
    ret %i
)";

const char* kLibgdiplusMain = R"(
  program "libgdiplus"
  data gdip_tags:
    .u16 0x101 0x100
  func main()
    movi %four, 4
    alloc %magic, %four
    read %got, %magic, %four
    load.4 %m, %magic, 0
    movi %want, 0x002a4949
    cmpeq %ok, %m, %want
    assert %ok
    alloc %val, %four
    movi %p, @gdip_tags
    movi %i, 0
    movi %ntags, 2
    movi %two, 2
  tagloop:
    cmpltu %more, %i, %ntags
    br %more, q, done
  q:
    mul %off, %i, %two
    add %tp, %p, %off
    load.2 %tag, %tp, 0
    call %v, tif_vget(%tag, %four, %val)
    addi %i, %i, 1
    jmp tagloop
  done:
    ret %i
)";

// -- Pair 15: obfuscated dispatch (the simulated angr CFG defect) -----------

// S: pdf2htmlEX — metadata lengths flow into the wrapping copier.
const char* kPdf2htmlexMain = R"(
  program "pdf2htmlEX"
  func main()
    movi %n, 5
    alloc %hdr, %n
    read %got, %hdr, %n
    load.4 %m, %hdr, 0
    movi %want, 0x46445025
    cmpeq %ok, %m, %want
    assert %ok
    load.1 %nobj, %hdr, 4
    movi %osz, 4
    alloc %obuf, %osz
    movi %i, 0
  objloop:
    cmpltu %more, %i, %nobj
    br %more, obj, done
  obj:
    read %g2, %obuf, %osz
    load.1 %type, %obuf, 1
    load.2 %len, %obuf, 2
    movi %tm, 1
    cmpeq %ism, %type, %tm
    br %ism, meta, notm
  meta:
    call %v, pdf_meta_wrap(%len)
    addi %i, %i, 1
    jmp objloop
  notm:
    movi %tz, 0
    cmpeq %isz, %type, %tz
    br %isz, done, skip
  skip:
    tell %pos
    add %pos, %pos, %len
    seek %pos
    addi %i, %i, 1
    jmp objloop
  done:
    ret %i
)";

// T: pdfinfo (Poppler) — a newer container revision (extra format
// version byte) whose metadata handler is dispatched through an
// XOR-obfuscated function pointer, the construct the simulated angr
// defect cannot resolve (paper Table II Idx-15: Failure).
const char* kPopplerPdfinfoMain = R"(
  program "pdfinfo-poppler"
  data xor_key:
    .u8 0x5a
  func main()
    movi %n, 6
    alloc %hdr, %n
    read %got, %hdr, %n           ; "%PDF" + version + nobj
    load.4 %m, %hdr, 0
    movi %want, 0x46445025
    cmpeq %ok, %m, %want
    assert %ok
    load.1 %ver, %hdr, 4
    movi %one, 1
    cmpeq %okv, %ver, %one
    assert %okv                   ; container revision must be 1
    load.1 %nobj, %hdr, 5
    fnaddr %hm, handle_meta
    movi %kp, @xor_key
    load.1 %key, %kp, 0
    xor %obf, %hm, %key           ; pointer kept obfuscated at rest
    movi %osz, 4
    alloc %obuf, %osz
    movi %i, 0
  objloop:
    cmpltu %more, %i, %nobj
    br %more, obj, done
  obj:
    read %g2, %obuf, %osz
    load.1 %type, %obuf, 1
    load.2 %len, %obuf, 2
    movi %tm, 1
    cmpeq %ism, %type, %tm
    br %ism, meta, notm
  meta:
    xor %h, %obf, %key            ; deobfuscate at the call site
    icall %v, %h(%len)
    addi %i, %i, 1
    jmp objloop
  notm:
    movi %tz, 0
    cmpeq %isz, %type, %tz
    br %isz, done, skip
  skip:
    tell %pos
    add %pos, %pos, %len
    seek %pos
    addi %i, %i, 1
    jmp objloop
  done:
    ret %i
  func handle_meta(len)
    call %v, pdf_meta_wrap(%len)
    ret %v
)";

vm::Program Link(const char* shared, const char* harness) {
  return vm::AssembleParts({shared, harness});
}

}  // namespace

Pair BuildPair(int idx) {
  using vm::TrapKind;
  Pair p;
  p.idx = idx;
  switch (idx) {
    case 1:
      p = {idx, "JPEG-compressor", "N/A", "libgdx", "1.9.10",
           "CVE-2017-0700", "No-CWE", ExpectedResult::kTypeI,
           TrapKind::kOutOfBounds,
           Link(kSharedMjpgDecoder, kJpegCompressorMain),
           Link(kSharedMjpgDecoder, kLibgdxMain), MjpgQuantIndexPoc(),
           {"mjpg_decode", "mjpg_quant", "mjpg_scan"}};
      break;
    case 2:
      p = {idx, "JPEG-compressor", "N/A", "zxing", "@0a32109",
           "CVE-2017-0700", "No-CWE", ExpectedResult::kTypeI,
           TrapKind::kOutOfBounds,
           Link(kSharedMjpgDecoder, kJpegCompressorMain),
           Link(kSharedMjpgDecoder, kZxingMain), MjpgQuantIndexPoc(),
           {"mjpg_decode", "mjpg_quant", "mjpg_scan"}};
      break;
    case 3:
      p = {idx, "pdftops (Poppler)", "0.59", "pdftops (Xpdf)", "4.02",
           "CVE-2017-18267", "CWE-835", ExpectedResult::kTypeI,
           TrapKind::kFuelExhausted,
           Link(kSharedPdfWalkPages, kPopplerPdftopsMain),
           Link(kSharedPdfWalkPages, kXpdfPdftopsMain), MpdfCyclePoc(),
           {"pdf_walk_pages"}};
      break;
    case 4:
      p = {idx, "avconv", "12.3", "ffmpeg", "1.0", "CVE-2018-11102",
           "CWE-119", ExpectedResult::kTypeI, TrapKind::kOutOfBounds,
           Link(kSharedStreamCopy, kAvconvMain),
           Link(kSharedStreamCopy, kFfmpegMain), MjpgStreamChunkPoc(),
           {"stream_copy"}};
      break;
    case 5:
      p = {idx, "tjbench (libjpeg-turbo)", "2.0.1", "tjbench (mozjpeg)",
           "@0xbbb7550", "CVE-2018-20330", "CWE-190",
           ExpectedResult::kTypeI, TrapKind::kOutOfBounds,
           Link(kSharedTjDecompress, kTjbenchMain),
           Link(kSharedTjDecompress, kMozjpegMain), MjpgDimsOverflowPoc(),
           {"tj_decompress"}};
      break;
    case 6:
      p = {idx, "pdfalto", "0.2", "pdfinfo (Xpdf)", "4.0.0",
           "CVE-2019-9878", "CWE-119", ExpectedResult::kTypeI,
           TrapKind::kOutOfBounds, Link(kSharedPdfMetaCopy, kPdfaltoMain),
           Link(kSharedPdfMetaCopy, kXpdfPdfinfoMain),
           MpdfMetaOverflowPoc(), {"pdf_meta_copy"}};
      break;
    case 7:
      p = {idx, "ghostscript", "9.26", "opj_dump", "2.1.1",
           "ghostscript-BZ697463", "No-CWE", ExpectedResult::kTypeII,
           TrapKind::kNullDeref,
           Link(kSharedMj2kDecoder, kGhostscriptMain),
           Link(kSharedMj2kDecoder, kOpjDumpMain), MpdfEmbeddedJ2kPoc(),
           {"mj2k_decode", "mj2k_components"}};
      break;
    case 8:
      p = {idx, "opj_dump", "2.1.1", "MuPDF", "1.9",
           "ghostscript-BZ697463", "No-CWE", ExpectedResult::kTypeII,
           TrapKind::kNullDeref, Link(kSharedMj2kDecoder, kOpjDumpMain),
           Link(kSharedMj2kDecoder, kMupdfMain), Mj2kZeroComponentPoc(),
           {"mj2k_decode", "mj2k_components"}};
      break;
    case 9:
      p = {idx, "gif2png", "2.5.8", "gif2png (artificial)", "N/A",
           "CVE-2011-2896", "CWE-119", ExpectedResult::kTypeII,
           TrapKind::kOutOfBounds,
           Link(kSharedGifReadImage, kGif2pngMain),
           Link(kSharedGifReadImage, kGif2pngStrictMain),
           MgifCodeSizePoc(), {"gif_read_image"}};
      break;
    case 10:
      p = {idx, "tiffsplit", "4.0.6", "opj_compress", "2.3.1",
           "CVE-2016-10095", "CWE-119", ExpectedResult::kTypeIII,
           TrapKind::kOutOfBounds,
           Link(kSharedTifVGetField, kTiffsplitMain),
           Link(kSharedTifVGetField, kOpjCompressMain), MtifPageNamePoc(),
           {"tif_vget"}};
      break;
    case 11:
      p = {idx, "tiffsplit", "4.0.6", "libsdl2", "2.0.12",
           "CVE-2016-10095", "CWE-119", ExpectedResult::kTypeIII,
           TrapKind::kOutOfBounds,
           Link(kSharedTifVGetField, kTiffsplitMain),
           Link(kSharedTifVGetField, kLibsdl2Main), MtifPageNamePoc(),
           {"tif_vget"}};
      break;
    case 12:
      p = {idx, "tiffsplit", "4.0.6", "libgdiplus", "6.0.5",
           "CVE-2016-10095", "CWE-119", ExpectedResult::kTypeIII,
           TrapKind::kOutOfBounds,
           Link(kSharedTifVGetField, kTiffsplitMain),
           Link(kSharedTifVGetField, kLibgdiplusMain), MtifPageNamePoc(),
           {"tif_vget"}};
      break;
    case 13:
      p = {idx, "ghostscript", "9.26", "opj_dump", "2.2.0",
           "ghostscript-BZ697463", "No-CWE", ExpectedResult::kTypeIII,
           TrapKind::kNullDeref,
           Link(kSharedMj2kDecoder, kGhostscriptMain),
           Link(kSharedMj2kDecoder, kOpjDumpPatchedMain),
           MpdfEmbeddedJ2kPoc(), {"mj2k_decode", "mj2k_components"}};
      break;
    case 14:
      p = {idx, "pdfalto", "0.2", "pdftops (Xpdf)", "4.1.1",
           "CVE-2019-9878", "CWE-119", ExpectedResult::kTypeIII,
           TrapKind::kOutOfBounds, Link(kSharedPdfMetaCopy, kPdfaltoMain),
           Link(kSharedPdfMetaCopy, kXpdfPdftopsPatchedMain),
           MpdfMetaOverflowPoc(), {"pdf_meta_copy"}};
      break;
    case 15:
      p = {idx, "pdf2htmlEX", "0.14.6", "pdfinfo (Poppler)", "0.41.0",
           "CVE-2018-21009", "CWE-190", ExpectedResult::kFailure,
           TrapKind::kOutOfBounds,
           Link(kSharedPdfMetaWrap, kPdf2htmlexMain),
           Link(kSharedPdfMetaWrap, kPopplerPdfinfoMain), MpdfMetaWrapPoc(),
           {"pdf_meta_wrap"}};
      break;
    default:
      throw std::out_of_range("corpus pair index must be in [1, 15]");
  }
  return p;
}

std::vector<Pair> BuildCorpus() {
  std::vector<Pair> pairs;
  pairs.reserve(15);
  for (int i = 1; i <= 15; ++i) pairs.push_back(BuildPair(i));
  return pairs;
}

}  // namespace octopocs::corpus
