// The 15 S/T corpus pairs (Table II of the paper).
//
// Every pair bundles: the original software S (a MiniVM program that the
// PoC crashes), the propagated software T (sharing the ℓ functions
// verbatim), the original PoC, the ℓ member names, and the verdict the
// paper reports. DESIGN.md §4 maps each pair to the real-world pair it
// models and the mechanism it preserves.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "support/bytes.h"
#include "vm/interp.h"

namespace octopocs::corpus {

/// Expected verification outcome, following the paper's result types.
enum class ExpectedResult {
  kTypeI,    // triggered; guiding input of poc' equals poc's
  kTypeII,   // triggered; guiding input differs (container reform)
  kTypeIII,  // verified NOT triggerable
  kFailure,  // tooling failure (the simulated angr CFG defect)
};

std::string_view ExpectedResultName(ExpectedResult r);

struct Pair {
  int idx = 0;
  std::string s_name, s_version;
  std::string t_name, t_version;
  std::string vuln_id;  // CVE / bug-tracker id being modelled
  std::string cwe;      // "CWE-119", "CWE-190", "CWE-835", "No-CWE"
  ExpectedResult expected = ExpectedResult::kTypeI;
  /// Trap class the vulnerability produces (in S; and in T when
  /// triggerable).
  vm::TrapKind expected_trap = vm::TrapKind::kOutOfBounds;

  vm::Program s;
  vm::Program t;
  Bytes poc;
  /// Names of the ℓ member functions (present in both S and T).
  std::vector<std::string> shared_functions;
  /// S-name → T-name for clones T renamed (extended pair 17; empty for
  /// the paper's 15 pairs, where clone names survive propagation).
  std::map<std::string, std::string> t_names;
};

/// Builds pair `idx` (1-based, matching Table II). Throws
/// std::out_of_range for indices outside [1, 15].
Pair BuildPair(int idx);

/// All 15 pairs in Table II order.
std::vector<Pair> BuildCorpus();

}  // namespace octopocs::corpus
