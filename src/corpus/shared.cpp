#include "corpus/shared.h"

namespace octopocs::corpus {

// Pairs 1-2. The quant table holds up to 4 data pointers (8 bytes each);
// mjpg_scan trusts the scan header's table index — index 9 reads slot 9
// of a 32-byte allocation and traps out-of-bounds.
const char* kSharedMjpgDecoder = R"(
  func mjpg_decode(mode)
    movi %qtabsz, 32
    alloc %qtab, %qtabsz
    movi %hdrsz, 8
    alloc %hdr, %hdrsz
  segloop:
    movi %three, 3
    read %got, %hdr, %three        ; [type:1][len:2]
    cmpltu %short, %got, %three
    br %short, done, have
  have:
    load.1 %type, %hdr, 0
    load.2 %len, %hdr, 1
    movi %tq, 0xd8
    cmpeq %isq, %type, %tq
    br %isq, quant, notq
  quant:
    call %v, mjpg_quant(%qtab, %len)
    jmp segloop
  notq:
    movi %ts, 0xda
    cmpeq %iss, %type, %ts
    br %iss, scan, nots
  scan:
    call %v, mjpg_scan(%qtab, %len)
    jmp segloop
  nots:
    movi %te, 0xd9
    cmpeq %ise, %type, %te
    br %ise, done, skip
  skip:
    tell %pos
    add %pos, %pos, %len
    seek %pos
    jmp segloop
  done:
    ret %qtab

  func mjpg_quant(qtab, len)
    movi %one, 1
    alloc %idxbuf, %one
    read %got, %idxbuf, %one
    load.1 %idx, %idxbuf, 0
    movi %slots, 4
    cmpltu %ok, %idx, %slots       ; the *table loader* is bounds-checked
    assert %ok
    sub %rest, %len, %one
    alloc %data, %rest
    read %g2, %data, %rest
    movi %eight, 8
    mul %off, %idx, %eight
    add %slot, %qtab, %off
    store.8 %data, %slot, 0
    ret %idx

  func mjpg_scan(qtab, len)
    movi %three, 3
    alloc %hdr, %three
    read %got, %hdr, %three        ; [qidx:1][w:1][h:1]
    load.1 %qidx, %hdr, 0
    movi %eight, 8
    mul %off, %qidx, %eight        ; NO bounds check: the vulnerability
    add %slot, %qtab, %off
    load.8 %table, %slot, 0        ; OOB read when qidx >= 4
    load.1 %w, %hdr, 1
    load.1 %h, %hdr, 2
    mul %npix, %w, %h
    tell %pos
    add %pos, %pos, %npix
    seek %pos                      ; skip pixel data
    ret %table
)";

// Pair 4. The chunk header's length is trusted; the staging buffer is
// fixed at 32 bytes, so a 48-byte chunk overflows during the file read.
const char* kSharedStreamCopy = R"(
  func stream_copy(mode)
    movi %two, 2
    alloc %lenbuf, %two
    read %got, %lenbuf, %two
    load.2 %len, %lenbuf, 0
    movi %cap, 32
    alloc %staging, %cap
    read %g2, %staging, %len       ; OOB write when len > 32
    ret %len
)";

// Pair 5. Pixel-count arithmetic is done modulo 2^16 (a 32-bit codebase
// truncating to an unsigned short); the fill loop uses the untruncated
// count, so w = h = 256 allocates 0 bytes and overflows immediately.
const char* kSharedTjDecompress = R"(
  func tj_decompress(mode)
    movi %four, 4
    alloc %hdr, %four
    read %got, %hdr, %four         ; [w:2][h:2]
    load.2 %w, %hdr, 0
    load.2 %h, %hdr, 2
    mul %real, %w, %h
    movi %mask, 0xffff
    and %alloc_size, %real, %mask  ; CWE-190: truncating multiply
    alloc %pix, %alloc_size
    movi %i, 0
  fill:
    cmpltu %more, %i, %real
    br %more, body, done
  body:
    add %p, %pix, %i
    movi %b, 0x55
    store.1 %b, %p, 0              ; overflows once i >= alloc_size
    addi %i, %i, 1
    jmp fill
  done:
    ret %alloc_size
)";

// Pairs 7, 8, 13. The component-pointer table is zero-initialized; with
// ncomp == 0 no pointer is ever populated, yet the decoder dereferences
// slot 0 — a null dereference.
const char* kSharedMj2kDecoder = R"(
  func mj2k_decode(mode)
    movi %four, 4
    alloc %magic, %four
    read %got, %magic, %four
    load.4 %m, %magic, 0
    movi %want, 0x4b324a4d         ; "MJ2K" little-endian
    cmpeq %ok, %m, %want
    assert %ok
    movi %tabsz, 64
    alloc %comps, %tabsz           ; zero-initialized pointer table
    movi %hdrsz, 8
    alloc %hdr, %hdrsz
  boxloop:
    movi %three, 3
    read %g2, %hdr, %three         ; [type:1][len:2]
    cmpltu %short, %g2, %three
    br %short, fin, have
  have:
    load.1 %type, %hdr, 0
    load.2 %len, %hdr, 1
    movi %th, 0x01
    cmpeq %ish, %type, %th
    br %ish, header, noth
  header:
    call %v, mj2k_components(%comps)
    jmp boxloop
  noth:
    movi %te, 0x7f
    cmpeq %ise, %type, %te
    br %ise, fin, skip
  skip:
    tell %pos
    add %pos, %pos, %len
    seek %pos
    jmp boxloop
  fin:
    ret %comps

  func mj2k_components(comps)
    movi %five, 5
    alloc %hdr, %five
    read %got, %hdr, %five         ; [ncomp:1][w:2][h:2]
    load.1 %ncomp, %hdr, 0
    movi %i, 0
  alloc_loop:
    cmpltu %more, %i, %ncomp
    br %more, mk, use
  mk:
    movi %sz, 16
    alloc %c, %sz
    movi %eight, 8
    mul %off, %i, %eight
    add %slot, %comps, %off
    store.8 %c, %slot, 0
    addi %i, %i, 1
    jmp alloc_loop
  use:
    load.8 %first, %comps, 0       ; slot 0 is 0 when ncomp == 0
    load.4 %px, %first, 0          ; null dereference
    ret %px
)";

// Pair 9. The classic gif2png ReadImage shape: the LZW prefix table has
// 256 entries but the initial clear-code index is 1 << code_size, which
// lands outside the table for code_size >= 9 (we use bytes, so >= 9
// overflows the 256-byte table; the disclosed PoC uses 12).
const char* kSharedGifReadImage = R"(
  func gif_read_image(mode)
    movi %three, 3
    alloc %hdr, %three
    read %got, %hdr, %three        ; [code_size:1][npix:2]
    load.1 %cs, %hdr, 0
    movi %tblsz, 256
    alloc %prefix, %tblsz
    movi %one, 1
    shl %clear, %one, %cs          ; 1 << code_size
    add %slot, %prefix, %clear
    movi %mark, 0xee
    store.1 %mark, %slot, 0        ; OOB write when code_size >= 9
    load.2 %npix, %hdr, 1
    tell %pos
    add %pos, %pos, %npix
    seek %pos                      ; skip pixel data
    ret %clear
)";

// Pairs 10-12. Copies `count` bytes of the entry value through an
// 8-byte staging buffer, but only the PageName (0x13D) path skips the
// clamping the other tags get — CVE-2016-10095's shape.
const char* kSharedTifVGetField = R"(
  func tif_vget(tag, count, src)
    movi %name, 0x13d
    cmpeq %isname, %tag, %name
    br %isname, pagename, clamped
  pagename:
    movi %cap, 8
    alloc %staging, %cap
    movi %i, 0
  copyloop:
    cmpltu %more, %i, %count
    br %more, cbody, cdone
  cbody:
    add %sp, %src, %i
    load.1 %byte, %sp, 0           ; reads past the 4-byte value field
    add %dp, %staging, %i
    store.1 %byte, %dp, 0          ; and past the 8-byte staging buffer
    addi %i, %i, 1
    jmp copyloop
  cdone:
    ret %i
  clamped:
    movi %four, 4
    cmpleu %fits, %count, %four
    assert %fits                   ; non-PageName tags are validated
    load.4 %v, %src, 0
    ret %v
)";

// Pairs 6, 14. Streams `len` declared bytes into a 64-byte buffer.
const char* kSharedPdfMetaCopy = R"(
  func pdf_meta_copy(len)
    movi %cap, 64
    alloc %buf, %cap
    read %got, %buf, %len          ; OOB write when len > 64
    ret %got
)";

// Pair 3. mode 0 loads only the root page record (the "count pages"
// pass); mode 1 follows next-references — with no visited set, a cycle
// never terminates (CWE-835; surfaces as fuel exhaustion).
const char* kSharedPdfWalkPages = R"(
  func pdf_walk_pages(mode)
    movi %recsz, 4
    alloc %rec, %recsz
    movi %idx, 0
  walk:
    movi %base, 6                  ; page table offset in the file
    mul %off, %idx, %recsz
    add %pos, %base, %off
    seek %pos
    read %got, %rec, %recsz        ; [type:1][next:1][a:1][b:1]
    load.1 %type, %rec, 0
    movi %tpage, 0x03
    cmpeq %ispage, %type, %tpage
    br %ispage, follow, stop
  follow:
    br %mode, full, stop           ; mode 0: only the root record
  full:
    load.1 %idx, %rec, 1           ; follow the reference; cycles hang
    jmp walk
  stop:
    ret %idx
)";

// Pair 15. The staging size is len*2 computed modulo 2^16; len 0x8001
// doubles to 2, so the copy overflows a 2-byte allocation — CWE-190.
const char* kSharedPdfMetaWrap = R"(
  func pdf_meta_wrap(len)
    movi %two, 2
    mul %twice, %len, %two
    movi %mask, 0xffff
    and %cap, %twice, %mask        ; CWE-190: 16-bit staging arithmetic
    alloc %buf, %cap
    read %got, %buf, %len          ; OOB write when 2*len wraps
    ret %got
)";

// Extended pair 19. The scratch buffer is freed on a reset record
// (kind 0xFE) but the pointer is kept; the next data record writes
// through it — a classic use-after-free.
const char* kSharedUafProcessor = R"(
  func rec_process(scratch)
    movi %two, 2
    alloc %hdr, %two
    read %got, %hdr, %two          ; [kind:1][value:1]
    load.1 %kind, %hdr, 0
    movi %reset, 0xfe
    cmpeq %isreset, %kind, %reset
    br %isreset, do_reset, datarec
  do_reset:
    free %scratch                  ; ...but the caller keeps the pointer
    ret %kind
  datarec:
    load.1 %v, %hdr, 1
    store.1 %v, %scratch, 0        ; use-after-free once reset happened
    ret %v
)";

// Extended pair 20. Reads [w:2][den:1]; the divisor is trusted —
// den == 0 divides by zero (CWE-369).
const char* kSharedScaler = R"(
  func img_scale(mode)
    movi %three, 3
    alloc %hdr, %three
    read %got, %hdr, %three
    load.2 %w, %hdr, 0
    load.1 %den, %hdr, 2
    divu %scaled, %w, %den         ; CWE-369 when den == 0
    ret %scaled
)";

// Extended pair 21. All input travels through the read-only file
// mapping: the walker loads entries via pointer arithmetic on the
// mapped base instead of read(2). Tag 0x77's value indexes a 16-byte
// table without a bounds check.
const char* kSharedExifWalk = R"(
  func exif_walk(base)
    load.1 %n, %base, 4            ; entry count at mapped offset 4
    movi %tblsz, 16
    alloc %tbl, %tblsz
    movi %i, 0
    movi %three, 3
  entloop:
    cmpltu %more, %i, %n
    br %more, ent, done
  ent:
    mul %off, %i, %three
    add %ep2, %base, %off
    load.1 %tag, %ep2, 5           ; entries start at offset 5
    load.2 %val, %ep2, 6
    movi %vuln, 0x77
    cmpeq %isv, %tag, %vuln
    br %isv, index, next
  index:
    add %p, %tbl, %val
    movi %one, 1
    store.1 %one, %p, 0            ; OOB when val >= 16
    jmp next
  next:
    addi %i, %i, 1
    jmp entloop
  done:
    ret %i
)";

// Extended pair 22. Streams [tag:1][val:2] entries from the file
// position until a short read; tag 0x5A's value indexes a 16-byte
// table without a bounds check (CWE-119). The entry bytes are the
// crash primitives; the header that precedes them belongs to the
// caller, which is what lets the fuzz-fallback rung mutate the header
// while the pinned entry bytes ride along verbatim.
const char* kSharedTagStore = R"(
  func tag_store()
    movi %tblsz, 16
    alloc %tbl, %tblsz
    movi %three, 3
    movi %stored, 0
    alloc %ent, %three
  entloop:
    read %got, %ent, %three        ; [tag:1][val:2]
    cmpltu %short, %got, %three
    br %short, done, body
  body:
    load.1 %tag, %ent, 0
    load.2 %val, %ent, 1
    movi %vuln, 0x5a
    cmpeq %isv, %tag, %vuln
    br %isv, index, entloop
  index:
    add %p, %tbl, %val
    movi %one, 1
    store.1 %one, %p, 0            ; OOB when val >= 16
    addi %stored, %stored, 1
    jmp entloop
  done:
    ret %stored
)";

}  // namespace octopocs::corpus
