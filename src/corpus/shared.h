// Shared vulnerable code areas (ℓ) for the corpus pairs.
//
// Each constant is MiniVM assembly for a set of functions that is
// spliced *verbatim* into both S and T of a pair — the reproduction's
// equivalent of a vulnerable code clone. The paper's design assumption
// (§III) is that ℓ is known a priori from a clone detector such as
// VUDDY; here ℓ is known by construction, and corpus::Pair records the
// member function names.
//
// Every decoder reads its own input bytes from the current file
// position, which is what makes crash primitives relocatable: P3 places
// a bunch at T's file-position indicator when T enters ep.
#pragma once

namespace octopocs::corpus {

/// MJPG segment decoder with the quant-table-index OOB (pairs 1-2).
/// ℓ = {mjpg_decode, mjpg_quant, mjpg_scan}; ep = mjpg_decode.
/// Vulnerability: mjpg_scan indexes the 4-slot quant-pointer table with
/// an unchecked index from the scan header.
extern const char* kSharedMjpgDecoder;

/// MJPG stream-chunk copier with a fixed staging buffer (pair 4).
/// ℓ = {stream_copy}; ep = stream_copy. Reads [len:2] then `len` bytes
/// into a 32-byte buffer — CWE-119.
extern const char* kSharedStreamCopy;

/// tjbench-style decompressor with the dimension integer overflow
/// (pair 5). ℓ = {tj_decompress}; ep = tj_decompress. size = (w*h)
/// truncated to 16 bits — CWE-190 manifesting as a heap overflow.
extern const char* kSharedTjDecompress;

/// MJ2K decoder with the zero-component null dereference (pairs 7, 8,
/// 13). ℓ = {mj2k_decode, mj2k_components}; ep = mj2k_decode.
extern const char* kSharedMj2kDecoder;

/// MGIF image reader with the code-size prefix-table overflow (pair 9).
/// ℓ = {gif_read_image}; ep = gif_read_image — CWE-119 (heap).
extern const char* kSharedGifReadImage;

/// MTIF field getter — the _TIFFVGetField analog (pairs 10-12).
/// ℓ = {tif_vget}; ep = tif_vget. Copies `count` bytes of the entry
/// value through an 8-byte staging buffer when tag == 0x13D — CWE-119.
extern const char* kSharedTifVGetField;

/// MPDF metadata copier with an unchecked declared length (pairs 6, 14).
/// ℓ = {pdf_meta_copy}; ep = pdf_meta_copy — CWE-119.
extern const char* kSharedPdfMetaCopy;

/// MPDF two-pass page walker with the unterminated reference cycle
/// (pairs 3). ℓ = {pdf_walk_pages}; ep = pdf_walk_pages — CWE-835.
extern const char* kSharedPdfWalkPages;

/// MPDF metadata copier whose staging size doubles in 16-bit arithmetic
/// (pair 15) — CWE-190.
extern const char* kSharedPdfMetaWrap;

// --- Extended corpus (pairs 16-22; see corpus/extended.h) -----------------

/// Record processor with a use-after-free (extended pair 19, CWE-416):
/// a "reset" record frees the scratch buffer but the stale pointer is
/// written through by the next data record.
/// ℓ = {rec_process}; ep = rec_process.
extern const char* kSharedUafProcessor;

/// Image scaler with an unchecked divisor (extended pair 20,
/// CWE-369): reads [w:2][den:1] and computes w / den.
/// ℓ = {img_scale}; ep = img_scale.
extern const char* kSharedScaler;

/// EXIF-style tag walker over a *memory-mapped* input (extended pair
/// 21, CWE-119): the PoC reaches ℓ through the mmap channel, not file
/// reads — the second input path the paper hooks (§III-A).
/// Entries at base+5+i*3: [tag:1][val:2]; tag 0x77's value indexes a
/// 16-byte table unchecked. ℓ = {exif_walk}; ep = exif_walk.
extern const char* kSharedExifWalk;

/// Tag-entry streamer (extended pair 22, CWE-119): loops
/// [tag:1][val:2] entries from the file position until a short read;
/// tag 0x5A's value indexes a 16-byte table unchecked. The pair's T
/// hides ℓ behind a symbolic-bound warm-up loop, so the pipeline only
/// verifies it through the fuzz-fallback rung (DESIGN.md §16).
/// ℓ = {tag_store}; ep = tag_store.
extern const char* kSharedTagStore;

}  // namespace octopocs::corpus
