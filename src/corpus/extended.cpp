#include "corpus/extended.h"

#include <stdexcept>

#include "corpus/shared.h"
#include "formats/formats.h"
#include "vm/asm.h"

namespace octopocs::corpus {

namespace {

std::string ReplaceAll(std::string text, std::string_view from,
                       std::string_view to) {
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

// -- Pair 16: double wrapping ------------------------------------------------

// S: a bare-codestream consumer (the opj_dump shape).
const char* kBareJ2kMain = R"(
  program "opj_dump"
  func main()
    movi %zero, 0
    call %v, mj2k_decode(%zero)
    ret %v
)";

// T: a document browser reading an MBOX archive whose document entries
// are MPDF containers whose image objects are MJ2K streams.
// MBOX: "MBOX" [nfile:1] then per file [ftype:1][len:2][payload].
const char* kDocBrowserMain = R"(
  program "docbrowser"
  func main()
    movi %n, 5
    alloc %hdr, %n
    read %got, %hdr, %n            ; "MBOX" + nfile
    load.4 %m, %hdr, 0
    movi %want, 0x584f424d         ; "MBOX"
    cmpeq %ok, %m, %want
    assert %ok
    load.1 %nfile, %hdr, 4
    movi %fsz, 3
    alloc %fhdr, %fsz
    movi %i, 0
  fileloop:
    cmpltu %more, %i, %nfile
    br %more, file, done
  file:
    read %g2, %fhdr, %fsz          ; [ftype:1][len:2]
    load.1 %ftype, %fhdr, 0
    load.2 %flen, %fhdr, 1
    movi %tdoc, 2
    cmpeq %isdoc, %ftype, %tdoc
    br %isdoc, document, notdoc
  document:
    call %v, parse_pdf(%flen)
    addi %i, %i, 1
    jmp fileloop
  notdoc:
    tell %pos
    add %pos, %pos, %flen
    seek %pos
    addi %i, %i, 1
    jmp fileloop
  done:
    ret %i
  func parse_pdf(len)
    movi %n, 5
    alloc %hdr, %n
    read %got, %hdr, %n            ; "%PDF" + nobj
    load.4 %m, %hdr, 0
    movi %want, 0x46445025
    cmpeq %ok, %m, %want
    assert %ok
    load.1 %nobj, %hdr, 4
    movi %osz, 4
    alloc %obuf, %osz
    movi %i, 0
  objloop:
    cmpltu %more, %i, %nobj
    br %more, obj, done
  obj:
    read %g2, %obuf, %osz          ; [id][type][olen:2]
    load.1 %type, %obuf, 1
    load.2 %olen, %obuf, 2
    movi %ti, 2
    cmpeq %isi, %type, %ti
    br %isi, image, noti
  image:
    movi %zero, 0
    call %v, mj2k_decode(%zero)
    addi %i, %i, 1
    jmp objloop
  noti:
    movi %tz, 0
    cmpeq %isz, %type, %tz
    br %isz, done, skip
  skip:
    tell %pos
    add %pos, %pos, %olen
    seek %pos
    addi %i, %i, 1
    jmp objloop
  done:
    ret %i
)";

// -- Pair 17: renamed clone --------------------------------------------------

// S: a minimal gif reader (no palette; the shared reader does the rest).
const char* kGifReadMain = R"(
  program "gifread"
  func main()
    movi %hn, 26
    alloc %hdr, %hn
    read %got, %hdr, %hn           ; "GIF"+version+dims+palette
    load.1 %g, %hdr, 0
    movi %cg, 'G'
    cmpeq %okg, %g, %cg
    assert %okg
    movi %one, 1
    alloc %tbuf, %one
  blockloop:
    read %g3, %tbuf, %one
    cmpltu %short, %g3, %one
    br %short, done, have
  have:
    load.1 %t, %tbuf, 0
    movi %ti, 0x2c
    cmpeq %isi, %t, %ti
    br %isi, image, noti
  image:
    movi %zero, 0
    call %v, gif_read_image(%zero)
    jmp blockloop
  noti:
    movi %tt, 0x3b
    cmpeq %ist, %t, %tt
    br %ist, done, bad
  bad:
    trap
  done:
    ret %g3
)";

// T: "pngify" — the clone was renamed to read_raster_data and a strict
// version check was added. The harness below calls the renamed clone;
// the clone body itself is kSharedGifReadImage with the name rewritten
// (see BuildExtendedPair).
const char* kPngifyMain = R"(
  program "pngify"
  func main()
    movi %hn, 26
    alloc %hdr, %hn
    read %got, %hdr, %hn           ; header incl. the 16-byte palette
    load.1 %g, %hdr, 0
    movi %cg, 'G'
    cmpeq %okg, %g, %cg
    assert %okg
    load.1 %v0, %hdr, 3
    movi %c8, '8'
    cmpeq %ok0, %v0, %c8
    assert %ok0
    load.1 %v2, %hdr, 5
    movi %ca, 'a'
    cmpeq %ok2, %v2, %ca
    assert %ok2                    ; strict trailing version byte
    movi %one, 1
    alloc %tbuf, %one
  blockloop:
    read %g3, %tbuf, %one
    cmpltu %short, %g3, %one
    br %short, done, have
  have:
    load.1 %t, %tbuf, 0
    movi %ti, 0x2c
    cmpeq %isi, %t, %ti
    br %isi, image, noti
  image:
    movi %zero, 0
    call %v, read_raster_data(%zero)
    jmp blockloop
  noti:
    movi %tt, 0x3b
    cmpeq %ist, %t, %tt
    br %ist, done, bad
  bad:
    trap
  done:
    ret %g3
)";

// -- Pair 18: three ep encounters --------------------------------------------

const char* kStreamToolMain = R"(
  program "avconv-batch"
  func main()
    movi %n, 4
    alloc %magic, %n
    read %got, %magic, %n
    load.4 %m, %magic, 0
    movi %want, 0x47504a4d
    cmpeq %ok, %m, %want
    assert %ok
    movi %one, 1
    alloc %tbuf, %one
  chunkloop:
    read %g2, %tbuf, %one
    cmpltu %short, %g2, %one
    br %short, done, have
  have:
    load.1 %t, %tbuf, 0
    movi %tc, 0xc0
    cmpeq %isc, %t, %tc
    br %isc, chunk, notc
  chunk:
    movi %zero, 0
    call %v, stream_copy(%zero)
    jmp chunkloop
  notc:
    movi %te, 0xd9
    cmpeq %ise, %t, %te
    br %ise, done, bad
  bad:
    trap
  done:
    ret %g2
)";

const char* kObsMain = R"(
  program "obs-studio"
  data obs_presets:
    .u8 2 4 6
  func main()
    movi %p, @obs_presets
    movi %i, 0
    movi %np, 3
    movi %acc, 0
  presets:
    cmpltu %more, %i, %np
    br %more, loadp, ready
  loadp:
    add %q, %p, %i
    load.1 %c, %q, 0
    add %acc, %acc, %c
    addi %i, %i, 1
    jmp presets
  ready:
    movi %n, 4
    alloc %magic, %n
    read %got, %magic, %n
    load.4 %m, %magic, 0
    movi %want, 0x47504a4d
    cmpeq %ok, %m, %want
    assert %ok
    movi %one, 1
    alloc %tbuf, %one
  chunkloop:
    read %g2, %tbuf, %one
    cmpltu %short, %g2, %one
    br %short, done, have
  have:
    load.1 %t, %tbuf, 0
    movi %tc, 0xc0
    cmpeq %isc, %t, %tc
    br %isc, chunk, notc
  chunk:
    movi %zero, 0
    call %v, stream_copy(%zero)
    jmp chunkloop
  notc:
    movi %te, 0xd9
    cmpeq %ise, %t, %te
    br %ise, done, bad
  bad:
    trap
  done:
    ret %g2
)";

// -- Pair 19: use-after-free -------------------------------------------------

const char* kRecToolMain = R"(
  program "rectool"
  func main()
    movi %n, 5
    alloc %hdr, %n
    read %got, %hdr, %n            ; "REC0" + nrec
    load.4 %m, %hdr, 0
    movi %want, 0x30434552         ; "REC0"
    cmpeq %ok, %m, %want
    assert %ok
    load.1 %nrec, %hdr, 4
    movi %ssz, 4
    alloc %scratch, %ssz
    movi %i, 0
  recloop:
    cmpltu %more, %i, %nrec
    br %more, rec, done
  rec:
    call %v, rec_process(%scratch)
    addi %i, %i, 1
    jmp recloop
  done:
    ret %i
)";

const char* kRecToolNgMain = R"(
  program "rectool-ng"
  data ng_banner:
    .str "ng"
  func main()
    movi %bp, @ng_banner
    load.1 %b0, %bp, 0
    load.1 %b1, %bp, 1
    add %sig, %b0, %b1
    movi %n, 5
    alloc %hdr, %n
    read %got, %hdr, %n
    load.4 %m, %hdr, 0
    movi %want, 0x30434552
    cmpeq %ok, %m, %want
    assert %ok
    load.1 %nrec, %hdr, 4
    movi %ssz, 4
    alloc %scratch, %ssz
    movi %i, 0
  recloop:
    cmpltu %more, %i, %nrec
    br %more, rec, done
  rec:
    call %v, rec_process(%scratch)
    addi %i, %i, 1
    jmp recloop
  done:
    ret %i
)";

// -- Pair 21: mmap input channel ---------------------------------------------

const char* kExiftoolMain = R"(
  program "exiftool"
  func main()
    mmap %base
    load.4 %m, %base, 0
    movi %want, 0x46495845         ; "EXIF"
    cmpeq %ok, %m, %want
    assert %ok
    call %v, exif_walk(%base)
    ret %v
)";

const char* kThumbcacheMain = R"(
  program "thumbcache"
  data tc_config:
    .u8 9 9 9
  func main()
    movi %cp, @tc_config
    load.1 %c0, %cp, 0
    load.1 %c1, %cp, 1
    add %cfg, %c0, %c1
    mmap %base
    load.4 %m, %base, 0
    movi %want, 0x46495845
    cmpeq %ok, %m, %want
    assert %ok
    call %v, exif_walk(%base)
    ret %v
)";

// -- Pair 20: divide-by-zero, patched in T -----------------------------------

const char* kThumbnailerMain = R"(
  program "thumbnailer"
  func main()
    movi %n, 4
    alloc %magic, %n
    read %got, %magic, %n
    load.4 %m, %magic, 0
    movi %want, 0x314d4854         ; "THM1"
    cmpeq %ok, %m, %want
    assert %ok
    movi %zero, 0
    call %v, img_scale(%zero)
    ret %v
)";

const char* kThumbnailerHardenedMain = R"(
  program "thumbnailer-hardened"
  func main()
    movi %n, 7
    alloc %peek, %n
    read %got, %peek, %n           ; magic + [w:2][den:1]
    load.4 %m, %peek, 0
    movi %want, 0x314d4854
    cmpeq %ok, %m, %want
    assert %ok
    load.1 %den, %peek, 6
    movi %zero, 0
    cmpne %okd, %den, %zero
    assert %okd                    ; the patch: reject a zero divisor
    movi %four, 4
    seek %four
    call %v, img_scale(%zero)
    ret %v
)";

Bytes TripleChunkPoc() {
  return formats::WriteMjpg({{formats::kMjpgStreamChunk, Bytes(8, 0x21)},
                             {formats::kMjpgStreamChunk, Bytes(4, 0x22)},
                             {formats::kMjpgStreamChunk, Bytes(48, 0xCC)},
                             {formats::kMjpgEnd, {}}});
}

Bytes UafPoc() {
  Bytes out;
  AppendStr(out, "REC0");
  out.push_back(3);  // nrec
  out.push_back(0x01);
  out.push_back(5);     // data record (uses scratch: fine)
  out.push_back(0xFE);
  out.push_back(0);     // reset record (frees scratch)
  out.push_back(0x01);
  out.push_back(7);     // data record (use-after-free)
  return out;
}

Bytes ExifPoc() {
  Bytes out;
  AppendStr(out, "EXIF");
  out.push_back(2);  // entry count
  out.push_back(0x10);
  AppendLe(out, 3, 2);      // benign entry
  out.push_back(0x77);
  AppendLe(out, 0x90, 2);   // vulnerable tag, index 0x90 >= 16
  return out;
}

Bytes DivZeroPoc() {
  Bytes out;
  AppendStr(out, "THM1");
  AppendLe(out, 0x0040, 2);  // w
  out.push_back(0);          // den == 0: the CWE-369 trigger
  return out;
}

// Extended pair 22, S side: reads "TAGS" + [count:2] but ignores the
// count entirely — tag_store streams until a short read. Because S
// never loads the count, P1 cannot taint those two bytes, so the
// fuzz-fallback rung is free to mutate them while the entry bytes
// (the actual crash primitives) stay pinned.
const char* kTagToolMain = R"(
  program "tagtool"
  func main()
    movi %six, 6
    alloc %hdr, %six
    read %got, %hdr, %six          ; "TAGS" + [count:2] (count unused)
    load.4 %m, %hdr, 0
    movi %want, 0x53474154         ; "TAGS"
    cmpeq %ok, %m, %want
    assert %ok
    call %v, tag_store()
    ret %v
)";

// Extended pair 22, T side: trusts the count. Small caches (count
// high byte < 128) short-circuit before ℓ; large ones spin a warm-up
// loop of 16·nh ∈ [2048, 4080] iterations — a *symbolic* bound —
// before entering tag_store. Directed symex cannot cross the loop:
// every state either exits pre-ep or dies at the loop cap (θ = 120,
// and the adaptive ceiling of 1920, are below the minimum bound of
// 2048), so the pair is undecidable for P2/P3 while remaining
// concretely triggerable by any input with the count's top bit set.
// The gate and the bound derive from a single input byte so every
// branch query stays one-variable — symex dies fast, not by burning
// the solver's step budget on multi-byte inequalities.
const char* kTagCacheMain = R"(
  program "tagcache"
  func main()
    movi %six, 6
    alloc %hdr, %six
    read %got, %hdr, %six
    load.4 %m, %hdr, 0
    movi %want, 0x53474154         ; "TAGS"
    cmpeq %ok, %m, %want
    assert %ok
    load.1 %nh, %hdr, 5            ; count high byte
    movi %lim, 128
    cmpltu %small, %nh, %lim
    br %small, benign, warm
  benign:
    movi %zero, 0
    ret %zero                      ; small caches are served statically
  warm:
    movi %four, 4
    shl %bound, %nh, %four         ; 16 warm-up rounds per cached tag
    movi %i, 0
  warmloop:
    cmpltu %more, %i, %bound
    br %more, step, enter
  step:
    addi %i, %i, 1
    jmp warmloop
  enter:
    call %v, tag_store()
    ret %v
)";

Bytes TagPoc() {
  Bytes out;
  AppendStr(out, "TAGS");
  AppendLe(out, 2, 2);     // cache count: S ignores it, T trusts it
  out.push_back(0x5A);     // the vulnerable tag
  AppendLe(out, 0x90, 2);  // table index 0x90 >= 16: the OOB store
  return out;
}

}  // namespace

Pair BuildExtendedPair(int idx) {
  using vm::TrapKind;
  Pair p;
  switch (idx) {
    case 16:
      p = {idx, "opj_dump", "2.1.1", "docbrowser", "0.9",
           "ghostscript-BZ697463 (double wrap)", "No-CWE",
           ExpectedResult::kTypeII, TrapKind::kNullDeref,
           vm::AssembleParts({kSharedMj2kDecoder, kBareJ2kMain}),
           vm::AssembleParts({kSharedMj2kDecoder, kDocBrowserMain}),
           formats::Mj2kZeroComponentPoc(),
           {"mj2k_decode", "mj2k_components"}};
      break;
    case 17: {
      const std::string renamed = ReplaceAll(
          kSharedGifReadImage, "gif_read_image", "read_raster_data");
      p = {idx, "gifread", "1.0", "pngify", "0.3",
           "CVE-2011-2896 (renamed clone)", "CWE-119",
           ExpectedResult::kTypeII, TrapKind::kOutOfBounds,
           vm::AssembleParts({kSharedGifReadImage, kGifReadMain}),
           vm::AssembleParts({renamed, kPngifyMain}),
           formats::MgifCodeSizePoc(), {"gif_read_image"},
           {{"gif_read_image", "read_raster_data"}}};
      break;
    }
    case 18:
      p = {idx, "avconv-batch", "12.3", "obs-studio", "27.1",
           "CVE-2018-11102 (three chunks)", "CWE-119",
           ExpectedResult::kTypeI, TrapKind::kOutOfBounds,
           vm::AssembleParts({kSharedStreamCopy, kStreamToolMain}),
           vm::AssembleParts({kSharedStreamCopy, kObsMain}),
           TripleChunkPoc(), {"stream_copy"}};
      break;
    case 19:
      p = {idx, "rectool", "1.4", "rectool-ng", "2.0",
           "synthetic-UAF-001", "CWE-416", ExpectedResult::kTypeI,
           TrapKind::kUseAfterFree,
           vm::AssembleParts({kSharedUafProcessor, kRecToolMain}),
           vm::AssembleParts({kSharedUafProcessor, kRecToolNgMain}),
           UafPoc(), {"rec_process"}};
      break;
    case 20:
      p = {idx, "thumbnailer", "3.2", "thumbnailer-hardened", "3.3",
           "synthetic-DIV-001", "CWE-369", ExpectedResult::kTypeIII,
           TrapKind::kDivByZero,
           vm::AssembleParts({kSharedScaler, kThumbnailerMain}),
           vm::AssembleParts({kSharedScaler, kThumbnailerHardenedMain}),
           DivZeroPoc(), {"img_scale"}};
      break;
    case 21:
      p = {idx, "exiftool", "12.1", "thumbcache", "4.4",
           "synthetic-MMAP-001", "CWE-119", ExpectedResult::kTypeI,
           TrapKind::kOutOfBounds,
           vm::AssembleParts({kSharedExifWalk, kExiftoolMain}),
           vm::AssembleParts({kSharedExifWalk, kThumbcacheMain}),
           ExifPoc(), {"exif_walk"}};
      break;
    case 22:
      // The warm-up loop makes P2/P3 end program-dead (a staged
      // NotTriggerable), so the registry expects Type-III from the
      // stock pipeline; with --fuzz-fallback the directed campaign
      // cracks the count header and upgrades it to TriggeredByFuzzing.
      p = {idx, "tagtool", "1.2", "tagcache", "2.0",
           "synthetic-FUZZ-001", "CWE-119", ExpectedResult::kTypeIII,
           TrapKind::kOutOfBounds,
           vm::AssembleParts({kSharedTagStore, kTagToolMain}),
           vm::AssembleParts({kSharedTagStore, kTagCacheMain}),
           TagPoc(), {"tag_store"}};
      break;
    default:
      throw std::out_of_range("extended pair index must be in [16, 22]");
  }
  return p;
}

std::vector<Pair> BuildExtendedCorpus() {
  std::vector<Pair> pairs;
  for (int i = 16; i <= 22; ++i) pairs.push_back(BuildExtendedPair(i));
  return pairs;
}

}  // namespace octopocs::corpus
