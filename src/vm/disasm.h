// MiniVM disassembler: Program → assembler-compatible text.
//
// Primarily a debugging aid, but also the round-trip oracle for the
// assembler tests: Assemble(Disassemble(p)) must reproduce p.
#pragma once

#include <string>

#include "vm/ir.h"

namespace octopocs::vm {

/// Renders a single function.
std::string DisassembleFunction(const Program& program, FuncId fn);

/// Renders the whole program (data sections first, then functions) in a
/// form Assemble() accepts.
std::string Disassemble(const Program& program);

}  // namespace octopocs::vm
