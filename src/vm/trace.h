// Execution tracer: a bounded, human-readable log of a MiniVM run.
//
// Attach to an interpreter to capture what executed — instructions with
// operand values, calls with arguments, file reads with offsets. Used
// by the examples and invaluable when a corpus program misbehaves:
//
//   vm::ExecutionTracer tracer(/*max_lines=*/200);
//   vm::Interpreter interp(program, input);
//   interp.AddObserver(&tracer);
//   interp.Run();
//   std::cout << tracer.text();
#pragma once

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "vm/interp.h"

namespace octopocs::vm {

class ExecutionTracer : public ExecutionObserver {
 public:
  explicit ExecutionTracer(std::size_t max_lines = 1'000)
      : max_lines_(max_lines) {}

  /// Must outlive the run; needed to render function names.
  void BindProgram(const Program* program) { program_ = program; }

  void OnInstr(FuncId fn, BlockId block, std::size_t ip, const Instr& instr,
               std::uint64_t eff_addr, std::uint64_t value) override;
  void OnCallEnter(FuncId callee, std::span<const std::uint64_t> args,
                   const Instr* call_site) override;
  void OnCallExit(FuncId callee, std::uint64_t ret, bool returns_value,
                  Reg callee_value_reg, Reg caller_dest_reg) override;
  void OnFileRead(std::uint64_t dst_addr, std::uint64_t file_off,
                  std::uint64_t count) override;
  void OnBlockTransfer(FuncId fn, BlockId from, BlockId to) override;

  /// The captured trace. When the line budget was exhausted, ends with
  /// an elision marker.
  const std::string& text() const { return text_; }
  std::size_t lines() const { return lines_; }
  bool truncated() const { return truncated_; }

 private:
  void Emit(const std::string& line);
  std::string FnName(FuncId fn) const;

  const Program* program_ = nullptr;
  std::string text_;
  std::size_t lines_ = 0;
  std::size_t max_lines_;
  std::size_t depth_ = 0;
  bool truncated_ = false;
};

/// Per-opcode retirement counts, fed by the observer stream — so the
/// histogram is dispatch-agnostic by construction: fused
/// superinstructions report their constituent instructions one by one,
/// and a run counted under any backend yields the same histogram.
/// Calls (which fire OnCallEnter instead of OnInstr) are counted off
/// their call-site instruction.
class OpcodeHistogram : public ExecutionObserver {
 public:
  void OnInstr(FuncId fn, BlockId block, std::size_t ip, const Instr& instr,
               std::uint64_t eff_addr, std::uint64_t value) override;
  void OnCallEnter(FuncId callee, std::span<const std::uint64_t> args,
                   const Instr* call_site) override;

  std::uint64_t count(Op op) const {
    return counts_[static_cast<std::size_t>(op)];
  }
  /// Instructions counted (excludes terminators, which are not
  /// instructions and have no opcode).
  std::uint64_t total() const { return total_; }

  /// (op, count) rows with nonzero counts, descending by count; ties in
  /// opcode order.
  std::vector<std::pair<Op, std::uint64_t>> Sorted() const;

 private:
  std::array<std::uint64_t, kOpCount> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace octopocs::vm
