#include "vm/trace.h"

#include <algorithm>
#include <cstdio>

namespace octopocs::vm {

void ExecutionTracer::Emit(const std::string& line) {
  if (lines_ >= max_lines_) {
    if (!truncated_) {
      text_ += "... (trace truncated)\n";
      truncated_ = true;
    }
    return;
  }
  text_ += std::string(depth_ * 2, ' ');
  text_ += line;
  text_ += '\n';
  ++lines_;
}

std::string ExecutionTracer::FnName(FuncId fn) const {
  if (program_ != nullptr && fn < program_->functions.size()) {
    return program_->Fn(fn).name;
  }
  return "fn" + std::to_string(fn);
}

void ExecutionTracer::OnInstr(FuncId, BlockId, std::size_t,
                              const Instr& instr, std::uint64_t eff_addr,
                              std::uint64_t value) {
  char buf[128];
  switch (instr.op) {
    case Op::kLoad:
      std::snprintf(buf, sizeof buf, "%s.%u r%u <- [0x%llx] = 0x%llx",
                    OpName(instr.op).data(), instr.width, instr.a,
                    static_cast<unsigned long long>(eff_addr),
                    static_cast<unsigned long long>(value));
      break;
    case Op::kStore:
      std::snprintf(buf, sizeof buf, "%s.%u [0x%llx] <- 0x%llx",
                    OpName(instr.op).data(), instr.width,
                    static_cast<unsigned long long>(eff_addr),
                    static_cast<unsigned long long>(value));
      break;
    case Op::kAlloc:
      std::snprintf(buf, sizeof buf, "alloc r%u = 0x%llx", instr.a,
                    static_cast<unsigned long long>(value));
      break;
    default:
      // Keep the trace focused: plain ALU traffic is high-volume and
      // low-signal; record only value-producing memory/file/call events
      // plus control flow (block transfers).
      return;
  }
  Emit(buf);
}

void ExecutionTracer::OnCallEnter(FuncId callee,
                                  std::span<const std::uint64_t> args,
                                  const Instr*) {
  std::string line = "call " + FnName(callee) + "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) line += ", ";
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(args[i]));
    line += buf;
  }
  line += ")";
  Emit(line);
  ++depth_;
}

void ExecutionTracer::OnCallExit(FuncId callee, std::uint64_t ret, bool,
                                 Reg, Reg) {
  if (depth_ > 0) --depth_;
  char buf[64];
  std::snprintf(buf, sizeof buf, "ret %s = 0x%llx", FnName(callee).c_str(),
                static_cast<unsigned long long>(ret));
  Emit(buf);
}

void ExecutionTracer::OnFileRead(std::uint64_t dst_addr,
                                 std::uint64_t file_off,
                                 std::uint64_t count) {
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "read file[%llu..%llu) -> 0x%llx",
                static_cast<unsigned long long>(file_off),
                static_cast<unsigned long long>(file_off + count),
                static_cast<unsigned long long>(dst_addr));
  Emit(buf);
}

void ExecutionTracer::OnBlockTransfer(FuncId fn, BlockId from, BlockId to) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "-> %s:b%u (from b%u)",
                FnName(fn).c_str(), to, from);
  Emit(buf);
}

// -- OpcodeHistogram ----------------------------------------------------------

void OpcodeHistogram::OnInstr(FuncId, BlockId, std::size_t,
                              const Instr& instr, std::uint64_t,
                              std::uint64_t) {
  ++counts_[static_cast<std::size_t>(instr.op)];
  ++total_;
}

void OpcodeHistogram::OnCallEnter(FuncId, std::span<const std::uint64_t>,
                                  const Instr* call_site) {
  // The entry frame's OnCallEnter has no call site and retires nothing.
  if (call_site == nullptr) return;
  ++counts_[static_cast<std::size_t>(call_site->op)];
  ++total_;
}

std::vector<std::pair<Op, std::uint64_t>> OpcodeHistogram::Sorted() const {
  std::vector<std::pair<Op, std::uint64_t>> rows;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) {
      rows.emplace_back(static_cast<Op>(i), counts_[i]);
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  return rows;
}

}  // namespace octopocs::vm
