#include "vm/fusion.h"

namespace octopocs::vm {

namespace {

bool IsCompare(Op op) {
  return op >= Op::kCmpEq && op <= Op::kCmpGeU;
}

bool IsBinaryAluOp(Op op) { return op >= Op::kAdd && op <= Op::kShr; }

bool IsAluOrCompare(Op op) { return IsBinaryAluOp(op) || IsCompare(op); }

// movi x,C ; alu/cmp a,b,c with x feeding exactly one operand. Division
// through the b operand is excluded (the divisor stays a runtime value,
// so the handler would need the div-by-zero trap path); division through
// the c operand fuses only when the constant divisor is non-zero, which
// makes the trap statically impossible.
FusedOp ClassifyMovImmAlu(const Instr& movi, const Instr& alu, bool* ok) {
  *ok = false;
  if (movi.op != Op::kMovImm || !IsAluOrCompare(alu.op)) return FusedOp::kMovImmAluB;
  const bool divides = alu.op == Op::kDivU || alu.op == Op::kRemU;
  if (alu.c == movi.a) {
    if (divides && movi.imm == 0) return FusedOp::kMovImmAluC;
    *ok = true;
    return FusedOp::kMovImmAluC;
  }
  if (alu.b == movi.a) {
    if (divides) return FusedOp::kMovImmAluB;
    *ok = true;
    return FusedOp::kMovImmAluB;
  }
  return FusedOp::kMovImmAluB;
}

bool MatchesAddImmLoad(const Instr& addi, const Instr& load) {
  return addi.op == Op::kAddImm && load.op == Op::kLoad && load.b == addi.a;
}

bool MatchesCmpBranch(const Instr& cmp, const Terminator& term) {
  return IsCompare(cmp.op) && term.kind == TermKind::kBranch &&
         term.cond == cmp.a;
}

std::uint16_t TerminatorHandler(TermKind kind) {
  switch (kind) {
    case TermKind::kJump: return kHandlerTermJump;
    case TermKind::kBranch: return kHandlerTermBranch;
    case TermKind::kReturn: return kHandlerTermReturn;
  }
  return kHandlerTermJump;
}

void DecodeBlock(const Block& block, bool fuse, DecodedBlock& out,
                 FusionStats& stats) {
  const std::vector<Instr>& instrs = block.instrs;
  const std::size_t n = instrs.size();
  out.code.reserve(n + 1);
  out.entry_of_ip.assign(n + 1, 0);

  auto emit = [&](DecodedInstr entry) {
    const auto index = static_cast<std::uint32_t>(out.code.size());
    for (std::uint8_t k = 0; k < entry.len; ++k) {
      out.entry_of_ip[entry.ip + k] = index;
    }
    out.code.push_back(entry);
  };

  bool term_fused = false;
  std::size_t i = 0;
  while (i < n) {
    const auto ip = static_cast<std::uint32_t>(i);
    if (fuse) {
      // Block-tail triple: movi + cmp + branch.
      if (i + 2 == n && block.term.kind == TermKind::kBranch) {
        bool alu_ok = false;
        const FusedOp kind = ClassifyMovImmAlu(instrs[i], instrs[i + 1], &alu_ok);
        if (alu_ok && kind == FusedOp::kMovImmAluC &&
            MatchesCmpBranch(instrs[i + 1], block.term)) {
          emit({HandlerForFused(FusedOp::kMovImmCmpBranch), 3, ip, &instrs[i],
                &instrs[i + 1], nullptr, &block.term});
          ++stats.triples;
          ++stats.per_kind[static_cast<std::size_t>(FusedOp::kMovImmCmpBranch)];
          term_fused = true;
          i = n + 1;  // terminator consumed
          continue;
        }
      }
      // Block-tail pair: cmp + branch.
      if (i + 1 == n && MatchesCmpBranch(instrs[i], block.term)) {
        emit({HandlerForFused(FusedOp::kCmpBranch), 2, ip, &instrs[i], nullptr,
              nullptr, &block.term});
        ++stats.pairs;
        ++stats.per_kind[static_cast<std::size_t>(FusedOp::kCmpBranch)];
        term_fused = true;
        i = n + 1;
        continue;
      }
      if (i + 1 < n) {
        bool alu_ok = false;
        const FusedOp kind = ClassifyMovImmAlu(instrs[i], instrs[i + 1], &alu_ok);
        if (alu_ok) {
          emit({HandlerForFused(kind), 2, ip, &instrs[i], &instrs[i + 1],
                nullptr, nullptr});
          ++stats.pairs;
          ++stats.per_kind[static_cast<std::size_t>(kind)];
          i += 2;
          continue;
        }
        if (MatchesAddImmLoad(instrs[i], instrs[i + 1])) {
          emit({HandlerForFused(FusedOp::kAddImmLoad), 2, ip, &instrs[i],
                &instrs[i + 1], nullptr, nullptr});
          ++stats.pairs;
          ++stats.per_kind[static_cast<std::size_t>(FusedOp::kAddImmLoad)];
          i += 2;
          continue;
        }
      }
    }
    emit({HandlerForOp(instrs[i].op), 1, ip, &instrs[i], nullptr, nullptr,
          nullptr});
    ++stats.singles;
    ++i;
  }

  if (!term_fused) {
    emit({TerminatorHandler(block.term.kind), 1, static_cast<std::uint32_t>(n),
          nullptr, nullptr, nullptr, &block.term});
  }
}

}  // namespace

DecodedProgram DecodeProgram(const Program& program, bool fuse) {
  DecodedProgram out;
  out.source = &program;
  out.fns.resize(program.functions.size());
  for (std::size_t f = 0; f < program.functions.size(); ++f) {
    const Function& fn = program.functions[f];
    out.fns[f].blocks.resize(fn.blocks.size());
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      DecodeBlock(fn.blocks[b], fuse, out.fns[f].blocks[b], out.stats);
    }
  }
  return out;
}

}  // namespace octopocs::vm
