// MiniVM text assembler.
//
// Corpus programs (the 15 S/T pairs) are authored as assembly text and
// assembled into vm::Program values. Keeping them textual makes the shared
// vulnerable area ℓ literally shared: the same function source is spliced
// into both S and T.
//
// Syntax (one statement per line, ';' starts a comment):
//
//   program "mupdf"            ; optional program name
//
//   data tag_table:            ; rodata blob with a named symbol
//     .u16 0x100 0x101         ; little-endian fields
//     .u32 640
//     .bytes de ad be ef       ; raw hex bytes
//     .str "GIF87a"            ; raw characters
//
//   func main()                ; entry point is the function named "main"
//     movi %n, 4
//     call %hdr, read_header(%n)
//     br %hdr, ok, bad         ; condition, taken-label, fallthrough-label
//   ok:
//     ret %hdr
//   bad:
//     trap
//
//   func read_header(count)    ; parameters bind %count to r0, ...
//     ...
//     ret
//
// Registers are named (%x) and allocated per function on first use;
// parameters occupy r0..rN-1. Immediates: decimal (negatives wrap),
// 0x hex, 'c' char, or @symbol for the absolute address of a data symbol.
// Instruction mnemonics match vm::OpName; loads/stores carry a width
// suffix: load.1/.2/.4/.8 %dst, %base, offset.
//
// A label starts a new basic block; falling off a block into a label
// inserts an implicit jump. Every function must end each block with a
// terminator (jmp/br/ret/trap).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "vm/ir.h"

namespace octopocs::vm {

/// Raised on any syntax or semantic error; the message includes the
/// 1-based source line.
class AsmError : public std::runtime_error {
 public:
  AsmError(std::size_t line, const std::string& message)
      : std::runtime_error("asm line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Assembles `source` into a validated Program. Throws AsmError.
Program Assemble(std::string_view source);

/// Assembles the concatenation of several sources (e.g. a shared-ℓ
/// library plus a program-specific harness). Sources are concatenated in
/// order, so later functions may reference earlier ones and vice versa —
/// call resolution is a second pass over the whole unit.
Program AssembleParts(std::initializer_list<std::string_view> sources);

}  // namespace octopocs::vm
