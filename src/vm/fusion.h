// Pre-execution decode + superinstruction fusion for the threaded
// interpreter backend.
//
// The threaded backend does not execute vm/ir blocks directly: a one-time
// peephole pass rewrites each block into a DecodedBlock — a flat array of
// DecodedInstr entries, each carrying a handler id plus borrowed pointers
// to its constituent original instructions. Fusible adjacent pairs and
// triples (the decode/compare/branch shapes the src/formats parsers emit
// in their hot loops) collapse into one entry dispatched once.
//
// Transparency contract: a fused handler performs *every* constituent
// register write in original order, counts every constituent toward the
// instruction budget, and fires every constituent observer event with
// the original (fn, block, ip) coordinates — so disasm (which renders
// the untouched Program), trace, taint, and the dynamic CFG observe a
// stream byte-identical to unfused execution. Fusion never crosses an
// instruction that can trap mid-pair except as the *last* constituent,
// so backtraces and fault attribution are also identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vm/ir.h"

namespace octopocs::vm {

/// Superinstruction kinds. Each has a dedicated handler label in the
/// threaded dispatch table (vm/interp.cpp), appended after the plain
/// opcode handlers.
enum class FusedOp : std::uint8_t {
  kMovImmAluB,       // movi x,C ; alu a,x,c     (x feeds the b operand)
  kMovImmAluC,       // movi x,C ; alu a,b,x     (x feeds the c operand)
  kAddImmLoad,       // addi x,b,C ; load a,x,off
  kCmpBranch,        // cmp a,b,c ; br a, T, F   (consumes the terminator)
  kMovImmCmpBranch,  // movi x,C ; cmp a,b,x ; br a, T, F
};
inline constexpr std::size_t kFusedOpCount = 5;

/// Dispatch handler id space: plain ops first, then superinstructions,
/// then the three terminator kinds (terminators are decoded entries too,
/// which keeps the dispatch loop uniform).
inline constexpr std::uint16_t kHandlerFusedBase =
    static_cast<std::uint16_t>(kOpCount);
inline constexpr std::uint16_t kHandlerTermBase =
    static_cast<std::uint16_t>(kOpCount + kFusedOpCount);
inline constexpr std::uint16_t kHandlerTermJump = kHandlerTermBase + 0;
inline constexpr std::uint16_t kHandlerTermBranch = kHandlerTermBase + 1;
inline constexpr std::uint16_t kHandlerTermReturn = kHandlerTermBase + 2;
inline constexpr std::size_t kDispatchTableSize = kOpCount + kFusedOpCount + 3;

inline constexpr std::uint16_t HandlerForOp(Op op) {
  return static_cast<std::uint16_t>(op);
}
inline constexpr std::uint16_t HandlerForFused(FusedOp f) {
  return static_cast<std::uint16_t>(kHandlerFusedBase +
                                    static_cast<std::uint16_t>(f));
}

/// One dispatch unit: a plain instruction, a fused pair/triple, or a
/// block terminator. Instr/Terminator pointers borrow from the Program,
/// which must outlive the decoded form.
struct DecodedInstr {
  std::uint16_t handler = 0;
  /// Original units covered (instructions; a fused branch also counts
  /// its terminator). Drives exact instruction accounting.
  std::uint8_t len = 1;
  /// Original ip of the first constituent; terminator entries carry
  /// block.instrs.size() (the ip the switch backend reports there).
  std::uint32_t ip = 0;
  const Instr* i1 = nullptr;
  const Instr* i2 = nullptr;
  const Instr* i3 = nullptr;
  const Terminator* term = nullptr;
};

struct DecodedBlock {
  /// Always ends with exactly one terminator-carrying entry.
  std::vector<DecodedInstr> code;
  /// Maps every original ip 0..instrs.size() to the index of the decoded
  /// entry *containing* it (size() maps to the terminator entry). Resume
  /// points — return-from-call, slow-path re-entry — land here; a resume
  /// ip strictly inside a fused entry is re-executed one original
  /// instruction at a time until the next entry boundary.
  std::vector<std::uint32_t> entry_of_ip;
};

struct DecodedFunction {
  std::vector<DecodedBlock> blocks;
};

/// What the peephole pass did — bench_vm reports these, and the fusion
/// tests assert fusion actually occurs on the shapes it targets.
struct FusionStats {
  std::uint64_t pairs = 0;    // two-instruction superinstructions
  std::uint64_t triples = 0;  // movi+cmp+branch
  std::uint64_t singles = 0;  // entries left unfused (excl. terminators)
  std::uint64_t per_kind[kFusedOpCount] = {};
};

class DecodedProgram {
 public:
  const Program* source = nullptr;
  std::vector<DecodedFunction> fns;
  FusionStats stats;
};

/// Decodes `program` for the threaded backend. With `fuse` false every
/// entry is a single instruction (the A/B baseline for measuring fusion
/// in isolation); decoding itself is always performed.
DecodedProgram DecodeProgram(const Program& program, bool fuse);

}  // namespace octopocs::vm
