#include "vm/ir.h"

#include <stdexcept>

#include "vm/op_info.h"

namespace octopocs::vm {

bool IsBinaryAlu(Op op) { return GetOpInfo(op).is_binary_alu; }

FuncId Program::FindFunction(std::string_view fn_name) const {
  for (FuncId i = 0; i < functions.size(); ++i) {
    if (functions[i].name == fn_name) return i;
  }
  return kInvalidFunc;
}

std::uint64_t Program::RodataAddress(std::string_view symbol) const {
  for (const auto& sym : rodata_symbols) {
    if (sym.name == symbol) return kRodataBase + sym.offset;
  }
  throw std::out_of_range("unknown rodata symbol: " + std::string(symbol));
}

namespace {

std::string Where(const Function& fn, BlockId b, std::size_t ip) {
  return fn.name + ":b" + std::to_string(b) + ":i" + std::to_string(ip);
}

std::optional<std::string> CheckInstr(const Program& prog, const Function& fn,
                                      BlockId b, std::size_t ip,
                                      const Instr& ins) {
  auto reg_ok = [&](Reg r) { return r < fn.num_regs; };
  auto bad = [&](const std::string& msg) {
    return std::optional<std::string>(Where(fn, b, ip) + ": " + msg);
  };
  if (!reg_ok(ins.a) || !reg_ok(ins.b) || !reg_ok(ins.c)) {
    return bad("register index out of range");
  }
  switch (ins.op) {
    case Op::kLoad:
    case Op::kStore:
      if (ins.width != 1 && ins.width != 2 && ins.width != 4 &&
          ins.width != 8) {
        return bad("illegal access width");
      }
      break;
    case Op::kCall:
    case Op::kFnAddr:
      if (ins.imm >= prog.functions.size()) {
        return bad("direct call/fnaddr to unknown function id");
      }
      if (ins.op == Op::kCall &&
          ins.args.size() !=
              prog.functions[static_cast<FuncId>(ins.imm)].num_params) {
        return bad("argument count mismatch calling " +
                   prog.functions[static_cast<FuncId>(ins.imm)].name);
      }
      [[fallthrough]];
    case Op::kICall:
      for (Reg r : ins.args) {
        if (!reg_ok(r)) return bad("call argument register out of range");
      }
      break;
    default:
      break;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> Validate(const Program& program) {
  if (program.functions.empty()) return "program has no functions";
  if (program.entry >= program.functions.size()) {
    return "entry function id out of range";
  }
  for (const auto& fn : program.functions) {
    if (fn.blocks.empty()) {
      return fn.name + ": function has no blocks";
    }
    if (fn.num_regs > kMaxRegs || fn.num_params > fn.num_regs) {
      return fn.name + ": bad register file configuration";
    }
    for (BlockId b = 0; b < fn.blocks.size(); ++b) {
      const Block& block = fn.blocks[b];
      for (std::size_t ip = 0; ip < block.instrs.size(); ++ip) {
        if (auto err = CheckInstr(program, fn, b, ip, block.instrs[ip])) {
          return err;
        }
      }
      const Terminator& t = block.term;
      auto block_ok = [&](BlockId id) { return id < fn.blocks.size(); };
      switch (t.kind) {
        case TermKind::kJump:
          if (!block_ok(t.target)) return Where(fn, b, block.instrs.size()) +
                                          ": jump target out of range";
          break;
        case TermKind::kBranch:
          if (!block_ok(t.target) || !block_ok(t.fallthrough)) {
            return Where(fn, b, block.instrs.size()) +
                   ": branch target out of range";
          }
          if (t.cond >= fn.num_regs) {
            return Where(fn, b, block.instrs.size()) +
                   ": branch condition register out of range";
          }
          break;
        case TermKind::kReturn:
          if (t.returns_value && t.cond >= fn.num_regs) {
            return Where(fn, b, block.instrs.size()) +
                   ": return value register out of range";
          }
          break;
      }
    }
  }
  // rodata symbol table must describe the rodata blob.
  for (const auto& sym : program.rodata_symbols) {
    if (sym.offset + sym.size > program.rodata.size()) {
      return "rodata symbol '" + sym.name + "' exceeds segment";
    }
  }
  return std::nullopt;
}

std::string_view OpName(Op op) {
  // Generated from the opcode master list, so a new opcode cannot ship
  // without a mnemonic (the disassembler renders through this table).
  static constexpr std::string_view kMnemonics[kOpCount] = {
#define OCTOPOCS_VM_OP_NAME(name, mnemonic) mnemonic,
      OCTOPOCS_VM_OPCODES(OCTOPOCS_VM_OP_NAME)
#undef OCTOPOCS_VM_OP_NAME
  };
  const auto index = static_cast<std::size_t>(op);
  return index < kOpCount ? kMnemonics[index] : "?";
}

}  // namespace octopocs::vm
