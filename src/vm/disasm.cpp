#include "vm/disasm.h"

#include <string>

#include "support/hex.h"

namespace octopocs::vm {

namespace {

std::string RegName(Reg r) { return "%r" + std::to_string(r); }

std::string Label(BlockId b) { return "L" + std::to_string(b); }

std::string ImmStr(std::uint64_t v) {
  // Render small values as decimal, everything else as hex.
  if (v < 4096) return std::to_string(v);
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void RenderInstr(const Program& program, const Instr& ins, std::string& out) {
  const std::string mn(OpName(ins.op));
  out += "  ";
  switch (ins.op) {
    case Op::kMovImm:
      out += mn + " " + RegName(ins.a) + ", " + ImmStr(ins.imm);
      break;
    case Op::kMov:
    case Op::kNot:
      out += mn + " " + RegName(ins.a) + ", " + RegName(ins.b);
      break;
    case Op::kAddImm:
      out += mn + " " + RegName(ins.a) + ", " + RegName(ins.b) + ", " +
             ImmStr(ins.imm);
      break;
    case Op::kLoad:
    case Op::kStore:
      out += mn + "." + std::to_string(ins.width) + " " + RegName(ins.a) +
             ", " + RegName(ins.b) + ", " + ImmStr(ins.imm);
      break;
    case Op::kAlloc:
      out += mn + " " + RegName(ins.a) + ", " + RegName(ins.b);
      break;
    case Op::kFree:
    case Op::kAssert:
    case Op::kTell:
    case Op::kMMap:
    case Op::kFileSize:
      out += mn + " " + RegName(ins.a);
      break;
    case Op::kSeek:
      out += mn + " " + RegName(ins.b);
      break;
    case Op::kRead:
      out += mn + " " + RegName(ins.a) + ", " + RegName(ins.b) + ", " +
             RegName(ins.c);
      break;
    case Op::kCall:
    case Op::kICall: {
      out += mn + " " + RegName(ins.a) + ", ";
      if (ins.op == Op::kCall) {
        out += program.Fn(static_cast<FuncId>(ins.imm)).name;
      } else {
        out += RegName(ins.b);
      }
      out += "(";
      for (std::size_t i = 0; i < ins.args.size(); ++i) {
        if (i != 0) out += ", ";
        out += RegName(ins.args[i]);
      }
      out += ")";
      break;
    }
    case Op::kFnAddr:
      out += mn + " " + RegName(ins.a) + ", " +
             program.Fn(static_cast<FuncId>(ins.imm)).name;
      break;
    case Op::kTrap:
    case Op::kNop:
      out += mn;
      break;
    default:  // three-register ALU
      out += mn + " " + RegName(ins.a) + ", " + RegName(ins.b) + ", " +
             RegName(ins.c);
      break;
  }
  out += "\n";
}

}  // namespace

std::string DisassembleFunction(const Program& program, FuncId id) {
  const Function& fn = program.Fn(id);
  std::string out = "func " + fn.name + "(";
  for (std::uint8_t i = 0; i < fn.num_params; ++i) {
    if (i != 0) out += ", ";
    out += "r" + std::to_string(i);
  }
  out += ")\n";
  for (BlockId b = 0; b < fn.blocks.size(); ++b) {
    out += Label(b) + ":\n";
    const Block& block = fn.blocks[b];
    for (const Instr& ins : block.instrs) {
      // `trap` doubles as a terminator in assembler syntax; skip the
      // synthetic `ret` that follows it when rendering.
      RenderInstr(program, ins, out);
      if (ins.op == Op::kTrap) break;
    }
    if (block.instrs.empty() || block.instrs.back().op != Op::kTrap) {
      const Terminator& t = block.term;
      switch (t.kind) {
        case TermKind::kJump:
          out += "  jmp " + Label(t.target) + "\n";
          break;
        case TermKind::kBranch:
          out += "  br " + RegName(t.cond) + ", " + Label(t.target) + ", " +
                 Label(t.fallthrough) + "\n";
          break;
        case TermKind::kReturn:
          out += t.returns_value ? "  ret " + RegName(t.cond) + "\n"
                                 : "  ret\n";
          break;
      }
    }
  }
  return out;
}

std::string Disassemble(const Program& program) {
  std::string out;
  if (!program.name.empty()) {
    out += "program \"" + program.name + "\"\n\n";
  }
  for (const RodataSymbol& sym : program.rodata_symbols) {
    out += "data " + sym.name + ":\n  .bytes ";
    out += ToHex(ByteView(program.rodata).subspan(sym.offset, sym.size));
    out += "\n\n";
  }
  for (FuncId id = 0; id < program.functions.size(); ++id) {
    out += DisassembleFunction(program, id);
    out += "\n";
  }
  return out;
}

}  // namespace octopocs::vm
