#include "vm/op_info.h"

namespace octopocs::vm {

namespace {

constexpr OpInfo Row(bool src_a, bool src_b, bool src_c, bool src_mem,
                     TaintDest dest, SideEffect effect, ControlClass control,
                     bool is_binary_alu, bool may_trap) {
  OpInfo info;
  info.src_a = src_a;
  info.src_b = src_b;
  info.src_c = src_c;
  info.src_mem = src_mem;
  info.dest = dest;
  info.effect = effect;
  info.control = control;
  info.is_binary_alu = is_binary_alu;
  info.may_trap = may_trap;
  info.specified = true;
  return info;
}

constexpr OpInfo Alu(bool may_trap = false) {
  return Row(false, true, true, false, TaintDest::kUnionBC, SideEffect::kNone,
             ControlClass::kFallthrough, /*is_binary_alu=*/true, may_trap);
}

constexpr OpInfo Unary() {
  return Row(false, true, false, false, TaintDest::kCopyB, SideEffect::kNone,
             ControlClass::kFallthrough, false, false);
}

struct Table {
  OpInfo rows[kOpCount];

  constexpr Table() : rows{} {
    using D = TaintDest;
    using E = SideEffect;
    using C = ControlClass;
    auto set = [this](Op op, OpInfo info) {
      rows[static_cast<std::size_t>(op)] = info;
    };
    set(Op::kMovImm, Row(0, 0, 0, 0, D::kClean, E::kNone, C::kFallthrough, 0, 0));
    set(Op::kMov, Unary());
    set(Op::kAdd, Alu());
    set(Op::kSub, Alu());
    set(Op::kMul, Alu());
    set(Op::kDivU, Alu(/*may_trap=*/true));
    set(Op::kRemU, Alu(/*may_trap=*/true));
    set(Op::kAnd, Alu());
    set(Op::kOr, Alu());
    set(Op::kXor, Alu());
    set(Op::kShl, Alu());
    set(Op::kShr, Alu());
    set(Op::kNot, Unary());
    set(Op::kAddImm, Unary());
    set(Op::kCmpEq, Alu());
    set(Op::kCmpNe, Alu());
    set(Op::kCmpLtU, Alu());
    set(Op::kCmpLeU, Alu());
    set(Op::kCmpGtU, Alu());
    set(Op::kCmpGeU, Alu());
    // kLoad reads the pointer register and the addressed bytes.
    set(Op::kLoad, Row(0, 1, 0, 1, D::kFromMem, E::kMemRead, C::kFallthrough, 0, 1));
    // kStore reads the value (a) and the pointer (b).
    set(Op::kStore, Row(1, 1, 0, 0, D::kMemStore, E::kMemWrite, C::kFallthrough, 0, 1));
    // kAlloc reads the size; its result is a fresh (clean) pointer.
    set(Op::kAlloc, Row(0, 1, 0, 0, D::kClean, E::kHeap, C::kFallthrough, 0, 1));
    set(Op::kFree, Row(1, 0, 0, 0, D::kNone, E::kHeap, C::kFallthrough, 0, 1));
    // kRead reads the destination pointer (b) and the count (c); the
    // returned byte count is a length, hence a clean destination. The
    // taint of the *copied bytes* flows through OnFileRead, not here.
    set(Op::kRead, Row(0, 1, 1, 0, D::kClean, E::kFileRead, C::kFallthrough, 0, 1));
    set(Op::kMMap, Row(0, 0, 0, 0, D::kClean, E::kFileQuery, C::kFallthrough, 0, 0));
    set(Op::kSeek, Row(0, 1, 0, 0, D::kNone, E::kFilePos, C::kFallthrough, 0, 0));
    set(Op::kTell, Row(0, 0, 0, 0, D::kClean, E::kFilePos, C::kFallthrough, 0, 0));
    set(Op::kFileSize, Row(0, 0, 0, 0, D::kClean, E::kFileQuery, C::kFallthrough, 0, 0));
    // Calls: argument/return taint flows via the frame transfer.
    set(Op::kCall, Row(0, 0, 0, 0, D::kNone, E::kNone, C::kCall, 0, 1));
    set(Op::kICall, Row(0, 0, 0, 0, D::kNone, E::kNone, C::kCall, 0, 1));
    set(Op::kFnAddr, Row(0, 0, 0, 0, D::kClean, E::kNone, C::kFallthrough, 0, 0));
    set(Op::kAssert, Row(1, 0, 0, 0, D::kNone, E::kNone, C::kFallthrough, 0, 1));
    set(Op::kTrap, Row(0, 0, 0, 0, D::kNone, E::kNone, C::kTrap, 0, 1));
    set(Op::kNop, Row(0, 0, 0, 0, D::kNone, E::kNone, C::kFallthrough, 0, 0));
  }
};

constexpr Table kTable{};

// Exhaustiveness guard: every Op enumerator must have an explicit row.
// Fires at compile time when an opcode is added to OCTOPOCS_VM_OPCODES
// without a matching `set(...)` above.
constexpr bool AllRowsSpecified(const Table& table) {
  for (const OpInfo& row : table.rows) {
    if (!row.specified) return false;
  }
  return true;
}
static_assert(AllRowsSpecified(kTable),
              "every vm::Op needs an explicit OpInfo row in op_info.cpp");

}  // namespace

const OpInfo& GetOpInfo(Op op) {
  return kTable.rows[static_cast<std::size_t>(op)];
}

bool OpInfoTableComplete() { return AllRowsSpecified(kTable); }

std::uint64_t EvalAlu(Op op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kMul: return a * b;
    case Op::kDivU: return b == 0 ? 0 : a / b;
    case Op::kRemU: return b == 0 ? 0 : a % b;
    case Op::kAnd: return a & b;
    case Op::kOr: return a | b;
    case Op::kXor: return a ^ b;
    case Op::kShl: return a << (b & 63);
    case Op::kShr: return a >> (b & 63);
    case Op::kCmpEq: return a == b ? 1 : 0;
    case Op::kCmpNe: return a != b ? 1 : 0;
    case Op::kCmpLtU: return a < b ? 1 : 0;
    case Op::kCmpLeU: return a <= b ? 1 : 0;
    case Op::kCmpGtU: return a > b ? 1 : 0;
    case Op::kCmpGeU: return a >= b ? 1 : 0;
    default: return 0;
  }
}

}  // namespace octopocs::vm
