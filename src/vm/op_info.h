// Shared per-opcode metadata.
//
// Three layers classify MiniVM opcodes: the concrete interpreter
// (vm/interp.cpp), the taint engine (taint/taint_engine.cpp) and the
// symbolic executor (symex/executor.cpp, symex/expr.cpp). Before this
// table each maintained its own `switch (op)` copy of the same facts —
// which registers an op reads, what its destination means for taint,
// whether it touches memory or the input file — and the copies could
// drift silently. OpInfo centralises the classification; the dispatch
// switches keep their per-layer *semantics* but derive every shared
// *fact* from here.
//
// The taint-source roles (`src_a`/`src_b`/`src_c`/`src_mem`) deliberately
// describe data flow, not syntax: kCall/kICall read registers too, but
// their argument flow is handled by the call-frame transfer
// (OnCallEnter), so their source roles here are empty — exactly the
// contract the taint engine has always implemented.
#pragma once

#include <cstdint>

#include "vm/ir.h"

namespace octopocs::vm {

/// What an op's destination register means for taint propagation
/// (Algorithm 1's transfer function, shared with the symbolic executor's
/// clean/copy classification).
enum class TaintDest : std::uint8_t {
  kNone,      // no destination register (store/free/seek/assert/...)
  kClean,     // dest is untainted by policy: immediates, fresh pointers,
              // lengths and positions (kMovImm/kAlloc/kMMap/kTell/
              // kFileSize/kFnAddr/kRead's count)
  kCopyB,     // dest taint = taint(r[b]) — unary forms kMov/kNot/kAddImm
  kUnionBC,   // dest taint = taint(r[b]) ∪ taint(r[c]) — binary ALU
  kFromMem,   // dest taint = taint of the loaded bytes (kLoad)
  kMemStore,  // strong per-byte update of memory taint (kStore)
};

/// Memory / input-file side-effect class.
enum class SideEffect : std::uint8_t {
  kNone,
  kMemRead,    // kLoad
  kMemWrite,   // kStore
  kHeap,       // kAlloc / kFree
  kFileRead,   // kRead — consumes the input stream and writes memory
  kFilePos,    // kSeek / kTell — touches only the position indicator
  kFileQuery,  // kMMap / kFileSize — reads file geometry, no cursor move
};

/// Control class: how the op interacts with control flow. (Block
/// terminators are not Ops in MiniVM; kCall/kTrap are the op-level
/// control transfers.)
enum class ControlClass : std::uint8_t {
  kFallthrough,  // ordinary straight-line op
  kCall,         // kCall / kICall — pushes a frame
  kTrap,         // kTrap — unconditionally aborts
};

struct OpInfo {
  /// Taint-source roles: operands whose taint flows into the op's
  /// effect. (See file comment for why calls carry none.)
  bool src_a = false;
  bool src_b = false;
  bool src_c = false;
  bool src_mem = false;  // the op reads data memory at its effective address
  TaintDest dest = TaintDest::kNone;
  SideEffect effect = SideEffect::kNone;
  ControlClass control = ControlClass::kFallthrough;
  /// Three-register ALU form r[a] = r[b] <op> r[c] with the shared
  /// EvalAlu semantics.
  bool is_binary_alu = false;
  /// The op itself can raise a trap (div-by-zero, failed assert, bad
  /// memory access, heap misuse, invalid indirect call).
  bool may_trap = false;
  /// Set by the table constructor for every explicitly-classified op. A
  /// default-initialized row is *not* specified; a static_assert in
  /// op_info.cpp rejects any Op enumerator without an explicit row, so a
  /// new opcode cannot silently inherit all-false metadata.
  bool specified = false;
};

/// The metadata row for `op`. O(1); valid for every Op enumerator.
const OpInfo& GetOpInfo(Op op);

/// True iff every Op enumerator has an explicitly-specified OpInfo row.
/// Always true (the table is also checked at compile time); exposed so
/// the dispatch-exhaustiveness test can assert it table-driven.
bool OpInfoTableComplete();

/// Shared concrete semantics of the binary-ALU forms. Division and
/// remainder by zero yield 0 here — the concrete interpreter traps
/// *before* evaluating, and the symbolic evaluator's total function
/// needs a defined value (the solver guards the divisor separately).
std::uint64_t EvalAlu(Op op, std::uint64_t a, std::uint64_t b);

}  // namespace octopocs::vm
