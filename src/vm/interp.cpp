#include "vm/interp.h"

#include <cassert>
#include <stdexcept>

#include "support/fault.h"
#include "vm/op_info.h"

namespace octopocs::vm {

std::string_view TrapName(TrapKind kind) {
  switch (kind) {
    case TrapKind::kNone: return "none";
    case TrapKind::kOutOfBounds: return "out-of-bounds";
    case TrapKind::kNullDeref: return "null-deref";
    case TrapKind::kUseAfterFree: return "use-after-free";
    case TrapKind::kDoubleFree: return "double-free";
    case TrapKind::kDivByZero: return "div-by-zero";
    case TrapKind::kAbort: return "abort";
    case TrapKind::kFuelExhausted: return "fuel-exhausted";
    case TrapKind::kStackOverflow: return "stack-overflow";
    case TrapKind::kOutOfMemory: return "out-of-memory";
    case TrapKind::kBadIndirectCall: return "bad-indirect-call";
    case TrapKind::kDeadline: return "deadline-expired";
  }
  return "?";
}

Interpreter::Interpreter(const Program& program, ByteView input,
                         ExecOptions opts)
    : program_(program), input_(input.begin(), input.end()), opts_(opts) {
  Frame entry;
  entry.fn = program_.entry;
  entry.regs.assign(program_.Fn(program_.entry).num_regs, 0);
  frames_.push_back(std::move(entry));
}

void Interpreter::AddObserver(ExecutionObserver* observer) {
  observers_.push_back(observer);
}

void Interpreter::SetTrap(TrapKind kind, std::uint64_t fault_addr,
                          std::string message) {
  result_.trap = kind;
  result_.fault_addr = fault_addr;
  result_.trap_message = std::move(message);
  CaptureBacktrace();
  done_ = true;
}

void Interpreter::CaptureBacktrace() {
  result_.backtrace.clear();
  result_.backtrace.reserve(frames_.size());
  for (const Frame& f : frames_) {
    result_.backtrace.push_back({f.fn, f.block, f.ip});
  }
}

std::uint8_t* Interpreter::BytePtr(std::uint64_t addr, bool for_write) {
  // Input-file mapping (read-only).
  if (addr >= kMmapBase && addr < kMmapBase + input_.size()) {
    if (for_write) return nullptr;
    return &input_[addr - kMmapBase];
  }
  // Rodata segment.
  if (addr >= kRodataBase && addr < kRodataBase + program_.rodata.size()) {
    if (for_write) return nullptr;
    // const_cast is safe: callers never write through a read resolution.
    return const_cast<std::uint8_t*>(&program_.rodata[addr - kRodataBase]);
  }
  // Heap: find the allocation whose base is the greatest <= addr.
  auto it = heap_.upper_bound(addr);
  if (it == heap_.begin()) return nullptr;
  --it;
  Allocation& alloc = it->second;
  const std::uint64_t off = addr - it->first;
  if (off >= alloc.data.size()) return nullptr;
  if (!alloc.alive) return nullptr;
  return &alloc.data[off];
}

// Checks that [addr, addr+width) lies in one live region (rodata allowed;
// store paths reject rodata before calling this). Records a trap otherwise.
bool Interpreter::ResolveAccess(std::uint64_t addr, std::uint64_t width) {
  if (width == 0) return true;
  if (addr < kNullGuard || addr + width < addr) {
    SetTrap(TrapKind::kNullDeref, addr, "access inside null guard page");
    return false;
  }
  if (addr >= kRodataBase && addr < kHeapBase) {
    if (addr + width <= kRodataBase + program_.rodata.size()) return true;
    SetTrap(TrapKind::kOutOfBounds, addr, "access beyond rodata segment");
    return false;
  }
  if (addr >= kMmapBase) {
    if (addr + width <= kMmapBase + input_.size()) return true;
    SetTrap(TrapKind::kOutOfBounds, addr, "access beyond the file mapping");
    return false;
  }
  auto it = heap_.upper_bound(addr);
  if (it != heap_.begin()) {
    --it;
    const Allocation& alloc = it->second;
    const std::uint64_t off = addr - it->first;
    if (off < alloc.data.size() && off + width <= alloc.data.size()) {
      if (!alloc.alive) {
        SetTrap(TrapKind::kUseAfterFree, addr, "access to freed allocation");
        return false;
      }
      return true;
    }
  }
  SetTrap(TrapKind::kOutOfBounds, addr, "access to unmapped address");
  return false;
}

std::uint64_t Interpreter::LoadMem(std::uint64_t addr, std::uint64_t width) {
  std::uint64_t v = 0;
  for (std::uint64_t i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(*BytePtr(addr + i, false)) << (8 * i);
  }
  return v;
}

void Interpreter::StoreMem(std::uint64_t addr, std::uint64_t width,
                           std::uint64_t value) {
  for (std::uint64_t i = 0; i < width; ++i) {
    *BytePtr(addr + i, true) = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

bool Interpreter::Step() {
  Frame& frame = frames_.back();
  const Function& fn = program_.Fn(frame.fn);
  const Block& block = fn.blocks[frame.block];

  if (result_.instructions >= opts_.fuel) {
    SetTrap(TrapKind::kFuelExhausted, 0, "instruction budget exhausted");
    return false;
  }
  if (opts_.cancel.ShouldStop()) {
    SetTrap(TrapKind::kDeadline, 0, "wall-clock deadline expired");
    return false;
  }
  ++result_.instructions;

  // Terminator?
  if (frame.ip >= block.instrs.size()) {
    const Terminator& t = block.term;
    switch (t.kind) {
      case TermKind::kJump: {
        const BlockId from = frame.block;
        frame.block = t.target;
        frame.ip = 0;
        for (auto* o : observers_) o->OnBlockTransfer(frame.fn, from, t.target);
        return true;
      }
      case TermKind::kBranch: {
        const BlockId from = frame.block;
        const BlockId to =
            frame.regs[t.cond] != 0 ? t.target : t.fallthrough;
        frame.block = to;
        frame.ip = 0;
        for (auto* o : observers_) o->OnBlockTransfer(frame.fn, from, to);
        return true;
      }
      case TermKind::kReturn: {
        const std::uint64_t ret =
            t.returns_value ? frame.regs[t.cond] : 0;
        const FuncId callee = frame.fn;
        const Reg ret_reg = frame.ret_reg;
        frames_.pop_back();
        for (auto* o : observers_) {
          o->OnCallExit(callee, ret, t.returns_value, t.cond, ret_reg);
        }
        if (frames_.empty()) {
          result_.return_value = ret;
          done_ = true;
          return false;
        }
        frames_.back().regs[ret_reg] = ret;
        return true;
      }
    }
    return true;
  }

  const Instr& ins = block.instrs[frame.ip];
  const std::size_t ip = frame.ip;
  ++frame.ip;
  auto& regs = frame.regs;
  std::uint64_t eff_addr = 0;
  std::uint64_t value = 0;

  // Binary-ALU forms share one evaluator (vm/op_info.h); only the
  // division-by-zero trap is interpreter-specific and must fire before
  // EvalAlu's total-function fallback (which yields 0) could mask it.
  if (GetOpInfo(ins.op).is_binary_alu) {
    if ((ins.op == Op::kDivU || ins.op == Op::kRemU) && regs[ins.c] == 0) {
      SetTrap(TrapKind::kDivByZero, 0,
              ins.op == Op::kDivU ? "division by zero" : "remainder by zero");
      return false;
    }
    value = regs[ins.a] = EvalAlu(ins.op, regs[ins.b], regs[ins.c]);
    for (auto* o : observers_) {
      o->OnInstr(frames_.back().fn, frames_.back().block, ip, ins, eff_addr,
                 value);
    }
    return true;
  }

  switch (ins.op) {
    case Op::kMovImm:
      value = regs[ins.a] = ins.imm;
      break;
    case Op::kMov:
      value = regs[ins.a] = regs[ins.b];
      break;
    case Op::kNot:
      value = regs[ins.a] = ~regs[ins.b];
      break;
    case Op::kAddImm:
      value = regs[ins.a] = regs[ins.b] + ins.imm;
      break;
    case Op::kLoad: {
      eff_addr = regs[ins.b] + ins.imm;
      if (!ResolveAccess(eff_addr, ins.width)) return false;
      value = regs[ins.a] = LoadMem(eff_addr, ins.width);
      break;
    }
    case Op::kStore: {
      eff_addr = regs[ins.b] + ins.imm;
      // A store must hit writable memory: reject the read-only segments.
      if (eff_addr >= kRodataBase && eff_addr < kHeapBase) {
        SetTrap(TrapKind::kOutOfBounds, eff_addr, "write to rodata");
        return false;
      }
      if (eff_addr >= kMmapBase) {
        SetTrap(TrapKind::kOutOfBounds, eff_addr,
                "write to the read-only file mapping");
        return false;
      }
      if (!ResolveAccess(eff_addr, ins.width)) return false;
      value = regs[ins.a];
      StoreMem(eff_addr, ins.width, value);
      break;
    }
    case Op::kAlloc: {
      support::fault::MaybeThrow(support::FaultSite::kAllocation);
      const std::uint64_t size = regs[ins.b];
      if (live_heap_bytes_ + size > opts_.heap_limit) {
        SetTrap(TrapKind::kOutOfMemory, 0, "heap limit exceeded");
        return false;
      }
      const std::uint64_t base = cursor_.Take(size);
      heap_[base] = Allocation{std::vector<std::uint8_t>(size), true};
      live_heap_bytes_ += size;
      value = regs[ins.a] = base;
      break;
    }
    case Op::kFree: {
      auto it = heap_.find(regs[ins.a]);
      if (it == heap_.end() || !it->second.alive) {
        SetTrap(TrapKind::kDoubleFree, regs[ins.a],
                "free of invalid or already-freed pointer");
        return false;
      }
      it->second.alive = false;
      live_heap_bytes_ -= it->second.data.size();
      break;
    }
    case Op::kRead: {
      const std::uint64_t dst = regs[ins.b];
      const std::uint64_t want = regs[ins.c];
      const std::uint64_t avail =
          file_pos_ < input_.size() ? input_.size() - file_pos_ : 0;
      const std::uint64_t n = want < avail ? want : avail;
      if (n > 0) {
        if (!ResolveAccess(dst, n)) return false;
        if (dst >= kRodataBase && dst < kHeapBase) {
          SetTrap(TrapKind::kOutOfBounds, dst, "read(2) into rodata");
          return false;
        }
        for (std::uint64_t i = 0; i < n; ++i) {
          *BytePtr(dst + i, true) = input_[file_pos_ + i];
        }
        const std::uint64_t off = file_pos_;
        file_pos_ += n;
        for (auto* o : observers_) o->OnFileRead(dst, off, n);
      }
      value = regs[ins.a] = n;
      break;
    }
    case Op::kMMap:
      value = regs[ins.a] = kMmapBase;
      break;
    case Op::kSeek:
      file_pos_ = regs[ins.b];
      break;
    case Op::kTell:
      value = regs[ins.a] = file_pos_;
      break;
    case Op::kFileSize:
      value = regs[ins.a] = input_.size();
      break;
    case Op::kCall:
    case Op::kICall: {
      FuncId callee;
      if (ins.op == Op::kCall) {
        callee = static_cast<FuncId>(ins.imm);
      } else {
        const std::uint64_t target = regs[ins.b];
        if (target >= program_.functions.size()) {
          SetTrap(TrapKind::kBadIndirectCall, target,
                  "indirect call to invalid function id");
          return false;
        }
        callee = static_cast<FuncId>(target);
        for (auto* o : observers_) {
          o->OnIndirectCall(frame.fn, frame.block, ip, callee);
        }
      }
      const Function& callee_fn = program_.Fn(callee);
      if (ins.args.size() != callee_fn.num_params) {
        SetTrap(TrapKind::kBadIndirectCall, callee,
                "argument count mismatch calling " + callee_fn.name);
        return false;
      }
      if (frames_.size() >= opts_.max_call_depth) {
        SetTrap(TrapKind::kStackOverflow, 0, "call depth limit");
        return false;
      }
      Frame next;
      next.fn = callee;
      next.ret_reg = ins.a;
      next.regs.assign(callee_fn.num_regs, 0);
      std::vector<std::uint64_t> args(ins.args.size());
      for (std::size_t i = 0; i < ins.args.size(); ++i) {
        args[i] = regs[ins.args[i]];
        next.regs[i] = args[i];
      }
      frames_.push_back(std::move(next));
      for (auto* o : observers_) {
        o->OnCallEnter(callee, std::span<const std::uint64_t>(args), &ins);
      }
      return true;  // no OnInstr for calls; enter/exit events cover them
    }
    case Op::kFnAddr:
      value = regs[ins.a] = ins.imm;
      break;
    case Op::kAssert:
      if (regs[ins.a] == 0) {
        SetTrap(TrapKind::kAbort, 0, "assertion failed");
        return false;
      }
      break;
    case Op::kTrap:
      SetTrap(TrapKind::kAbort, 0, "explicit trap");
      return false;
    case Op::kNop:
      break;
    default:
      break;  // binary ALU handled above the switch
  }

  // `frame` may have been invalidated by frames_ growth only on call paths,
  // which returned above; safe to use captured locations here.
  for (auto* o : observers_) {
    o->OnInstr(frames_.back().fn, frames_.back().block, ip, ins, eff_addr,
               value);
  }
  return true;
}

ExecResult Interpreter::Run() {
  for (auto* o : observers_) {
    // The entry frame behaves like a call with no arguments.
    o->OnCallEnter(program_.entry, {}, nullptr);
  }
  while (!done_ && Step()) {
  }
  return result_;
}

ExecResult RunProgram(const Program& program, ByteView input,
                      ExecOptions opts) {
  if (auto err = Validate(program)) {
    throw std::invalid_argument("invalid program: " + *err);
  }
  Interpreter interp(program, input, opts);
  return interp.Run();
}

}  // namespace octopocs::vm
