#include "vm/interp.h"

#include <cassert>
#include <cstdlib>
#include <stdexcept>

#include "support/fault.h"
#include "vm/fusion.h"
#include "vm/op_info.h"

// Direct-threaded dispatch needs the GNU computed-goto extension
// (address-of-label). Elsewhere the threaded backend degrades to a dense
// switch over the same decoded handler ids — still decoded and fused,
// just without the per-handler indirect branches.
#if defined(__GNUC__) || defined(__clang__)
#define OCTO_VM_COMPUTED_GOTO 1
#else
#define OCTO_VM_COMPUTED_GOTO 0
#endif

namespace octopocs::vm {

namespace {

// Handler ids for the threaded dispatch table, in table order: plain
// opcodes (enum order), superinstructions (FusedOp order), terminators.
// The layout must agree with fusion.h's HandlerForOp/HandlerForFused.
enum : std::uint16_t {
#define OCTOPOCS_VM_OP_HID(name, mnemonic) kHandler_##name,
  OCTOPOCS_VM_OPCODES(OCTOPOCS_VM_OP_HID)
#undef OCTOPOCS_VM_OP_HID
  kHandler_FuseMovImmAluB,
  kHandler_FuseMovImmAluC,
  kHandler_FuseAddImmLoad,
  kHandler_FuseCmpBranch,
  kHandler_FuseMovImmCmpBranch,
  kHandler_TermJump,
  kHandler_TermBranch,
  kHandler_TermReturn,
};
static_assert(kHandler_FuseMovImmAluB == kHandlerFusedBase);
static_assert(kHandler_TermJump == kHandlerTermJump);
static_assert(kHandler_TermBranch == kHandlerTermBranch);
static_assert(kHandler_TermReturn == kHandlerTermReturn);
static_assert(kHandler_TermReturn + 1 == kDispatchTableSize);

}  // namespace

std::string_view TrapName(TrapKind kind) {
  switch (kind) {
    case TrapKind::kNone: return "none";
    case TrapKind::kOutOfBounds: return "out-of-bounds";
    case TrapKind::kNullDeref: return "null-deref";
    case TrapKind::kUseAfterFree: return "use-after-free";
    case TrapKind::kDoubleFree: return "double-free";
    case TrapKind::kDivByZero: return "div-by-zero";
    case TrapKind::kAbort: return "abort";
    case TrapKind::kFuelExhausted: return "fuel-exhausted";
    case TrapKind::kStackOverflow: return "stack-overflow";
    case TrapKind::kOutOfMemory: return "out-of-memory";
    case TrapKind::kBadIndirectCall: return "bad-indirect-call";
    case TrapKind::kDeadline: return "deadline-expired";
  }
  return "?";
}

std::size_t ThreadedDispatchTableSize() { return kDispatchTableSize; }

/// Armed deep snapshot for exact-cycle detection (ExecOptions::
/// cycle_skip). Holds a complete copy of the machine state plus every
/// observer's serialized state, taken at a checkpoint on Brent's
/// doubling schedule: arm at instruction count c, compare at each
/// subsequent checkpoint until 2c, then re-arm. A hung loop of true
/// period P repeats at checkpoint granularity with period
/// P / gcd(P, kInterpCheckStride) checkpoints, so detection lands once
/// the armed count exceeds both the loop's warm-up and that period.
struct Interpreter::CycleDetector {
  std::uint64_t arm_instr = 0;  // instruction count of the snapshot
  std::uint64_t arm_limit = 0;  // re-arm once the count reaches this
  bool armed = false;

  std::vector<Frame> frames;
  std::map<std::uint64_t, Allocation> heap;
  AllocCursor cursor{};
  std::uint64_t live_heap_bytes = 0;
  std::uint64_t file_pos = 0;
  std::vector<std::vector<std::uint8_t>> observers;
};

void Interpreter::CycleArm() {
  CycleDetector& d = *cycle_;
  d.observers.clear();
  d.observers.reserve(observers_.size());
  for (const ExecutionObserver* o : observers_) {
    std::vector<std::uint8_t> blob;
    if (!o->SnapshotState(&blob)) {
      cycle_.reset();  // opaque observer: cycle skip is off for this run
      return;
    }
    d.observers.push_back(std::move(blob));
  }
  d.frames = frames_;
  d.heap = heap_;
  d.cursor = cursor_;
  d.live_heap_bytes = live_heap_bytes_;
  d.file_pos = file_pos_;
  d.arm_instr = result_.instructions;
  d.arm_limit = result_.instructions * 2;
  d.armed = true;
}

bool Interpreter::CycleStateEquals() const {
  const CycleDetector& d = *cycle_;
  if (cursor_.next != d.cursor.next ||
      live_heap_bytes_ != d.live_heap_bytes) {
    return false;
  }
  // Frames innermost-first: a progressing loop differs in its top regs.
  for (std::size_t i = frames_.size(); i-- > 0;) {
    const Frame& a = frames_[i];
    const Frame& b = d.frames[i];
    if (a.fn != b.fn || a.block != b.block || a.ip != b.ip ||
        a.ret_reg != b.ret_reg || a.regs != b.regs) {
      return false;
    }
  }
  if (heap_.size() != d.heap.size()) return false;
  for (auto it = heap_.begin(), jt = d.heap.begin(); it != heap_.end();
       ++it, ++jt) {
    if (it->first != jt->first || it->second.alive != jt->second.alive ||
        it->second.data != jt->second.data) {
      return false;
    }
  }
  std::vector<std::uint8_t> blob;
  for (std::size_t i = 0; i < observers_.size(); ++i) {
    blob.clear();
    if (!observers_[i]->SnapshotState(&blob)) return false;
    if (blob != d.observers[i]) return false;
  }
  return true;
}

void Interpreter::CycleProbe() {
  // Fault injection counts observer/tool polls; skipping periods would
  // move the armed injection point, so the detector stands down.
  if (support::fault::armed()) return;
  CycleDetector& d = *cycle_;
  const std::uint64_t now = result_.instructions;
  if (now == 0) return;
  if (!d.armed || now >= d.arm_limit) {
    CycleArm();
    return;
  }
  // Cheap reject: position and cheap scalars first; the deep compare
  // only runs when the checkpoint lands on the armed loop phase.
  const Frame& top = frames_.back();
  const Frame& atop = d.frames.back();
  if (frames_.size() != d.frames.size() || top.fn != atop.fn ||
      top.block != atop.block || top.ip != atop.ip ||
      file_pos_ != d.file_pos) {
    return;
  }
  if (!CycleStateEquals()) return;
  // Exact repeat: execution is deterministic from a complete state, so
  // the machine must retrace this period until fuel runs out. Jump the
  // counter a whole number of periods; the residual executes normally
  // and lands on the same final state, backtrace, and trap the full run
  // would have produced.
  const std::uint64_t period = now - d.arm_instr;
  const std::uint64_t remaining = opts_.fuel - now;
  result_.instructions += remaining / period * period;
  cycle_.reset();  // one skip per run; the residual is under one period
}

Interpreter::Interpreter(const Program& program, ByteView input,
                         ExecOptions opts)
    : program_(program), input_(input.begin(), input.end()), opts_(opts) {
  if (opts_.dispatch == DispatchMode::kThreaded) {
    if (opts_.predecoded != nullptr && opts_.predecoded->source == &program_) {
      decoded_ = opts_.predecoded;
    } else {
      decoded_owned_ =
          std::make_unique<DecodedProgram>(DecodeProgram(program_, opts_.fuse));
      decoded_ = decoded_owned_.get();
    }
  }
  Frame entry;
  entry.fn = program_.entry;
  entry.regs.assign(program_.Fn(program_.entry).num_regs, 0);
  frames_.push_back(std::move(entry));
  if (opts_.cycle_skip) cycle_ = std::make_unique<CycleDetector>();
}

Interpreter::~Interpreter() = default;

void Interpreter::AddObserver(ExecutionObserver* observer) {
  observers_.push_back(observer);
}

void Interpreter::SetTrap(TrapKind kind, std::uint64_t fault_addr,
                          std::string message) {
  result_.trap = kind;
  result_.fault_addr = fault_addr;
  result_.trap_message = std::move(message);
  CaptureBacktrace();
  done_ = true;
}

void Interpreter::CaptureBacktrace() {
  result_.backtrace.clear();
  result_.backtrace.reserve(frames_.size());
  for (const Frame& f : frames_) {
    result_.backtrace.push_back({f.fn, f.block, f.ip});
  }
}

std::uint8_t* Interpreter::BytePtr(std::uint64_t addr, bool for_write) {
  // Input-file mapping (read-only).
  if (addr >= kMmapBase && addr < kMmapBase + input_.size()) {
    if (for_write) return nullptr;
    return &input_[addr - kMmapBase];
  }
  // Rodata segment.
  if (addr >= kRodataBase && addr < kRodataBase + program_.rodata.size()) {
    if (for_write) return nullptr;
    // const_cast is safe: callers never write through a read resolution.
    return const_cast<std::uint8_t*>(&program_.rodata[addr - kRodataBase]);
  }
  // Heap: find the allocation whose base is the greatest <= addr.
  auto it = heap_.upper_bound(addr);
  if (it == heap_.begin()) return nullptr;
  --it;
  Allocation& alloc = it->second;
  const std::uint64_t off = addr - it->first;
  if (off >= alloc.data.size()) return nullptr;
  if (!alloc.alive) return nullptr;
  return &alloc.data[off];
}

// Checks that [addr, addr+width) lies in one live region (rodata allowed;
// store paths reject rodata before calling this). Records a trap otherwise.
bool Interpreter::ResolveAccess(std::uint64_t addr, std::uint64_t width) {
  if (width == 0) return true;
  if (addr < kNullGuard || addr + width < addr) {
    SetTrap(TrapKind::kNullDeref, addr, "access inside null guard page");
    return false;
  }
  if (addr >= kRodataBase && addr < kHeapBase) {
    if (addr + width <= kRodataBase + program_.rodata.size()) return true;
    SetTrap(TrapKind::kOutOfBounds, addr, "access beyond rodata segment");
    return false;
  }
  if (addr >= kMmapBase) {
    if (addr + width <= kMmapBase + input_.size()) return true;
    SetTrap(TrapKind::kOutOfBounds, addr, "access beyond the file mapping");
    return false;
  }
  auto it = heap_.upper_bound(addr);
  if (it != heap_.begin()) {
    --it;
    const Allocation& alloc = it->second;
    const std::uint64_t off = addr - it->first;
    if (off < alloc.data.size() && off + width <= alloc.data.size()) {
      if (!alloc.alive) {
        SetTrap(TrapKind::kUseAfterFree, addr, "access to freed allocation");
        return false;
      }
      return true;
    }
  }
  SetTrap(TrapKind::kOutOfBounds, addr, "access to unmapped address");
  return false;
}

std::uint64_t Interpreter::LoadMem(std::uint64_t addr, std::uint64_t width) {
  std::uint64_t v = 0;
  for (std::uint64_t i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(*BytePtr(addr + i, false)) << (8 * i);
  }
  return v;
}

void Interpreter::StoreMem(std::uint64_t addr, std::uint64_t width,
                           std::uint64_t value) {
  for (std::uint64_t i = 0; i < width; ++i) {
    *BytePtr(addr + i, true) = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

bool Interpreter::CheckInterrupts() {
  if (result_.instructions >= opts_.fuel) {
    SetTrap(TrapKind::kFuelExhausted, 0, "instruction budget exhausted");
    return false;
  }
  if ((result_.instructions & (kInterpCheckStride - 1)) == 0) {
    if (opts_.cancel.CanExpire() && opts_.cancel.Check()) {
      SetTrap(TrapKind::kDeadline, 0, "wall-clock deadline expired");
      return false;
    }
    // Both backends call this at every stride-aligned count, so probes
    // (and any skip) happen at identical points regardless of dispatch
    // mode. A skip advances the count by a multiple of the period, which
    // is itself a multiple of the stride, preserving alignment.
    if (cycle_ != nullptr) {
      CycleProbe();
      if (result_.instructions >= opts_.fuel) {
        SetTrap(TrapKind::kFuelExhausted, 0, "instruction budget exhausted");
        return false;
      }
    }
  }
  return true;
}

bool Interpreter::ExecTerminator(Frame& frame, const Terminator& t) {
  switch (t.kind) {
    case TermKind::kJump: {
      const BlockId from = frame.block;
      frame.block = t.target;
      frame.ip = 0;
      for (auto* o : observers_) o->OnBlockTransfer(frame.fn, from, t.target);
      return true;
    }
    case TermKind::kBranch: {
      const BlockId from = frame.block;
      const BlockId to = frame.regs[t.cond] != 0 ? t.target : t.fallthrough;
      frame.block = to;
      frame.ip = 0;
      for (auto* o : observers_) o->OnBlockTransfer(frame.fn, from, to);
      return true;
    }
    case TermKind::kReturn: {
      const std::uint64_t ret = t.returns_value ? frame.regs[t.cond] : 0;
      const FuncId callee = frame.fn;
      const Reg ret_reg = frame.ret_reg;
      frames_.pop_back();
      for (auto* o : observers_) {
        o->OnCallExit(callee, ret, t.returns_value, t.cond, ret_reg);
      }
      if (frames_.empty()) {
        result_.return_value = ret;
        done_ = true;
        return false;
      }
      frames_.back().regs[ret_reg] = ret;
      return true;
    }
  }
  return true;
}

bool Interpreter::ExecInstr(Frame& frame, const Instr& ins, std::size_t ip) {
  auto& regs = frame.regs;
  std::uint64_t eff_addr = 0;
  std::uint64_t value = 0;

  // Binary-ALU forms share one evaluator (vm/op_info.h); only the
  // division-by-zero trap is interpreter-specific and must fire before
  // EvalAlu's total-function fallback (which yields 0) could mask it.
  if (GetOpInfo(ins.op).is_binary_alu) {
    if ((ins.op == Op::kDivU || ins.op == Op::kRemU) && regs[ins.c] == 0) {
      SetTrap(TrapKind::kDivByZero, 0,
              ins.op == Op::kDivU ? "division by zero" : "remainder by zero");
      return false;
    }
    value = regs[ins.a] = EvalAlu(ins.op, regs[ins.b], regs[ins.c]);
    for (auto* o : observers_) {
      o->OnInstr(frames_.back().fn, frames_.back().block, ip, ins, eff_addr,
                 value);
    }
    return true;
  }

  switch (ins.op) {
    case Op::kMovImm:
      value = regs[ins.a] = ins.imm;
      break;
    case Op::kMov:
      value = regs[ins.a] = regs[ins.b];
      break;
    case Op::kNot:
      value = regs[ins.a] = ~regs[ins.b];
      break;
    case Op::kAddImm:
      value = regs[ins.a] = regs[ins.b] + ins.imm;
      break;
    case Op::kLoad: {
      eff_addr = regs[ins.b] + ins.imm;
      if (!ResolveAccess(eff_addr, ins.width)) return false;
      value = regs[ins.a] = LoadMem(eff_addr, ins.width);
      break;
    }
    case Op::kStore: {
      eff_addr = regs[ins.b] + ins.imm;
      // A store must hit writable memory: reject the read-only segments.
      if (eff_addr >= kRodataBase && eff_addr < kHeapBase) {
        SetTrap(TrapKind::kOutOfBounds, eff_addr, "write to rodata");
        return false;
      }
      if (eff_addr >= kMmapBase) {
        SetTrap(TrapKind::kOutOfBounds, eff_addr,
                "write to the read-only file mapping");
        return false;
      }
      if (!ResolveAccess(eff_addr, ins.width)) return false;
      value = regs[ins.a];
      StoreMem(eff_addr, ins.width, value);
      break;
    }
    case Op::kAlloc: {
      support::fault::MaybeThrow(support::FaultSite::kAllocation);
      const std::uint64_t size = regs[ins.b];
      if (live_heap_bytes_ + size > opts_.heap_limit) {
        SetTrap(TrapKind::kOutOfMemory, 0, "heap limit exceeded");
        return false;
      }
      const std::uint64_t base = cursor_.Take(size);
      heap_[base] = Allocation{std::vector<std::uint8_t>(size), true};
      live_heap_bytes_ += size;
      value = regs[ins.a] = base;
      break;
    }
    case Op::kFree: {
      auto it = heap_.find(regs[ins.a]);
      if (it == heap_.end() || !it->second.alive) {
        SetTrap(TrapKind::kDoubleFree, regs[ins.a],
                "free of invalid or already-freed pointer");
        return false;
      }
      it->second.alive = false;
      live_heap_bytes_ -= it->second.data.size();
      break;
    }
    case Op::kRead: {
      const std::uint64_t dst = regs[ins.b];
      const std::uint64_t want = regs[ins.c];
      const std::uint64_t avail =
          file_pos_ < input_.size() ? input_.size() - file_pos_ : 0;
      const std::uint64_t n = want < avail ? want : avail;
      if (n > 0) {
        if (!ResolveAccess(dst, n)) return false;
        if (dst >= kRodataBase && dst < kHeapBase) {
          SetTrap(TrapKind::kOutOfBounds, dst, "read(2) into rodata");
          return false;
        }
        for (std::uint64_t i = 0; i < n; ++i) {
          *BytePtr(dst + i, true) = input_[file_pos_ + i];
        }
        const std::uint64_t off = file_pos_;
        file_pos_ += n;
        for (auto* o : observers_) o->OnFileRead(dst, off, n);
      }
      value = regs[ins.a] = n;
      break;
    }
    case Op::kMMap:
      value = regs[ins.a] = kMmapBase;
      break;
    case Op::kSeek:
      file_pos_ = regs[ins.b];
      break;
    case Op::kTell:
      value = regs[ins.a] = file_pos_;
      break;
    case Op::kFileSize:
      value = regs[ins.a] = input_.size();
      break;
    case Op::kCall:
    case Op::kICall: {
      FuncId callee;
      if (ins.op == Op::kCall) {
        callee = static_cast<FuncId>(ins.imm);
      } else {
        const std::uint64_t target = regs[ins.b];
        if (target >= program_.functions.size()) {
          SetTrap(TrapKind::kBadIndirectCall, target,
                  "indirect call to invalid function id");
          return false;
        }
        callee = static_cast<FuncId>(target);
        for (auto* o : observers_) {
          o->OnIndirectCall(frame.fn, frame.block, ip, callee);
        }
      }
      const Function& callee_fn = program_.Fn(callee);
      if (ins.args.size() != callee_fn.num_params) {
        SetTrap(TrapKind::kBadIndirectCall, callee,
                "argument count mismatch calling " + callee_fn.name);
        return false;
      }
      if (frames_.size() >= opts_.max_call_depth) {
        SetTrap(TrapKind::kStackOverflow, 0, "call depth limit");
        return false;
      }
      Frame next;
      next.fn = callee;
      next.ret_reg = ins.a;
      next.regs.assign(callee_fn.num_regs, 0);
      std::vector<std::uint64_t> args(ins.args.size());
      for (std::size_t i = 0; i < ins.args.size(); ++i) {
        args[i] = regs[ins.args[i]];
        next.regs[i] = args[i];
      }
      frames_.push_back(std::move(next));
      for (auto* o : observers_) {
        o->OnCallEnter(callee, std::span<const std::uint64_t>(args), &ins);
      }
      return true;  // no OnInstr for calls; enter/exit events cover them
    }
    case Op::kFnAddr:
      value = regs[ins.a] = ins.imm;
      break;
    case Op::kAssert:
      if (regs[ins.a] == 0) {
        SetTrap(TrapKind::kAbort, 0, "assertion failed");
        return false;
      }
      break;
    case Op::kTrap:
      SetTrap(TrapKind::kAbort, 0, "explicit trap");
      return false;
    case Op::kNop:
      break;
    default:
      break;  // binary ALU handled above the switch
  }

  // `frame` may have been invalidated by frames_ growth only on call paths,
  // which returned above; safe to use captured locations here.
  for (auto* o : observers_) {
    o->OnInstr(frames_.back().fn, frames_.back().block, ip, ins, eff_addr,
               value);
  }
  return true;
}

bool Interpreter::StepSlow() {
  if (!CheckInterrupts()) return false;
  ++result_.instructions;

  Frame& frame = frames_.back();
  const Function& fn = program_.Fn(frame.fn);
  const Block& block = fn.blocks[frame.block];

  if (frame.ip >= block.instrs.size()) {
    return ExecTerminator(frame, block.term);
  }

  const Instr& ins = block.instrs[frame.ip];
  const std::size_t ip = frame.ip;
  ++frame.ip;
  return ExecInstr(frame, ins, ip);
}

ExecResult Interpreter::RunSwitch() {
  while (!done_ && StepSlow()) {
  }
  return result_;
}

// The direct-threaded loop.
//
// Execution state is cached in locals (frame/regs/decoded-entry
// pointers) and only written back where another component can observe
// it: frame.ip is maintained *lazily* — it is guaranteed current at
// every point a backtrace can be captured (each potentially-trapping
// handler stores it first), at call sites (resume position), and on
// entry to the slow path. Fast-path handlers skip the store entirely.
//
// `budget` counts instructions until the next checkpoint (a
// kInterpCheckStride multiple or the fuel bound). The dispatch site
// debits each entry's full length up front — matching the switch
// backend, which counts a unit before executing it — and a checkpoint
// that would land inside a fused entry routes through StepSlow, retiring
// constituents one at a time so fuel exhaustion and deadline polls fire
// at exactly the instruction counts the switch backend produces.
ExecResult Interpreter::RunThreaded() {
  const DecodedProgram& dp = *decoded_;
  Frame* frame = nullptr;
  const DecodedBlock* db = nullptr;
  const DecodedInstr* de = nullptr;
  std::uint64_t* regs = nullptr;
  std::uint64_t budget = 0;

#if OCTO_VM_COMPUTED_GOTO
  static const void* const kLabels[] = {
#define OCTOPOCS_VM_OP_LABEL(name, mnemonic) &&lbl_##name,
      OCTOPOCS_VM_OPCODES(OCTOPOCS_VM_OP_LABEL)
#undef OCTOPOCS_VM_OP_LABEL
      &&lbl_FuseMovImmAluB,
      &&lbl_FuseMovImmAluC,
      &&lbl_FuseAddImmLoad,
      &&lbl_FuseCmpBranch,
      &&lbl_FuseMovImmCmpBranch,
      &&lbl_TermJump,
      &&lbl_TermBranch,
      &&lbl_TermReturn,
  };
  // The dispatch-exhaustiveness guard for this backend: a missing
  // handler label is a compile error (via the && references above), and
  // a count mismatch with the handler id space fails here.
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kDispatchTableSize,
                "threaded dispatch label table out of sync with the op set");
#define VM_CASE(name) lbl_##name:
#define VM_DISPATCH_BEGIN goto* kLabels[de->handler];
#define VM_DISPATCH_END
#else
#define VM_CASE(name) case kHandler_##name:
#define VM_DISPATCH_BEGIN   \
  switch (de->handler) {    \
    default:                \
      std::abort();
#define VM_DISPATCH_END }
#endif

// Fires the constituent OnInstr events fused handlers owe their
// observers; `frame` is current by construction on every path here.
#define VM_EMIT_INSTR(insptr, ipval, effv, valv)                            \
  do {                                                                      \
    if (!observers_.empty()) {                                              \
      for (auto* o : observers_) {                                          \
        o->OnInstr(frame->fn, frame->block, (ipval), *(insptr), (effv),     \
                   (valv));                                                 \
      }                                                                     \
    }                                                                       \
  } while (0)

  goto reenter;

dispatch:
  if (budget < de->len) goto boundary;
  budget -= de->len;
  result_.instructions += de->len;
  VM_DISPATCH_BEGIN

  VM_CASE(MovImm) {
    const Instr& I = *de->i1;
    regs[I.a] = I.imm;
    VM_EMIT_INSTR(&I, de->ip, 0, I.imm);
    ++de;
    goto dispatch;
  }
  VM_CASE(Mov) {
    const Instr& I = *de->i1;
    const std::uint64_t val = regs[I.b];
    regs[I.a] = val;
    VM_EMIT_INSTR(&I, de->ip, 0, val);
    ++de;
    goto dispatch;
  }
  VM_CASE(Not) {
    const Instr& I = *de->i1;
    const std::uint64_t val = ~regs[I.b];
    regs[I.a] = val;
    VM_EMIT_INSTR(&I, de->ip, 0, val);
    ++de;
    goto dispatch;
  }
  VM_CASE(AddImm) {
    const Instr& I = *de->i1;
    const std::uint64_t val = regs[I.b] + I.imm;
    regs[I.a] = val;
    VM_EMIT_INSTR(&I, de->ip, 0, val);
    ++de;
    goto dispatch;
  }

#define VM_ALU_CASE(name, expr)                           \
  VM_CASE(name) {                                         \
    const Instr& I = *de->i1;                             \
    const std::uint64_t bv = regs[I.b];                   \
    const std::uint64_t cv = regs[I.c];                   \
    const std::uint64_t val = (expr);                     \
    regs[I.a] = val;                                      \
    VM_EMIT_INSTR(&I, de->ip, 0, val);                    \
    ++de;                                                 \
    goto dispatch;                                        \
  }
  VM_ALU_CASE(Add, bv + cv)
  VM_ALU_CASE(Sub, bv - cv)
  VM_ALU_CASE(Mul, bv* cv)
  VM_ALU_CASE(And, bv& cv)
  VM_ALU_CASE(Or, bv | cv)
  VM_ALU_CASE(Xor, bv ^ cv)
  VM_ALU_CASE(Shl, bv << (cv & 63))
  VM_ALU_CASE(Shr, bv >> (cv & 63))
  VM_ALU_CASE(CmpEq, bv == cv ? 1 : 0)
  VM_ALU_CASE(CmpNe, bv != cv ? 1 : 0)
  VM_ALU_CASE(CmpLtU, bv < cv ? 1 : 0)
  VM_ALU_CASE(CmpLeU, bv <= cv ? 1 : 0)
  VM_ALU_CASE(CmpGtU, bv > cv ? 1 : 0)
  VM_ALU_CASE(CmpGeU, bv >= cv ? 1 : 0)
#undef VM_ALU_CASE

  VM_CASE(DivU) {
    const Instr& I = *de->i1;
    const std::uint64_t cv = regs[I.c];
    if (cv == 0) {
      frame->ip = de->ip + 1;
      SetTrap(TrapKind::kDivByZero, 0, "division by zero");
      goto finish;
    }
    const std::uint64_t val = regs[I.b] / cv;
    regs[I.a] = val;
    VM_EMIT_INSTR(&I, de->ip, 0, val);
    ++de;
    goto dispatch;
  }
  VM_CASE(RemU) {
    const Instr& I = *de->i1;
    const std::uint64_t cv = regs[I.c];
    if (cv == 0) {
      frame->ip = de->ip + 1;
      SetTrap(TrapKind::kDivByZero, 0, "remainder by zero");
      goto finish;
    }
    const std::uint64_t val = regs[I.b] % cv;
    regs[I.a] = val;
    VM_EMIT_INSTR(&I, de->ip, 0, val);
    ++de;
    goto dispatch;
  }

  VM_CASE(Load) {
    const Instr& I = *de->i1;
    const std::uint64_t eff = regs[I.b] + I.imm;
    frame->ip = de->ip + 1;
    if (!ResolveAccess(eff, I.width)) goto finish;
    const std::uint64_t val = LoadMem(eff, I.width);
    regs[I.a] = val;
    VM_EMIT_INSTR(&I, de->ip, eff, val);
    ++de;
    goto dispatch;
  }
  VM_CASE(Store) {
    const Instr& I = *de->i1;
    const std::uint64_t eff = regs[I.b] + I.imm;
    frame->ip = de->ip + 1;
    if (eff >= kRodataBase && eff < kHeapBase) {
      SetTrap(TrapKind::kOutOfBounds, eff, "write to rodata");
      goto finish;
    }
    if (eff >= kMmapBase) {
      SetTrap(TrapKind::kOutOfBounds, eff,
              "write to the read-only file mapping");
      goto finish;
    }
    if (!ResolveAccess(eff, I.width)) goto finish;
    const std::uint64_t val = regs[I.a];
    StoreMem(eff, I.width, val);
    VM_EMIT_INSTR(&I, de->ip, eff, val);
    ++de;
    goto dispatch;
  }

  // Rare / heavyweight ops delegate to the shared single-instruction
  // executor: one out-of-line call per dispatch keeps their semantics in
  // exactly one place while leaving the hot ops inline above.
  VM_CASE(Alloc)
  VM_CASE(Free)
  VM_CASE(Read)
  VM_CASE(MMap)
  VM_CASE(Seek)
  VM_CASE(Tell)
  VM_CASE(FileSize)
  VM_CASE(FnAddr)
  VM_CASE(Assert)
  VM_CASE(Trap)
  VM_CASE(Nop) {
    frame->ip = de->ip + 1;
    if (!ExecInstr(*frame, *de->i1, de->ip)) goto finish;
    ++de;
    goto dispatch;
  }

  VM_CASE(Call)
  VM_CASE(ICall) {
    frame->ip = de->ip + 1;  // resume position in the caller
    if (!ExecInstr(*frame, *de->i1, de->ip)) goto finish;
    goto reenter;  // a frame was pushed; reload all cached state
  }

  VM_CASE(FuseMovImmAluB)
  VM_CASE(FuseMovImmAluC) {
    // movi x,C ; alu/cmp a,b,c (x feeding b or c). Operands are read
    // back from the register file after the movi write, so aliasing
    // (b == x, c == x, a == x) behaves exactly as unfused execution.
    const Instr& m = *de->i1;
    const Instr& A = *de->i2;
    regs[m.a] = m.imm;
    VM_EMIT_INSTR(&m, de->ip, 0, m.imm);
    const std::uint64_t val = EvalAlu(A.op, regs[A.b], regs[A.c]);
    regs[A.a] = val;
    VM_EMIT_INSTR(&A, de->ip + 1, 0, val);
    ++de;
    goto dispatch;
  }

  VM_CASE(FuseAddImmLoad) {
    // addi x,b,C ; load a,x,off — the pointer-bump-then-load shape. The
    // load may trap, so the position is committed first.
    const Instr& ai = *de->i1;
    const Instr& ld = *de->i2;
    const std::uint64_t ptr = regs[ai.b] + ai.imm;
    regs[ai.a] = ptr;
    VM_EMIT_INSTR(&ai, de->ip, 0, ptr);
    const std::uint64_t eff = regs[ld.b] + ld.imm;
    frame->ip = de->ip + 2;
    if (!ResolveAccess(eff, ld.width)) goto finish;
    const std::uint64_t val = LoadMem(eff, ld.width);
    regs[ld.a] = val;
    VM_EMIT_INSTR(&ld, de->ip + 1, eff, val);
    ++de;
    goto dispatch;
  }

  VM_CASE(FuseCmpBranch) {
    // cmp a,b,c ; br a — the loop back-edge shape. The branch reads the
    // value the compare just produced.
    const Instr& C = *de->i1;
    const Terminator& t = *de->term;
    const std::uint64_t val = EvalAlu(C.op, regs[C.b], regs[C.c]);
    regs[C.a] = val;
    VM_EMIT_INSTR(&C, de->ip, 0, val);
    const BlockId from = frame->block;
    const BlockId to = val != 0 ? t.target : t.fallthrough;
    frame->block = to;
    frame->ip = 0;
    if (!observers_.empty()) {
      for (auto* o : observers_) o->OnBlockTransfer(frame->fn, from, to);
    }
    db = &dp.fns[frame->fn].blocks[to];
    de = db->code.data();
    goto dispatch;
  }

  VM_CASE(FuseMovImmCmpBranch) {
    // movi x,C ; cmp a,b,x ; br a — the constant-guard loop tail.
    const Instr& m = *de->i1;
    const Instr& C = *de->i2;
    const Terminator& t = *de->term;
    regs[m.a] = m.imm;
    VM_EMIT_INSTR(&m, de->ip, 0, m.imm);
    const std::uint64_t val = EvalAlu(C.op, regs[C.b], regs[C.c]);
    regs[C.a] = val;
    VM_EMIT_INSTR(&C, de->ip + 1, 0, val);
    const BlockId from = frame->block;
    const BlockId to = val != 0 ? t.target : t.fallthrough;
    frame->block = to;
    frame->ip = 0;
    if (!observers_.empty()) {
      for (auto* o : observers_) o->OnBlockTransfer(frame->fn, from, to);
    }
    db = &dp.fns[frame->fn].blocks[to];
    de = db->code.data();
    goto dispatch;
  }

  VM_CASE(TermJump) {
    const Terminator& t = *de->term;
    const BlockId from = frame->block;
    frame->block = t.target;
    frame->ip = 0;
    if (!observers_.empty()) {
      for (auto* o : observers_) o->OnBlockTransfer(frame->fn, from, t.target);
    }
    db = &dp.fns[frame->fn].blocks[t.target];
    de = db->code.data();
    goto dispatch;
  }
  VM_CASE(TermBranch) {
    const Terminator& t = *de->term;
    const BlockId from = frame->block;
    const BlockId to = regs[t.cond] != 0 ? t.target : t.fallthrough;
    frame->block = to;
    frame->ip = 0;
    if (!observers_.empty()) {
      for (auto* o : observers_) o->OnBlockTransfer(frame->fn, from, to);
    }
    db = &dp.fns[frame->fn].blocks[to];
    de = db->code.data();
    goto dispatch;
  }
  VM_CASE(TermReturn) {
    const Terminator& t = *de->term;
    const std::uint64_t ret = t.returns_value ? regs[t.cond] : 0;
    const FuncId callee = frame->fn;
    const Reg ret_reg = frame->ret_reg;
    frames_.pop_back();
    if (!observers_.empty()) {
      for (auto* o : observers_) {
        o->OnCallExit(callee, ret, t.returns_value, t.cond, ret_reg);
      }
    }
    if (frames_.empty()) {
      result_.return_value = ret;
      done_ = true;
      goto finish;
    }
    frames_.back().regs[ret_reg] = ret;
    goto reenter;
  }

  VM_DISPATCH_END

boundary:
  // A checkpoint falls on (budget == 0) or inside (0 < budget < len) the
  // next entry. Commit the position; a mid-entry checkpoint retires
  // constituents one at a time through the portable backend.
  frame->ip = de->ip;
  if (budget != 0) goto slow_single;
  goto recompute;

slow_single:
  if (!StepSlow()) goto finish;
  goto reenter;

reenter:
  // (Re)load every cached pointer from interpreter state: loop entry,
  // return-from-call, and slow-path re-alignment all land here.
  frame = &frames_.back();
  db = &dp.fns[frame->fn].blocks[frame->block];
  de = db->code.data() + db->entry_of_ip[frame->ip];
  regs = frame->regs.data();
  // A resume point strictly inside a fused entry (possible only after
  // slow-path stepping split one) keeps single-stepping to the boundary.
  if (de->ip != frame->ip) goto slow_single;

recompute:
  if (!CheckInterrupts()) goto finish;
  {
    const std::uint64_t next_stride =
        (result_.instructions | (kInterpCheckStride - 1)) + 1;
    const std::uint64_t limit =
        next_stride < opts_.fuel ? next_stride : opts_.fuel;
    budget = limit - result_.instructions;
  }
  goto dispatch;

finish:
  return result_;

#undef VM_CASE
#undef VM_DISPATCH_BEGIN
#undef VM_DISPATCH_END
#undef VM_EMIT_INSTR
}

ExecResult Interpreter::Run() {
  for (auto* o : observers_) {
    // The entry frame behaves like a call with no arguments.
    o->OnCallEnter(program_.entry, {}, nullptr);
  }
  return opts_.dispatch == DispatchMode::kThreaded ? RunThreaded()
                                                   : RunSwitch();
}

ExecResult RunProgram(const Program& program, ByteView input,
                      ExecOptions opts) {
  if (auto err = Validate(program)) {
    throw std::invalid_argument("invalid program: " + *err);
  }
  Interpreter interp(program, input, opts);
  return interp.Run();
}

}  // namespace octopocs::vm
