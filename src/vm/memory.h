// Heap address-assignment policy shared by the concrete interpreter and
// the symbolic executor.
//
// Both executions of a program must agree on the addresses kAlloc hands
// out — otherwise pointers observed during P1 (taint over S) and P2/P3
// (symbolic execution of T) would be incomparable. Allocation addresses
// are therefore a pure function of the allocation *sequence*: bases start
// at kHeapBase and advance by the rounded size plus a guard gap. The gap
// guarantees that small overflows land in unmapped space and trap, which
// is how CWE-119-style corpus vulnerabilities manifest.
#pragma once

#include <cstdint>

#include "vm/ir.h"

namespace octopocs::vm {

inline constexpr std::uint64_t kGuardGap = 64;

struct AllocCursor {
  std::uint64_t next = kHeapBase;

  /// Reserves a region for `size` bytes and returns its base address.
  std::uint64_t Take(std::uint64_t size) {
    const std::uint64_t base = next;
    // Round the footprint to 16 bytes and add the guard gap.
    const std::uint64_t footprint = (size + 15) / 16 * 16 + kGuardGap;
    next += footprint;
    return base;
  }
};

}  // namespace octopocs::vm
