// MiniVM concrete interpreter with instrumentation hooks.
//
// The hook interface (ExecutionObserver) plays the role Intel PIN plays in
// the paper's implementation: a dynamic-binary-instrumentation event
// source. The taint engine (P1), the dynamic CFG builder, the fuzzing
// harness's coverage map, and the crash verifier (P4) are all observers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "support/bytes.h"
#include "support/deadline.h"
#include "vm/ir.h"
#include "vm/memory.h"

namespace octopocs::vm {

enum class TrapKind : std::uint8_t {
  kNone,           // normal termination
  kOutOfBounds,    // access outside any live region (CWE-119 class)
  kNullDeref,      // access below kNullGuard
  kUseAfterFree,   // access to a freed allocation
  kDoubleFree,     // kFree on a non-live allocation
  kDivByZero,
  kAbort,          // kAssert failure or kTrap
  kFuelExhausted,  // instruction budget hit (how CWE-835 hangs surface)
  kStackOverflow,  // call depth limit
  kOutOfMemory,    // heap limit
  kBadIndirectCall,// kICall to an out-of-range function id
  kDeadline,       // the run's CancelToken tripped (wall-clock budget)
};

std::string_view TrapName(TrapKind kind);

/// True for any abnormal termination *of the program*. kDeadline is
/// excluded: it reports the harness cancelling the run, not a behaviour
/// of the program under test, so nothing downstream may read it as a
/// crash.
inline bool IsCrash(TrapKind kind) {
  return kind != TrapKind::kNone && kind != TrapKind::kDeadline;
}

/// True for trap kinds that demonstrate a *vulnerability* (memory
/// corruption, hangs, ...). kAbort is excluded: assert-failures model a
/// program cleanly rejecting its input (exit(1)), which P4 must not
/// count as verification. Fuel exhaustion counts as a hang-crash for
/// infinite-loop (CWE-835) vulnerabilities. kDeadline is a harness
/// cancellation, never a verdict about the program.
inline bool IsVulnerabilityCrash(TrapKind kind) {
  return kind != TrapKind::kNone && kind != TrapKind::kAbort &&
         kind != TrapKind::kDeadline;
}

class DecodedProgram;  // vm/fusion.h

/// Interpreter dispatch backend.
///
/// kThreaded (the default) pre-decodes each block and runs a
/// direct-threaded loop — a computed-goto label table under GCC/Clang, a
/// dense switch over decoded handler ids elsewhere — with
/// superinstruction fusion (vm/fusion.h) and fuel/deadline checks hoisted
/// off the per-instruction fast path. kSwitch is the original
/// instruction-at-a-time switch interpreter, kept as the portable
/// reference and A/B baseline. Both backends produce byte-identical
/// ExecResults and observer event streams; the choice is never part of
/// any artifact-cache key or journal fingerprint.
enum class DispatchMode : std::uint8_t { kSwitch, kThreaded };

/// Both backends poll the CancelToken when the retired-instruction count
/// is a multiple of this stride (and always at instruction 0), so a
/// tripped token surfaces as TrapKind::kDeadline within at most this many
/// further instructions. Fuel accounting stays exact — the stride applies
/// only to the wall-clock poll.
inline constexpr std::uint64_t kInterpCheckStride = 1024;

struct ExecOptions {
  std::uint64_t fuel = 10'000'000;      // max instructions
  std::uint32_t max_call_depth = 200;
  std::uint64_t heap_limit = 1ULL << 26;  // bytes of live allocations
  /// Cooperative wall-clock bound: polled every kInterpCheckStride
  /// interpreted instructions (~free). Tripping records
  /// TrapKind::kDeadline.
  support::CancelToken cancel;
  DispatchMode dispatch = DispatchMode::kThreaded;
  /// Exact-cycle fast-forward for hung programs (CWE-835 loops burn the
  /// whole fuel budget otherwise). At instruction-count checkpoints the
  /// interpreter arms a deep snapshot of the complete machine state
  /// (frames, heap, allocator cursor, file position) plus every
  /// observer's serialized state; when a later checkpoint matches the
  /// snapshot *exactly*, execution is deterministic and must repeat, so
  /// the instruction counter jumps forward a whole number of periods and
  /// the residual runs normally to the fuel trap. The final ExecResult —
  /// trap, backtrace, instruction count, observer state — is
  /// byte-identical to the unskipped run; only wall-clock changes. The
  /// skip disables itself when any attached observer does not implement
  /// SnapshotState, or while fault injection is armed (skipping would
  /// move the injection point). Off is the A/B baseline for benches.
  bool cycle_skip = true;
  /// Superinstruction fusion (threaded backend only). Off yields the
  /// decoded-but-unfused loop — the A/B point isolating fusion's effect.
  bool fuse = true;
  /// Optional pre-decoded form of the *same* program, letting callers
  /// that execute one program many times (the fuzzer) amortize decoding.
  /// Ignored unless its `source` matches the interpreted program; the
  /// caller is responsible for having decoded with the same `fuse` flag.
  const DecodedProgram* predecoded = nullptr;
};

/// One entry of the crash callstack (the backtrace(3) substitute used by
/// OCTOPOCS preprocessing to locate ep).
struct BacktraceEntry {
  FuncId fn = kInvalidFunc;
  BlockId block = 0;
  std::size_t ip = 0;
};

struct ExecResult {
  TrapKind trap = TrapKind::kNone;
  std::uint64_t return_value = 0;
  std::uint64_t instructions = 0;
  std::uint64_t fault_addr = 0;      // faulting address for memory traps
  std::string trap_message;
  /// Callstack at the trap site, outermost frame first (empty when the
  /// program terminated normally).
  std::vector<BacktraceEntry> backtrace;
};

/// Fired around interpretation. All addresses are MiniVM virtual
/// addresses; `file_off` values are offsets into the input (the PoC).
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;

  /// After each non-call instruction retires. `eff_addr` is the resolved
  /// effective address for kLoad/kStore (0 otherwise); `value` is the
  /// value produced (loads, ALU) or stored.
  virtual void OnInstr(FuncId fn, BlockId block, std::size_t ip,
                       const Instr& instr, std::uint64_t eff_addr,
                       std::uint64_t value) {
    (void)fn; (void)block; (void)ip; (void)instr; (void)eff_addr; (void)value;
  }
  /// After the callee frame is set up, before its first instruction.
  /// `call_site` is the kCall/kICall instruction (nullptr for the entry
  /// frame) — taint engines read the caller argument registers off it.
  virtual void OnCallEnter(FuncId callee, std::span<const std::uint64_t> args,
                           const Instr* call_site) {
    (void)callee; (void)args; (void)call_site;
  }
  /// After the callee frame is popped. `returns_value`/`callee_value_reg`
  /// describe the callee-side return register; `caller_dest_reg` is where
  /// the value landed in the caller (meaningless when the program exits).
  virtual void OnCallExit(FuncId callee, std::uint64_t ret,
                          bool returns_value, Reg callee_value_reg,
                          Reg caller_dest_reg) {
    (void)callee; (void)ret; (void)returns_value; (void)callee_value_reg;
    (void)caller_dest_reg;
  }
  /// After a kRead copied `count` bytes of the input starting at
  /// `file_off` to memory at `dst_addr`.
  virtual void OnFileRead(std::uint64_t dst_addr, std::uint64_t file_off,
                          std::uint64_t count) {
    (void)dst_addr; (void)file_off; (void)count;
  }
  /// On every control transfer between blocks of the same function.
  virtual void OnBlockTransfer(FuncId fn, BlockId from, BlockId to) {
    (void)fn; (void)from; (void)to;
  }
  /// When an indirect call resolved its target (dynamic CFG edge source).
  virtual void OnIndirectCall(FuncId caller, BlockId block, std::size_t ip,
                              FuncId resolved_target) {
    (void)caller; (void)block; (void)ip; (void)resolved_target;
  }
  /// Cycle-skip support (ExecOptions::cycle_skip): append a
  /// deterministic, *complete* serialization of the observer's mutable
  /// state to `out` and return true. Two equal serializations must imply
  /// the observer would emit identical behaviour for identical future
  /// event streams — that is what licenses the interpreter to skip
  /// repeated loop periods underneath it. Returning false (the default)
  /// marks the observer as opaque and disables cycle skip for the run;
  /// an observer that accumulates an unbounded event log should keep the
  /// default, which is automatically safe.
  virtual bool SnapshotState(std::vector<std::uint8_t>* out) const {
    (void)out;
    return false;
  }
};

/// Executes `program` against the byte input `input` (the PoC file).
/// Instances are single-shot: construct, attach observers, Run().
class Interpreter {
 public:
  /// `input` is copied: the interpreter owns its input so callers may
  /// pass temporaries (PoC files are small; dangling views are not).
  Interpreter(const Program& program, ByteView input, ExecOptions opts = {});
  ~Interpreter();  // out-of-line: DecodedProgram is incomplete here

  /// Observers are not owned and must outlive Run().
  void AddObserver(ExecutionObserver* observer);

  ExecResult Run();

  /// Current file-position indicator. Observers may sample this during
  /// callbacks — P1 records it at each ep entry so P3 can key bunch
  /// placements on T's file position.
  std::uint64_t file_pos() const { return file_pos_; }

 private:
  struct Allocation {
    std::vector<std::uint8_t> data;
    bool alive = true;
  };

  struct Frame {
    FuncId fn = 0;
    BlockId block = 0;
    std::size_t ip = 0;
    Reg ret_reg = 0;  // caller register receiving the return value
    std::vector<std::uint64_t> regs;
  };

  // Memory access resolution. Returns false after recording a trap.
  bool ResolveAccess(std::uint64_t addr, std::uint64_t width);
  std::uint64_t LoadMem(std::uint64_t addr, std::uint64_t width);
  void StoreMem(std::uint64_t addr, std::uint64_t width, std::uint64_t value);
  std::uint8_t* BytePtr(std::uint64_t addr, bool for_write);

  void SetTrap(TrapKind kind, std::uint64_t fault_addr, std::string message);
  void CaptureBacktrace();

  // Dispatch backends. RunSwitch is the portable reference loop;
  // RunThreaded executes the pre-decoded (optionally fused) form and
  // falls back to single-stepping only around fuel/deadline boundaries
  // and mid-entry resume points.
  ExecResult RunSwitch();
  ExecResult RunThreaded();

  /// Fuel check plus the strided CancelToken poll. Called before a unit
  /// executes, when `result_.instructions` sits at a checkpoint. Returns
  /// false after recording kFuelExhausted/kDeadline.
  bool CheckInterrupts();
  /// Cycle-skip probe, fired at kInterpCheckStride-aligned instruction
  /// counts (identically in both dispatch backends, so the skip decision
  /// is part of neither backend's identity). Arms snapshots on a Brent
  /// doubling schedule and fast-forwards on an exact state match.
  void CycleProbe();
  bool CycleStateEquals() const;
  void CycleArm();
  /// One original instruction or terminator with full checks — the
  /// switch backend's loop body, shared by the threaded slow path.
  bool StepSlow();
  /// Executes one non-terminator instruction. The caller has counted it
  /// and advanced frame.ip past it (trap backtraces record ip+1).
  bool ExecInstr(Frame& frame, const Instr& ins, std::size_t ip);
  bool ExecTerminator(Frame& frame, const Terminator& term);

  const Program& program_;
  Bytes input_;  // owned copy of the PoC file
  ExecOptions opts_;
  std::vector<ExecutionObserver*> observers_;

  std::vector<Frame> frames_;
  std::map<std::uint64_t, Allocation> heap_;  // keyed by base address
  AllocCursor cursor_;
  std::uint64_t live_heap_bytes_ = 0;
  std::uint64_t file_pos_ = 0;

  std::unique_ptr<DecodedProgram> decoded_owned_;
  const DecodedProgram* decoded_ = nullptr;

  /// Deep machine+observer snapshot for cycle detection; null once the
  /// detector is disabled (skip taken, unsupported observer, or
  /// cycle_skip off).
  struct CycleDetector;
  std::unique_ptr<CycleDetector> cycle_;

  ExecResult result_;
  bool done_ = false;
};

/// Number of handlers in the threaded backend's dispatch table (one per
/// Op, per FusedOp, per terminator kind). The table itself is statically
/// sized against this; exposed so the exhaustiveness test can assert the
/// three layers (op_info, dispatch, mnemonics) agree on the op set.
std::size_t ThreadedDispatchTableSize();

/// Convenience wrapper: validate (throws std::invalid_argument on a
/// malformed program), run, return the result.
ExecResult RunProgram(const Program& program, ByteView input,
                      ExecOptions opts = {});

}  // namespace octopocs::vm
