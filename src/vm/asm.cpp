#include "vm/asm.h"

#include <cctype>
#include <map>
#include <optional>
#include <vector>

#include "support/hex.h"

namespace octopocs::vm {

namespace {

// ---------------------------------------------------------------------------
// Line-level tokenizer: a cursor over one statement.
// ---------------------------------------------------------------------------
class Cursor {
 public:
  Cursor(std::string_view text, std::size_t line) : text_(text), line_(line) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void Expect(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool TryConsume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string Ident() {
    SkipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string QuotedString() {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') Fail("expected string");
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default: Fail("unknown string escape");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) Fail("unterminated string");
    ++pos_;
    return out;
  }

  std::string RegName() {
    Expect('%');
    return Ident();
  }

  /// Immediate forms: decimal (negatives wrap to two's complement), 0x hex,
  /// 'c' char literal, @symbol (resolved by the caller).
  struct Imm {
    std::uint64_t value = 0;
    std::string symbol;  // non-empty for @symbol
  };

  Imm ParseImm() {
    SkipWs();
    Imm imm;
    if (pos_ >= text_.size()) Fail("expected immediate");
    if (text_[pos_] == '@') {
      ++pos_;
      imm.symbol = Ident();
      return imm;
    }
    if (text_[pos_] == '\'') {
      ++pos_;
      if (pos_ >= text_.size()) Fail("unterminated char literal");
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '\'': c = '\''; break;
          default: Fail("unknown char escape");
        }
      }
      if (pos_ >= text_.size() || text_[pos_] != '\'') {
        Fail("unterminated char literal");
      }
      ++pos_;
      imm.value = static_cast<std::uint8_t>(c);
      return imm;
    }
    bool negative = false;
    if (text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
      pos_ += 2;
      const std::size_t start = pos_;
      std::uint64_t v = 0;
      while (pos_ < text_.size() &&
             std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
        const char c = text_[pos_++];
        v = v * 16 + static_cast<std::uint64_t>(
                         c <= '9' ? c - '0' : (c | 0x20) - 'a' + 10);
      }
      if (pos_ == start) Fail("expected hex digits");
      imm.value = negative ? ~v + 1 : v;
      return imm;
    }
    const std::size_t start = pos_;
    std::uint64_t v = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + static_cast<std::uint64_t>(text_[pos_++] - '0');
    }
    if (pos_ == start) Fail("expected immediate");
    imm.value = negative ? ~v + 1 : v;
    return imm;
  }

  [[noreturn]] void Fail(const std::string& message) {
    throw AsmError(line_, message + " in '" + std::string(text_) + "'");
  }

 private:
  std::string_view text_;
  std::size_t line_;
  std::size_t pos_ = 0;
};

struct PendingCall {
  FuncId fn;          // function containing the call / fnaddr
  BlockId block;
  std::size_t ip;
  std::string callee;
  std::size_t line;
};

struct PendingImm {
  FuncId fn;
  BlockId block;
  std::size_t ip;
  std::string symbol;
  std::size_t line;
};

class Assembler {
 public:
  explicit Assembler(std::string_view source) {
    std::size_t start = 0;
    std::size_t line_no = 1;
    while (start <= source.size()) {
      std::size_t end = source.find('\n', start);
      if (end == std::string_view::npos) end = source.size();
      std::string_view line = source.substr(start, end - start);
      if (const std::size_t comment = line.find(';');
          comment != std::string_view::npos) {
        line = line.substr(0, comment);
      }
      // Trim trailing whitespace only; leading is handled by Cursor.
      while (!line.empty() &&
             std::isspace(static_cast<unsigned char>(line.back()))) {
        line.remove_suffix(1);
      }
      bool blank = true;
      for (const char c : line) {
        if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
      }
      if (!blank) lines_.push_back({line, line_no});
      start = end + 1;
      ++line_no;
      if (end == source.size()) break;
    }
  }

  Program Build() {
    DeclarationPass();
    BodyPass();
    ResolveRefs();
    FinishProgram();
    return std::move(program_);
  }

 private:
  struct Line {
    std::string_view text;
    std::size_t line_no;
  };

  enum class Section { kNone, kData, kFunc };

  static std::string FirstWord(std::string_view text) {
    std::size_t i = 0;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[i])) ||
            text[i] == '_' || text[i] == '.')) {
      ++i;
    }
    return std::string(text.substr(start, i - start));
  }

  // Pass 1: register every function signature and fully parse data
  // sections (symbol offsets must be known before bodies reference them).
  void DeclarationPass() {
    Section section = Section::kNone;
    for (const Line& line : lines_) {
      const std::string word = FirstWord(line.text);
      if (word == "program") {
        Cursor cur(line.text, line.line_no);
        cur.Ident();
        program_.name = cur.QuotedString();
        section = Section::kNone;
      } else if (word == "data") {
        Cursor cur(line.text, line.line_no);
        cur.Ident();
        const std::string name = cur.Ident();
        cur.Expect(':');
        if (data_symbols_.count(name) != 0) {
          throw AsmError(line.line_no, "duplicate data symbol " + name);
        }
        RodataSymbol sym;
        sym.name = name;
        sym.offset = program_.rodata.size();
        program_.rodata_symbols.push_back(sym);
        data_symbols_[name] = program_.rodata_symbols.size() - 1;
        section = Section::kData;
      } else if (word == "func") {
        ParseFuncHeader(line);
        section = Section::kFunc;
      } else if (section == Section::kData) {
        ParseDataDirective(line);
      } else if (section != Section::kFunc) {
        throw AsmError(line.line_no, "statement outside any section");
      }
    }
    // Fix symbol sizes now that all data is appended.
    for (std::size_t i = 0; i < program_.rodata_symbols.size(); ++i) {
      auto& sym = program_.rodata_symbols[i];
      const std::uint64_t next = i + 1 < program_.rodata_symbols.size()
                                     ? program_.rodata_symbols[i + 1].offset
                                     : program_.rodata.size();
      sym.size = next - sym.offset;
    }
  }

  void ParseFuncHeader(const Line& line) {
    Cursor cur(line.text, line.line_no);
    cur.Ident();  // "func"
    const std::string name = cur.Ident();
    if (func_ids_.count(name) != 0) {
      throw AsmError(line.line_no, "duplicate function " + name);
    }
    Function fn;
    fn.name = name;
    cur.Expect('(');
    std::vector<std::string> params;
    if (!cur.TryConsume(')')) {
      do {
        params.push_back(cur.Ident());
      } while (cur.TryConsume(','));
      cur.Expect(')');
    }
    fn.num_params = static_cast<std::uint8_t>(params.size());
    func_ids_[name] = static_cast<FuncId>(program_.functions.size());
    func_params_.push_back(std::move(params));
    program_.functions.push_back(std::move(fn));
  }

  void ParseDataDirective(const Line& line) {
    Cursor cur(line.text, line.line_no);
    const std::string directive = cur.Ident();
    auto& rodata = program_.rodata;
    if (directive == ".u8" || directive == ".u16" || directive == ".u32" ||
        directive == ".u64") {
      const unsigned width = directive == ".u8"    ? 1
                             : directive == ".u16" ? 2
                             : directive == ".u32" ? 4
                                                   : 8;
      while (!cur.AtEnd()) {
        const auto imm = cur.ParseImm();
        if (!imm.symbol.empty()) {
          throw AsmError(line.line_no, "@symbol not allowed in data");
        }
        AppendLe(rodata, imm.value, width);
      }
    } else if (directive == ".bytes") {
      // Everything after the directive is whitespace-separated hex pairs.
      const std::size_t at = line.text.find(".bytes");
      const std::string_view rest = line.text.substr(at + 6);
      try {
        const Bytes parsed = FromHex(rest);
        rodata.insert(rodata.end(), parsed.begin(), parsed.end());
      } catch (const std::invalid_argument& e) {
        throw AsmError(line.line_no, std::string(".bytes: ") + e.what());
      }
    } else if (directive == ".str") {
      const std::string s = cur.QuotedString();
      rodata.insert(rodata.end(), s.begin(), s.end());
    } else if (directive == ".zero") {
      const auto imm = cur.ParseImm();
      rodata.insert(rodata.end(), imm.value, 0);
    } else {
      throw AsmError(line.line_no, "unknown data directive " + directive);
    }
  }

  // ---------------------------------------------------------------------
  // Pass 2: function bodies.
  // ---------------------------------------------------------------------
  struct FuncCtx {
    Function* fn = nullptr;
    FuncId id = 0;
    std::map<std::string, Reg> regs;
    std::map<std::string, BlockId> labels;
    std::map<BlockId, bool> block_defined;
    std::optional<BlockId> current;
    std::size_t header_line = 0;
  };

  Reg GetReg(FuncCtx& ctx, const std::string& name, std::size_t line) {
    auto it = ctx.regs.find(name);
    if (it != ctx.regs.end()) return it->second;
    if (ctx.regs.size() >= kMaxRegs) {
      throw AsmError(line, "register file exhausted in " + ctx.fn->name);
    }
    const Reg r = static_cast<Reg>(ctx.regs.size());
    ctx.regs[name] = r;
    return r;
  }

  BlockId GetBlock(FuncCtx& ctx, const std::string& label) {
    auto it = ctx.labels.find(label);
    if (it != ctx.labels.end()) return it->second;
    const BlockId id = static_cast<BlockId>(ctx.fn->blocks.size());
    ctx.fn->blocks.emplace_back();
    ctx.labels[label] = id;
    ctx.block_defined[id] = false;
    return id;
  }

  Block& CurrentBlock(FuncCtx& ctx, std::size_t line) {
    if (!ctx.current) {
      if (!ctx.fn->blocks.empty() && !ctx.labels.empty()) {
        throw AsmError(line, "unreachable code after terminator");
      }
      if (ctx.fn->blocks.empty()) {
        ctx.fn->blocks.emplace_back();  // anonymous entry block
        ctx.block_defined[0] = true;
      }
      ctx.current = 0;
    }
    return ctx.fn->blocks[*ctx.current];
  }

  void BodyPass() {
    FuncCtx ctx;
    bool in_data = false;
    for (const Line& line : lines_) {
      const std::string word = FirstWord(line.text);
      if (word == "program") continue;
      if (word == "data") {
        FinishFunction(ctx);
        in_data = true;
        continue;
      }
      if (word == "func") {
        FinishFunction(ctx);
        in_data = false;
        StartFunction(ctx, line);
        continue;
      }
      if (in_data) continue;  // data directives handled in pass 1
      if (ctx.fn == nullptr) {
        throw AsmError(line.line_no, "statement outside any function");
      }
      ParseStatement(ctx, line);
    }
    FinishFunction(ctx);
  }

  void StartFunction(FuncCtx& ctx, const Line& line) {
    Cursor cur(line.text, line.line_no);
    cur.Ident();
    const std::string name = cur.Ident();
    const FuncId id = func_ids_.at(name);
    ctx = FuncCtx{};
    ctx.fn = &program_.functions[id];
    ctx.id = id;
    ctx.header_line = line.line_no;
    for (const std::string& param : func_params_[id]) {
      GetReg(ctx, param, line.line_no);
    }
  }

  void FinishFunction(FuncCtx& ctx) {
    if (ctx.fn == nullptr) return;
    if (ctx.fn->blocks.empty()) {
      throw AsmError(ctx.header_line, ctx.fn->name + ": empty function");
    }
    if (ctx.current) {
      throw AsmError(ctx.header_line,
                     ctx.fn->name + ": last block lacks a terminator");
    }
    for (const auto& [label, id] : ctx.labels) {
      if (!ctx.block_defined[id]) {
        throw AsmError(ctx.header_line,
                       ctx.fn->name + ": undefined label " + label);
      }
    }
    ctx.fn->num_regs = static_cast<std::uint8_t>(
        std::max<std::size_t>(ctx.regs.size(), 1));
    ctx.fn = nullptr;
  }

  void Terminate(FuncCtx& ctx, std::size_t line, Terminator term) {
    CurrentBlock(ctx, line).term = term;
    ctx.current.reset();
  }

  void ParseStatement(FuncCtx& ctx, const Line& line) {
    // Label?
    {
      Cursor probe(line.text, line.line_no);
      const char first = probe.Peek();
      if (first != '%' && first != '\0') {
        Cursor cur(line.text, line.line_no);
        const std::string ident = cur.Ident();
        if (cur.TryConsume(':') && cur.AtEnd()) {
          const BlockId id = GetBlock(ctx, ident);
          if (ctx.block_defined[id]) {
            throw AsmError(line.line_no, "duplicate label " + ident);
          }
          ctx.block_defined[id] = true;
          // Implicit fallthrough from the open block.
          if (ctx.current) {
            ctx.fn->blocks[*ctx.current].term = Terminator::Jump(id);
          } else if (ctx.fn->blocks.size() == 1 &&
                     ctx.fn->blocks[0].instrs.empty() &&
                     ctx.labels.size() == 1) {
            // First label of the function names the entry block. Nothing
            // to do: GetBlock already created block 0.
          }
          ctx.current = id;
          return;
        }
      }
    }
    Cursor cur(line.text, line.line_no);
    const std::string op = cur.Ident();
    EmitInstr(ctx, line.line_no, op, cur);
  }

  void EmitInstr(FuncCtx& ctx, std::size_t line, const std::string& op,
                 Cursor& cur) {
    auto reg = [&] { return GetReg(ctx, cur.RegName(), line); };
    auto comma = [&] { cur.Expect(','); };
    auto imm_field = [&](Instr& ins) {
      const auto imm = cur.ParseImm();
      if (!imm.symbol.empty()) {
        // Block/ip are patched inside push() once the instr is placed.
        pending_imms_.push_back({ctx.id, 0, 0, imm.symbol, line});
        ins.imm = 0;
        return true;
      }
      ins.imm = imm.value;
      return false;
    };

    Instr ins;
    bool pending_symbol = false;

    auto push = [&] {
      Block& block = CurrentBlock(ctx, line);
      block.instrs.push_back(std::move(ins));
      if (pending_symbol) {
        pending_imms_.back().block = *ctx.current;
        pending_imms_.back().ip = block.instrs.size() - 1;
      }
    };

    // Terminators first.
    if (op == "jmp") {
      const std::string label = cur.Ident();
      CurrentBlock(ctx, line);  // ensure open block exists
      Terminate(ctx, line, Terminator::Jump(GetBlock(ctx, label)));
      return;
    }
    if (op == "br") {
      const Reg cond = reg();
      comma();
      const std::string taken = cur.Ident();
      comma();
      const std::string not_taken = cur.Ident();
      CurrentBlock(ctx, line);
      // Sequence the GetBlock calls: argument evaluation order is
      // unspecified and block ids should follow source order.
      const BlockId taken_id = GetBlock(ctx, taken);
      const BlockId not_taken_id = GetBlock(ctx, not_taken);
      Terminate(ctx, line, Terminator::Branch(cond, taken_id, not_taken_id));
      return;
    }
    if (op == "ret") {
      CurrentBlock(ctx, line);
      if (cur.AtEnd()) {
        Terminate(ctx, line, Terminator::Ret());
      } else {
        Terminate(ctx, line, Terminator::Ret(reg()));
      }
      return;
    }

    static const std::map<std::string, Op> kBinary = {
        {"add", Op::kAdd},       {"sub", Op::kSub},
        {"mul", Op::kMul},       {"divu", Op::kDivU},
        {"remu", Op::kRemU},     {"and", Op::kAnd},
        {"or", Op::kOr},         {"xor", Op::kXor},
        {"shl", Op::kShl},       {"shr", Op::kShr},
        {"cmpeq", Op::kCmpEq},   {"cmpne", Op::kCmpNe},
        {"cmpltu", Op::kCmpLtU}, {"cmpleu", Op::kCmpLeU},
        {"cmpgtu", Op::kCmpGtU}, {"cmpgeu", Op::kCmpGeU},
    };

    if (auto it = kBinary.find(op); it != kBinary.end()) {
      ins.op = it->second;
      ins.a = reg();
      comma();
      ins.b = reg();
      comma();
      ins.c = reg();
      push();
      return;
    }

    if (op == "movi") {
      ins.op = Op::kMovImm;
      ins.a = reg();
      comma();
      pending_symbol = imm_field(ins);
      push();
      return;
    }
    if (op == "mov") {
      ins.op = Op::kMov;
      ins.a = reg();
      comma();
      ins.b = reg();
      push();
      return;
    }
    if (op == "not") {
      ins.op = Op::kNot;
      ins.a = reg();
      comma();
      ins.b = reg();
      push();
      return;
    }
    if (op == "addi") {
      ins.op = Op::kAddImm;
      ins.a = reg();
      comma();
      ins.b = reg();
      comma();
      pending_symbol = imm_field(ins);
      push();
      return;
    }
    if (op.rfind("load.", 0) == 0 || op.rfind("store.", 0) == 0) {
      const bool is_load = op[0] == 'l';
      const std::string suffix = op.substr(op.find('.') + 1);
      if (suffix != "1" && suffix != "2" && suffix != "4" && suffix != "8") {
        throw AsmError(line, "bad width suffix in " + op);
      }
      ins.op = is_load ? Op::kLoad : Op::kStore;
      ins.width = static_cast<std::uint8_t>(suffix[0] - '0');
      ins.a = reg();
      comma();
      ins.b = reg();
      comma();
      pending_symbol = imm_field(ins);
      push();
      return;
    }
    if (op == "alloc") {
      ins.op = Op::kAlloc;
      ins.a = reg();
      comma();
      ins.b = reg();
      push();
      return;
    }
    if (op == "free") {
      ins.op = Op::kFree;
      ins.a = reg();
      push();
      return;
    }
    if (op == "read") {
      ins.op = Op::kRead;
      ins.a = reg();
      comma();
      ins.b = reg();
      comma();
      ins.c = reg();
      push();
      return;
    }
    if (op == "seek") {
      ins.op = Op::kSeek;
      ins.b = reg();
      push();
      return;
    }
    if (op == "mmap") {
      ins.op = Op::kMMap;
      ins.a = reg();
      push();
      return;
    }
    if (op == "tell") {
      ins.op = Op::kTell;
      ins.a = reg();
      push();
      return;
    }
    if (op == "fsize") {
      ins.op = Op::kFileSize;
      ins.a = reg();
      push();
      return;
    }
    if (op == "call" || op == "icall") {
      ins.op = op == "call" ? Op::kCall : Op::kICall;
      ins.a = reg();
      comma();
      if (ins.op == Op::kCall) {
        const std::string callee = cur.Ident();
        pending_calls_.push_back({ctx.id, 0, 0, callee, line});
      } else {
        ins.b = reg();
      }
      cur.Expect('(');
      if (!cur.TryConsume(')')) {
        do {
          ins.args.push_back(reg());
        } while (cur.TryConsume(','));
        cur.Expect(')');
      }
      push();
      if (ins.op == Op::kCall) {
        Block& block = ctx.fn->blocks[*ctx.current];
        pending_calls_.back().block = *ctx.current;
        pending_calls_.back().ip = block.instrs.size() - 1;
      }
      return;
    }
    if (op == "fnaddr") {
      ins.op = Op::kFnAddr;
      ins.a = reg();
      comma();
      const std::string callee = cur.Ident();
      pending_calls_.push_back({ctx.id, 0, 0, callee, line});
      push();
      Block& block = ctx.fn->blocks[*ctx.current];
      pending_calls_.back().block = *ctx.current;
      pending_calls_.back().ip = block.instrs.size() - 1;
      return;
    }
    if (op == "assert") {
      ins.op = Op::kAssert;
      ins.a = reg();
      push();
      return;
    }
    if (op == "trap") {
      // `trap` both emits the instruction and terminates the block: no
      // fallthrough exists after an unconditional abort.
      CurrentBlock(ctx, line).instrs.push_back({Op::kTrap, 0, 0, 0, 8, 0, {}});
      Terminate(ctx, line, Terminator::Ret());
      return;
    }
    if (op == "nop") {
      ins.op = Op::kNop;
      push();
      return;
    }
    throw AsmError(line, "unknown mnemonic " + op);
  }

  void ResolveRefs() {
    for (const PendingCall& pc : pending_calls_) {
      auto it = func_ids_.find(pc.callee);
      if (it == func_ids_.end()) {
        throw AsmError(pc.line, "call to unknown function " + pc.callee);
      }
      program_.functions[pc.fn].blocks[pc.block].instrs[pc.ip].imm =
          it->second;
    }
    for (const PendingImm& pi : pending_imms_) {
      auto it = data_symbols_.find(pi.symbol);
      if (it == data_symbols_.end()) {
        throw AsmError(pi.line, "unknown data symbol @" + pi.symbol);
      }
      program_.functions[pi.fn].blocks[pi.block].instrs[pi.ip].imm =
          kRodataBase + program_.rodata_symbols[it->second].offset;
    }
  }

  void FinishProgram() {
    const FuncId entry = program_.FindFunction("main");
    if (entry == kInvalidFunc) {
      throw AsmError(1, "program has no 'main' function");
    }
    program_.entry = entry;
    if (auto err = Validate(program_)) {
      throw AsmError(1, "validation failed: " + *err);
    }
  }

  std::vector<Line> lines_;
  Program program_;
  std::map<std::string, FuncId> func_ids_;
  std::vector<std::vector<std::string>> func_params_;
  std::map<std::string, std::size_t> data_symbols_;
  std::vector<PendingCall> pending_calls_;
  std::vector<PendingImm> pending_imms_;
};

}  // namespace

Program Assemble(std::string_view source) {
  return Assembler(source).Build();
}

Program AssembleParts(std::initializer_list<std::string_view> sources) {
  std::string merged;
  for (const auto part : sources) {
    merged.append(part);
    merged.push_back('\n');
  }
  return Assemble(merged);
}

}  // namespace octopocs::vm
