// MiniVM intermediate representation.
//
// The paper's pipeline runs on real x86 binaries (instrumented with Intel
// PIN, symbolically executed with angr). This repository substitutes a
// small register machine — the MiniVM — that exposes exactly the events
// OCTOPOCS consumes: byte-granular memory and file accesses, function
// calls (direct and indirect), branches, and crash traps. Both the
// "original software" S and the "propagated software" T of every corpus
// pair are MiniVM programs, and the shared vulnerable area ℓ is literally
// the same IR functions linked into both.
//
// Shape of the IR:
//   Program  = functions + read-only data segment (+ designated entry).
//   Function = basic blocks; block 0 is the function entry.
//   Block    = straight-line instructions + exactly one terminator
//              (jump / conditional branch / return).
// Registers are per-frame 64-bit slots; parameters arrive in r0..rN-1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace octopocs::vm {

using Reg = std::uint8_t;
using FuncId = std::uint32_t;
using BlockId = std::uint32_t;

inline constexpr FuncId kInvalidFunc = 0xFFFFFFFFu;
inline constexpr std::uint8_t kMaxRegs = 64;

/// Memory layout constants. Addresses below kNullGuard trap as null
/// dereferences (models page-zero protection); the read-only data segment
/// sits at kRodataBase; heap allocations are handed out from kHeapBase
/// upward with guard gaps so off-by-one overflows land in unmapped space.
inline constexpr std::uint64_t kNullGuard = 0x1000;
inline constexpr std::uint64_t kRodataBase = 0x10000;
inline constexpr std::uint64_t kHeapBase = 0x100000;
/// Read-only mapping of the whole input file (the memory-mapped input
/// channel the paper hooks alongside file reads). kMMap returns this
/// base; loads inside [kMmapBase, kMmapBase + file size) read the PoC
/// bytes directly, writes trap.
inline constexpr std::uint64_t kMmapBase = 0x40000000;

// Opcode master list (X-macro). Every table that must stay in lockstep
// with the opcode set — the Op enum itself, the mnemonic table, the
// op_info metadata rows, and the threaded-dispatch label table in
// vm/interp.cpp — is generated from (or statically checked against) this
// single list, so adding an opcode without updating a backend is a
// compile-time error rather than a silent fall-through.
//
// Semantics (registers are per-frame 64-bit slots):
//   Data movement: kMovImm r[a]=imm; kMov r[a]=r[b].
//   Arithmetic / bitwise (r[a] = r[b] <op> r[c], 64-bit wrap-around):
//     kAdd kSub kMul kAnd kOr kXor; kDivU/kRemU trap kDivByZero when
//     r[c]==0; kShl/kShr take the shift amount mod 64.
//   Unary: kNot r[a]=~r[b]; kAddImm r[a]=r[b]+imm (imm may encode a
//     negative two's complement).
//   Comparisons (unsigned, r[a] = (r[b] <op> r[c]) ? 1 : 0):
//     kCmpEq kCmpNe kCmpLtU kCmpLeU kCmpGtU kCmpGeU.
//   Memory (effective address = r[b] + imm; width ∈ {1,2,4,8},
//     little-endian, loads zero-extend): kLoad r[a]=mem[...];
//     kStore mem[...]=low bytes of r[a]; kAlloc r[a]=heap.alloc(r[b]
//     bytes, zero-initialized); kFree heap.free(r[a]).
//   Input file (the PoC; one implicit stream per execution with a
//     file-position indicator — the abstraction P3 keys bunches on):
//     kRead r[a]=read(dst=r[b], count=r[c]), advances position;
//     kMMap r[a]=base of the read-only whole-file mapping;
//     kSeek position=r[b]; kTell r[a]=position; kFileSize r[a]=input
//     size in bytes.
//   Calls: kCall names the callee in imm (a FuncId); kICall takes the
//     callee id from r[b]. Arguments are the caller registers in `args`,
//     copied into the callee's r0..rN-1; the return value lands in r[a].
//     kFnAddr r[a]=FuncId of a function named at build time (in imm).
//   Checks: kAssert traps kAbort when r[a]==0; kTrap is an unconditional
//     kAbort; kNop does nothing.
#define OCTOPOCS_VM_OPCODES(X) \
  X(MovImm, "movi")            \
  X(Mov, "mov")                \
  X(Add, "add")                \
  X(Sub, "sub")                \
  X(Mul, "mul")                \
  X(DivU, "divu")              \
  X(RemU, "remu")              \
  X(And, "and")                \
  X(Or, "or")                  \
  X(Xor, "xor")                \
  X(Shl, "shl")                \
  X(Shr, "shr")                \
  X(Not, "not")                \
  X(AddImm, "addi")            \
  X(CmpEq, "cmpeq")            \
  X(CmpNe, "cmpne")            \
  X(CmpLtU, "cmpltu")          \
  X(CmpLeU, "cmpleu")          \
  X(CmpGtU, "cmpgtu")          \
  X(CmpGeU, "cmpgeu")          \
  X(Load, "load")              \
  X(Store, "store")            \
  X(Alloc, "alloc")            \
  X(Free, "free")              \
  X(Read, "read")              \
  X(MMap, "mmap")              \
  X(Seek, "seek")              \
  X(Tell, "tell")              \
  X(FileSize, "fsize")         \
  X(Call, "call")              \
  X(ICall, "icall")            \
  X(FnAddr, "fnaddr")          \
  X(Assert, "assert")          \
  X(Trap, "trap")              \
  X(Nop, "nop")

enum class Op : std::uint8_t {
#define OCTOPOCS_VM_OP_ENUM(name, mnemonic) k##name,
  OCTOPOCS_VM_OPCODES(OCTOPOCS_VM_OP_ENUM)
#undef OCTOPOCS_VM_OP_ENUM
};

/// Number of opcodes. Dispatch/metadata tables are sized by this and
/// statically checked against it.
inline constexpr std::size_t kOpCount = 0
#define OCTOPOCS_VM_OP_COUNT(name, mnemonic) +1
    OCTOPOCS_VM_OPCODES(OCTOPOCS_VM_OP_COUNT)
#undef OCTOPOCS_VM_OP_COUNT
    ;

/// True for the three-register ALU forms (kAdd .. kCmpGeU minus unary).
bool IsBinaryAlu(Op op);

struct Instr {
  Op op = Op::kNop;
  Reg a = 0;
  Reg b = 0;
  Reg c = 0;
  std::uint8_t width = 8;  // loads/stores only
  std::uint64_t imm = 0;
  std::vector<Reg> args;  // kCall / kICall only

  static Instr MovImm(Reg a, std::uint64_t imm) {
    return {Op::kMovImm, a, 0, 0, 8, imm, {}};
  }
  static Instr Alu(Op op, Reg a, Reg b, Reg c) { return {op, a, b, c, 8, 0, {}}; }
  static Instr Load(Reg a, Reg base, std::uint64_t off, std::uint8_t width) {
    return {Op::kLoad, a, base, 0, width, off, {}};
  }
  static Instr Store(Reg src, Reg base, std::uint64_t off, std::uint8_t width) {
    return {Op::kStore, src, base, 0, width, off, {}};
  }
};

enum class TermKind : std::uint8_t { kJump, kBranch, kReturn };

struct Terminator {
  TermKind kind = TermKind::kReturn;
  Reg cond = 0;                 // kBranch: condition register; kReturn: value
  bool returns_value = false;   // kReturn: whether `cond` holds the value
  BlockId target = 0;           // kJump target / kBranch taken
  BlockId fallthrough = 0;      // kBranch not-taken

  static Terminator Jump(BlockId t) {
    return {TermKind::kJump, 0, false, t, 0};
  }
  static Terminator Branch(Reg cond, BlockId taken, BlockId not_taken) {
    return {TermKind::kBranch, cond, false, taken, not_taken};
  }
  static Terminator Ret(std::optional<Reg> value = std::nullopt) {
    Terminator t{TermKind::kReturn, 0, false, 0, 0};
    if (value) {
      t.cond = *value;
      t.returns_value = true;
    }
    return t;
  }
};

struct Block {
  std::vector<Instr> instrs;
  Terminator term;
};

struct Function {
  std::string name;
  std::uint8_t num_params = 0;
  std::uint8_t num_regs = 16;
  std::vector<Block> blocks;  // blocks[0] is the entry block
};

/// A named slice of the read-only data segment (e.g. a hardcoded tag
/// table — the mechanism behind the paper's Type-III tiffsplit cases).
struct RodataSymbol {
  std::string name;
  std::uint64_t offset = 0;  // relative to kRodataBase
  std::uint64_t size = 0;
};

struct Program {
  std::string name;
  std::vector<Function> functions;
  FuncId entry = 0;
  std::vector<std::uint8_t> rodata;
  std::vector<RodataSymbol> rodata_symbols;

  /// Returns the id of the function called `name`, or kInvalidFunc.
  FuncId FindFunction(std::string_view fn_name) const;

  /// Absolute address of a named rodata symbol. Throws std::out_of_range
  /// if the symbol does not exist.
  std::uint64_t RodataAddress(std::string_view symbol) const;

  const Function& Fn(FuncId id) const { return functions[id]; }
};

/// Structural sanity checks: entry exists, every jump/branch target and
/// every direct-call FuncId is in range, register indices are within each
/// function's register file, widths are legal. Returns a human-readable
/// description of the first violation, or std::nullopt when well-formed.
std::optional<std::string> Validate(const Program& program);

/// Mnemonic for an opcode ("add", "load", ...). Shared by the
/// disassembler and diagnostics.
std::string_view OpName(Op op);

}  // namespace octopocs::vm
