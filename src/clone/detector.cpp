#include "clone/detector.h"

#include <map>

namespace octopocs::clone {

namespace {

/// FNV-1a over a stream of integers / strings.
class Hasher {
 public:
  void Mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ = (h_ ^ ((v >> (8 * i)) & 0xFF)) * 0x100000001B3ULL;
    }
  }
  void Mix(std::string_view s) {
    for (const char c : s) {
      h_ = (h_ ^ static_cast<unsigned char>(c)) * 0x100000001B3ULL;
    }
    Mix(0x1F);  // delimiter
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ULL;
};

bool IsCalleeRef(vm::Op op) {
  return op == vm::Op::kCall || op == vm::Op::kFnAddr;
}

}  // namespace

std::uint64_t Fingerprint(const vm::Program& program, vm::FuncId fn_id,
                          Abstraction abstraction) {
  const vm::Function& fn = program.Fn(fn_id);
  Hasher h;
  h.Mix(fn.num_params);
  h.Mix(fn.blocks.size());
  for (const vm::Block& block : fn.blocks) {
    h.Mix(0xB10C);  // block delimiter
    for (const vm::Instr& ins : block.instrs) {
      h.Mix(static_cast<std::uint64_t>(ins.op));
      h.Mix(ins.a);
      h.Mix(ins.b);
      h.Mix(ins.c);
      h.Mix(ins.width);
      if (IsCalleeRef(ins.op)) {
        // Callee *name*, not id: S and T lay their function tables out
        // differently even when the bodies are verbatim clones.
        h.Mix(program.Fn(static_cast<vm::FuncId>(ins.imm)).name);
      } else if (abstraction == Abstraction::kExact) {
        h.Mix(ins.imm);
      }
      for (const vm::Reg r : ins.args) h.Mix(r);
    }
    const vm::Terminator& t = block.term;
    h.Mix(static_cast<std::uint64_t>(t.kind));
    h.Mix(t.cond);
    h.Mix(t.returns_value ? 1 : 0);
    h.Mix(t.target);
    h.Mix(t.fallthrough);
  }
  return h.value();
}

std::vector<CloneMatch> DetectClones(const vm::Program& s,
                                     const vm::Program& t,
                                     Abstraction abstraction) {
  // Fingerprint index over T.
  std::multimap<std::uint64_t, vm::FuncId> t_index;
  for (vm::FuncId f = 0; f < t.functions.size(); ++f) {
    t_index.emplace(Fingerprint(t, f, abstraction), f);
  }

  std::vector<CloneMatch> matches;
  for (vm::FuncId f = 0; f < s.functions.size(); ++f) {
    const std::uint64_t fp = Fingerprint(s, f, abstraction);
    const auto [lo, hi] = t_index.equal_range(fp);
    if (lo == hi) continue;
    // Prefer the same-named candidate when the fingerprint is ambiguous.
    vm::FuncId best = lo->second;
    for (auto it = lo; it != hi; ++it) {
      if (t.Fn(it->second).name == s.Fn(f).name) {
        best = it->second;
        break;
      }
    }
    matches.push_back(
        {s.Fn(f).name, t.Fn(best).name, f, best});
  }
  return matches;
}

std::vector<std::string> DetectSharedFunctions(const vm::Program& s,
                                               const vm::Program& t,
                                               Abstraction abstraction) {
  std::vector<std::string> names;
  for (const CloneMatch& match : DetectClones(s, t, abstraction)) {
    if (t.FindFunction(match.name_in_s) != vm::kInvalidFunc) {
      names.push_back(match.name_in_s);
    }
  }
  return names;
}

}  // namespace octopocs::clone
