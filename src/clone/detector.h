// Function-level clone detection over MiniVM programs (the VUDDY
// substitute).
//
// The paper's design assumption (§III) is that the S/T pair and the
// shared function set ℓ come from a vulnerable-clone detector such as
// VUDDY, which fingerprints normalized function bodies and matches the
// fingerprints across programs. This module reproduces that mechanism
// for MiniVM IR, so the pipeline can be driven without hand-supplying
// ℓ:
//
//   auto shared = clone::DetectSharedFunctions(s, t);
//   core::Octopocs pipeline(s, t, shared, poc);
//
// Normalization before hashing (mirroring VUDDY's abstraction levels):
//  - level 0 (exact): opcode, registers, widths, and immediates, with
//    direct-call/fnaddr targets replaced by the *callee name* so that
//    differing function-id layouts between S and T do not break
//    matching;
//  - level 1 (abstract): additionally masks non-call immediates, which
//    tolerates clones whose constants were retuned (e.g. a resized
//    buffer). Level 1 may over-match; the default is level 0.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vm/ir.h"

namespace octopocs::clone {

enum class Abstraction : std::uint8_t {
  kExact = 0,     // VUDDY level-0-like: everything but callee ids
  kAbstract = 1,  // additionally masks immediates
};

/// Stable fingerprint of one function under the given abstraction.
/// Fingerprints are comparable across programs.
std::uint64_t Fingerprint(const vm::Program& program, vm::FuncId fn,
                          Abstraction abstraction = Abstraction::kExact);

struct CloneMatch {
  std::string name_in_s;  // function name in S
  std::string name_in_t;  // function name in T (may differ)
  vm::FuncId fn_in_s = vm::kInvalidFunc;
  vm::FuncId fn_in_t = vm::kInvalidFunc;
};

/// All function-level clones between S and T: functions whose
/// normalized bodies hash identically. Matching is by fingerprint, not
/// by name — renamed clones are found — but when several functions in
/// one program share a fingerprint, name equality breaks the tie.
std::vector<CloneMatch> DetectClones(
    const vm::Program& s, const vm::Program& t,
    Abstraction abstraction = Abstraction::kExact);

/// Convenience for the pipeline: the ℓ estimate as a name list (names
/// as they appear in S). Matches whose T-side name differs are still
/// included under the S name only if T also contains that name;
/// otherwise they are dropped (the pipeline resolves ep by name).
std::vector<std::string> DetectSharedFunctions(
    const vm::Program& s, const vm::Program& t,
    Abstraction abstraction = Abstraction::kExact);

}  // namespace octopocs::clone
