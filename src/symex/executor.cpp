#include "symex/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "support/fault.h"
#include "support/thread_pool.h"
#include "support/trace.h"
#include "vm/op_info.h"

namespace octopocs::symex {

std::string_view SymexStatusName(SymexStatus status) {
  switch (status) {
    case SymexStatus::kPocGenerated: return "poc-generated";
    case SymexStatus::kReachedEp: return "reached-ep";
    case SymexStatus::kCfgUnreachable: return "cfg-unreachable";
    case SymexStatus::kProgramDead: return "program-dead";
    case SymexStatus::kUnsat: return "unsat";
    case SymexStatus::kBudget: return "budget-exhausted";
    case SymexStatus::kSolverFailure: return "solver-failure";
    case SymexStatus::kDeadline: return "deadline-expired";
  }
  return "?";
}

namespace {

/// If `constraint` is a top-level equality between a single input byte
/// and a constant, expose it as a pin so EvalPartial can fold it later
/// without a solver round trip.
std::optional<std::pair<std::uint32_t, std::uint8_t>> AsBytePin(
    const ExprRef& constraint) {
  if (constraint->kind != ExprKind::kBinOp ||
      constraint->op != vm::Op::kCmpEq) {
    return std::nullopt;
  }
  const Expr* input = nullptr;
  const Expr* konst = nullptr;
  if (constraint->lhs->kind == ExprKind::kInput &&
      constraint->rhs->IsConst()) {
    input = constraint->lhs.get();
    konst = constraint->rhs.get();
  } else if (constraint->rhs->kind == ExprKind::kInput &&
             constraint->lhs->IsConst()) {
    input = constraint->rhs.get();
    konst = constraint->lhs.get();
  }
  if (input == nullptr || konst->value > 0xFF) return std::nullopt;
  return std::make_pair(input->offset,
                        static_cast<std::uint8_t>(konst->value));
}

using EventKey = std::vector<std::uint32_t>;

bool KeyLess(const EventKey& a, const EventKey& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                      b.end());
}

}  // namespace

struct SymExecutor::Run {
  enum class Goal { kReachEp, kGeneratePoc };

  Run(const vm::Program& t_in, const cfg::Cfg& cfg_in, vm::FuncId ep_in,
      const ExecutorOptions& opts_in, Goal goal_in, bool directed_in,
      const std::vector<taint::Bunch>* bunches_in = nullptr)
      : t(t_in),
        cfg(cfg_in),
        ep(ep_in),
        opts(opts_in),
        goal(goal_in),
        directed(directed_in),
        bunches(bunches_in),
        cancel(opts_in.cancel) {}

  const vm::Program& t;
  const cfg::Cfg& cfg;
  vm::FuncId ep;
  const ExecutorOptions& opts;
  Goal goal;
  bool directed;
  const std::vector<taint::Bunch>* bunches = nullptr;

  cfg::DistanceMap dmap;

  /// Per-worker execution context. The serial drive loop is worker 0 of
  /// a one-worker run; frontier mode instantiates frontier_jobs of
  /// these. Everything a state's execution mutates that is not shared-
  /// by-design lives here, so the stepping code below is oblivious to
  /// which mode it runs under.
  struct WorkerCtx {
    unsigned id = 0;
    /// Per-worker memo. Caches must not be shared across workers: every
    /// mechanism they serve is a pure function of the query (see
    /// solver.h), so private caches only cost duplicate work, never
    /// divergent answers.
    SolverCache cache;
    /// Naive-BFS bookkeeping: after a two-way fork the continuing state
    /// goes back to the queue (breadth-first interleaving).
    bool requeue_current = false;
    /// Per-worker copy: the poll counters are per-copy state.
    support::CancelToken cancel;
    /// Frontier only: this worker's own deque.
    support::WorkStealingDeque<SymState>* deque = nullptr;
    /// Event key of the goal this worker just committed (RunState
    /// returned true with a success status).
    EventKey goal_key;
  };

  // -- Shared, thread-safe run state ----------------------------------------

  bool frontier = false;                     // set once before exploration
  std::deque<SymState> worklist;             // serial mode only
  support::StealCoordinator* coord = nullptr;  // frontier mode only

  std::atomic<std::uint64_t> queued_footprint{0};
  std::atomic<std::uint64_t> instructions_total{0};
  std::atomic<std::uint64_t> solver_steps_total{0};
  std::atomic<std::uint64_t> states_created_total{0};
  std::atomic<std::uint64_t> live_states{0};  // queued + in flight
  std::atomic<std::uint64_t> peak_live_states{0};
  std::atomic<std::uint64_t> peak_memory_bytes{0};
  std::atomic<std::uint64_t> frontier_steals_total{0};

  SymexStats stats;
  support::CancelToken cancel;  // serial drive loop's copy

  /// What exploration saw, keyed for deterministic merging. Serial runs
  /// record chronologically (their event-key order *is* execution
  /// order); frontier workers record out of order and the keys restore
  /// the serial view: an observation "happened" — from the committed
  /// result's point of view — iff its key precedes the committed goal's
  /// key, because lexicographic event-key order equals the serial DFS
  /// execution order by construction (see state.h on dfs_key).
  struct ObservationLog {
    std::mutex mu;
    bool reached_ep = false;
    bool solver_budget = false;
    bool deadline = false;
    bool unsat = false;
    std::string unsat_detail_chrono;  // latest by wall clock (serial truth)
    EventKey unsat_max_key;           // latest by event key (frontier truth)
    std::string unsat_detail_keyed;
    bool loop_dead = false;
    EventKey loop_dead_min_key;
  };
  ObservationLog log;

  /// Best (smallest-key) committed goal and the first abort, if any.
  std::mutex goal_mu;
  bool have_goal = false;
  EventKey goal_key;
  SymexResult goal_result;
  bool have_abort = false;
  SymexResult abort_result;
  std::atomic<bool> goal_seen{false};

  std::mutex err_mu;
  std::exception_ptr first_error;

  // ---------------------------------------------------------------------
  // State helpers.
  // ---------------------------------------------------------------------

  SymFrame& Top(SymState& s) { return s.frames.back(); }

  void Die(SymState& s, StateDeath why) { s.death = why; }

  /// Stamps the state's next event. Consumed at forks, at every logged
  /// observation, and at goal commits — identically in serial and
  /// frontier mode, which is what keeps the keys comparable.
  EventKey NextEvent(SymState& s) {
    EventKey key = s.dfs_key;
    key.push_back(s.event_seq++);
    return key;
  }

  /// Records an unsat observation for final-status classification
  /// without killing the state. A pruned branch direction is exactly
  /// the same evidence the dropped fork would have produced at its
  /// first solving site, so it feeds the same log.
  void RecordUnsat(SymState& s, std::string detail) {
    EventKey key = NextEvent(s);
    {
      std::lock_guard<std::mutex> lock(log.mu);
      log.unsat = true;
      log.unsat_detail_chrono = detail;
      if (log.unsat_max_key.empty() || KeyLess(log.unsat_max_key, key)) {
        log.unsat_max_key = std::move(key);
        log.unsat_detail_keyed = std::move(detail);
      }
    }
  }

  void NoteUnsat(SymState& s, std::string detail) {
    RecordUnsat(s, std::move(detail));
    Die(s, StateDeath::kUnsat);
  }

  /// Adds a path constraint, harvesting byte pins where possible and
  /// folding unary constraints into the state's incremental solve
  /// context (the 256-probe filtering happens once here instead of once
  /// per downstream query).
  void AddConstraint(SymState& s, ExprRef expr) {
    if (expr->IsConst()) {
      if (expr->value == 0) NoteUnsat(s, "constant-false path constraint");
      return;
    }
    if (const auto pin = AsBytePin(expr)) {
      const auto [off, val] = *pin;
      auto it = s.pinned.find(off);
      if (it != s.pinned.end() && it->second != val) {
        NoteUnsat(s, "conflicting byte pins at offset " +
                         std::to_string(off));
        return;
      }
      s.pinned[off] = val;
    }
    s.constraints.push_back(std::move(expr));
    s.solve_ctx.Apply(s.constraints.back());
  }

  /// Pins input byte `off` to `val`; conflict kills the state.
  void PinByte(SymState& s, std::uint64_t off, std::uint8_t val) {
    if (off >= opts.max_input_size) {
      NoteUnsat(s, "bunch byte beyond the symbolic file bound");
      return;
    }
    AddConstraint(s, MakeBinOp(vm::Op::kCmpEq,
                               MakeInput(static_cast<std::uint32_t>(off)),
                               MakeConst(val)));
  }

  /// Satisfiability of `s`'s path constraints through the worker's
  /// incremental cache: exact memo → subsumption → certified model
  /// reuse → independence slicing → fresh search, seeded with the
  /// state's own solve context (see SolverCache::Solve).
  SolveResult SolveConstraints(WorkerCtx& w, SymState& s) {
    SolverOptions query = opts.solver;
    query.context = &s.solve_ctx;
    SolveResult r = w.cache.Solve(s.constraints, s.pinned, query,
                                  &s.solve_ctx);
    // Cache hits report zero steps, so each real search is counted once.
    solver_steps_total.fetch_add(r.steps, std::memory_order_relaxed);
    return r;
  }

  /// Satisfiability of the state's path condition extended with one
  /// speculative branch constraint. The constraint is pushed for the
  /// query and popped again; the state itself is untouched (Solve
  /// never writes UNSAT facts back into the context, and a SAT model
  /// it notes is a valid certificate for any later query). When the
  /// surviving direction is then committed via AddConstraint, the next
  /// query over this state repeats this exact key — so the check both
  /// prunes infeasible forks before they execute and turns downstream
  /// concretization/finalization queries into exact cache hits.
  SolveStatus BranchFeasible(WorkerCtx& w, SymState& s,
                             const ExprRef& constraint) {
    s.constraints.push_back(constraint);
    SolverOptions query = opts.solver;
    query.context = &s.solve_ctx;
    const SolveResult r = w.cache.Solve(s.constraints, s.pinned, query,
                                        &s.solve_ctx);
    s.constraints.pop_back();
    solver_steps_total.fetch_add(r.steps, std::memory_order_relaxed);
    return r.status;
  }

  /// Shared handling for a non-SAT/UNSAT solver verdict: records which
  /// kind of giving-up happened and kills the state. Returns true when
  /// it consumed the verdict (i.e. status was kUnknown or kCancelled).
  bool HandleSolverGiveUp(SymState& s, SolveStatus status) {
    if (status == SolveStatus::kUnknown) {
      {
        std::lock_guard<std::mutex> lock(log.mu);
        log.solver_budget = true;
      }
      Die(s, StateDeath::kSolverBudget);
      return true;
    }
    if (status == SolveStatus::kCancelled) {
      {
        std::lock_guard<std::mutex> lock(log.mu);
        log.deadline = true;
      }
      Die(s, StateDeath::kSolverBudget);
      return true;
    }
    return false;
  }

  /// Concrete value of `expr` in this state: fold under pins, otherwise
  /// ask the solver for a model and pin the participating bytes to it
  /// (angr-style concretization). Kills the state on unsat/budget.
  std::optional<std::uint64_t> Concretize(WorkerCtx& w, SymState& s,
                                          const ExprRef& expr) {
    if (const auto v = EvalPartial(expr, s.pinned)) return v;
    const SolveResult r = SolveConstraints(w, s);
    if (r.status == SolveStatus::kUnsat) {
      NoteUnsat(s, "path constraints unsatisfiable at concretization");
      return std::nullopt;
    }
    if (HandleSolverGiveUp(s, r.status)) return std::nullopt;
    SortedSmallSet<std::uint32_t> vars;
    CollectInputs(expr, vars);
    for (const std::uint32_t var : vars) {
      const auto it = r.model.find(var);
      const std::uint8_t val = it == r.model.end() ? 0 : it->second;
      PinByte(s, var, val);
      if (s.death != StateDeath::kAlive) return std::nullopt;
    }
    return EvalPartial(expr, s.pinned);
  }

  // -- Memory ---------------------------------------------------------------

  bool InRodata(std::uint64_t addr, std::uint64_t width) const {
    return addr >= vm::kRodataBase &&
           addr + width <= vm::kRodataBase + t.rodata.size();
  }

  /// Interpreter-equivalent access check; kills the state on faults.
  bool ResolveAccess(SymState& s, std::uint64_t addr, std::uint64_t width,
                     bool for_write) {
    if (width == 0) return true;
    if (addr < vm::kNullGuard || addr + width < addr) {
      Die(s, StateDeath::kTrapped);
      return false;
    }
    if (addr >= vm::kRodataBase && addr < vm::kHeapBase) {
      if (!for_write && InRodata(addr, width)) return true;
      Die(s, StateDeath::kTrapped);
      return false;
    }
    if (addr >= vm::kMmapBase) {
      // The file mapping: readable up to the symbolic file size.
      if (!for_write &&
          addr + width <= vm::kMmapBase + opts.max_input_size) {
        return true;
      }
      Die(s, StateDeath::kTrapped);
      return false;
    }
    const SymState::HeapMap& heap = s.heap.get();
    auto it = heap.upper_bound(addr);
    if (it != heap.begin()) {
      --it;
      const SymAlloc& alloc = it->second;
      const std::uint64_t off = addr - it->first;
      if (off < alloc.size && off + width <= alloc.size && alloc.alive) {
        return true;
      }
    }
    Die(s, StateDeath::kTrapped);
    return false;
  }

  ExprRef LoadByte(SymState& s, std::uint64_t addr) {
    if (InRodata(addr, 1)) {
      return MakeConst(t.rodata[addr - vm::kRodataBase]);
    }
    if (addr >= vm::kMmapBase) {
      // A mapped file byte is the corresponding symbolic PoC byte.
      const auto off = static_cast<std::uint32_t>(addr - vm::kMmapBase);
      s.read_offsets.Insert(off);
      s.required_size = std::max<std::uint64_t>(s.required_size, off + 1);
      const auto pin = s.pinned.find(off);
      return pin != s.pinned.end() ? MakeConst(pin->second)
                                   : MakeInput(off);
    }
    if (const ExprRef* v = s.mem.Find(addr)) return *v;
    return MakeConst(0);  // allocations are zero-initialized
  }

  ExprRef LoadWide(SymState& s, std::uint64_t addr, unsigned width) {
    ExprRef out = LoadByte(s, addr);
    for (unsigned i = 1; i < width; ++i) {
      out = MakeBinOp(
          vm::Op::kOr, std::move(out),
          MakeBinOp(vm::Op::kShl, LoadByte(s, addr + i), MakeConst(8 * i)));
    }
    return out;
  }

  void StoreWide(SymState& s, std::uint64_t addr, unsigned width,
                 const ExprRef& value) {
    for (unsigned i = 0; i < width; ++i) {
      s.mem.Set(addr + i, MakeExtract(value, static_cast<std::uint8_t>(i)));
    }
  }

  // -- Reachability with call-stack continuations ---------------------------

  /// True when ep remains reachable if execution moves to `target` in the
  /// innermost frame: either the target block reaches ep directly, or
  /// some outer frame's resume block does after a return.
  bool StateCanReach(const SymState& s, vm::BlockId target) const {
    const SymFrame& top = s.frames.back();
    if (dmap.Reaches(top.fn, target)) return true;
    for (std::size_t i = s.frames.size() - 1; i-- > 0;) {
      if (dmap.Reaches(s.frames[i].fn, s.frames[i].block)) return true;
    }
    return false;
  }

  std::uint64_t DirectionCost(const SymState& s, vm::BlockId target) const {
    const auto d = dmap.Distance(s.frames.back().fn, target);
    return d ? *d : 0xFFFFFFFFull;
  }

  // -- Loop accounting -------------------------------------------------------

  /// Returns false (and kills the state) when traversing `from → to`
  /// would exceed θ for a constraint-accumulating (symbolic) loop.
  bool NoteEdge(SymState& s, vm::FuncId fn, vm::BlockId from,
                vm::BlockId to) {
    if (!cfg.IsBackEdge(fn, from, to)) return true;
    // Only loops that keep adding path constraints count toward θ —
    // those are the paper's symbolic "loop states". A concrete loop
    // re-traverses the edge with an unchanged constraint store.
    auto& entry = s.loop_counts.mut()[{fn, from, to}];
    if (entry.last_constraint_count != s.constraints.size() ||
        entry.count == 0) {
      entry.last_constraint_count = s.constraints.size();
      ++entry.count;
      if (entry.count > opts.theta) {
        EventKey key = NextEvent(s);
        {
          std::lock_guard<std::mutex> lock(log.mu);
          log.loop_dead = true;
          if (log.loop_dead_min_key.empty() ||
              KeyLess(key, log.loop_dead_min_key)) {
            log.loop_dead_min_key = std::move(key);
          }
        }
        Die(s, StateDeath::kLoopDead);
        return false;
      }
    }
    return true;
  }

  // ---------------------------------------------------------------------
  // Worklist management.
  // ---------------------------------------------------------------------

  void PushState(WorkerCtx& w, SymState&& s) {
    states_created_total.fetch_add(1, std::memory_order_relaxed);
    s.queued_charge = s.FootprintBytes();
    queued_footprint.fetch_add(s.queued_charge,
                               std::memory_order_relaxed);
    const std::uint64_t live =
        live_states.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t peak = peak_live_states.load(std::memory_order_relaxed);
    while (live > peak &&
           !peak_live_states.compare_exchange_weak(peak, live)) {
    }
    if (frontier) {
      w.deque->PushBottom(std::move(s));
      coord->NoteEnqueued();
    } else {
      worklist.push_back(std::move(s));
    }
  }

  SymState PopState() {  // serial mode only
    SymState s;
    if (directed) {
      s = std::move(worklist.back());
      worklist.pop_back();
    } else {
      s = std::move(worklist.front());
      worklist.pop_front();
    }
    queued_footprint.fetch_sub(s.queued_charge,
                               std::memory_order_relaxed);
    return s;
  }

  bool OverBudget(const SymState& current, std::string* why) {
    if (live_states.load(std::memory_order_relaxed) >
        opts.max_live_states) {
      *why = "live-state budget exceeded (" +
             std::to_string(opts.max_live_states) + " states)";
      return true;
    }
    const std::uint64_t mem =
        queued_footprint.load(std::memory_order_relaxed) +
        current.FootprintBytes();
    std::uint64_t peak = peak_memory_bytes.load(std::memory_order_relaxed);
    while (mem > peak &&
           !peak_memory_bytes.compare_exchange_weak(peak, mem)) {
    }
    if (mem > opts.max_memory_bytes) {
      *why = "memory budget exceeded";
      return true;
    }
    if (instructions_total.load(std::memory_order_relaxed) >
        opts.max_instructions) {
      *why = "global instruction budget exceeded";
      return true;
    }
    return false;
  }

  /// True when every event this state can still produce sorts after the
  /// committed goal in serial order — such a state cannot improve the
  /// result and would never have run in a serial execution.
  bool BeyondGoal(const EventKey& state_key) {
    if (!goal_seen.load(std::memory_order_acquire)) return false;
    std::lock_guard<std::mutex> lock(goal_mu);
    return have_goal && !KeyLess(state_key, goal_key);
  }

  // ---------------------------------------------------------------------
  // ep-encounter handling (P2 goal / P3 combining).
  // ---------------------------------------------------------------------

  enum class EpOutcome { kContinue, kGoalReached, kStateDead };

  EpOutcome HandleEpEntry(WorkerCtx& w, SymState& s,
                          const std::vector<ExprRef>& args,
                          SymexResult* final_result) {
    if (goal == Goal::kReachEp) {
      // P2 proper: the guiding constraints collected on the way to ep
      // must actually be solvable, otherwise this state only *appears*
      // to reach ep along an infeasible path.
      const SolveResult r = SolveConstraints(w, s);
      if (r.status == SolveStatus::kUnsat) {
        NoteUnsat(s, "guiding constraints unsatisfiable at ep");
        return EpOutcome::kStateDead;
      }
      if (HandleSolverGiveUp(s, r.status)) return EpOutcome::kStateDead;
      {
        std::lock_guard<std::mutex> lock(log.mu);
        log.reached_ep = true;
      }
      // Emit a witness input: a concrete file that drives T from its
      // entry to ep along this verified path (useful on its own as
      // directed test-input generation).
      Bytes witness(
          s.fsize_observed ? opts.max_input_size : s.required_size, 0);
      for (const auto& [off, val] : opts.solver.hints) {
        if (off < witness.size() && s.read_offsets.Contains(off)) {
          witness[off] = val;
        }
      }
      for (const auto& [off, val] : r.model) {
        if (off < witness.size()) witness[off] = val;
      }
      for (const auto& [off, val] : s.pinned) {
        if (off < witness.size()) witness[off] = val;
      }
      final_result->poc = std::move(witness);
      w.goal_key = NextEvent(s);
      return EpOutcome::kGoalReached;
    }
    {
      std::lock_guard<std::mutex> lock(log.mu);
      log.reached_ep = true;
    }

    const std::size_t idx = s.ep_count;
    ++s.ep_count;
    if (idx >= bunches->size()) {
      // More encounters than S had: the combining plan is exhausted.
      Die(s, StateDeath::kPruned);
      return EpOutcome::kStateDead;
    }
    const taint::Bunch& bunch = (*bunches)[idx];

    // Parameter matching: "OCTOPOCS executes ep in T with the same
    // parameters as those used in S". Pointer-valued arguments are
    // skipped: allocation addresses are execution-specific.
    if (opts.check_ep_args) {
      const std::size_t n = std::min(args.size(), bunch.ep_args.size());
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t recorded = bunch.ep_args[i];
        if (recorded >= vm::kRodataBase) continue;  // pointer heuristic
        if (const auto v = EvalPartial(args[i], s.pinned)) {
          if (*v != recorded) {
            NoteUnsat(s, "ep argument " + std::to_string(i) +
                             " is fixed to a different value in T");
            return EpOutcome::kStateDead;
          }
        } else {
          AddConstraint(s, MakeBinOp(vm::Op::kCmpEq, args[i],
                                     MakeConst(recorded)));
          if (s.death != StateDeath::kAlive) return EpOutcome::kStateDead;
        }
      }
    }

    // Bunch placement at the file-position indicator (P3.1): bytes S
    // consumed at or after its ep-time position are relocated relative
    // to T's position. Bytes consumed *before* ep (e.g. header fields
    // that reach ℓ through ep's parameters) are not pinned here — the
    // parameter-matching constraints above already force T's own input
    // bytes to deliver the same values at T's own offsets; pinning them
    // at S's absolute offsets would corrupt shifted containers.
    for (const auto& [off, val] : bunch.bytes) {
      if (off < bunch.file_pos_at_ep) continue;
      const std::uint64_t target =
          s.file_pos + (off - bunch.file_pos_at_ep);
      PinByte(s, target, val);
      if (s.death != StateDeath::kAlive) return EpOutcome::kStateDead;
      s.required_size = std::max(s.required_size, target + 1);
      s.bunch_targets.push_back(static_cast<std::uint32_t>(target));
    }

    if (s.ep_count == bunches->size()) {
      // Final encounter: keep executing *through* ℓ so the symbolic
      // file grows to cover every byte ℓ consumes on the way to the
      // crash; the state finalizes (P3.3) when it traps or leaves ℓ.
      s.combining_done = true;
    }
    (void)final_result;
    return EpOutcome::kContinue;
  }

  /// P3.3: solves the accumulated system into poc'. Returns true when
  /// the run is finished (success); on unsat/unknown the state's death
  /// is recorded and false is returned.
  bool FinalizeState(WorkerCtx& w, SymState& s, SymexResult* result) {
    const SolveResult r = SolveConstraints(w, s);
    if (r.status == SolveStatus::kUnsat) {
      NoteUnsat(s, "combined constraint system is unsatisfiable");
      return false;
    }
    if (HandleSolverGiveUp(s, r.status)) return false;
    const std::uint64_t len =
        s.fsize_observed ? opts.max_input_size : s.required_size;
    Bytes poc(len, 0);
    // Bytes the verified path read but never constrained cannot
    // influence T's execution along that path (any byte feeding a
    // branch or address was constrained or concretized); fill them from
    // the hints (the original PoC) so Type-I reforms keep their guiding
    // input verbatim. Bytes the path never read stay at the solver
    // default — they are outside the verification claim.
    for (const auto& [off, val] : opts.solver.hints) {
      if (off < poc.size() && s.read_offsets.Contains(off)) poc[off] = val;
    }
    for (const auto& [off, val] : r.model) {
      if (off < poc.size()) poc[off] = val;
    }
    for (const auto& [off, val] : s.pinned) {
      if (off < poc.size()) poc[off] = val;
    }
    result->status = SymexStatus::kPocGenerated;
    result->poc = std::move(poc);
    result->bunch_offsets = s.bunch_targets;
    w.goal_key = NextEvent(s);
    return true;
  }

  // ---------------------------------------------------------------------
  // Single-state execution until death, fork-exhaustion, or goal.
  // ---------------------------------------------------------------------

  /// Runs `s` until it dies or the goal is met. Forked siblings are
  /// pushed onto the worker's queue. Returns true when this worker's
  /// run is finished (result filled in: goal reached, or budget/
  /// deadline tripped).
  bool RunState(WorkerCtx& w, SymState s, SymexResult* result) {
    while (s.death == StateDeath::kAlive) {
      if (s.instructions > opts.max_state_instructions) {
        Die(s, StateDeath::kDepthLimit);
        break;
      }
      ++s.instructions;
      const std::uint64_t global =
          instructions_total.fetch_add(1, std::memory_order_relaxed) + 1;
      if ((global & 0x3FF) == 0) {
        std::string why;
        if (OverBudget(s, &why)) {
          result->status = SymexStatus::kBudget;
          result->detail = why;
          return true;
        }
        if (w.cancel.ShouldStop()) {
          result->status = SymexStatus::kDeadline;
          result->detail = "wall-clock deadline expired mid-exploration";
          return true;
        }
        if (frontier) {
          // Another worker committed a goal this state can no longer
          // beat (all its future events sort after the goal — a serial
          // run would never have executed them), or the run aborted:
          // abandon the state without finalizing it.
          if (coord->aborted()) return false;
          if (BeyondGoal(s.dfs_key)) return false;
        }
      }

      SymFrame& frame = s.frames.back();
      const vm::Function& fn = t.Fn(frame.fn);
      const vm::Block& block = fn.blocks[frame.block];

      if (frame.ip >= block.instrs.size()) {
        if (!StepTerminator(w, s, result)) {
          if (result->status == SymexStatus::kPocGenerated ||
              result->status == SymexStatus::kReachedEp) {
            return true;
          }
          if (w.requeue_current && s.death == StateDeath::kAlive) {
            w.requeue_current = false;
            PushState(w, std::move(s));
            return false;
          }
          break;  // state died
        }
        continue;
      }
      const vm::Instr& ins = block.instrs[frame.ip];
      ++frame.ip;
      if (!StepInstr(w, s, ins, result)) {
        if (result->status == SymexStatus::kPocGenerated ||
            result->status == SymexStatus::kReachedEp) {
          return true;
        }
        break;  // state died
      }
    }
    // A state that died *after* the last bunch was placed carries the
    // complete combining record: a trap here is the expected crash, an
    // exit or limit still yields a complete constraint system. Solve it.
    if (goal == Goal::kGeneratePoc && s.combining_done &&
        (s.death == StateDeath::kTrapped || s.death == StateDeath::kExited ||
         s.death == StateDeath::kDepthLimit ||
         s.death == StateDeath::kLoopDead ||
         s.death == StateDeath::kPruned)) {
      if (FinalizeState(w, s, result)) return true;
    }
    return false;
  }

  /// Terminators. Returns false when the state died or the run finished
  /// (check result->status).
  bool StepTerminator(WorkerCtx& w, SymState& s, SymexResult* result) {
    SymFrame& frame = s.frames.back();
    const vm::Terminator& term = t.Fn(frame.fn).blocks[frame.block].term;
    switch (term.kind) {
      case vm::TermKind::kJump:
        if (!NoteEdge(s, frame.fn, frame.block, term.target)) return false;
        frame.block = term.target;
        frame.ip = 0;
        return true;
      case vm::TermKind::kBranch:
        return StepBranch(w, s, term, result);
      case vm::TermKind::kReturn: {
        const ExprRef value = term.returns_value ? frame.regs[term.cond]
                                                 : MakeConst(0);
        const vm::Reg dest = frame.ret_reg;
        s.frames.pop_back();
        if (s.depth_inside > 0) {
          --s.depth_inside;
          if (s.depth_inside == 0 && s.combining_done &&
              goal == Goal::kGeneratePoc) {
            // ℓ exited without crashing after the last bunch: finalize
            // here — Algorithm 2 terminates T after the final encounter.
            FinalizeState(w, s, result);
            return false;  // success or state death; RunState inspects
          }
        }
        if (s.frames.empty()) {
          Die(s, StateDeath::kExited);
          return false;
        }
        s.frames.back().regs[dest] = value;
        return true;
      }
    }
    return true;
  }

  bool StepBranch(WorkerCtx& w, SymState& s, const vm::Terminator& term,
                  SymexResult* result) {
    (void)result;
    SymFrame& frame = s.frames.back();
    const ExprRef cond = frame.regs[term.cond];
    const vm::FuncId fn = frame.fn;
    const vm::BlockId from = frame.block;

    if (const auto v = EvalPartial(cond, s.pinned)) {
      const vm::BlockId to = *v != 0 ? term.target : term.fallthrough;
      if (!NoteEdge(s, fn, from, to)) return false;
      frame.block = to;
      frame.ip = 0;
      return true;
    }

    // Symbolic condition: enumerate viable directions.
    struct Direction {
      vm::BlockId to;
      ExprRef constraint;
      std::uint64_t cost;
    };
    std::vector<Direction> dirs;
    const auto consider = [&](vm::BlockId to, ExprRef constraint) {
      if (directed && s.depth_inside == 0 && !StateCanReach(s, to)) return;
      dirs.push_back({to, std::move(constraint), DirectionCost(s, to)});
    };
    consider(term.target, cond);
    consider(term.fallthrough,
             MakeBinOp(vm::Op::kCmpEq, cond, MakeConst(0)));

    if (dirs.empty()) {
      Die(s, StateDeath::kPruned);
      return false;
    }
    // Directed mode proves each CFG-viable direction satisfiable before
    // committing or forking. Successive checks over one state extend a
    // shared prefix, which is the workload the incremental cache is
    // built for (exact hits on the committed direction, model reuse and
    // slicing on the extensions, subsumption on UNSAT prefixes). Naive
    // mode keeps the fork-everything behaviour — the Table IV baseline
    // measures exactly that state blow-up.
    if (directed) {
      std::vector<Direction> live;
      live.reserve(dirs.size());
      for (Direction& d : dirs) {
        const SolveStatus st = BranchFeasible(w, s, d.constraint);
        if (st == SolveStatus::kUnsat) {
          RecordUnsat(s, "branch direction to block " +
                             std::to_string(d.to) + " is infeasible");
          continue;
        }
        // kUnknown/kCancelled directions stay in: the downstream query
        // sites classify solver give-ups with the right status.
        live.push_back(std::move(d));
      }
      dirs = std::move(live);
      if (dirs.empty()) {
        // Both infeasibilities were just recorded above.
        Die(s, StateDeath::kUnsat);
        return false;
      }
    }
    // Prefer the direction closer to ep (directed) or the taken edge
    // (naive); the sibling forks.
    if (directed && dirs.size() == 2 && dirs[1].cost < dirs[0].cost) {
      std::swap(dirs[0], dirs[1]);
    }
    if (dirs.size() == 2) {
      support::fault::MaybeThrow(support::FaultSite::kStateFork);
      // The fork is this state's n-th event; its key extension inverts
      // n so later forks sort earlier — reproducing the serial LIFO pop
      // order in key space (see state.h).
      const std::uint32_t n = s.event_seq++;
      SymState fork = s;
      fork.dfs_key.push_back(0xFFFFFFFFu - n);
      fork.event_seq = 0;
      AddConstraint(fork, dirs[1].constraint);
      if (fork.death == StateDeath::kAlive &&
          NoteEdge(fork, fn, from, dirs[1].to)) {
        fork.frames.back().block = dirs[1].to;
        fork.frames.back().ip = 0;
        PushState(w, std::move(fork));
      }
    }
    AddConstraint(s, dirs[0].constraint);
    if (s.death != StateDeath::kAlive) return false;
    if (!NoteEdge(s, fn, from, dirs[0].to)) return false;
    frame.block = dirs[0].to;
    frame.ip = 0;
    if (!directed && dirs.size() == 2) {
      // Breadth-first: after a genuine two-way fork the continuing state
      // goes back to the queue so exploration interleaves — this is what
      // makes naive symbolic execution accumulate states (Table IV).
      w.requeue_current = true;
      return false;
    }
    return true;
  }

  /// Non-terminator instructions. Returns false when the state died or
  /// the run finished (check result->status).
  bool StepInstr(WorkerCtx& w, SymState& s, const vm::Instr& ins,
                 SymexResult* result) {
    using vm::Op;
    auto& regs = s.frames.back().regs;
    switch (ins.op) {
      case Op::kMovImm:
        regs[ins.a] = MakeConst(ins.imm);
        return true;
      case Op::kMov:
        regs[ins.a] = regs[ins.b];
        return true;
      case Op::kNot:
        regs[ins.a] = MakeNot(regs[ins.b]);
        return true;
      case Op::kAddImm:
        regs[ins.a] = MakeBinOp(Op::kAdd, regs[ins.b], MakeConst(ins.imm));
        return true;
      case Op::kDivU:
      case Op::kRemU: {
        const auto div = EvalPartial(regs[ins.c], s.pinned);
        if (div && *div == 0) {
          Die(s, StateDeath::kTrapped);
          return false;
        }
        if (!div) {
          // Guiding execution must survive to ep: require a nonzero
          // divisor on this path.
          AddConstraint(s, MakeBinOp(Op::kCmpNe, regs[ins.c], MakeConst(0)));
          if (s.death != StateDeath::kAlive) return false;
        }
        regs[ins.a] = MakeBinOp(ins.op, regs[ins.b], regs[ins.c]);
        return true;
      }
      case Op::kLoad: {
        const auto addr = Concretize(
            w, s, MakeBinOp(Op::kAdd, regs[ins.b], MakeConst(ins.imm)));
        if (!addr) return false;
        if (!ResolveAccess(s, *addr, ins.width, /*for_write=*/false)) {
          return false;
        }
        regs[ins.a] = LoadWide(s, *addr, ins.width);
        return true;
      }
      case Op::kStore: {
        const auto addr = Concretize(
            w, s, MakeBinOp(Op::kAdd, regs[ins.b], MakeConst(ins.imm)));
        if (!addr) return false;
        if (!ResolveAccess(s, *addr, ins.width, /*for_write=*/true)) {
          return false;
        }
        StoreWide(s, *addr, ins.width, regs[ins.a]);
        return true;
      }
      case Op::kAlloc: {
        support::fault::MaybeThrow(support::FaultSite::kAllocation);
        const auto size = Concretize(w, s, regs[ins.b]);
        if (!size) return false;
        const std::uint64_t base = s.cursor.Take(*size);
        s.heap.mut()[base] = SymAlloc{*size, true};
        regs[ins.a] = MakeConst(base);
        return true;
      }
      case Op::kFree: {
        const auto addr = Concretize(w, s, regs[ins.a]);
        if (!addr) return false;
        SymState::HeapMap& heap = s.heap.mut();
        auto it = heap.find(*addr);
        if (it == heap.end() || !it->second.alive) {
          Die(s, StateDeath::kTrapped);
          return false;
        }
        it->second.alive = false;
        return true;
      }
      case Op::kRead: {
        const auto dst = Concretize(w, s, regs[ins.b]);
        if (!dst) return false;
        const auto want = Concretize(w, s, regs[ins.c]);
        if (!want) return false;
        const std::uint64_t avail = s.file_pos < opts.max_input_size
                                        ? opts.max_input_size - s.file_pos
                                        : 0;
        const std::uint64_t n = std::min(*want, avail);
        if (n > 0) {
          // The file must contain these bytes even if the access below
          // faults — a read that overflows its buffer only reproduces
          // concretely when poc' is long enough to supply it. The same
          // goes for the read-coverage record used by hint filling.
          s.required_size = std::max(s.required_size, s.file_pos + n);
          for (std::uint64_t i = 0; i < n; ++i) {
            s.read_offsets.Insert(static_cast<std::uint32_t>(s.file_pos + i));
          }
          if (!ResolveAccess(s, *dst, n, /*for_write=*/true)) return false;
          for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t off = s.file_pos + i;
            const auto pin = s.pinned.find(static_cast<std::uint32_t>(off));
            s.mem.Set(*dst + i,
                      pin != s.pinned.end()
                          ? MakeConst(pin->second)
                          : MakeInput(static_cast<std::uint32_t>(off)));
          }
          s.file_pos += n;
          s.required_size = std::max(s.required_size, s.file_pos);
        }
        regs[ins.a] = MakeConst(n);
        return true;
      }
      case Op::kSeek: {
        const auto pos = Concretize(w, s, regs[ins.b]);
        if (!pos) return false;
        s.file_pos = *pos;
        return true;
      }
      case Op::kMMap:
        regs[ins.a] = MakeConst(vm::kMmapBase);
        return true;
      case Op::kTell:
        regs[ins.a] = MakeConst(s.file_pos);
        return true;
      case Op::kFileSize:
        s.fsize_observed = true;
        regs[ins.a] = MakeConst(opts.max_input_size);
        return true;
      case Op::kFnAddr:
        regs[ins.a] = MakeConst(ins.imm);
        return true;
      case Op::kAssert: {
        const auto v = EvalPartial(regs[ins.a], s.pinned);
        if (v && *v == 0) {
          Die(s, StateDeath::kTrapped);
          return false;
        }
        if (!v) {
          AddConstraint(s, regs[ins.a]);
          if (s.death != StateDeath::kAlive) return false;
        }
        return true;
      }
      case Op::kTrap:
        Die(s, StateDeath::kTrapped);
        return false;
      case Op::kNop:
        return true;
      case Op::kCall:
      case Op::kICall:
        return StepCall(w, s, ins, result);
      default:
        // Classified via the shared metadata table (vm/op_info.h) so the
        // symbolic dispatch cannot drift from the interpreter's.
        if (vm::GetOpInfo(ins.op).is_binary_alu) {
          regs[ins.a] = MakeBinOp(ins.op, regs[ins.b], regs[ins.c]);
          return true;
        }
        Die(s, StateDeath::kTrapped);
        return false;
    }
  }

  bool StepCall(WorkerCtx& w, SymState& s, const vm::Instr& ins,
                SymexResult* result) {
    auto& regs = s.frames.back().regs;
    vm::FuncId callee;
    if (ins.op == vm::Op::kCall) {
      callee = static_cast<vm::FuncId>(ins.imm);
    } else {
      const auto target = Concretize(w, s, regs[ins.b]);
      if (!target) return false;
      if (*target >= t.functions.size()) {
        Die(s, StateDeath::kTrapped);
        return false;
      }
      callee = static_cast<vm::FuncId>(*target);
    }
    const vm::Function& callee_fn = t.Fn(callee);
    if (ins.args.size() != callee_fn.num_params ||
        s.frames.size() >= opts.max_call_depth) {
      Die(s, StateDeath::kTrapped);
      return false;
    }

    std::vector<ExprRef> args;
    args.reserve(ins.args.size());
    for (const vm::Reg r : ins.args) args.push_back(regs[r]);

    const bool entering_l =
        s.depth_inside == 0 && callee == ep && !s.combining_done;
    if (s.depth_inside > 0) ++s.depth_inside;

    if (entering_l) {
      const EpOutcome outcome = HandleEpEntry(w, s, args, result);
      if (outcome == EpOutcome::kGoalReached) {
        if (goal == Goal::kReachEp) {
          result->status = SymexStatus::kReachedEp;
        }
        return false;  // finished (result->status signals success)
      }
      if (outcome == EpOutcome::kStateDead) return false;
      s.depth_inside = 1;  // ExploreWhileEp: continue through ℓ
    }

    SymFrame next;
    next.fn = callee;
    next.ret_reg = ins.a;
    next.regs.assign(callee_fn.num_regs, MakeConst(0));
    for (std::size_t i = 0; i < args.size(); ++i) {
      next.regs[i] = std::move(args[i]);
    }
    s.frames.push_back(std::move(next));
    return true;
  }

  // ---------------------------------------------------------------------
  // Frontier worker (directed mode, frontier_jobs > 1).
  // ---------------------------------------------------------------------

  void CommitFinished(WorkerCtx& w, SymexResult&& local) {
    if (local.status == SymexStatus::kPocGenerated ||
        local.status == SymexStatus::kReachedEp) {
      std::lock_guard<std::mutex> lock(goal_mu);
      if (!have_goal || KeyLess(w.goal_key, goal_key)) {
        have_goal = true;
        goal_key = w.goal_key;
        goal_result = std::move(local);
      }
      goal_seen.store(true, std::memory_order_release);
      return;
    }
    // Budget / deadline: abort the whole exploration. Which worker
    // trips first is scheduling-dependent — aborts are the one
    // documented nondeterministic exit (DESIGN.md §10).
    {
      std::lock_guard<std::mutex> lock(goal_mu);
      if (!have_abort) {
        have_abort = true;
        abort_result = std::move(local);
      }
    }
    coord->Abort();
  }

  void WorkerLoop(
      WorkerCtx& w, SharedInternTable& intern,
      std::vector<std::unique_ptr<support::WorkStealingDeque<SymState>>>&
          deques) {
    SharedInternBinding bind(intern);
    const std::size_t n = deques.size();
    for (;;) {
      const std::uint64_t seen = coord->Version();
      SymState s;
      bool got = w.deque->PopBottom(&s);
      for (std::size_t i = 1; i < n && !got; ++i) {
        got = deques[(w.id + i) % n]->StealTop(&s);
        if (got) frontier_steals_total.fetch_add(1, std::memory_order_relaxed);
      }
      if (!got) {
        if (!coord->WaitForWork(seen)) return;
        continue;
      }
      queued_footprint.fetch_sub(s.queued_charge,
                                 std::memory_order_relaxed);
      try {
        bool finished = false;
        SymexResult local;
        std::string why;
        if (coord->aborted() || BeyondGoal(s.dfs_key)) {
          // Drop without running: aborted, or provably after the
          // committed goal in serial order.
        } else if (w.cancel.Check()) {
          local.status = SymexStatus::kDeadline;
          local.detail = "wall-clock deadline expired between states";
          finished = true;
        } else if (OverBudget(s, &why)) {
          local.status = SymexStatus::kBudget;
          local.detail = why;
          finished = true;
        } else {
          finished = RunState(w, std::move(s), &local);
        }
        if (finished) CommitFinished(w, std::move(local));
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        coord->Abort();
      }
      live_states.fetch_sub(1, std::memory_order_relaxed);
      coord->NoteDone();
    }
  }

  // ---------------------------------------------------------------------
  // Top-level drive loop.
  // ---------------------------------------------------------------------

  SymexResult Execute() {
    const auto start = std::chrono::steady_clock::now();
    SymexResult result;

    frontier = directed && opts.frontier_jobs > 1;

    // Hash-cons every expression this run builds. The scope also
    // underwrites the solver caches: constraint sequences stay pointer-
    // canonical for exactly as long as the run lives. Frontier mode
    // needs the *shared* table — states migrate between workers via
    // stealing, and a node built by one worker must stay canonical when
    // another worker extends the constraint sequence it appears in.
    std::optional<InternScope> scope;
    std::optional<SharedInternTable> shared;
    std::optional<SharedInternBinding> main_bind;
    if (frontier) {
      shared.emplace();
      main_bind.emplace(*shared);
    } else {
      scope.emplace();
    }

    dmap = cfg.BackwardReachability(ep);
    if (directed && !dmap.EntryReaches()) {
      result.status = SymexStatus::kCfgUnreachable;
      result.detail = "backward path finding: no path from entry to ep";
      return result;
    }

    SymState initial;
    SymFrame frame;
    frame.fn = t.entry;
    frame.regs.assign(t.Fn(t.entry).num_regs, MakeConst(0));
    initial.frames.push_back(std::move(frame));

    bool finished = false;
    std::vector<WorkerCtx> workers;

    if (!frontier) {
      workers.resize(1);
      WorkerCtx& w = workers[0];
      w.cancel = cancel;
      PushState(w, std::move(initial));
      while (!worklist.empty() && !finished) {
        std::string why;
        if (cancel.Check()) {
          result.status = SymexStatus::kDeadline;
          result.detail = "wall-clock deadline expired between states";
          finished = true;
          break;
        }
        SymState s = PopState();
        if (OverBudget(s, &why)) {
          result.status = SymexStatus::kBudget;
          result.detail = why;
          finished = true;
          break;
        }
        finished = RunState(w, std::move(s), &result);
        live_states.fetch_sub(1, std::memory_order_relaxed);
      }
    } else {
      support::StealCoordinator coordinator;
      coord = &coordinator;
      const unsigned jobs = opts.frontier_jobs;
      std::vector<std::unique_ptr<support::WorkStealingDeque<SymState>>>
          deques;
      deques.reserve(jobs);
      workers.resize(jobs);
      for (unsigned i = 0; i < jobs; ++i) {
        deques.push_back(
            std::make_unique<support::WorkStealingDeque<SymState>>());
        workers[i].id = i;
        workers[i].cancel = cancel;
        workers[i].deque = deques[i].get();
      }
      PushState(workers[0], std::move(initial));
      std::vector<std::thread> threads;
      threads.reserve(jobs);
      for (unsigned i = 0; i < jobs; ++i) {
        threads.emplace_back(
            [this, &w = workers[i], &shared, &deques] {
              WorkerLoop(w, *shared, deques);
            });
      }
      for (std::thread& th : threads) th.join();
      coord = nullptr;
      if (first_error) std::rethrow_exception(first_error);
      if (have_goal) {
        result = std::move(goal_result);
        finished = true;
      } else if (have_abort) {
        result = std::move(abort_result);
        finished = true;
      }
    }

    if (!finished) {
      // Worklist drained: classify (paper §III-D cases ii/iii and P3.3).
      // Deadline first: once the clock has tripped, every other
      // observation (unsat, budget) is an artefact of states dying from
      // cancellation, and must not masquerade as a program verdict.
      // Drain means *every* state ran to completion in both modes, so
      // the observation sets — and this classification — are identical
      // regardless of worker interleaving.
      if (log.deadline) {
        result.status = SymexStatus::kDeadline;
        result.detail =
            "wall-clock deadline expired during constraint solving";
      } else if (log.solver_budget) {
        result.status = SymexStatus::kSolverFailure;
        result.detail = "constraint solving exceeded its budget";
      } else if (log.unsat && !log.loop_dead) {
        // Unsat observations are a proof of unreachability only when
        // the search was complete. A state cut by the loop cap means
        // paths beyond θ iterations were never explored — the same
        // infeasibility could be a θ artefact (a loop whose exit only
        // becomes satisfiable past the cap), so claim the conservative
        // dead end below instead of a proof (§VII's wrong-verdict
        // caution; the fuzz-fallback rung may still find a witness).
        result.status = SymexStatus::kUnsat;
        // The serial drive loop overwrites the detail chronologically;
        // frontier workers record out of order, so the event-key-maximal
        // detail is the one the serial run would have kept last.
        result.detail =
            frontier ? log.unsat_detail_keyed : log.unsat_detail_chrono;
      } else if (!log.reached_ep) {
        result.status = SymexStatus::kProgramDead;
        result.detail = "every state died before reaching ep";
      } else {
        result.status = SymexStatus::kProgramDead;
        result.detail = "ep was reached but combining never completed";
      }
    }

    stats.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    stats.instructions = instructions_total.load();
    stats.solver_steps = solver_steps_total.load();
    stats.states_created = states_created_total.load();
    stats.peak_live_states = peak_live_states.load();
    stats.peak_memory_bytes = peak_memory_bytes.load();
    for (const WorkerCtx& w : workers) {
      const SolverCache::Stats& cs = w.cache.stats();
      stats.solver_cache_hits += cs.hits;
      stats.solver_cache_misses += cs.misses;
      stats.solver_exact_hits += cs.exact_hits;
      stats.solver_model_reuse_hits += cs.model_reuse_hits;
      stats.solver_subsumption_hits += cs.subsumption_hits;
    }
    const InternScope::Stats is =
        frontier ? shared->stats() : scope->stats();
    stats.expr_intern_hits = is.hits;
    stats.expr_intern_nodes = is.nodes;
    stats.frontier_steals = frontier_steals_total.load();
    if (opts.tracer != nullptr) {
      support::Tracer& tr = *opts.tracer;
      const auto i64 = [](std::uint64_t v) {
        return static_cast<std::int64_t>(v);
      };
      tr.Counter("symex.instructions", i64(stats.instructions));
      tr.Counter("symex.states_created", i64(stats.states_created));
      tr.Counter("symex.solver_steps", i64(stats.solver_steps));
      tr.Counter("symex.solver_cache_hits", i64(stats.solver_cache_hits));
      tr.Counter("symex.solver_cache_misses", i64(stats.solver_cache_misses));
      tr.Counter("symex.expr_intern_hits", i64(stats.expr_intern_hits));
      tr.Counter("symex.frontier_steals", i64(stats.frontier_steals));
    }
    result.stats = stats;
    // A goal commit reconstructs the serial view: a loop-dead kill only
    // "happened" if the serial run would have executed it before
    // stopping at the goal, i.e. its event key precedes the goal's. In
    // every serial mode (and frontier drains/aborts) the raw flag is
    // already the serial truth.
    bool loop_dead = log.loop_dead;
    if (frontier && have_goal) {
      loop_dead = log.loop_dead &&
                  KeyLess(log.loop_dead_min_key, goal_key);
    }
    result.loop_dead_observed = loop_dead;
    return result;
  }
};

SymExecutor::SymExecutor(const vm::Program& t, const cfg::Cfg& cfg,
                         vm::FuncId ep, ExecutorOptions options)
    : t_(t), cfg_(cfg), ep_(ep), options_(options) {}

SymexResult SymExecutor::ReachEp(bool directed) {
  Run run{t_, cfg_, ep_, options_, Run::Goal::kReachEp, directed};
  return run.Execute();
}

SymexResult SymExecutor::GeneratePoc(
    const std::vector<taint::Bunch>& bunches) {
  Run run{t_, cfg_, ep_, options_, Run::Goal::kGeneratePoc,
          /*directed=*/true, &bunches};
  return run.Execute();
}

}  // namespace octopocs::symex
