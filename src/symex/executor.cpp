#include "symex/executor.h"

#include <algorithm>
#include <chrono>

#include "support/fault.h"

namespace octopocs::symex {

std::string_view SymexStatusName(SymexStatus status) {
  switch (status) {
    case SymexStatus::kPocGenerated: return "poc-generated";
    case SymexStatus::kReachedEp: return "reached-ep";
    case SymexStatus::kCfgUnreachable: return "cfg-unreachable";
    case SymexStatus::kProgramDead: return "program-dead";
    case SymexStatus::kUnsat: return "unsat";
    case SymexStatus::kBudget: return "budget-exhausted";
    case SymexStatus::kSolverFailure: return "solver-failure";
    case SymexStatus::kDeadline: return "deadline-expired";
  }
  return "?";
}

namespace {

/// If `constraint` is a top-level equality between a single input byte
/// and a constant, expose it as a pin so EvalPartial can fold it later
/// without a solver round trip.
std::optional<std::pair<std::uint32_t, std::uint8_t>> AsBytePin(
    const ExprRef& constraint) {
  if (constraint->kind != ExprKind::kBinOp ||
      constraint->op != vm::Op::kCmpEq) {
    return std::nullopt;
  }
  const Expr* input = nullptr;
  const Expr* konst = nullptr;
  if (constraint->lhs->kind == ExprKind::kInput &&
      constraint->rhs->IsConst()) {
    input = constraint->lhs.get();
    konst = constraint->rhs.get();
  } else if (constraint->rhs->kind == ExprKind::kInput &&
             constraint->lhs->IsConst()) {
    input = constraint->rhs.get();
    konst = constraint->lhs.get();
  }
  if (input == nullptr || konst->value > 0xFF) return std::nullopt;
  return std::make_pair(input->offset,
                        static_cast<std::uint8_t>(konst->value));
}

}  // namespace

struct SymExecutor::Run {
  enum class Goal { kReachEp, kGeneratePoc };

  Run(const vm::Program& t_in, const cfg::Cfg& cfg_in, vm::FuncId ep_in,
      const ExecutorOptions& opts_in, Goal goal_in, bool directed_in,
      const std::vector<taint::Bunch>* bunches_in = nullptr)
      : t(t_in),
        cfg(cfg_in),
        ep(ep_in),
        opts(opts_in),
        goal(goal_in),
        directed(directed_in),
        bunches(bunches_in),
        cancel(opts_in.cancel) {}

  const vm::Program& t;
  const cfg::Cfg& cfg;
  vm::FuncId ep;
  const ExecutorOptions& opts;
  Goal goal;
  bool directed;
  const std::vector<taint::Bunch>* bunches = nullptr;

  cfg::DistanceMap dmap;
  std::deque<SymState> worklist;
  std::uint64_t queued_footprint = 0;  // Σ footprints of queued states
  SymexStats stats;
  /// Memoized verdicts for this run's feasibility/concretization
  /// queries. Valid exactly as long as the run's InternScope keeps the
  /// constraint nodes canonical (see SolverCache docs).
  SolverCache solver_cache;

  support::CancelToken cancel;  // local copy; poll counters are ours

  bool reached_ep_ever = false;
  bool unsat_observed = false;
  bool solver_budget_observed = false;
  bool loop_dead_observed = false;
  bool deadline_observed = false;
  std::string last_unsat_detail;
  /// Backs SolveConstraints returns that must NOT enter the cache: a
  /// cancelled solve says nothing about the query, only about the clock,
  /// so memoizing it would poison identical queries in a future (larger-
  /// budget) run sharing this cache's lifetime rules.
  SolveResult cancelled_scratch;

  // ---------------------------------------------------------------------
  // State helpers.
  // ---------------------------------------------------------------------

  SymFrame& Top(SymState& s) { return s.frames.back(); }

  void Die(SymState& s, StateDeath why) { s.death = why; }

  void NoteUnsat(SymState& s, std::string detail) {
    unsat_observed = true;
    last_unsat_detail = std::move(detail);
    Die(s, StateDeath::kUnsat);
  }

  /// Adds a path constraint, harvesting byte pins where possible.
  void AddConstraint(SymState& s, ExprRef expr) {
    if (expr->IsConst()) {
      if (expr->value == 0) NoteUnsat(s, "constant-false path constraint");
      return;
    }
    if (const auto pin = AsBytePin(expr)) {
      const auto [off, val] = *pin;
      auto it = s.pinned.find(off);
      if (it != s.pinned.end() && it->second != val) {
        NoteUnsat(s, "conflicting byte pins at offset " +
                         std::to_string(off));
        return;
      }
      s.pinned[off] = val;
    }
    s.constraints.push_back(std::move(expr));
  }

  /// Pins input byte `off` to `val`; conflict kills the state.
  void PinByte(SymState& s, std::uint64_t off, std::uint8_t val) {
    if (off >= opts.max_input_size) {
      NoteUnsat(s, "bunch byte beyond the symbolic file bound");
      return;
    }
    AddConstraint(s, MakeBinOp(vm::Op::kCmpEq,
                               MakeInput(static_cast<std::uint32_t>(off)),
                               MakeConst(val)));
  }

  /// Satisfiability of `s`'s path constraints, memoized: states along a
  /// shared path prefix carry pointer-identical constraint sequences, so
  /// the executor's dominant repeated query pattern hits the cache
  /// instead of re-running the CSP search.
  const SolveResult& SolveConstraints(const SymState& s) {
    if (const SolveResult* hit =
            solver_cache.Lookup(s.constraints, s.pinned,
                                opts.solver.hints)) {
      return *hit;
    }
    ByteSolver solver(opts.solver);
    for (const ExprRef& c : s.constraints) solver.Add(c);
    SolveResult r = solver.Solve();
    stats.solver_steps += r.steps;
    if (r.status == SolveStatus::kCancelled) {
      cancelled_scratch = std::move(r);
      return cancelled_scratch;
    }
    return solver_cache.Insert(s.constraints, std::move(r));
  }

  /// Shared handling for a non-SAT/UNSAT solver verdict: records which
  /// kind of giving-up happened and kills the state. Returns true when
  /// it consumed the verdict (i.e. status was kUnknown or kCancelled).
  bool HandleSolverGiveUp(SymState& s, SolveStatus status) {
    if (status == SolveStatus::kUnknown) {
      solver_budget_observed = true;
      Die(s, StateDeath::kSolverBudget);
      return true;
    }
    if (status == SolveStatus::kCancelled) {
      deadline_observed = true;
      Die(s, StateDeath::kSolverBudget);
      return true;
    }
    return false;
  }

  /// Concrete value of `expr` in this state: fold under pins, otherwise
  /// ask the solver for a model and pin the participating bytes to it
  /// (angr-style concretization). Kills the state on unsat/budget.
  std::optional<std::uint64_t> Concretize(SymState& s, const ExprRef& expr) {
    if (const auto v = EvalPartial(expr, s.pinned)) return v;
    const SolveResult& r = SolveConstraints(s);
    if (r.status == SolveStatus::kUnsat) {
      NoteUnsat(s, "path constraints unsatisfiable at concretization");
      return std::nullopt;
    }
    if (HandleSolverGiveUp(s, r.status)) return std::nullopt;
    SortedSmallSet<std::uint32_t> vars;
    CollectInputs(expr, vars);
    for (const std::uint32_t var : vars) {
      const auto it = r.model.find(var);
      const std::uint8_t val = it == r.model.end() ? 0 : it->second;
      PinByte(s, var, val);
      if (s.death != StateDeath::kAlive) return std::nullopt;
    }
    return EvalPartial(expr, s.pinned);
  }

  // -- Memory ---------------------------------------------------------------

  bool InRodata(std::uint64_t addr, std::uint64_t width) const {
    return addr >= vm::kRodataBase &&
           addr + width <= vm::kRodataBase + t.rodata.size();
  }

  /// Interpreter-equivalent access check; kills the state on faults.
  bool ResolveAccess(SymState& s, std::uint64_t addr, std::uint64_t width,
                     bool for_write) {
    if (width == 0) return true;
    if (addr < vm::kNullGuard || addr + width < addr) {
      Die(s, StateDeath::kTrapped);
      return false;
    }
    if (addr >= vm::kRodataBase && addr < vm::kHeapBase) {
      if (!for_write && InRodata(addr, width)) return true;
      Die(s, StateDeath::kTrapped);
      return false;
    }
    if (addr >= vm::kMmapBase) {
      // The file mapping: readable up to the symbolic file size.
      if (!for_write &&
          addr + width <= vm::kMmapBase + opts.max_input_size) {
        return true;
      }
      Die(s, StateDeath::kTrapped);
      return false;
    }
    const SymState::HeapMap& heap = s.heap.get();
    auto it = heap.upper_bound(addr);
    if (it != heap.begin()) {
      --it;
      const SymAlloc& alloc = it->second;
      const std::uint64_t off = addr - it->first;
      if (off < alloc.size && off + width <= alloc.size && alloc.alive) {
        return true;
      }
    }
    Die(s, StateDeath::kTrapped);
    return false;
  }

  ExprRef LoadByte(SymState& s, std::uint64_t addr) {
    if (InRodata(addr, 1)) {
      return MakeConst(t.rodata[addr - vm::kRodataBase]);
    }
    if (addr >= vm::kMmapBase) {
      // A mapped file byte is the corresponding symbolic PoC byte.
      const auto off = static_cast<std::uint32_t>(addr - vm::kMmapBase);
      s.read_offsets.Insert(off);
      s.required_size = std::max<std::uint64_t>(s.required_size, off + 1);
      const auto pin = s.pinned.find(off);
      return pin != s.pinned.end() ? MakeConst(pin->second)
                                   : MakeInput(off);
    }
    if (const ExprRef* v = s.mem.Find(addr)) return *v;
    return MakeConst(0);  // allocations are zero-initialized
  }

  ExprRef LoadWide(SymState& s, std::uint64_t addr, unsigned width) {
    ExprRef out = LoadByte(s, addr);
    for (unsigned i = 1; i < width; ++i) {
      out = MakeBinOp(
          vm::Op::kOr, std::move(out),
          MakeBinOp(vm::Op::kShl, LoadByte(s, addr + i), MakeConst(8 * i)));
    }
    return out;
  }

  void StoreWide(SymState& s, std::uint64_t addr, unsigned width,
                 const ExprRef& value) {
    for (unsigned i = 0; i < width; ++i) {
      s.mem.Set(addr + i, MakeExtract(value, static_cast<std::uint8_t>(i)));
    }
  }

  // -- Reachability with call-stack continuations ---------------------------

  /// True when ep remains reachable if execution moves to `target` in the
  /// innermost frame: either the target block reaches ep directly, or
  /// some outer frame's resume block does after a return.
  bool StateCanReach(const SymState& s, vm::BlockId target) const {
    const SymFrame& top = s.frames.back();
    if (dmap.Reaches(top.fn, target)) return true;
    for (std::size_t i = s.frames.size() - 1; i-- > 0;) {
      if (dmap.Reaches(s.frames[i].fn, s.frames[i].block)) return true;
    }
    return false;
  }

  std::uint64_t DirectionCost(const SymState& s, vm::BlockId target) const {
    const auto d = dmap.Distance(s.frames.back().fn, target);
    return d ? *d : 0xFFFFFFFFull;
  }

  // -- Loop accounting -------------------------------------------------------

  /// Returns false (and kills the state) when traversing `from → to`
  /// would exceed θ for a constraint-accumulating (symbolic) loop.
  bool NoteEdge(SymState& s, vm::FuncId fn, vm::BlockId from,
                vm::BlockId to) {
    if (!cfg.IsBackEdge(fn, from, to)) return true;
    // Only loops that keep adding path constraints count toward θ —
    // those are the paper's symbolic "loop states". A concrete loop
    // re-traverses the edge with an unchanged constraint store.
    auto& entry = s.loop_counts.mut()[{fn, from, to}];
    if (entry.last_constraint_count != s.constraints.size() ||
        entry.count == 0) {
      entry.last_constraint_count = s.constraints.size();
      ++entry.count;
      if (entry.count > opts.theta) {
        loop_dead_observed = true;
        Die(s, StateDeath::kLoopDead);
        return false;
      }
    }
    return true;
  }

  // ---------------------------------------------------------------------
  // Worklist management.
  // ---------------------------------------------------------------------

  void PushState(SymState&& s) {
    ++stats.states_created;
    queued_footprint += s.FootprintBytes();
    worklist.push_back(std::move(s));
    stats.peak_live_states =
        std::max<std::uint64_t>(stats.peak_live_states, worklist.size() + 1);
  }

  SymState PopState() {
    SymState s;
    if (directed) {
      s = std::move(worklist.back());
      worklist.pop_back();
    } else {
      s = std::move(worklist.front());
      worklist.pop_front();
    }
    queued_footprint -= std::min(queued_footprint,
                                 static_cast<std::uint64_t>(
                                     s.FootprintBytes()));
    return s;
  }

  bool OverBudget(const SymState& current, std::string* why) {
    if (worklist.size() + 1 > opts.max_live_states) {
      *why = "live-state budget exceeded (" +
             std::to_string(opts.max_live_states) + " states)";
      return true;
    }
    const std::uint64_t mem = queued_footprint + current.FootprintBytes();
    stats.peak_memory_bytes = std::max(stats.peak_memory_bytes, mem);
    if (mem > opts.max_memory_bytes) {
      *why = "memory budget exceeded";
      return true;
    }
    if (stats.instructions > opts.max_instructions) {
      *why = "global instruction budget exceeded";
      return true;
    }
    return false;
  }

  // ---------------------------------------------------------------------
  // ep-encounter handling (P2 goal / P3 combining).
  // ---------------------------------------------------------------------

  enum class EpOutcome { kContinue, kGoalReached, kStateDead };

  EpOutcome HandleEpEntry(SymState& s, const std::vector<ExprRef>& args,
                          SymexResult* final_result) {
    if (goal == Goal::kReachEp) {
      // P2 proper: the guiding constraints collected on the way to ep
      // must actually be solvable, otherwise this state only *appears*
      // to reach ep along an infeasible path.
      const SolveResult& r = SolveConstraints(s);
      if (r.status == SolveStatus::kUnsat) {
        NoteUnsat(s, "guiding constraints unsatisfiable at ep");
        return EpOutcome::kStateDead;
      }
      if (HandleSolverGiveUp(s, r.status)) return EpOutcome::kStateDead;
      reached_ep_ever = true;
      // Emit a witness input: a concrete file that drives T from its
      // entry to ep along this verified path (useful on its own as
      // directed test-input generation).
      Bytes witness(
          s.fsize_observed ? opts.max_input_size : s.required_size, 0);
      for (const auto& [off, val] : opts.solver.hints) {
        if (off < witness.size() && s.read_offsets.Contains(off)) {
          witness[off] = val;
        }
      }
      for (const auto& [off, val] : r.model) {
        if (off < witness.size()) witness[off] = val;
      }
      for (const auto& [off, val] : s.pinned) {
        if (off < witness.size()) witness[off] = val;
      }
      final_result->poc = std::move(witness);
      return EpOutcome::kGoalReached;
    }
    reached_ep_ever = true;

    const std::size_t idx = s.ep_count;
    ++s.ep_count;
    if (idx >= bunches->size()) {
      // More encounters than S had: the combining plan is exhausted.
      Die(s, StateDeath::kPruned);
      return EpOutcome::kStateDead;
    }
    const taint::Bunch& bunch = (*bunches)[idx];

    // Parameter matching: "OCTOPOCS executes ep in T with the same
    // parameters as those used in S". Pointer-valued arguments are
    // skipped: allocation addresses are execution-specific.
    if (opts.check_ep_args) {
      const std::size_t n = std::min(args.size(), bunch.ep_args.size());
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t recorded = bunch.ep_args[i];
        if (recorded >= vm::kRodataBase) continue;  // pointer heuristic
        if (const auto v = EvalPartial(args[i], s.pinned)) {
          if (*v != recorded) {
            NoteUnsat(s, "ep argument " + std::to_string(i) +
                             " is fixed to a different value in T");
            return EpOutcome::kStateDead;
          }
        } else {
          AddConstraint(s, MakeBinOp(vm::Op::kCmpEq, args[i],
                                     MakeConst(recorded)));
          if (s.death != StateDeath::kAlive) return EpOutcome::kStateDead;
        }
      }
    }

    // Bunch placement at the file-position indicator (P3.1): bytes S
    // consumed at or after its ep-time position are relocated relative
    // to T's position. Bytes consumed *before* ep (e.g. header fields
    // that reach ℓ through ep's parameters) are not pinned here — the
    // parameter-matching constraints above already force T's own input
    // bytes to deliver the same values at T's own offsets; pinning them
    // at S's absolute offsets would corrupt shifted containers.
    for (const auto& [off, val] : bunch.bytes) {
      if (off < bunch.file_pos_at_ep) continue;
      const std::uint64_t target =
          s.file_pos + (off - bunch.file_pos_at_ep);
      PinByte(s, target, val);
      if (s.death != StateDeath::kAlive) return EpOutcome::kStateDead;
      s.required_size = std::max(s.required_size, target + 1);
      s.bunch_targets.push_back(static_cast<std::uint32_t>(target));
    }

    if (s.ep_count == bunches->size()) {
      // Final encounter: keep executing *through* ℓ so the symbolic
      // file grows to cover every byte ℓ consumes on the way to the
      // crash; the state finalizes (P3.3) when it traps or leaves ℓ.
      s.combining_done = true;
    }
    (void)final_result;
    return EpOutcome::kContinue;
  }

  /// P3.3: solves the accumulated system into poc'. Returns true when
  /// the run is finished (success); on unsat/unknown the state's death
  /// is recorded and false is returned.
  bool FinalizeState(SymState& s, SymexResult* result) {
    const SolveResult& r = SolveConstraints(s);
    if (r.status == SolveStatus::kUnsat) {
      NoteUnsat(s, "combined constraint system is unsatisfiable");
      return false;
    }
    if (HandleSolverGiveUp(s, r.status)) return false;
    const std::uint64_t len =
        s.fsize_observed ? opts.max_input_size : s.required_size;
    Bytes poc(len, 0);
    // Bytes the verified path read but never constrained cannot
    // influence T's execution along that path (any byte feeding a
    // branch or address was constrained or concretized); fill them from
    // the hints (the original PoC) so Type-I reforms keep their guiding
    // input verbatim. Bytes the path never read stay at the solver
    // default — they are outside the verification claim.
    for (const auto& [off, val] : opts.solver.hints) {
      if (off < poc.size() && s.read_offsets.Contains(off)) poc[off] = val;
    }
    for (const auto& [off, val] : r.model) {
      if (off < poc.size()) poc[off] = val;
    }
    for (const auto& [off, val] : s.pinned) {
      if (off < poc.size()) poc[off] = val;
    }
    result->status = SymexStatus::kPocGenerated;
    result->poc = std::move(poc);
    result->bunch_offsets = s.bunch_targets;
    return true;
  }

  // ---------------------------------------------------------------------
  // Single-state execution until death, fork-exhaustion, or goal.
  // ---------------------------------------------------------------------

  /// Runs `s` until it dies or the goal is met. Forked siblings are
  /// pushed onto the worklist. Returns true when the overall run is
  /// finished (result filled in).
  bool RunState(SymState s, SymexResult* result) {
    while (s.death == StateDeath::kAlive) {
      if (s.instructions > opts.max_state_instructions) {
        Die(s, StateDeath::kDepthLimit);
        break;
      }
      ++s.instructions;
      ++stats.instructions;
      if ((stats.instructions & 0x3FF) == 0) {
        std::string why;
        if (OverBudget(s, &why)) {
          result->status = SymexStatus::kBudget;
          result->detail = why;
          return true;
        }
        if (cancel.ShouldStop()) {
          result->status = SymexStatus::kDeadline;
          result->detail = "wall-clock deadline expired mid-exploration";
          return true;
        }
      }

      SymFrame& frame = s.frames.back();
      const vm::Function& fn = t.Fn(frame.fn);
      const vm::Block& block = fn.blocks[frame.block];

      if (frame.ip >= block.instrs.size()) {
        if (!StepTerminator(s, result)) {
          if (result->status == SymexStatus::kPocGenerated ||
              result->status == SymexStatus::kReachedEp) {
            return true;
          }
          if (requeue_current && s.death == StateDeath::kAlive) {
            requeue_current = false;
            PushState(std::move(s));
            return false;
          }
          break;  // state died
        }
        continue;
      }
      const vm::Instr& ins = block.instrs[frame.ip];
      ++frame.ip;
      if (!StepInstr(s, ins, result)) {
        if (result->status == SymexStatus::kPocGenerated ||
            result->status == SymexStatus::kReachedEp) {
          return true;
        }
        break;  // state died
      }
    }
    // A state that died *after* the last bunch was placed carries the
    // complete combining record: a trap here is the expected crash, an
    // exit or limit still yields a complete constraint system. Solve it.
    if (goal == Goal::kGeneratePoc && s.combining_done &&
        (s.death == StateDeath::kTrapped || s.death == StateDeath::kExited ||
         s.death == StateDeath::kDepthLimit ||
         s.death == StateDeath::kLoopDead ||
         s.death == StateDeath::kPruned)) {
      if (FinalizeState(s, result)) return true;
    }
    return false;
  }

  /// Terminators. Returns false when the state died or the run finished
  /// (check result->status).
  bool StepTerminator(SymState& s, SymexResult* result) {
    SymFrame& frame = s.frames.back();
    const vm::Terminator& term = t.Fn(frame.fn).blocks[frame.block].term;
    switch (term.kind) {
      case vm::TermKind::kJump:
        if (!NoteEdge(s, frame.fn, frame.block, term.target)) return false;
        frame.block = term.target;
        frame.ip = 0;
        return true;
      case vm::TermKind::kBranch:
        return StepBranch(s, term, result);
      case vm::TermKind::kReturn: {
        const ExprRef value = term.returns_value ? frame.regs[term.cond]
                                                 : MakeConst(0);
        const vm::Reg dest = frame.ret_reg;
        s.frames.pop_back();
        if (s.depth_inside > 0) {
          --s.depth_inside;
          if (s.depth_inside == 0 && s.combining_done &&
              goal == Goal::kGeneratePoc) {
            // ℓ exited without crashing after the last bunch: finalize
            // here — Algorithm 2 terminates T after the final encounter.
            FinalizeState(s, result);
            return false;  // success or state death; RunState inspects
          }
        }
        if (s.frames.empty()) {
          Die(s, StateDeath::kExited);
          return false;
        }
        s.frames.back().regs[dest] = value;
        return true;
      }
    }
    return true;
  }

  bool StepBranch(SymState& s, const vm::Terminator& term,
                  SymexResult* result) {
    (void)result;
    SymFrame& frame = s.frames.back();
    const ExprRef cond = frame.regs[term.cond];
    const vm::FuncId fn = frame.fn;
    const vm::BlockId from = frame.block;

    if (const auto v = EvalPartial(cond, s.pinned)) {
      const vm::BlockId to = *v != 0 ? term.target : term.fallthrough;
      if (!NoteEdge(s, fn, from, to)) return false;
      frame.block = to;
      frame.ip = 0;
      return true;
    }

    // Symbolic condition: enumerate viable directions.
    struct Direction {
      vm::BlockId to;
      ExprRef constraint;
      std::uint64_t cost;
    };
    std::vector<Direction> dirs;
    const auto consider = [&](vm::BlockId to, ExprRef constraint) {
      if (directed && s.depth_inside == 0 && !StateCanReach(s, to)) return;
      dirs.push_back({to, std::move(constraint), DirectionCost(s, to)});
    };
    consider(term.target, cond);
    consider(term.fallthrough,
             MakeBinOp(vm::Op::kCmpEq, cond, MakeConst(0)));

    if (dirs.empty()) {
      Die(s, StateDeath::kPruned);
      return false;
    }
    // Prefer the direction closer to ep (directed) or the taken edge
    // (naive); the sibling forks.
    if (directed && dirs.size() == 2 && dirs[1].cost < dirs[0].cost) {
      std::swap(dirs[0], dirs[1]);
    }
    if (dirs.size() == 2) {
      support::fault::MaybeThrow(support::FaultSite::kStateFork);
      SymState fork = s;
      AddConstraint(fork, dirs[1].constraint);
      if (fork.death == StateDeath::kAlive &&
          NoteEdge(fork, fn, from, dirs[1].to)) {
        fork.frames.back().block = dirs[1].to;
        fork.frames.back().ip = 0;
        PushState(std::move(fork));
      }
    }
    AddConstraint(s, dirs[0].constraint);
    if (s.death != StateDeath::kAlive) return false;
    if (!NoteEdge(s, fn, from, dirs[0].to)) return false;
    frame.block = dirs[0].to;
    frame.ip = 0;
    if (!directed && dirs.size() == 2) {
      // Breadth-first: after a genuine two-way fork the continuing state
      // goes back to the queue so exploration interleaves — this is what
      // makes naive symbolic execution accumulate states (Table IV).
      requeue_current = true;
      return false;
    }
    return true;
  }

  bool requeue_current = false;

  /// Non-terminator instructions. Returns false when the state died or
  /// the run finished (check result->status).
  bool StepInstr(SymState& s, const vm::Instr& ins, SymexResult* result) {
    using vm::Op;
    auto& regs = s.frames.back().regs;
    switch (ins.op) {
      case Op::kMovImm:
        regs[ins.a] = MakeConst(ins.imm);
        return true;
      case Op::kMov:
        regs[ins.a] = regs[ins.b];
        return true;
      case Op::kNot:
        regs[ins.a] = MakeNot(regs[ins.b]);
        return true;
      case Op::kAddImm:
        regs[ins.a] = MakeBinOp(Op::kAdd, regs[ins.b], MakeConst(ins.imm));
        return true;
      case Op::kDivU:
      case Op::kRemU: {
        const auto div = EvalPartial(regs[ins.c], s.pinned);
        if (div && *div == 0) {
          Die(s, StateDeath::kTrapped);
          return false;
        }
        if (!div) {
          // Guiding execution must survive to ep: require a nonzero
          // divisor on this path.
          AddConstraint(s, MakeBinOp(Op::kCmpNe, regs[ins.c], MakeConst(0)));
          if (s.death != StateDeath::kAlive) return false;
        }
        regs[ins.a] = MakeBinOp(ins.op, regs[ins.b], regs[ins.c]);
        return true;
      }
      case Op::kLoad: {
        const auto addr = Concretize(
            s, MakeBinOp(Op::kAdd, regs[ins.b], MakeConst(ins.imm)));
        if (!addr) return false;
        if (!ResolveAccess(s, *addr, ins.width, /*for_write=*/false)) {
          return false;
        }
        regs[ins.a] = LoadWide(s, *addr, ins.width);
        return true;
      }
      case Op::kStore: {
        const auto addr = Concretize(
            s, MakeBinOp(Op::kAdd, regs[ins.b], MakeConst(ins.imm)));
        if (!addr) return false;
        if (!ResolveAccess(s, *addr, ins.width, /*for_write=*/true)) {
          return false;
        }
        StoreWide(s, *addr, ins.width, regs[ins.a]);
        return true;
      }
      case Op::kAlloc: {
        support::fault::MaybeThrow(support::FaultSite::kAllocation);
        const auto size = Concretize(s, regs[ins.b]);
        if (!size) return false;
        const std::uint64_t base = s.cursor.Take(*size);
        s.heap.mut()[base] = SymAlloc{*size, true};
        regs[ins.a] = MakeConst(base);
        return true;
      }
      case Op::kFree: {
        const auto addr = Concretize(s, regs[ins.a]);
        if (!addr) return false;
        SymState::HeapMap& heap = s.heap.mut();
        auto it = heap.find(*addr);
        if (it == heap.end() || !it->second.alive) {
          Die(s, StateDeath::kTrapped);
          return false;
        }
        it->second.alive = false;
        return true;
      }
      case Op::kRead: {
        const auto dst = Concretize(s, regs[ins.b]);
        if (!dst) return false;
        const auto want = Concretize(s, regs[ins.c]);
        if (!want) return false;
        const std::uint64_t avail = s.file_pos < opts.max_input_size
                                        ? opts.max_input_size - s.file_pos
                                        : 0;
        const std::uint64_t n = std::min(*want, avail);
        if (n > 0) {
          // The file must contain these bytes even if the access below
          // faults — a read that overflows its buffer only reproduces
          // concretely when poc' is long enough to supply it. The same
          // goes for the read-coverage record used by hint filling.
          s.required_size = std::max(s.required_size, s.file_pos + n);
          for (std::uint64_t i = 0; i < n; ++i) {
            s.read_offsets.Insert(static_cast<std::uint32_t>(s.file_pos + i));
          }
          if (!ResolveAccess(s, *dst, n, /*for_write=*/true)) return false;
          for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t off = s.file_pos + i;
            const auto pin = s.pinned.find(static_cast<std::uint32_t>(off));
            s.mem.Set(*dst + i,
                      pin != s.pinned.end()
                          ? MakeConst(pin->second)
                          : MakeInput(static_cast<std::uint32_t>(off)));
          }
          s.file_pos += n;
          s.required_size = std::max(s.required_size, s.file_pos);
        }
        regs[ins.a] = MakeConst(n);
        return true;
      }
      case Op::kSeek: {
        const auto pos = Concretize(s, regs[ins.b]);
        if (!pos) return false;
        s.file_pos = *pos;
        return true;
      }
      case Op::kMMap:
        regs[ins.a] = MakeConst(vm::kMmapBase);
        return true;
      case Op::kTell:
        regs[ins.a] = MakeConst(s.file_pos);
        return true;
      case Op::kFileSize:
        s.fsize_observed = true;
        regs[ins.a] = MakeConst(opts.max_input_size);
        return true;
      case Op::kFnAddr:
        regs[ins.a] = MakeConst(ins.imm);
        return true;
      case Op::kAssert: {
        const auto v = EvalPartial(regs[ins.a], s.pinned);
        if (v && *v == 0) {
          Die(s, StateDeath::kTrapped);
          return false;
        }
        if (!v) {
          AddConstraint(s, regs[ins.a]);
          if (s.death != StateDeath::kAlive) return false;
        }
        return true;
      }
      case Op::kTrap:
        Die(s, StateDeath::kTrapped);
        return false;
      case Op::kNop:
        return true;
      case Op::kCall:
      case Op::kICall:
        return StepCall(s, ins, result);
      default:
        if (vm::IsBinaryAlu(ins.op)) {
          regs[ins.a] = MakeBinOp(ins.op, regs[ins.b], regs[ins.c]);
          return true;
        }
        Die(s, StateDeath::kTrapped);
        return false;
    }
  }

  bool StepCall(SymState& s, const vm::Instr& ins, SymexResult* result) {
    auto& regs = s.frames.back().regs;
    vm::FuncId callee;
    if (ins.op == vm::Op::kCall) {
      callee = static_cast<vm::FuncId>(ins.imm);
    } else {
      const auto target = Concretize(s, regs[ins.b]);
      if (!target) return false;
      if (*target >= t.functions.size()) {
        Die(s, StateDeath::kTrapped);
        return false;
      }
      callee = static_cast<vm::FuncId>(*target);
    }
    const vm::Function& callee_fn = t.Fn(callee);
    if (ins.args.size() != callee_fn.num_params ||
        s.frames.size() >= opts.max_call_depth) {
      Die(s, StateDeath::kTrapped);
      return false;
    }

    std::vector<ExprRef> args;
    args.reserve(ins.args.size());
    for (const vm::Reg r : ins.args) args.push_back(regs[r]);

    const bool entering_l =
        s.depth_inside == 0 && callee == ep && !s.combining_done;
    if (s.depth_inside > 0) ++s.depth_inside;

    if (entering_l) {
      const EpOutcome outcome = HandleEpEntry(s, args, result);
      if (outcome == EpOutcome::kGoalReached) {
        if (goal == Goal::kReachEp) {
          result->status = SymexStatus::kReachedEp;
        }
        return false;  // finished (result->status signals success)
      }
      if (outcome == EpOutcome::kStateDead) return false;
      s.depth_inside = 1;  // ExploreWhileEp: continue through ℓ
    }

    SymFrame next;
    next.fn = callee;
    next.ret_reg = ins.a;
    next.regs.assign(callee_fn.num_regs, MakeConst(0));
    for (std::size_t i = 0; i < args.size(); ++i) {
      next.regs[i] = std::move(args[i]);
    }
    s.frames.push_back(std::move(next));
    return true;
  }

  // ---------------------------------------------------------------------
  // Top-level drive loop.
  // ---------------------------------------------------------------------

  SymexResult Execute() {
    const auto start = std::chrono::steady_clock::now();
    SymexResult result;

    // Hash-cons every expression this run builds. The scope also
    // underwrites the solver cache: constraint sequences stay pointer-
    // canonical for exactly as long as the run lives.
    InternScope intern;

    dmap = cfg.BackwardReachability(ep);
    if (directed && !dmap.EntryReaches()) {
      result.status = SymexStatus::kCfgUnreachable;
      result.detail = "backward path finding: no path from entry to ep";
      return result;
    }

    SymState initial;
    SymFrame frame;
    frame.fn = t.entry;
    frame.regs.assign(t.Fn(t.entry).num_regs, MakeConst(0));
    initial.frames.push_back(std::move(frame));
    PushState(std::move(initial));

    bool finished = false;
    while (!worklist.empty() && !finished) {
      std::string why;
      if (cancel.Check()) {
        result.status = SymexStatus::kDeadline;
        result.detail = "wall-clock deadline expired between states";
        finished = true;
        break;
      }
      SymState s = PopState();
      if (OverBudget(s, &why)) {
        result.status = SymexStatus::kBudget;
        result.detail = why;
        finished = true;
        break;
      }
      finished = RunState(std::move(s), &result);
    }

    if (!finished) {
      // Worklist drained: classify (paper §III-D cases ii/iii and P3.3).
      // Deadline first: once the clock has tripped, every other
      // observation (unsat, budget) is an artefact of states dying from
      // cancellation, and must not masquerade as a program verdict.
      if (deadline_observed) {
        result.status = SymexStatus::kDeadline;
        result.detail =
            "wall-clock deadline expired during constraint solving";
      } else if (solver_budget_observed) {
        result.status = SymexStatus::kSolverFailure;
        result.detail = "constraint solving exceeded its budget";
      } else if (unsat_observed) {
        result.status = SymexStatus::kUnsat;
        result.detail = last_unsat_detail;
      } else if (!reached_ep_ever) {
        result.status = SymexStatus::kProgramDead;
        result.detail = "every state died before reaching ep";
      } else {
        result.status = SymexStatus::kProgramDead;
        result.detail = "ep was reached but combining never completed";
      }
    }

    stats.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    stats.solver_cache_hits = solver_cache.stats().hits;
    stats.solver_cache_misses = solver_cache.stats().misses;
    stats.expr_intern_hits = intern.stats().hits;
    stats.expr_intern_nodes = intern.stats().nodes;
    result.stats = stats;
    result.loop_dead_observed = loop_dead_observed;
    return result;
  }
};

SymExecutor::SymExecutor(const vm::Program& t, const cfg::Cfg& cfg,
                         vm::FuncId ep, ExecutorOptions options)
    : t_(t), cfg_(cfg), ep_(ep), options_(options) {}

SymexResult SymExecutor::ReachEp(bool directed) {
  Run run{t_, cfg_, ep_, options_, Run::Goal::kReachEp, directed};
  return run.Execute();
}

SymexResult SymExecutor::GeneratePoc(
    const std::vector<taint::Bunch>& bunches) {
  Run run{t_, cfg_, ep_, options_, Run::Goal::kGeneratePoc,
          /*directed=*/true, &bunches};
  return run.Execute();
}

}  // namespace octopocs::symex
