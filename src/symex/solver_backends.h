// Internal: singleton instances of the two search cores. Users go
// through GetSolverBackend (solver.h); these accessors exist so the
// per-core translation units and the portfolio composition can link
// without a registry.
#pragma once

#include "symex/solver.h"

namespace octopocs::symex {

const SolverBackend& BacktrackBackendInstance();
const SolverBackend& PropagateBackendInstance();

}  // namespace octopocs::symex
