// Symbolic expressions over PoC bytes.
//
// The symbolic executor models every register and memory byte of T as an
// expression over the symbolic input file: the paper's "input file in
// which all bytes are designated as symbols". Leaves are 64-bit
// constants and Input(o) — the o-th byte of the file, zero-extended.
// Interior nodes reuse the MiniVM opcode set so the executor's transfer
// function is one switch shared with the interpreter's semantics.
//
// Expressions are immutable and hash-consed (shared_ptr DAG with eager
// constant folding); evaluation under a concrete model must agree
// bit-for-bit with the interpreter — a property test enforces this.
//
// Hash-consing is scoped: while an InternScope is alive on the current
// thread, the Make* constructors dedupe structurally-equal nodes, so
// structural equality degrades to pointer equality and the folding
// identities in MakeBinOp (x^x, x-x, x==x, ...) fire for *any* pair of
// equal subtrees, not only literally-shared ones. The table holds strong
// references and is dropped when the scope exits; nodes outlive the
// scope through whatever ExprRefs still point at them. Scopes are
// thread-local, so concurrent executors never contend on the table.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "support/small_set.h"
#include "vm/ir.h"

namespace octopocs::symex {

struct Expr;
using ExprRef = std::shared_ptr<const Expr>;

enum class ExprKind : std::uint8_t {
  kConst,    // 64-bit literal
  kInput,    // input file byte, zero-extended to 64 bits
  kBinOp,    // vm::Op arithmetic/comparison over two subtrees
  kNot,      // bitwise complement
  kExtract,  // (e >> 8*byte) & 0xFF — byte lane extraction for stores
};

struct Expr {
  ExprKind kind = ExprKind::kConst;
  vm::Op op = vm::Op::kNop;   // kBinOp only
  std::uint64_t value = 0;    // kConst
  std::uint32_t offset = 0;   // kInput
  std::uint8_t byte = 0;      // kExtract lane
  ExprRef lhs, rhs;

  bool IsConst() const { return kind == ExprKind::kConst; }

  ~Expr() { delete vars_cache.load(std::memory_order_acquire); }

  /// Lazily-computed free-variable set, published once per node (see
  /// FreeVars). Atomic because frontier workers may race on a shared
  /// node; losers of the publication CAS discard their copy.
  mutable std::atomic<const SortedSmallSet<std::uint32_t>*> vars_cache{
      nullptr};
};

/// A (partial) assignment of input bytes.
using Model = std::map<std::uint32_t, std::uint8_t>;

/// RAII hash-consing scope. While alive on the current thread, Make*
/// constructors return the canonical node for each structure. One scope
/// per executor run bounds the table's lifetime to the run; nesting
/// restores the previous scope on exit.
class InternScope {
 public:
  struct Stats {
    std::uint64_t hits = 0;   // constructions answered from the table
    std::uint64_t nodes = 0;  // distinct nodes the table holds
  };

  InternScope();
  ~InternScope();
  InternScope(const InternScope&) = delete;
  InternScope& operator=(const InternScope&) = delete;

  Stats stats() const;

  struct Table;  // defined in expr.cpp; opaque to users

 private:
  std::unique_ptr<Table> table_;
  Table* prev_;
};

/// Mutex-striped hash-consing table shared by the worker threads of one
/// parallel-frontier run. A thread-local InternScope keeps equal
/// structures pointer-canonical only within its own thread; when states
/// migrate between workers (work stealing), the folding identities and
/// every pointer-keyed cache need canonicality *across* threads — this
/// table provides it at the cost of a sharded lock per construction.
/// Lifetime: one table per executor run, created before the workers and
/// destroyed after they join, so it holds strong references to every
/// node any worker built (the same lifetime contract InternScope has).
class SharedInternTable {
 public:
  SharedInternTable();
  ~SharedInternTable();
  SharedInternTable(const SharedInternTable&) = delete;
  SharedInternTable& operator=(const SharedInternTable&) = delete;

  InternScope::Stats stats() const;

  /// Returns the canonical node for `e`'s structure, registering `e`
  /// when it is the first of its kind. Thread-safe.
  ExprRef Canonical(ExprRef e);

  struct Shard;  // defined in expr.cpp

 private:
  static constexpr std::size_t kShards = 16;
  std::unique_ptr<Shard[]> shards_;
};

/// RAII: routes this thread's Make* constructors through `table` while
/// alive. Each frontier worker holds one for the duration of the run;
/// nesting restores the previous binding on exit.
class SharedInternBinding {
 public:
  explicit SharedInternBinding(SharedInternTable& table);
  ~SharedInternBinding();
  SharedInternBinding(const SharedInternBinding&) = delete;
  SharedInternBinding& operator=(const SharedInternBinding&) = delete;

 private:
  SharedInternTable* prev_;
};

ExprRef MakeConst(std::uint64_t value);
ExprRef MakeInput(std::uint32_t offset);
/// Folds when both sides are constant and applies cheap identities
/// (x+0, x*1, x&x, x^x, ...). DivU/RemU by constant zero folds to 0 —
/// the executor traps that case before building the expression.
ExprRef MakeBinOp(vm::Op op, ExprRef lhs, ExprRef rhs);
ExprRef MakeNot(ExprRef operand);
ExprRef MakeExtract(ExprRef operand, std::uint8_t byte);

/// Evaluates under a *total* model: absent offsets read as 0.
std::uint64_t Eval(const ExprRef& expr, const Model& model);

/// Evaluates under a *partial* model: returns nullopt when any reached
/// Input leaf is unassigned. Used for pinned-byte concretization.
std::optional<std::uint64_t> EvalPartial(const ExprRef& expr,
                                         const Model& model);

/// Union of all Input offsets appearing in the expression.
void CollectInputs(const ExprRef& expr, SortedSmallSet<std::uint32_t>& out);

/// Free input-byte variables of `expr`, computed bottom-up once per node
/// and cached on it (Expr::vars_cache), so repeated queries over a
/// hash-consed DAG are O(1) amortized. The returned reference lives as
/// long as the node does. Basis of independence slicing in the solver.
const SortedSmallSet<std::uint32_t>& FreeVars(const ExprRef& expr);

/// Number of nodes (diagnostics / memory-cost estimation).
std::size_t ExprSize(const ExprRef& expr);

/// Debug rendering, e.g. "(in[3] + 2)".
std::string ToString(const ExprRef& expr);

/// Applies the MiniVM's concrete semantics for a binary ALU op.
/// Shared by constant folding and Eval so the two cannot diverge.
/// Division/remainder by zero yield 0 here; the executor checks the
/// divisor and traps before evaluation, so this value is never observed.
std::uint64_t ApplyBinOp(vm::Op op, std::uint64_t a, std::uint64_t b);

}  // namespace octopocs::symex
