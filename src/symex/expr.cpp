#include "symex/expr.h"

#include <functional>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "vm/op_info.h"

namespace octopocs::symex {

// ---------------------------------------------------------------------------
// Hash-consing. Children are interned before their parents, so a node's
// identity is its kind plus scalar payload plus the *addresses* of its
// (already canonical) children — structural equality never needs a deep
// walk.
// ---------------------------------------------------------------------------

namespace {

struct InternKey {
  ExprKind kind;
  vm::Op op;
  std::uint64_t value;
  std::uint32_t offset;
  std::uint8_t byte;
  const Expr* lhs;
  const Expr* rhs;

  bool operator==(const InternKey&) const = default;
};

struct InternKeyHash {
  std::size_t operator()(const InternKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ull;
    };
    mix(static_cast<std::uint64_t>(k.kind));
    mix(static_cast<std::uint64_t>(k.op));
    mix(k.value);
    mix(k.offset);
    mix(k.byte);
    mix(reinterpret_cast<std::uintptr_t>(k.lhs));
    mix(reinterpret_cast<std::uintptr_t>(k.rhs));
    return static_cast<std::size_t>(h);
  }
};

InternKey KeyOf(const Expr& e) {
  return InternKey{e.kind,  e.op,        e.value,      e.offset,
                   e.byte,  e.lhs.get(), e.rhs.get()};
}

}  // namespace

struct InternScope::Table {
  std::unordered_map<InternKey, ExprRef, InternKeyHash> nodes;
  std::uint64_t hits = 0;
};

struct SharedInternTable::Shard {
  mutable std::mutex mu;
  std::unordered_map<InternKey, ExprRef, InternKeyHash> nodes;
  std::uint64_t hits = 0;
};

namespace {

thread_local InternScope::Table* g_intern = nullptr;
thread_local SharedInternTable* g_shared = nullptr;

/// Canonicalizes a freshly-built node: returns the existing structural
/// twin when one is interned, otherwise registers and returns `e`.
/// A shared (cross-thread) binding takes precedence over the
/// thread-local scope: frontier workers need one canonical node per
/// structure across all threads so folding identities and
/// pointer-keyed caches behave exactly as in a serial run. Without
/// either, this is the identity function, preserving the pre-interning
/// allocation behavior for ad-hoc expression users.
ExprRef Intern(ExprRef e) {
  if (g_shared != nullptr) return g_shared->Canonical(std::move(e));
  if (g_intern == nullptr) return e;
  auto [it, inserted] = g_intern->nodes.try_emplace(KeyOf(*e), e);
  if (!inserted) ++g_intern->hits;
  return it->second;
}

}  // namespace

InternScope::InternScope() : table_(new Table), prev_(g_intern) {
  g_intern = table_.get();
}

InternScope::~InternScope() { g_intern = prev_; }

InternScope::Stats InternScope::stats() const {
  return Stats{table_->hits, table_->nodes.size()};
}

SharedInternTable::SharedInternTable() : shards_(new Shard[kShards]) {}

SharedInternTable::~SharedInternTable() = default;

ExprRef SharedInternTable::Canonical(ExprRef e) {
  const InternKey key = KeyOf(*e);
  Shard& shard = shards_[InternKeyHash{}(key) % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.nodes.try_emplace(key, std::move(e));
  if (!inserted) ++shard.hits;
  return it->second;
}

InternScope::Stats SharedInternTable::stats() const {
  InternScope::Stats s;
  for (std::size_t i = 0; i < kShards; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    s.hits += shards_[i].hits;
    s.nodes += shards_[i].nodes.size();
  }
  return s;
}

SharedInternBinding::SharedInternBinding(SharedInternTable& table)
    : prev_(g_shared) {
  g_shared = &table;
}

SharedInternBinding::~SharedInternBinding() { g_shared = prev_; }

std::uint64_t ApplyBinOp(vm::Op op, std::uint64_t a, std::uint64_t b) {
  // Shared with the concrete interpreter via vm/op_info.h — one place
  // defines what each binary ALU form computes (div/rem by zero yield 0
  // here; the interpreter traps before evaluating).
  return vm::EvalAlu(op, a, b);
}

namespace {

ExprRef MakeTinyConst(std::uint64_t value) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kConst;
  e->value = value;
  return e;
}

}  // namespace

ExprRef MakeConst(std::uint64_t value) {
  // Cache the tiny constants that dominate expression trees. These are
  // process-wide statics, so they are pointer-canonical across every
  // scope and thread without touching any intern table.
  static const ExprRef kSmall[] = {MakeTinyConst(0), MakeTinyConst(1)};
  if (value < 2) return kSmall[value];
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kConst;
  e->value = value;
  return Intern(std::move(e));
}

ExprRef MakeInput(std::uint32_t offset) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kInput;
  e->offset = offset;
  return Intern(std::move(e));
}

ExprRef MakeBinOp(vm::Op op, ExprRef lhs, ExprRef rhs) {
  using vm::Op;
  if (lhs->IsConst() && rhs->IsConst()) {
    return MakeConst(ApplyBinOp(op, lhs->value, rhs->value));
  }
  // Cheap identities. These matter: guiding-input paths build long
  // chains of offset arithmetic that would otherwise bloat the DAG.
  if (rhs->IsConst()) {
    const std::uint64_t c = rhs->value;
    if (c == 0 && (op == Op::kAdd || op == Op::kSub || op == Op::kOr ||
                   op == Op::kXor || op == Op::kShl || op == Op::kShr)) {
      return lhs;
    }
    if (c == 0 && (op == Op::kMul || op == Op::kAnd)) return MakeConst(0);
    if (c == 1 && (op == Op::kMul || op == Op::kDivU)) return lhs;
  }
  if (lhs->IsConst()) {
    const std::uint64_t c = lhs->value;
    if (c == 0 && (op == Op::kAdd || op == Op::kOr || op == Op::kXor)) {
      return rhs;
    }
    if (c == 0 && (op == Op::kMul || op == Op::kAnd)) return MakeConst(0);
  }
  if (lhs.get() == rhs.get()) {
    if (op == Op::kXor || op == Op::kSub) return MakeConst(0);
    if (op == Op::kAnd || op == Op::kOr) return lhs;
    if (op == Op::kCmpEq || op == Op::kCmpLeU || op == Op::kCmpGeU) {
      return MakeConst(1);
    }
    if (op == Op::kCmpNe || op == Op::kCmpLtU || op == Op::kCmpGtU) {
      return MakeConst(0);
    }
  }
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinOp;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return Intern(std::move(e));
}

ExprRef MakeNot(ExprRef operand) {
  if (operand->IsConst()) return MakeConst(~operand->value);
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kNot;
  e->lhs = std::move(operand);
  return Intern(std::move(e));
}

ExprRef MakeExtract(ExprRef operand, std::uint8_t byte) {
  if (operand->IsConst()) {
    return MakeConst((operand->value >> (8 * byte)) & 0xFF);
  }
  // Extracting lane 0 of a single input byte is the byte itself.
  if (operand->kind == ExprKind::kInput) {
    if (byte == 0) return operand;
    return MakeConst(0);  // input bytes are zero-extended
  }
  if (operand->kind == ExprKind::kExtract) {
    // Extract(Extract(e, i), 0) == Extract(e, i); other lanes are 0.
    return byte == 0 ? operand : MakeConst(0);
  }
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kExtract;
  e->byte = byte;
  e->lhs = std::move(operand);
  return Intern(std::move(e));
}

std::uint64_t Eval(const ExprRef& expr, const Model& model) {
  switch (expr->kind) {
    case ExprKind::kConst:
      return expr->value;
    case ExprKind::kInput: {
      auto it = model.find(expr->offset);
      return it == model.end() ? 0 : it->second;
    }
    case ExprKind::kBinOp:
      return ApplyBinOp(expr->op, Eval(expr->lhs, model),
                        Eval(expr->rhs, model));
    case ExprKind::kNot:
      return ~Eval(expr->lhs, model);
    case ExprKind::kExtract:
      return (Eval(expr->lhs, model) >> (8 * expr->byte)) & 0xFF;
  }
  return 0;
}

std::optional<std::uint64_t> EvalPartial(const ExprRef& expr,
                                         const Model& model) {
  switch (expr->kind) {
    case ExprKind::kConst:
      return expr->value;
    case ExprKind::kInput: {
      auto it = model.find(expr->offset);
      if (it == model.end()) return std::nullopt;
      return it->second;
    }
    case ExprKind::kBinOp: {
      const auto a = EvalPartial(expr->lhs, model);
      if (!a) return std::nullopt;
      const auto b = EvalPartial(expr->rhs, model);
      if (!b) return std::nullopt;
      return ApplyBinOp(expr->op, *a, *b);
    }
    case ExprKind::kNot: {
      const auto a = EvalPartial(expr->lhs, model);
      if (!a) return std::nullopt;
      return ~*a;
    }
    case ExprKind::kExtract: {
      const auto a = EvalPartial(expr->lhs, model);
      if (!a) return std::nullopt;
      return (*a >> (8 * expr->byte)) & 0xFF;
    }
  }
  return std::nullopt;
}

void CollectInputs(const ExprRef& expr, SortedSmallSet<std::uint32_t>& out) {
  // Iterative with a visited set: interning makes equal subtrees share
  // one node, and skipping already-seen pointers keeps collection linear
  // in *distinct* nodes where the naive recursion is linear in paths
  // (exponential on heavily shared DAGs).
  std::vector<const Expr*> stack{expr.get()};
  std::unordered_set<const Expr*> seen;
  while (!stack.empty()) {
    const Expr* e = stack.back();
    stack.pop_back();
    if (!seen.insert(e).second) continue;
    switch (e->kind) {
      case ExprKind::kConst:
        break;
      case ExprKind::kInput:
        out.Insert(e->offset);
        break;
      case ExprKind::kBinOp:
        stack.push_back(e->lhs.get());
        stack.push_back(e->rhs.get());
        break;
      case ExprKind::kNot:
      case ExprKind::kExtract:
        stack.push_back(e->lhs.get());
        break;
    }
  }
}

const SortedSmallSet<std::uint32_t>& FreeVars(const ExprRef& expr) {
  using VarSet = SortedSmallSet<std::uint32_t>;
  const Expr* root = expr.get();
  if (const VarSet* cached = root->vars_cache.load(std::memory_order_acquire)) {
    return *cached;
  }
  // Bottom-up over the uncached region: a node stays on the stack until
  // both children carry a published set, then unions them. Each node's
  // set is computed at most once per thread; the CAS arbitrates races
  // between frontier workers and losers discard their copy.
  std::vector<const Expr*> stack{root};
  while (!stack.empty()) {
    const Expr* e = stack.back();
    if (e->vars_cache.load(std::memory_order_acquire) != nullptr) {
      stack.pop_back();
      continue;
    }
    const Expr* l = e->lhs.get();
    const Expr* r = e->rhs.get();
    bool pending = false;
    if (l != nullptr && l->vars_cache.load(std::memory_order_acquire) == nullptr) {
      stack.push_back(l);
      pending = true;
    }
    if (r != nullptr && r->vars_cache.load(std::memory_order_acquire) == nullptr) {
      stack.push_back(r);
      pending = true;
    }
    if (pending) continue;
    auto* set = new VarSet();
    if (e->kind == ExprKind::kInput) set->Insert(e->offset);
    if (l != nullptr) set->UnionWith(*l->vars_cache.load(std::memory_order_acquire));
    if (r != nullptr) set->UnionWith(*r->vars_cache.load(std::memory_order_acquire));
    const VarSet* expected = nullptr;
    if (!e->vars_cache.compare_exchange_strong(expected, set,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire)) {
      delete set;
    }
    stack.pop_back();
  }
  return *root->vars_cache.load(std::memory_order_acquire);
}

std::size_t ExprSize(const ExprRef& expr) {
  switch (expr->kind) {
    case ExprKind::kConst:
    case ExprKind::kInput:
      return 1;
    case ExprKind::kBinOp:
      return 1 + ExprSize(expr->lhs) + ExprSize(expr->rhs);
    case ExprKind::kNot:
    case ExprKind::kExtract:
      return 1 + ExprSize(expr->lhs);
  }
  return 1;
}

std::string ToString(const ExprRef& expr) {
  switch (expr->kind) {
    case ExprKind::kConst: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "0x%llx",
                    static_cast<unsigned long long>(expr->value));
      return buf;
    }
    case ExprKind::kInput:
      return "in[" + std::to_string(expr->offset) + "]";
    case ExprKind::kBinOp:
      return "(" + ToString(expr->lhs) + " " +
             std::string(vm::OpName(expr->op)) + " " + ToString(expr->rhs) +
             ")";
    case ExprKind::kNot:
      return "~" + ToString(expr->lhs);
    case ExprKind::kExtract:
      return "byte" + std::to_string(expr->byte) + "(" + ToString(expr->lhs) +
             ")";
  }
  return "?";
}

}  // namespace octopocs::symex
