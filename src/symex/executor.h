// Symbolic executors: directed (Algorithm 2) and naive (Table IV baseline).
//
// Directed mode is the paper's P2+P3. Starting from T's entry with an
// all-symbolic input file, it explores depth-first while consulting the
// backward-path-finding distance map at every symbolic branch: directions
// from which ep is unreachable are pruned, and when both directions stay
// viable the shorter-distance one runs first with the sibling pushed as a
// fork. Four state classes from §III-B map as follows:
//   active        — normal stepping;
//   loop          — a back edge taken under a *symbolic* branch condition
//                   increments that state's loop counter;
//   loop-dead     — the counter exceeds θ: the state dies (the fork that
//                   exits the loop earlier was already queued, which
//                   realises the paper's "increase iterations 1..θ");
//   program-dead  — the whole worklist drains without reaching the goal.
//
// Combining (P3) runs inline: at the k-th ep encounter the k-th bunch is
// pinned at T's current file-position indicator, ep's symbolic arguments
// are matched against the arguments recorded in S, and after the final
// bunch the accumulated constraint system is solved into poc'.
//
// Naive mode is plain breadth-first symbolic execution with no distance
// pruning — the baseline whose state explosion reproduces the "MemError"
// rows of Table IV. It stops at the first ep encounter.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "cfg/cfg.h"
#include "support/bytes.h"
#include "symex/solver.h"
#include "symex/state.h"
#include "taint/crash_primitive.h"

namespace octopocs::support {
class Tracer;
}

namespace octopocs::symex {

enum class SymexStatus : std::uint8_t {
  kPocGenerated,    // all bunches placed, constraints solved → poc ready
  kReachedEp,       // P2-only goal met (ReachEp mode)
  kCfgUnreachable,  // backward path finding: ep not reachable (case ii)
  kProgramDead,     // worklist drained before any ep encounter (case iii)
  kUnsat,           // constraint conflict / ep-argument mismatch (P3.3)
  kBudget,          // state or memory budget exhausted ("MemError")
  kSolverFailure,   // final constraint system returned Unknown
  kDeadline,        // the run's wall-clock CancelToken tripped
};

std::string_view SymexStatusName(SymexStatus status);

struct SymexStats {
  std::uint64_t states_created = 0;
  std::uint64_t peak_live_states = 0;
  std::uint64_t instructions = 0;
  std::uint64_t solver_steps = 0;
  /// Solver-memoization effectiveness: queries answered from the
  /// per-run cache vs. queries that ran the CSP search.
  std::uint64_t solver_cache_hits = 0;
  std::uint64_t solver_cache_misses = 0;
  /// Per-mechanism breakdown of solver_cache_hits (see SolverCache):
  /// exact sequence memo, certified model reuse, and UNSAT-subset
  /// subsumption. (A slice-hit counter existed through PR 7; the slicing
  /// tier was retired after sitting at zero corpus-wide, so the field is
  /// gone rather than forever-zero.)
  std::uint64_t solver_exact_hits = 0;
  std::uint64_t solver_model_reuse_hits = 0;
  std::uint64_t solver_subsumption_hits = 0;
  /// Hash-consing effectiveness: node constructions answered from the
  /// intern table vs. distinct nodes allocated.
  std::uint64_t expr_intern_hits = 0;
  std::uint64_t expr_intern_nodes = 0;
  /// Peak of Σ FootprintBytes() over the live worklist (Table IV "RAM").
  std::uint64_t peak_memory_bytes = 0;
  /// Successful work-steals between frontier workers (0 when
  /// frontier_jobs == 1 — the serial drive loop never steals).
  std::uint64_t frontier_steals = 0;
  double elapsed_seconds = 0;
};

struct SymexResult {
  SymexStatus status = SymexStatus::kProgramDead;
  /// kPocGenerated: the reformed PoC. kReachedEp: a *witness* input
  /// that drives T from its entry to ep along the verified path.
  Bytes poc;
  /// Offsets of poc' occupied by relocated crash-primitive bytes; the
  /// complement is the guiding region (drives Type-I/II classification).
  std::vector<std::uint32_t> bunch_offsets;
  SymexStats stats;
  /// True when at least one state was killed by the loop cap θ. A
  /// program-dead verdict with this flag set is potentially a θ
  /// artefact — the paper's stated limitation — and the pipeline's
  /// adaptive-θ mode uses it to decide whether retrying with a larger
  /// cap could change the outcome.
  bool loop_dead_observed = false;
  /// Human-readable detail (which check failed, which budget tripped).
  std::string detail;
};

struct ExecutorOptions {
  /// θ — the maximum symbolic-loop iteration count (paper §IV-B: 120).
  std::uint32_t theta = 120;
  /// Live-state budget; exceeding it is the "MemError" condition.
  std::uint64_t max_live_states = 2048;
  /// Memory budget over live states (bytes).
  std::uint64_t max_memory_bytes = 1ULL << 31;
  /// Total instructions across all states.
  std::uint64_t max_instructions = 20'000'000;
  /// Per-state instruction fuel.
  std::uint64_t max_state_instructions = 2'000'000;
  std::uint32_t max_call_depth = 200;
  /// Symbolic input file size M: reads succeed below this bound and poc'
  /// is trimmed to the bytes actually required.
  std::uint64_t max_input_size = 4096;
  /// Match ep's arguments in T against those recorded in S (the paper
  /// executes ep "with the same parameters"; pointer-valued arguments —
  /// values inside VM address ranges — are skipped since allocation
  /// addresses need not agree between S and T).
  bool check_ep_args = true;
  /// In-pair frontier parallelism: number of worker threads exploring
  /// the directed-DFS frontier via work-stealing deques. 1 = the serial
  /// drive loop. Values > 1 apply to *directed* mode only (naive BFS
  /// stays serial — it is the Table IV baseline and must not change
  /// shape). The result is deterministic and identical to the serial
  /// run's by construction: states carry DFS event keys, workers commit
  /// the smallest-key goal, and observations past that key are
  /// discarded (see DESIGN.md §10). Deliberately NOT clamped to the
  /// hardware thread count — determinism must hold (and is tested) even
  /// oversubscribed.
  std::uint32_t frontier_jobs = 1;
  SolverOptions solver;
  /// Cooperative wall-clock bound over the whole symbolic run, polled in
  /// the stepping loop. Callers that also want mid-solve cancellation
  /// should set solver.cancel to the same deadline. Tripping yields
  /// SymexStatus::kDeadline — never a Type-III-style verdict.
  support::CancelToken cancel;
  /// Structured-tracing sink (not owned, may be null). Pure
  /// observability: never participates in determinism or verdicts.
  support::Tracer* tracer = nullptr;
};

class SymExecutor {
 public:
  /// `cfg` must outlive the executor and describe `t`.
  SymExecutor(const vm::Program& t, const cfg::Cfg& cfg, vm::FuncId ep,
              ExecutorOptions options = {});

  /// P2 goal only: drive execution until the first ep encounter.
  /// `directed` selects guided-DFS vs naive-BFS (Table IV compares both).
  SymexResult ReachEp(bool directed);

  /// Full P2+P3: place `bunches` at successive ep encounters and solve
  /// the combined constraint system into a reformed PoC.
  SymexResult GeneratePoc(const std::vector<taint::Bunch>& bunches);

 private:
  struct Run;  // implementation detail (executor.cpp)

  const vm::Program& t_;
  const cfg::Cfg& cfg_;
  vm::FuncId ep_;
  ExecutorOptions options_;
};

}  // namespace octopocs::symex
