// The propagation-first search core (DESIGN.md §15).
//
// Same decision procedure as the backtrack oracle — identical variable
// order (smallest filtered domain, lowest dense index on ties),
// identical value order (PoC-byte hint first, then ascending), identical
// filtering strength (unit constraints only) — so both cores return the
// same first model and the same kUnsat verdicts on every input. The
// speed comes from mechanics, not search-order cleverness:
//
//   compiled constraints   each constraint's expression DAG is lowered
//                          once per query into a straight-line program
//                          over a dense value array, replacing the
//                          recursive shared_ptr walk with std::map
//                          lookups that dominated the oracle's probes;
//   ByteDomain masks       domains are 256-bit masks (4 words), so the
//                          backtracking trail copies 32 bytes instead
//                          of a 256-entry bool array, and value
//                          iteration is count-trailing-zeros;
//   watched counters       constraints watch their unassigned-variable
//                          count; an assignment enqueues only the
//                          constraints of that variable, and a
//                          constraint filters only when it drops to a
//                          single watched variable (unchanged from the
//                          oracle, which already propagated this way —
//                          stated here because it is the invariant the
//                          nogood machinery leans on);
//   nogood pruning         exhausted decision subtrees record their
//                          (var, value) decision prefix in the caller's
//                          NogoodStore; later decisions whose partial
//                          assignment would re-enter a recorded
//                          model-free subtree are skipped. Nogoods only
//                          ever prune branches proven empty, so they
//                          cannot change the first model found or
//                          weaken kUnsat completeness.
#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "symex/solver_backends.h"

namespace octopocs::symex {

namespace {

/// Expression DAG lowered to a straight-line program: node i computes
/// into scratch[i] from already-computed children, Input leaves read the
/// search's dense value array (unassigned slots hold 0, matching Eval's
/// absent-reads-as-zero contract). Sharing in the DAG is preserved —
/// each distinct node evaluates once.
struct CompiledExpr {
  struct Node {
    ExprKind kind;
    vm::Op op;          // kBinOp
    std::uint32_t a = 0, b = 0;  // child scratch indices
    std::uint64_t value = 0;     // kConst
    std::uint32_t slot = 0;      // kInput: dense variable index
    std::uint8_t byte = 0;       // kExtract lane
  };
  std::vector<Node> nodes;  // topological; result is nodes.back()
};

std::uint32_t CompileNode(const Expr* e,
                          const std::map<std::uint32_t, std::size_t>& slots,
                          std::unordered_map<const Expr*, std::uint32_t>* memo,
                          CompiledExpr* out) {
  if (const auto it = memo->find(e); it != memo->end()) return it->second;
  CompiledExpr::Node node;
  node.kind = e->kind;
  switch (e->kind) {
    case ExprKind::kConst:
      node.value = e->value;
      break;
    case ExprKind::kInput:
      node.slot = static_cast<std::uint32_t>(slots.at(e->offset));
      break;
    case ExprKind::kBinOp:
      node.op = e->op;
      node.a = CompileNode(e->lhs.get(), slots, memo, out);
      node.b = CompileNode(e->rhs.get(), slots, memo, out);
      break;
    case ExprKind::kNot:
      node.a = CompileNode(e->lhs.get(), slots, memo, out);
      break;
    case ExprKind::kExtract:
      node.a = CompileNode(e->lhs.get(), slots, memo, out);
      node.byte = e->byte;
      break;
  }
  const auto idx = static_cast<std::uint32_t>(out->nodes.size());
  out->nodes.push_back(node);
  memo->emplace(e, idx);
  return idx;
}

std::uint64_t EvalCompiled(const CompiledExpr& ce, const std::uint8_t* vals,
                           std::uint64_t* scratch) {
  const CompiledExpr::Node* nodes = ce.nodes.data();
  const std::size_t n = ce.nodes.size();
  for (std::size_t i = 0; i < n; ++i) {
    const CompiledExpr::Node& nd = nodes[i];
    switch (nd.kind) {
      case ExprKind::kConst:
        scratch[i] = nd.value;
        break;
      case ExprKind::kInput:
        scratch[i] = vals[nd.slot];
        break;
      case ExprKind::kBinOp:
        scratch[i] = ApplyBinOp(nd.op, scratch[nd.a], scratch[nd.b]);
        break;
      case ExprKind::kNot:
        scratch[i] = ~scratch[nd.a];
        break;
      case ExprKind::kExtract:
        scratch[i] = (scratch[nd.a] >> (8 * nd.byte)) & 0xFF;
        break;
    }
  }
  return scratch[n - 1];
}

/// Ascending set-value iteration over a 256-bit domain mask.
template <typename F>
void ForEachValue(const ByteDomain& d, F&& f) {
  for (int w = 0; w < 4; ++w) {
    std::uint64_t bits = d.bits[w];
    while (bits != 0) {
      const int b = __builtin_ctzll(bits);
      bits &= bits - 1;
      f(w * 64 + b);
    }
  }
}

struct PropagateSearch {
  PropagateSearch(const std::vector<ExprRef>& constraints_in,
                  const SolverOptions& options)
      : constraints(constraints_in),
        hints(options.hints),
        max_steps(options.max_steps),
        cancel(options.cancel),
        ctx(options.context),
        store(options.nogoods) {}

  const std::vector<ExprRef>& constraints;
  const Model& hints;
  std::uint64_t max_steps;
  support::CancelToken cancel;  // local copy; poll counters are ours
  const SolveContext* ctx;
  NogoodStore* store;  // may be null (no recording, no pruning)
  std::uint64_t steps = 0;
  bool cancelled = false;

  bool Cancelled() {
    if (!cancelled && cancel.ShouldStop()) cancelled = true;
    return cancelled;
  }

  std::vector<std::uint32_t> vars;  // dense index → offset
  std::map<std::uint32_t, std::size_t> var_index;
  std::vector<std::vector<std::size_t>> var_constraints;
  std::vector<std::vector<std::size_t>> cvars;
  std::vector<std::size_t> unassigned_count;
  std::vector<CompiledExpr> compiled;
  std::vector<std::uint64_t> scratch;  // sized to the largest program

  std::vector<ByteDomain> domain;
  std::vector<int> domain_size;
  std::vector<int> assigned;        // -1 = unassigned, else the value
  std::vector<std::uint8_t> vals;   // dense values; unassigned read as 0
  std::vector<bool> prefiltered;

  /// Decision literals of the current branch, outermost first. This is
  /// what a nogood records: propagated assignments are implied by
  /// constraints ∧ decisions, so the decision prefix alone carries the
  /// whole proof and generalizes further.
  std::vector<std::pair<std::size_t, int>> decisions;

  /// Applicable nogoods (store entries whose dependency set is a subset
  /// of this query, plus any recorded mid-search), as dense literals,
  /// indexed by each contained literal.
  std::vector<std::vector<std::pair<std::size_t, int>>> active_nogoods;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_literal;
  std::vector<const Expr*> query_nodes;  // sorted-unique, the dep set

  struct TrailEntry {
    std::size_t var;
    ByteDomain saved_domain;
    int saved_size;
  };
  std::vector<TrailEntry> trail;
  std::vector<std::size_t> assign_trail;
  std::vector<std::size_t> count_trail;

  enum class Outcome { kSat, kUnsat, kBudget, kCancelled };

  static std::uint64_t LiteralKey(std::size_t var, int value) {
    return (static_cast<std::uint64_t>(var) << 8) |
           static_cast<std::uint64_t>(value);
  }

  void ActivateNogood(std::vector<std::pair<std::size_t, int>> lits) {
    const auto id = static_cast<std::uint32_t>(active_nogoods.size());
    active_nogoods.push_back(std::move(lits));
    for (const auto& [var, value] : active_nogoods.back()) {
      by_literal[LiteralKey(var, value)].push_back(id);
    }
  }

  /// True when trying `value` for `var` would close a recorded nogood:
  /// some active nogood contains (var, value) and every one of its other
  /// literals already holds in the current partial assignment. The
  /// subtree below is then provably model-free — skip it.
  bool NogoodBlocked(std::size_t var, int value) const {
    const auto it = by_literal.find(LiteralKey(var, value));
    if (it == by_literal.end()) return false;
    for (const std::uint32_t id : it->second) {
      bool all = true;
      for (const auto& [v2, val2] : active_nogoods[id]) {
        if (v2 == var) continue;
        if (assigned[v2] != val2) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  }

  /// On subtree exhaustion: the current decision prefix admits no model
  /// under this query's constraints. Activate it for the rest of this
  /// search and offer it to the cross-query store.
  void RecordPrefix() {
    if (decisions.empty()) return;
    ActivateNogood(decisions);
    if (store == nullptr) return;
    std::vector<NogoodStore::Literal> lits;
    lits.reserve(decisions.size());
    for (const auto& [var, value] : decisions) {
      lits.emplace_back(vars[var], static_cast<std::uint8_t>(value));
    }
    std::sort(lits.begin(), lits.end());
    store->Record(std::move(lits), query_nodes);
  }

  bool Init() {
    SortedSmallSet<std::uint32_t> all;
    cvars.resize(constraints.size());
    std::vector<SortedSmallSet<std::uint32_t>> cvar_sets(constraints.size());
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      CollectInputs(constraints[c], cvar_sets[c]);
      all.UnionWith(cvar_sets[c]);
    }
    vars.assign(all.begin(), all.end());
    for (std::size_t i = 0; i < vars.size(); ++i) var_index[vars[i]] = i;
    var_constraints.resize(vars.size());
    unassigned_count.resize(constraints.size());
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      for (const std::uint32_t off : cvar_sets[c]) {
        const std::size_t v = var_index[off];
        cvars[c].push_back(v);
        var_constraints[v].push_back(c);
      }
      unassigned_count[c] = cvars[c].size();
    }
    domain.assign(vars.size(), ByteDomain{});
    domain_size.assign(vars.size(), 256);
    assigned.assign(vars.size(), -1);
    vals.assign(vars.size(), 0);

    // Lower every constraint. Scratch is shared, sized to the largest.
    compiled.resize(constraints.size());
    std::size_t max_nodes = 0;
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      std::unordered_map<const Expr*, std::uint32_t> memo;
      CompileNode(constraints[c].get(), var_index, &memo, &compiled[c]);
      max_nodes = std::max(max_nodes, compiled[c].nodes.size());
    }
    scratch.resize(max_nodes);

    // Activate stored nogoods whose dependency constraints are all part
    // of this query (sorted-set inclusion, the same subsumption test the
    // cache's UNSAT cores use).
    query_nodes.reserve(constraints.size());
    for (const ExprRef& c : constraints) query_nodes.push_back(c.get());
    std::sort(query_nodes.begin(), query_nodes.end());
    query_nodes.erase(std::unique(query_nodes.begin(), query_nodes.end()),
                      query_nodes.end());
    if (store != nullptr) {
      for (const NogoodStore::Nogood& ng : store->all()) {
        if (ng.deps.size() > query_nodes.size() ||
            !std::includes(query_nodes.begin(), query_nodes.end(),
                           ng.deps.begin(), ng.deps.end())) {
          continue;
        }
        std::vector<std::pair<std::size_t, int>> lits;
        lits.reserve(ng.literals.size());
        bool mappable = true;
        for (const auto& [off, value] : ng.literals) {
          const auto it = var_index.find(off);
          if (it == var_index.end()) {  // dep vars ⊆ query vars; defensive
            mappable = false;
            break;
          }
          lits.emplace_back(it->second, value);
        }
        if (mappable) ActivateNogood(std::move(lits));
      }
    }

    // Unary prefilter, mirroring the oracle: fold every single-variable
    // constraint into the initial domain, seeding from the SolveContext
    // when it already applied some of them. The context stores
    // ByteDomain directly, so seeding is a mask copy here.
    prefiltered.assign(constraints.size(), false);
    for (std::size_t v = 0; v < vars.size(); ++v) {
      bool any_unary = false;
      for (const std::size_t c : var_constraints[v]) {
        if (cvars[c].size() == 1) {
          any_unary = true;
          break;
        }
      }
      if (!any_unary) continue;
      ByteDomain& dom = domain[v];
      const SolveContext::VarEntry* seed =
          ctx != nullptr ? ctx->Find(vars[v]) : nullptr;
      if (seed != nullptr) {
        dom = seed->domain;
        domain_size[v] = dom.Count();
      }
      for (const std::size_t c : var_constraints[v]) {
        if (cvars[c].size() != 1) continue;
        prefiltered[c] = true;
        if (seed != nullptr &&
            std::binary_search(seed->applied.begin(), seed->applied.end(),
                               constraints[c].get())) {
          continue;  // already folded into the seeded domain
        }
        int size = 0;
        ForEachValue(dom, [&](int value) {
          vals[v] = static_cast<std::uint8_t>(value);
          if (EvalCompiled(compiled[c], vals.data(), scratch.data()) != 0) {
            ++size;
          } else {
            dom.Reset(static_cast<unsigned>(value));
          }
        });
        vals[v] = 0;
        domain_size[v] = size;
      }
      if (domain_size[v] == 0) return false;
    }
    return true;
  }

  bool Assign(std::size_t v, int value) {
    assigned[v] = value;
    vals[v] = static_cast<std::uint8_t>(value);
    assign_trail.push_back(v);
    for (const std::size_t c : var_constraints[v]) {
      --unassigned_count[c];
      count_trail.push_back(c);
      if (unassigned_count[c] == 0) {
        ++steps;
        if (EvalCompiled(compiled[c], vals.data(), scratch.data()) == 0) {
          return false;
        }
      }
    }
    return true;
  }

  int FilterDomain(std::size_t v, std::size_t c) {
    ByteDomain& dom = domain[v];
    trail.push_back({v, dom, domain_size[v]});
    int size = 0;
    ForEachValue(dom, [&](int value) {
      ++steps;
      vals[v] = static_cast<std::uint8_t>(value);
      if (EvalCompiled(compiled[c], vals.data(), scratch.data()) != 0) {
        ++size;
      } else {
        dom.Reset(static_cast<unsigned>(value));
      }
    });
    vals[v] = 0;
    domain_size[v] = size;
    return size;
  }

  bool Propagate(std::deque<std::size_t> queue) {
    while (!queue.empty()) {
      if (steps > max_steps) return true;  // caller re-checks budget
      if (Cancelled()) return true;        // ditto for cancellation
      const std::size_t c = queue.front();
      queue.pop_front();
      if (unassigned_count[c] != 1) continue;
      std::size_t v = 0;
      for (const std::size_t cand : cvars[c]) {
        if (assigned[cand] < 0) {
          v = cand;
          break;
        }
      }
      const int size = FilterDomain(v, c);
      if (size == 0) return false;
      if (size == 1) {
        int value = 0;
        for (int w = 0; w < 4; ++w) {
          if (domain[v].bits[w] != 0) {
            value = w * 64 + __builtin_ctzll(domain[v].bits[w]);
            break;
          }
        }
        if (!Assign(v, value)) return false;
        for (const std::size_t c2 : var_constraints[v]) {
          if (unassigned_count[c2] == 1) queue.push_back(c2);
        }
      }
    }
    return true;
  }

  std::deque<std::size_t> InitialUnits() {
    std::deque<std::size_t> queue;
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      if (unassigned_count[c] == 1 && !prefiltered[c]) queue.push_back(c);
    }
    return queue;
  }

  struct Checkpoint {
    std::size_t trail_size;
    std::size_t assign_trail_size;
    std::size_t count_trail_size;
  };

  Checkpoint Mark() const {
    return {trail.size(), assign_trail.size(), count_trail.size()};
  }

  void Rollback(const Checkpoint& cp) {
    while (count_trail.size() > cp.count_trail_size) {
      ++unassigned_count[count_trail.back()];
      count_trail.pop_back();
    }
    while (assign_trail.size() > cp.assign_trail_size) {
      const std::size_t v = assign_trail.back();
      assign_trail.pop_back();
      vals[v] = 0;
      assigned[v] = -1;
    }
    while (trail.size() > cp.trail_size) {
      TrailEntry& e = trail.back();
      domain[e.var] = e.saved_domain;
      domain_size[e.var] = e.saved_size;
      trail.pop_back();
    }
  }

  Outcome Run() {
    if (!Init()) return Outcome::kUnsat;
    if (!Propagate(InitialUnits())) return Outcome::kUnsat;
    if (cancelled) return Outcome::kCancelled;
    if (steps > max_steps) return Outcome::kBudget;
    return Backtrack();
  }

  Outcome Backtrack() {
    if (Cancelled()) return Outcome::kCancelled;
    if (steps > max_steps) return Outcome::kBudget;
    // Identical branching rule to the oracle: smallest domain, lowest
    // dense index on ties.
    std::size_t best = vars.size();
    for (std::size_t v = 0; v < vars.size(); ++v) {
      if (assigned[v] >= 0) continue;
      if (best == vars.size() || domain_size[v] < domain_size[best]) {
        best = v;
      }
    }
    if (best == vars.size()) return Outcome::kSat;

    // Identical value order: hint first, then ascending.
    std::vector<int> values;
    values.reserve(domain_size[best]);
    const auto hint = hints.find(vars[best]);
    if (hint != hints.end() &&
        domain[best].Test(static_cast<unsigned>(hint->second))) {
      values.push_back(hint->second);
    }
    ForEachValue(domain[best], [&](int value) {
      if (hint != hints.end() && value == hint->second) return;
      values.push_back(value);
    });

    for (const int value : values) {
      ++steps;
      if (Cancelled()) return Outcome::kCancelled;
      if (steps > max_steps) return Outcome::kBudget;
      // A closed nogood proves this branch model-free: skipping it
      // cannot change the first model or the kUnsat verdict.
      if (NogoodBlocked(best, value)) continue;
      const Checkpoint cp = Mark();
      decisions.emplace_back(best, value);
      std::deque<std::size_t> queue;
      bool ok = Assign(best, value);
      if (ok) {
        for (const std::size_t c : var_constraints[best]) {
          if (unassigned_count[c] == 1) queue.push_back(c);
        }
        ok = Propagate(std::move(queue));
      }
      if (ok && cancelled) return Outcome::kCancelled;
      if (ok && steps > max_steps) return Outcome::kBudget;
      if (ok) {
        const Outcome sub = Backtrack();
        if (sub != Outcome::kUnsat) return sub;
      }
      decisions.pop_back();
      Rollback(cp);
    }
    // Every value either failed under search or closed a recorded
    // nogood (itself a proof of emptiness): the whole subtree below the
    // current decision prefix is model-free. Only genuine exhaustion
    // reaches here — budget and cancellation return through the paths
    // above and never record.
    RecordPrefix();
    return Outcome::kUnsat;
  }

  Model TakeModel() const {
    Model model;
    for (std::size_t v = 0; v < vars.size(); ++v) {
      model.emplace_hint(model.end(), vars[v],
                         static_cast<std::uint8_t>(assigned[v]));
    }
    return model;
  }
};

class PropagateBackend final : public SolverBackend {
 public:
  const char* name() const override { return "propagate"; }

  SolveResult Solve(const std::vector<ExprRef>& constraints,
                    const SolverOptions& options) const override {
    PropagateSearch search(constraints, options);
    const PropagateSearch::Outcome outcome = search.Run();
    SolveResult result;
    result.steps = search.steps;
    switch (outcome) {
      case PropagateSearch::Outcome::kSat:
        result.status = SolveStatus::kSat;
        result.model = search.TakeModel();
        break;
      case PropagateSearch::Outcome::kUnsat:
        result.status = SolveStatus::kUnsat;
        break;
      case PropagateSearch::Outcome::kBudget:
        result.status = SolveStatus::kUnknown;
        break;
      case PropagateSearch::Outcome::kCancelled:
        result.status = SolveStatus::kCancelled;
        break;
    }
    return result;
  }
};

}  // namespace

const SolverBackend& PropagateBackendInstance() {
  static const PropagateBackend backend;
  return backend;
}

void NogoodStore::Record(std::vector<Literal> literals,
                         std::vector<const Expr*> deps) {
  if (literals.empty()) return;
  // Drop entries a stored nogood already generalizes (same literals,
  // dependency subset). Linear scan: the store is small by design.
  for (const Nogood& ng : nogoods_) {
    if (ng.literals == literals && ng.deps.size() <= deps.size() &&
        std::includes(deps.begin(), deps.end(), ng.deps.begin(),
                      ng.deps.end())) {
      return;
    }
  }
  if (nogoods_.size() >= kMaxNogoods) {
    // Prefer short (general) nogoods: evict the longest stored entry
    // when the newcomer is strictly shorter, else drop the newcomer.
    auto longest = nogoods_.begin();
    for (auto it = nogoods_.begin(); it != nogoods_.end(); ++it) {
      if (it->literals.size() > longest->literals.size()) longest = it;
    }
    if (longest->literals.size() <= literals.size()) return;
    *longest = Nogood{std::move(literals), std::move(deps)};
    return;
  }
  nogoods_.push_back(Nogood{std::move(literals), std::move(deps)});
}

}  // namespace octopocs::symex
