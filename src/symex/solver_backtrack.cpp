// The original recursive CSP search, preserved verbatim as the A/B
// oracle behind SolverBackend. Slow and simple on purpose: std::array
// domains, tree-walking Eval, no nogoods. The propagate core must agree
// with this one on every definitive answer (status and first model), and
// CI diffs whole-corpus runs of both to hold it to that.
#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <vector>

#include "symex/solver.h"

namespace octopocs::symex {

namespace {

/// Propagation-queue CSP search with trail-based backtracking.
///
/// Domains live in a dense table; constraints carry an unassigned-var
/// counter. Whenever a constraint drops to one unassigned variable it is
/// queued and its variable's domain is filtered by evaluation (256
/// probes); singleton domains assign immediately and cascade. Branching
/// picks the smallest-domain variable, trying the hinted value first.
struct Search {
  Search(const std::vector<ExprRef>& constraints_in, const Model& hints_in,
         std::uint64_t max_steps_in, support::CancelToken cancel_in,
         const SolveContext* ctx_in)
      : constraints(constraints_in),
        hints(hints_in),
        max_steps(max_steps_in),
        cancel(cancel_in),
        ctx(ctx_in) {}

  const std::vector<ExprRef>& constraints;
  const Model& hints;
  std::uint64_t max_steps;
  support::CancelToken cancel;  // local copy; poll counters are ours
  const SolveContext* ctx;      // optional prefix-domain accelerator
  std::uint64_t steps = 0;
  bool cancelled = false;

  bool Cancelled() {
    if (!cancelled && cancel.ShouldStop()) cancelled = true;
    return cancelled;
  }

  std::vector<std::uint32_t> vars;               // dense index → offset
  std::map<std::uint32_t, std::size_t> var_index;
  std::vector<std::vector<std::size_t>> var_constraints;  // var → c-ids
  std::vector<std::vector<std::size_t>> cvars;            // c-id → vars
  std::vector<std::size_t> unassigned_count;              // per constraint

  std::vector<std::array<bool, 256>> domain;
  std::vector<int> domain_size;
  std::vector<int> assigned;  // -1 = unassigned, else the value
  Model assignment;           // offset → value (mirrors `assigned`)
  std::vector<bool> prefiltered;  // unary constraints folded at init

  struct TrailEntry {
    std::size_t var;
    std::array<bool, 256> saved_domain;
    int saved_size;
  };
  std::vector<TrailEntry> trail;
  std::vector<std::size_t> assign_trail;  // vars assigned, for undo
  std::vector<std::size_t> count_trail;   // constraints decremented

  enum class Outcome { kSat, kUnsat, kBudget, kCancelled };

  bool Init() {
    SortedSmallSet<std::uint32_t> all;
    cvars.resize(constraints.size());
    std::vector<SortedSmallSet<std::uint32_t>> cvar_sets(constraints.size());
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      CollectInputs(constraints[c], cvar_sets[c]);
      all.UnionWith(cvar_sets[c]);
    }
    vars.assign(all.begin(), all.end());
    for (std::size_t i = 0; i < vars.size(); ++i) var_index[vars[i]] = i;
    var_constraints.resize(vars.size());
    unassigned_count.resize(constraints.size());
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      for (const std::uint32_t off : cvar_sets[c]) {
        const std::size_t v = var_index[off];
        cvars[c].push_back(v);
        var_constraints[v].push_back(c);
      }
      unassigned_count[c] = cvars[c].size();
    }
    domain.assign(vars.size(), {});
    for (auto& d : domain) d.fill(true);
    domain_size.assign(vars.size(), 256);
    assigned.assign(vars.size(), -1);

    // Unary prefilter: every constraint over a single variable folds
    // into that variable's *initial* domain here, rather than through
    // the propagation queue. When the caller supplies a SolveContext
    // that already applied some of these constraints, its recorded
    // domain seeds the fold and those constraints' 256-probe
    // evaluations are skipped — the incremental-prefix saving. The
    // final domains are identical either way (filtering is idempotent
    // and intersection commutes), so context presence cannot change
    // the search outcome. Prefilter probes are setup, not search, and
    // do not count toward the step budget.
    prefiltered.assign(constraints.size(), false);
    Model probe;
    for (std::size_t v = 0; v < vars.size(); ++v) {
      bool any_unary = false;
      for (const std::size_t c : var_constraints[v]) {
        if (cvars[c].size() == 1) {
          any_unary = true;
          break;
        }
      }
      if (!any_unary) continue;
      auto& dom = domain[v];
      const std::uint32_t off = vars[v];
      const SolveContext::VarEntry* seed =
          ctx != nullptr ? ctx->Find(off) : nullptr;
      if (seed != nullptr) {
        int size = 0;
        for (int value = 0; value < 256; ++value) {
          dom[value] = seed->domain.Test(static_cast<unsigned>(value));
          size += dom[value] ? 1 : 0;
        }
        domain_size[v] = size;
      }
      for (const std::size_t c : var_constraints[v]) {
        if (cvars[c].size() != 1) continue;
        prefiltered[c] = true;
        if (seed != nullptr &&
            std::binary_search(seed->applied.begin(), seed->applied.end(),
                               constraints[c].get())) {
          continue;  // already folded into the seeded domain
        }
        int size = 0;
        std::uint8_t& cell = probe[off];
        for (int value = 0; value < 256; ++value) {
          if (!dom[value]) continue;
          cell = static_cast<std::uint8_t>(value);
          if (Eval(constraints[c], probe) != 0) {
            ++size;
          } else {
            dom[value] = false;
          }
        }
        probe.erase(off);
        domain_size[v] = size;
      }
      if (domain_size[v] == 0) return false;
    }
    return true;
  }

  /// Assigns var v := value, updating constraint counters. Records undo
  /// info. Returns false on immediate conflict (a fully-assigned
  /// constraint evaluating false).
  bool Assign(std::size_t v, int value) {
    assigned[v] = value;
    assignment[vars[v]] = static_cast<std::uint8_t>(value);
    assign_trail.push_back(v);
    for (const std::size_t c : var_constraints[v]) {
      --unassigned_count[c];
      count_trail.push_back(c);
      if (unassigned_count[c] == 0) {
        ++steps;
        if (Eval(constraints[c], assignment) == 0) return false;
      }
    }
    return true;
  }

  /// Filters `v`'s domain against constraint `c` (which must have `v`
  /// as its only unassigned variable). Returns the new domain size.
  int FilterDomain(std::size_t v, std::size_t c) {
    auto& dom = domain[v];
    // Save the domain once per (decision level, var) — conservatively
    // per call; the trail replays in reverse so repeated saves are fine.
    trail.push_back({v, dom, domain_size[v]});
    int size = 0;
    const std::uint32_t off = vars[v];
    for (int value = 0; value < 256; ++value) {
      if (!dom[value]) continue;
      ++steps;
      assignment[off] = static_cast<std::uint8_t>(value);
      if (Eval(constraints[c], assignment) != 0) {
        ++size;
      } else {
        dom[value] = false;
      }
    }
    assignment.erase(off);
    domain_size[v] = size;
    return size;
  }

  /// Unit propagation to fixpoint from the constraints of `seed_vars`.
  /// Returns false on wipe-out or constraint violation.
  bool Propagate(std::deque<std::size_t> queue) {
    while (!queue.empty()) {
      if (steps > max_steps) return true;  // caller re-checks budget
      if (Cancelled()) return true;        // ditto for cancellation
      const std::size_t c = queue.front();
      queue.pop_front();
      if (unassigned_count[c] != 1) continue;
      // Locate the single unassigned variable.
      std::size_t v = 0;
      for (const std::size_t cand : cvars[c]) {
        if (assigned[cand] < 0) {
          v = cand;
          break;
        }
      }
      const int size = FilterDomain(v, c);
      if (size == 0) return false;
      if (size == 1) {
        int value = 0;
        for (int i = 0; i < 256; ++i) {
          if (domain[v][i]) {
            value = i;
            break;
          }
        }
        if (!Assign(v, value)) return false;
        for (const std::size_t c2 : var_constraints[v]) {
          if (unassigned_count[c2] == 1) queue.push_back(c2);
        }
      }
    }
    return true;
  }

  std::deque<std::size_t> InitialUnits() {
    std::deque<std::size_t> queue;
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      if (unassigned_count[c] == 1 && !prefiltered[c]) queue.push_back(c);
    }
    return queue;
  }

  struct Checkpoint {
    std::size_t trail_size;
    std::size_t assign_trail_size;
    std::size_t count_trail_size;
  };

  Checkpoint Mark() const {
    return {trail.size(), assign_trail.size(), count_trail.size()};
  }

  void Rollback(const Checkpoint& cp) {
    while (count_trail.size() > cp.count_trail_size) {
      ++unassigned_count[count_trail.back()];
      count_trail.pop_back();
    }
    while (assign_trail.size() > cp.assign_trail_size) {
      const std::size_t v = assign_trail.back();
      assign_trail.pop_back();
      assignment.erase(vars[v]);
      assigned[v] = -1;
    }
    while (trail.size() > cp.trail_size) {
      TrailEntry& e = trail.back();
      domain[e.var] = e.saved_domain;
      domain_size[e.var] = e.saved_size;
      trail.pop_back();
    }
  }

  Outcome Run() {
    if (!Init()) return Outcome::kUnsat;
    if (!Propagate(InitialUnits())) return Outcome::kUnsat;
    if (cancelled) return Outcome::kCancelled;
    if (steps > max_steps) return Outcome::kBudget;
    return Backtrack();
  }

  Outcome Backtrack() {
    if (Cancelled()) return Outcome::kCancelled;
    if (steps > max_steps) return Outcome::kBudget;
    // Pick the unassigned variable with the smallest domain.
    std::size_t best = vars.size();
    for (std::size_t v = 0; v < vars.size(); ++v) {
      if (assigned[v] >= 0) continue;
      if (best == vars.size() || domain_size[v] < domain_size[best]) {
        best = v;
      }
    }
    if (best == vars.size()) return Outcome::kSat;

    // Value order: hint first, then ascending.
    std::vector<int> values;
    values.reserve(domain_size[best]);
    const auto hint = hints.find(vars[best]);
    if (hint != hints.end() && domain[best][hint->second]) {
      values.push_back(hint->second);
    }
    for (int value = 0; value < 256; ++value) {
      if (!domain[best][value]) continue;
      if (hint != hints.end() && value == hint->second) continue;
      values.push_back(value);
    }

    for (const int value : values) {
      ++steps;
      if (Cancelled()) return Outcome::kCancelled;
      if (steps > max_steps) return Outcome::kBudget;
      const Checkpoint cp = Mark();
      std::deque<std::size_t> queue;
      bool ok = Assign(best, value);
      if (ok) {
        for (const std::size_t c : var_constraints[best]) {
          if (unassigned_count[c] == 1) queue.push_back(c);
        }
        ok = Propagate(std::move(queue));
      }
      if (ok && cancelled) return Outcome::kCancelled;
      if (ok && steps > max_steps) return Outcome::kBudget;
      if (ok) {
        const Outcome sub = Backtrack();
        if (sub != Outcome::kUnsat) return sub;
      }
      Rollback(cp);
    }
    return Outcome::kUnsat;
  }
};

class BacktrackBackend final : public SolverBackend {
 public:
  const char* name() const override { return "backtrack"; }

  SolveResult Solve(const std::vector<ExprRef>& constraints,
                    const SolverOptions& options) const override {
    Search search{constraints, options.hints, options.max_steps,
                  options.cancel, options.context};
    const Search::Outcome outcome = search.Run();
    SolveResult result;
    result.steps = search.steps;
    switch (outcome) {
      case Search::Outcome::kSat:
        result.status = SolveStatus::kSat;
        result.model = std::move(search.assignment);
        break;
      case Search::Outcome::kUnsat:
        result.status = SolveStatus::kUnsat;
        break;
      case Search::Outcome::kBudget:
        result.status = SolveStatus::kUnknown;
        break;
      case Search::Outcome::kCancelled:
        result.status = SolveStatus::kCancelled;
        break;
    }
    return result;
  }
};

}  // namespace

const SolverBackend& BacktrackBackendInstance() {
  static const BacktrackBackend backend;
  return backend;
}

}  // namespace octopocs::symex
