#include "symex/solver.h"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "support/fault.h"
#include "symex/solver_backends.h"

namespace octopocs::symex {

std::optional<SolverBackendKind> ParseSolverBackend(std::string_view name) {
  if (name == "backtrack") return SolverBackendKind::kBacktrack;
  if (name == "propagate") return SolverBackendKind::kPropagate;
  if (name == "portfolio") return SolverBackendKind::kPortfolio;
  return std::nullopt;
}

const char* SolverBackendName(SolverBackendKind kind) {
  switch (kind) {
    case SolverBackendKind::kBacktrack:
      return "backtrack";
    case SolverBackendKind::kPropagate:
      return "propagate";
    case SolverBackendKind::kPortfolio:
      return "portfolio";
  }
  return "?";
}

std::uint64_t SolverCache::HashKey(const std::vector<ExprRef>& constraints) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over node addresses
  for (const ExprRef& c : constraints) {
    h ^= reinterpret_cast<std::uintptr_t>(c.get());
    h *= 0x100000001b3ull;
  }
  return h;
}

bool SolverCache::KeyEquals(const std::vector<const Expr*>& key,
                            const std::vector<ExprRef>& constraints) {
  if (key.size() != constraints.size()) return false;
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (key[i] != constraints[i].get()) return false;
  }
  return true;
}

const SolverCache::Entry* SolverCache::FindExact(
    const std::vector<ExprRef>& constraints) const {
  const auto it = buckets_.find(HashKey(constraints));
  if (it == buckets_.end()) return nullptr;
  for (const Entry& entry : it->second) {
    if (KeyEquals(entry.key, constraints)) return &entry;
  }
  return nullptr;
}

bool SolverCache::TryModelReuse(const std::vector<ExprRef>& constraints,
                                const Model& pins, const Model& hints,
                                const std::vector<Model>& pool,
                                Model* out) const {
  // Assemble a candidate assignment over exactly the constrained
  // variables and *evaluate* the full constraint set under it — a reuse
  // hit is a certificate, never a guess, and kUnsat can never come from
  // this path. Per variable the candidate takes the pinned value (the
  // constraints force it), else the cached model's, else the hint — the
  // value a fresh hint-guided search would try first. The first
  // candidate uses no cached model at all, which captures the common
  // case of a guiding path the original PoC bytes already satisfy; then
  // recent models, newest first.
  SortedSmallSet<std::uint32_t> vars;
  for (const ExprRef& c : constraints) vars.UnionWith(FreeVars(c));
  for (std::size_t i = pool.size() + 1; i-- > 0;) {
    const Model* reuse = i == 0 ? nullptr : &pool[i - 1];
    Model candidate;
    for (const std::uint32_t var : vars) {
      if (const auto pin = pins.find(var); pin != pins.end()) {
        candidate[var] = pin->second;
      } else if (reuse != nullptr && reuse->count(var) != 0) {
        candidate[var] = reuse->at(var);
      } else if (const auto hint = hints.find(var); hint != hints.end()) {
        candidate[var] = hint->second;
      }  // else absent: evaluates as 0, the solver default
    }
    bool satisfied = true;
    for (const ExprRef& c : constraints) {
      if (Eval(c, candidate) == 0) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) {
      *out = std::move(candidate);
      return true;
    }
  }
  return false;
}

const SolveResult* SolverCache::Lookup(
    const std::vector<ExprRef>& constraints, const Model& pins,
    const Model& hints) {
  if (const Entry* entry = FindExact(constraints)) {
    ++stats_.hits;
    ++stats_.exact_hits;
    return &entry->result;
  }
  Model candidate;
  if (TryModelReuse(constraints, pins, hints, reuse_models_, &candidate)) {
    ++stats_.hits;
    ++stats_.model_reuse_hits;
    reuse_scratch_.status = SolveStatus::kSat;
    reuse_scratch_.model = std::move(candidate);
    reuse_scratch_.steps = 0;
    return &reuse_scratch_;
  }
  ++stats_.misses;
  return nullptr;
}

const SolveResult& SolverCache::StoreEntry(
    const std::vector<ExprRef>& constraints, SolveResult result) {
  Entry entry;
  entry.key.reserve(constraints.size());
  for (const ExprRef& c : constraints) entry.key.push_back(c.get());
  entry.result = std::move(result);
  auto& bucket = buckets_[HashKey(constraints)];
  bucket.push_back(std::move(entry));
  ++entries_;
  return bucket.back().result;
}

void SolverCache::RememberUnsat(const std::vector<ExprRef>& constraints) {
  if (unsat_cores_.size() >= kMaxUnsatCores) return;
  std::vector<const Expr*> core;
  core.reserve(constraints.size());
  for (const ExprRef& c : constraints) core.push_back(c.get());
  std::sort(core.begin(), core.end());
  core.erase(std::unique(core.begin(), core.end()), core.end());
  unsat_cores_.push_back(std::move(core));
}

const SolveResult& SolverCache::Insert(
    const std::vector<ExprRef>& constraints, SolveResult result) {
  const SolveResult& stored = StoreEntry(constraints, std::move(result));
  if (stored.status == SolveStatus::kSat) {
    reuse_models_.push_back(stored.model);
    if (reuse_models_.size() > kMaxReuseModels) {
      reuse_models_.erase(reuse_models_.begin());
    }
  } else if (stored.status == SolveStatus::kUnsat) {
    RememberUnsat(constraints);
  }
  return stored;
}

SolveResult SolverCache::Solve(const std::vector<ExprRef>& raw,
                               const Model& pins,
                               const SolverOptions& options,
                               SolveContext* ctx) {
  // Normalize the way a fresh ByteSolver would: constant-true
  // constraints vanish, constant-false poisons the system, duplicate
  // nodes collapse under pointer identity. The normalized sequence is
  // the cache key, so a re-asserted pin cannot split the memo.
  SolveResult out;
  std::vector<ExprRef> constraints;
  constraints.reserve(raw.size());
  {
    std::unordered_set<const Expr*> seen;
    for (const ExprRef& c : raw) {
      if (c->IsConst()) {
        if (c->value == 0) {
          out.status = SolveStatus::kUnsat;
          return out;  // trivial; not worth a cache entry or a counter
        }
        continue;
      }
      if (seen.insert(c.get()).second) constraints.push_back(c);
    }
  }
  if (constraints.empty()) {
    out.status = SolveStatus::kSat;
    return out;  // vacuously satisfiable; not a cacheable query
  }

  // 1. Exact memo. Steps report the work done by *this* call, so a hit
  // contributes zero to the caller's search-effort accounting.
  if (const Entry* entry = FindExact(constraints)) {
    ++stats_.hits;
    ++stats_.exact_hits;
    out = entry->result;
    out.steps = 0;
    if (out.status == SolveStatus::kSat && ctx != nullptr) {
      ctx->NoteModel(out.model);
    }
    return out;
  }

  // 2. Subsumption. The context's wiped-out domain is an UNSAT unary
  // subset of this very query (every applied constraint is a query
  // member by the executor's contract); likewise any remembered UNSAT
  // core contained in the query proves it UNSAT. Verdict-only — no
  // model, no search.
  if (ctx != nullptr && ctx->known_unsat()) {
    ++stats_.hits;
    ++stats_.subsumption_hits;
    out.status = SolveStatus::kUnsat;
    return out;
  }
  std::vector<const Expr*> sorted_key;
  sorted_key.reserve(constraints.size());
  for (const ExprRef& c : constraints) sorted_key.push_back(c.get());
  std::sort(sorted_key.begin(), sorted_key.end());
  for (const auto& core : unsat_cores_) {
    if (core.size() <= sorted_key.size() &&
        std::includes(sorted_key.begin(), sorted_key.end(), core.begin(),
                      core.end())) {
      ++stats_.hits;
      ++stats_.subsumption_hits;
      out.status = SolveStatus::kUnsat;
      return out;
    }
  }

  // 3. Certified model reuse, from the state's own pool when a context
  // is supplied (pure per state), else the global most-recent pool.
  Model candidate;
  const std::vector<Model>& pool =
      ctx != nullptr ? ctx->recent_models() : reuse_models_;
  if (TryModelReuse(constraints, pins, options.hints, pool, &candidate)) {
    ++stats_.hits;
    ++stats_.model_reuse_hits;
    out.status = SolveStatus::kSat;
    out.model = std::move(candidate);
    if (ctx != nullptr) ctx->NoteModel(out.model);
    return out;
  }

  // 4. Fresh search through the configured backend, which also taps the
  // cache's cross-query nogood store — the sub-branch analogue of the
  // UNSAT-core tier above.
  SolverOptions fresh_options = options;
  fresh_options.context = ctx;
  fresh_options.nogoods = &nogoods_;
  ByteSolver solver(fresh_options);
  out = solver.SolveWith(constraints);
  ++stats_.misses;

  if (out.status == SolveStatus::kSat || out.status == SolveStatus::kUnsat) {
    StoreEntry(constraints, out);
    if (out.status == SolveStatus::kUnsat) {
      RememberUnsat(constraints);
    } else if (ctx != nullptr) {
      ctx->NoteModel(out.model);
    } else {
      reuse_models_.push_back(out.model);
      if (reuse_models_.size() > kMaxReuseModels) {
        reuse_models_.erase(reuse_models_.begin());
      }
    }
  }
  return out;
}

void ByteSolver::Add(ExprRef expr) {
  // A constant constraint either disappears or poisons the system.
  if (expr->IsConst() && expr->value != 0) return;
  constraints_.push_back(std::move(expr));
}

void ByteSolver::AddEq(ExprRef expr, std::uint64_t value) {
  Add(MakeBinOp(vm::Op::kCmpEq, std::move(expr), MakeConst(value)));
}

void ByteSolver::Pin(std::uint32_t offset, std::uint8_t value) {
  AddEq(MakeInput(offset), value);
}

namespace {

/// Tries to read `expr` as a little-endian byte concatenation — the
/// shape LoadWide builds: or(or(b0, shl(b1,8)), shl(b2,16))... Returns
/// lane→input-offset on success. This powers the key propagation rule:
/// an equality between a concatenation and a constant decomposes into
/// per-byte pins, which turns the dominant "magic/field == K" constraint
/// from a 256^n search into unit propagation.
bool AsByteConcat(const ExprRef& expr, unsigned shift,
                  std::map<unsigned, std::uint32_t>* lanes) {
  switch (expr->kind) {
    case ExprKind::kInput: {
      if (shift % 8 != 0) return false;
      const unsigned lane = shift / 8;
      if (lanes->count(lane) != 0) return false;
      (*lanes)[lane] = expr->offset;
      return true;
    }
    case ExprKind::kBinOp:
      if (expr->op == vm::Op::kOr) {
        return AsByteConcat(expr->lhs, shift, lanes) &&
               AsByteConcat(expr->rhs, shift, lanes);
      }
      if (expr->op == vm::Op::kShl && expr->rhs->IsConst()) {
        return AsByteConcat(expr->lhs,
                            shift + static_cast<unsigned>(expr->rhs->value),
                            lanes);
      }
      return false;
    default:
      return false;
  }
}

/// If `constraint` is CmpEq(concat, K), appends the per-byte equalities
/// to `out` (or a constant-false when K has bits outside the lanes).
/// Returns true when a decomposition happened.
bool DecomposeConcatEquality(const ExprRef& constraint,
                             std::vector<ExprRef>* out) {
  if (constraint->kind != ExprKind::kBinOp ||
      constraint->op != vm::Op::kCmpEq) {
    return false;
  }
  ExprRef concat, konst;
  if (constraint->rhs->IsConst()) {
    concat = constraint->lhs;
    konst = constraint->rhs;
  } else if (constraint->lhs->IsConst()) {
    concat = constraint->rhs;
    konst = constraint->lhs;
  } else {
    return false;
  }
  std::map<unsigned, std::uint32_t> lanes;
  if (!AsByteConcat(concat, 0, &lanes) || lanes.empty()) return false;
  std::uint64_t covered = 0;
  SortedSmallSet<std::uint32_t> seen;
  for (const auto& [lane, offset] : lanes) {
    if (lane >= 8 || seen.Contains(offset)) return false;
    seen.Insert(offset);
    covered |= 0xFFull << (8 * lane);
  }
  if ((konst->value & ~covered) != 0) {
    out->push_back(MakeConst(0));  // impossible: bits outside any lane
    return true;
  }
  for (const auto& [lane, offset] : lanes) {
    out->push_back(MakeBinOp(
        vm::Op::kCmpEq, MakeInput(offset),
        MakeConst((konst->value >> (8 * lane)) & 0xFF)));
  }
  return true;
}

bool Definitive(SolveStatus s) {
  return s == SolveStatus::kSat || s == SolveStatus::kUnsat;
}

/// Races the propagate core against the backtrack oracle on two
/// threads; the first definitive answer wins and cancels the loser
/// through a shared stop flag folded into the racers' CancelTokens.
///
/// Determinism (DESIGN.md §15): the cores are answer-identical, so for
/// any input whose winner is definitive the returned status and model
/// do not depend on which thread finished first. When neither leg is
/// definitive the tie-break is fixed — prefer the propagate leg's
/// status — so kUnknown/kCancelled outcomes are reproducible too (step
/// counts, a diagnostic, are the only racy field).
///
/// The caller's own CancelToken may carry an external kill flag the
/// racer tokens cannot share (a token folds in exactly one flag), so
/// the coordinating thread polls the caller's token and trips the race
/// flag on its behalf.
class PortfolioBackend final : public SolverBackend {
 public:
  const char* name() const override { return "portfolio"; }

  SolveResult Solve(const std::vector<ExprRef>& constraints,
                    const SolverOptions& options) const override {
    std::atomic<bool> race_done{false};
    SolverOptions racer = options;
    racer.cancel =
        support::CancelToken(options.cancel.deadline(), &race_done);

    std::mutex m;
    std::condition_variable cv;
    struct Leg {
      SolveResult result;
      bool finished = false;
    };
    Leg legs[2];  // 0 = propagate, 1 = backtrack

    const auto run = [&](int i) {
      SolveResult r;
      try {
        r = (i == 0 ? PropagateBackendInstance() : BacktrackBackendInstance())
                .Solve(constraints, racer);
      } catch (...) {
        r.status = SolveStatus::kUnknown;  // a dead leg must not end the race
      }
      std::lock_guard<std::mutex> lock(m);
      legs[i].result = std::move(r);
      legs[i].finished = true;
      if (Definitive(legs[i].result.status)) {
        race_done.store(true, std::memory_order_relaxed);
      }
      cv.notify_all();
    };

    std::thread propagate_leg(run, 0);
    std::thread backtrack_leg(run, 1);
    {
      support::CancelToken caller = options.cancel;
      std::unique_lock<std::mutex> lock(m);
      while (!((legs[0].finished && Definitive(legs[0].result.status)) ||
               (legs[1].finished && Definitive(legs[1].result.status)) ||
               (legs[0].finished && legs[1].finished))) {
        cv.wait_for(lock, std::chrono::milliseconds(1));
        if (caller.Check()) break;  // relay an external kill to the racers
      }
      race_done.store(true, std::memory_order_relaxed);
    }
    propagate_leg.join();
    backtrack_leg.join();

    // Both are final now. Prefer a definitive leg; when both qualify
    // (or neither does), propagate's answer is canonical.
    if (Definitive(legs[0].result.status)) return std::move(legs[0].result);
    if (Definitive(legs[1].result.status)) return std::move(legs[1].result);
    return std::move(legs[0].result);
  }
};

}  // namespace

const SolverBackend& GetSolverBackend(SolverBackendKind kind) {
  static const PortfolioBackend portfolio;
  switch (kind) {
    case SolverBackendKind::kBacktrack:
      return BacktrackBackendInstance();
    case SolverBackendKind::kPropagate:
      return PropagateBackendInstance();
    case SolverBackendKind::kPortfolio:
      return portfolio;
  }
  return PropagateBackendInstance();
}

SolveResult ByteSolver::Solve() const { return SolveWith({}); }

SolveResult ByteSolver::SolveWith(const std::vector<ExprRef>& extra) const {
  support::fault::MaybeThrow(support::FaultSite::kSolverStep);
  std::vector<ExprRef> all = constraints_;
  bool poisoned = false;
  for (const ExprRef& e : extra) {
    if (e->IsConst()) {
      if (e->value == 0) poisoned = true;
      continue;
    }
    all.push_back(e);
  }
  // Interning canonicalizes structurally-equal constraints to one node,
  // so duplicates (the same pin re-asserted along a path, a re-built
  // guard) collapse under pointer identity before the search sees them.
  {
    std::unordered_set<const Expr*> seen;
    std::size_t kept = 0;
    for (ExprRef& e : all) {
      if (seen.insert(e.get()).second) all[kept++] = std::move(e);
    }
    all.resize(kept);
  }
  // Propagation pre-pass: decompose concat equalities into byte pins so
  // unit propagation starts from singleton domains for multi-byte
  // fields. Runs before backend dispatch, so every core sees the same
  // preprocessed system — a prerequisite for answer identity.
  {
    std::vector<ExprRef> derived;
    for (const ExprRef& e : all) DecomposeConcatEquality(e, &derived);
    all.insert(all.end(), derived.begin(), derived.end());
  }
  SolveResult result;
  if (poisoned) {
    result.status = SolveStatus::kUnsat;
    return result;
  }
  for (const ExprRef& e : all) {
    if (e->IsConst() && e->value == 0) {
      result.status = SolveStatus::kUnsat;
      return result;
    }
  }
  return GetSolverBackend(options_.backend).Solve(all, options_);
}

}  // namespace octopocs::symex
