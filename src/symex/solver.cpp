#include "symex/solver.h"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "support/fault.h"

namespace octopocs::symex {

std::uint64_t SolverCache::HashKey(const std::vector<ExprRef>& constraints) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over node addresses
  for (const ExprRef& c : constraints) {
    h ^= reinterpret_cast<std::uintptr_t>(c.get());
    h *= 0x100000001b3ull;
  }
  return h;
}

bool SolverCache::KeyEquals(const std::vector<const Expr*>& key,
                            const std::vector<ExprRef>& constraints) {
  if (key.size() != constraints.size()) return false;
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (key[i] != constraints[i].get()) return false;
  }
  return true;
}

const SolverCache::Entry* SolverCache::FindExact(
    const std::vector<ExprRef>& constraints) const {
  const auto it = buckets_.find(HashKey(constraints));
  if (it == buckets_.end()) return nullptr;
  for (const Entry& entry : it->second) {
    if (KeyEquals(entry.key, constraints)) return &entry;
  }
  return nullptr;
}

bool SolverCache::TryModelReuse(const std::vector<ExprRef>& constraints,
                                const Model& pins, const Model& hints,
                                const std::vector<Model>& pool,
                                Model* out) const {
  // Assemble a candidate assignment over exactly the constrained
  // variables and *evaluate* the full constraint set under it — a reuse
  // hit is a certificate, never a guess, and kUnsat can never come from
  // this path. Per variable the candidate takes the pinned value (the
  // constraints force it), else the cached model's, else the hint — the
  // value a fresh hint-guided search would try first. The first
  // candidate uses no cached model at all, which captures the common
  // case of a guiding path the original PoC bytes already satisfy; then
  // recent models, newest first.
  SortedSmallSet<std::uint32_t> vars;
  for (const ExprRef& c : constraints) vars.UnionWith(FreeVars(c));
  for (std::size_t i = pool.size() + 1; i-- > 0;) {
    const Model* reuse = i == 0 ? nullptr : &pool[i - 1];
    Model candidate;
    for (const std::uint32_t var : vars) {
      if (const auto pin = pins.find(var); pin != pins.end()) {
        candidate[var] = pin->second;
      } else if (reuse != nullptr && reuse->count(var) != 0) {
        candidate[var] = reuse->at(var);
      } else if (const auto hint = hints.find(var); hint != hints.end()) {
        candidate[var] = hint->second;
      }  // else absent: evaluates as 0, the solver default
    }
    bool satisfied = true;
    for (const ExprRef& c : constraints) {
      if (Eval(c, candidate) == 0) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) {
      *out = std::move(candidate);
      return true;
    }
  }
  return false;
}

const SolveResult* SolverCache::Lookup(
    const std::vector<ExprRef>& constraints, const Model& pins,
    const Model& hints) {
  if (const Entry* entry = FindExact(constraints)) {
    ++stats_.hits;
    ++stats_.exact_hits;
    return &entry->result;
  }
  Model candidate;
  if (TryModelReuse(constraints, pins, hints, reuse_models_, &candidate)) {
    ++stats_.hits;
    ++stats_.model_reuse_hits;
    reuse_scratch_.status = SolveStatus::kSat;
    reuse_scratch_.model = std::move(candidate);
    reuse_scratch_.steps = 0;
    return &reuse_scratch_;
  }
  ++stats_.misses;
  return nullptr;
}

const SolveResult& SolverCache::StoreEntry(
    const std::vector<ExprRef>& constraints, SolveResult result) {
  Entry entry;
  entry.key.reserve(constraints.size());
  for (const ExprRef& c : constraints) entry.key.push_back(c.get());
  entry.result = std::move(result);
  auto& bucket = buckets_[HashKey(constraints)];
  bucket.push_back(std::move(entry));
  ++entries_;
  return bucket.back().result;
}

void SolverCache::RememberUnsat(const std::vector<ExprRef>& constraints) {
  if (unsat_cores_.size() >= kMaxUnsatCores) return;
  std::vector<const Expr*> core;
  core.reserve(constraints.size());
  for (const ExprRef& c : constraints) core.push_back(c.get());
  std::sort(core.begin(), core.end());
  core.erase(std::unique(core.begin(), core.end()), core.end());
  unsat_cores_.push_back(std::move(core));
}

const SolveResult& SolverCache::Insert(
    const std::vector<ExprRef>& constraints, SolveResult result) {
  const SolveResult& stored = StoreEntry(constraints, std::move(result));
  if (stored.status == SolveStatus::kSat) {
    reuse_models_.push_back(stored.model);
    if (reuse_models_.size() > kMaxReuseModels) {
      reuse_models_.erase(reuse_models_.begin());
    }
  } else if (stored.status == SolveStatus::kUnsat) {
    RememberUnsat(constraints);
  }
  return stored;
}

std::vector<std::vector<ExprRef>> SliceConstraints(
    const std::vector<ExprRef>& constraints) {
  const std::size_t n = constraints.size();
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  const auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  // Union constraints through shared variables: the first constraint
  // mentioning a variable becomes its owner; later ones link to it.
  std::unordered_map<std::uint32_t, std::size_t> var_owner;
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::uint32_t var : FreeVars(constraints[i])) {
      const auto [it, inserted] = var_owner.try_emplace(var, i);
      if (!inserted) parent[find(i)] = find(it->second);
    }
  }
  // Group by root, slices ordered by first member, members in original
  // order (std::map over the root's smallest index gives both).
  std::map<std::size_t, std::vector<ExprRef>> groups;
  std::unordered_map<std::size_t, std::size_t> root_first;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find(i);
    const auto [it, inserted] = root_first.try_emplace(root, i);
    groups[it->second].push_back(constraints[i]);
  }
  std::vector<std::vector<ExprRef>> slices;
  slices.reserve(groups.size());
  for (auto& [first, slice] : groups) slices.push_back(std::move(slice));
  return slices;
}

SolveResult SolverCache::Solve(const std::vector<ExprRef>& raw,
                               const Model& pins,
                               const SolverOptions& options,
                               SolveContext* ctx) {
  // Normalize the way a fresh ByteSolver would: constant-true
  // constraints vanish, constant-false poisons the system, duplicate
  // nodes collapse under pointer identity. The normalized sequence is
  // the cache key, so a re-asserted pin cannot split the memo.
  SolveResult out;
  std::vector<ExprRef> constraints;
  constraints.reserve(raw.size());
  {
    std::unordered_set<const Expr*> seen;
    for (const ExprRef& c : raw) {
      if (c->IsConst()) {
        if (c->value == 0) {
          out.status = SolveStatus::kUnsat;
          return out;  // trivial; not worth a cache entry or a counter
        }
        continue;
      }
      if (seen.insert(c.get()).second) constraints.push_back(c);
    }
  }
  if (constraints.empty()) {
    out.status = SolveStatus::kSat;
    return out;  // vacuously satisfiable; not a cacheable query
  }

  // 1. Exact memo. Steps report the work done by *this* call, so a hit
  // contributes zero to the caller's search-effort accounting.
  if (const Entry* entry = FindExact(constraints)) {
    ++stats_.hits;
    ++stats_.exact_hits;
    out = entry->result;
    out.steps = 0;
    if (out.status == SolveStatus::kSat && ctx != nullptr) {
      ctx->NoteModel(out.model);
    }
    return out;
  }

  // 2. Subsumption. The context's wiped-out domain is an UNSAT unary
  // subset of this very query (every applied constraint is a query
  // member by the executor's contract); likewise any remembered UNSAT
  // core contained in the query proves it UNSAT. Verdict-only — no
  // model, no search.
  if (ctx != nullptr && ctx->known_unsat()) {
    ++stats_.hits;
    ++stats_.subsumption_hits;
    out.status = SolveStatus::kUnsat;
    return out;
  }
  std::vector<const Expr*> sorted_key;
  sorted_key.reserve(constraints.size());
  for (const ExprRef& c : constraints) sorted_key.push_back(c.get());
  std::sort(sorted_key.begin(), sorted_key.end());
  for (const auto& core : unsat_cores_) {
    if (core.size() <= sorted_key.size() &&
        std::includes(sorted_key.begin(), sorted_key.end(), core.begin(),
                      core.end())) {
      ++stats_.hits;
      ++stats_.subsumption_hits;
      out.status = SolveStatus::kUnsat;
      return out;
    }
  }

  // 3. Certified model reuse, from the state's own pool when a context
  // is supplied (pure per state), else the global most-recent pool.
  Model candidate;
  const std::vector<Model>& pool =
      ctx != nullptr ? ctx->recent_models() : reuse_models_;
  if (TryModelReuse(constraints, pins, options.hints, pool, &candidate)) {
    ++stats_.hits;
    ++stats_.model_reuse_hits;
    out.status = SolveStatus::kSat;
    out.model = std::move(candidate);
    if (ctx != nullptr) ctx->NoteModel(out.model);
    return out;
  }

  // 4. Independence slicing with per-slice caching. A fresh slice solve
  // runs with the full step budget (so each slice entry is a pure
  // function of the slice alone); the query reports summed steps.
  SolverOptions slice_options = options;
  slice_options.context = ctx;
  const auto fresh = [&](const std::vector<ExprRef>& cs) {
    ByteSolver solver(slice_options);
    return solver.SolveWith(cs);
  };

  std::vector<std::vector<ExprRef>> slices = SliceConstraints(constraints);
  bool any_fresh = false;
  out.status = SolveStatus::kSat;
  for (const std::vector<ExprRef>& slice : slices) {
    SolveResult r;
    bool from_cache = false;
    if (slices.size() > 1) {
      if (const Entry* entry = FindExact(slice)) {
        r = entry->result;
        from_cache = true;
      } else {
        any_fresh = true;
        r = fresh(slice);
        if (r.status == SolveStatus::kSat ||
            r.status == SolveStatus::kUnsat) {
          StoreEntry(slice, r);
          if (r.status == SolveStatus::kUnsat) RememberUnsat(slice);
        }
      }
    } else {
      any_fresh = true;
      r = fresh(slice);
    }
    if (!from_cache) out.steps += r.steps;
    if (r.status == SolveStatus::kUnsat ||
        r.status == SolveStatus::kCancelled) {
      out.status = r.status;  // UNSAT/cancel of one slice decides; stop
      break;
    }
    if (r.status == SolveStatus::kUnknown) {
      out.status = SolveStatus::kUnknown;
      continue;
    }
    for (const auto& [var, val] : r.model) out.model[var] = val;
  }
  if (out.status != SolveStatus::kSat) out.model.clear();

  if (any_fresh) {
    ++stats_.misses;
  } else {
    ++stats_.hits;
    ++stats_.slice_hits;
  }
  if (out.status == SolveStatus::kSat || out.status == SolveStatus::kUnsat) {
    if (FindExact(constraints) == nullptr) {
      StoreEntry(constraints, out);
    }
    if (out.status == SolveStatus::kUnsat) {
      RememberUnsat(constraints);
    } else if (ctx != nullptr) {
      ctx->NoteModel(out.model);
    } else {
      reuse_models_.push_back(out.model);
      if (reuse_models_.size() > kMaxReuseModels) {
        reuse_models_.erase(reuse_models_.begin());
      }
    }
  }
  return out;
}

void ByteSolver::Add(ExprRef expr) {
  // A constant constraint either disappears or poisons the system.
  if (expr->IsConst() && expr->value != 0) return;
  constraints_.push_back(std::move(expr));
}

void ByteSolver::AddEq(ExprRef expr, std::uint64_t value) {
  Add(MakeBinOp(vm::Op::kCmpEq, std::move(expr), MakeConst(value)));
}

void ByteSolver::Pin(std::uint32_t offset, std::uint8_t value) {
  AddEq(MakeInput(offset), value);
}

namespace {

/// Tries to read `expr` as a little-endian byte concatenation — the
/// shape LoadWide builds: or(or(b0, shl(b1,8)), shl(b2,16))... Returns
/// lane→input-offset on success. This powers the key propagation rule:
/// an equality between a concatenation and a constant decomposes into
/// per-byte pins, which turns the dominant "magic/field == K" constraint
/// from a 256^n search into unit propagation.
bool AsByteConcat(const ExprRef& expr, unsigned shift,
                  std::map<unsigned, std::uint32_t>* lanes) {
  switch (expr->kind) {
    case ExprKind::kInput: {
      if (shift % 8 != 0) return false;
      const unsigned lane = shift / 8;
      if (lanes->count(lane) != 0) return false;
      (*lanes)[lane] = expr->offset;
      return true;
    }
    case ExprKind::kBinOp:
      if (expr->op == vm::Op::kOr) {
        return AsByteConcat(expr->lhs, shift, lanes) &&
               AsByteConcat(expr->rhs, shift, lanes);
      }
      if (expr->op == vm::Op::kShl && expr->rhs->IsConst()) {
        return AsByteConcat(expr->lhs,
                            shift + static_cast<unsigned>(expr->rhs->value),
                            lanes);
      }
      return false;
    default:
      return false;
  }
}

/// If `constraint` is CmpEq(concat, K), appends the per-byte equalities
/// to `out` (or a constant-false when K has bits outside the lanes).
/// Returns true when a decomposition happened.
bool DecomposeConcatEquality(const ExprRef& constraint,
                             std::vector<ExprRef>* out) {
  if (constraint->kind != ExprKind::kBinOp ||
      constraint->op != vm::Op::kCmpEq) {
    return false;
  }
  ExprRef concat, konst;
  if (constraint->rhs->IsConst()) {
    concat = constraint->lhs;
    konst = constraint->rhs;
  } else if (constraint->lhs->IsConst()) {
    concat = constraint->rhs;
    konst = constraint->lhs;
  } else {
    return false;
  }
  std::map<unsigned, std::uint32_t> lanes;
  if (!AsByteConcat(concat, 0, &lanes) || lanes.empty()) return false;
  std::uint64_t covered = 0;
  SortedSmallSet<std::uint32_t> seen;
  for (const auto& [lane, offset] : lanes) {
    if (lane >= 8 || seen.Contains(offset)) return false;
    seen.Insert(offset);
    covered |= 0xFFull << (8 * lane);
  }
  if ((konst->value & ~covered) != 0) {
    out->push_back(MakeConst(0));  // impossible: bits outside any lane
    return true;
  }
  for (const auto& [lane, offset] : lanes) {
    out->push_back(MakeBinOp(
        vm::Op::kCmpEq, MakeInput(offset),
        MakeConst((konst->value >> (8 * lane)) & 0xFF)));
  }
  return true;
}

/// Propagation-queue CSP search with trail-based backtracking.
///
/// Domains live in a dense table; constraints carry an unassigned-var
/// counter. Whenever a constraint drops to one unassigned variable it is
/// queued and its variable's domain is filtered by evaluation (256
/// probes); singleton domains assign immediately and cascade. Branching
/// picks the smallest-domain variable, trying the hinted value first.
struct Search {
  Search(const std::vector<ExprRef>& constraints_in, const Model& hints_in,
         std::uint64_t max_steps_in, support::CancelToken cancel_in,
         const SolveContext* ctx_in)
      : constraints(constraints_in),
        hints(hints_in),
        max_steps(max_steps_in),
        cancel(cancel_in),
        ctx(ctx_in) {}

  const std::vector<ExprRef>& constraints;
  const Model& hints;
  std::uint64_t max_steps;
  support::CancelToken cancel;  // local copy; poll counters are ours
  const SolveContext* ctx;      // optional prefix-domain accelerator
  std::uint64_t steps = 0;
  bool cancelled = false;

  bool Cancelled() {
    if (!cancelled && cancel.ShouldStop()) cancelled = true;
    return cancelled;
  }

  std::vector<std::uint32_t> vars;               // dense index → offset
  std::map<std::uint32_t, std::size_t> var_index;
  std::vector<std::vector<std::size_t>> var_constraints;  // var → c-ids
  std::vector<std::vector<std::size_t>> cvars;            // c-id → vars
  std::vector<std::size_t> unassigned_count;              // per constraint

  std::vector<std::array<bool, 256>> domain;
  std::vector<int> domain_size;
  std::vector<int> assigned;  // -1 = unassigned, else the value
  Model assignment;           // offset → value (mirrors `assigned`)
  std::vector<bool> prefiltered;  // unary constraints folded at init

  struct TrailEntry {
    std::size_t var;
    std::array<bool, 256> saved_domain;
    int saved_size;
  };
  std::vector<TrailEntry> trail;
  std::vector<std::size_t> assign_trail;  // vars assigned, for undo
  std::vector<std::size_t> count_trail;   // constraints decremented

  enum class Outcome { kSat, kUnsat, kBudget, kCancelled };

  bool Init() {
    SortedSmallSet<std::uint32_t> all;
    cvars.resize(constraints.size());
    std::vector<SortedSmallSet<std::uint32_t>> cvar_sets(constraints.size());
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      CollectInputs(constraints[c], cvar_sets[c]);
      all.UnionWith(cvar_sets[c]);
    }
    vars.assign(all.begin(), all.end());
    for (std::size_t i = 0; i < vars.size(); ++i) var_index[vars[i]] = i;
    var_constraints.resize(vars.size());
    unassigned_count.resize(constraints.size());
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      for (const std::uint32_t off : cvar_sets[c]) {
        const std::size_t v = var_index[off];
        cvars[c].push_back(v);
        var_constraints[v].push_back(c);
      }
      unassigned_count[c] = cvars[c].size();
    }
    domain.assign(vars.size(), {});
    for (auto& d : domain) d.fill(true);
    domain_size.assign(vars.size(), 256);
    assigned.assign(vars.size(), -1);

    // Unary prefilter: every constraint over a single variable folds
    // into that variable's *initial* domain here, rather than through
    // the propagation queue. When the caller supplies a SolveContext
    // that already applied some of these constraints, its recorded
    // domain seeds the fold and those constraints' 256-probe
    // evaluations are skipped — the incremental-prefix saving. The
    // final domains are identical either way (filtering is idempotent
    // and intersection commutes), so context presence cannot change
    // the search outcome. Prefilter probes are setup, not search, and
    // do not count toward the step budget.
    prefiltered.assign(constraints.size(), false);
    Model probe;
    for (std::size_t v = 0; v < vars.size(); ++v) {
      bool any_unary = false;
      for (const std::size_t c : var_constraints[v]) {
        if (cvars[c].size() == 1) {
          any_unary = true;
          break;
        }
      }
      if (!any_unary) continue;
      auto& dom = domain[v];
      const std::uint32_t off = vars[v];
      const SolveContext::VarEntry* seed =
          ctx != nullptr ? ctx->Find(off) : nullptr;
      if (seed != nullptr) {
        int size = 0;
        for (int value = 0; value < 256; ++value) {
          dom[value] = seed->domain.Test(static_cast<unsigned>(value));
          size += dom[value] ? 1 : 0;
        }
        domain_size[v] = size;
      }
      for (const std::size_t c : var_constraints[v]) {
        if (cvars[c].size() != 1) continue;
        prefiltered[c] = true;
        if (seed != nullptr &&
            std::binary_search(seed->applied.begin(), seed->applied.end(),
                               constraints[c].get())) {
          continue;  // already folded into the seeded domain
        }
        int size = 0;
        std::uint8_t& cell = probe[off];
        for (int value = 0; value < 256; ++value) {
          if (!dom[value]) continue;
          cell = static_cast<std::uint8_t>(value);
          if (Eval(constraints[c], probe) != 0) {
            ++size;
          } else {
            dom[value] = false;
          }
        }
        probe.erase(off);
        domain_size[v] = size;
      }
      if (domain_size[v] == 0) return false;
    }
    return true;
  }

  /// Assigns var v := value, updating constraint counters. Records undo
  /// info. Returns false on immediate conflict (a fully-assigned
  /// constraint evaluating false).
  bool Assign(std::size_t v, int value) {
    assigned[v] = value;
    assignment[vars[v]] = static_cast<std::uint8_t>(value);
    assign_trail.push_back(v);
    for (const std::size_t c : var_constraints[v]) {
      --unassigned_count[c];
      count_trail.push_back(c);
      if (unassigned_count[c] == 0) {
        ++steps;
        if (Eval(constraints[c], assignment) == 0) return false;
      }
    }
    return true;
  }

  /// Filters `v`'s domain against constraint `c` (which must have `v`
  /// as its only unassigned variable). Returns the new domain size.
  int FilterDomain(std::size_t v, std::size_t c) {
    auto& dom = domain[v];
    // Save the domain once per (decision level, var) — conservatively
    // per call; the trail replays in reverse so repeated saves are fine.
    trail.push_back({v, dom, domain_size[v]});
    int size = 0;
    const std::uint32_t off = vars[v];
    for (int value = 0; value < 256; ++value) {
      if (!dom[value]) continue;
      ++steps;
      assignment[off] = static_cast<std::uint8_t>(value);
      if (Eval(constraints[c], assignment) != 0) {
        ++size;
      } else {
        dom[value] = false;
      }
    }
    assignment.erase(off);
    domain_size[v] = size;
    return size;
  }

  /// Unit propagation to fixpoint from the constraints of `seed_vars`.
  /// Returns false on wipe-out or constraint violation.
  bool Propagate(std::deque<std::size_t> queue) {
    while (!queue.empty()) {
      if (steps > max_steps) return true;  // caller re-checks budget
      if (Cancelled()) return true;        // ditto for cancellation
      const std::size_t c = queue.front();
      queue.pop_front();
      if (unassigned_count[c] != 1) continue;
      // Locate the single unassigned variable.
      std::size_t v = 0;
      for (const std::size_t cand : cvars[c]) {
        if (assigned[cand] < 0) {
          v = cand;
          break;
        }
      }
      const int size = FilterDomain(v, c);
      if (size == 0) return false;
      if (size == 1) {
        int value = 0;
        for (int i = 0; i < 256; ++i) {
          if (domain[v][i]) {
            value = i;
            break;
          }
        }
        if (!Assign(v, value)) return false;
        for (const std::size_t c2 : var_constraints[v]) {
          if (unassigned_count[c2] == 1) queue.push_back(c2);
        }
      }
    }
    return true;
  }

  std::deque<std::size_t> InitialUnits() {
    std::deque<std::size_t> queue;
    for (std::size_t c = 0; c < constraints.size(); ++c) {
      if (unassigned_count[c] == 1 && !prefiltered[c]) queue.push_back(c);
    }
    return queue;
  }

  struct Checkpoint {
    std::size_t trail_size;
    std::size_t assign_trail_size;
    std::size_t count_trail_size;
  };

  Checkpoint Mark() const {
    return {trail.size(), assign_trail.size(), count_trail.size()};
  }

  void Rollback(const Checkpoint& cp) {
    while (count_trail.size() > cp.count_trail_size) {
      ++unassigned_count[count_trail.back()];
      count_trail.pop_back();
    }
    while (assign_trail.size() > cp.assign_trail_size) {
      const std::size_t v = assign_trail.back();
      assign_trail.pop_back();
      assignment.erase(vars[v]);
      assigned[v] = -1;
    }
    while (trail.size() > cp.trail_size) {
      TrailEntry& e = trail.back();
      domain[e.var] = e.saved_domain;
      domain_size[e.var] = e.saved_size;
      trail.pop_back();
    }
  }

  Outcome Run() {
    if (!Init()) return Outcome::kUnsat;
    if (!Propagate(InitialUnits())) return Outcome::kUnsat;
    if (cancelled) return Outcome::kCancelled;
    if (steps > max_steps) return Outcome::kBudget;
    return Backtrack();
  }

  Outcome Backtrack() {
    if (Cancelled()) return Outcome::kCancelled;
    if (steps > max_steps) return Outcome::kBudget;
    // Pick the unassigned variable with the smallest domain.
    std::size_t best = vars.size();
    for (std::size_t v = 0; v < vars.size(); ++v) {
      if (assigned[v] >= 0) continue;
      if (best == vars.size() || domain_size[v] < domain_size[best]) {
        best = v;
      }
    }
    if (best == vars.size()) return Outcome::kSat;

    // Value order: hint first, then ascending.
    std::vector<int> values;
    values.reserve(domain_size[best]);
    const auto hint = hints.find(vars[best]);
    if (hint != hints.end() && domain[best][hint->second]) {
      values.push_back(hint->second);
    }
    for (int value = 0; value < 256; ++value) {
      if (!domain[best][value]) continue;
      if (hint != hints.end() && value == hint->second) continue;
      values.push_back(value);
    }

    for (const int value : values) {
      ++steps;
      if (Cancelled()) return Outcome::kCancelled;
      if (steps > max_steps) return Outcome::kBudget;
      const Checkpoint cp = Mark();
      std::deque<std::size_t> queue;
      bool ok = Assign(best, value);
      if (ok) {
        for (const std::size_t c : var_constraints[best]) {
          if (unassigned_count[c] == 1) queue.push_back(c);
        }
        ok = Propagate(std::move(queue));
      }
      if (ok && cancelled) return Outcome::kCancelled;
      if (ok && steps > max_steps) return Outcome::kBudget;
      if (ok) {
        const Outcome sub = Backtrack();
        if (sub != Outcome::kUnsat) return sub;
      }
      Rollback(cp);
    }
    return Outcome::kUnsat;
  }
};

}  // namespace

SolveResult ByteSolver::Solve() const { return SolveWith({}); }

SolveResult ByteSolver::SolveWith(const std::vector<ExprRef>& extra) const {
  support::fault::MaybeThrow(support::FaultSite::kSolverStep);
  std::vector<ExprRef> all = constraints_;
  bool poisoned = false;
  for (const ExprRef& e : extra) {
    if (e->IsConst()) {
      if (e->value == 0) poisoned = true;
      continue;
    }
    all.push_back(e);
  }
  // Interning canonicalizes structurally-equal constraints to one node,
  // so duplicates (the same pin re-asserted along a path, a re-built
  // guard) collapse under pointer identity before the search sees them.
  {
    std::unordered_set<const Expr*> seen;
    std::size_t kept = 0;
    for (ExprRef& e : all) {
      if (seen.insert(e.get()).second) all[kept++] = std::move(e);
    }
    all.resize(kept);
  }
  // Propagation pre-pass: decompose concat equalities into byte pins so
  // unit propagation starts from singleton domains for multi-byte
  // fields.
  {
    std::vector<ExprRef> derived;
    for (const ExprRef& e : all) DecomposeConcatEquality(e, &derived);
    all.insert(all.end(), derived.begin(), derived.end());
  }
  SolveResult result;
  if (poisoned) {
    result.status = SolveStatus::kUnsat;
    return result;
  }
  for (const ExprRef& e : all) {
    if (e->IsConst() && e->value == 0) {
      result.status = SolveStatus::kUnsat;
      return result;
    }
  }
  Search search{all, options_.hints, options_.max_steps, options_.cancel,
                options_.context};
  const Search::Outcome outcome = search.Run();
  result.steps = search.steps;
  switch (outcome) {
    case Search::Outcome::kSat:
      result.status = SolveStatus::kSat;
      result.model = std::move(search.assignment);
      break;
    case Search::Outcome::kUnsat:
      result.status = SolveStatus::kUnsat;
      break;
    case Search::Outcome::kBudget:
      result.status = SolveStatus::kUnknown;
      break;
    case Search::Outcome::kCancelled:
      result.status = SolveStatus::kCancelled;
      break;
  }
  return result;
}

}  // namespace octopocs::symex
