// Constraint solver over symbolic input bytes (the SMT-solver substitute).
//
// Every variable is one byte of the symbolic PoC file (domain 0..255),
// and a constraint is an expression that must evaluate nonzero. That
// restriction — inherited from the MiniVM's byte-level file model — lets
// a classic CSP search be *complete*: domain filtering on constraints
// with a single unassigned variable, most-constrained-variable-first
// branching, and chronological backtracking. The solver reports:
//
//   kSat      — a model (byte assignment) satisfying every constraint;
//   kUnsat    — exhaustive search proved no model exists (this verdict
//               is what turns into the paper's Type-III "vulnerability
//               not triggerable" result, so completeness matters);
//   kUnknown  — the step budget ran out (surfaced as a tooling Failure,
//               like an SMT timeout would be).
#pragma once

#include <cstdint>
#include <vector>

#include "symex/expr.h"

namespace octopocs::symex {

enum class SolveStatus : std::uint8_t { kSat, kUnsat, kUnknown };

struct SolveResult {
  SolveStatus status = SolveStatus::kUnknown;
  /// Total model over the constrained variables (unconstrained bytes are
  /// absent and default to 0). Valid when status == kSat.
  Model model;
  /// Search effort (diagnostics; feeds the Table IV cost columns).
  std::uint64_t steps = 0;
};

struct SolverOptions {
  /// Backtracking-step budget before giving up with kUnknown.
  std::uint64_t max_steps = 2'000'000;
  /// Value-ordering hints: when a variable has a hinted value inside its
  /// filtered domain, that value is tried first. OCTOPOCS hints with the
  /// original PoC's bytes so the reformed PoC stays as close to the
  /// original as the constraints allow (Type-I guiding inputs survive
  /// verbatim).
  Model hints;
};

class ByteSolver {
 public:
  explicit ByteSolver(SolverOptions options = {}) : options_(options) {}

  /// Adds a constraint: `expr` must evaluate nonzero.
  void Add(ExprRef expr);

  /// Adds `expr == value` (sugar for the dominant bunch-pinning form).
  void AddEq(ExprRef expr, std::uint64_t value);

  /// Pre-assigns a variable (pinned byte). Conflicting pins make the
  /// system unsatisfiable.
  void Pin(std::uint32_t offset, std::uint8_t value);

  std::size_t constraint_count() const { return constraints_.size(); }

  /// Complete search. Stateless w.r.t. previous Solve calls.
  SolveResult Solve() const;

  /// Convenience: satisfiability of (current constraints + extra).
  SolveResult SolveWith(const std::vector<ExprRef>& extra) const;

 private:
  SolverOptions options_;
  std::vector<ExprRef> constraints_;
  Model pins_;
};

}  // namespace octopocs::symex
