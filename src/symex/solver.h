// Constraint solver over symbolic input bytes (the SMT-solver substitute).
//
// Every variable is one byte of the symbolic PoC file (domain 0..255),
// and a constraint is an expression that must evaluate nonzero. That
// restriction — inherited from the MiniVM's byte-level file model — lets
// a classic CSP search be *complete*: domain filtering on constraints
// with a single unassigned variable, most-constrained-variable-first
// branching, and chronological backtracking. The solver reports:
//
//   kSat      — a model (byte assignment) satisfying every constraint;
//   kUnsat    — exhaustive search proved no model exists (this verdict
//               is what turns into the paper's Type-III "vulnerability
//               not triggerable" result, so completeness matters);
//   kUnknown  — the step budget ran out (surfaced as a tooling Failure,
//               like an SMT timeout would be);
//   kCancelled — the caller's wall-clock CancelToken tripped mid-search.
//               Distinct from kUnknown so callers can tell "ran out of
//               steps, a bigger budget might help" from "out of time,
//               stop the whole phase" — only the former is worth a
//               doubled-budget retry, and a cancelled verdict must never
//               enter the SolverCache.
//
// Two search cores implement the same decision procedure behind the
// SolverBackend interface (DESIGN.md §15):
//
//   backtrack — the original recursive search over std::array<bool,256>
//               domains with tree-walking Eval. Kept verbatim as the
//               A/B oracle: slow, simple, trusted.
//   propagate — watched-domain propagation over 256-bit ByteDomain
//               masks with constraints compiled to straight-line
//               programs, plus conflict-driven nogood recording. Same
//               decision tree (variable order, value order, filtering
//               strength) as the backtracker by construction, so both
//               return the identical first model and identical kUnsat
//               verdicts; only step counts differ.
//   portfolio — races both cores on two threads; the first definitive
//               (kSat/kUnsat) answer wins and cancels the loser.
//               Deterministic because the cores are answer-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/deadline.h"
#include "symex/expr.h"
#include "symex/solve_context.h"

namespace octopocs::symex {

enum class SolveStatus : std::uint8_t { kSat, kUnsat, kUnknown, kCancelled };

struct SolveResult {
  SolveStatus status = SolveStatus::kUnknown;
  /// Total model over the constrained variables (unconstrained bytes are
  /// absent and default to 0). Valid when status == kSat.
  Model model;
  /// Search effort (diagnostics; feeds the Table IV cost columns).
  std::uint64_t steps = 0;
};

/// Which search core answers queries. Never part of any artifact or
/// cache key: backends are answer-identical, so the choice is an
/// observability/performance knob like vm::DispatchMode (DESIGN.md §15).
enum class SolverBackendKind : std::uint8_t {
  kBacktrack,
  kPropagate,
  kPortfolio,
};

/// CLI spelling ("backtrack" | "propagate" | "portfolio"), or nullopt.
std::optional<SolverBackendKind> ParseSolverBackend(std::string_view name);
const char* SolverBackendName(SolverBackendKind kind);

/// Conflict-driven nogoods recorded by the propagate core.
///
/// A nogood is a set of (variable, value) decision literals L plus the
/// constraint set D (sorted node addresses) under which the search
/// proved "D ∧ L has no model" by exhausting the subtree below L. It is
/// sound to prune a branch of any later query Q ⊇ D whose partial
/// assignment extends L: every total extension would satisfy D and L,
/// contradicting the recorded proof. That subset applicability is what
/// lets nogoods survive across the re-solves P3 issues as it extends a
/// path's constraint prefix at each ep encounter — exactly like the
/// UNSAT-core subsumption tier, but at sub-branch instead of whole-query
/// granularity.
///
/// Pruned subtrees are provably model-free, so recording and consulting
/// nogoods cannot change which model a complete search finds first, nor
/// flip kUnsat — only shrink the explored tree.
class NogoodStore {
 public:
  using Literal = std::pair<std::uint32_t, std::uint8_t>;  // (offset, value)

  struct Nogood {
    std::vector<Literal> literals;    // sorted by offset
    std::vector<const Expr*> deps;    // sorted-unique node addresses
  };

  /// Records "deps ∧ literals is model-free". `literals` must be sorted
  /// by offset, `deps` sorted-unique. Duplicates (same literals with a
  /// dependency superset of a stored entry) are dropped; the store stops
  /// accepting once full.
  void Record(std::vector<Literal> literals, std::vector<const Expr*> deps);

  const std::vector<Nogood>& all() const { return nogoods_; }
  std::size_t size() const { return nogoods_.size(); }

  /// Bound on stored nogoods: keeps the per-query applicability scan and
  /// the store's footprint O(1) in the length of a P3 run.
  static constexpr std::size_t kMaxNogoods = 256;

 private:
  std::vector<Nogood> nogoods_;
};

struct SolverOptions {
  /// Backtracking-step budget before giving up with kUnknown.
  std::uint64_t max_steps = 2'000'000;
  /// Value-ordering hints: when a variable has a hinted value inside its
  /// filtered domain, that value is tried first. OCTOPOCS hints with the
  /// original PoC's bytes so the reformed PoC stays as close to the
  /// original as the constraints allow (Type-I guiding inputs survive
  /// verbatim).
  Model hints;
  /// Cooperative wall-clock bound, polled inside the search loops.
  /// Tripping aborts with kCancelled.
  support::CancelToken cancel;
  /// Optional incremental prefix state: seeds the search's per-variable
  /// domains with filtering work the owning state already did, instead
  /// of re-evaluating each applied unary constraint 256 times per query.
  /// Results are bit-identical with or without a context (the search
  /// always prefilters every unary constraint; the context only skips
  /// evaluations whose outcome it has already recorded).
  const SolveContext* context = nullptr;
  /// Search core selection. Excluded from every cache and artifact key —
  /// backends are answer-identical by construction.
  SolverBackendKind backend = SolverBackendKind::kPropagate;
  /// Optional cross-query nogood store, consulted and extended by the
  /// propagate core (the backtrack oracle ignores it). The SolverCache
  /// owns one per executor worker, matching the interning scope the
  /// recorded node addresses live in.
  NogoodStore* nogoods = nullptr;
};

/// One complete search core. `Solve` receives the *preprocessed*
/// constraint system (deduplicated, concat equalities decomposed,
/// constant-false screened by ByteSolver) and must be a pure function of
/// (constraints, options.hints, options.context) for definitive
/// statuses — that purity is what makes backend choice cache-invisible.
class SolverBackend {
 public:
  virtual ~SolverBackend() = default;
  virtual const char* name() const = 0;
  virtual SolveResult Solve(const std::vector<ExprRef>& constraints,
                            const SolverOptions& options) const = 0;
};

/// Singleton accessor for the cores (and the portfolio composition).
const SolverBackend& GetSolverBackend(SolverBackendKind kind);

class ByteSolver {
 public:
  explicit ByteSolver(SolverOptions options = {})
      : options_(std::move(options)) {}

  /// Adds a constraint: `expr` must evaluate nonzero.
  void Add(ExprRef expr);

  /// Adds `expr == value` (sugar for the dominant bunch-pinning form).
  void AddEq(ExprRef expr, std::uint64_t value);

  /// Pre-assigns a variable (pinned byte). Conflicting pins make the
  /// system unsatisfiable.
  void Pin(std::uint32_t offset, std::uint8_t value);

  std::size_t constraint_count() const { return constraints_.size(); }

  /// Complete search. Stateless w.r.t. previous Solve calls.
  SolveResult Solve() const;

  /// Convenience: satisfiability of (current constraints + extra).
  SolveResult SolveWith(const std::vector<ExprRef>& extra) const;

 private:
  SolverOptions options_;
  std::vector<ExprRef> constraints_;
  Model pins_;
};

/// Memoizes ByteSolver verdicts across the repeated feasibility and
/// concretization queries a directed executor issues along shared path
/// prefixes. Three mechanisms, all sound by construction:
///
///   exact memo    keyed by the exact sequence of constraint node
///                 addresses. Forked states copy their constraint
///                 vector but share the pointed-to nodes, and interning
///                 canonicalizes structurally-equal nodes, so an exact
///                 hit is *provably* the same query; it may return any
///                 verdict, including kUnsat.
///   subsumption   a cached UNSAT *subset* proves any superset query
///                 UNSAT (adding constraints never makes an
///                 unsatisfiable system satisfiable). Verdict-only: no
///                 model is fabricated, and SAT can never come from
///                 this path, so a SAT verdict can never be flipped.
///   model reuse   a path extends its prefix by appending constraints,
///                 so the sequence key misses — but a model that
///                 satisfied the prefix often still satisfies the
///                 extension. The cache overlays the caller's pinned
///                 bytes onto each candidate model and *evaluates* the
///                 full constraint set under it; only a model that
///                 certifies every constraint is returned, as kSat.
///                 kUnsat can never come from reuse, so a cached
///                 verdict can never contradict a fresh solve. With a
///                 SolveContext the candidate pool is the state's own
///                 (pure, forked-with-the-state) pool; without one, a
///                 small global most-recent pool.
///
/// (A fourth mechanism, per-slice caching over independence slices, was
/// retired: slice hits had been zero across the corpus since the
/// SolveContext/prefix tiers above were introduced, because every query
/// they could answer is answered earlier in the tier order. The
/// union-find partitioning cost on every miss bought nothing.)
///
/// The cache additionally owns the cross-query NogoodStore the
/// propagate backend feeds, scoped like everything else here to one
/// executor run.
///
/// The cache must not outlive the expressions it indexes: one cache per
/// executor run (per frontier worker), like the interning scope whose
/// lifetime it matches.
class SolverCache {
 public:
  struct Stats {
    /// Totals: hits + misses == Solve()/Lookup() queries (trivially
    /// constant-false queries short-circuit before counting).
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Per-mechanism breakdown of `hits`.
    std::uint64_t exact_hits = 0;
    std::uint64_t model_reuse_hits = 0;
    std::uint64_t subsumption_hits = 0;
  };

  /// Front door for the executor: answers `constraints` (the caller's
  /// path condition) through, in order: exact memo → context wipeout /
  /// UNSAT-subset subsumption → certified model reuse → fresh search
  /// through the configured backend. kSat/kUnsat results are cached;
  /// kUnknown is not (a larger budget could improve it) and kCancelled
  /// never is. The result is a pure function of (constraints, hints) —
  /// see DESIGN.md §10 — except that subsumption may answer kUnsat
  /// where an uncached search would have exhausted its step budget.
  SolveResult Solve(const std::vector<ExprRef>& constraints,
                    const Model& pins, const SolverOptions& options,
                    SolveContext* ctx);

  /// Cached result for `constraints`, or nullptr. `pins` are the
  /// caller's already-forced byte values (each also present as an
  /// equality constraint) and `hints` the solver's value-ordering
  /// preferences; candidates are assembled per constrained variable
  /// with priority pins > cached model > hints, mirroring what a fresh
  /// hint-guided search would try first. The returned model covers only
  /// variables the constraints mention — the same contract a fresh
  /// SolveResult has. The pointer is valid until the next Lookup call.
  const SolveResult* Lookup(const std::vector<ExprRef>& constraints,
                            const Model& pins, const Model& hints);

  /// Stores `result`; returns the stored copy. SAT models additionally
  /// join the reuse pool.
  const SolveResult& Insert(const std::vector<ExprRef>& constraints,
                            SolveResult result);

  const Stats& stats() const { return stats_; }
  std::size_t size() const { return entries_; }

  /// Nogoods recorded by fresh propagate-backend solves through this
  /// cache; survives across queries for the cache's lifetime.
  NogoodStore& nogoods() { return nogoods_; }

 private:
  struct Entry {
    std::vector<const Expr*> key;
    SolveResult result;
  };

  /// Most-recent-first reuse pool cap: candidates beyond this are
  /// evicted, bounding Lookup's evaluation work.
  static constexpr std::size_t kMaxReuseModels = 16;
  /// UNSAT-core pool cap for subsumption checks.
  static constexpr std::size_t kMaxUnsatCores = 64;

  static std::uint64_t HashKey(const std::vector<ExprRef>& constraints);
  static bool KeyEquals(const std::vector<const Expr*>& key,
                        const std::vector<ExprRef>& constraints);

  const Entry* FindExact(const std::vector<ExprRef>& constraints) const;
  const SolveResult& StoreEntry(const std::vector<ExprRef>& constraints,
                                SolveResult result);
  void RememberUnsat(const std::vector<ExprRef>& constraints);
  bool TryModelReuse(const std::vector<ExprRef>& constraints,
                     const Model& pins, const Model& hints,
                     const std::vector<Model>& pool, Model* out) const;

  std::unordered_map<std::uint64_t, std::vector<Entry>> buckets_;
  std::vector<Model> reuse_models_;  // most recent at the back
  /// Sorted-unique node-address sets of known-UNSAT constraint systems.
  std::vector<std::vector<const Expr*>> unsat_cores_;
  NogoodStore nogoods_;
  SolveResult reuse_scratch_;        // backs model-reuse Lookup returns
  std::size_t entries_ = 0;
  Stats stats_;
};

}  // namespace octopocs::symex
