// Constraint solver over symbolic input bytes (the SMT-solver substitute).
//
// Every variable is one byte of the symbolic PoC file (domain 0..255),
// and a constraint is an expression that must evaluate nonzero. That
// restriction — inherited from the MiniVM's byte-level file model — lets
// a classic CSP search be *complete*: domain filtering on constraints
// with a single unassigned variable, most-constrained-variable-first
// branching, and chronological backtracking. The solver reports:
//
//   kSat      — a model (byte assignment) satisfying every constraint;
//   kUnsat    — exhaustive search proved no model exists (this verdict
//               is what turns into the paper's Type-III "vulnerability
//               not triggerable" result, so completeness matters);
//   kUnknown  — the step budget ran out (surfaced as a tooling Failure,
//               like an SMT timeout would be);
//   kCancelled — the caller's wall-clock CancelToken tripped mid-search.
//               Distinct from kUnknown so callers can tell "ran out of
//               steps, a bigger budget might help" from "out of time,
//               stop the whole phase" — only the former is worth a
//               doubled-budget retry, and a cancelled verdict must never
//               enter the SolverCache.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/deadline.h"
#include "symex/expr.h"
#include "symex/solve_context.h"

namespace octopocs::symex {

enum class SolveStatus : std::uint8_t { kSat, kUnsat, kUnknown, kCancelled };

struct SolveResult {
  SolveStatus status = SolveStatus::kUnknown;
  /// Total model over the constrained variables (unconstrained bytes are
  /// absent and default to 0). Valid when status == kSat.
  Model model;
  /// Search effort (diagnostics; feeds the Table IV cost columns).
  std::uint64_t steps = 0;
};

struct SolverOptions {
  /// Backtracking-step budget before giving up with kUnknown.
  std::uint64_t max_steps = 2'000'000;
  /// Value-ordering hints: when a variable has a hinted value inside its
  /// filtered domain, that value is tried first. OCTOPOCS hints with the
  /// original PoC's bytes so the reformed PoC stays as close to the
  /// original as the constraints allow (Type-I guiding inputs survive
  /// verbatim).
  Model hints;
  /// Cooperative wall-clock bound, polled inside the search loops.
  /// Tripping aborts with kCancelled.
  support::CancelToken cancel;
  /// Optional incremental prefix state: seeds the search's per-variable
  /// domains with filtering work the owning state already did, instead
  /// of re-evaluating each applied unary constraint 256 times per query.
  /// Results are bit-identical with or without a context (the search
  /// always prefilters every unary constraint; the context only skips
  /// evaluations whose outcome it has already recorded).
  const SolveContext* context = nullptr;
};

class ByteSolver {
 public:
  explicit ByteSolver(SolverOptions options = {}) : options_(options) {}

  /// Adds a constraint: `expr` must evaluate nonzero.
  void Add(ExprRef expr);

  /// Adds `expr == value` (sugar for the dominant bunch-pinning form).
  void AddEq(ExprRef expr, std::uint64_t value);

  /// Pre-assigns a variable (pinned byte). Conflicting pins make the
  /// system unsatisfiable.
  void Pin(std::uint32_t offset, std::uint8_t value);

  std::size_t constraint_count() const { return constraints_.size(); }

  /// Complete search. Stateless w.r.t. previous Solve calls.
  SolveResult Solve() const;

  /// Convenience: satisfiability of (current constraints + extra).
  SolveResult SolveWith(const std::vector<ExprRef>& extra) const;

 private:
  SolverOptions options_;
  std::vector<ExprRef> constraints_;
  Model pins_;
};

/// Partitions `constraints` into independence slices: the finest
/// partition such that two constraints sharing an input-byte variable
/// land in the same slice (union-find over FreeVars). Slices are
/// returned in order of their first constraint's position, and each
/// slice preserves the original relative constraint order — which is
/// what makes a per-slice search behave identically to the monolithic
/// search restricted to that slice's variables.
std::vector<std::vector<ExprRef>> SliceConstraints(
    const std::vector<ExprRef>& constraints);

/// Memoizes ByteSolver verdicts across the repeated feasibility and
/// concretization queries a directed executor issues along shared path
/// prefixes. Four mechanisms, all sound by construction:
///
///   exact memo    keyed by the exact sequence of constraint node
///                 addresses. Forked states copy their constraint
///                 vector but share the pointed-to nodes, and interning
///                 canonicalizes structurally-equal nodes, so an exact
///                 hit is *provably* the same query; it may return any
///                 verdict, including kUnsat.
///   subsumption   a cached UNSAT *subset* proves any superset query
///                 UNSAT (adding constraints never makes an
///                 unsatisfiable system satisfiable). Verdict-only: no
///                 model is fabricated, and SAT can never come from
///                 this path, so a SAT verdict can never be flipped.
///   model reuse   a path extends its prefix by appending constraints,
///                 so the sequence key misses — but a model that
///                 satisfied the prefix often still satisfies the
///                 extension. The cache overlays the caller's pinned
///                 bytes onto each candidate model and *evaluates* the
///                 full constraint set under it; only a model that
///                 certifies every constraint is returned, as kSat.
///                 kUnsat can never come from reuse, so a cached
///                 verdict can never contradict a fresh solve. With a
///                 SolveContext the candidate pool is the state's own
///                 (pure, forked-with-the-state) pool; without one, a
///                 small global most-recent pool.
///   slicing       Solve() partitions the query into independence
///                 slices and caches each slice separately, so a new
///                 constraint only forces re-solving its own slice —
///                 KLEE-style counterexample caching. Slice models over
///                 disjoint variables merge into the full model.
///
/// The cache must not outlive the expressions it indexes: one cache per
/// executor run (per frontier worker), like the interning scope whose
/// lifetime it matches.
class SolverCache {
 public:
  struct Stats {
    /// Totals: hits + misses == Solve()/Lookup() queries (trivially
    /// constant-false queries short-circuit before counting).
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Per-mechanism breakdown of `hits`. A sliced query counts as a
    /// slice hit only when *every* slice came from cache; any fresh
    /// slice solve makes the query a miss.
    std::uint64_t exact_hits = 0;
    std::uint64_t model_reuse_hits = 0;
    std::uint64_t slice_hits = 0;
    std::uint64_t subsumption_hits = 0;
  };

  /// Front door for the executor: answers `constraints` (the caller's
  /// path condition) through, in order: exact memo → context wipeout /
  /// UNSAT-subset subsumption → certified model reuse → independence
  /// slicing with per-slice caching → fresh search. kSat/kUnsat results
  /// are cached (full key and per slice); kUnknown is not (a larger
  /// budget could improve it) and kCancelled never is. The result is a
  /// pure function of (constraints, hints) — see DESIGN.md §10 — except
  /// that subsumption may answer kUnsat where an uncached search would
  /// have exhausted its step budget.
  SolveResult Solve(const std::vector<ExprRef>& constraints,
                    const Model& pins, const SolverOptions& options,
                    SolveContext* ctx);

  /// Cached result for `constraints`, or nullptr. `pins` are the
  /// caller's already-forced byte values (each also present as an
  /// equality constraint) and `hints` the solver's value-ordering
  /// preferences; candidates are assembled per constrained variable
  /// with priority pins > cached model > hints, mirroring what a fresh
  /// hint-guided search would try first. The returned model covers only
  /// variables the constraints mention — the same contract a fresh
  /// SolveResult has. The pointer is valid until the next Lookup call.
  const SolveResult* Lookup(const std::vector<ExprRef>& constraints,
                            const Model& pins, const Model& hints);

  /// Stores `result`; returns the stored copy. SAT models additionally
  /// join the reuse pool.
  const SolveResult& Insert(const std::vector<ExprRef>& constraints,
                            SolveResult result);

  const Stats& stats() const { return stats_; }
  std::size_t size() const { return entries_; }

 private:
  struct Entry {
    std::vector<const Expr*> key;
    SolveResult result;
  };

  /// Most-recent-first reuse pool cap: candidates beyond this are
  /// evicted, bounding Lookup's evaluation work.
  static constexpr std::size_t kMaxReuseModels = 16;
  /// UNSAT-core pool cap for subsumption checks.
  static constexpr std::size_t kMaxUnsatCores = 64;

  static std::uint64_t HashKey(const std::vector<ExprRef>& constraints);
  static bool KeyEquals(const std::vector<const Expr*>& key,
                        const std::vector<ExprRef>& constraints);

  const Entry* FindExact(const std::vector<ExprRef>& constraints) const;
  const SolveResult& StoreEntry(const std::vector<ExprRef>& constraints,
                                SolveResult result);
  void RememberUnsat(const std::vector<ExprRef>& constraints);
  bool TryModelReuse(const std::vector<ExprRef>& constraints,
                     const Model& pins, const Model& hints,
                     const std::vector<Model>& pool, Model* out) const;

  std::unordered_map<std::uint64_t, std::vector<Entry>> buckets_;
  std::vector<Model> reuse_models_;  // most recent at the back
  /// Sorted-unique node-address sets of known-UNSAT constraint systems.
  std::vector<std::vector<const Expr*>> unsat_cores_;
  SolveResult reuse_scratch_;        // backs model-reuse Lookup returns
  std::size_t entries_ = 0;
  Stats stats_;
};

}  // namespace octopocs::symex
