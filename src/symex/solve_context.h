// Incremental per-state solve context (the "prefix state" of queries).
//
// Every solver query the executor issues is the state's own path
// condition, and sibling states share a long constraint prefix. The
// dominant per-query setup cost in the byte-CSP solver is domain
// filtering of *unary* constraints — 256 evaluations per constraint per
// query. A SolveContext folds each unary constraint into a per-variable
// 256-bit domain once, when the constraint is added to the state, and is
// forked with the state via copy-on-write: a branch copies two shared
// pointers instead of redoing the prefix's filtering work, and the
// solver seeds its search domains from the context instead of
// re-evaluating the applied constraints.
//
// Determinism contract: the context is a pure function of the *set* of
// constraints applied to it (domain intersection commutes), and seeding
// is engineered to produce bit-identical search behavior to filtering
// the same constraints from scratch — so cached solver results stay pure
// functions of the constraint sequence whether or not a context (or
// whose context) accelerated them. See DESIGN.md §10.
//
// A wiped-out domain sets known_unsat() but deliberately does NOT kill
// the state eagerly: the executor discovers unsatisfiability at its next
// solve, exactly where a from-scratch search would, keeping state
// classification identical to the unaccelerated execution.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "symex/cow.h"
#include "symex/expr.h"

namespace octopocs::symex {

/// Set of allowed values for one input byte, as a 256-bit mask.
struct ByteDomain {
  std::array<std::uint64_t, 4> bits{~0ull, ~0ull, ~0ull, ~0ull};

  bool Test(unsigned v) const { return (bits[v >> 6] >> (v & 63)) & 1; }
  void Reset(unsigned v) { bits[v >> 6] &= ~(1ull << (v & 63)); }

  bool None() const {
    return (bits[0] | bits[1] | bits[2] | bits[3]) == 0;
  }

  int Count() const {
    int n = 0;
    for (const std::uint64_t w : bits) n += __builtin_popcountll(w);
    return n;
  }
};

class SolveContext {
 public:
  struct VarEntry {
    ByteDomain domain;
    /// Unary constraints already folded into `domain`, sorted by node
    /// address so the solver can subtract them from a query's unary set
    /// with a binary search.
    std::vector<const Expr*> applied;
  };
  using DomainMap = std::map<std::uint32_t, VarEntry>;

  /// Folds `constraint` into the per-variable domains when it is unary
  /// (mentions exactly one input byte); otherwise a no-op. Idempotent
  /// per node. Precondition for use as a solve accelerator: every
  /// constraint applied here is part of every query the context is
  /// passed to (the executor applies exactly the state's own path
  /// constraints).
  void Apply(const ExprRef& constraint) {
    const SortedSmallSet<std::uint32_t>& vars = FreeVars(constraint);
    if (vars.size() != 1) return;
    const std::uint32_t var = *vars.begin();
    const Expr* node = constraint.get();
    if (const VarEntry* existing = Find(var)) {
      if (std::binary_search(existing->applied.begin(),
                             existing->applied.end(), node)) {
        return;
      }
    }
    VarEntry& entry = domains_.mut()[var];
    Model probe;
    std::uint8_t& cell = probe[var];
    for (unsigned v = 0; v < 256; ++v) {
      if (!entry.domain.Test(v)) continue;
      cell = static_cast<std::uint8_t>(v);
      if (Eval(constraint, probe) == 0) entry.domain.Reset(v);
    }
    entry.applied.insert(
        std::lower_bound(entry.applied.begin(), entry.applied.end(), node),
        node);
    if (entry.domain.None()) known_unsat_ = true;
  }

  /// Filtered domain for `var`, or nullptr when no unary constraint
  /// mentions it yet.
  const VarEntry* Find(std::uint32_t var) const {
    const DomainMap& map = domains_.get();
    const auto it = map.find(var);
    return it == map.end() ? nullptr : &it->second;
  }

  /// Some applied constraint admits no value for its variable: every
  /// superset query is unsatisfiable.
  bool known_unsat() const { return known_unsat_; }

  /// Per-state reuse pool of models that satisfied this state's past
  /// queries (newest last, deduplicated, capped). Keeping the pool on
  /// the state — instead of a global history — makes model-reuse answers
  /// a pure function of the state, which is what lets frontier workers
  /// replay a serial run bit-for-bit.
  void NoteModel(const Model& model) {
    for (const Model& m : models_.get()) {
      if (m == model) return;
    }
    std::vector<Model>& pool = models_.mut();
    pool.push_back(model);
    if (pool.size() > kMaxModels) pool.erase(pool.begin());
  }

  const std::vector<Model>& recent_models() const { return models_.get(); }

  std::size_t FootprintBytes() const {
    std::size_t bytes = 0;
    const DomainMap& map = domains_.get();
    for (const auto& [var, entry] : map) {
      bytes += sizeof(var) + sizeof(VarEntry) + 48 +
               entry.applied.capacity() * sizeof(const Expr*);
    }
    bytes /= domains_.owners();
    std::size_t model_bytes = 0;
    for (const Model& m : models_.get()) model_bytes += m.size() * 48;
    return bytes + model_bytes / models_.owners();
  }

 private:
  static constexpr std::size_t kMaxModels = 4;

  Cow<DomainMap> domains_;
  Cow<std::vector<Model>> models_;
  bool known_unsat_ = false;
};

}  // namespace octopocs::symex
