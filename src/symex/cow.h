// Copy-on-write containers backing SymState.
//
// Forking at a symbolic branch copies the whole state; before this layer
// that copy was O(state size) — every memory byte, heap record, and loop
// counter was duplicated even though siblings diverge on a handful of
// writes. The two containers here make a fork O(pages touched):
//
//   CowPageMap   sparse key→value store chunked into fixed 64-slot pages,
//                each owned by a shared_ptr. Forking copies the page
//                *index* (one pointer per page); the first write to a
//                shared page clones just that page.
//   Cow<T>       whole-container sharing for small maps (heap metadata,
//                loop counters): get() reads through the shared pointer,
//                mut() clones the container iff another state still
//                references it.
//
// Sharing is only ever *within* one executor run, which is single-
// threaded; parallel corpus verification runs one executor per thread
// and states never migrate, so use_count() checks are race-free.
//
// FootprintBytes() charges shared storage fractionally (bytes divided by
// the number of owners) so the Table IV RAM metric keeps matching real
// usage instead of multiply-counting one page per referencing state.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>

namespace octopocs::symex {

template <typename V>
class CowPageMap {
 public:
  static constexpr std::uint64_t kPageBits = 6;
  static constexpr std::uint64_t kPageSize = 1ull << kPageBits;  // 64 slots
  static constexpr std::uint64_t kPageMask = kPageSize - 1;

  struct Page {
    std::array<V, kPageSize> slots{};
    std::uint64_t present = 0;  // bit i set ⇔ slots[i] holds a value
  };

  /// Pointer to the value at `key`, or nullptr. Never clones.
  const V* Find(std::uint64_t key) const {
    const auto it = pages_.find(key >> kPageBits);
    if (it == pages_.end()) return nullptr;
    const Page& page = *it->second;
    const unsigned slot = static_cast<unsigned>(key & kPageMask);
    if (((page.present >> slot) & 1) == 0) return nullptr;
    return &page.slots[slot];
  }

  /// Inserts or overwrites, cloning the target page first when it is
  /// shared with a forked sibling.
  void Set(std::uint64_t key, V value) {
    std::shared_ptr<Page>& ref = pages_[key >> kPageBits];
    if (!ref) {
      ref = std::make_shared<Page>();
    } else if (ref.use_count() > 1) {
      ref = std::make_shared<Page>(*ref);
    }
    Page& page = *ref;
    const unsigned slot = static_cast<unsigned>(key & kPageMask);
    if (((page.present >> slot) & 1) == 0) {
      page.present |= 1ull << slot;
      ++size_;
    }
    page.slots[slot] = std::move(value);
  }

  /// Number of populated slots (not pages).
  std::size_t size() const { return size_; }
  std::size_t PageCount() const { return pages_.size(); }

  /// Visits (key, value) in ascending key order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [base, page] : pages_) {
      for (unsigned slot = 0; slot < kPageSize; ++slot) {
        if ((page->present >> slot) & 1) {
          fn((base << kPageBits) | slot, page->slots[slot]);
        }
      }
    }
  }

  /// Unshares every page. Exists so the fork-cost bench can measure the
  /// pre-COW eager deep copy against the structural one.
  void DetachAllPages() {
    for (auto& [base, page] : pages_) {
      page = std::make_shared<Page>(*page);
    }
  }

  /// Heap bytes attributable to this map, charging each page's storage
  /// divided by its owner count so a page shared by k forks costs each
  /// of them 1/k of its bytes.
  std::size_t FootprintBytes() const {
    std::size_t bytes = 0;
    for (const auto& [base, page] : pages_) {
      bytes += sizeof(base) + sizeof(page) + 48;  // index node overhead
      bytes += sizeof(Page) /
               static_cast<std::size_t>(page.use_count() > 0
                                            ? page.use_count()
                                            : 1);
    }
    return bytes;
  }

 private:
  std::map<std::uint64_t, std::shared_ptr<Page>> pages_;
  std::size_t size_ = 0;
};

template <typename T>
class Cow {
 public:
  Cow() : value_(std::make_shared<T>()) {}

  const T& get() const { return *value_; }
  const T* operator->() const { return value_.get(); }

  /// Mutable access; clones iff a forked sibling still shares the value.
  T& mut() {
    if (value_.use_count() > 1) value_ = std::make_shared<T>(*value_);
    return *value_;
  }

  /// Owner count, for fractional footprint accounting.
  std::size_t owners() const {
    const long n = value_.use_count();
    return n > 0 ? static_cast<std::size_t>(n) : 1;
  }

 private:
  std::shared_ptr<T> value_;
};

}  // namespace octopocs::symex
