// Symbolic machine state for the MiniVM.
//
// A state is one possible execution of T: a call stack of symbolic
// register frames, byte-granular symbolic memory, concrete heap metadata
// (allocation addresses are a pure function of the allocation sequence —
// see vm/memory.h — so they stay concrete), a concrete file-position
// indicator, the accumulated path constraints, and the set of *pinned*
// bytes (input offsets already forced to a concrete value, either by
// bunch placement in P3 or by concretization).
//
// States are value types: forking at a branch is a copy. The copy is
// structural, not deep — symbolic memory lives in a page-granular
// copy-on-write store and the heap/loop-counter maps are shared whole
// until first write (see symex/cow.h), so a fork costs O(pages touched)
// rather than O(state size).
#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "support/small_set.h"
#include "symex/cow.h"
#include "symex/expr.h"
#include "symex/solve_context.h"
#include "vm/memory.h"

namespace octopocs::symex {

struct SymFrame {
  vm::FuncId fn = 0;
  vm::BlockId block = 0;
  std::size_t ip = 0;
  vm::Reg ret_reg = 0;
  std::vector<ExprRef> regs;
};

struct SymAlloc {
  std::uint64_t size = 0;
  bool alive = true;
};

/// Why a state stopped executing. Used to classify the overall outcome
/// (program-dead vs unsat vs budget) once the worklist drains.
enum class StateDeath : std::uint8_t {
  kAlive,
  kExited,        // returned from the entry function without reaching goal
  kTrapped,       // memory fault / assert / trap before the goal
  kPruned,        // directed mode: no successor can reach ep
  kLoopDead,      // a symbolic loop exceeded θ iterations
  kUnsat,         // pinned-byte conflict or concrete ep-argument mismatch
  kSolverBudget,  // concretization query exhausted the solver budget
  kDepthLimit,    // call-depth or per-state fuel limit
};

struct SymState {
  using HeapMap = std::map<std::uint64_t, SymAlloc>;

  std::vector<SymFrame> frames;
  CowPageMap<ExprRef> mem;
  Cow<HeapMap> heap;
  vm::AllocCursor cursor;
  std::uint64_t file_pos = 0;

  std::vector<ExprRef> constraints;
  Model pinned;
  /// Incremental solve context: per-variable domains of the unary path
  /// constraints, folded once at AddConstraint time and forked via COW
  /// so branch siblings share the prefix's filtering work.
  SolveContext solve_ctx;

  /// DFS position key: lexicographic order over these keys (shorter
  /// prefix first) equals the serial directed-DFS completion order. A
  /// fork at this state's n-th event gets key ++ [0xFFFFFFFF − n],
  /// which reproduces the LIFO pop order; the executor's parallel
  /// frontier uses the keys to commit the same goal state — and the
  /// same observation set — a serial run would have committed.
  std::vector<std::uint32_t> dfs_key;
  /// Monotonic event counter backing both fork keys and the event keys
  /// used for deterministic flag/detail merging (see executor.cpp).
  std::uint32_t event_seq = 0;

  /// Symbolic-loop bookkeeping, keyed by back edge. Only traversals that
  /// changed the constraint store count toward θ (the paper's "loop
  /// state"); concretely-bounded loops are limited by fuel alone.
  struct LoopEntry {
    std::uint32_t count = 0;
    std::uint64_t last_constraint_count = ~std::uint64_t{0};
  };
  using LoopMap =
      std::map<std::tuple<vm::FuncId, vm::BlockId, vm::BlockId>, LoopEntry>;
  Cow<LoopMap> loop_counts;

  std::uint32_t ep_count = 0;       // encounters of ep so far
  /// poc' offsets covered by bunch placements (for classification).
  std::vector<std::uint32_t> bunch_targets;
  /// File offsets the symbolic execution actually read. Only these may
  /// be hint-filled from the original PoC when poc' is emitted: a byte
  /// the verified path never read is outside the verification claim and
  /// must stay at the solver default.
  SortedSmallSet<std::uint32_t> read_offsets;
  std::uint32_t depth_inside = 0;   // frames at or below the active ep frame
  std::uint64_t instructions = 0;   // per-state fuel
  std::uint64_t required_size = 0;  // poc' length high-water mark
  bool fsize_observed = false;
  /// True once every bunch is placed: execution continues through ℓ
  /// (Algorithm 2's ExploreWhileEp) and the state finalizes — solving
  /// the combined system into poc' — when it crashes or exits ℓ, so
  /// required_size covers the bytes ℓ itself consumes.
  bool combining_done = false;
  StateDeath death = StateDeath::kAlive;

  /// Executor bookkeeping, not semantic state: the footprint charged to
  /// the global queued-memory gauge when this state was enqueued. COW
  /// owner counts shift while a state sits queued, so FootprintBytes()
  /// at pop time need not equal the push-time value — the gauge must be
  /// credited exactly what it was debited or it drifts (and, being an
  /// atomic counter, would wrap on underflow).
  std::size_t queued_charge = 0;

  /// Rough live-memory footprint in bytes, the Table IV "RAM" metric.
  /// Counts the state's own containers; storage shared with forked
  /// siblings (memory pages, the heap and loop-counter maps) is charged
  /// fractionally — bytes divided by owner count — so Σ footprints over
  /// the live worklist tracks real allocation instead of multiplying a
  /// shared page by every state that references it. Expression nodes
  /// stay charged once per reference, which over-approximates like a
  /// real symbolic executor's per-state accounting does.
  std::size_t FootprintBytes() const {
    std::size_t bytes = sizeof(SymState);
    bytes += mem.FootprintBytes();
    bytes += heap.get().size() *
             (sizeof(std::uint64_t) + sizeof(SymAlloc) + 48) /
             heap.owners();
    bytes += loop_counts.get().size() * 64 / loop_counts.owners();
    bytes += constraints.capacity() * sizeof(ExprRef) +
             constraints.size() * 40;
    bytes += pinned.size() * 48;
    bytes += solve_ctx.FootprintBytes();
    bytes += dfs_key.capacity() * sizeof(std::uint32_t);
    bytes += bunch_targets.capacity() * sizeof(std::uint32_t);
    bytes += read_offsets.items().capacity() * sizeof(std::uint32_t);
    bytes += frames.capacity() * sizeof(SymFrame);
    for (const SymFrame& f : frames) {
      bytes += f.regs.capacity() * sizeof(ExprRef);
    }
    return bytes;
  }
};

}  // namespace octopocs::symex
