// Phase P1: context-aware crash-primitive extraction (Algorithm 1).
//
// Runs S concretely on the original PoC with the taint engine attached
// and records, for every encounter of the shared-area entry point `ep`,
// which PoC bytes were consumed while execution was inside ℓ. Each
// encounter produces one *bunch* — the byte offsets/values plus the
// concrete arguments ep was called with. P3 later replays bunch k when
// the directed execution of T reaches ep for the k-th time.
//
// "Context-aware" is the paper's Table III ablation knob: with context
// disabled the extractor still collects the same offsets but merges them
// into a single bunch, losing the per-encounter grouping (and the ep
// argument contexts beyond the first), which is exactly why the ablation
// fails on multi-encounter targets.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bytes.h"
#include "taint/taint_engine.h"
#include "vm/interp.h"

namespace octopocs::taint {

/// One crash primitive: the PoC bytes used inside ℓ during a single
/// encounter of ep, with the context needed to replay it.
struct Bunch {
  /// (poc offset, poc byte value), sorted by offset, deduplicated.
  std::vector<std::pair<std::uint32_t, std::uint8_t>> bytes;
  /// Concrete arguments ep received at this encounter. P3 requires T to
  /// execute ep "with the same parameters as those used in S".
  std::vector<std::uint64_t> ep_args;
  /// S's file-position indicator when this encounter began. P3 places
  /// each bunch byte at (offset - file_pos_at_ep) relative to T's file
  /// position at the matching encounter; bytes consumed inside ℓ but
  /// read *before* ep keep their absolute offsets (best effort).
  std::uint64_t file_pos_at_ep = 0;

  /// Number of primitive bytes in this bunch.
  std::size_t size() const { return bytes.size(); }
};

struct ExtractionResult {
  /// bunches[k] belongs to the (k+1)-th encounter of ep.
  std::vector<Bunch> bunches;
  /// Trap S died with. P1 is only meaningful when this is a crash — the
  /// PoC must actually trigger the vulnerability in S.
  vm::TrapKind trap = vm::TrapKind::kNone;
  /// Total times execution entered ℓ through ep.
  std::uint32_t ep_encounters = 0;
  /// Instructions executed (diagnostics; Table IV-style costs).
  std::uint64_t instructions = 0;

  bool Crashed() const { return vm::IsCrash(trap); }
};

struct ExtractionOptions {
  /// Table III knob: false collapses every encounter into bunch 0.
  bool context_aware = true;
  vm::ExecOptions exec;
};

/// Runs S on `poc` and extracts crash primitives relative to `ep`.
/// Throws std::invalid_argument if `ep` is not a function of S.
ExtractionResult ExtractCrashPrimitives(const vm::Program& s, ByteView poc,
                                        vm::FuncId ep,
                                        const ExtractionOptions& options = {});

}  // namespace octopocs::taint
