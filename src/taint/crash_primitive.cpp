#include "taint/crash_primitive.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace octopocs::taint {

namespace {

/// Observer implementing the context bookkeeping of Algorithm 1: detects
/// entries into ℓ (any frame at or below an ep frame counts as "inside"),
/// and while inside marks every tainted source operand's file offsets
/// into the current bunch.
class Extractor : public vm::ExecutionObserver {
 public:
  Extractor(ByteView poc, vm::FuncId ep, const TaintEngine* engine,
            bool context_aware)
      : poc_(poc), ep_(ep), engine_(engine), context_aware_(context_aware) {}

  /// The interpreter is constructed after the extractor; wire it in so
  /// ep entries can sample the file-position indicator.
  void set_interpreter(const vm::Interpreter* interp) { interp_ = interp; }

  void OnCallEnter(vm::FuncId callee, std::span<const std::uint64_t> args,
                   const vm::Instr*) override {
    if (depth_inside_ > 0) {
      ++depth_inside_;
      return;
    }
    if (callee == ep_) {
      depth_inside_ = 1;
      ++encounters_;
      auto& bunch = CurrentBunch();
      if (bunch.ep_args.empty()) {
        bunch.ep_args.assign(args.begin(), args.end());
        bunch.file_pos_at_ep = interp_ != nullptr ? interp_->file_pos() : 0;
      }
    }
  }

  void OnCallExit(vm::FuncId, std::uint64_t, bool, vm::Reg,
                  vm::Reg) override {
    if (depth_inside_ > 0) --depth_inside_;
  }

  void OnInstr(vm::FuncId, vm::BlockId, std::size_t, const vm::Instr& instr,
               std::uint64_t eff_addr, std::uint64_t) override {
    if (depth_inside_ == 0) return;
    const TaintSet used = engine_->SourceTaint(instr, eff_addr);
    if (used.empty()) return;
    auto& offsets = CurrentOffsets();
    for (const std::uint32_t off : used) {
      if (off < poc_.size()) offsets.Insert(off);
    }
  }

  void OnFileRead(std::uint64_t, std::uint64_t file_off,
                  std::uint64_t count) override {
    // Bytes that ℓ itself consumes from the file are crash primitives
    // even before any explicit load touches them: the read stores them
    // into ℓ's memory (and an overflowing read *is* several of the
    // corpus vulnerabilities).
    if (depth_inside_ == 0) return;
    auto& offsets = CurrentOffsets();
    for (std::uint64_t i = 0; i < count; ++i) {
      if (file_off + i < poc_.size()) {
        offsets.Insert(static_cast<std::uint32_t>(file_off + i));
      }
    }
  }

  /// Complete serialization of the extractor's accumulated state; with
  /// the taint engine's snapshot this lets the interpreter fast-forward
  /// exact loop cycles during the P1 run of a hung program. The bunch
  /// sets are monotone, so a cycle's worth of events leaves them
  /// unchanged once the first full period has been observed — which is
  /// precisely when two snapshots compare equal.
  bool SnapshotState(std::vector<std::uint8_t>* out) const override {
    Bytes& b = *out;
    AppendLe(b, depth_inside_, 4);
    AppendLe(b, encounters_, 4);
    AppendLe(b, bunches_.size(), 8);
    for (const Bunch& bunch : bunches_) {
      AppendLe(b, bunch.ep_args.size(), 8);
      for (const std::uint64_t a : bunch.ep_args) AppendLe(b, a, 8);
      AppendLe(b, bunch.file_pos_at_ep, 8);
      AppendLe(b, bunch.bytes.size(), 8);  // empty until TakeBunches
      for (const auto& [off, val] : bunch.bytes) {
        AppendLe(b, off, 4);
        AppendLe(b, val, 1);
      }
    }
    AppendLe(b, offsets_.size(), 8);
    for (const auto& set : offsets_) {
      AppendLe(b, set.size(), 8);
      for (const std::uint32_t off : set) AppendLe(b, off, 4);
    }
    return true;
  }

  std::vector<Bunch> TakeBunches() {
    std::vector<Bunch> out;
    out.reserve(bunches_.size());
    for (std::size_t i = 0; i < bunches_.size(); ++i) {
      Bunch b = std::move(bunches_[i]);
      b.bytes.reserve(offsets_[i].size());
      for (const std::uint32_t off : offsets_[i]) {
        b.bytes.emplace_back(off, poc_[off]);
      }
      out.push_back(std::move(b));
    }
    return out;
  }

  std::uint32_t encounters() const { return encounters_; }

 private:
  Bunch& CurrentBunch() {
    const std::size_t idx = context_aware_ ? encounters_ - 1 : 0;
    if (bunches_.size() <= idx) {
      bunches_.resize(idx + 1);
      offsets_.resize(idx + 1);
    }
    return bunches_[idx];
  }

  SortedSmallSet<std::uint32_t>& CurrentOffsets() {
    const std::size_t idx =
        context_aware_ ? (encounters_ == 0 ? 0 : encounters_ - 1) : 0;
    if (offsets_.size() <= idx) {
      bunches_.resize(idx + 1);
      offsets_.resize(idx + 1);
    }
    return offsets_[idx];
  }

  ByteView poc_;
  vm::FuncId ep_;
  const TaintEngine* engine_;
  const vm::Interpreter* interp_ = nullptr;
  bool context_aware_;

  std::uint32_t depth_inside_ = 0;  // frames at or below the active ep frame
  std::uint32_t encounters_ = 0;
  std::vector<Bunch> bunches_;
  std::vector<SortedSmallSet<std::uint32_t>> offsets_;
};

}  // namespace

ExtractionResult ExtractCrashPrimitives(const vm::Program& s, ByteView poc,
                                        vm::FuncId ep,
                                        const ExtractionOptions& options) {
  if (ep >= s.functions.size()) {
    throw std::invalid_argument("ep is not a function of S");
  }
  if (auto err = Validate(s)) {
    throw std::invalid_argument("invalid program S: " + *err);
  }

  TaintEngine engine(s);
  Extractor extractor(poc, ep, &engine, options.context_aware);
  vm::Interpreter interp(s, poc, options.exec);
  extractor.set_interpreter(&interp);
  // Order matters: the engine must propagate taint for an instruction
  // *after* the extractor sampled source taints for the same instruction?
  // No — both consume the pre-update state for sources, but the engine
  // overwrites destination taint in OnInstr. The extractor reads source
  // operands only, and the engine updates destinations only, so having
  // the extractor observe first keeps the sampled sets pre-update.
  interp.AddObserver(&extractor);
  interp.AddObserver(&engine);
  const vm::ExecResult run = interp.Run();

  ExtractionResult result;
  result.trap = run.trap;
  result.instructions = run.instructions;
  result.ep_encounters = extractor.encounters();
  result.bunches = extractor.TakeBunches();
  return result;
}

}  // namespace octopocs::taint
