#include "taint/taint_engine.h"

#include "support/bytes.h"
#include "support/fault.h"
#include "vm/op_info.h"

namespace octopocs::taint {

namespace {

void AppendTaintSet(Bytes& out, const TaintSet& set) {
  AppendLe(out, set.size(), 8);
  for (const std::uint32_t v : set) AppendLe(out, v, 4);
}

}  // namespace

const TaintSet TaintEngine::kEmpty{};

TaintEngine::TaintEngine(const vm::Program& program) : program_(program) {}

const TaintSet& TaintEngine::RegTaint(vm::Reg r) const {
  if (frames_.empty() || r >= frames_.back().size()) return kEmpty;
  return frames_.back()[r];
}

TaintSet TaintEngine::MemTaint(std::uint64_t addr, std::uint64_t width) const {
  TaintSet out;
  // The file mapping is an implicit taint source: byte i of the mapping
  // *is* PoC byte i (the "memory-mapping function" input channel the
  // paper hooks alongside file reads).
  if (addr + width > vm::kMmapBase) {
    for (std::uint64_t i = 0; i < width; ++i) {
      if (addr + i >= vm::kMmapBase) {
        out.Insert(static_cast<std::uint32_t>(addr + i - vm::kMmapBase));
      }
    }
    return out;
  }
  // Range scan over the per-byte map: widths are tiny (<= 8 for register
  // accesses), but kRead can cover whole buffers, so iterate the map
  // range rather than probing byte by byte.
  auto it = mem_.lower_bound(addr);
  while (it != mem_.end() && it->first < addr + width) {
    out.UnionWith(it->second);
    ++it;
  }
  return out;
}

TaintSet TaintEngine::SourceTaint(const vm::Instr& instr,
                                  std::uint64_t eff_addr) const {
  // Table-driven (vm/op_info.h): the roles encode, per opcode, which
  // operands are data-flow sources — e.g. kRead *uses* its destination
  // pointer and count (a tainted length driving an overflowing read is a
  // crash primitive; several corpus CVEs have exactly this shape), and a
  // kLoad reads both the addressed bytes and the pointer itself.
  const vm::OpInfo& info = vm::GetOpInfo(instr.op);
  TaintSet out;
  if (info.src_a) out.UnionWith(RegTaint(instr.a));
  if (info.src_b) out.UnionWith(RegTaint(instr.b));
  if (info.src_c) out.UnionWith(RegTaint(instr.c));
  if (info.src_mem) out.UnionWith(MemTaint(eff_addr, instr.width));
  return out;
}

void TaintEngine::OnInstr(vm::FuncId, vm::BlockId, std::size_t,
                          const vm::Instr& instr, std::uint64_t eff_addr,
                          std::uint64_t) {
  support::fault::MaybeThrow(support::FaultSite::kTaintStep);
  if (frames_.empty()) return;
  auto& regs = Top();
  // Algorithm 1's transfer function, driven by the shared destination
  // policy (vm/op_info.h) so this classification cannot drift from the
  // interpreter's and the symbolic executor's views of the same ops.
  switch (vm::GetOpInfo(instr.op).dest) {
    case vm::TaintDest::kClean:
      // Immediates, fresh pointers (kAlloc/kMMap), lengths and file
      // positions (kRead's count, kTell/kFileSize) are clean by policy.
      regs[instr.a].Clear();
      break;
    case vm::TaintDest::kCopyB:
      regs[instr.a] = regs[instr.b];
      break;
    case vm::TaintDest::kUnionBC: {
      TaintSet t = regs[instr.b];
      t.UnionWith(regs[instr.c]);
      regs[instr.a] = std::move(t);
      break;
    }
    case vm::TaintDest::kFromMem:
      regs[instr.a] = MemTaint(eff_addr, instr.width);
      break;
    case vm::TaintDest::kMemStore: {
      // Strong update per written byte: tainted source propagates, clean
      // source erases (Algorithm 1 lines 8-11).
      const TaintSet& src = regs[instr.a];
      for (std::uint64_t i = 0; i < instr.width; ++i) {
        if (src.empty()) {
          mem_.erase(eff_addr + i);
        } else {
          mem_[eff_addr + i] = src;
        }
      }
      break;
    }
    case vm::TaintDest::kNone:
      break;
  }
}

void TaintEngine::OnCallEnter(vm::FuncId callee,
                              std::span<const std::uint64_t> args,
                              const vm::Instr* call_site) {
  std::vector<TaintSet> next(program_.Fn(callee).num_regs);
  if (call_site != nullptr && !frames_.empty()) {
    const auto& caller = frames_.back();
    for (std::size_t i = 0; i < call_site->args.size(); ++i) {
      next[i] = caller[call_site->args[i]];
    }
  }
  (void)args;
  frames_.push_back(std::move(next));
}

void TaintEngine::OnCallExit(vm::FuncId, std::uint64_t, bool returns_value,
                             vm::Reg callee_value_reg,
                             vm::Reg caller_dest_reg) {
  TaintSet ret_taint;
  if (returns_value && !frames_.empty()) {
    ret_taint = frames_.back()[callee_value_reg];
  }
  frames_.pop_back();
  if (!frames_.empty()) {
    frames_.back()[caller_dest_reg] = std::move(ret_taint);
  }
}

bool TaintEngine::SnapshotState(std::vector<std::uint8_t>* out) const {
  Bytes& b = *out;
  AppendLe(b, frames_.size(), 8);
  for (const std::vector<TaintSet>& frame : frames_) {
    AppendLe(b, frame.size(), 8);
    for (const TaintSet& t : frame) AppendTaintSet(b, t);
  }
  AppendLe(b, mem_.size(), 8);
  for (const auto& [addr, set] : mem_) {
    AppendLe(b, addr, 8);
    AppendTaintSet(b, set);
  }
  return true;
}

void TaintEngine::OnFileRead(std::uint64_t dst_addr, std::uint64_t file_off,
                             std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    mem_[dst_addr + i] =
        TaintSet::Single(static_cast<std::uint32_t>(file_off + i));
  }
}

}  // namespace octopocs::taint
