#include "taint/taint_engine.h"

#include "support/fault.h"

namespace octopocs::taint {

const TaintSet TaintEngine::kEmpty{};

TaintEngine::TaintEngine(const vm::Program& program) : program_(program) {}

const TaintSet& TaintEngine::RegTaint(vm::Reg r) const {
  if (frames_.empty() || r >= frames_.back().size()) return kEmpty;
  return frames_.back()[r];
}

TaintSet TaintEngine::MemTaint(std::uint64_t addr, std::uint64_t width) const {
  TaintSet out;
  // The file mapping is an implicit taint source: byte i of the mapping
  // *is* PoC byte i (the "memory-mapping function" input channel the
  // paper hooks alongside file reads).
  if (addr + width > vm::kMmapBase) {
    for (std::uint64_t i = 0; i < width; ++i) {
      if (addr + i >= vm::kMmapBase) {
        out.Insert(static_cast<std::uint32_t>(addr + i - vm::kMmapBase));
      }
    }
    return out;
  }
  // Range scan over the per-byte map: widths are tiny (<= 8 for register
  // accesses), but kRead can cover whole buffers, so iterate the map
  // range rather than probing byte by byte.
  auto it = mem_.lower_bound(addr);
  while (it != mem_.end() && it->first < addr + width) {
    out.UnionWith(it->second);
    ++it;
  }
  return out;
}

TaintSet TaintEngine::SourceTaint(const vm::Instr& instr,
                                  std::uint64_t eff_addr) const {
  using vm::Op;
  TaintSet out;
  switch (instr.op) {
    case Op::kMov:
    case Op::kNot:
    case Op::kAddImm:
      out.UnionWith(RegTaint(instr.b));
      break;
    case Op::kLoad:
      out.UnionWith(MemTaint(eff_addr, instr.width));
      out.UnionWith(RegTaint(instr.b));  // the pointer itself
      break;
    case Op::kStore:
      out.UnionWith(RegTaint(instr.a));
      out.UnionWith(RegTaint(instr.b));
      break;
    case Op::kAssert:
    case Op::kFree:
      out.UnionWith(RegTaint(instr.a));
      break;
    case Op::kAlloc:
    case Op::kSeek:
      out.UnionWith(RegTaint(instr.b));
      break;
    case Op::kRead:
      // A file read *uses* its destination pointer and count — a
      // tainted length driving an overflowing read is a crash
      // primitive (several corpus CVEs have exactly this shape).
      out.UnionWith(RegTaint(instr.b));
      out.UnionWith(RegTaint(instr.c));
      break;
    default:
      if (vm::IsBinaryAlu(instr.op)) {
        out.UnionWith(RegTaint(instr.b));
        out.UnionWith(RegTaint(instr.c));
      }
      break;
  }
  return out;
}

void TaintEngine::OnInstr(vm::FuncId, vm::BlockId, std::size_t,
                          const vm::Instr& instr, std::uint64_t eff_addr,
                          std::uint64_t) {
  using vm::Op;
  support::fault::MaybeThrow(support::FaultSite::kTaintStep);
  if (frames_.empty()) return;
  auto& regs = Top();
  switch (instr.op) {
    case Op::kMovImm:
    case Op::kAlloc:     // fresh pointer: clean by policy
    case Op::kMMap:      // the mapping base is a clean pointer too
    case Op::kTell:
    case Op::kFileSize:
    case Op::kFnAddr:
      regs[instr.a].Clear();
      break;
    case Op::kMov:
    case Op::kNot:
    case Op::kAddImm:
      regs[instr.a] = regs[instr.b];
      break;
    case Op::kLoad:
      regs[instr.a] = MemTaint(eff_addr, instr.width);
      break;
    case Op::kStore: {
      // Strong update per written byte: tainted source propagates, clean
      // source erases (Algorithm 1 lines 8-11).
      const TaintSet& src = regs[instr.a];
      for (std::uint64_t i = 0; i < instr.width; ++i) {
        if (src.empty()) {
          mem_.erase(eff_addr + i);
        } else {
          mem_[eff_addr + i] = src;
        }
      }
      break;
    }
    case Op::kRead:
      // The count of bytes read is a length, not content.
      regs[instr.a].Clear();
      break;
    default:
      if (vm::IsBinaryAlu(instr.op)) {
        TaintSet t = regs[instr.b];
        t.UnionWith(regs[instr.c]);
        regs[instr.a] = std::move(t);
      }
      break;
  }
}

void TaintEngine::OnCallEnter(vm::FuncId callee,
                              std::span<const std::uint64_t> args,
                              const vm::Instr* call_site) {
  std::vector<TaintSet> next(program_.Fn(callee).num_regs);
  if (call_site != nullptr && !frames_.empty()) {
    const auto& caller = frames_.back();
    for (std::size_t i = 0; i < call_site->args.size(); ++i) {
      next[i] = caller[call_site->args[i]];
    }
  }
  (void)args;
  frames_.push_back(std::move(next));
}

void TaintEngine::OnCallExit(vm::FuncId, std::uint64_t, bool returns_value,
                             vm::Reg callee_value_reg,
                             vm::Reg caller_dest_reg) {
  TaintSet ret_taint;
  if (returns_value && !frames_.empty()) {
    ret_taint = frames_.back()[callee_value_reg];
  }
  frames_.pop_back();
  if (!frames_.empty()) {
    frames_.back()[caller_dest_reg] = std::move(ret_taint);
  }
}

void TaintEngine::OnFileRead(std::uint64_t dst_addr, std::uint64_t file_off,
                             std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    mem_[dst_addr + i] =
        TaintSet::Single(static_cast<std::uint32_t>(file_off + i));
  }
}

}  // namespace octopocs::taint
