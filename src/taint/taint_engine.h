// Byte-level dynamic taint engine (the PIN-tool substitute).
//
// Labels are input-file offsets: after the run, a register or memory byte
// is tainted with exactly the set of PoC byte offsets that flowed into it
// through data dependencies. The engine mirrors the MiniVM's dataflow as
// an ExecutionObserver — the same architecture as a PIN analysis tool,
// which re-derives dataflow from the instruction stream.
//
// Policy (standard explicit-flow taint, byte granularity in memory):
//  - kRead seeds mem[dst+i] with {file_off+i} (the "specified memory
//    area" of the paper, tracked per byte with its originating offset);
//  - ALU ops union source-register taints into the destination;
//  - loads union the accessed memory bytes' taints; stores write the
//    source register's taint to every written byte (strong update: an
//    untainted store clears taint, mirroring Algorithm 1 line 11);
//  - calls copy argument-register taints into the callee frame and the
//    return-register taint back to the caller;
//  - pointers produced by kAlloc, counts, and file positions are clean.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "support/small_set.h"
#include "vm/interp.h"

namespace octopocs::taint {

using TaintSet = SortedSmallSet<std::uint32_t>;

class TaintEngine : public vm::ExecutionObserver {
 public:
  explicit TaintEngine(const vm::Program& program);

  // -- Queries (valid during and after a run) ------------------------------

  /// Taint of register `r` in the innermost frame.
  const TaintSet& RegTaint(vm::Reg r) const;

  /// Union of the per-byte taints of [addr, addr+width).
  TaintSet MemTaint(std::uint64_t addr, std::uint64_t width) const;

  /// Union of the taints of every *source* operand of `instr` as it
  /// executed (registers read, memory bytes loaded or stored over).
  /// This is what "the specified memory area is referenced" means in
  /// Algorithm 1 — crash-primitive extraction marks these offsets.
  TaintSet SourceTaint(const vm::Instr& instr, std::uint64_t eff_addr) const;

  // -- ExecutionObserver ----------------------------------------------------
  void OnInstr(vm::FuncId fn, vm::BlockId block, std::size_t ip,
               const vm::Instr& instr, std::uint64_t eff_addr,
               std::uint64_t value) override;
  void OnCallEnter(vm::FuncId callee, std::span<const std::uint64_t> args,
                   const vm::Instr* call_site) override;
  void OnCallExit(vm::FuncId callee, std::uint64_t ret, bool returns_value,
                  vm::Reg callee_value_reg, vm::Reg caller_dest_reg) override;
  void OnFileRead(std::uint64_t dst_addr, std::uint64_t file_off,
                  std::uint64_t count) override;
  /// Complete serialization of the taint state (frames + memory map),
  /// enabling the interpreter's exact-cycle fast-forward during the P1
  /// run of a hung (CWE-835) program.
  bool SnapshotState(std::vector<std::uint8_t>* out) const override;

 private:
  std::vector<TaintSet>& Top() { return frames_.back(); }

  const vm::Program& program_;
  std::vector<std::vector<TaintSet>> frames_;  // register taint per frame
  std::map<std::uint64_t, TaintSet> mem_;      // per-byte memory taint
  static const TaintSet kEmpty;
};

}  // namespace octopocs::taint
