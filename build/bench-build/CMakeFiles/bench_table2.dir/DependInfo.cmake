
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2.cpp" "bench-build/CMakeFiles/bench_table2.dir/bench_table2.cpp.o" "gcc" "bench-build/CMakeFiles/bench_table2.dir/bench_table2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/octo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/octo_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzz/CMakeFiles/octo_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/symex/CMakeFiles/octo_symex.dir/DependInfo.cmake"
  "/root/repo/build/src/taint/CMakeFiles/octo_taint.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/octo_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/octo_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/octo_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/octo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
