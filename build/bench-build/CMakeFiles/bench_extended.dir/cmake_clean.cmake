file(REMOVE_RECURSE
  "../bench/bench_extended"
  "../bench/bench_extended.pdb"
  "CMakeFiles/bench_extended.dir/bench_extended.cpp.o"
  "CMakeFiles/bench_extended.dir/bench_extended.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
