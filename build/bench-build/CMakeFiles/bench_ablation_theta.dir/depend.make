# Empty dependencies file for bench_ablation_theta.
# This may be replaced when dependencies are built.
