file(REMOVE_RECURSE
  "../bench/bench_ablation_theta"
  "../bench/bench_ablation_theta.pdb"
  "CMakeFiles/bench_ablation_theta.dir/bench_ablation_theta.cpp.o"
  "CMakeFiles/bench_ablation_theta.dir/bench_ablation_theta.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
