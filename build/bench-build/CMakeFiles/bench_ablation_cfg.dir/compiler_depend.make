# Empty compiler generated dependencies file for bench_ablation_cfg.
# This may be replaced when dependencies are built.
