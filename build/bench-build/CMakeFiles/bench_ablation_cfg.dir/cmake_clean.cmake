file(REMOVE_RECURSE
  "../bench/bench_ablation_cfg"
  "../bench/bench_ablation_cfg.pdb"
  "CMakeFiles/bench_ablation_cfg.dir/bench_ablation_cfg.cpp.o"
  "CMakeFiles/bench_ablation_cfg.dir/bench_ablation_cfg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
