program "opj_dump"

func mj2k_decode(r0)
L0:
  movi %r1, 4
  alloc %r2, %r1
  read %r3, %r2, %r1
  load.4 %r4, %r2, 0
  movi %r5, 0x4b324a4d
  cmpeq %r6, %r4, %r5
  assert %r6
  movi %r7, 64
  alloc %r8, %r7
  movi %r9, 8
  alloc %r10, %r9
  jmp L1
L1:
  movi %r11, 3
  read %r12, %r10, %r11
  cmpltu %r13, %r12, %r11
  br %r13, L2, L3
L2:
  ret %r8
L3:
  load.1 %r14, %r10, 0
  load.2 %r15, %r10, 1
  movi %r16, 1
  cmpeq %r17, %r14, %r16
  br %r17, L4, L5
L4:
  call %r18, mj2k_components(%r8)
  jmp L1
L5:
  movi %r19, 127
  cmpeq %r20, %r14, %r19
  br %r20, L2, L6
L6:
  tell %r21
  add %r21, %r21, %r15
  seek %r21
  jmp L1

func mj2k_components(r0)
L0:
  movi %r1, 5
  alloc %r2, %r1
  read %r3, %r2, %r1
  load.1 %r4, %r2, 0
  movi %r5, 0
  jmp L1
L1:
  cmpltu %r6, %r5, %r4
  br %r6, L2, L3
L2:
  movi %r7, 16
  alloc %r8, %r7
  movi %r9, 8
  mul %r10, %r5, %r9
  add %r11, %r0, %r10
  store.8 %r8, %r11, 0
  addi %r5, %r5, 1
  jmp L1
L3:
  load.8 %r12, %r0, 0
  load.4 %r13, %r12, 0
  ret %r13

func main()
L0:
  movi %r0, 0
  call %r1, mj2k_decode(%r0)
  ret %r1

