file(REMOVE_RECURSE
  "CMakeFiles/octopocs_cli.dir/octopocs_cli.cpp.o"
  "CMakeFiles/octopocs_cli.dir/octopocs_cli.cpp.o.d"
  "octopocs"
  "octopocs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octopocs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
