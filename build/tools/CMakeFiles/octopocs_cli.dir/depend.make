# Empty dependencies file for octopocs_cli.
# This may be replaced when dependencies are built.
