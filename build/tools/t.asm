program "mupdf"

func mj2k_decode(r0)
L0:
  movi %r1, 4
  alloc %r2, %r1
  read %r3, %r2, %r1
  load.4 %r4, %r2, 0
  movi %r5, 0x4b324a4d
  cmpeq %r6, %r4, %r5
  assert %r6
  movi %r7, 64
  alloc %r8, %r7
  movi %r9, 8
  alloc %r10, %r9
  jmp L1
L1:
  movi %r11, 3
  read %r12, %r10, %r11
  cmpltu %r13, %r12, %r11
  br %r13, L2, L3
L2:
  ret %r8
L3:
  load.1 %r14, %r10, 0
  load.2 %r15, %r10, 1
  movi %r16, 1
  cmpeq %r17, %r14, %r16
  br %r17, L4, L5
L4:
  call %r18, mj2k_components(%r8)
  jmp L1
L5:
  movi %r19, 127
  cmpeq %r20, %r14, %r19
  br %r20, L2, L6
L6:
  tell %r21
  add %r21, %r21, %r15
  seek %r21
  jmp L1

func mj2k_components(r0)
L0:
  movi %r1, 5
  alloc %r2, %r1
  read %r3, %r2, %r1
  load.1 %r4, %r2, 0
  movi %r5, 0
  jmp L1
L1:
  cmpltu %r6, %r5, %r4
  br %r6, L2, L3
L2:
  movi %r7, 16
  alloc %r8, %r7
  movi %r9, 8
  mul %r10, %r5, %r9
  add %r11, %r0, %r10
  store.8 %r8, %r11, 0
  addi %r5, %r5, 1
  jmp L1
L3:
  load.8 %r12, %r0, 0
  load.4 %r13, %r12, 0
  ret %r13

func main()
L0:
  movi %r0, 6
  alloc %r1, %r0
  read %r2, %r1, %r0
  load.4 %r3, %r1, 0
  movi %r4, 0x46445025
  cmpeq %r5, %r3, %r4
  assert %r5
  load.1 %r6, %r1, 4
  load.1 %r7, %r1, 5
  movi %r8, 0
  movi %r9, 1
  and %r10, %r7, %r9
  br %r10, L1, L2
L1:
  addi %r8, %r8, 1
  jmp L3
L2:
  jmp L3
L3:
  movi %r11, 2
  and %r12, %r7, %r11
  br %r12, L4, L5
L4:
  addi %r8, %r8, 2
  jmp L6
L5:
  jmp L6
L6:
  movi %r13, 4
  and %r14, %r7, %r13
  br %r14, L7, L8
L7:
  addi %r8, %r8, 4
  jmp L9
L8:
  jmp L9
L9:
  movi %r15, 8
  and %r16, %r7, %r15
  br %r16, L10, L11
L10:
  addi %r8, %r8, 8
  jmp L12
L11:
  jmp L12
L12:
  movi %r17, 8
  alloc %r18, %r17
  read %r19, %r18, %r17
  movi %r20, 0
  movi %r21, 1
  jmp L13
L13:
  cmpltu %r22, %r20, %r17
  br %r22, L14, L15
L14:
  add %r23, %r18, %r20
  load.1 %r24, %r23, 0
  and %r25, %r24, %r21
  br %r25, L16, L17
L15:
  movi %r26, 4
  alloc %r27, %r26
  movi %r28, 0
  jmp L19
L16:
  addi %r8, %r8, 1
  jmp L18
L17:
  addi %r8, %r8, 2
  jmp L18
L18:
  addi %r20, %r20, 1
  jmp L13
L19:
  cmpltu %r29, %r28, %r6
  br %r29, L20, L21
L20:
  read %r30, %r27, %r26
  load.1 %r31, %r27, 1
  load.2 %r32, %r27, 2
  movi %r33, 2
  cmpeq %r34, %r31, %r33
  br %r34, L22, L23
L21:
  ret %r28
L22:
  movi %r35, 0
  call %r36, mj2k_decode(%r35)
  addi %r28, %r28, 1
  jmp L19
L23:
  movi %r37, 1
  cmpeq %r38, %r31, %r37
  br %r38, L24, L25
L24:
  tell %r43
  add %r43, %r43, %r32
  seek %r43
  addi %r28, %r28, 1
  jmp L19
L25:
  movi %r39, 3
  cmpeq %r40, %r31, %r39
  br %r40, L24, L26
L26:
  movi %r41, 0
  cmpeq %r42, %r31, %r41
  br %r42, L21, L27
L27:
  trap

