# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_export "/root/repo/build/tools/octopocs" "export" "8" "/root/repo/build/tools")
set_tests_properties(cli_export PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_verify "/root/repo/build/tools/octopocs" "verify" "/root/repo/build/tools/s.asm" "/root/repo/build/tools/t.asm" "/root/repo/build/tools/poc.bin" "--out" "/root/repo/build/tools/poc_reformed.bin")
set_tests_properties(cli_verify PROPERTIES  DEPENDS "cli_export" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_detect "/root/repo/build/tools/octopocs" "detect" "/root/repo/build/tools/s.asm" "/root/repo/build/tools/t.asm")
set_tests_properties(cli_detect PROPERTIES  DEPENDS "cli_export" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_s "/root/repo/build/tools/octopocs" "run" "/root/repo/build/tools/s.asm" "/root/repo/build/tools/poc.bin")
set_tests_properties(cli_run_s PROPERTIES  DEPENDS "cli_export" PASS_REGULAR_EXPRESSION "trap: null-deref" WILL_FAIL "OFF" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_minimize "/root/repo/build/tools/octopocs" "minimize" "/root/repo/build/tools/s.asm" "/root/repo/build/tools/poc.bin")
set_tests_properties(cli_minimize PROPERTIES  DEPENDS "cli_export" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_disasm "/root/repo/build/tools/octopocs" "disasm" "/root/repo/build/tools/s.asm")
set_tests_properties(cli_disasm PROPERTIES  DEPENDS "cli_export" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
