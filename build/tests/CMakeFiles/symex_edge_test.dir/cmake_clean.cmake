file(REMOVE_RECURSE
  "CMakeFiles/symex_edge_test.dir/symex_edge_test.cpp.o"
  "CMakeFiles/symex_edge_test.dir/symex_edge_test.cpp.o.d"
  "symex_edge_test"
  "symex_edge_test.pdb"
  "symex_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symex_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
