# Empty dependencies file for symex_edge_test.
# This may be replaced when dependencies are built.
