file(REMOVE_RECURSE
  "CMakeFiles/property_taint_test.dir/property_taint_test.cpp.o"
  "CMakeFiles/property_taint_test.dir/property_taint_test.cpp.o.d"
  "property_taint_test"
  "property_taint_test.pdb"
  "property_taint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_taint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
