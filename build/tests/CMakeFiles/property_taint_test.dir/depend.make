# Empty dependencies file for property_taint_test.
# This may be replaced when dependencies are built.
