file(REMOVE_RECURSE
  "CMakeFiles/adaptive_theta_test.dir/adaptive_theta_test.cpp.o"
  "CMakeFiles/adaptive_theta_test.dir/adaptive_theta_test.cpp.o.d"
  "adaptive_theta_test"
  "adaptive_theta_test.pdb"
  "adaptive_theta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_theta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
