file(REMOVE_RECURSE
  "CMakeFiles/property_reform_test.dir/property_reform_test.cpp.o"
  "CMakeFiles/property_reform_test.dir/property_reform_test.cpp.o.d"
  "property_reform_test"
  "property_reform_test.pdb"
  "property_reform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_reform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
