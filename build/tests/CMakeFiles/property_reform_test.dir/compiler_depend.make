# Empty compiler generated dependencies file for property_reform_test.
# This may be replaced when dependencies are built.
