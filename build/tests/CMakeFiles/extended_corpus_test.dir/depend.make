# Empty dependencies file for extended_corpus_test.
# This may be replaced when dependencies are built.
