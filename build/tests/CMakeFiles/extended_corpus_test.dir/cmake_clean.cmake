file(REMOVE_RECURSE
  "CMakeFiles/extended_corpus_test.dir/extended_corpus_test.cpp.o"
  "CMakeFiles/extended_corpus_test.dir/extended_corpus_test.cpp.o.d"
  "extended_corpus_test"
  "extended_corpus_test.pdb"
  "extended_corpus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
