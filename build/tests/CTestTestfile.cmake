# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/asm_test[1]_include.cmake")
include("/root/repo/build/tests/taint_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/formats_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/clone_test[1]_include.cmake")
include("/root/repo/build/tests/minimize_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_theta_test[1]_include.cmake")
include("/root/repo/build/tests/property_reform_test[1]_include.cmake")
include("/root/repo/build/tests/property_taint_test[1]_include.cmake")
include("/root/repo/build/tests/symex_edge_test[1]_include.cmake")
include("/root/repo/build/tests/extended_corpus_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/core_edge_test[1]_include.cmake")
