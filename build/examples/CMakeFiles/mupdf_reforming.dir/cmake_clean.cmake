file(REMOVE_RECURSE
  "CMakeFiles/mupdf_reforming.dir/mupdf_reforming.cpp.o"
  "CMakeFiles/mupdf_reforming.dir/mupdf_reforming.cpp.o.d"
  "mupdf_reforming"
  "mupdf_reforming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mupdf_reforming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
