# Empty compiler generated dependencies file for mupdf_reforming.
# This may be replaced when dependencies are built.
