# Empty compiler generated dependencies file for patch_triage.
# This may be replaced when dependencies are built.
