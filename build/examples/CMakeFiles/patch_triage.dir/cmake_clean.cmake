file(REMOVE_RECURSE
  "CMakeFiles/patch_triage.dir/patch_triage.cpp.o"
  "CMakeFiles/patch_triage.dir/patch_triage.cpp.o.d"
  "patch_triage"
  "patch_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patch_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
