# Empty compiler generated dependencies file for fuzz_or_reform.
# This may be replaced when dependencies are built.
