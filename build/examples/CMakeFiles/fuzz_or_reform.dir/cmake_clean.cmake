file(REMOVE_RECURSE
  "CMakeFiles/fuzz_or_reform.dir/fuzz_or_reform.cpp.o"
  "CMakeFiles/fuzz_or_reform.dir/fuzz_or_reform.cpp.o.d"
  "fuzz_or_reform"
  "fuzz_or_reform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_or_reform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
