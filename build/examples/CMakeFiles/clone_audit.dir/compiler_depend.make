# Empty compiler generated dependencies file for clone_audit.
# This may be replaced when dependencies are built.
