file(REMOVE_RECURSE
  "CMakeFiles/clone_audit.dir/clone_audit.cpp.o"
  "CMakeFiles/clone_audit.dir/clone_audit.cpp.o.d"
  "clone_audit"
  "clone_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clone_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
