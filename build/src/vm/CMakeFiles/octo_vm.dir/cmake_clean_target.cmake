file(REMOVE_RECURSE
  "libocto_vm.a"
)
