file(REMOVE_RECURSE
  "CMakeFiles/octo_vm.dir/asm.cpp.o"
  "CMakeFiles/octo_vm.dir/asm.cpp.o.d"
  "CMakeFiles/octo_vm.dir/disasm.cpp.o"
  "CMakeFiles/octo_vm.dir/disasm.cpp.o.d"
  "CMakeFiles/octo_vm.dir/interp.cpp.o"
  "CMakeFiles/octo_vm.dir/interp.cpp.o.d"
  "CMakeFiles/octo_vm.dir/ir.cpp.o"
  "CMakeFiles/octo_vm.dir/ir.cpp.o.d"
  "CMakeFiles/octo_vm.dir/trace.cpp.o"
  "CMakeFiles/octo_vm.dir/trace.cpp.o.d"
  "libocto_vm.a"
  "libocto_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
