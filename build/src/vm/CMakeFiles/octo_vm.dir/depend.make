# Empty dependencies file for octo_vm.
# This may be replaced when dependencies are built.
