
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/asm.cpp" "src/vm/CMakeFiles/octo_vm.dir/asm.cpp.o" "gcc" "src/vm/CMakeFiles/octo_vm.dir/asm.cpp.o.d"
  "/root/repo/src/vm/disasm.cpp" "src/vm/CMakeFiles/octo_vm.dir/disasm.cpp.o" "gcc" "src/vm/CMakeFiles/octo_vm.dir/disasm.cpp.o.d"
  "/root/repo/src/vm/interp.cpp" "src/vm/CMakeFiles/octo_vm.dir/interp.cpp.o" "gcc" "src/vm/CMakeFiles/octo_vm.dir/interp.cpp.o.d"
  "/root/repo/src/vm/ir.cpp" "src/vm/CMakeFiles/octo_vm.dir/ir.cpp.o" "gcc" "src/vm/CMakeFiles/octo_vm.dir/ir.cpp.o.d"
  "/root/repo/src/vm/trace.cpp" "src/vm/CMakeFiles/octo_vm.dir/trace.cpp.o" "gcc" "src/vm/CMakeFiles/octo_vm.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/octo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
