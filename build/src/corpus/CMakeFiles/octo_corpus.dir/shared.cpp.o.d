src/corpus/CMakeFiles/octo_corpus.dir/shared.cpp.o: \
 /root/repo/src/corpus/shared.cpp /usr/include/stdc-predef.h \
 /root/repo/src/corpus/shared.h
