
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/extended.cpp" "src/corpus/CMakeFiles/octo_corpus.dir/extended.cpp.o" "gcc" "src/corpus/CMakeFiles/octo_corpus.dir/extended.cpp.o.d"
  "/root/repo/src/corpus/pairs.cpp" "src/corpus/CMakeFiles/octo_corpus.dir/pairs.cpp.o" "gcc" "src/corpus/CMakeFiles/octo_corpus.dir/pairs.cpp.o.d"
  "/root/repo/src/corpus/shared.cpp" "src/corpus/CMakeFiles/octo_corpus.dir/shared.cpp.o" "gcc" "src/corpus/CMakeFiles/octo_corpus.dir/shared.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/octo_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/octo_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/octo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
