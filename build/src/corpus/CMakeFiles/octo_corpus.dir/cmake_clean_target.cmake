file(REMOVE_RECURSE
  "libocto_corpus.a"
)
