# Empty dependencies file for octo_corpus.
# This may be replaced when dependencies are built.
