file(REMOVE_RECURSE
  "CMakeFiles/octo_corpus.dir/extended.cpp.o"
  "CMakeFiles/octo_corpus.dir/extended.cpp.o.d"
  "CMakeFiles/octo_corpus.dir/pairs.cpp.o"
  "CMakeFiles/octo_corpus.dir/pairs.cpp.o.d"
  "CMakeFiles/octo_corpus.dir/shared.cpp.o"
  "CMakeFiles/octo_corpus.dir/shared.cpp.o.d"
  "libocto_corpus.a"
  "libocto_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
