file(REMOVE_RECURSE
  "CMakeFiles/octo_cfg.dir/cfg.cpp.o"
  "CMakeFiles/octo_cfg.dir/cfg.cpp.o.d"
  "libocto_cfg.a"
  "libocto_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
