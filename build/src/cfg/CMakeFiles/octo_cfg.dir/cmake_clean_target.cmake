file(REMOVE_RECURSE
  "libocto_cfg.a"
)
