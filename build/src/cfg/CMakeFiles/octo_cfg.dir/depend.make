# Empty dependencies file for octo_cfg.
# This may be replaced when dependencies are built.
