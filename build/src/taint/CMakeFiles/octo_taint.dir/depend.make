# Empty dependencies file for octo_taint.
# This may be replaced when dependencies are built.
