file(REMOVE_RECURSE
  "CMakeFiles/octo_taint.dir/crash_primitive.cpp.o"
  "CMakeFiles/octo_taint.dir/crash_primitive.cpp.o.d"
  "CMakeFiles/octo_taint.dir/taint_engine.cpp.o"
  "CMakeFiles/octo_taint.dir/taint_engine.cpp.o.d"
  "libocto_taint.a"
  "libocto_taint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_taint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
