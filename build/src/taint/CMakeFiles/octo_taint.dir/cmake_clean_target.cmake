file(REMOVE_RECURSE
  "libocto_taint.a"
)
