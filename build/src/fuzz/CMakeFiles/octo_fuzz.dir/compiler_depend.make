# Empty compiler generated dependencies file for octo_fuzz.
# This may be replaced when dependencies are built.
