
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fuzz/fuzzer.cpp" "src/fuzz/CMakeFiles/octo_fuzz.dir/fuzzer.cpp.o" "gcc" "src/fuzz/CMakeFiles/octo_fuzz.dir/fuzzer.cpp.o.d"
  "/root/repo/src/fuzz/mutator.cpp" "src/fuzz/CMakeFiles/octo_fuzz.dir/mutator.cpp.o" "gcc" "src/fuzz/CMakeFiles/octo_fuzz.dir/mutator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/octo_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/octo_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/octo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
