file(REMOVE_RECURSE
  "CMakeFiles/octo_fuzz.dir/fuzzer.cpp.o"
  "CMakeFiles/octo_fuzz.dir/fuzzer.cpp.o.d"
  "CMakeFiles/octo_fuzz.dir/mutator.cpp.o"
  "CMakeFiles/octo_fuzz.dir/mutator.cpp.o.d"
  "libocto_fuzz.a"
  "libocto_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
