file(REMOVE_RECURSE
  "libocto_fuzz.a"
)
