file(REMOVE_RECURSE
  "libocto_symex.a"
)
