file(REMOVE_RECURSE
  "CMakeFiles/octo_symex.dir/executor.cpp.o"
  "CMakeFiles/octo_symex.dir/executor.cpp.o.d"
  "CMakeFiles/octo_symex.dir/expr.cpp.o"
  "CMakeFiles/octo_symex.dir/expr.cpp.o.d"
  "CMakeFiles/octo_symex.dir/solver.cpp.o"
  "CMakeFiles/octo_symex.dir/solver.cpp.o.d"
  "libocto_symex.a"
  "libocto_symex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_symex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
