# Empty dependencies file for octo_symex.
# This may be replaced when dependencies are built.
