file(REMOVE_RECURSE
  "CMakeFiles/octo_clone.dir/detector.cpp.o"
  "CMakeFiles/octo_clone.dir/detector.cpp.o.d"
  "libocto_clone.a"
  "libocto_clone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_clone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
