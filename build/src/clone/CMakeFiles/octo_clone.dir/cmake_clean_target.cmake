file(REMOVE_RECURSE
  "libocto_clone.a"
)
