# Empty dependencies file for octo_clone.
# This may be replaced when dependencies are built.
