file(REMOVE_RECURSE
  "libocto_formats.a"
)
