file(REMOVE_RECURSE
  "CMakeFiles/octo_formats.dir/formats.cpp.o"
  "CMakeFiles/octo_formats.dir/formats.cpp.o.d"
  "libocto_formats.a"
  "libocto_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
