# Empty dependencies file for octo_formats.
# This may be replaced when dependencies are built.
