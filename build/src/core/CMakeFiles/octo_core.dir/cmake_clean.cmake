file(REMOVE_RECURSE
  "CMakeFiles/octo_core.dir/minimize.cpp.o"
  "CMakeFiles/octo_core.dir/minimize.cpp.o.d"
  "CMakeFiles/octo_core.dir/octopocs.cpp.o"
  "CMakeFiles/octo_core.dir/octopocs.cpp.o.d"
  "libocto_core.a"
  "libocto_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
