# Empty compiler generated dependencies file for octo_support.
# This may be replaced when dependencies are built.
