file(REMOVE_RECURSE
  "CMakeFiles/octo_support.dir/hex.cpp.o"
  "CMakeFiles/octo_support.dir/hex.cpp.o.d"
  "CMakeFiles/octo_support.dir/rng.cpp.o"
  "CMakeFiles/octo_support.dir/rng.cpp.o.d"
  "libocto_support.a"
  "libocto_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octo_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
