file(REMOVE_RECURSE
  "libocto_support.a"
)
