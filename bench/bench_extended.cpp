// Extended-corpus appendix: verification results for pairs 16-21 —
// scenarios the paper discusses but does not measure (double container
// wrapping, renamed clones, three-bunch crashes, a stateful
// use-after-free, a patched divide-by-zero, and the mmap input channel).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.h"
#include "core/octopocs.h"
#include "core/parallel_verify.h"
#include "corpus/extended.h"

using namespace octopocs;

int main(int argc, char** argv) {
  unsigned jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    }
  }

  std::printf("=== Extended corpus (pairs 16-21, beyond the paper) ===\n\n");

  bench::TextTable table({"Idx", "S", "T", "Scenario", "CWE", "poc'",
                          "Verdict", "Type", "Time(ms)"});

  static const char* kScenario[] = {
      "double container wrap", "renamed clone (detector)",
      "three ep encounters",   "stateful use-after-free",
      "patched divisor",       "mmap input channel"};

  int expected_matches = 0;
  const auto pairs = corpus::BuildExtendedCorpus();
  const auto start = std::chrono::steady_clock::now();
  const auto reports = core::VerifyCorpus(pairs, core::PipelineOptions{},
                                          jobs);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const corpus::Pair& pair = pairs[i];
    const core::VerificationReport& report = reports[i];
    if (std::string(core::ResultTypeName(report.type)) ==
            std::string(corpus::ExpectedResultName(pair.expected)) ||
        (pair.expected == corpus::ExpectedResult::kTypeIII &&
         report.verdict == core::Verdict::kNotTriggerable)) {
      ++expected_matches;
    }
    table.AddRow({std::to_string(pair.idx), pair.s_name, pair.t_name,
                  kScenario[i], pair.cwe,
                  report.poc_generated ? "O" : "X",
                  std::string(core::VerdictName(report.verdict)),
                  std::string(core::ResultTypeName(report.type)),
                  bench::Fmt("%.2f", report.timings.total_seconds * 1e3)});
  }
  table.Print();
  std::printf("\nExpected verdicts reproduced: %d/%zu\n", expected_matches,
              pairs.size());
  std::printf("Wall clock: %.3f s with %u job(s)\n", wall, jobs);
  return expected_matches == static_cast<int>(pairs.size()) ? 0 : 1;
}
